// Package montecimone is a full reproduction, in pure Go, of "Monte
// Cimone: Paving the Road for the First Generation of RISC-V
// High-Performance Computers" (Bartolini et al., SOCC 2022): an
// eight-node SiFive Freedom U740 cluster with a production HPC stack
// (SLURM-like scheduler, NFS, Spack-deployed toolchain, ExaMon
// monitoring) characterised with HPL, STREAM and quantumESPRESSO-LAX.
//
// The paper is a measurement study of physical hardware, so this
// repository substitutes every hardware element with a calibrated
// simulation substrate (see DESIGN.md for the substitution table) and
// regenerates every table and figure of the evaluation section
// (EXPERIMENTS.md records paper-vs-measured values). The benchmark
// harness in bench_test.go has one benchmark per table and figure plus
// the design-choice ablations.
package montecimone
