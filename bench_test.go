package montecimone_test

// One benchmark per table and figure of the paper's evaluation section
// (the experiment index is in DESIGN.md), plus the design-choice
// ablations. Each benchmark regenerates the artefact and reports the
// headline quantity as a custom metric so `go test -bench=.` doubles as
// the reproduction harness. Run with -v to see the regenerated rows.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"montecimone/internal/campaign"
	"montecimone/internal/cluster"
	"montecimone/internal/core"
	"montecimone/internal/examon"
	"montecimone/internal/fault"
	"montecimone/internal/fleet"
	"montecimone/internal/hpl"
	"montecimone/internal/mpi"
	"montecimone/internal/netsim"
	"montecimone/internal/sched"
	"montecimone/internal/sim"
	"montecimone/internal/soc"
	"montecimone/internal/stream"
	"montecimone/internal/thermal"
)

// BenchmarkTableI_SpackStack concretises and installs the Table I
// user-facing software stack for linux-sifive-u74mc.
func BenchmarkTableI_SpackStack(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		out, err := core.TableI()
		if err != nil {
			b.Fatal(err)
		}
		rows = len(out)
	}
	b.ReportMetric(float64(rows), "packages")
}

// BenchmarkTableII_ExamonTopics validates the ExaMon topic/payload formats.
func BenchmarkTableII_ExamonTopics(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(core.TableII())
	}
	b.ReportMetric(float64(rows), "plugins")
}

// BenchmarkTableIII_StatsPub boots a monitored node and collects the 28
// stats_pub metrics.
func BenchmarkTableIII_StatsPub(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		out, err := core.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		rows = len(out)
	}
	b.ReportMetric(float64(rows), "metrics")
}

// BenchmarkTableIV_HwmonSensors reads the three temperature sensors
// through their sysfs paths.
func BenchmarkTableIV_HwmonSensors(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		out, err := core.TableIV()
		if err != nil {
			b.Fatal(err)
		}
		rows = len(out)
	}
	b.ReportMetric(float64(rows), "sensors")
}

// BenchmarkTableV_Stream regenerates the STREAM table (both working sets)
// and reports the DDR copy bandwidth.
func BenchmarkTableV_Stream(b *testing.B) {
	var copyMBps float64
	for i := 0; i < b.N; i++ {
		tbl, err := core.TableV(1)
		if err != nil {
			b.Fatal(err)
		}
		copyMBps = tbl.DDR[0].MeanMBps
	}
	b.ReportMetric(copyMBps, "copy-MB/s")
}

// BenchmarkTableVI_PowerRails regenerates the nine-rail power table and
// reports the HPL column total (paper: 5935 mW).
func BenchmarkTableVI_PowerRails(b *testing.B) {
	var hplTotal float64
	for i := 0; i < b.N; i++ {
		for _, col := range core.TableVI() {
			if col.Workload == "HPL" {
				hplTotal = col.TotalMilliwatts
			}
		}
	}
	b.ReportMetric(hplTotal, "HPL-mW")
}

// BenchmarkFig2_HPLScaling regenerates the strong-scaling series (ten
// repetitions per node count) and reports the 8-node mean (paper: 12.65).
func BenchmarkFig2_HPLScaling(b *testing.B) {
	var eight float64
	for i := 0; i < b.N; i++ {
		points, err := core.Fig2(1)
		if err != nil {
			b.Fatal(err)
		}
		eight = points[7].MeanGFlops
		if i == 0 {
			for _, p := range points {
				b.Logf("nodes=%d grid=%dx%d %.2f +- %.2f GFLOP/s (%.0f +- %.0f s)",
					p.Nodes, p.P, p.Q, p.MeanGFlops, p.StdGFlops, p.MeanSeconds, p.StdSeconds)
			}
		}
	}
	b.ReportMetric(eight, "GFLOPS-8node")
}

// BenchmarkFig3_PowerTraces regenerates the 8 s HPL power trace at 1 ms
// windows and reports the core-rail mean (paper: 4097 mW).
func BenchmarkFig3_PowerTraces(b *testing.B) {
	var coreMean float64
	for i := 0; i < b.N; i++ {
		traces, err := core.Fig3("hpl", 1)
		if err != nil {
			b.Fatal(err)
		}
		coreMean = traces.Traces.Lookup("core").Mean()
	}
	b.ReportMetric(coreMean, "core-mW")
}

// BenchmarkFig4_BootTrace regenerates the 80 s boot trace and reports the
// R2-minus-R1 clock-tree power (paper: 1577 mW).
func BenchmarkFig4_BootTrace(b *testing.B) {
	var clockTree float64
	for i := 0; i < b.N; i++ {
		bt, err := core.Fig4(1)
		if err != nil {
			b.Fatal(err)
		}
		clockTree = bt.R2Mean - bt.R1Mean
	}
	b.ReportMetric(clockTree, "clocktree-mW")
}

// BenchmarkFig5_ExamonHeatmap runs a monitored multi-node HPL playback and
// builds the three dashboard heatmaps.
func BenchmarkFig5_ExamonHeatmap(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		hm, err := core.Fig5(8, 1)
		if err != nil {
			b.Fatal(err)
		}
		peak = hm.InstructionsPerSec.MaxValue()
	}
	b.ReportMetric(peak/1e9, "Ginstr/s-peak")
}

// BenchmarkFig6_ThermalRunaway replays the node-7 thermal hazard and the
// airflow mitigation, reporting the post-fix hottest temperature
// (paper: 39 degC).
func BenchmarkFig6_ThermalRunaway(b *testing.B) {
	var after float64
	for i := 0; i < b.N; i++ {
		rep, err := core.Fig6(1)
		if err != nil {
			b.Fatal(err)
		}
		after = rep.PeakAfterMitigation
		if i == 0 {
			b.Logf("%s tripped at t=%.0f s; hottest %.1f degC before fix, %.1f degC after",
				rep.TrippedNode, rep.TripAt, rep.PeakBeforeMitigation, rep.PeakAfterMitigation)
		}
	}
	b.ReportMetric(after, "degC-after-fix")
}

// BenchmarkSec5A_HPLEfficiency regenerates the three-machine FPU
// utilisation comparison and reports Monte Cimone's (paper: 46.5 %).
func BenchmarkSec5A_HPLEfficiency(b *testing.B) {
	var mc float64
	for i := 0; i < b.N; i++ {
		rows, err := core.HPLEfficiencyComparison()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Machine == "Monte Cimone" {
				mc = 100 * r.Efficiency
			}
			if i == 0 {
				b.Logf("%s: %.2f%% (%.1f GFLOP/s)", r.Machine, 100*r.Efficiency, r.Attained)
			}
		}
	}
	b.ReportMetric(mc, "pct-of-peak")
}

// BenchmarkSec5A_StreamEfficiency regenerates the bandwidth-fraction
// comparison and reports Monte Cimone's (paper: 15.5 %).
func BenchmarkSec5A_StreamEfficiency(b *testing.B) {
	var mc float64
	for i := 0; i < b.N; i++ {
		rows, err := core.StreamEfficiencyComparison()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Machine == "Monte Cimone" {
				mc = 100 * r.Efficiency
			}
		}
	}
	b.ReportMetric(mc, "pct-of-peak")
}

// BenchmarkSec5A_QELax regenerates the LAX result (paper: 1.44 GFLOP/s).
func BenchmarkSec5A_QELax(b *testing.B) {
	var gf float64
	for i := 0; i < b.N; i++ {
		rep, err := core.QELax(1)
		if err != nil {
			b.Fatal(err)
		}
		gf = rep.MeanGFlops
	}
	b.ReportMetric(gf, "GFLOPS")
}

// BenchmarkSec3_InfinibandPing reproduces the HCA bring-up status: ping
// works, RDMA does not.
func BenchmarkSec3_InfinibandPing(b *testing.B) {
	var rttUs float64
	for i := 0; i < b.N; i++ {
		rep, err := core.InfinibandStatus()
		if err != nil {
			b.Fatal(err)
		}
		if rep.RDMAWorking {
			b.Fatal("RDMA unexpectedly working")
		}
		rttUs = rep.PingRTTSeconds * 1e6
	}
	b.ReportMetric(rttUs, "ping-us")
}

// --- Ablations (DESIGN.md section 4) ---

// BenchmarkAblation_Interconnect compares the measured GbE fabric against
// hypothetically working FDR InfiniBand for the 8-node HPL run.
func BenchmarkAblation_Interconnect(b *testing.B) {
	ib := netsim.InfinibandFDRWorking()
	var speedup float64
	for i := 0; i < b.N; i++ {
		gbe, err := hpl.Simulate(hpl.Config{N: core.PaperN, NB: core.PaperNB, Nodes: 8})
		if err != nil {
			b.Fatal(err)
		}
		fast, err := hpl.Simulate(hpl.Config{N: core.PaperN, NB: core.PaperNB, Nodes: 8, Link: &ib})
		if err != nil {
			b.Fatal(err)
		}
		speedup = fast.GFlops / gbe.GFlops
	}
	b.ReportMetric(speedup, "IB/GbE")
}

// BenchmarkAblation_Prefetcher sweeps prefetcher utilisation on the
// DDR-resident STREAM run (paper hypothesis (i) in Section V-A).
func BenchmarkAblation_Prefetcher(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		base, err := stream.Run(stream.Config{WorkingSetBytes: stream.DDRWorkingSetBytes})
		if err != nil {
			b.Fatal(err)
		}
		tuned, err := stream.Run(stream.Config{
			WorkingSetBytes: stream.DDRWorkingSetBytes,
			Opts:            soc.StreamOptions{PrefetchUtilisation: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		gain = tuned[3].MeanMBps / base[3].MeanMBps // triad
		if i == 0 {
			for u := 0.0; u <= 1.0; u += 0.25 {
				r, err := stream.Run(stream.Config{
					WorkingSetBytes: stream.DDRWorkingSetBytes,
					Opts:            soc.StreamOptions{PrefetchUtilisation: u},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.Logf("prefetch utilisation %.2f: triad %.0f MB/s (%.1f%% of peak)",
					u, r[3].MeanMBps, 100*r[3].EfficiencyOfPeak)
			}
		}
	}
	b.ReportMetric(gain, "triad-gain")
}

// BenchmarkAblation_HPLBlockSize sweeps NB around the paper's 192.
func BenchmarkAblation_HPLBlockSize(b *testing.B) {
	nbs := []int{32, 96, 192, 384, 768}
	var best float64
	for i := 0; i < b.N; i++ {
		best = 0
		for _, nb := range nbs {
			r, err := hpl.Simulate(hpl.Config{N: 16384, NB: nb, Nodes: 8})
			if err != nil {
				b.Fatal(err)
			}
			if r.GFlops > best {
				best = r.GFlops
			}
			if i == 0 {
				b.Logf("NB=%d: %.2f GFLOP/s", nb, r.GFlops)
			}
		}
	}
	b.ReportMetric(best, "best-GFLOPS")
}

// BenchmarkAblation_Backfill compares campaign makespan with and without
// EASY backfill on the production scheduler.
func BenchmarkAblation_Backfill(b *testing.B) {
	runCampaign := func(backfill bool) float64 {
		engine := sim.NewEngine()
		hosts := make([]string, 8)
		for i := range hosts {
			hosts[i] = string(rune('a' + i))
		}
		s, err := sched.New(engine, "p", hosts, sched.WithBackfill(backfill))
		if err != nil {
			b.Fatal(err)
		}
		specs := []sched.JobSpec{
			{Name: "wide", Nodes: 6, TimeLimit: 4000, Duration: 3600},
			{Name: "huge", Nodes: 8, TimeLimit: 4000, Duration: 1800},
			{Name: "s1", Nodes: 1, TimeLimit: 300, Duration: 240},
			{Name: "s2", Nodes: 2, TimeLimit: 600, Duration: 500},
			{Name: "s3", Nodes: 1, TimeLimit: 900, Duration: 850},
		}
		for _, spec := range specs {
			if _, err := s.Submit(spec); err != nil {
				b.Fatal(err)
			}
		}
		if err := engine.Run(); err != nil {
			b.Fatal(err)
		}
		return engine.Now()
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		with := runCampaign(true)
		without := runCampaign(false)
		ratio = without / with
		if i == 0 {
			b.Logf("makespan: backfill %.0f s, FIFO-only %.0f s", with, without)
		}
	}
	b.ReportMetric(ratio, "fifo/backfill")
}

// BenchmarkScheduler_PolicyThroughput drains a backfill-heavy synthetic
// campaign (4 jobs per node, periodic wide blockers) at 8, 64 and 512
// nodes under every registered policy, reporting drained jobs per
// wall-clock second. The "easy-rescan" case runs the EASY policy on the
// seed's O(n) partition-rescan structures instead of the indexed free-node
// set and release heap — the ablation that must lose at 512 nodes.
func BenchmarkScheduler_PolicyThroughput(b *testing.B) {
	drain := func(b *testing.B, nodes int, opts ...sched.Option) int {
		b.Helper()
		engine := sim.NewEngine()
		hosts := make([]string, nodes)
		for i := range hosts {
			hosts[i] = fmt.Sprintf("syn%04d", i+1)
		}
		s, err := sched.New(engine, "bench", hosts, opts...)
		if err != nil {
			b.Fatal(err)
		}
		jobs := 4 * nodes
		for i := 0; i < jobs; i++ {
			spec := sched.JobSpec{
				Name:      "j",
				Nodes:     1 + (i*5)%8,
				TimeLimit: 60 + float64((i*37)%240),
			}
			if i%16 == 0 {
				spec.Nodes = nodes/2 + 1 // wide blocker forces backfill scans
				spec.TimeLimit = 600
			}
			spec.Duration = spec.TimeLimit * 0.8
			if _, err := s.Submit(spec); err != nil {
				b.Fatal(err)
			}
		}
		if err := engine.Run(); err != nil {
			b.Fatal(err)
		}
		return jobs
	}
	for _, nodes := range []int{8, 64, 512} {
		cases := []struct {
			name string
			opts []sched.Option
		}{
			{"fifo", []sched.Option{sched.WithPolicy(sched.FIFO())}},
			{"easy", []sched.Option{sched.WithPolicy(sched.EASY())}},
			{"sjf", []sched.Option{sched.WithPolicy(sched.SJF())}},
			{"bestfit", []sched.Option{sched.WithPolicy(sched.BestFit())}},
			{"easy-rescan", []sched.Option{sched.WithPolicy(sched.EASY()), sched.WithLinearScan(true)}},
		}
		for _, tc := range cases {
			tc := tc
			b.Run(fmt.Sprintf("%s/%dnodes", tc.name, nodes), func(b *testing.B) {
				jobs := 0
				for i := 0; i < b.N; i++ {
					jobs += drain(b, nodes, tc.opts...)
				}
				b.ReportMetric(float64(jobs)/b.Elapsed().Seconds(), "jobs/s")
			})
		}
	}
}

// BenchmarkAblation_CodeModel compares the medany cap against the
// large-code-model workaround for the STREAM working set.
func BenchmarkAblation_CodeModel(b *testing.B) {
	var capGiB float64
	for i := 0; i < b.N; i++ {
		m := soc.FU740()
		capped := m.MaxStreamArrayBytes(soc.StreamOptions{})
		lifted := m.MaxStreamArrayBytes(soc.StreamOptions{LargeCodeModel: true})
		if lifted <= capped {
			b.Fatal("workaround did not lift the cap")
		}
		capGiB = float64(3*capped) / float64(soc.GiB)
	}
	b.ReportMetric(capGiB, "medany-cap-GiB")
}

// BenchmarkExtension_DTM runs node 7 (original enclosure) under the
// thermal-capping DVFS governor — the paper's future-work dynamic thermal
// management — and reports the average operating point that keeps it
// alive.
func BenchmarkExtension_DTM(b *testing.B) {
	var meanScale float64
	for i := 0; i < b.N; i++ {
		rep, err := core.DTMStudy(0)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Survived {
			b.Fatal("node 7 tripped despite the governor")
		}
		meanScale = rep.MeanScale
		if i == 0 {
			b.Logf("node 7 survives at %.1f degC, mean DVFS scale %.2f, %.0f s throttled",
				rep.SteadyTempC, rep.MeanScale, rep.ThrottledSeconds)
		}
	}
	b.ReportMetric(meanScale, "mean-scale")
}

// BenchmarkExtension_AnomalyDetection replays the thermal incident with
// the ODA runaway detector watching and reports the warning lead time.
func BenchmarkExtension_AnomalyDetection(b *testing.B) {
	var lead float64
	for i := 0; i < b.N; i++ {
		rep, err := core.ThermalAnomalyScan(1)
		if err != nil {
			b.Fatal(err)
		}
		if rep.DetectedAt < 0 {
			b.Fatal("runaway not detected")
		}
		lead = rep.LeadSeconds
		if i == 0 {
			b.Logf("mc07 runaway flagged at t=%.0f s, trip at t=%.0f s (%.0f s lead)",
				rep.DetectedAt, rep.TripAt, rep.LeadSeconds)
		}
	}
	b.ReportMetric(lead, "lead-s")
}

// BenchmarkExtension_EnergyToSolution reports the RISC-V node's HPL
// energy efficiency derived from the Table VI power model and the run
// model.
func BenchmarkExtension_EnergyToSolution(b *testing.B) {
	var gfw float64
	for i := 0; i < b.N; i++ {
		rep, err := core.EnergyToSolution()
		if err != nil {
			b.Fatal(err)
		}
		gfw = rep.SingleNodeGFlopsPerWatt
		if i == 0 {
			b.Logf("single node: %.0f kJ, %.3f GFLOPS/W; full machine: %.0f kJ, %.3f GFLOPS/W",
				rep.SingleNodeKJ, rep.SingleNodeGFlopsPerWatt,
				rep.FullMachineKJ, rep.FullMachineGFlopsPerWatt)
		}
	}
	b.ReportMetric(gfw, "GFLOPS/W")
}

// BenchmarkExtension_Accelerator projects the future-work PCIe RISC-V
// vector accelerator onto a node's HPL run.
func BenchmarkExtension_Accelerator(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rep, err := core.AcceleratorStudy()
		if err != nil {
			b.Fatal(err)
		}
		speedup = rep.Speedup
		if i == 0 {
			b.Logf("%s: %.1f -> %.1f GFLOP/s (%.1fx, %s-bound), %.2f -> %.2f GFLOPS/W",
				rep.Card, rep.HostGFlops, rep.AccelGFlops, rep.Speedup, rep.Bound,
				rep.HostGFlopsPerWatt, rep.AccelGFlopsPerWatt)
		}
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkExtension_MPIPingPong runs the OSU-style microbenchmark over
// the simulated GbE fabric, validating the network model end to end
// through the MPI stack.
func BenchmarkExtension_MPIPingPong(b *testing.B) {
	fabric, err := netsim.NewFabric(2, netsim.GigabitEthernet())
	if err != nil {
		b.Fatal(err)
	}
	var latUs float64
	for i := 0; i < b.N; i++ {
		world, err := mpi.NewWorld(fabric, []int{0, 1})
		if err != nil {
			b.Fatal(err)
		}
		var res mpi.PingPongResult
		err = world.Run(func(p *mpi.Proc) error {
			r, err := mpi.PingPong(p, 1, 1000)
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				res = r
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		latUs = res.LatencySec * 1e6
	}
	b.ReportMetric(latUs, "oneway-us")
}

// BenchmarkTelemetryIngest measures the v2 typed telemetry path — one
// PublishBatch per node per tick flowing straight into storage as Sample
// values — against the seed's string path, where every counter crosses the
// broker as a Sprintf-rendered topic/payload pair that the storage side
// re-parses (kept as the ablation baseline). 64 synthetic nodes, 4 cores,
// 2 counters each: one benchmark iteration ingests one cluster-wide tick
// (512 samples). The typed batch + sharded-store case must beat the string
// + parse baseline by >= 5x.
func BenchmarkTelemetryIngest(b *testing.B) {
	const (
		nodes = 64
		cores = 4
	)
	metrics := []string{"instret", "cycle"}
	hosts := make([]string, nodes)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("syn%03d", i+1)
	}
	perTick := nodes * cores * len(metrics)

	attach := func(b *testing.B, st examon.Storage) *examon.Broker {
		b.Helper()
		broker := examon.NewBroker()
		db, err := examon.NewTSDBOn(st)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.Attach(broker); err != nil {
			b.Fatal(err)
		}
		return broker
	}
	check := func(b *testing.B, st examon.Storage) {
		b.Helper()
		if got := st.SeriesCount(); got != perTick {
			b.Fatalf("stored %d series, want %d", got, perTick)
		}
	}

	runString := func(b *testing.B, st examon.Storage) {
		broker := attach(b, st)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now := float64(i)
			for _, host := range hosts {
				for core := 0; core < cores; core++ {
					for _, m := range metrics {
						topic := examon.PMUTopic("unibo", "syn", host, core, m)
						if err := broker.Publish(topic, examon.FormatPayload(float64(i), now)); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		}
		b.StopTimer()
		check(b, st)
		b.ReportMetric(float64(perTick*b.N)/b.Elapsed().Seconds(), "samples/s")
	}
	runTyped := func(b *testing.B, st examon.Storage, workers int) {
		broker := attach(b, st)
		publishHosts := func(myHosts []string, n int) {
			batch := make([]examon.Sample, 0, cores*len(metrics))
			for i := 0; i < n; i++ {
				now := float64(i)
				for _, host := range myHosts {
					batch = batch[:0]
					for core := 0; core < cores; core++ {
						for _, m := range metrics {
							batch = append(batch, examon.Sample{
								Tags: examon.Tags{Org: "unibo", Cluster: "syn", Node: host,
									Plugin: "pmu_pub", Core: core, Metric: m},
								T: now, V: float64(i),
							})
						}
					}
					if err := broker.PublishBatch(batch); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}
		b.ResetTimer()
		if workers <= 1 {
			publishHosts(hosts, b.N)
		} else {
			var wg sync.WaitGroup
			per := nodes / workers
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(myHosts []string) {
					defer wg.Done()
					publishHosts(myHosts, b.N)
				}(hosts[w*per : (w+1)*per])
			}
			wg.Wait()
		}
		b.StopTimer()
		check(b, st)
		b.ReportMetric(float64(perTick*b.N)/b.Elapsed().Seconds(), "samples/s")
	}

	b.Run("string/mem/64nodes", func(b *testing.B) { runString(b, examon.NewMemStore()) })
	b.Run("typed/mem/64nodes", func(b *testing.B) { runTyped(b, examon.NewMemStore(), 1) })
	b.Run("typed/sharded/64nodes", func(b *testing.B) { runTyped(b, examon.NewShardedStore(0), 1) })
	b.Run("typed/sharded/parallel8/64nodes", func(b *testing.B) { runTyped(b, examon.NewShardedStore(0), 8) })
	b.Run("typed/ring/64nodes", func(b *testing.B) { runTyped(b, examon.NewRingStore(0), 1) })
}

// BenchmarkCampaignThroughput drives generated mixed-workload campaigns
// through the full stack — seeded Poisson job stream over the workload
// registry, scheduler, cluster physics, phased workload execution — at 64
// and 512 nodes, reporting drained jobs per wall-clock second. Each
// iteration submits 2 jobs per node (~70 % HPL node-seconds) and must
// drain them all within the horizon. The "fixed" cases run the
// fixed-activity ablation: jobs hold their steady Table VI profile, no
// phase-transition events — the baseline that prices the phased
// co-simulation.
func BenchmarkCampaignThroughput(b *testing.B) {
	mkSpec := func(nodes int, fixed bool) campaign.Spec {
		return campaign.Spec{
			Name: "bench", Nodes: nodes, Seed: 1, HorizonS: 40000,
			Mitigated: true, FixedActivity: fixed,
			Arrival: &campaign.Arrival{
				Process: campaign.ProcessPoisson, RatePerHour: float64(nodes) * 30, Jobs: 2 * nodes,
			},
			Mix: []campaign.MixEntry{
				{Workload: "hpl", Weight: 3, NodesMin: 2, NodesMax: 8, DurationS: 600},
				{Workload: "stream.ddr", Weight: 2, NodesMin: 1, NodesMax: 2, DurationS: 180},
				{Workload: "stream.l2", Weight: 1, DurationS: 180},
				{Workload: "qe", Weight: 2, DurationS: 40},
			},
		}
	}
	runSpec := func(b *testing.B, spec campaign.Spec) {
		jobs := 0
		for i := 0; i < b.N; i++ {
			res, err := campaign.Run(spec)
			if err != nil {
				b.Fatal(err)
			}
			if res.Unfinished > 0 {
				b.Fatalf("%d jobs unfinished at the horizon", res.Unfinished)
			}
			jobs += len(res.Jobs)
		}
		b.ReportMetric(float64(jobs)/b.Elapsed().Seconds(), "jobs/s")
	}
	for _, nodes := range []int{64, 512} {
		for _, mode := range []struct {
			name  string
			fixed bool
		}{{"phased", false}, {"fixed", true}} {
			mode := mode
			b.Run(fmt.Sprintf("%s/%dnodes", mode.name, nodes), func(b *testing.B) {
				runSpec(b, mkSpec(nodes, mode.fixed))
			})
		}
	}
	// Sharded engine scaling on phased partitions: shards1 is the
	// single-shard ablation (serial engine by construction); the wider
	// cases prefetch per-node physics on shard workers inside conservative
	// lookahead windows. Reports and event logs are byte-identical across
	// all of these — only jobs/s moves, and only on multi-core hosts (the
	// protocol adds no simulated work, so single-core runs stay flat).
	for _, nodes := range []int{64, 512, 4096} {
		for _, shards := range []int{1, 2, 4, 8} {
			nodes, shards := nodes, shards
			b.Run(fmt.Sprintf("phased/shards%d/%dnodes", shards, nodes), func(b *testing.B) {
				spec := mkSpec(nodes, false)
				spec.Shards = shards
				runSpec(b, spec)
			})
		}
	}
	// Chaos cases: the same phased campaign with the fault subsystem armed
	// — crash/reboot cycles, thermal runaway injections, a network window,
	// stragglers, requeue + checkpoint — pricing the fault timeline, the
	// trip/repair machinery and the requeue path on top of the co-sim.
	// Faulted campaigns may legitimately leave retried work unfinished at
	// the horizon, so unlike runSpec these cases report (not assert) the
	// completed-job drain rate.
	runChaos := func(b *testing.B, spec campaign.Spec) {
		completed := 0
		for i := 0; i < b.N; i++ {
			res, err := campaign.Run(spec)
			if err != nil {
				b.Fatal(err)
			}
			if res.Fault == nil {
				b.Fatal("fault stats missing from chaos campaign result")
			}
			completed += res.EndStates[sched.StateCompleted]
		}
		b.ReportMetric(float64(completed)/b.Elapsed().Seconds(), "jobs/s")
	}
	for _, nodes := range []int{64, 512} {
		nodes := nodes
		b.Run(fmt.Sprintf("chaos/%dnodes", nodes), func(b *testing.B) {
			spec := mkSpec(nodes, false)
			spec.Faults = &fault.Spec{
				Crash:      &fault.Crash{MTBFHours: 6, RebootS: 120},
				Thermal:    &fault.Thermal{Injections: nodes / 16, ExtraRthKW: 7, ExtraAirC: 20, RepairS: 300},
				Network:    []fault.NetWindow{{StartS: 4000, DurationS: 2000, LatencyMult: 8, BandwidthMult: 0.25}},
				Stragglers: &fault.Stragglers{Count: nodes / 32, Slowdown: 1.3},
				Checkpoint: true, CheckpointS: 300,
			}
			runChaos(b, spec)
		})
	}
}

// BenchmarkFleetThroughput drives the federated multi-cluster runner at
// 1, 2, 4 and 8 clusters, each fleet carrying two campaigns per cluster
// (the meta-scheduler's queue penalty spreads them evenly across the
// identical clusters), at worker-pool widths 1 and one-per-cluster. The
// jobs/s metric is drained jobs per wall-clock second across the whole
// fleet; width is the realized high-water mark of concurrently executing
// clusters. Routing is a serial pre-pass, so per-campaign cost must stay
// flat as the cluster count grows — the fleet axis adds no cross-cluster
// coordination — and on multi-core hosts jobs/s scales with workers
// (single-core CI sees flat cost only; width still reports the available
// parallelism).
func BenchmarkFleetThroughput(b *testing.B) {
	mkFleet := func(clusters int) fleet.Spec {
		s := fleet.Spec{Name: "bench", Seed: 1}
		for i := 0; i < clusters; i++ {
			s.Clusters = append(s.Clusters, fleet.ClusterSpec{
				ID: fmt.Sprintf("c%02d", i), Nodes: 8, Mitigated: true,
			})
		}
		var subs []fleet.Submission
		for i := 0; i < 2*clusters; i++ {
			subs = append(subs, fleet.Submission{
				// Arrivals 1 s apart: every campaign is routed while its
				// predecessors are still resident, so the queue penalty
				// round-robins them across the identical clusters.
				ArriveS: float64(i),
				Spec: campaign.Spec{
					Name: fmt.Sprintf("camp%02d", i), HorizonS: 2000,
					Jobs: []campaign.JobEntry{
						{Name: "a", Workload: "qe", Nodes: 2, SubmitS: 0, DurationS: 120},
						{Name: "b", Workload: "stream.ddr", Nodes: 1, SubmitS: 60, DurationS: 180},
						{Name: "c", Workload: "stream.l2", Nodes: 2, SubmitS: 120, DurationS: 150},
						{Name: "d", Workload: "qe", Nodes: 4, SubmitS: 200, DurationS: 100},
					},
				},
			})
		}
		s.Tenants = []fleet.TenantSpec{{Name: "bench", Campaigns: subs}}
		return s
	}
	for _, clusters := range []int{1, 2, 4, 8} {
		workerCases := []int{1}
		if clusters > 1 {
			workerCases = append(workerCases, clusters)
		}
		for _, workers := range workerCases {
			clusters, workers := clusters, workers
			b.Run(fmt.Sprintf("clusters%d/workers%d", clusters, workers), func(b *testing.B) {
				spec := mkFleet(clusters)
				jobs, width := 0, 0
				for i := 0; i < b.N; i++ {
					res, err := fleet.Run(spec, workers)
					if err != nil {
						b.Fatal(err)
					}
					for _, cres := range res.Campaigns {
						if cres.Unfinished > 0 {
							b.Fatalf("%d jobs unfinished at the horizon", cres.Unfinished)
						}
						jobs += len(cres.Jobs)
					}
					if res.Stats.MaxActive > width {
						width = res.Stats.MaxActive
					}
				}
				b.ReportMetric(float64(jobs)/b.Elapsed().Seconds(), "jobs/s")
				b.ReportMetric(float64(width), "width")
			})
		}
	}
}

// BenchmarkAblation_Airflow sweeps the enclosure configurations: steady
// HPL temperature of the worst slot, lid on (runaway) vs lid off.
func BenchmarkAblation_Airflow(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		on, err := thermal.NewModel(thermal.Enclosure{AmbientC: 25, LidOn: true}, 2)
		if err != nil {
			b.Fatal(err)
		}
		off, err := thermal.NewModel(thermal.Enclosure{AmbientC: 25, LidOn: false}, 2)
		if err != nil {
			b.Fatal(err)
		}
		hot, _ := on.SteadyStateCPU(5.935)
		cool, _ := off.SteadyStateCPU(5.935)
		delta = hot - cool
		if i == 0 {
			m7on, err := thermal.NewModel(thermal.Enclosure{AmbientC: 25, LidOn: true}, 6)
			if err != nil {
				b.Fatal(err)
			}
			t7, stable := m7on.SteadyStateCPU(5.935)
			b.Logf("centre slot: %.1f degC lid-on vs %.1f degC lid-off; slot 7 lid-on: %.0f degC stable=%v",
				hot, cool, t7, stable)
		}
	}
	b.ReportMetric(delta, "degC-saved")
}

// BenchmarkPhysicsStep measures the demand-driven physics refactor
// against the cluster.WithLockStep ablation: an idle partition observed
// at the telemetry rate (2 Hz per node), integrated over a 600 s window
// after the thermal transients settle. The model-steps metric is the
// physics cost; the acceptance floor is a 5x reduction at 512 nodes, and
// in practice the settled window collapses to the handful of partial
// catch-up steps the observations themselves request.
func BenchmarkPhysicsStep(b *testing.B) {
	for _, mode := range []struct {
		name string
		lock bool
	}{{"demand", false}, {"lockstep", true}} {
		for _, nodes := range []int{8, 64, 512, 1024} {
			b.Run(fmt.Sprintf("%s/nodes=%d", mode.name, nodes), func(b *testing.B) {
				e := sim.NewEngine()
				c, err := cluster.New(e, cluster.Config{
					Nodes: nodes, SyntheticSlots: nodes > cluster.DefaultNodes, LockStep: mode.lock,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Stop()
				if err := c.BootAndSettle(1); err != nil {
					b.Fatal(err)
				}
				if _, err := sim.NewTicker(e, e.Now()+0.5, 0.5, "obs", func(now float64) {
					for i := 0; i < c.Size(); i++ {
						c.Node(i).SyncTo(now)
					}
				}); err != nil {
					b.Fatal(err)
				}
				if err := e.RunUntil(e.Now() + 1600); err != nil { // settle past the thermal taus
					b.Fatal(err)
				}
				start := c.ModelSteps()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := e.RunUntil(e.Now() + 600); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				steps := float64(c.ModelSteps()-start) / float64(b.N)
				b.ReportMetric(steps, "model-steps/window")
				b.ReportMetric(steps/float64(nodes), "steps/node-window")
			})
		}
	}
}

// BenchmarkQueryServe drives concurrent dashboard-style load against the
// telemetry read path during live ingest: selective per-node REST queries
// (aggregated and raw) plus periodic whole-cluster heatmap rebuilds, at
// 64 and 512 synthetic nodes with the deployment's realistic series
// density (8 PMU counters x 8 harts + 32 stats_pub metrics + cpu_temp =
// 97 series per node, ~50k series at 512 nodes). The engine is the mcmon
// default ("mem"). "indexed" runs the default read path — inverted tag
// index, snapshot fan-out across cores, ingest-time rollup tiers —
// "linear" runs the examon.WithLinearScan ablation (the seed's full
// series walk per query, raw-only aggregation), mirroring the
// scheduler's easy-rescan ablation. Acceptance floor: the indexed
// selective path serves >= 10x the linear queries/s at 512 nodes.
func BenchmarkQueryServe(b *testing.B) {
	const (
		cores       = 8
		pmuMetrics  = 8
		statMetrics = 32
		ticks       = 120 // 2 Hz -> 60 s of history, one full rollup bucket
	)
	pmu := make([]string, pmuMetrics)
	pmu[0], pmu[1] = "instret", "cycle"
	for i := 2; i < pmuMetrics; i++ {
		pmu[i] = fmt.Sprintf("hpm%02d", i)
	}
	stats := make([]string, statMetrics)
	for i := range stats {
		stats[i] = fmt.Sprintf("stat%02d", i)
	}
	mkHosts := func(nodes int) []string {
		hosts := make([]string, nodes)
		for i := range hosts {
			hosts[i] = fmt.Sprintf("syn%04d", i+1)
		}
		return hosts
	}
	clusterTick := func(st examon.Storage, hosts []string, tick int) {
		now := float64(tick) * 0.5
		batch := make([]examon.Sample, 0, cores*pmuMetrics+statMetrics+1)
		for _, host := range hosts {
			batch = batch[:0]
			for core := 0; core < cores; core++ {
				for _, m := range pmu {
					batch = append(batch, examon.Sample{
						Tags: examon.Tags{Org: "unibo", Cluster: "syn", Node: host,
							Plugin: "pmu_pub", Core: core, Metric: m},
						T: now, V: float64(tick * 100),
					})
				}
			}
			for _, m := range stats {
				batch = append(batch, examon.Sample{
					Tags: examon.Tags{Org: "unibo", Cluster: "syn", Node: host,
						Plugin: "dstat_pub", Core: -1, Metric: m},
					T: now, V: float64(tick % 7),
				})
			}
			batch = append(batch, examon.Sample{
				Tags: examon.Tags{Org: "unibo", Cluster: "syn", Node: host,
					Plugin: "dstat_pub", Core: -1, Metric: "temperature.cpu_temp"},
				T: now, V: 40,
			})
			st.InsertBatch(batch)
		}
	}
	setup := func(b *testing.B, hosts []string, opts []examon.StoreOption) (examon.Storage, func()) {
		b.Helper()
		st := examon.NewMemStore(opts...)
		for tick := 0; tick < ticks; tick++ {
			clusterTick(st, hosts, tick)
		}
		stop := make(chan struct{})
		var iwg sync.WaitGroup
		iwg.Add(1)
		go func() { // live ingest at a paced tick rate during the queries
			defer iwg.Done()
			tick := ticks
			for {
				select {
				case <-stop:
					return
				default:
				}
				clusterTick(st, hosts, tick)
				tick++
				time.Sleep(5 * time.Millisecond)
			}
		}()
		return st, func() { close(stop); iwg.Wait() }
	}
	modes := []struct {
		name string
		opts []examon.StoreOption
	}{
		{"indexed", nil},
		{"linear", []examon.StoreOption{examon.WithLinearScan(true), examon.WithRollup(-1)}},
	}
	for _, nodes := range []int{64, 512} {
		hosts := mkHosts(nodes)
		for _, mode := range modes {
			mode := mode
			b.Run(fmt.Sprintf("selective/%s/%dnodes", mode.name, nodes), func(b *testing.B) {
				st, stopIngest := setup(b, hosts, mode.opts)
				defer stopIngest()
				srv, err := examon.NewRESTServer(st)
				if err != nil {
					b.Fatal(err)
				}
				ts := httptest.NewServer(srv)
				defer ts.Close()
				client := ts.Client()
				client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := 0
					for pb.Next() {
						host := hosts[i%len(hosts)]
						var url string
						if i%2 == 0 {
							// Aligned aggregation: index + rollup tier.
							url = ts.URL + "/api/v2/query?node=" + host +
								"&plugin=pmu_pub&metric=instret&core=1&agg=avg&step=60&from=0&to=240"
						} else {
							// Raw range query through the streaming encoder.
							url = ts.URL + "/api/v1/query?node=" + host +
								"&metric=cycle&core=2&from=10&to=50&limit=100000"
						}
						resp, err := client.Get(url)
						if err != nil {
							b.Error(err)
							return
						}
						_, _ = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != 200 {
							b.Errorf("query -> %d", resp.StatusCode)
							return
						}
						i++
					}
				})
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
			})
			b.Run(fmt.Sprintf("heatmap/%s/%dnodes", mode.name, nodes), func(b *testing.B) {
				st, stopIngest := setup(b, hosts, mode.opts)
				defer stopIngest()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Rollup-aligned whole-cluster heatmap: one multi-node
					// query over the dstat temperature gauge.
					hm, err := examon.BuildHeatmap(st, hosts, examon.HeatmapOptions{
						Plugin: "dstat_pub", Metric: "temperature.cpu_temp",
						From: 0, To: 60, BinWidth: 60,
					})
					if err != nil {
						b.Fatal(err)
					}
					if hm.Bins() != 1 {
						b.Fatalf("bins = %d", hm.Bins())
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "heatmaps/s")
			})
		}
	}
}
