// Jobcampaign: run a production-style benchmark campaign through the full
// stack — SLURM-like scheduling with EASY backfill, workloads modulating
// node power/thermals, and the ExaMon pipeline (pmu_pub + stats_pub ->
// MQTT broker -> time-series store) watching everything. Afterwards the
// collected data is queried back through the store, the way the paper's
// batch analyses use the RESTful API.
//
// Run with: go run ./examples/jobcampaign
package main

import (
	"fmt"
	"log"

	"montecimone/internal/core"
	"montecimone/internal/examon"
	"montecimone/internal/power"
	"montecimone/internal/report"
	"montecimone/internal/sched"
)

// job describes one campaign entry.
type job struct {
	name     string
	workload string
	activity power.Activity
	memBytes float64
	nodes    int
	limit    float64
	duration float64
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	system, err := core.NewSystem(core.Options{Nodes: 8, HPMPatch: true})
	if err != nil {
		return err
	}
	defer system.Close()
	if err := system.Boot(); err != nil {
		return err
	}
	// Campaigns run on the fixed cluster; apply the thermal fix first so
	// long HPL jobs survive (see examples/thermalrunaway for the
	// original enclosure).
	if err := system.Cluster.ApplyAirflowMitigation(); err != nil {
		return err
	}

	campaign := []job{
		{"hpl-8n", "hpl", power.ActivityHPL, 13.3e9, 8, 4200, 3700},
		{"stream-ddr", "stream.ddr", power.ActivityStreamDDR, 2.1e9, 1, 900, 420},
		{"stream-l2", "stream.l2", power.ActivityStreamL2, 2.1e9, 1, 900, 420},
		{"qe-lax-1", "qe", power.ActivityQE, 0.4e9, 1, 300, 38},
		{"qe-lax-2", "qe", power.ActivityQE, 0.4e9, 2, 300, 25},
		{"hpl-4n", "hpl", power.ActivityHPL, 13.3e9, 4, 7200, 6400},
	}
	start := system.Engine.Now()
	for _, cj := range campaign {
		cj := cj
		if _, err := system.Scheduler.Submit(sched.JobSpec{
			Name: cj.name, User: "bench", Nodes: cj.nodes,
			TimeLimit: cj.limit, Duration: cj.duration,
			OnStart: func(_ *sched.Job, hosts []string) {
				// Allocated hosts always resolve within the partition.
				_ = system.Cluster.RunWorkloadOn(hosts, cj.workload, cj.activity, cj.memBytes)
			},
			OnEnd: func(j *sched.Job, _ sched.JobState) {
				system.Cluster.ClearWorkloadOn(j.Hosts())
			},
		}); err != nil {
			return err
		}
	}

	// Drain the campaign.
	if err := system.Engine.RunUntil(start + 12000); err != nil {
		return err
	}
	end := system.Engine.Now()

	acct := &report.Table{Title: "campaign accounting (sacct)",
		Headers: []string{"JobID", "Name", "State", "Nodes", "Start", "End"}}
	for _, row := range system.Scheduler.Sacct() {
		acct.AddRow(fmt.Sprintf("%d", row.ID), row.Name, string(row.State),
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%.0f", row.Start-start), fmt.Sprintf("%.0f", row.End-start))
	}
	if err := acct.Write(log.Writer()); err != nil {
		return err
	}

	// Query the monitoring data back, Grafana-style.
	fmt.Printf("\nExaMon collected %d series from %d messages\n",
		system.DB.SeriesCount(), system.Broker.Published())
	hosts := system.Cluster.Hostnames()
	hm, err := examon.BuildHeatmap(system.DB, hosts, examon.HeatmapOptions{
		Plugin: "pmu_pub", Metric: "instret", Rate: true, SumCores: true,
		From: start, To: end, BinWidth: (end - start) / 72,
	})
	if err != nil {
		return err
	}
	fmt.Print(report.Heatmap("instructions/s per node over the campaign", hm))

	// One batch query like the paper's analysis scripts: mean cpu_temp
	// per node while the big HPL job ran, aggregated server-side by the
	// v2 query layer instead of copying the series out and averaging here.
	fmt.Println("\nmean cpu_temp during the campaign:")
	agg, err := examon.QueryAgg(system.DB, examon.Filter{
		Plugin: "dstat_pub", Metric: "temperature.cpu_temp",
		From: start, To: end,
	}, examon.AggOptions{Op: examon.AggAvg})
	if err != nil {
		return err
	}
	for _, s := range agg {
		if len(s.Points) == 1 {
			fmt.Printf("  %s: %.1f degC over %d samples\n", s.Tags.Node, s.Points[0].V, s.Points[0].N)
		}
	}
	return nil
}
