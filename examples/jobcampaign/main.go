// Jobcampaign: run a production-style benchmark campaign through the full
// stack — a declarative campaign spec expanded by the seeded generator
// into a Poisson job stream over the workload registry, SLURM-like
// scheduling with EASY backfill, phased workload models modulating node
// power/thermals, and the ExaMon pipeline (pmu_pub + stats_pub -> MQTT
// broker -> time-series store) watching everything. Afterwards the
// campaign report is printed and the collected data is queried back
// through the store, the way the paper's batch analyses use the RESTful
// API.
//
// Run with: go run ./examples/jobcampaign [-nodes N] [-seed S] [-policy P]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"montecimone/internal/campaign"
	"montecimone/internal/examon"
	"montecimone/internal/report"
	"montecimone/internal/sched"
)

func main() {
	nodes := flag.Int("nodes", 8, "compute nodes (synthetic slots beyond 8)")
	seed := flag.Int64("seed", 1, "campaign generator seed")
	policy := flag.String("policy", "easy", "scheduling policy: "+strings.Join(sched.PolicyNames(), "|"))
	flag.Parse()
	if err := run(*nodes, *seed, *policy); err != nil {
		log.Fatal(err)
	}
}

// spec builds the demo campaign: a Poisson stream over the paper's
// workload catalogue, sized to the partition.
func spec(nodes int, seed int64, policy string) campaign.Spec {
	jobs := 2 * nodes
	if jobs < 8 {
		jobs = 8
	}
	return campaign.Spec{
		Name: "jobcampaign", Nodes: nodes, Seed: seed, HorizonS: 12000,
		Policy: policy, Monitor: true, Mitigated: true,
		Arrival: &campaign.Arrival{Process: campaign.ProcessPoisson, RatePerHour: 240, Jobs: jobs},
		Mix: []campaign.MixEntry{
			{Workload: "hpl", Weight: 3, NodesMin: 2, NodesMax: nodes, DurationS: 900},
			{Workload: "stream.ddr", Weight: 2, NodesMin: 1, NodesMax: 2, DurationS: 420},
			{Workload: "stream.l2", Weight: 1, DurationS: 420},
			{Workload: "qe", Weight: 2, NodesMin: 1, NodesMax: 2},
		},
	}
}

func run(nodes int, seed int64, policy string) error {
	r, err := campaign.NewRunner(spec(nodes, seed, policy))
	if err != nil {
		return err
	}
	defer r.Close()
	start := r.StartTime()
	if err := r.Drain(); err != nil {
		return err
	}
	end := r.System().Engine.Now()

	res := r.Result()
	if err := res.WriteReport(log.Writer()); err != nil {
		return err
	}

	// Query the monitoring data back, Grafana-style.
	system := r.System()
	fmt.Printf("\nExaMon collected %d series from %d messages\n",
		system.DB.SeriesCount(), system.Broker.Published())
	hosts := system.Cluster.Hostnames()
	hm, err := examon.BuildHeatmap(system.DB, hosts, examon.HeatmapOptions{
		Plugin: "pmu_pub", Metric: "instret", Rate: true, SumCores: true,
		From: start, To: end, BinWidth: (end - start) / 72,
	})
	if err != nil {
		return err
	}
	fmt.Print(report.Heatmap("instructions/s per node over the campaign", hm))

	// One batch query like the paper's analysis scripts: mean cpu_temp
	// per node over the campaign, aggregated server-side by the v2 query
	// layer instead of copying the series out and averaging here.
	fmt.Println("\nmean cpu_temp during the campaign:")
	agg, err := examon.QueryAgg(system.DB, examon.Filter{
		Plugin: "dstat_pub", Metric: "temperature.cpu_temp",
		From: start, To: end,
	}, examon.AggOptions{Op: examon.AggAvg})
	if err != nil {
		return err
	}
	for _, s := range agg {
		if len(s.Points) == 1 {
			fmt.Printf("  %s: %.1f degC over %d samples\n", s.Tags.Node, s.Points[0].V, s.Points[0].N)
		}
	}
	return nil
}
