// Powerbudget: run the same benchmark campaign under a cluster power
// budget with a power-blind policy (easy: the plane's DVFS governors are
// the only enforcement, reacting after the draw exceeds the budget) and
// with the power-aware powercap policy (placements that would exceed the
// budget are delayed and land on the coolest nodes, so the budget is
// honoured by construction and DVFS only trims noise).
//
// Run with: go run ./examples/powerbudget
package main

import (
	"fmt"
	"log"
	"os"

	"montecimone/internal/cluster"
	"montecimone/internal/core"
	"montecimone/internal/examon"
	"montecimone/internal/power"
	"montecimone/internal/report"
	"montecimone/internal/sched"
	"montecimone/internal/workload"
)

// The budget covers the nine shunt-monitored rails per node (what
// power_pub measures, as on the real board): 8 idle nodes draw ~38.5 W,
// 8 HPL nodes ~47.5 W, so 43 W admits one 4-node HPL job comfortably but
// not two at once.
const (
	nodes   = 8
	budgetW = 43.0
)

type outcome struct {
	policy       string
	maxDrawW     float64
	meanDrawW    float64
	overBudgetS  float64
	meanWaitS    float64
	makespanS    float64
	throttleSecs float64
	completed    int
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Printf("power budget study: %d nodes (mitigated enclosure), budget %.0f W\n", nodes, budgetW)
	idleW := float64(nodes) * power.NewModel().TotalMilliwatts(power.PhaseRun, power.ActivityIdle) / 1000
	fmt.Printf("idle floor: %.1f W on the monitored rails; full-machine HPL would draw well above the budget\n\n", idleW)

	var rows []outcome
	for _, policy := range []string{"easy", "powercap"} {
		out, err := campaign(policy)
		if err != nil {
			return err
		}
		rows = append(rows, out)
	}

	t := &report.Table{Headers: []string{
		"Policy", "MaxDraw(W)", "MeanDraw(W)", "OverBudget(s)", "MeanWait(s)", "Makespan(s)", "Throttled(s)", "Done",
	}}
	for _, r := range rows {
		t.AddRow(r.policy,
			fmt.Sprintf("%.1f", r.maxDrawW),
			fmt.Sprintf("%.1f", r.meanDrawW),
			fmt.Sprintf("%.0f", r.overBudgetS),
			fmt.Sprintf("%.0f", r.meanWaitS),
			fmt.Sprintf("%.0f", r.makespanS),
			fmt.Sprintf("%.0f", r.throttleSecs),
			fmt.Sprintf("%d", r.completed),
		)
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}
	for _, r := range rows {
		if r.policy == "powercap" {
			if r.maxDrawW <= budgetW {
				fmt.Printf("\npowercap held the measured draw at or below the %.0f W budget throughout (max %.1f W)\n",
					budgetW, r.maxDrawW)
			} else {
				fmt.Printf("\nWARNING: powercap exceeded the budget (max %.1f W > %.0f W)\n", r.maxDrawW, budgetW)
			}
		}
	}
	return nil
}

// campaign boots a budgeted system under the named policy, runs a mixed
// job sequence and scores the power-plane telemetry and the accounting.
func campaign(policy string) (outcome, error) {
	s, err := core.NewSystem(core.Options{
		Nodes:        nodes,
		NoMonitor:    true, // power_pub still runs: the plane needs it
		Policy:       policy,
		PowerBudgetW: budgetW,
	})
	if err != nil {
		return outcome{}, err
	}
	defer s.Close()
	if err := s.Boot(); err != nil {
		return outcome{}, err
	}
	// The paper's airflow fix keeps temperature out of the picture: this
	// study isolates the power budget.
	if err := s.Cluster.ApplyAirflowMitigation(); err != nil {
		return outcome{}, err
	}
	// Let the plane see the settled idle floor before the campaign, so
	// admission decisions start from an honest measurement.
	if err := s.Advance(60); err != nil {
		return outcome{}, err
	}
	start := s.Engine.Now()

	jobs := []struct {
		name     string
		class    string
		nodes    int
		duration float64
	}{
		{"hpl-a", "hpl", 4, 600},
		{"hpl-b", "hpl", 4, 600},
		{"stream-ddr", "stream.ddr", 2, 300},
		{"qe-sweep", "qe", 2, 300},
		{"hpl-c", "hpl", 2, 400},
	}
	var done int
	for _, j := range jobs {
		j := j
		model := workload.MustLookup(j.class)
		spec := sched.JobSpec{
			Name: j.name, User: "ops", Nodes: j.nodes,
			TimeLimit: j.duration + 300, Duration: j.duration,
			Workload: model,
			OnStart: func(_ *sched.Job, hosts []string) {
				_ = s.Cluster.RunWorkloadOn(hosts, model.Name, model.Steady, model.MemBytes)
			},
			OnEnd: func(job *sched.Job, st sched.JobState) {
				s.Cluster.ClearWorkloadOn(job.Hosts())
				if st == sched.StateCompleted {
					done++
				}
			},
		}
		if _, err := s.Scheduler.Submit(spec); err != nil {
			return outcome{}, err
		}
	}
	if err := s.Engine.RunUntil(start + 4000); err != nil {
		return outcome{}, err
	}
	end := s.Engine.Now()

	out := outcome{policy: policy, completed: done}
	// Score the plane's own draw_w telemetry over the campaign window.
	series := s.DB.Query(examon.Filter{
		Node: cluster.MasterHostname, Plugin: "powerplane", Metric: "draw_w", From: start,
	})
	n := 0
	for _, sr := range series {
		for _, p := range sr.Points {
			if p.V > out.maxDrawW {
				out.maxDrawW = p.V
			}
			if p.V > budgetW {
				out.overBudgetS++ // one control period per sample
			}
			out.meanDrawW += p.V
			n++
		}
	}
	if n > 0 {
		out.meanDrawW /= float64(n)
	}
	var waits float64
	var started int
	for _, row := range s.Scheduler.Sacct() {
		if row.Start > 0 {
			waits += row.Start - row.Submit
			started++
			if row.End > out.makespanS {
				out.makespanS = row.End
			}
		}
	}
	if started > 0 {
		out.meanWaitS = waits / float64(started)
	}
	out.makespanS -= start
	_ = end
	for i := 0; i < s.Cluster.Size(); i++ {
		host := s.Cluster.Node(i).Hostname()
		if gov := s.Plane.NodeGovernor(host); gov != nil {
			out.throttleSecs += gov.ThrottledSeconds()
		}
	}
	return out, nil
}
