// Policystudy compares the pluggable scheduling policies (FIFO, EASY
// backfill, shortest-job-first, best-fit packing) on a synthetic 64-node
// partition — the scheduler scaled beyond the paper's eight nodes — under
// a mixed campaign of wide long runs and narrow short runs, the shape that
// separates backfill strategies. For each policy it reports the campaign
// makespan, the mean and maximum queue wait, and the node utilisation over
// the makespan.
//
// Run with: go run ./examples/policystudy
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"montecimone/internal/report"
	"montecimone/internal/sched"
	"montecimone/internal/sim"
)

const partitionNodes = 64

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	specs := campaign()
	fmt.Fprintf(w, "policy study: %d jobs on %d nodes\n\n", len(specs), partitionNodes)
	t := &report.Table{Headers: []string{"Policy", "Makespan", "MeanWait", "MaxWait", "Util%"}}
	for _, name := range sched.PolicyNames() {
		m, err := runPolicy(name, specs)
		if err != nil {
			return err
		}
		t.AddRow(name,
			fmt.Sprintf("%.0f s", m.makespan),
			fmt.Sprintf("%.0f s", m.meanWait),
			fmt.Sprintf("%.0f s", m.maxWait),
			fmt.Sprintf("%.1f", m.utilisation*100),
		)
	}
	return t.Write(w)
}

// campaign builds a deterministic mixed workload: a few full- and
// half-partition blockers between bursts of narrow jobs of varied length.
func campaign() []sched.JobSpec {
	var specs []sched.JobSpec
	for i := 0; i < 160; i++ {
		spec := sched.JobSpec{
			Name:      fmt.Sprintf("job%03d", i),
			User:      "study",
			Nodes:     1 + (i*7)%13,
			TimeLimit: 200 + float64((i*31)%600),
		}
		switch {
		case i%40 == 0:
			spec.Nodes = partitionNodes // full-machine blocker
			spec.TimeLimit = 2400
		case i%16 == 0:
			spec.Nodes = partitionNodes/2 + 1 // wide blocker
			spec.TimeLimit = 1500
		}
		// Users overestimate limits; the modelled runtime is shorter.
		spec.Duration = spec.TimeLimit * (0.55 + 0.4*float64((i*17)%10)/10)
		specs = append(specs, spec)
	}
	return specs
}

type metrics struct {
	makespan    float64
	meanWait    float64
	maxWait     float64
	utilisation float64
}

func runPolicy(name string, specs []sched.JobSpec) (metrics, error) {
	pol, err := sched.PolicyByName(name)
	if err != nil {
		return metrics{}, err
	}
	engine := sim.NewEngine()
	hosts := make([]string, partitionNodes)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("syn%03d", i+1)
	}
	s, err := sched.New(engine, "synthetic", hosts, sched.WithPolicy(pol))
	if err != nil {
		return metrics{}, err
	}
	// Jobs arrive in four staggered waves rather than all at once, so the
	// queue never degenerates to a single drain.
	for i, spec := range specs {
		spec := spec
		at := float64(i/40) * 900
		if _, err := engine.ScheduleAt(at, "submit", func(*sim.Engine) {
			if _, err := s.Submit(spec); err != nil {
				panic(err) // campaign specs are validated by construction
			}
		}); err != nil {
			return metrics{}, err
		}
	}
	if err := engine.Run(); err != nil {
		return metrics{}, err
	}
	var m metrics
	m.makespan = engine.Now()
	var busyNodeSeconds float64
	for _, row := range s.Sacct() {
		wait := row.Start - row.Submit
		m.meanWait += wait
		if wait > m.maxWait {
			m.maxWait = wait
		}
		busyNodeSeconds += float64(row.Nodes) * (row.End - row.Start)
	}
	m.meanWait /= float64(len(specs))
	m.utilisation = busyNodeSeconds / (m.makespan * partitionNodes)
	return m, nil
}
