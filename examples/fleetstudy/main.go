// Fleetstudy demonstrates the federated multi-cluster runner: three
// heterogeneous sites — the paper's mitigated 8-node Monte Cimone under
// a 50 W budget, a small hot 4-node test enclosure and a cold 8-node
// sister site — serve two tenants, one submitting explicit campaigns and
// one a Poisson stream of identical training campaigns. The meta-
// scheduler routes every arrival by predicted power/thermal headroom
// minus queue depth; the study prints the routing decisions, runs the
// fleet at worker-pool widths 1 and the CPU count, verifies the reports
// are byte-identical (the fleet determinism contract), and shows the
// per-cluster and federated-telemetry breakdowns.
//
// Run with: go run ./examples/fleetstudy
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"

	"montecimone/internal/campaign"
	"montecimone/internal/fleet"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func spec() fleet.Spec {
	sweep := campaign.Spec{
		Name: "sweep", HorizonS: 1500,
		Arrival: &campaign.Arrival{Process: "poisson", RatePerHour: 120, Jobs: 5},
		Mix: []campaign.MixEntry{
			{Workload: "hpl", Weight: 1, NodesMin: 2, NodesMax: 4, DurationS: 250},
			{Workload: "stream.ddr", Weight: 1, NodesMin: 1, NodesMax: 2, DurationS: 100},
		},
	}
	wide := campaign.Spec{
		Name: "wide", HorizonS: 1500,
		Jobs: []campaign.JobEntry{
			{Name: "wide-1", Workload: "qe", Nodes: 6, SubmitS: 0, DurationS: 300},
			{Name: "wide-2", Workload: "hpl", Nodes: 8, SubmitS: 150, DurationS: 240},
		},
	}
	train := campaign.Spec{
		Name: "train", HorizonS: 1000,
		Arrival: &campaign.Arrival{Process: "poisson", RatePerHour: 90, Jobs: 3},
		Mix: []campaign.MixEntry{
			{Workload: "stream.l2", Weight: 1, NodesMin: 1, NodesMax: 2, DurationS: 180},
		},
	}
	return fleet.Spec{
		Name: "fleetstudy", Seed: 42,
		Clusters: []fleet.ClusterSpec{
			{ID: "bologna", Nodes: 8, PowerBudgetW: 50, Mitigated: true},
			{ID: "testbed", Nodes: 4, AmbientC: 34},
			{ID: "sister", Nodes: 8, AmbientC: 16, Shards: 2},
		},
		Tenants: []fleet.TenantSpec{
			{Name: "cfd", Campaigns: []fleet.Submission{
				{ArriveS: 0, Spec: sweep},
				{ArriveS: 200, Spec: wide},
			}},
			{Name: "ml", Stream: &fleet.Stream{RatePerHour: 15, Count: 4, Template: train}},
		},
	}
}

func run(w io.Writer) error {
	s := spec()
	f, err := fleet.New(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fleet study: %d clusters, %d tenants, seed %d\n\n",
		len(s.Clusters), len(s.Tenants), s.Seed)
	fmt.Fprintln(w, "routing decisions (serial pre-pass, before any cluster runs):")
	for _, a := range f.Assignments() {
		fmt.Fprintf(w, "  t=%7.1f  %-14s -> %-8s score %6.1f (pred %4.1f W, %d jobs)\n",
			a.ArriveS, a.Campaign.Name, a.ClusterID, a.Score, a.DrawW, a.Demand.Jobs)
	}
	fmt.Fprintln(w)

	serial, err := fleet.Run(s, 1)
	if err != nil {
		return err
	}
	wide := runtime.GOMAXPROCS(0)
	parallel, err := fleet.Run(s, wide)
	if err != nil {
		return err
	}
	var a, b bytes.Buffer
	if err := serial.WriteReport(&a); err != nil {
		return err
	}
	if err := parallel.WriteReport(&b); err != nil {
		return err
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		return fmt.Errorf("determinism violated: reports differ between 1 and %d workers", wide)
	}
	fmt.Fprintf(w, "determinism: report byte-identical at 1 and %d workers (max active %d)\n\n",
		parallel.Stats.Workers, parallel.Stats.MaxActive)
	_, err = io.Copy(w, &a)
	return err
}
