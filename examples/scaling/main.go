// Scaling: reproduce the Fig. 2 strong-scaling study (HPL at N=40704,
// NB=192 from one to eight nodes over the 1 GbE fabric, ten repetitions
// per point) and run the two interconnect what-ifs the paper motivates:
// working FDR InfiniBand RDMA and depth-1 panel lookahead.
//
// It also validates the distributed LU numerics on the simulated cluster
// at a test-scale problem before trusting the performance model.
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"os"

	"montecimone/internal/core"
	"montecimone/internal/hpl"
	"montecimone/internal/mpi"
	"montecimone/internal/netsim"
	"montecimone/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// First: prove the communication structure computes the right answer.
	// Run the real-payload distributed LU on a 4-node simulated cluster
	// and check the HPL residual criterion.
	if err := verifyNumerics(); err != nil {
		return err
	}

	// The Fig. 2 series.
	points, err := core.Fig2(1)
	if err != nil {
		return err
	}
	if err := report.Fig2(points).Write(os.Stdout); err != nil {
		return err
	}

	// What-if: the FDR InfiniBand HCAs with working RDMA.
	ib := netsim.InfinibandFDRWorking()
	fmt.Println("\ninterconnect what-if (8 nodes):")
	for _, tc := range []struct {
		name string
		cfg  hpl.Config
	}{
		{"1 GbE (measured)", hpl.Config{N: core.PaperN, NB: core.PaperNB, Nodes: 8}},
		{"FDR IB + RDMA", hpl.Config{N: core.PaperN, NB: core.PaperNB, Nodes: 8, Link: &ib}},
		{"1 GbE + lookahead", hpl.Config{N: core.PaperN, NB: core.PaperNB, Nodes: 8, Lookahead: true}},
	} {
		res, err := hpl.Simulate(tc.cfg)
		if err != nil {
			return err
		}
		fmt.Printf("  %-18s %6.2f GFLOP/s (%4.1f%% of peak, comm %4.0f s)\n",
			tc.name, res.GFlops, 100*res.Efficiency, res.CommSeconds)
	}
	return nil
}

func verifyNumerics() error {
	const n, nb, seed = 128, 32, 7
	fabric, err := netsim.NewFabric(4, netsim.GigabitEthernet())
	if err != nil {
		return err
	}
	placement := []int{0, 0, 1, 1, 2, 2, 3, 3} // 8 ranks over 4 nodes
	world, err := mpi.NewWorld(fabric, placement)
	if err != nil {
		return err
	}
	var lu *hpl.Matrix
	var pivots []int
	err = world.Run(func(p *mpi.Proc) error {
		out, piv, err := hpl.DistFactor(p, n, nb, seed)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			lu, pivots = out, piv
		}
		return nil
	})
	if err != nil {
		return err
	}
	a, b, err := hpl.RandomSystem(n, seed)
	if err != nil {
		return err
	}
	x, err := hpl.Solve(lu, pivots, b)
	if err != nil {
		return err
	}
	res, err := hpl.Residual(a, x, b)
	if err != nil {
		return err
	}
	fmt.Printf("distributed LU validation: n=%d over 8 ranks on 4 nodes, scaled residual %.3f (HPL passes < 16)\n\n", n, res)
	return nil
}
