// Quickstart: assemble the Monte Cimone cluster, boot it, and reproduce
// the paper's headline single-node result — upstream HPL at N=40704,
// NB=192 sustaining ~1.86 GFLOP/s, 46.5 % of the FU740's 4 GFLOP/s peak.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"montecimone/internal/core"
	"montecimone/internal/hpl"
	"montecimone/internal/power"
	"montecimone/internal/thermal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Build the eight-node machine with monitoring enabled and press all
	// the power buttons. BootAndSettle returns once every node walked
	// through the R1 (power-on) and R2 (bootloader) phases of Fig. 4.
	system, err := core.NewSystem(core.Options{Nodes: 8})
	if err != nil {
		return err
	}
	defer system.Close()
	if err := system.Boot(); err != nil {
		return err
	}
	fmt.Printf("cluster up: %d nodes, %s each (%.1f GFLOP/s peak/node)\n",
		system.Cluster.Size(), system.Cluster.Machine().Name,
		system.Cluster.Machine().PeakNodeFlops()/1e9)

	// Model the paper's single-node HPL run.
	result, err := hpl.Simulate(hpl.Config{N: core.PaperN, NB: core.PaperNB, Nodes: 1})
	if err != nil {
		return err
	}
	fmt.Printf("single-node HPL: %.2f GFLOP/s (%.1f%% of peak), runtime %.0f s\n",
		result.GFlops, 100*result.Efficiency, result.Seconds)

	// Put the HPL activity profile on node 1 and watch power and
	// temperature respond for ten virtual minutes.
	nd := system.Cluster.Node(0)
	if err := nd.SetWorkload("hpl", power.ActivityHPL, 13.3e9); err != nil {
		return err
	}
	if err := system.Advance(600); err != nil {
		return err
	}
	fmt.Printf("node %s under HPL: %.3f W total board power, SoC at %.1f degC\n",
		nd.Hostname(), nd.TotalMilliwatts()/1000, nd.Temperature(thermal.SensorCPU))

	// The ExaMon stack has been sampling throughout.
	fmt.Printf("ExaMon collected %d series (%d MQTT messages)\n",
		system.DB.SeriesCount(), system.Broker.Published())
	return nil
}
