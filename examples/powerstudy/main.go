// Powerstudy: reproduce the paper's power characterisation (Section V-B):
// Table VI rail-by-rail budgets for every workload, the Fig. 3 benchmark
// power traces and the Fig. 4 boot trace with its leakage / clock-tree /
// operating-system decomposition.
//
// Run with: go run ./examples/powerstudy
package main

import (
	"fmt"
	"log"
	"os"

	"montecimone/internal/core"
	"montecimone/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Table VI: per-rail power for idle, the four benchmarks and the two
	// boot regions.
	if err := report.TableVI(core.TableVI()).Write(os.Stdout); err != nil {
		return err
	}

	// Section V-B decomposition: where the idle watts go.
	d := core.Decomposition()
	fmt.Printf("\nidle %.3f W -> HPL %.3f W\n", d.IdleTotalMilliwatts/1000, d.HPLTotalMilliwatts/1000)
	fmt.Printf("core idle decomposition: leakage %.0f mW (%.0f%%), clock tree + dynamic %.0f mW (%.0f%%), OS %.0f mW (%.0f%%)\n",
		d.CoreLeakage, 100*d.CoreLeakageFrac,
		d.CoreClockTree, 100*d.CoreClockTreeFrac,
		d.CoreOS, 100*d.CoreOSFrac)
	fmt.Printf("DDR banks: %.0f mW leakage (%.0f%% of idle bank power)\n\n",
		d.DDRLeakage, 100*d.DDRLeakageFrac)

	// Fig. 3: 8-second power snapshots during each benchmark, raw shunt
	// samples averaged over 1 ms windows.
	for _, workload := range []string{"hpl", "stream.l2", "stream.ddr", "qe"} {
		traces, err := core.Fig3(workload, 1)
		if err != nil {
			return err
		}
		core8 := traces.Traces.Lookup("core")
		ddr := traces.Traces.Lookup("ddr_mem")
		fmt.Printf("Fig. 3 [%s]: core %.0f mW, ddr_mem %.0f mW over %d x 1 ms windows\n",
			workload, core8.Mean(), ddr.Mean(), core8.Len())
	}

	// Fig. 4: the boot trace and its regions.
	bt, err := core.Fig4(1)
	if err != nil {
		return err
	}
	fmt.Printf("\nFig. 4 boot regions (core rail): R1 %.0f mW, R2 %.0f mW, R3 %.0f mW; PLL active at t=%.1f s\n",
		bt.R1Mean, bt.R2Mean, bt.R3Mean, bt.PLLActivationAt)
	coreTrace := bt.Traces.Lookup("core")
	vals := make([]float64, coreTrace.Len())
	for i := range vals {
		vals[i] = coreTrace.At(i).Value
	}
	fmt.Printf("core rail: %s\n", report.Sparkline(report.Downsample(vals, 72)))
	return nil
}
