// Chaosstudy compares the scheduling policies under failure: it runs the
// standard chaos campaign — the demo job mix with node crash/reboot
// cycles, thermal runaway injections driving the 107 degC trip, brownout
// budget steps, a network degradation window and a straggler node, with
// NODE_FAIL requeueing and phase-boundary checkpoint/restart on — against
// fifo, easy and powercap on the 8-node machine with a 40 W power plane,
// and reports fleet availability, goodput, end-state mix, requeue pressure
// and mean time to repair. Every policy sees the identical fault timeline
// (the fault plan is compiled from its own seeded RNG streams before the
// campaign starts), so the table isolates the policy's contribution.
//
// Run with: go run ./examples/chaosstudy
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"montecimone/internal/campaign"
	"montecimone/internal/report"
	"montecimone/internal/sched"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	base := campaign.ChaosSpec(8, "easy", 40)
	fmt.Fprintf(w, "chaos study: %d jobs on %d nodes, budget %.0f W, standard fault storm (seed %d)\n\n",
		base.Arrival.Jobs, base.Nodes, base.PowerBudgetW, base.Seed)
	t := &report.Table{Headers: []string{
		"Policy", "Completed", "NodeFail", "Avail%", "Goodput%", "Requeues", "Repairs", "MTTR",
	}}
	for _, policy := range []string{"fifo", "easy", "powercap"} {
		spec := campaign.ChaosSpec(8, policy, 40)
		res, err := campaign.Run(spec)
		if err != nil {
			return fmt.Errorf("%s: %w", policy, err)
		}
		t.AddRow(policy,
			fmt.Sprintf("%d/%d", res.EndStates[sched.StateCompleted], len(res.Jobs)),
			fmt.Sprintf("%d", res.EndStates[sched.StateNodeFail]),
			fmt.Sprintf("%.2f", res.AvailabilityPct),
			fmt.Sprintf("%.1f", res.GoodputPct),
			fmt.Sprintf("%d", res.Requeues),
			fmt.Sprintf("%d", res.Fault.Repairs),
			fmt.Sprintf("%.0f s", res.Fault.MTTRS),
		)
	}
	return t.Write(w)
}
