// Thermalrunaway: replay the Fig. 6 incident end to end. The first
// full-machine HPL runs with the original lid-on enclosure drive node 7
// (sitting in the PSU exhaust path) into thermal runaway; it trips at
// 107 degC and the scheduler records a NODE_FAIL. The operators' fix —
// removing the lid and increasing the vertical blade spacing — drops the
// hottest node from ~71 degC to ~39 degC and the re-run completes.
//
// Run with: go run ./examples/thermalrunaway
package main

import (
	"fmt"
	"log"

	"montecimone/internal/core"
	"montecimone/internal/power"
	"montecimone/internal/report"
	"montecimone/internal/sched"
	"montecimone/internal/thermal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	system, err := core.NewSystem(core.Options{Nodes: 8})
	if err != nil {
		return err
	}
	defer system.Close()
	if err := system.Boot(); err != nil {
		return err
	}

	// Submit the first HPL run through SLURM, wiring the workload onto
	// the allocated nodes.
	submit := func(name string) (*sched.Job, error) {
		return system.Scheduler.Submit(sched.JobSpec{
			Name: name, User: "ops", Nodes: 8, TimeLimit: 5400, Duration: 3700,
			OnStart: func(_ *sched.Job, hosts []string) {
				// Allocated hosts always resolve; a failure here would be
				// a programming error surfaced by the run's final state.
				_ = system.Cluster.RunWorkloadOn(hosts, "hpl", power.ActivityHPL, 13.3e9)
			},
			OnEnd: func(j *sched.Job, _ sched.JobState) {
				system.Cluster.ClearWorkloadOn(j.Hosts())
			},
		})
	}
	job, err := submit("hpl-first-runs")
	if err != nil {
		return err
	}
	for i := 0; i < 7200; i++ {
		if err := system.Advance(1); err != nil {
			return err
		}
		if st := job.State(); st != sched.StateRunning && st != sched.StatePending {
			break
		}
	}
	fmt.Printf("first HPL run: %s\n", job.State())
	hottest(system)

	// Apply the mitigation and return node 7 to service.
	fmt.Println("\napplying mitigation: lids off, increased vertical spacing, node 7 power-cycled")
	if err := system.Cluster.ApplyAirflowMitigation(); err != nil {
		return err
	}
	if err := system.Scheduler.NodeUp("mc07"); err != nil {
		return err
	}
	if err := system.Advance(120); err != nil {
		return err
	}

	rerun, err := submit("hpl-after-fix")
	if err != nil {
		return err
	}
	for i := 0; i < 7200; i++ {
		if err := system.Advance(1); err != nil {
			return err
		}
		if st := rerun.State(); st != sched.StateRunning && st != sched.StatePending {
			break
		}
	}
	fmt.Printf("\nre-run after fix: %s\n", rerun.State())
	hottest(system)

	// The whole story is also visible in the ExaMon temperature data.
	acct := &report.Table{Title: "\nsacct", Headers: []string{"JobID", "Name", "State"}}
	for _, row := range system.Scheduler.Sacct() {
		acct.AddRow(fmt.Sprintf("%d", row.ID), row.Name, string(row.State))
	}
	return acct.Write(log.Writer())
}

// hottest prints the current per-node SoC temperatures.
func hottest(system *core.System) {
	peak, peakHost := 0.0, ""
	for i := 0; i < system.Cluster.Size(); i++ {
		nd := system.Cluster.Node(i)
		temp := nd.Temperature(thermal.SensorCPU)
		fmt.Printf("  %s: %5.1f degC (%s)\n", nd.Hostname(), temp, nd.State())
		if temp > peak {
			peak, peakHost = temp, nd.Hostname()
		}
	}
	fmt.Printf("  hottest: %s at %.1f degC\n", peakHost, peak)
}
