package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldBench = `goos: linux
BenchmarkCampaignThroughput/phased/64nodes-4   10   1000000 ns/op   2048 B/op   100 allocs/op   250.0 jobs/s
BenchmarkFleetThroughput/clusters2/workers2-4   5   2000000 ns/op   4096 B/op   200 allocs/op   500.0 jobs/s
`

const newBench = `goos: linux
BenchmarkCampaignThroughput/phased/64nodes-4   10   1100000 ns/op   2048 B/op   150 allocs/op   300.0 jobs/s
BenchmarkFleetThroughput/clusters2/workers2-4   5   1900000 ns/op   4096 B/op   200 allocs/op   520.0 jobs/s
`

// A missing baseline is the first run of a CI job, not an error: clear
// message, exit success, new file validated because it seeds the cache.
func TestMissingBaselineIsGraceful(t *testing.T) {
	dir := t.TempDir()
	newPath := writeBench(t, dir, "new.txt", newBench)
	var sb strings.Builder
	if err := run(&sb, filepath.Join(dir, "absent.txt"), newPath, 25, []string{"allocs/op"}); err != nil {
		t.Fatalf("missing baseline errored: %v", err)
	}
	if !strings.Contains(sb.String(), "no baseline") || !strings.Contains(sb.String(), "seeds the baseline") {
		t.Errorf("unclear message: %q", sb.String())
	}
	// A missing or empty NEW file is still an error even without a baseline.
	if err := run(&sb, filepath.Join(dir, "absent.txt"), filepath.Join(dir, "alsoabsent.txt"), 0, nil); err == nil {
		t.Error("missing new file not reported")
	}
	empty := writeBench(t, dir, "empty.txt", "no bench lines here\n")
	if err := run(&sb, filepath.Join(dir, "absent.txt"), empty, 0, nil); err == nil {
		t.Error("unparseable new file not reported")
	}
}

// Custom units (jobs/s) must appear in the delta table alongside the
// allocator and time columns.
func TestDiffReportsCustomUnits(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBench(t, dir, "old.txt", oldBench)
	newPath := writeBench(t, dir, "new.txt", newBench)
	var sb strings.Builder
	if err := run(&sb, oldPath, newPath, 0, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"jobs/s", "allocs/op", "ns/op",
		"BenchmarkFleetThroughput/clusters2/workers2", "+20.0%", "+4.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

// The allocs/op gate fires on the 50% regression; jobs/s gains never gate.
func TestGateFiresOnAllocRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBench(t, dir, "old.txt", oldBench)
	newPath := writeBench(t, dir, "new.txt", newBench)
	var sb strings.Builder
	err := run(&sb, oldPath, newPath, 25, []string{"allocs/op"})
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("err = %v, want allocs/op gate failure", err)
	}
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Error("regression block missing from output")
	}
	// Gating ns/op only: the 10% time regression is under 25%, so it passes.
	sb.Reset()
	if err := run(&sb, oldPath, newPath, 25, []string{"ns/op"}); err != nil {
		t.Fatalf("ns/op gate at 25%% fired on a 10%% drift: %v", err)
	}
}
