// Command benchdiff compares two `go test -bench` output files and prints
// a benchstat-style old-vs-new table per benchmark and metric (ns/op,
// B/op, allocs/op and any custom b.ReportMetric units such as jobs/s).
// Multiple -count runs of the same benchmark are averaged. It is the
// in-repo replacement for x/perf/cmd/benchstat in the CI bench-smoke job,
// which compares each run's numbers against the previous run's cached
// baseline; it is equally usable by hand:
//
//	go test -run '^$' -bench . -benchmem | tee new.txt
//	benchdiff old.txt new.txt
//
// With -fail-over P the command exits non-zero if any time/alloc metric
// (ns/op, B/op, allocs/op — where bigger is worse) regressed by more than
// P percent, turning the diff into a CI gate; -gate narrows the gating to
// a comma-separated unit list. Each entry is "unit" or "unit:percent":
// the suffix overrides -fail-over per unit, and listing a custom
// throughput unit (jobs/s) gates on DROPS beyond its threshold. CI uses
// "-gate allocs/op,jobs/s:10" — allocation counts are deterministic,
// campaign throughput must not fall more than 10%, and 1x wall times on
// shared runners are too noisy to gate.
//
// A missing old (baseline) file is not an error: the first run of a CI
// job has no cached baseline yet, so benchdiff prints a clear one-line
// message and exits 0 — the current run's output becomes the baseline
// the next run diffs against. A missing NEW file is still an error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"
	"strings"

	"montecimone/internal/benchparse"
)

func main() {
	failOver := flag.Float64("fail-over", 0,
		"exit non-zero if a gated metric regressed by more than this percent (0 disables)")
	gate := flag.String("gate", "",
		"comma-separated unit[:percent] entries eligible to gate (default: ns/op, B/op and allocs/op at -fail-over)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-fail-over P] [-gate units] old.txt new.txt")
		os.Exit(2)
	}
	var gateUnits []string
	if *gate != "" {
		gateUnits = strings.Split(*gate, ",")
	}
	if err := run(os.Stdout, flag.Arg(0), flag.Arg(1), *failOver, gateUnits); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, oldPath, newPath string, failOver float64, gateUnits []string) error {
	oldRuns, err := benchparse.ParseFile(oldPath)
	if errors.Is(err, fs.ErrNotExist) {
		// First run of a CI job: no cached baseline exists yet. Validate the
		// new file anyway (it seeds the cache), report, and succeed.
		if _, nerr := benchparse.ParseFile(newPath); nerr != nil {
			return nerr
		}
		fmt.Fprintf(w, "no baseline at %s; nothing to diff (this run's output seeds the baseline)\n", oldPath)
		return nil
	}
	if err != nil {
		return err
	}
	newRuns, err := benchparse.ParseFile(newPath)
	if err != nil {
		return err
	}
	table, regressed := benchparse.Diff(oldRuns, newRuns, failOver, gateUnits...)
	if len(table) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	names := make([]string, 0, len(table))
	for name := range table {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s\n", name)
		for _, row := range table[name] {
			fmt.Fprintf(w, "  %-12s %14s -> %14s  %s\n",
				row.Unit, benchparse.FormatValue(row.Old), benchparse.FormatValue(row.New), row.Delta)
		}
	}
	if len(regressed) > 0 {
		fmt.Fprintf(w, "\nREGRESSED beyond %.1f%%:\n", failOver)
		for _, r := range regressed {
			fmt.Fprintf(w, "  %s\n", r)
		}
		return fmt.Errorf("%d metric(s) regressed beyond %.1f%%", len(regressed), failOver)
	}
	return nil
}
