// Command mcspack drives the Spack-like package manager for the
// linux-sifive-u74mc target: install specs, list what is installed,
// inspect the dependency DAG and the generated environment modules.
//
// Usage:
//
//	mcspack install <spec>...   # e.g. mcspack install hpl@2.3 stream
//	mcspack stack               # install and print the Table I user stack
//	mcspack spec <spec>         # show the concretised DAG
//	mcspack find                # list installed packages
//	mcspack modules             # list environment modules
//	mcspack load <module>       # print the env changes of module load
//
// Flags: [-target u74mc] [-compiler gcc@10.3.0]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"montecimone/internal/archspec"
	"montecimone/internal/report"
	"montecimone/internal/spack"
)

func main() {
	target := flag.String("target", "u74mc", "archspec microarchitecture target")
	compiler := flag.String("compiler", "gcc@10.3.0", "toolchain as name@version")
	flag.Parse()
	if err := run(os.Stdout, *target, *compiler, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "mcspack:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, target, compilerSpec string, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (install, stack, spec, find, modules, load)")
	}
	name, version, ok := strings.Cut(compilerSpec, "@")
	if !ok || name == "" || version == "" {
		return fmt.Errorf("compiler must be name@version, got %q", compilerSpec)
	}
	comp := spack.Compiler{Name: name, Version: version}
	installer, err := spack.NewInstaller(spack.BuiltinRepo(), target, comp)
	if err != nil {
		return err
	}
	flags, err := installer.CompilerFlags()
	if err != nil {
		return err
	}

	switch args[0] {
	case "install":
		if len(args) < 2 {
			return fmt.Errorf("install needs at least one spec")
		}
		fmt.Fprintf(w, "target: %s (%s)\n", installer.Triple(), flags)
		for _, specStr := range args[1:] {
			inst, err := installer.Install(specStr)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "installed %s (simulated native build %.0f s)\n", inst.Spec, inst.BuildSeconds)
		}
		return printFind(w, installer)
	case "stack":
		fmt.Fprintf(w, "target: %s (%s)\n", installer.Triple(), flags)
		rows, err := installer.InstallUserStack()
		if err != nil {
			return err
		}
		if err := report.TableI(rows).Write(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "total simulated native build time: %.1f h\n", installer.TotalBuildSeconds()/3600)
		return nil
	case "spec":
		if len(args) != 2 {
			return fmt.Errorf("spec needs exactly one argument")
		}
		parsed, err := spack.ParseSpec(args[1])
		if err != nil {
			return err
		}
		ta, err := archspec.Lookup(target)
		if err != nil {
			return err
		}
		root, err := spack.Concretize(spack.BuiltinRepo(), parsed, ta, comp)
		if err != nil {
			return err
		}
		for _, node := range root.Flatten() {
			fmt.Fprintf(w, "%s\n", node)
		}
		return nil
	case "find":
		return printFind(w, installer)
	case "modules":
		for _, m := range installer.Modules().Avail() {
			fmt.Fprintln(w, m)
		}
		return nil
	case "load":
		if len(args) != 2 {
			return fmt.Errorf("load needs exactly one module name")
		}
		// Loading only makes sense against an installed stack; install
		// the user stack first so the demo is self-contained.
		if _, err := installer.InstallUserStack(); err != nil {
			return err
		}
		env, err := installer.Modules().Load(args[1])
		if err != nil {
			return err
		}
		for _, key := range []string{"PATH", "LD_LIBRARY_PATH", "MANPATH", "CMAKE_PREFIX_PATH"} {
			fmt.Fprintf(w, "prepend-path %s %s\n", key, env[key])
		}
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func printFind(w io.Writer, installer *spack.Installer) error {
	t := &report.Table{Title: "installed packages", Headers: []string{"Spec", "Prefix"}}
	for _, inst := range installer.Find() {
		t.AddRow(inst.Spec.String(), inst.Prefix)
	}
	if len(t.Rows) == 0 {
		fmt.Fprintln(w, "no packages installed")
		return nil
	}
	return t.Write(w)
}
