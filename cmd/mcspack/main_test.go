package main

import (
	"strings"
	"testing"
)

func TestStackSubcommand(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "u74mc", "gcc@10.3.0", []string{"stack"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"linux-sifive-u74mc", "openblas", "0.3.18", "build time"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestInstallSubcommand(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "u74mc", "gcc@10.3.0", []string{"install", "hpl@2.3"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "installed hpl@2.3") {
		t.Errorf("output = %s", sb.String())
	}
	if err := run(&sb, "u74mc", "gcc@10.3.0", []string{"install"}); err == nil {
		t.Error("install without specs accepted")
	}
}

func TestSpecSubcommand(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "u74mc", "gcc@10.3.0", []string{"spec", "netlib-scalapack"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "netlib-lapack") || !strings.Contains(out, "openmpi") {
		t.Errorf("DAG missing dependencies:\n%s", out)
	}
}

func TestModulesAndLoad(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "u74mc", "gcc@10.3.0", []string{"load", "hpl"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "prepend-path PATH") {
		t.Errorf("output = %s", sb.String())
	}
}

func TestBadArguments(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "u74mc", "gcc@10.3.0", nil); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run(&sb, "u74mc", "notaversion", []string{"find"}); err == nil {
		t.Error("bad compiler accepted")
	}
	if err := run(&sb, "i486", "gcc@10.3.0", []string{"find"}); err == nil {
		t.Error("unknown target accepted")
	}
	if err := run(&sb, "u74mc", "gcc@10.3.0", []string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run(&sb, "u74mc", "gcc@4.8.0", []string{"stack"}); err == nil {
		t.Error("too-old compiler accepted for u74mc")
	}
}
