// Command mcfleet runs a federated multi-cluster fleet: a JSON fleet
// spec declares heterogeneous clusters (node count, power budget,
// ambient temperature, engine shards) and tenant campaign streams, the
// two-level meta-scheduler routes each arriving campaign to the cluster
// with the best predicted power/thermal headroom and shallowest queue,
// and each cluster executes its routed queue on a worker-pool goroutine
// with its own engine, scheduler, power plane and telemetry stack.
//
// Usage:
//
//	mcfleet -fleet spec.json [-fleet-workers N] [-events]
//	        [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// -fleet-workers sets the cluster worker-pool width (0 means one worker
// per available CPU; the pool never exceeds the cluster count). Routing
// happens in a deterministic serial pre-pass before any cluster runs, so
// the report and event logs on stdout are byte-identical at every width
// — CI diffs -fleet-workers 1 against 4 and 0. The resolved width and
// the realized parallel shape print to stderr, keeping stdout diffable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"montecimone/internal/fleet"
	"montecimone/internal/profiling"
)

func main() {
	specPath := flag.String("fleet", "", "JSON fleet spec to run (required)")
	workers := flag.Int("fleet-workers", 0, "cluster worker-pool width (0 = GOMAXPROCS)")
	events := flag.Bool("events", false, "print the per-cluster event logs after the report")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if err := run(os.Stdout, *specPath, *workers, *events, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "mcfleet:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, specPath string, workers int, events bool, cpuprofile, memprofile string) (err error) {
	if specPath == "" {
		return fmt.Errorf("-fleet spec.json is required")
	}
	if workers < 0 {
		return fmt.Errorf("-fleet-workers must be >= 0, got %d", workers)
	}
	stopProf, err := profiling.Start(cpuprofile, memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); err == nil {
			err = perr
		}
	}()
	spec, err := fleet.Load(specPath)
	if err != nil {
		return err
	}
	if workers == 0 && spec.Workers > 0 {
		workers = spec.Workers
	}
	res, err := fleet.Run(spec, workers)
	if err != nil {
		return err
	}
	// Worker shape goes to stderr: stdout must stay byte-diffable across
	// pool widths (the fleet determinism contract CI enforces with cmp).
	fmt.Fprintf(os.Stderr, "mcfleet: workers: %d over %d clusters, max active %d\n",
		res.Stats.Workers, res.Stats.Clusters, res.Stats.MaxActive)
	if err := res.WriteReport(w); err != nil {
		return err
	}
	if events {
		fmt.Fprintln(w, "\nevent logs:")
		return res.WriteEventLogs(w)
	}
	return nil
}
