package main

import (
	"path/filepath"
	"strings"
	"testing"
)

const smokeSpec = "../../internal/fleet/testdata/smoke.json"

func TestRunRequiresSpec(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "", 0, false, "", ""); err == nil || !strings.Contains(err.Error(), "-fleet") {
		t.Fatalf("err = %v, want missing-spec error", err)
	}
	if err := run(&sb, smokeSpec, -1, false, "", ""); err == nil || !strings.Contains(err.Error(), "fleet-workers") {
		t.Fatalf("err = %v, want negative-workers error", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, filepath.Join(t.TempDir(), "nope.json"), 1, false, "", ""); err == nil {
		t.Fatal("missing spec file not reported")
	}
}

// The CLI determinism contract: stdout is byte-identical across pool
// widths (the same check CI runs with cmp against the built binary).
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet run")
	}
	render := func(workers int) string {
		var sb strings.Builder
		if err := run(&sb, smokeSpec, workers, true, "", ""); err != nil {
			t.Fatalf("run (workers=%d): %v", workers, err)
		}
		return sb.String()
	}
	base := render(1)
	if !strings.Contains(base, "fleet \"fleet-smoke\"") {
		t.Fatalf("report header missing:\n%s", base[:200])
	}
	if !strings.Contains(base, "routing:") || !strings.Contains(base, "=== cluster bologna ===") {
		t.Error("routing table or event logs missing")
	}
	if got := render(4); got != base {
		t.Error("stdout differs between -fleet-workers 1 and 4")
	}
}
