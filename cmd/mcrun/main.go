// Command mcrun builds the simulated Monte Cimone cluster and regenerates
// any table or figure of the paper's evaluation section.
//
// Usage:
//
//	mcrun -experiment table1|table2|table3|table4|table5|table6|
//	                  fig2|fig3|fig4|fig5|fig6|
//	                  hpl-efficiency|stream-efficiency|qe-lax|infiniband|
//	                  decomposition|campaign|chaos|all
//	      [-seed N] [-workload hpl|stream.ddr|stream.l2|qe|idle] [-shards N]
//	      [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// The campaign experiment runs the demo batch campaign end to end and
// prints its report; -shards selects the engine's parallel
// event-preparation width for it (0 = GOMAXPROCS, output is byte-identical
// at any width). The chaos experiment runs the same job mix under the
// standard fault storm — crash/reboot cycles, thermal runaway to the
// 107 degC trip, brownout budget steps, network degradation, a straggler —
// with requeue and checkpoint/restart on, and prints the availability
// report. Neither is part of -experiment all, which regenerates the paper
// artifacts byte-for-byte.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"montecimone/internal/campaign"
	"montecimone/internal/core"
	"montecimone/internal/power"
	"montecimone/internal/profiling"
	"montecimone/internal/report"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (see -help)")
	seed := flag.Int64("seed", 1, "deterministic noise seed")
	workload := flag.String("workload", "hpl", "workload for fig3 traces")
	shards := flag.Int("shards", 1, "engine shard count for the campaign experiment (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcrun:", err)
		os.Exit(1)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "mcrun: -shards must be >= 0, got %d\n", *shards)
		os.Exit(1)
	}
	if *shards == 0 {
		*shards = runtime.GOMAXPROCS(0)
	}
	err = run(os.Stdout, *experiment, *seed, *workload, *shards)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcrun:", err)
		os.Exit(1)
	}
}

// run dispatches one experiment (or all of them) to the writer.
func run(w io.Writer, experiment string, seed int64, workload string, shards int) error {
	runners := map[string]func(io.Writer, int64) error{
		"table1":            runTableI,
		"table2":            runTableII,
		"table3":            runTableIII,
		"table4":            runTableIV,
		"table5":            runTableV,
		"table6":            runTableVI,
		"fig2":              runFig2,
		"fig4":              runFig4,
		"fig5":              runFig5,
		"fig6":              runFig6,
		"hpl-efficiency":    runHPLEff,
		"stream-efficiency": runStreamEff,
		"qe-lax":            runQELax,
		"infiniband":        runInfiniband,
		"decomposition":     runDecomposition,
		"energy":            runEnergy,
		"dtm":               runDTM,
		"anomaly":           runAnomaly,
		"accelerator":       runAccelerator,
	}
	if experiment == "fig3" {
		return runFig3(w, seed, workload)
	}
	if experiment == "campaign" {
		return runCampaign(w, seed, shards)
	}
	if experiment == "chaos" {
		return runChaos(w, seed, shards)
	}
	if experiment == "all" {
		order := []string{
			"table1", "table2", "table3", "table4", "table5", "table6",
			"fig2", "fig4", "fig5", "fig6",
			"hpl-efficiency", "stream-efficiency", "qe-lax", "infiniband",
			"decomposition", "energy", "dtm", "anomaly", "accelerator",
		}
		if err := runFig3(w, seed, workload); err != nil {
			return err
		}
		for _, name := range order {
			if err := runners[name](w, seed); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	fn, ok := runners[experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return fn(w, seed)
}

// runCampaign executes the demo batch campaign on a (possibly sharded)
// engine and prints its report. Deliberately NOT part of "all": the "all"
// output is the paper-artifact regeneration that CI diffs byte-for-byte,
// and this experiment exists to exercise the sharded engine path.
func runCampaign(w io.Writer, seed int64, shards int) error {
	spec := campaign.DefaultSpec(8, "easy", true, 0)
	spec.Seed = seed
	spec.Shards = shards
	res, err := campaign.Run(spec)
	if err != nil {
		return err
	}
	printWindowStats(res)
	return res.WriteReport(w)
}

// printWindowStats reports the sharded engine's exposed parallelism on
// stderr (stdout stays byte-diffable across shard counts). Serial runs
// form no windows and print nothing.
func printWindowStats(res *campaign.Result) {
	if res.EngineWindows == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "mcrun: engine windows: %d, windowed events: %d, prepared keys: %d, committed-parallel: %d (%.1f%%)\n",
		res.EngineWindows, res.WindowedEvents, res.PreparedKeys, res.CommittedEvents,
		100*res.CommittedParallelFraction())
}

// runChaos executes the standard chaos campaign — the demo job mix with
// every fault class armed, requeueing and checkpointing on — and prints
// the availability report. Like campaign, deliberately NOT part of "all":
// the "all" output is the byte-diffed paper-artifact regeneration.
func runChaos(w io.Writer, seed int64, shards int) error {
	spec := campaign.ChaosSpec(8, "easy", 40)
	spec.Seed = seed
	spec.Shards = shards
	res, err := campaign.Run(spec)
	if err != nil {
		return err
	}
	printWindowStats(res)
	return res.WriteReport(w)
}

func runTableI(w io.Writer, _ int64) error {
	rows, err := core.TableI()
	if err != nil {
		return err
	}
	return report.TableI(rows).Write(w)
}

func runTableII(w io.Writer, _ int64) error {
	return report.TableII(core.TableII()).Write(w)
}

func runTableIII(w io.Writer, _ int64) error {
	rows, err := core.TableIII()
	if err != nil {
		return err
	}
	return report.TableIII(rows).Write(w)
}

func runTableIV(w io.Writer, _ int64) error {
	rows, err := core.TableIV()
	if err != nil {
		return err
	}
	return report.TableIV(rows).Write(w)
}

func runTableV(w io.Writer, seed int64) error {
	tbl, err := core.TableV(seed)
	if err != nil {
		return err
	}
	return report.TableV(tbl).Write(w)
}

func runTableVI(w io.Writer, _ int64) error {
	return report.TableVI(core.TableVI()).Write(w)
}

func runFig2(w io.Writer, seed int64) error {
	points, err := core.Fig2(seed)
	if err != nil {
		return err
	}
	return report.Fig2(points).Write(w)
}

func runFig3(w io.Writer, seed int64, workload string) error {
	traces, err := core.Fig3(workload, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. 3: 8 s power traces during %s (1 ms windows)\n", traces.Workload)
	for _, name := range traces.Traces.Names() {
		tr := traces.Traces.Lookup(name)
		vals := make([]float64, tr.Len())
		for i := range vals {
			vals[i] = tr.At(i).Value
		}
		fmt.Fprintf(w, "  %-8s mean %7.1f mW  %s\n", name, tr.Mean(),
			report.Sparkline(report.Downsample(vals, 64)))
	}
	return nil
}

func runFig4(w io.Writer, seed int64) error {
	bt, err := core.Fig4(seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. 4: boot power trace (80 s, power button at t=%.0f s)\n", bt.PowerOnAt)
	fmt.Fprintf(w, "  core rail region means: R1 %.0f mW (leakage), R2 %.0f mW (+clock tree), R3 %.0f mW (OS idle)\n",
		bt.R1Mean, bt.R2Mean, bt.R3Mean)
	fmt.Fprintf(w, "  PLL activation at t=%.1f s\n", bt.PLLActivationAt)
	for _, name := range bt.Traces.Names() {
		tr := bt.Traces.Lookup(name)
		vals := make([]float64, tr.Len())
		for i := range vals {
			vals[i] = tr.At(i).Value
		}
		fmt.Fprintf(w, "  %-8s %s\n", name, report.Sparkline(report.Downsample(vals, 64)))
	}
	return nil
}

func runFig5(w io.Writer, seed int64) error {
	hm, err := core.Fig5(16, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. 5: ExaMon heatmaps during %d s of 8-node HPL\n", int(hm.RunSeconds))
	fmt.Fprint(w, report.Heatmap("  Instructions/s", hm.InstructionsPerSec))
	fmt.Fprint(w, report.Heatmap("  Network traffic", hm.NetworkBytesPerSec))
	fmt.Fprint(w, report.Heatmap("  Memory usage", hm.MemoryUsedBytes))
	return nil
}

func runFig6(w io.Writer, seed int64) error {
	rep, err := core.Fig6(seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig. 6: thermal runaway during HPL execution")
	fmt.Fprintf(w, "  thermal hazard: %s reached 107 degC after %.0f s and stopped executing\n",
		rep.TrippedNode, rep.TripAt)
	fmt.Fprintf(w, "  hottest stable node before mitigation: %.1f degC\n", rep.PeakBeforeMitigation)
	fmt.Fprintf(w, "  hottest node after lid removal + spacing: %.1f degC\n", rep.PeakAfterMitigation)
	for _, name := range rep.Temps.Names() {
		tr := rep.Temps.Lookup(name)
		vals := make([]float64, tr.Len())
		for i := range vals {
			vals[i] = tr.At(i).Value
		}
		fmt.Fprintf(w, "  %-6s max %5.1f degC  %s\n", name, tr.Max(),
			report.Sparkline(report.Downsample(vals, 64)))
	}
	return nil
}

func runHPLEff(w io.Writer, _ int64) error {
	rows, err := core.HPLEfficiencyComparison()
	if err != nil {
		return err
	}
	return report.Efficiency("Single-node HPL FPU utilisation (upstream stack)", "GFLOP/s", rows).Write(w)
}

func runStreamEff(w io.Writer, _ int64) error {
	rows, err := core.StreamEfficiencyComparison()
	if err != nil {
		return err
	}
	return report.Efficiency("STREAM fraction of peak DDR bandwidth (upstream stack)", "MB/s", rows).Write(w)
}

func runQELax(w io.Writer, seed int64) error {
	rep, err := core.QELax(seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "quantumESPRESSO LAX (512^2, single node): %.2f +- %.2f GFLOP/s (%.0f%% FPU), %.2f +- %.2f s\n",
		rep.MeanGFlops, rep.StdGFlops, 100*rep.Efficiency, rep.MeanSeconds, rep.StdSeconds)
	return nil
}

func runInfiniband(w io.Writer, _ int64) error {
	rep, err := core.InfinibandStatus()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "InfiniBand FDR HCA bring-up (Mellanox ConnectX-4, PCIe Gen3 x8):")
	fmt.Fprintf(w, "  recognised by kernel: %v; OFED module loaded: %v\n", rep.Recognised, rep.ModuleLoaded)
	fmt.Fprintf(w, "  ib-ping board-to-board RTT: %.2f us\n", rep.PingRTTSeconds*1e6)
	fmt.Fprintf(w, "  RDMA verbs working: %v (%s)\n", rep.RDMAWorking, rep.RDMAError)
	return nil
}

func runEnergy(w io.Writer, _ int64) error {
	rep, err := core.EnergyToSolution()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Energy to solution (extension):")
	fmt.Fprintf(w, "  node power: %.3f W idle, %.3f W under HPL\n", rep.NodeIdleWatts, rep.NodeHPLWatts)
	fmt.Fprintf(w, "  single-node HPL: %.0f kJ, %.3f GFLOPS/W\n", rep.SingleNodeKJ, rep.SingleNodeGFlopsPerWatt)
	fmt.Fprintf(w, "  full machine:    %.0f kJ, %.3f GFLOPS/W\n", rep.FullMachineKJ, rep.FullMachineGFlopsPerWatt)
	return nil
}

func runDTM(w io.Writer, _ int64) error {
	rep, err := core.DTMStudy(0)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Dynamic thermal management on node 7, original enclosure (future work ii):")
	fmt.Fprintf(w, "  survived one hour of HPL: %v (without the governor it trips at 107 degC)\n", rep.Survived)
	fmt.Fprintf(w, "  steady junction: %.1f degC; mean DVFS scale %.2f; %.0f s throttled\n",
		rep.SteadyTempC, rep.MeanScale, rep.ThrottledSeconds)
	return nil
}

func runAnomaly(w io.Writer, seed int64) error {
	rep, err := core.ThermalAnomalyScan(seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "ODA anomaly detection over the thermal incident:")
	fmt.Fprintf(w, "  mc07 runaway flagged at t=%.0f s; hardware trip at t=%.0f s (%.0f s lead)\n",
		rep.DetectedAt, rep.TripAt, rep.LeadSeconds)
	for _, a := range rep.Findings {
		fmt.Fprintf(w, "  %-6s %-8s t=%6.1f value=%6.1f score=%.1f\n",
			a.Tags.Node, a.Kind, a.Time, a.Value, a.Score)
	}
	return nil
}

func runAccelerator(w io.Writer, _ int64) error {
	rep, err := core.AcceleratorStudy()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "PCIe RISC-V accelerator projection (future work v):")
	fmt.Fprintf(w, "  %s on the x8 Gen3 slot: %.1f -> %.1f GFLOP/s HPL (%.1fx, %s-bound)\n",
		rep.Card, rep.HostGFlops, rep.AccelGFlops, rep.Speedup, rep.Bound)
	fmt.Fprintf(w, "  node power with busy card: %.1f W; efficiency %.2f -> %.2f GFLOPS/W\n",
		rep.NodeWattsWithCard, rep.HostGFlopsPerWatt, rep.AccelGFlopsPerWatt)
	return nil
}

func runDecomposition(w io.Writer, _ int64) error {
	d := core.Decomposition()
	fmt.Fprintln(w, "Power decomposition (Section V-B):")
	fmt.Fprintf(w, "  idle system: %.3f W; under HPL: %.3f W\n",
		d.IdleTotalMilliwatts/1000, d.HPLTotalMilliwatts/1000)
	fmt.Fprintf(w, "  core idle: leakage %.0f mW (%.0f%%), clock tree + dynamic %.0f mW (%.0f%%), OS %.0f mW (%.0f%%)\n",
		d.CoreLeakage, 100*d.CoreLeakageFrac, d.CoreClockTree, 100*d.CoreClockTreeFrac,
		d.CoreOS, 100*d.CoreOSFrac)
	fmt.Fprintf(w, "  DDR banks: leakage %.0f mW (%.0f%% of idle bank power)\n",
		d.DDRLeakage, 100*d.DDRLeakageFrac)
	// Keep the power import honest: report the rail count.
	fmt.Fprintf(w, "  monitored rails: %d\n", len(power.Rails))
	return nil
}
