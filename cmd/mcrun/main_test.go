package main

import (
	"strings"
	"testing"
)

func TestRunFastExperiments(t *testing.T) {
	tests := []struct {
		experiment string
		wantSubstr string
	}{
		{"table1", "quantum-espresso"},
		{"table2", "pmu_pub/chnl/data/core"},
		{"table4", "hwmon1/temp2_input"},
		{"table5", "1206"},
		{"table6", "5939"},
		{"hpl-efficiency", "Marconi100"},
		{"stream-efficiency", "Armida"},
		{"qe-lax", "36% FPU"},
		{"infiniband", "incompatibility"},
		{"decomposition", "leakage 984 mW"},
		{"fig4", "R1 984 mW"},
	}
	for _, tt := range tests {
		t.Run(tt.experiment, func(t *testing.T) {
			var sb strings.Builder
			if err := run(&sb, tt.experiment, 1, "hpl", 1); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), tt.wantSubstr) {
				t.Errorf("output missing %q:\n%s", tt.wantSubstr, sb.String())
			}
		})
	}
}

func TestRunFig3Workloads(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig3", 1, "stream.ddr", 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "stream.ddr") {
		t.Errorf("output = %s", sb.String())
	}
	if err := run(&sb, "fig3", 1, "not-a-workload", 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

// The campaign experiment must print the demo campaign report and be
// byte-identical at any shard count.
func TestRunCampaignExperimentSharded(t *testing.T) {
	render := func(shards int) string {
		var sb strings.Builder
		if err := run(&sb, "campaign", 1, "hpl", shards); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	serial := render(1)
	if !strings.Contains(serial, "campaign \"mcsched-demo\"") {
		t.Errorf("missing campaign report:\n%s", serial)
	}
	if got := render(4); got != serial {
		t.Errorf("campaign output diverges at 4 shards:\n--- serial\n%s\n--- sharded\n%s", serial, got)
	}
}

// The chaos experiment must render the availability report (fault stats,
// availability/goodput line) and stay byte-identical at any shard count.
func TestRunChaosExperimentSharded(t *testing.T) {
	render := func(shards int) string {
		var sb strings.Builder
		if err := run(&sb, "chaos", 1, "hpl", shards); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	serial := render(1)
	for _, want := range []string{"campaign \"chaos-standard\"", "faults:", "availability"} {
		if !strings.Contains(serial, want) {
			t.Errorf("chaos report missing %q:\n%s", want, serial)
		}
	}
	if got := render(4); got != serial {
		t.Errorf("chaos output diverges at 4 shards:\n--- serial\n%s\n--- sharded\n%s", serial, got)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "table99", 1, "hpl", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}
