package main

import (
	"strings"
	"testing"
)

func TestRunFastExperiments(t *testing.T) {
	tests := []struct {
		experiment string
		wantSubstr string
	}{
		{"table1", "quantum-espresso"},
		{"table2", "pmu_pub/chnl/data/core"},
		{"table4", "hwmon1/temp2_input"},
		{"table5", "1206"},
		{"table6", "5939"},
		{"hpl-efficiency", "Marconi100"},
		{"stream-efficiency", "Armida"},
		{"qe-lax", "36% FPU"},
		{"infiniband", "incompatibility"},
		{"decomposition", "leakage 984 mW"},
		{"fig4", "R1 984 mW"},
	}
	for _, tt := range tests {
		t.Run(tt.experiment, func(t *testing.T) {
			var sb strings.Builder
			if err := run(&sb, tt.experiment, 1, "hpl"); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), tt.wantSubstr) {
				t.Errorf("output missing %q:\n%s", tt.wantSubstr, sb.String())
			}
		})
	}
}

func TestRunFig3Workloads(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig3", 1, "stream.ddr"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "stream.ddr") {
		t.Errorf("output = %s", sb.String())
	}
	if err := run(&sb, "fig3", 1, "not-a-workload"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "table99", 1, "hpl"); err == nil {
		t.Error("unknown experiment accepted")
	}
}
