// Command mcsched demonstrates the SLURM-like batch scheduler on the
// simulated cluster. By default it runs the demo benchmark campaign (HPL,
// STREAM, QE-LAX) and prints squeue/sinfo snapshots and the final
// accounting, including the NODE_FAIL the node-7 thermal hazard produces
// when the campaign runs with the original enclosure. With -campaign it
// instead executes a declarative JSON campaign spec — workload mix,
// arrival process, node count, seed — end to end through the scheduler,
// the cluster physics, the power plane and the telemetry stack, and
// prints the per-campaign report (add -events for the event log).
//
// Usage:
//
//	mcsched [-nodes N] [-mitigated] [-policy fifo|easy|sjf|bestfit|powercap]
//	        [-budget-w W] [-campaign spec.json] [-events] [-no-faults] [-shards N]
//	        [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// -cpuprofile and -memprofile write standard pprof profiles covering the
// whole run — the measurement harness behind the engine's hot-path work.
//
// A spec with a "faults" block runs as a chaos campaign: a deterministic,
// seeded fault timeline (node crashes, thermal runaways, brownouts,
// network degradation, stragglers) plays against the machine, NODE_FAIL
// jobs requeue with optional checkpoint/restart, and the report gains
// availability, goodput, retry and MTTR columns. -no-faults strips the
// block — the ablation that reproduces the fault-free report byte for
// byte.
//
// -shards selects the engine's parallel event-preparation width (0 means
// one shard per available CPU); any value produces byte-identical output,
// sharding only changes wall-clock time. The effective count is reported
// in the run header (on stderr for -campaign runs, keeping the report
// diffable across shard counts).
//
// Node counts beyond the paper's eight-slot enclosure run with synthetic
// slots (thermal environments reuse the physical slots cyclically).
// -budget-w enables the cluster power plane (per-node caps distributed
// from the budget by DVFS governors); combined with -policy powercap the
// scheduler also delays placements that would exceed the budget and
// prefers cooler nodes. With -campaign, the -nodes/-policy/-mitigated/
// -budget-w flags override the spec when set explicitly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"montecimone/internal/campaign"
	"montecimone/internal/profiling"
	"montecimone/internal/report"
	"montecimone/internal/sched"
)

func main() {
	nodes := flag.Int("nodes", 8, "compute nodes")
	mitigated := flag.Bool("mitigated", false, "apply the airflow mitigation before the campaign")
	policy := flag.String("policy", "easy", "scheduling policy: "+strings.Join(sched.PolicyNames(), "|"))
	budgetW := flag.Float64("budget-w", 0, "cluster power budget in watts (0 disables the power plane)")
	campaignPath := flag.String("campaign", "", "run this JSON campaign spec instead of the demo campaign")
	events := flag.Bool("events", false, "print the campaign event log after the report (with -campaign)")
	noFaults := flag.Bool("no-faults", false, "strip the spec's fault block (chaos ablation, with -campaign)")
	shards := flag.Int("shards", 1, "engine shard count for parallel event preparation (0 = GOMAXPROCS)")
	backfill := flag.Bool("backfill", true, "deprecated: -backfill=false is an alias for -policy fifo")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsched:", err)
		os.Exit(1)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "mcsched: -shards must be >= 0, got %d\n", *shards)
		os.Exit(1)
	}
	if *shards == 0 {
		*shards = runtime.GOMAXPROCS(0)
	}
	if !*backfill {
		if *policy != "easy" {
			fmt.Fprintf(os.Stderr, "mcsched: -backfill=false conflicts with -policy %s (use -policy alone)\n", *policy)
			os.Exit(1)
		}
		*policy = "fifo"
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *campaignPath != "" {
		err = runSpecFile(os.Stdout, *campaignPath, set, *nodes, *mitigated, *policy, *budgetW, *shards, *events, *noFaults)
	} else {
		err = run(os.Stdout, *nodes, *mitigated, *policy, *budgetW, *shards)
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsched:", err)
		os.Exit(1)
	}
}

// runSpecFile loads a campaign spec, applies explicit flag overrides and
// runs it end to end, printing the report (and optionally the event log).
func runSpecFile(w io.Writer, path string, set map[string]bool, nodes int, mitigated bool, policy string, budgetW float64, shards int, events, noFaults bool) error {
	spec, err := campaign.Load(path)
	if err != nil {
		return err
	}
	if noFaults {
		// The chaos ablation: the same campaign with the fault subsystem
		// fully disarmed renders the exact pre-fault report format.
		spec.Faults = nil
	}
	if set["nodes"] {
		spec.Nodes = nodes
	}
	if set["policy"] {
		spec.Policy = policy
	}
	if set["mitigated"] {
		spec.Mitigated = mitigated
	}
	if set["budget-w"] {
		spec.PowerBudgetW = budgetW
	}
	if set["shards"] {
		spec.Shards = shards
	}
	// Shard count goes to stderr: the report on stdout stays byte-diffable
	// across shard counts (CI diffs serial vs sharded runs of the smoke
	// spec).
	fmt.Fprintf(os.Stderr, "mcsched: engine shards: %d\n", effectiveShards(spec.Shards))
	res, err := campaign.Run(spec)
	if err != nil {
		return err
	}
	// Window statistics go to stderr too: the committed-parallel fraction is
	// the share of the event stream that executed on shard workers — the
	// parallelism the engine exposed, visible even where wall-clock scaling
	// is not (single-core hosts).
	if res.EngineWindows > 0 {
		fmt.Fprintf(os.Stderr, "mcsched: engine windows: %d, windowed events: %d, prepared keys: %d, committed-parallel: %d (%.1f%%)\n",
			res.EngineWindows, res.WindowedEvents, res.PreparedKeys, res.CommittedEvents,
			100*res.CommittedParallelFraction())
	}
	if err := res.WriteReport(w); err != nil {
		return err
	}
	if events {
		fmt.Fprintln(w, "\nevent log:")
		return res.WriteEventLog(w)
	}
	return nil
}

// effectiveShards maps a spec/flag shard setting to the worker count the
// engine will actually run (0 and 1 are the serial engine).
func effectiveShards(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// run executes the demo campaign — the default spec on the campaign
// engine — with the command's traditional squeue/sinfo checkpoints.
func run(w io.Writer, nodes int, mitigated bool, policy string, budgetW float64, shards int) error {
	spec := campaign.DefaultSpec(nodes, policy, mitigated, budgetW)
	spec.Shards = shards
	r, err := campaign.NewRunner(spec)
	if err != nil {
		return err
	}
	defer r.Close()
	s := r.System()
	if mitigated {
		fmt.Fprintln(w, "enclosure: lid removed, increased blade spacing (mitigated)")
	} else {
		fmt.Fprintln(w, "enclosure: original 1U lid-on build")
	}
	fmt.Fprintf(w, "scheduler policy: %s\n", s.Scheduler.PolicyName())
	fmt.Fprintf(w, "engine shards: %d\n", effectiveShards(shards))
	if s.Plane != nil {
		fmt.Fprintf(w, "power plane: budget %.1f W\n", s.Plane.BudgetW())
	}
	// Flush the submission events (all at campaign t=0) before the first
	// snapshot.
	if err := s.Engine.RunUntil(r.StartTime()); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n== t=%.0f s: campaign submitted\n", s.Engine.Now())
	printQueue(w, s.Scheduler)

	for _, checkpoint := range []float64{600, 2400, 7200} {
		if err := s.Engine.RunUntil(r.StartTime() + checkpoint); err != nil {
			return err
		}
		fmt.Fprintf(w, "\n== t=%.0f s\n", s.Engine.Now())
		printQueue(w, s.Scheduler)
		printNodes(w, s.Scheduler)
	}

	// Drain whatever is left.
	if err := r.Drain(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n== t=%.0f s: final accounting (sacct)\n", s.Engine.Now())
	acct := &report.Table{Headers: []string{"JobID", "Name", "State", "Nodes", "Start", "End", "Policy"}}
	for _, row := range s.Scheduler.Sacct() {
		acct.AddRow(
			fmt.Sprintf("%d", row.ID), row.Name, string(row.State),
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%.0f", row.Start), fmt.Sprintf("%.0f", row.End),
			s.Scheduler.PolicyName(),
		)
	}
	if err := acct.Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return r.Result().WriteReport(w)
}

func printQueue(w io.Writer, s *sched.Scheduler) {
	t := &report.Table{Headers: []string{"JobID", "Name", "State", "Nodes", "Hosts"}}
	for _, row := range s.Squeue() {
		t.AddRow(fmt.Sprintf("%d", row.ID), row.Name, string(row.State),
			fmt.Sprintf("%d", row.Nodes), fmt.Sprintf("%v", row.Hosts))
	}
	if len(t.Rows) == 0 {
		fmt.Fprintln(w, "squeue: empty")
		return
	}
	_ = t.Write(w)
}

func printNodes(w io.Writer, s *sched.Scheduler) {
	line := "sinfo:"
	for _, row := range s.Sinfo() {
		line += fmt.Sprintf(" %s=%s", row.Host, row.State)
	}
	fmt.Fprintln(w, line)
}
