// Command mcsched demonstrates the SLURM-like batch scheduler on the
// simulated cluster: it boots the machine, submits a mixed benchmark
// campaign (HPL, STREAM, QE-LAX) and prints squeue/sinfo snapshots and the
// final accounting, including the NODE_FAIL the node-7 thermal hazard
// produces when the campaign runs with the original enclosure.
//
// Usage:
//
//	mcsched [-nodes N] [-mitigated] [-policy fifo|easy|sjf|bestfit|powercap]
//	        [-budget-w W]
//
// Node counts beyond the paper's eight-slot enclosure run with synthetic
// slots (thermal environments reuse the physical slots cyclically).
// -budget-w enables the cluster power plane (per-node caps distributed
// from the budget by DVFS governors); combined with -policy powercap the
// scheduler also delays placements that would exceed the budget and
// prefers cooler nodes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"montecimone/internal/cluster"
	"montecimone/internal/core"
	"montecimone/internal/power"
	"montecimone/internal/report"
	"montecimone/internal/sched"
)

func main() {
	nodes := flag.Int("nodes", 8, "compute nodes")
	mitigated := flag.Bool("mitigated", false, "apply the airflow mitigation before the campaign")
	policy := flag.String("policy", "easy", "scheduling policy: "+strings.Join(sched.PolicyNames(), "|"))
	budgetW := flag.Float64("budget-w", 0, "cluster power budget in watts (0 disables the power plane)")
	backfill := flag.Bool("backfill", true, "deprecated: -backfill=false is an alias for -policy fifo")
	flag.Parse()
	if !*backfill {
		if *policy != "easy" {
			fmt.Fprintf(os.Stderr, "mcsched: -backfill=false conflicts with -policy %s (use -policy alone)\n", *policy)
			os.Exit(1)
		}
		*policy = "fifo"
	}
	if err := run(os.Stdout, *nodes, *mitigated, *policy, *budgetW); err != nil {
		fmt.Fprintln(os.Stderr, "mcsched:", err)
		os.Exit(1)
	}
}

// campaignJob describes one submission of the demo campaign.
type campaignJob struct {
	name     string
	workload string
	nodes    int
	limit    float64
	duration float64
}

func run(w io.Writer, nodes int, mitigated bool, policy string, budgetW float64) error {
	s, err := core.NewSystem(core.Options{
		Nodes:          nodes,
		NoMonitor:      true,
		Policy:         policy,
		SyntheticSlots: nodes > cluster.DefaultNodes,
		PowerBudgetW:   budgetW,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	if err := s.Boot(); err != nil {
		return err
	}
	if mitigated {
		if err := s.Cluster.ApplyAirflowMitigation(); err != nil {
			return err
		}
		fmt.Fprintln(w, "enclosure: lid removed, increased blade spacing (mitigated)")
	} else {
		fmt.Fprintln(w, "enclosure: original 1U lid-on build")
	}

	campaign := []campaignJob{
		{"hpl-full", "hpl", nodes, 5400, 3700},
		{"stream-ddr", "stream.ddr", 1, 600, 300},
		{"stream-l2", "stream.l2", 1, 600, 300},
		{"qe-lax", "qe", 1, 300, 38},
		{"hpl-half", "hpl", (nodes + 1) / 2, 3600, 1900},
	}
	for _, cj := range campaign {
		cj := cj
		spec := sched.JobSpec{
			Name: cj.name, User: "bench", Nodes: cj.nodes,
			TimeLimit: cj.limit, Duration: cj.duration,
			ActivityClass: cj.workload,
			OnStart: func(_ *sched.Job, hosts []string) {
				act, mem, err := workloadActivity(cj.workload)
				if err == nil {
					// Hosts come from the scheduler's partition, so the
					// cluster resolves them; halted nodes cannot be
					// allocated.
					_ = s.Cluster.RunWorkloadOn(hosts, cj.workload, act, mem)
				}
			},
			OnEnd: func(j *sched.Job, _ sched.JobState) {
				s.Cluster.ClearWorkloadOn(j.Hosts())
			},
		}
		if _, err := s.Scheduler.Submit(spec); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "scheduler policy: %s\n", s.Scheduler.PolicyName())
	if s.Plane != nil {
		fmt.Fprintf(w, "power plane: budget %.1f W\n", s.Plane.BudgetW())
	}
	fmt.Fprintf(w, "\n== t=%.0f s: campaign submitted\n", s.Engine.Now())
	printQueue(w, s.Scheduler)

	for _, checkpoint := range []float64{600, 2400, 7200} {
		if err := s.Engine.RunUntil(checkpoint); err != nil {
			return err
		}
		fmt.Fprintf(w, "\n== t=%.0f s\n", s.Engine.Now())
		printQueue(w, s.Scheduler)
		printNodes(w, s.Scheduler)
	}

	// Drain whatever is left.
	if err := s.Engine.RunUntil(30000); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n== t=%.0f s: final accounting (sacct)\n", s.Engine.Now())
	acct := &report.Table{Headers: []string{"JobID", "Name", "State", "Nodes", "Start", "End", "Policy"}}
	for _, row := range s.Scheduler.Sacct() {
		acct.AddRow(
			fmt.Sprintf("%d", row.ID), row.Name, string(row.State),
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%.0f", row.Start), fmt.Sprintf("%.0f", row.End),
			s.Scheduler.PolicyName(),
		)
	}
	return acct.Write(w)
}

func workloadActivity(name string) (power.Activity, float64, error) {
	act, ok := power.ClassActivity(name)
	if !ok {
		return power.Activity{}, 0, fmt.Errorf("unknown workload %q", name)
	}
	switch name {
	case "hpl":
		return act, 13.3e9, nil
	case "stream.ddr", "stream.l2":
		return act, 2.1e9, nil
	default: // qe, idle
		return act, 0.4e9, nil
	}
}

func printQueue(w io.Writer, s *sched.Scheduler) {
	t := &report.Table{Headers: []string{"JobID", "Name", "State", "Nodes", "Hosts"}}
	for _, row := range s.Squeue() {
		t.AddRow(fmt.Sprintf("%d", row.ID), row.Name, string(row.State),
			fmt.Sprintf("%d", row.Nodes), fmt.Sprintf("%v", row.Hosts))
	}
	if len(t.Rows) == 0 {
		fmt.Fprintln(w, "squeue: empty")
		return
	}
	_ = t.Write(w)
}

func printNodes(w io.Writer, s *sched.Scheduler) {
	line := "sinfo:"
	for _, row := range s.Sinfo() {
		line += fmt.Sprintf(" %s=%s", row.Host, row.State)
	}
	fmt.Fprintln(w, line)
}
