package main

import (
	"fmt"
	"strings"
	"testing"
)

func TestCampaignOriginalEnclosure(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 8, false, "easy", 0, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// With the lid on, the full-machine HPL job dies on the node-7 trip.
	if !strings.Contains(out, "NODE_FAIL") {
		t.Errorf("expected NODE_FAIL in:\n%s", out)
	}
	if !strings.Contains(out, "mc07=down") {
		t.Errorf("expected mc07 down in sinfo:\n%s", out)
	}
	if !strings.Contains(out, "COMPLETED") {
		t.Error("no job completed")
	}
	if !strings.Contains(out, "scheduler policy: easy") {
		t.Error("missing policy line")
	}
}

func TestCampaignMitigated(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 8, true, "easy", 0, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "NODE_FAIL") {
		t.Errorf("mitigated campaign still failed:\n%s", out)
	}
	if !strings.Contains(out, "hpl-full") {
		t.Error("missing campaign jobs")
	}
}

func TestCampaignAlternatePolicies(t *testing.T) {
	for _, policy := range []string{"fifo", "sjf", "bestfit"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			var sb strings.Builder
			if err := run(&sb, 8, true, policy, 0, 1); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			if !strings.Contains(out, "scheduler policy: "+policy) {
				t.Errorf("missing policy line for %s", policy)
			}
			// The mitigated campaign must fully complete under any policy
			// (mid-run squeue snapshots may show PENDING; the final
			// accounting must not).
			_, acct, found := strings.Cut(out, "final accounting")
			if !found {
				t.Fatalf("missing accounting section:\n%s", out)
			}
			if strings.Contains(acct, "NODE_FAIL") || strings.Contains(acct, "PENDING") || strings.Contains(acct, "RUNNING") {
				t.Errorf("campaign did not drain cleanly under %s:\n%s", policy, acct)
			}
		})
	}
}

// The demo campaign's stdout must be byte-identical at any shard count
// (minus the header line reporting the count itself), and the header must
// report the effective width.
func TestCampaignShardedMatchesSerial(t *testing.T) {
	render := func(shards int) string {
		var sb strings.Builder
		if err := run(&sb, 8, true, "easy", 0, shards); err != nil {
			t.Fatal(err)
		}
		out := sb.String()
		if !strings.Contains(out, fmt.Sprintf("engine shards: %d\n", effectiveShards(shards))) {
			t.Errorf("missing shard header line for shards=%d:\n%s", shards, out)
		}
		return strings.Replace(out, fmt.Sprintf("engine shards: %d\n", effectiveShards(shards)), "", 1)
	}
	serial := render(1)
	for _, shards := range []int{2, 4} {
		if got := render(shards); got != serial {
			t.Errorf("demo output diverges at shards=%d:\n--- serial\n%s\n--- sharded\n%s", shards, serial, got)
		}
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 8, false, "lottery", 0, 1); err == nil {
		t.Error("unknown policy accepted")
	}
}

// -campaign must run a JSON spec end to end and print the report; explicit
// flags override the spec.
func TestCampaignSpecRun(t *testing.T) {
	var sb strings.Builder
	err := runSpecFile(&sb, "../../internal/campaign/testdata/smoke.json",
		map[string]bool{"policy": true}, 8, false, "bestfit", 0, 1, true, false)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`campaign "smoke"`, "policy bestfit", "COMPLETED", "event log:", "start"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// A missing or malformed spec must fail loudly.
func TestCampaignSpecErrors(t *testing.T) {
	var sb strings.Builder
	if err := runSpecFile(&sb, "no-such-spec.json", nil, 8, false, "easy", 0, 1, false, false); err == nil {
		t.Error("missing spec accepted")
	}
}

// -no-faults must strip the chaos spec's fault block: same spec, no fault
// lines, no availability block — the report renders in the pre-fault
// format.
func TestCampaignNoFaultsAblation(t *testing.T) {
	var sb strings.Builder
	err := runSpecFile(&sb, "../../internal/campaign/testdata/chaos.json",
		nil, 8, false, "easy", 0, 1, true, true)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `campaign "chaos-smoke"`) {
		t.Fatalf("missing report:\n%s", out)
	}
	for _, banned := range []string{"fault  ", "availability", "Retries", "end states:", "requeue"} {
		if strings.Contains(out, banned) {
			t.Errorf("-no-faults output still renders %q", banned)
		}
	}
}
