package main

import (
	"strings"
	"testing"
)

func TestCampaignOriginalEnclosure(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 8, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// With the lid on, the full-machine HPL job dies on the node-7 trip.
	if !strings.Contains(out, "NODE_FAIL") {
		t.Errorf("expected NODE_FAIL in:\n%s", out)
	}
	if !strings.Contains(out, "mc07=down") {
		t.Errorf("expected mc07 down in sinfo:\n%s", out)
	}
	if !strings.Contains(out, "COMPLETED") {
		t.Error("no job completed")
	}
}

func TestCampaignMitigated(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 8, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "NODE_FAIL") {
		t.Errorf("mitigated campaign still failed:\n%s", out)
	}
	if !strings.Contains(out, "hpl-full") {
		t.Error("missing campaign jobs")
	}
}
