package main

import (
	"strings"
	"testing"
)

func TestMonitoringRun(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 2, "hpl", 30, "mem", "", 0, false, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"broker messages", "instructions/s per node", "mc01", "cpu_temp per node"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMonitoringBackends(t *testing.T) {
	for _, backend := range []string{"ring", "sharded"} {
		var sb strings.Builder
		if err := run(&sb, 2, "hpl", 20, backend, "", 0, false, 60); err != nil {
			t.Fatalf("backend %s: %v", backend, err)
		}
		if !strings.Contains(sb.String(), "backend "+backend) {
			t.Errorf("backend %s not reported in:\n%s", backend, sb.String())
		}
	}
}

func TestMonitoringUnknownBackend(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 1, "idle", 5, "etcd", "", 0, false, 0); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestMonitoringUnknownWorkload(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 1, "doom", 10, "mem", "", 0, false, 0); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestMonitoringIdle(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 1, "idle", 20, "mem", "", 0, true, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `under "idle"`) {
		t.Errorf("output = %s", sb.String())
	}
}
