// Command mcmon runs the ExaMon monitoring stack against the simulated
// cluster: it boots the machine with pmu_pub and stats_pub sampling, runs a
// workload for a stretch of virtual time, then either prints a monitoring
// summary (default) or serves the collected time-series database through
// the RESTful HTTP API.
//
// Usage:
//
//	mcmon [-nodes N] [-workload hpl] [-duration 120] [-backend mem]
//	      [-budget-w W] [-serve :8080] [-linear-scan] [-rollup-step 60]
//
// -budget-w enables the cluster power plane for the monitored run: per-node
// power_pub telemetry feeds the budget governor, whose state is printed
// after the run and served at /api/v2/powerplane alongside the query API.
//
// -linear-scan reinstates the storage engine's full linear series walk on
// every read (the read-path benchmark ablation: no inverted tag index, no
// snapshot fan-out, no rollup serving), and -rollup-step tunes the
// ingest-time rollup bucket width in seconds (0 disables the tiers).
//
// When serving, the listener also exposes the standard net/http/pprof
// endpoints under /debug/pprof/, so the long-lived monitor can be profiled
// in place (e.g. `go tool pprof host:port/debug/pprof/profile`).
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // live profiling endpoints on the -serve listener
	"os"
	"strings"

	"montecimone/internal/core"
	"montecimone/internal/examon"
	"montecimone/internal/report"
	"montecimone/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 8, "compute nodes")
	workloadName := flag.String("workload", "hpl",
		"workload model to monitor ("+strings.Join(workload.Names(), ", ")+")")
	duration := flag.Float64("duration", 120, "virtual seconds to monitor")
	backend := flag.String("backend", "mem",
		"ExaMon storage engine ("+strings.Join(examon.StorageBackends(), ", ")+")")
	budgetW := flag.Float64("budget-w", 0, "cluster power budget in watts (0 disables the power plane)")
	serve := flag.String("serve", "", "serve the REST API on this address after the run (e.g. :8080)")
	linearScan := flag.Bool("linear-scan", false,
		"disable the read-path index/rollup/fan-out layers (benchmark ablation)")
	rollupStep := flag.Float64("rollup-step", examon.DefaultRollupStep,
		"ingest-time rollup bucket width in seconds (0 disables the rollup tiers)")
	flag.Parse()
	if err := run(os.Stdout, *nodes, *workloadName, *duration, *backend, *serve, *budgetW, *linearScan, *rollupStep); err != nil {
		fmt.Fprintln(os.Stderr, "mcmon:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, nodes int, workloadName string, duration float64, backend, serve string, budgetW float64, linearScan bool, rollupStep float64) error {
	if backend == "" {
		backend = "mem" // examon.NewStorage's default, named for the summary line
	}
	rollup := rollupStep
	if rollup <= 0 {
		rollup = -1 // core.Options: negative disables, zero keeps the default
	}
	s, err := core.NewSystem(core.Options{Nodes: nodes, HPMPatch: true, Backend: backend,
		PowerBudgetW: budgetW, LinearScan: linearScan, RollupStepS: rollup})
	if err != nil {
		return err
	}
	defer s.Close()
	if err := s.Boot(); err != nil {
		return err
	}
	hosts := s.Cluster.Hostnames()
	model, err := workload.Lookup(workloadName)
	if err != nil {
		return err
	}
	if model.Name != "idle" {
		if err := s.Cluster.RunWorkloadOn(hosts, model.Name, model.Steady, model.MemBytes); err != nil {
			return err
		}
	}
	start := s.Engine.Now()
	if err := s.Advance(duration); err != nil {
		return err
	}
	end := s.Engine.Now()

	fmt.Fprintf(w, "monitored %d nodes for %.0f virtual seconds under %q\n", nodes, duration, model.Name)
	readPath := "indexed reads"
	if linearScan {
		readPath = "linear-scan reads"
	}
	fmt.Fprintf(w, "broker messages: %d; stored series: %d (backend %s, %s)\n",
		s.Broker.Published(), s.DB.SeriesCount(), backend, readPath)

	// Per-node instruction-rate summary from the pmu_pub data.
	hm, err := examon.BuildHeatmap(s.DB, hosts, examon.HeatmapOptions{
		Plugin: "pmu_pub", Metric: "instret", Rate: true, SumCores: true,
		From: start, To: end, BinWidth: (end - start) / 48,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(w, report.Heatmap("instructions/s per node", hm))

	temps, err := examon.BuildHeatmap(s.DB, hosts, examon.HeatmapOptions{
		Plugin: "dstat_pub", Metric: "temperature.cpu_temp",
		From: start, To: end, BinWidth: (end - start) / 48,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(w, report.Heatmap("cpu_temp per node", temps))
	for i, nodeName := range temps.Nodes {
		fmt.Fprintf(w, "  %-6s mean %.1f degC\n", nodeName, temps.RowMean(i))
	}

	if s.Plane != nil {
		snap := s.Plane.Snapshot()
		fmt.Fprintf(w, "power plane: budget %.1f W, draw %.1f W, headroom %.1f W, %d node(s) throttled\n",
			snap.BudgetW, snap.DrawW, snap.HeadroomW, snap.ThrottledNodes)
	}

	if serve == "" {
		return nil
	}
	srv, err := examon.NewRESTServer(s.DB)
	if err != nil {
		return err
	}
	endpoints := "GET /api/v1/series, /api/v1/query, /api/v2/query"
	if s.Plane != nil {
		if err := srv.AttachPowerPlane(func() any { return s.Plane.Snapshot() }); err != nil {
			return err
		}
		endpoints += ", /api/v2/powerplane"
	}
	// Serve the REST API alongside the live pprof endpoints: the blank
	// net/http/pprof import registers its handlers on the default mux, and
	// the wrapper mux routes /debug/pprof/ there while everything else goes
	// to the ExaMon server — so a long-lived monitor can be profiled in
	// place with `go tool pprof host:port/debug/pprof/profile`.
	mux := http.NewServeMux()
	mux.Handle("/debug/pprof/", http.DefaultServeMux)
	mux.Handle("/", srv)
	fmt.Fprintf(w, "serving ExaMon REST API on %s (%s; pprof on /debug/pprof/)\n", serve, endpoints)
	return http.ListenAndServe(serve, mux)
}
