// Package qe reimplements the quantumESPRESSO LAX test driver the paper
// benchmarks (Section V-A): a blocked (and optionally distributed) dense
// symmetric matrix diagonalisation representative of the full application's
// workload. The numerical core is a Householder tridiagonalisation followed
// by an implicit-shift QL eigensolver with eigenvector accumulation; the
// performance model regenerates the paper's 512^2 result of
// 1.44 +- 0.05 GFLOP/s (36 % of FPU peak) over a 37.40 +- 0.14 s test.
package qe

import (
	"fmt"
	"math"
)

// maxQLIterations bounds the implicit QL sweeps per eigenvalue.
const maxQLIterations = 50

// SymmetricEigen diagonalises the dense symmetric matrix a (n x n, row
// major, only fully stored matrices supported): it returns the eigenvalues
// in ascending order and the matching eigenvectors as the columns of the
// returned matrix. The input slice is not modified.
func SymmetricEigen(a []float64, n int) ([]float64, []float64, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("qe: order must be positive, got %d", n)
	}
	if len(a) != n*n {
		return nil, nil, fmt.Errorf("qe: matrix storage %d != %d", len(a), n*n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a[i*n+j]-a[j*n+i]) > 1e-12*(1+math.Abs(a[i*n+j])) {
				return nil, nil, fmt.Errorf("qe: matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
	z := append([]float64(nil), a...)
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(z, n, d, e)
	if err := tqli(d, e, z, n); err != nil {
		return nil, nil, err
	}
	sortEigen(d, z, n)
	return d, z, nil
}

// tred2 reduces the symmetric matrix in z to tridiagonal form with
// accumulated transformations (Numerical Recipes naming): on exit d holds
// the diagonal, e the subdiagonal (e[0] unused), and z the orthogonal
// transformation matrix.
func tred2(z []float64, n int, d, e []float64) {
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		h, scale := 0.0, 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(z[i*n+k])
			}
			if scale == 0 {
				e[i] = z[i*n+l]
			} else {
				for k := 0; k <= l; k++ {
					z[i*n+k] /= scale
					h += z[i*n+k] * z[i*n+k]
				}
				f := z[i*n+l]
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				z[i*n+l] = f - g
				f = 0.0
				for j := 0; j <= l; j++ {
					z[j*n+i] = z[i*n+j] / h
					g = 0.0
					for k := 0; k <= j; k++ {
						g += z[j*n+k] * z[i*n+k]
					}
					for k := j + 1; k <= l; k++ {
						g += z[k*n+j] * z[i*n+k]
					}
					e[j] = g / h
					f += e[j] * z[i*n+j]
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = z[i*n+j]
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						z[j*n+k] -= f*e[k] + g*z[i*n+k]
					}
				}
			}
		} else {
			e[i] = z[i*n+l]
		}
		d[i] = h
	}
	d[0] = 0.0
	e[0] = 0.0
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				g := 0.0
				for k := 0; k <= l; k++ {
					g += z[i*n+k] * z[k*n+j]
				}
				for k := 0; k <= l; k++ {
					z[k*n+j] -= g * z[k*n+i]
				}
			}
		}
		d[i] = z[i*n+i]
		z[i*n+i] = 1.0
		for j := 0; j <= l; j++ {
			z[j*n+i] = 0.0
			z[i*n+j] = 0.0
		}
	}
}

// tqli finds the eigenvalues and eigenvectors of the tridiagonal matrix
// (d, e) by the implicit QL method with shifts, accumulating rotations
// into z.
func tqli(d, e []float64, z []float64, n int) error {
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0.0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 2.220446049250313e-16*dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > maxQLIterations {
				return fmt.Errorf("qe: QL failed to converge for eigenvalue %d", l)
			}
			g := (d[l+1] - d[l]) / (2.0 * e[l])
			r := math.Hypot(g, 1.0)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0.0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2.0*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < n; k++ {
					f = z[k*n+i+1]
					z[k*n+i+1] = s*z[k*n+i] + c*f
					z[k*n+i] = c*z[k*n+i] - s*f
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0.0
		}
	}
	return nil
}

// sortEigen orders eigenpairs ascending by eigenvalue.
func sortEigen(d []float64, z []float64, n int) {
	for i := 0; i < n-1; i++ {
		k := i
		for j := i + 1; j < n; j++ {
			if d[j] < d[k] {
				k = j
			}
		}
		if k != i {
			d[i], d[k] = d[k], d[i]
			for r := 0; r < n; r++ {
				z[r*n+i], z[r*n+k] = z[r*n+k], z[r*n+i]
			}
		}
	}
}
