package qe

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"montecimone/internal/netsim"
	"montecimone/internal/sim"
	"montecimone/internal/soc"
)

// randomSymmetric builds a random symmetric matrix.
func randomSymmetric(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.Float64() - 0.5
			a[i*n+j] = v
			a[j*n+i] = v
		}
	}
	return a
}

func TestSymmetricEigenKnownTridiagonal(t *testing.T) {
	// The (-1, 2, -1) tridiagonal matrix has eigenvalues
	// 2 - 2 cos(k*pi/(n+1)), k = 1..n.
	n := 32
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = 2
		if i+1 < n {
			a[i*n+i+1] = -1
			a[(i+1)*n+i] = -1
		}
	}
	vals, _, err := SymmetricEigen(a, n)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(vals[k-1]-want) > 1e-10 {
			t.Errorf("eigenvalue %d = %v, want %v", k, vals[k-1], want)
		}
	}
}

func TestSymmetricEigenResidualAndOrthogonality(t *testing.T) {
	n := 64
	a := randomSymmetric(n, 3)
	vals, vecs, err := SymmetricEigen(a, n)
	if err != nil {
		t.Fatal(err)
	}
	// A v_k = lambda_k v_k.
	for k := 0; k < n; k++ {
		maxErr := 0.0
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += a[i*n+j] * vecs[j*n+k]
			}
			maxErr = math.Max(maxErr, math.Abs(sum-vals[k]*vecs[i*n+k]))
		}
		if maxErr > 1e-10 {
			t.Errorf("eigenpair %d residual %v", k, maxErr)
		}
	}
	// Eigenvectors orthonormal.
	for p := 0; p < n; p += 7 {
		for q := p; q < n; q += 7 {
			dot := 0.0
			for i := 0; i < n; i++ {
				dot += vecs[i*n+p] * vecs[i*n+q]
			}
			want := 0.0
			if p == q {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-10 {
				t.Errorf("vec %d . vec %d = %v, want %v", p, q, dot, want)
			}
		}
	}
	// Ascending order.
	for k := 1; k < n; k++ {
		if vals[k] < vals[k-1] {
			t.Fatal("eigenvalues not sorted")
		}
	}
}

func TestSymmetricEigenValidation(t *testing.T) {
	if _, _, err := SymmetricEigen(nil, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, _, err := SymmetricEigen(make([]float64, 5), 2); err == nil {
		t.Error("bad storage accepted")
	}
	asym := []float64{1, 2, 3, 4}
	if _, _, err := SymmetricEigen(asym, 2); err == nil {
		t.Error("asymmetric matrix accepted")
	}
}

func TestSymmetricEigenTraceProperty(t *testing.T) {
	// Eigenvalue sum equals the trace; sum of squares equals ||A||_F^2.
	prop := func(seed int64, nRaw uint8) bool {
		n := 4 + int(nRaw)%28
		a := randomSymmetric(n, seed)
		vals, _, err := SymmetricEigen(a, n)
		if err != nil {
			return false
		}
		trace, sumSq, frob := 0.0, 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a[i*n+i]
		}
		for _, v := range vals {
			sumSq += v * v
		}
		for _, v := range a {
			frob += v * v
		}
		valSum := 0.0
		for _, v := range vals {
			valSum += v
		}
		return math.Abs(valSum-trace) < 1e-9 && math.Abs(sumSq-frob) < 1e-8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLAXPaperPoint(t *testing.T) {
	// Section V-A: 512^2 input, 1.44 +- 0.05 GFLOP/s (36 % of FPU peak)
	// over a 37.40 +- 0.14 s test.
	r, err := Run(Config{N: 512})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.GFlops-1.44) > 0.01 {
		t.Errorf("GFlops = %.3f, want 1.44", r.GFlops)
	}
	if math.Abs(r.Efficiency-0.36) > 0.005 {
		t.Errorf("efficiency = %.3f, want 0.36", r.Efficiency)
	}
	if math.Abs(r.Seconds-37.40)/37.40 > 0.02 {
		t.Errorf("duration = %.2f s, want ~37.40", r.Seconds)
	}
}

func TestLAXRepeatStats(t *testing.T) {
	stats, err := Repeat(Config{N: 512}, 10, sim.NewRNG(4), "qe")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.MeanSeconds-37.4) > 1.0 {
		t.Errorf("mean = %v", stats.MeanSeconds)
	}
	if stats.StdSeconds <= 0 || stats.StdSeconds > 0.5 {
		t.Errorf("std seconds = %v, want ~0.14 regime", stats.StdSeconds)
	}
	if stats.StdGFlops <= 0 || stats.StdGFlops > 0.15 {
		t.Errorf("std gflops = %v, want ~0.05 regime", stats.StdGFlops)
	}
}

func TestLAXDistributedFasterButLessEfficient(t *testing.T) {
	single, err := Run(Config{N: 2048, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	link := netsim.GigabitEthernet()
	multi, err := Run(Config{N: 2048, Iterations: 10, Nodes: 4, Link: &link})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Seconds >= single.Seconds {
		t.Errorf("4-node LAX %v not faster than single %v", multi.Seconds, single.Seconds)
	}
	if multi.Efficiency >= single.Efficiency {
		t.Errorf("4-node efficiency %v not below single %v", multi.Efficiency, single.Efficiency)
	}
}

func TestLAXValidation(t *testing.T) {
	if _, err := Run(Config{N: 0}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Run(Config{N: 512, Iterations: -1}); err == nil {
		t.Error("negative iterations accepted")
	}
	if _, err := Run(Config{N: 512, Efficiency: 2}); err == nil {
		t.Error("efficiency > 1 accepted")
	}
	if _, err := Run(Config{N: 512, Nodes: -2}); err == nil {
		t.Error("negative nodes accepted")
	}
	if _, err := Repeat(Config{N: 512}, 0, sim.NewRNG(1), "s"); err == nil {
		t.Error("zero reps accepted")
	}
	if _, err := Repeat(Config{N: 512}, 3, nil, "s"); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestLAXOtherMachines(t *testing.T) {
	// The model scales with the machine's peak.
	mc, err := Run(Config{N: 512})
	if err != nil {
		t.Fatal(err)
	}
	m100, err := Run(Config{N: 512, Machine: soc.Marconi100()})
	if err != nil {
		t.Fatal(err)
	}
	if m100.Seconds >= mc.Seconds {
		t.Error("Power9 node not faster than U740 on LAX")
	}
}
