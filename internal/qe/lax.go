package qe

import (
	"fmt"
	"math"

	"montecimone/internal/netsim"
	"montecimone/internal/sim"
	"montecimone/internal/soc"
)

// LAXEfficiency is the fraction of FPU peak the LAX driver attains with
// the vanilla Spack stack on the Monte Cimone node: the paper measures
// 1.44 GFLOP/s of the 4 GFLOP/s peak, i.e. 36 %.
const LAXEfficiency = 0.36

// DefaultIterations is the LAX test's diagonalisation repetition count,
// calibrated so the modelled 512^2 test lasts the paper's 37.4 s.
const DefaultIterations = 45

// DiagFlops returns the flop count credited to one dense symmetric
// diagonalisation with full eigenvectors: ~4/3 n^3 for the Householder
// reduction plus ~ 23/3 n^3 for QL eigenvector accumulation, 9 n^3 total.
func DiagFlops(n int) float64 {
	fn := float64(n)
	return 9 * fn * fn * fn
}

// Config describes one modelled LAX run.
type Config struct {
	// Machine is the node model (default soc.FU740()).
	Machine *soc.Machine
	// N is the matrix order (the paper uses 512).
	N int
	// Iterations is the diagonalisation count (default DefaultIterations).
	Iterations int
	// Efficiency overrides the attained FPU fraction; zero uses
	// LAXEfficiency.
	Efficiency float64
	// Nodes distributes the blocked diagonalisation over several nodes
	// (default 1); the paper runs single node but the driver is
	// "optionally distributed".
	Nodes int
	// Link is the interconnect for distributed runs.
	Link *netsim.Link
}

// Result is the modelled LAX outcome.
type Result struct {
	// N and Iterations echo the configuration.
	N, Iterations int
	// Seconds is the total test duration; GFlops the attained rate.
	Seconds float64
	GFlops  float64
	// Efficiency is the fraction of the allocation's FPU peak.
	Efficiency float64
}

// Run models the LAX driver.
func Run(cfg Config) (Result, error) {
	machine := cfg.Machine
	if machine == nil {
		machine = soc.FU740()
	}
	if cfg.N <= 0 {
		return Result{}, fmt.Errorf("qe: matrix order must be positive, got %d", cfg.N)
	}
	iters := cfg.Iterations
	if iters == 0 {
		iters = DefaultIterations
	}
	if iters < 0 {
		return Result{}, fmt.Errorf("qe: iterations must be positive, got %d", iters)
	}
	eff := cfg.Efficiency
	if eff == 0 {
		eff = LAXEfficiency
	}
	if eff <= 0 || eff > 1 {
		return Result{}, fmt.Errorf("qe: efficiency %v out of (0,1]", eff)
	}
	nodes := cfg.Nodes
	if nodes == 0 {
		nodes = 1
	}
	if nodes < 0 {
		return Result{}, fmt.Errorf("qe: node count must be positive, got %d", nodes)
	}

	flops := float64(iters) * DiagFlops(cfg.N)
	compute := flops / (float64(nodes) * machine.PeakNodeFlops() * eff)

	// Distributed runs broadcast panel blocks each reduction sweep; the
	// volume is ~ n^2 per sweep over ~n/NB sweeps per diagonalisation.
	commTime := 0.0
	if nodes > 1 {
		link := netsim.GigabitEthernet()
		if cfg.Link != nil {
			link = *cfg.Link
		}
		const nb = 64
		sweeps := (cfg.N + nb - 1) / nb
		bytesPerSweep := float64(cfg.N) * float64(cfg.N) * 8 / float64(nodes)
		hops := math.Ceil(math.Log2(float64(nodes)))
		commTime = float64(iters) * float64(sweeps) * hops *
			(link.LatencySec + bytesPerSweep/link.BandwidthBps)
	}

	total := compute + commTime
	return Result{
		N: cfg.N, Iterations: iters,
		Seconds:    total,
		GFlops:     flops / total / 1e9,
		Efficiency: flops / total / (float64(nodes) * machine.PeakNodeFlops()),
	}, nil
}

// RunStats carries mean/std over jittered repetitions (the paper reports
// 37.40 +- 0.14 s and 1.44 +- 0.05 GFLOP/s).
type RunStats struct {
	// Base is the noise-free run.
	Base Result
	// Statistics over the repetitions.
	MeanSeconds, StdSeconds float64
	MeanGFlops, StdGFlops   float64
}

// laxJitterStd matches the paper's ~0.4 % relative time spread (the GFLOP/s
// spread is wider because the LAX driver's rating fluctuates with phase
// sampling; 3 % reproduces the +-0.05).
const laxJitterStd = 0.0038

// Repeat models reps repetitions with deterministic jitter.
func Repeat(cfg Config, reps int, rng *sim.RNG, stream string) (RunStats, error) {
	if reps <= 0 {
		return RunStats{}, fmt.Errorf("qe: repetitions must be positive, got %d", reps)
	}
	if rng == nil {
		return RunStats{}, fmt.Errorf("qe: nil rng")
	}
	base, err := Run(cfg)
	if err != nil {
		return RunStats{}, err
	}
	var sumT, sumT2, sumG, sumG2 float64
	flops := float64(base.Iterations) * DiagFlops(base.N)
	for i := 0; i < reps; i++ {
		t := base.Seconds * (1 + rng.Normal(stream, 0, laxJitterStd))
		g := flops / t / 1e9 * (1 + rng.Normal(stream+".rate", 0, 0.03))
		sumT += t
		sumT2 += t * t
		sumG += g
		sumG2 += g * g
	}
	n := float64(reps)
	out := RunStats{Base: base}
	out.MeanSeconds = sumT / n
	out.MeanGFlops = sumG / n
	out.StdSeconds = math.Sqrt(math.Max(0, sumT2/n-out.MeanSeconds*out.MeanSeconds))
	out.StdGFlops = math.Sqrt(math.Max(0, sumG2/n-out.MeanGFlops*out.MeanGFlops))
	return out, nil
}
