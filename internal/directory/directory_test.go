package directory

import (
	"errors"
	"testing"
	"testing/quick"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("dc=montecimone,dc=unibo,dc=it")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddGroup("hpc", 100); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(""); err == nil {
		t.Error("empty base accepted")
	}
}

func TestAddUserAndLookup(t *testing.T) {
	s := newServer(t)
	u, err := s.AddUser("abartolini", "Andrea Bartolini", "hpc", "s3cret-pw")
	if err != nil {
		t.Fatal(err)
	}
	if u.UID != 1000 || u.GID != 100 {
		t.Errorf("ids = %d/%d", u.UID, u.GID)
	}
	if u.Home != "/home/abartolini" {
		t.Errorf("home = %q", u.Home)
	}
	if u.DN(s.Base()) != "uid=abartolini,ou=People,dc=montecimone,dc=unibo,dc=it" {
		t.Errorf("dn = %q", u.DN(s.Base()))
	}
	second, err := s.AddUser("fficarelli", "Federico Ficarelli", "hpc", "another-pw")
	if err != nil {
		t.Fatal(err)
	}
	if second.UID != 1001 {
		t.Errorf("uid allocation = %d", second.UID)
	}
	g, ok := s.LookupGroup("hpc")
	if !ok || len(g.Members) != 2 {
		t.Errorf("group members = %v", g)
	}
	if _, ok := s.Lookup("abartolini"); !ok {
		t.Error("lookup failed")
	}
}

func TestAddUserValidation(t *testing.T) {
	s := newServer(t)
	if _, err := s.AddUser("", "x", "hpc", "longenough"); err == nil {
		t.Error("empty username accepted")
	}
	if _, err := s.AddUser("a", "x", "nogroup", "longenough"); err == nil {
		t.Error("unknown group accepted")
	}
	if _, err := s.AddUser("a", "x", "hpc", "short"); err == nil {
		t.Error("weak password accepted")
	}
	if _, err := s.AddUser("a", "x", "hpc", "longenough"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddUser("a", "y", "hpc", "longenough"); err == nil {
		t.Error("duplicate user accepted")
	}
}

func TestAddGroupValidation(t *testing.T) {
	s := newServer(t)
	if _, err := s.AddGroup("", 1); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := s.AddGroup("hpc", 200); err == nil {
		t.Error("duplicate group accepted")
	}
	if _, err := s.AddGroup("other", 100); err == nil {
		t.Error("duplicate gid accepted")
	}
}

func TestBind(t *testing.T) {
	s := newServer(t)
	if _, err := s.AddUser("bench", "Bench", "hpc", "hpl-2.3-runs"); err != nil {
		t.Fatal(err)
	}
	// Bare username bind.
	if _, err := s.Bind("bench", "hpl-2.3-runs"); err != nil {
		t.Errorf("bind: %v", err)
	}
	// Full DN bind.
	if _, err := s.Bind("uid=bench,ou=People,dc=montecimone,dc=unibo,dc=it", "hpl-2.3-runs"); err != nil {
		t.Errorf("dn bind: %v", err)
	}
	// Wrong password / user / base.
	if _, err := s.Bind("bench", "wrong"); !errors.Is(err, ErrInvalidCredentials) {
		t.Errorf("bad password err = %v", err)
	}
	if _, err := s.Bind("ghost", "hpl-2.3-runs"); !errors.Is(err, ErrInvalidCredentials) {
		t.Errorf("unknown user err = %v", err)
	}
	if _, err := s.Bind("uid=bench,ou=People,dc=evil,dc=org", "hpl-2.3-runs"); !errors.Is(err, ErrInvalidCredentials) {
		t.Errorf("foreign base err = %v", err)
	}
}

func TestSearch(t *testing.T) {
	s := newServer(t)
	for _, u := range []string{"alice", "bob", "alfred"} {
		if _, err := s.AddUser(u, "User "+u, "hpc", "password1"); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Search("(uid=al*)")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Username != "alfred" || got[1].Username != "alice" {
		t.Errorf("search = %v", got)
	}
	exact, err := s.Search("(uid=bob)")
	if err != nil || len(exact) != 1 {
		t.Errorf("exact search = %v, %v", exact, err)
	}
	byGid, err := s.Search("(gidNumber=100)")
	if err != nil || len(byGid) != 3 {
		t.Errorf("gid search = %v, %v", byGid, err)
	}
	if _, err := s.Search("uid=x"); err == nil {
		t.Error("unparenthesised filter accepted")
	}
	if _, err := s.Search("(shoeSize=42)"); err == nil {
		t.Error("unsupported attribute accepted")
	}
	if _, err := s.Search("(=)"); err == nil {
		t.Error("empty filter accepted")
	}
}

func TestLoginFlow(t *testing.T) {
	s, err := DefaultDirectory()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Login(s, "mclogin", "bench", "hpl-2.3-runs")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Host != "mclogin" || sess.User.Username != "bench" {
		t.Errorf("session = %+v", sess)
	}
	if _, err := Login(s, "mclogin", "bench", "nope"); err == nil {
		t.Error("bad login accepted")
	}
}

// Property: Bind succeeds exactly for the password a user was created
// with (passwords at least 6 printable runes).
func TestBindRoundTripProperty(t *testing.T) {
	prop := func(pwRaw [8]byte) bool {
		pw := ""
		for _, b := range pwRaw {
			pw += string(rune('!' + b%90))
		}
		s, err := NewServer("dc=x")
		if err != nil {
			return false
		}
		if _, err := s.AddGroup("g", 1); err != nil {
			return false
		}
		if _, err := s.AddUser("u", "U", "g", pw); err != nil {
			return false
		}
		if _, err := s.Bind("u", pw); err != nil {
			return false
		}
		_, err = s.Bind("u", pw+"x")
		return errors.Is(err, ErrInvalidCredentials)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
