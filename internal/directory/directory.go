// Package directory reimplements the LDAP user directory the paper lists
// among the essential production services ported to Monte Cimone
// (Section IV-A: "NFS, LDAP and the SLURM job scheduler"). It provides a
// posixAccount/posixGroup-style tree with bind (authentication), search
// with scoped filters, and the login-node session flow the cluster's
// users go through before submitting jobs.
package directory

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrInvalidCredentials is returned by Bind on a bad DN/password pair.
var ErrInvalidCredentials = errors.New("directory: invalid credentials")

// User is a posixAccount entry.
type User struct {
	// Username is the uid attribute; UID/GID the numeric ids.
	Username string
	UID      int
	GID      int
	// FullName is the cn attribute; Home and Shell the posix fields.
	FullName string
	Home     string
	Shell    string

	passwordHash string
}

// DN returns the entry's distinguished name.
func (u *User) DN(base string) string {
	return fmt.Sprintf("uid=%s,ou=People,%s", u.Username, base)
}

// Group is a posixGroup entry.
type Group struct {
	// Name is the cn attribute; GID the numeric id; Members the uids.
	Name    string
	GID     int
	Members []string
}

// Server is the in-memory directory (slapd on the master node).
type Server struct {
	base    string
	users   map[string]*User
	groups  map[string]*Group
	nextUID int
}

// NewServer creates a directory with the given base DN, e.g.
// "dc=montecimone,dc=unibo,dc=it".
func NewServer(base string) (*Server, error) {
	if base == "" {
		return nil, fmt.Errorf("directory: empty base DN")
	}
	return &Server{
		base:    base,
		users:   make(map[string]*User),
		groups:  make(map[string]*Group),
		nextUID: 1000,
	}, nil
}

// Base returns the base DN.
func (s *Server) Base() string { return s.base }

// AddGroup creates a posixGroup.
func (s *Server) AddGroup(name string, gid int) (*Group, error) {
	if name == "" {
		return nil, fmt.Errorf("directory: empty group name")
	}
	if _, dup := s.groups[name]; dup {
		return nil, fmt.Errorf("directory: group %q exists", name)
	}
	for _, g := range s.groups {
		if g.GID == gid {
			return nil, fmt.Errorf("directory: gid %d taken by %q", gid, g.Name)
		}
	}
	g := &Group{Name: name, GID: gid}
	s.groups[name] = g
	return g, nil
}

// AddUser creates a posixAccount in an existing group and sets its
// password. The uid number is allocated sequentially from 1000.
func (s *Server) AddUser(username, fullName, group, password string) (*User, error) {
	if username == "" {
		return nil, fmt.Errorf("directory: empty username")
	}
	if _, dup := s.users[username]; dup {
		return nil, fmt.Errorf("directory: user %q exists", username)
	}
	g, ok := s.groups[group]
	if !ok {
		return nil, fmt.Errorf("directory: unknown group %q", group)
	}
	if len(password) < 6 {
		return nil, fmt.Errorf("directory: password for %q too short", username)
	}
	u := &User{
		Username: username,
		UID:      s.nextUID,
		GID:      g.GID,
		FullName: fullName,
		Home:     "/home/" + username, // the NFS-exported home
		Shell:    "/bin/bash",

		passwordHash: hashPassword(password),
	}
	s.nextUID++
	s.users[username] = u
	g.Members = append(g.Members, username)
	sort.Strings(g.Members)
	return u, nil
}

func hashPassword(pw string) string {
	sum := sha256.Sum256([]byte(pw))
	return "{SHA256}" + hex.EncodeToString(sum[:])
}

// Bind authenticates a DN ("uid=user,ou=People,<base>") or bare username
// against its password.
func (s *Server) Bind(dn, password string) (*User, error) {
	username := dn
	if strings.HasPrefix(dn, "uid=") {
		rest := strings.TrimPrefix(dn, "uid=")
		username, _, _ = strings.Cut(rest, ",")
		if !strings.HasSuffix(dn, s.base) {
			return nil, ErrInvalidCredentials
		}
	}
	u, ok := s.users[username]
	if !ok || u.passwordHash != hashPassword(password) {
		return nil, ErrInvalidCredentials
	}
	return u, nil
}

// Lookup resolves a username (getent passwd).
func (s *Server) Lookup(username string) (*User, bool) {
	u, ok := s.users[username]
	return u, ok
}

// LookupGroup resolves a group name (getent group).
func (s *Server) LookupGroup(name string) (*Group, bool) {
	g, ok := s.groups[name]
	return g, ok
}

// Search returns users matching a simple attribute filter of the form
// "(attr=value)" with '*' suffix wildcards on the value; supported
// attributes: uid, cn, gidNumber. Results are sorted by username.
func (s *Server) Search(filter string) ([]*User, error) {
	attr, value, err := parseFilter(filter)
	if err != nil {
		return nil, err
	}
	var out []*User
	for _, u := range s.users {
		var field string
		switch attr {
		case "uid":
			field = u.Username
		case "cn":
			field = u.FullName
		case "gidNumber":
			field = fmt.Sprintf("%d", u.GID)
		default:
			return nil, fmt.Errorf("directory: unsupported attribute %q", attr)
		}
		if matchValue(field, value) {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Username < out[j].Username })
	return out, nil
}

func parseFilter(filter string) (attr, value string, err error) {
	if !strings.HasPrefix(filter, "(") || !strings.HasSuffix(filter, ")") {
		return "", "", fmt.Errorf("directory: filter %q must be (attr=value)", filter)
	}
	body := filter[1 : len(filter)-1]
	attr, value, ok := strings.Cut(body, "=")
	if !ok || attr == "" || value == "" {
		return "", "", fmt.Errorf("directory: filter %q must be (attr=value)", filter)
	}
	return attr, value, nil
}

func matchValue(field, pattern string) bool {
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(field, strings.TrimSuffix(pattern, "*"))
	}
	return field == pattern
}

// Session is a login-node shell session for an authenticated user.
type Session struct {
	// User is the authenticated account; Host the login node.
	User *User
	Host string
}

// Login authenticates against the directory and opens a session on the
// login node, the path every Monte Cimone user takes before sbatch.
func Login(s *Server, host, username, password string) (*Session, error) {
	u, err := s.Bind(username, password)
	if err != nil {
		return nil, fmt.Errorf("directory: login on %s: %w", host, err)
	}
	return &Session{User: u, Host: host}, nil
}

// DefaultDirectory builds the cluster's stock directory: the hpc group
// with the benchmark and operations accounts used across the examples.
func DefaultDirectory() (*Server, error) {
	s, err := NewServer("dc=montecimone,dc=unibo,dc=it")
	if err != nil {
		return nil, err
	}
	if _, err := s.AddGroup("hpc", 100); err != nil {
		return nil, err
	}
	for _, acct := range []struct{ user, name, pass string }{
		{"bench", "Benchmark Runner", "hpl-2.3-runs"},
		{"ops", "Cluster Operations", "keep-it-cool"},
	} {
		if _, err := s.AddUser(acct.user, acct.name, "hpc", acct.pass); err != nil {
			return nil, err
		}
	}
	return s, nil
}
