package mpi

import "fmt"

// PingPongResult is the outcome of an OSU-style point-to-point
// microbenchmark between two ranks.
type PingPongResult struct {
	// Bytes is the message size; Iterations the round-trip count.
	Bytes      float64
	Iterations int
	// LatencySec is the measured one-way latency (half the mean round
	// trip); BandwidthBps the payload bandwidth at this size.
	LatencySec   float64
	BandwidthBps float64
}

// PingPong runs an OSU-style ping-pong between rank 0 and rank 1 from
// within a World.Run function; call it on every rank (ranks other than 0
// and 1 return a zero result). The returned timing on rank 0 validates the
// fabric model's latency/bandwidth parameters end to end through the MPI
// stack.
func PingPong(p *Proc, bytes float64, iterations int) (PingPongResult, error) {
	if p.Size() < 2 {
		return PingPongResult{}, fmt.Errorf("mpi: ping-pong needs at least 2 ranks")
	}
	if bytes < 0 || iterations <= 0 {
		return PingPongResult{}, fmt.Errorf("mpi: ping-pong needs non-negative size and positive iterations")
	}
	const tag = 7777
	switch p.Rank() {
	case 0:
		start := p.Now()
		for i := 0; i < iterations; i++ {
			if err := p.Send(1, tag, nil, bytes); err != nil {
				return PingPongResult{}, err
			}
			if _, err := p.Recv(1, tag); err != nil {
				return PingPongResult{}, err
			}
		}
		elapsed := p.Now() - start
		oneWay := elapsed / float64(2*iterations)
		res := PingPongResult{Bytes: bytes, Iterations: iterations, LatencySec: oneWay}
		if oneWay > 0 {
			res.BandwidthBps = bytes / oneWay
		}
		return res, nil
	case 1:
		for i := 0; i < iterations; i++ {
			if _, err := p.Recv(0, tag); err != nil {
				return PingPongResult{}, err
			}
			if err := p.Send(0, tag, nil, bytes); err != nil {
				return PingPongResult{}, err
			}
		}
		return PingPongResult{}, nil
	default:
		return PingPongResult{}, nil
	}
}
