package mpi

import (
	"math"
	"sync"
	"testing"

	"montecimone/internal/netsim"
)

// runPingPong executes the microbenchmark over a fabric with one rank per
// node and returns rank 0's result.
func runPingPong(t *testing.T, link netsim.Link, bytes float64, iters int) PingPongResult {
	t.Helper()
	fabric, err := netsim.NewFabric(2, link)
	if err != nil {
		t.Fatal(err)
	}
	world, err := NewWorld(fabric, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var res PingPongResult
	err = world.Run(func(p *Proc) error {
		r, err := PingPong(p, bytes, iters)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			mu.Lock()
			res = r
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPingPongSmallMessageLatency(t *testing.T) {
	// A 1-byte ping-pong measures the stack latency: link latency plus
	// the per-message software overhead.
	res := runPingPong(t, netsim.GigabitEthernet(), 1, 100)
	wantFloor := 45e-6 // wire latency
	if res.LatencySec < wantFloor || res.LatencySec > wantFloor*1.2 {
		t.Errorf("one-way latency = %v, want ~%v", res.LatencySec, wantFloor)
	}
}

func TestPingPongLargeMessageBandwidth(t *testing.T) {
	// A large ping-pong converges to the link payload bandwidth.
	res := runPingPong(t, netsim.GigabitEthernet(), 8e6, 20)
	link := netsim.GigabitEthernet()
	if math.Abs(res.BandwidthBps-link.BandwidthBps)/link.BandwidthBps > 0.02 {
		t.Errorf("bandwidth = %.1f MB/s, want ~%.1f", res.BandwidthBps/1e6, link.BandwidthBps/1e6)
	}
}

func TestPingPongInfinibandMuchFaster(t *testing.T) {
	gbe := runPingPong(t, netsim.GigabitEthernet(), 1, 50)
	ib := runPingPong(t, netsim.InfinibandFDRWorking(), 1, 50)
	if ib.LatencySec >= gbe.LatencySec/5 {
		t.Errorf("IB latency %v not well below GbE %v", ib.LatencySec, gbe.LatencySec)
	}
}

func TestPingPongValidation(t *testing.T) {
	fabric, _ := netsim.NewFabric(2, netsim.GigabitEthernet())
	world, err := NewWorld(fabric, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	err = world.Run(func(p *Proc) error {
		if p.Rank() != 0 {
			// Rank 1 must still participate in the valid exchange below.
			return nil
		}
		if _, err := PingPong(p, -1, 10); err == nil {
			t.Error("negative size accepted")
		}
		if _, err := PingPong(p, 10, 0); err == nil {
			t.Error("zero iterations accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewWorld(fabric, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	err = single.Run(func(p *Proc) error {
		if _, err := PingPong(p, 8, 1); err == nil {
			t.Error("single-rank world accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPingPongThirdRankIdles(t *testing.T) {
	fabric, _ := netsim.NewFabric(3, netsim.GigabitEthernet())
	world, err := NewWorld(fabric, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	err = world.Run(func(p *Proc) error {
		res, err := PingPong(p, 1024, 10)
		if err != nil {
			return err
		}
		if p.Rank() == 2 && (res.LatencySec != 0 || res.Bytes != 0) {
			t.Errorf("bystander rank got result %+v", res)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
