package mpi

import (
	"fmt"
	"math"
)

// Collectives use a reserved tag space derived from a per-rank collective
// sequence number; SPMD programs call collectives in the same order on all
// ranks, so sequence numbers (and therefore tags) match across ranks.
const collectiveTagBase = -1 << 20

func (p *Proc) nextCollectiveTag() int {
	p.collSeq++
	return collectiveTagBase - p.collSeq
}

// ReduceOp combines two equally sized payloads element-wise into the first.
type ReduceOp func(acc, in []float64)

// OpSum accumulates element-wise sums.
func OpSum(acc, in []float64) {
	for i := range acc {
		acc[i] += in[i]
	}
}

// OpMax keeps element-wise maxima.
func OpMax(acc, in []float64) {
	for i := range acc {
		if in[i] > acc[i] {
			acc[i] = in[i]
		}
	}
}

// OpMaxAbsLoc treats the payload as (value, index) pairs and keeps the pair
// with the largest absolute value — the HPL pivot-search reduction. Ties
// resolve to the lower index, matching partial pivoting determinism.
func OpMaxAbsLoc(acc, in []float64) {
	for i := 0; i+1 < len(acc); i += 2 {
		av, iv := math.Abs(acc[i]), math.Abs(in[i])
		if iv > av || (iv == av && in[i+1] < acc[i+1]) {
			acc[i], acc[i+1] = in[i], in[i+1]
		}
	}
}

// Bcast broadcasts from root over a binomial tree. On the root, data/bytes
// describe the payload; on other ranks the received payload is returned.
// All ranks receive the same byte count. Returns the payload (root's data).
func (p *Proc) Bcast(root int, data []float64, bytes float64) ([]float64, error) {
	size := p.Size()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: bcast root %d out of range", root)
	}
	tag := p.nextCollectiveTag()
	if size == 1 {
		return data, nil
	}
	if bytes < 0 {
		bytes = 8 * float64(len(data))
	}
	rel := (p.rank - root + size) % size

	// Receive from parent (non-root ranks).
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			parent := ((rel &^ mask) + root) % size
			msg, err := p.Recv(parent, tag)
			if err != nil {
				return nil, err
			}
			data = msg.Data
			bytes = msg.Bytes
			break
		}
		mask <<= 1
	}
	// Forward to children.
	mask >>= 1
	for mask > 0 {
		if rel&mask == 0 && rel+mask < size {
			dst := ((rel + mask) + root) % size
			if err := p.Send(dst, tag, data, bytes); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return data, nil
}

// Reduce combines payloads from all ranks onto root over a binomial tree.
// Every rank must pass a payload of identical length; the reduced slice is
// returned on the root (other ranks receive nil). The input is not
// modified.
func (p *Proc) Reduce(root int, op ReduceOp, data []float64, bytes float64) ([]float64, error) {
	size := p.Size()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: reduce root %d out of range", root)
	}
	tag := p.nextCollectiveTag()
	acc := append([]float64(nil), data...)
	if bytes < 0 {
		bytes = 8 * float64(len(data))
	}
	if size == 1 {
		return acc, nil
	}
	rel := (p.rank - root + size) % size
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask != 0 {
			parent := ((rel &^ mask) + root) % size
			if err := p.Send(parent, tag, acc, bytes); err != nil {
				return nil, err
			}
			return nil, nil
		}
		if peer := rel | mask; peer < size {
			src := (peer + root) % size
			msg, err := p.Recv(src, tag)
			if err != nil {
				return nil, err
			}
			if msg.Data != nil && acc != nil {
				if len(msg.Data) != len(acc) {
					return nil, fmt.Errorf("mpi: reduce payload length mismatch: %d vs %d", len(msg.Data), len(acc))
				}
				op(acc, msg.Data)
			}
		}
	}
	return acc, nil
}

// Allreduce reduces to rank 0 and broadcasts the result back; every rank
// returns the combined payload.
func (p *Proc) Allreduce(op ReduceOp, data []float64, bytes float64) ([]float64, error) {
	if bytes < 0 {
		bytes = 8 * float64(len(data))
	}
	reduced, err := p.Reduce(0, op, data, bytes)
	if err != nil {
		return nil, err
	}
	return p.Bcast(0, reduced, bytes)
}

// Barrier synchronises all ranks (an 8-byte allreduce).
func (p *Proc) Barrier() error {
	_, err := p.Allreduce(OpSum, []float64{0}, 8)
	return err
}

// Gather collects equally sized payloads onto root, concatenated by rank.
// Non-root ranks return nil.
func (p *Proc) Gather(root int, data []float64, bytes float64) ([][]float64, error) {
	size := p.Size()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: gather root %d out of range", root)
	}
	tag := p.nextCollectiveTag()
	if bytes < 0 {
		bytes = 8 * float64(len(data))
	}
	if p.rank != root {
		return nil, p.Send(root, tag, data, bytes)
	}
	out := make([][]float64, size)
	out[root] = append([]float64(nil), data...)
	for r := 0; r < size; r++ {
		if r == root {
			continue
		}
		msg, err := p.Recv(r, tag)
		if err != nil {
			return nil, err
		}
		out[r] = msg.Data
	}
	return out, nil
}
