// Package mpi implements a message-passing layer in the style of the
// OpenMPI deployment the paper uses (one MPI task per physical core), with
// virtual-time accounting over the netsim fabric models.
//
// Each rank runs as a goroutine with a private virtual clock. Sending
// advances the sender's clock by the message's serialisation time; the
// message carries its arrival time (sender departure + link latency), and a
// receive completes at max(receiver clock, arrival). Because every clock is
// derived only from that rank's own deterministic program order and the
// fabric's deterministic transfer law, simulated timings are reproducible
// regardless of host goroutine scheduling.
//
// Messages may carry real payloads (used by the numerically verified
// distributed solvers at small problem sizes) or only a byte count (used by
// the performance-model runs at the paper's N=40704 scale).
//
// Sharded engine: MPI collectives are cross-shard interactions, but they
// resolve entirely inside a workload's execution — the layer schedules no
// engine events of its own, and its timing law depends only on rank
// program order and the fabric model, never on node physics. A collective
// therefore never terminates a lookahead window; its effect reaches the
// engine only through the workload events (phase transitions, job ends)
// that consume its timings, and those events declare their own shard keys.
// The fabric's 45 µs link latency is deliberately NOT declared as an
// engine lookahead bound for the same reason: it constrains rank clocks,
// not the event horizon.
package mpi

import (
	"fmt"
	"sync"

	"montecimone/internal/netsim"
)

// sendOverheadSec is the per-message software overhead of the MPI stack.
const sendOverheadSec = 2e-6

// Message is a received message.
type Message struct {
	// Src and Tag identify the envelope.
	Src, Tag int
	// Data is the payload; nil for bytes-only (modelled) messages.
	Data []float64
	// Bytes is the payload size used for timing.
	Bytes float64

	arrival float64
}

// World owns the ranks of one parallel job.
type World struct {
	fabric    *netsim.Fabric
	placement []int // rank -> node
	sharing   []int // rank -> ranks on the same node (NIC contention)
	procs     []*Proc
}

// NewWorld creates a world with the given rank->node placement over a
// fabric. Sharing factors are derived from co-location.
func NewWorld(fabric *netsim.Fabric, placement []int) (*World, error) {
	if fabric == nil {
		return nil, fmt.Errorf("mpi: nil fabric")
	}
	if len(placement) == 0 {
		return nil, fmt.Errorf("mpi: empty placement")
	}
	perNode := make(map[int]int)
	for rank, node := range placement {
		if node < 0 || node >= fabric.Nodes() {
			return nil, fmt.Errorf("mpi: rank %d placed on node %d outside fabric of %d nodes", rank, node, fabric.Nodes())
		}
		perNode[node]++
	}
	w := &World{
		fabric:    fabric,
		placement: append([]int(nil), placement...),
		sharing:   make([]int, len(placement)),
		procs:     make([]*Proc, len(placement)),
	}
	for rank, node := range placement {
		w.sharing[rank] = perNode[node]
	}
	for rank := range placement {
		w.procs[rank] = &Proc{
			rank:  rank,
			world: w,
			box:   newMailbox(),
		}
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.procs) }

// NodeOf returns the node index hosting a rank.
func (w *World) NodeOf(rank int) int { return w.placement[rank] }

// Run executes fn once per rank, concurrently, and waits for all ranks.
// The first error (by rank order) is returned.
func (w *World) Run(fn func(*Proc) error) error {
	errs := make([]error, len(w.procs))
	var wg sync.WaitGroup
	for _, p := range w.procs {
		p.clock = 0
		p.computeTime = 0
		p.commTime = 0
		p.intervals = nil
		p.collSeq = 0
	}
	for i, p := range w.procs {
		wg.Add(1)
		go func(i int, p *Proc) {
			defer wg.Done()
			errs[i] = fn(p)
		}(i, p)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return fmt.Errorf("mpi: rank %d: %w", rank, err)
		}
	}
	return nil
}

// MaxClock returns the largest rank clock after a Run: the job's makespan.
func (w *World) MaxClock() float64 {
	maxT := 0.0
	for _, p := range w.procs {
		if p.clock > maxT {
			maxT = p.clock
		}
	}
	return maxT
}

// Proc exposes per-rank statistics gathered during Run.
func (w *World) Proc(rank int) *Proc { return w.procs[rank] }

// IntervalKind classifies a rank-activity interval.
type IntervalKind int

// Interval kinds: compute keeps the FPU busy (high instruction rate in the
// ExaMon heatmap); comm idles the core on the in-order U74.
const (
	IntervalCompute IntervalKind = iota + 1
	IntervalComm
)

// Interval is a span of rank activity in virtual time.
type Interval struct {
	Start, End float64
	Kind       IntervalKind
}

// Proc is one MPI rank. Methods must only be called from the goroutine
// running the rank's function during World.Run.
type Proc struct {
	rank  int
	world *World
	box   *mailbox

	clock       float64
	computeTime float64
	commTime    float64
	intervals   []Interval
	collSeq     int
}

// Rank returns this rank's index.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return len(p.world.procs) }

// Node returns the node hosting this rank.
func (p *Proc) Node() int { return p.world.placement[p.rank] }

// Now returns the rank's virtual clock in seconds.
func (p *Proc) Now() float64 { return p.clock }

// ComputeTime and CommTime return accumulated busy times.
func (p *Proc) ComputeTime() float64 { return p.computeTime }

// CommTime returns the accumulated communication (and wait) time.
func (p *Proc) CommTime() float64 { return p.commTime }

// Intervals returns the recorded activity timeline.
func (p *Proc) Intervals() []Interval {
	out := make([]Interval, len(p.intervals))
	copy(out, p.intervals)
	return out
}

// Compute advances the rank's clock by a modelled computation of the given
// duration.
func (p *Proc) Compute(seconds float64) {
	if seconds <= 0 {
		return
	}
	p.addInterval(IntervalCompute, p.clock, p.clock+seconds)
	p.clock += seconds
	p.computeTime += seconds
}

func (p *Proc) addInterval(kind IntervalKind, start, end float64) {
	if end <= start {
		return
	}
	// Merge adjacent intervals of the same kind to bound memory.
	if n := len(p.intervals); n > 0 && p.intervals[n-1].Kind == kind && p.intervals[n-1].End >= start-1e-12 {
		p.intervals[n-1].End = end
		return
	}
	p.intervals = append(p.intervals, Interval{Start: start, End: end, Kind: kind})
}

// Send transmits data to dst with a tag. bytes < 0 derives the size from
// the payload (8 bytes per element). The sender's clock advances by the
// software overhead plus the serialisation time; the message arrives at
// the receiver one link latency later.
func (p *Proc) Send(dst, tag int, data []float64, bytes float64) error {
	if dst == p.rank {
		return fmt.Errorf("mpi: rank %d sending to itself", p.rank)
	}
	if dst < 0 || dst >= p.Size() {
		return fmt.Errorf("mpi: rank %d sending to invalid rank %d", p.rank, dst)
	}
	if bytes < 0 {
		bytes = 8 * float64(len(data))
	}
	w := p.world
	total, err := w.fabric.TransferTime(w.placement[p.rank], w.placement[dst], bytes, w.sharing[p.rank])
	if err != nil {
		return fmt.Errorf("mpi: rank %d send: %w", p.rank, err)
	}
	start := p.clock
	arrival := start + sendOverheadSec + total
	// The sender is busy for the overhead plus serialisation; the trailing
	// wire latency overlaps with its next operation. Local (shared-memory)
	// copies complete synchronously.
	lat := 0.0
	if w.placement[p.rank] != w.placement[dst] {
		lat = w.fabric.LatencySec()
	}
	p.clock = arrival - lat
	p.commTime += p.clock - start
	p.addInterval(IntervalComm, start, p.clock)

	w.procs[dst].box.deliver(Message{Src: p.rank, Tag: tag, Data: data, Bytes: bytes, arrival: arrival})
	return nil
}

// Recv blocks until a message with the given source and tag arrives, then
// advances the clock to the later of the current time and the arrival.
func (p *Proc) Recv(src, tag int) (Message, error) {
	if src < 0 || src >= p.Size() || src == p.rank {
		return Message{}, fmt.Errorf("mpi: rank %d receiving from invalid rank %d", p.rank, src)
	}
	msg := p.box.take(src, tag)
	start := p.clock
	if msg.arrival > p.clock {
		p.clock = msg.arrival
	}
	p.commTime += p.clock - start
	p.addInterval(IntervalComm, start, p.clock)
	return msg, nil
}

// mailbox is a matching queue of in-flight messages.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []Message
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) deliver(m Message) {
	b.mu.Lock()
	b.msgs = append(b.msgs, m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *mailbox) take(src, tag int) Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.msgs {
			if m.Src == src && m.Tag == tag {
				b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
				return m
			}
		}
		b.cond.Wait()
	}
}
