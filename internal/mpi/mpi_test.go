package mpi

import (
	"math"
	"testing"

	"montecimone/internal/netsim"
)

// newWorld builds a world of ranks ranks packed 4-per-node over GbE.
func newWorld(t *testing.T, ranks int) *World {
	t.Helper()
	nodes := (ranks + 3) / 4
	fabric, err := netsim.NewFabric(nodes, netsim.GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	placement := make([]int, ranks)
	for r := range placement {
		placement[r] = r / 4
	}
	w, err := NewWorld(fabric, placement)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorldValidation(t *testing.T) {
	fabric, _ := netsim.NewFabric(2, netsim.GigabitEthernet())
	if _, err := NewWorld(nil, []int{0}); err == nil {
		t.Error("nil fabric accepted")
	}
	if _, err := NewWorld(fabric, nil); err == nil {
		t.Error("empty placement accepted")
	}
	if _, err := NewWorld(fabric, []int{0, 5}); err == nil {
		t.Error("out-of-fabric placement accepted")
	}
}

func TestSendRecvPayloadAndClock(t *testing.T) {
	w := newWorld(t, 8) // 2 nodes
	err := w.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.Compute(1.0)
			return p.Send(4, 7, []float64{3.14, 2.71}, -1)
		case 4:
			msg, err := p.Recv(0, 7)
			if err != nil {
				return err
			}
			if len(msg.Data) != 2 || msg.Data[0] != 3.14 {
				t.Errorf("payload = %v", msg.Data)
			}
			if msg.Bytes != 16 {
				t.Errorf("bytes = %v, want 16", msg.Bytes)
			}
			// Arrival after sender's 1 s compute plus transfer.
			if p.Now() < 1.0 {
				t.Errorf("receiver clock %v, want >= 1.0", p.Now())
			}
			if p.Now() > 1.001 {
				t.Errorf("receiver clock %v suspiciously late", p.Now())
			}
			return nil
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendValidation(t *testing.T) {
	w := newWorld(t, 4)
	err := w.Run(func(p *Proc) error {
		if p.Rank() != 0 {
			return nil
		}
		if err := p.Send(0, 1, nil, 8); err == nil {
			t.Error("self-send accepted")
		}
		if err := p.Send(99, 1, nil, 8); err == nil {
			t.Error("invalid dst accepted")
		}
		if _, err := p.Recv(0, 1); err == nil {
			t.Error("self-recv accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBytesOnlyMessages(t *testing.T) {
	w := newWorld(t, 8)
	err := w.Run(func(p *Proc) error {
		switch p.Rank() {
		case 1:
			return p.Send(5, 9, nil, 1e6)
		case 5:
			msg, err := p.Recv(1, 9)
			if err != nil {
				return err
			}
			if msg.Data != nil || msg.Bytes != 1e6 {
				t.Errorf("modelled message = %+v", msg)
			}
			// 1 MB over GbE shared by 4 ranks: ~34 ms.
			if p.Now() < 0.03 || p.Now() > 0.05 {
				t.Errorf("modelled transfer clock = %v", p.Now())
			}
			return nil
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderingPerPair(t *testing.T) {
	w := newWorld(t, 8)
	err := w.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			for i := 0; i < 10; i++ {
				if err := p.Send(4, 3, []float64{float64(i)}, -1); err != nil {
					return err
				}
			}
		case 4:
			prevArrival := -1.0
			for i := 0; i < 10; i++ {
				msg, err := p.Recv(0, 3)
				if err != nil {
					return err
				}
				if msg.Data[0] != float64(i) {
					t.Errorf("message %d carries %v", i, msg.Data[0])
				}
				if msg.arrival <= prevArrival {
					t.Error("arrivals not strictly increasing")
				}
				prevArrival = msg.arrival
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []float64 {
		w := newWorld(t, 16)
		err := w.Run(func(p *Proc) error {
			// Ring exchange with staggered compute.
			p.Compute(float64(p.Rank()) * 0.001)
			next := (p.Rank() + 1) % p.Size()
			prev := (p.Rank() - 1 + p.Size()) % p.Size()
			if err := p.Send(next, 1, []float64{float64(p.Rank())}, -1); err != nil {
				return err
			}
			if _, err := p.Recv(prev, 1); err != nil {
				return err
			}
			return p.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		clocks := make([]float64, w.Size())
		for r := range clocks {
			clocks[r] = w.Proc(r).Now()
		}
		return clocks
	}
	a, b := run(), run()
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("rank %d clock differs across runs: %v vs %v", r, a[r], b[r])
		}
	}
}

func TestBcastDeliversToAll(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8, 16, 32} {
		w := newWorld(t, size)
		err := w.Run(func(p *Proc) error {
			var payload []float64
			if p.Rank() == 2%size {
				payload = []float64{42, 43, 44}
			}
			got, err := p.Bcast(2%size, payload, -1)
			if err != nil {
				return err
			}
			if len(got) != 3 || got[0] != 42 || got[2] != 44 {
				t.Errorf("size %d rank %d: bcast got %v", size, p.Rank(), got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestBcastRootValidation(t *testing.T) {
	w := newWorld(t, 4)
	err := w.Run(func(p *Proc) error {
		if _, err := p.Bcast(9, nil, 8); err == nil {
			t.Error("invalid root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, size := range []int{1, 2, 4, 7, 12, 32} {
		w := newWorld(t, size)
		err := w.Run(func(p *Proc) error {
			got, err := p.Allreduce(OpSum, []float64{float64(p.Rank()), 1}, -1)
			if err != nil {
				return err
			}
			wantSum := float64(size*(size-1)) / 2
			if got[0] != wantSum || got[1] != float64(size) {
				t.Errorf("size %d rank %d: allreduce = %v", size, p.Rank(), got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestAllreduceMaxAbsLoc(t *testing.T) {
	w := newWorld(t, 8)
	err := w.Run(func(p *Proc) error {
		// Rank 5 holds the largest magnitude (negative) value.
		val := float64(p.Rank())
		if p.Rank() == 5 {
			val = -100
		}
		got, err := p.Allreduce(OpMaxAbsLoc, []float64{val, float64(p.Rank())}, -1)
		if err != nil {
			return err
		}
		if got[0] != -100 || got[1] != 5 {
			t.Errorf("rank %d: maxabsloc = %v", p.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpMaxAbsLocTieBreaksLowIndex(t *testing.T) {
	acc := []float64{-3, 7}
	OpMaxAbsLoc(acc, []float64{3, 2})
	if acc[0] != 3 || acc[1] != 2 {
		t.Errorf("tie break: %v, want value 3 at index 2", acc)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	w := newWorld(t, 8)
	err := w.Run(func(p *Proc) error {
		p.Compute(float64(p.Rank()) * 0.01) // staggered arrival
		if err := p.Barrier(); err != nil {
			return err
		}
		// After the barrier every clock is at least the slowest rank's
		// pre-barrier time.
		if p.Now() < 0.07 {
			t.Errorf("rank %d clock %v below barrier release", p.Rank(), p.Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	w := newWorld(t, 8)
	err := w.Run(func(p *Proc) error {
		parts, err := p.Gather(3, []float64{float64(p.Rank() * 10)}, -1)
		if err != nil {
			return err
		}
		if p.Rank() != 3 {
			if parts != nil {
				t.Errorf("rank %d: non-root got %v", p.Rank(), parts)
			}
			return nil
		}
		for r, part := range parts {
			if len(part) != 1 || part[0] != float64(r*10) {
				t.Errorf("gathered[%d] = %v", r, part)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestComputeAndCommAccounting(t *testing.T) {
	w := newWorld(t, 8)
	err := w.Run(func(p *Proc) error {
		p.Compute(0.5)
		if p.Rank() == 0 {
			if err := p.Send(4, 1, nil, 50e6); err != nil {
				return err
			}
		}
		if p.Rank() == 4 {
			if _, err := p.Recv(0, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	p0 := w.Proc(0)
	if math.Abs(p0.ComputeTime()-0.5) > 1e-12 {
		t.Errorf("rank 0 compute time = %v", p0.ComputeTime())
	}
	if p0.CommTime() <= 0 {
		t.Error("rank 0 comm time not accounted")
	}
	ivs := p0.Intervals()
	if len(ivs) < 2 || ivs[0].Kind != IntervalCompute || ivs[1].Kind != IntervalComm {
		t.Errorf("intervals = %+v", ivs)
	}
	if w.MaxClock() <= 0.5 {
		t.Errorf("makespan = %v, want > 0.5", w.MaxClock())
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	w := newWorld(t, 4)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 2 {
			return p.Send(2, 0, nil, 8) // self-send error
		}
		return nil
	})
	if err == nil {
		t.Fatal("rank error not propagated")
	}
}

func TestIntervalMerging(t *testing.T) {
	w := newWorld(t, 4)
	err := w.Run(func(p *Proc) error {
		for i := 0; i < 100; i++ {
			p.Compute(0.001)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Proc(0).Intervals()); got != 1 {
		t.Errorf("adjacent compute intervals not merged: %d intervals", got)
	}
}
