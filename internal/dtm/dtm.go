// Package dtm implements the dynamic power and thermal management the
// paper lists as future work (item ii of Section VI): a per-node DVFS
// governor that caps the SoC junction temperature by scaling the
// operating point, trading performance for thermal headroom.
//
// With the governor active, the obstructed slot of node 7 — which runs
// away to the 107 degC trip under sustained HPL in the original enclosure
// — instead throttles and holds below the cap, keeping the node in
// production at reduced throughput until the airflow fix lands.
package dtm

import (
	"fmt"

	"montecimone/internal/node"
	"montecimone/internal/sim"
	"montecimone/internal/thermal"
)

// Config tunes a governor.
type Config struct {
	// CapC is the junction temperature ceiling to hold (default 95 degC,
	// safely below the 107 degC hazard).
	CapC float64
	// Period is the control interval in seconds (default 1).
	Period float64
	// StepDown and StepUp are the per-interval scale adjustments.
	StepDown float64
	StepUp   float64
}

func (c Config) withDefaults() Config {
	if c.CapC == 0 {
		c.CapC = 95
	}
	if c.Period == 0 {
		c.Period = 1
	}
	if c.StepDown == 0 {
		c.StepDown = 0.05
	}
	if c.StepUp == 0 {
		c.StepUp = 0.01
	}
	return c
}

// Governor is a per-node thermal-capping DVFS controller. It optionally
// also enforces a node power cap (SetPowerCapW), which the cluster power
// plane distributes from the global budget — the same actuator serves
// both the thermal ceiling and the RAPL-style power ceiling.
type Governor struct {
	node *node.Node
	cfg  Config

	ticker *sim.Ticker

	powerCapW float64 // 0 = no power cap

	scaleSum    float64
	samples     int
	throttleSec float64
}

// New builds a governor for one node.
func New(nd *node.Node, cfg Config) (*Governor, error) {
	if nd == nil {
		return nil, fmt.Errorf("dtm: nil node")
	}
	cfg = cfg.withDefaults()
	if cfg.CapC <= 25 || cfg.CapC >= thermal.TripTempC {
		return nil, fmt.Errorf("dtm: cap %v degC outside (25, %v)", cfg.CapC, thermal.TripTempC)
	}
	if cfg.Period <= 0 || cfg.StepDown <= 0 || cfg.StepUp <= 0 {
		return nil, fmt.Errorf("dtm: period and steps must be positive")
	}
	return &Governor{node: nd, cfg: cfg}, nil
}

// Start begins the control loop on the engine.
func (g *Governor) Start(engine *sim.Engine) error {
	if g.ticker != nil {
		return fmt.Errorf("dtm: governor already running on %s", g.node.Hostname())
	}
	// The control interval reads and actuates only this governor's node
	// (DVFS actuation included — the watchdog replan it triggers routes
	// through the node key's scheduling port), so the tick is LOCAL on the
	// node's shard key (ID-1 — IDs are assigned 1..N in hostname order): a
	// sharded engine runs the whole control step on the node's shard
	// worker. The governor's running statistics are node-private too; the
	// power plane reads them only from serial barrier ticks.
	tk, err := sim.NewLocalTicker(engine, engine.Now()+g.cfg.Period, g.cfg.Period,
		"dtm."+g.node.Hostname(), []int{g.node.ID() - 1},
		func(_ *sim.Proc, now float64) { g.control(now) })
	if err != nil {
		return fmt.Errorf("dtm: %w", err)
	}
	g.ticker = tk
	return nil
}

// Stop halts the control loop and restores the nominal operating point.
func (g *Governor) Stop() {
	if g.ticker != nil {
		g.ticker.Stop()
		g.ticker = nil
	}
	g.node.SetFrequencyScale(1)
}

// SetPowerCapW sets (or, with w <= 0, clears) the node power cap in
// watts. The control loop then throttles whenever the board draw exceeds
// the cap, and only recovers while it sits comfortably below it.
func (g *Governor) SetPowerCapW(w float64) {
	if w < 0 {
		w = 0
	}
	g.powerCapW = w
}

// PowerCapW returns the active node power cap (0 = uncapped).
func (g *Governor) PowerCapW() float64 { return g.powerCapW }

// Scale returns the node's current DVFS operating point — the governor's
// actuator position, exported as power-plane telemetry.
func (g *Governor) Scale() float64 { return g.node.FrequencyScale() }

// control is one interval of the hysteresis controller: throttle hard
// when the junction approaches the thermal cap or the draw exceeds the
// power cap, recover slowly when both leave comfortable headroom.
func (g *Governor) control(float64) {
	if g.node.State() != node.StateRunning {
		return
	}
	temp := g.node.Temperature(thermal.SensorCPU)
	overPower, underPower := false, true
	if g.powerCapW > 0 {
		drawW := g.node.TotalMilliwatts() / 1000
		overPower = drawW > g.powerCapW
		underPower = drawW < 0.95*g.powerCapW
	}
	scale := g.node.FrequencyScale()
	switch {
	case temp > g.cfg.CapC-2 || overPower:
		scale -= g.cfg.StepDown
	case temp < g.cfg.CapC-10 && underPower:
		scale += g.cfg.StepUp
	}
	g.node.SetFrequencyScale(scale)
	scale = g.node.FrequencyScale() // after clamping
	g.scaleSum += scale
	g.samples++
	if scale < 1 {
		g.throttleSec += g.cfg.Period
	}
}

// MeanScale returns the average operating point since Start — the
// governor's performance cost (1.0 = no throttling).
func (g *Governor) MeanScale() float64 {
	if g.samples == 0 {
		return 1
	}
	return g.scaleSum / float64(g.samples)
}

// ThrottledSeconds returns the accumulated time spent below nominal.
func (g *Governor) ThrottledSeconds() float64 { return g.throttleSec }
