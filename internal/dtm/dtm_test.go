package dtm

import (
	"testing"

	"montecimone/internal/node"
	"montecimone/internal/power"
	"montecimone/internal/sim"
	"montecimone/internal/thermal"
)

// newNode7 builds the hazard node (slot 7, lid on) on an engine with a
// 0.5 s integration ticker, booted and running HPL.
func newNode7(t *testing.T) (*sim.Engine, *node.Node) {
	t.Helper()
	engine := sim.NewEngine()
	nd, err := node.New(node.Config{ID: 7, Enclosure: thermal.DefaultEnclosure()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.NewTicker(engine, 0.5, 0.5, "step", func(now float64) { nd.Step(now) }); err != nil {
		t.Fatal(err)
	}
	if err := nd.PowerOn(0); err != nil {
		t.Fatal(err)
	}
	if err := engine.RunUntil(node.R1Duration + node.R2Duration + 1); err != nil {
		t.Fatal(err)
	}
	if err := nd.SetWorkload("hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	return engine, nd
}

func TestNewValidation(t *testing.T) {
	_, nd := newNode7(t)
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil node accepted")
	}
	if _, err := New(nd, Config{CapC: 150}); err == nil {
		t.Error("cap above trip accepted")
	}
	if _, err := New(nd, Config{CapC: 10}); err == nil {
		t.Error("cap below ambient accepted")
	}
	if _, err := New(nd, Config{Period: -1}); err == nil {
		t.Error("negative period accepted")
	}
}

func TestWithoutGovernorNode7Trips(t *testing.T) {
	engine, nd := newNode7(t)
	if err := engine.RunUntil(engine.Now() + 3600); err != nil {
		t.Fatal(err)
	}
	if nd.State() != node.StateHalted {
		t.Fatalf("node 7 did not trip without the governor (%.1f degC)",
			nd.Temperature(thermal.SensorCPU))
	}
}

func TestGovernorPreventsTrip(t *testing.T) {
	engine, nd := newNode7(t)
	g, err := New(nd, Config{CapC: 95})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(engine); err != nil {
		t.Fatal(err)
	}
	if err := engine.RunUntil(engine.Now() + 7200); err != nil {
		t.Fatal(err)
	}
	if nd.State() != node.StateRunning {
		t.Fatalf("node state = %s under governor", nd.State())
	}
	if temp := nd.Temperature(thermal.SensorCPU); temp > 96.5 {
		t.Errorf("temperature %.1f exceeded the cap", temp)
	}
	if g.MeanScale() >= 1 {
		t.Error("governor never throttled on the hazard slot")
	}
	if g.MeanScale() < node.MinFreqScale {
		t.Errorf("mean scale %v below floor", g.MeanScale())
	}
	if g.ThrottledSeconds() <= 0 {
		t.Error("no throttled time recorded")
	}
}

func TestGovernorIdleOnCoolNode(t *testing.T) {
	// A well-cooled node must not be throttled.
	engine := sim.NewEngine()
	nd, err := node.New(node.Config{ID: 1, Enclosure: thermal.Enclosure{AmbientC: 25, LidOn: false}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.NewTicker(engine, 0.5, 0.5, "step", func(now float64) { nd.Step(now) }); err != nil {
		t.Fatal(err)
	}
	if err := nd.PowerOn(0); err != nil {
		t.Fatal(err)
	}
	if err := engine.RunUntil(node.R1Duration + node.R2Duration + 1); err != nil {
		t.Fatal(err)
	}
	if err := nd.SetWorkload("hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	g, err := New(nd, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(engine); err != nil {
		t.Fatal(err)
	}
	if err := engine.RunUntil(engine.Now() + 1800); err != nil {
		t.Fatal(err)
	}
	if nd.FrequencyScale() != 1 {
		t.Errorf("cool node throttled to %v", nd.FrequencyScale())
	}
	if g.ThrottledSeconds() != 0 {
		t.Errorf("throttled %v s on a cool node", g.ThrottledSeconds())
	}
}

func TestStopRestoresNominal(t *testing.T) {
	engine, nd := newNode7(t)
	g, err := New(nd, Config{CapC: 90})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(engine); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(engine); err == nil {
		t.Error("double start accepted")
	}
	if err := engine.RunUntil(engine.Now() + 1200); err != nil {
		t.Fatal(err)
	}
	if nd.FrequencyScale() >= 1 {
		t.Fatal("governor did not throttle before Stop")
	}
	g.Stop()
	if nd.FrequencyScale() != 1 {
		t.Error("Stop did not restore the nominal operating point")
	}
}

func TestScalingReducesPowerAndCounters(t *testing.T) {
	_, nd := newNode7(t)
	full := nd.TotalMilliwatts()
	nd.SetFrequencyScale(0.5)
	half := nd.TotalMilliwatts()
	if half >= full {
		t.Errorf("power did not drop with frequency: %v >= %v", half, full)
	}
	// The leakage floor survives: power cannot fall below the R1 total.
	if half < 1385 {
		t.Errorf("scaled power %v below leakage floor", half)
	}
	// Clamping.
	nd.SetFrequencyScale(0.01)
	if nd.FrequencyScale() != node.MinFreqScale {
		t.Errorf("scale = %v, want clamp at %v", nd.FrequencyScale(), node.MinFreqScale)
	}
	nd.SetFrequencyScale(7)
	if nd.FrequencyScale() != 1 {
		t.Errorf("scale = %v, want clamp at 1", nd.FrequencyScale())
	}
}
