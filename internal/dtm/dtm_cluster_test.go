package dtm

import (
	"math"
	"testing"

	"montecimone/internal/cluster"
	"montecimone/internal/node"
	"montecimone/internal/power"
	"montecimone/internal/sim"
	"montecimone/internal/thermal"
)

// hazardCluster boots a full 8-node cluster in the original enclosure and
// puts sustained HPL on every node — the Fig. 6 incident, with node 7 on
// the obstructed slot.
func hazardCluster(t *testing.T, lockStep bool) (*sim.Engine, *cluster.Cluster, *node.Node) {
	t.Helper()
	e := sim.NewEngine()
	c, err := cluster.New(e, cluster.Config{LockStep: lockStep})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.BootAndSettle(1); err != nil {
		t.Fatal(err)
	}
	nd, err := c.NodeByHostname("mc07")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunWorkloadOn(c.Hostnames(), "hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	return e, c, nd
}

// TestGovernorHoldsNode7BelowCapOnCluster: with the governor active on
// the obstructed slot, sustained full-machine HPL under demand-driven
// integration stays below the cap and the node survives.
func TestGovernorHoldsNode7BelowCapOnCluster(t *testing.T) {
	e, c, nd := hazardCluster(t, false)
	defer c.Stop()
	g, err := New(nd, Config{CapC: 95})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(e); err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	if err := e.RunUntil(e.Now() + 7200); err != nil {
		t.Fatal(err)
	}
	if nd.State() != node.StateRunning {
		t.Fatalf("mc07 state = %s under governor", nd.State())
	}
	if temp := nd.Temperature(thermal.SensorCPU); temp > 96.5 {
		t.Errorf("mc07 at %.1f degC exceeded the 95 degC cap band", temp)
	}
	if g.MeanScale() >= 1 || g.ThrottledSeconds() <= 0 {
		t.Errorf("governor never throttled on the hazard slot (mean %.2f, %v s)",
			g.MeanScale(), g.ThrottledSeconds())
	}
}

// TestGovernorDisabledTripMatchesLockStep: with the governor off, the
// demand-driven run must integrate the node-7 trip and halt at the same
// virtual time as the lock-step baseline — the watchdog's refinement near
// the trip band is exactly what makes the lazy integrator event-accurate.
func TestGovernorDisabledTripMatchesLockStep(t *testing.T) {
	type result struct{ haltAt, callbackAt float64 }
	run := func(lockStep bool) result {
		e, c, nd := hazardCluster(t, lockStep)
		defer c.Stop()
		cb := -1.0
		c.OnNodeHalt(func(h string) {
			if h == "mc07" && cb < 0 {
				cb = e.Now()
			}
		})
		if err := e.RunUntil(e.Now() + 3600); err != nil {
			t.Fatal(err)
		}
		if nd.State() != node.StateHalted {
			t.Fatalf("lockStep=%v: mc07 did not trip", lockStep)
		}
		return result{haltAt: nd.HaltedAt(), callbackAt: cb}
	}
	lock := run(true)
	lazy := run(false)
	if d := math.Abs(lock.haltAt - lazy.haltAt); d > 1e-6 {
		t.Errorf("trip integrated %v s apart (lock %v, demand %v)", d, lock.haltAt, lazy.haltAt)
	}
	if d := math.Abs(lock.callbackAt - lazy.callbackAt); d > 1e-6 {
		t.Errorf("halt surfaced %v s apart (lock %v, demand %v)", d, lock.callbackAt, lazy.callbackAt)
	}
}

// TestGovernorPowerCapThrottles: the power-cap dimension added for the
// cluster power plane throttles a node whose draw exceeds its cap even
// with ample thermal headroom, and recovers once the cap is lifted.
func TestGovernorPowerCapThrottles(t *testing.T) {
	engine := sim.NewEngine()
	nd, err := node.New(node.Config{ID: 1, Enclosure: thermal.Enclosure{AmbientC: 25, LidOn: false}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.NewTicker(engine, 0.5, 0.5, "step", func(now float64) { nd.Step(now) }); err != nil {
		t.Fatal(err)
	}
	if err := nd.PowerOn(0); err != nil {
		t.Fatal(err)
	}
	if err := engine.RunUntil(node.R1Duration + node.R2Duration + 1); err != nil {
		t.Fatal(err)
	}
	if err := nd.SetWorkload("hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	g, err := New(nd, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(engine); err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	// HPL draws ~5.9 W on this cool slot; cap it at 5 W.
	g.SetPowerCapW(5)
	if err := engine.RunUntil(engine.Now() + 300); err != nil {
		t.Fatal(err)
	}
	if nd.FrequencyScale() >= 1 {
		t.Fatal("power cap did not throttle")
	}
	if draw := nd.TotalMilliwatts() / 1000; draw > 5.05 {
		t.Errorf("draw %.2f W above the 5 W cap", draw)
	}
	// Lift the cap: the governor recovers to nominal (thermal headroom is
	// ample on the mitigated slot).
	g.SetPowerCapW(0)
	if err := engine.RunUntil(engine.Now() + 300); err != nil {
		t.Fatal(err)
	}
	if nd.FrequencyScale() != 1 {
		t.Errorf("scale %.2f after cap lifted, want 1", nd.FrequencyScale())
	}
}
