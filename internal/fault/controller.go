package fault

import (
	"fmt"
	"sort"

	"montecimone/internal/cluster"
	"montecimone/internal/node"
	"montecimone/internal/powerplane"
	"montecimone/internal/sched"
	"montecimone/internal/sim"
)

// Config assembles a Controller against a booted system. Plane may be nil
// when the campaign runs without a power budget (power steps are then
// rejected by Spec.Validate).
type Config struct {
	Engine   *sim.Engine
	Cluster  *cluster.Cluster
	Sched    *sched.Scheduler
	Plane    *powerplane.Governor
	Spec     *Spec
	RNG      *sim.RNG
	StartT   float64 // engine time of campaign t=0
	HorizonS float64
	// Logf receives the fault event-log lines (campaign-relative t already
	// formatted in); nil discards them.
	Logf func(format string, args ...any)
}

// Controller owns a compiled fault plan at run time: it schedules the
// injections as engine events, drives the recovery half (reboots, thermal
// repairs, scheduler NodeUp) and keeps the downtime books behind the
// campaign's availability, MTTR and retry columns.
type Controller struct {
	cfg  Config
	plan *Plan

	// stragglers and netSlow feed the scheduler's runtime scaler.
	stragglers map[string]float64 // hostname -> slowdown
	netSlow    float64            // active window's job stretch, 1 outside

	// thermFaulted marks hosts carrying an injected airflow fault (their
	// halts are ours to repair; natural runaways stay down as before).
	thermFaulted map[string]bool
	// downSince tracks open outages: hostname -> engine time the outage
	// began (crash instant or fault-induced halt).
	downSince map[string]float64

	crashes    int
	injects    int
	trips      int
	powerSteps int
	netWindows int
	repairs    int
	downDoneS  float64 // closed-outage node-seconds
	repairSumS float64 // closed-outage repair times (== downDoneS, kept for MTTR clarity)
}

// Stats is the controller's accounting snapshot, campaign-report ready.
type Stats struct {
	Crashes        int
	ThermalInjects int
	Trips          int
	PowerSteps     int
	NetWindows     int
	StragglerNodes int
	Repairs        int
	// DownNodeS is cumulative node-down seconds, open outages closed at
	// the snapshot instant.
	DownNodeS float64
	// MTTRS is the mean repair time over completed repairs (0 if none).
	MTTRS float64
}

// NewController compiles the spec against the machine and subscribes to
// the cluster's halt/boot notifications. Call Arm afterwards (once the
// system is booted) to schedule the injection timeline.
func NewController(cfg Config) (*Controller, error) {
	if cfg.Engine == nil || cfg.Cluster == nil || cfg.Sched == nil || cfg.Spec == nil || cfg.RNG == nil {
		return nil, fmt.Errorf("fault: controller needs engine, cluster, scheduler, spec and rng")
	}
	if err := cfg.Spec.Validate(cfg.Cluster.Size(), cfg.HorizonS, cfg.Plane != nil); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:          cfg,
		plan:         Compile(cfg.Spec, cfg.RNG, cfg.Cluster.Size(), cfg.HorizonS),
		stragglers:   map[string]float64{},
		netSlow:      1,
		thermFaulted: map[string]bool{},
		downSince:    map[string]float64{},
	}
	for n, slow := range c.plan.Stragglers {
		c.stragglers[cfg.Cluster.Node(n).Hostname()] = slow
	}
	cfg.Cluster.OnNodeHalt(c.nodeHalted)
	cfg.Cluster.OnNodeBoot(c.nodeBooted)
	return c, nil
}

// Arm schedules the compiled timeline. Single-node injections are
// prepared barriers keyed by their node (their callbacks re-plan the
// node's watchdog and touch scheduler state); cluster-wide injections are
// plain barriers. Arm must run at campaign t=0, after boot.
func (c *Controller) Arm() error {
	// Stragglers are a static assignment, logged up front in node order.
	nodes := make([]int, 0, len(c.plan.Stragglers))
	for n := range c.plan.Stragglers {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		host := c.cfg.Cluster.Node(n).Hostname()
		c.logf("t=%10.1f fault  straggler %-14s x%.2f", 0.0, host, c.plan.Stragglers[n])
	}
	for _, ev := range c.plan.Events {
		ev := ev
		at := c.cfg.StartT + ev.AtS
		var err error
		switch ev.Kind {
		case KindCrash:
			_, err = c.cfg.Engine.ScheduleAtPrepared(at, "fault.crash", []int{ev.Node},
				func(*sim.Engine) { c.crash(ev.Node) })
		case KindThermalInject:
			_, err = c.cfg.Engine.ScheduleAtPrepared(at, "fault.thermal", []int{ev.Node},
				func(*sim.Engine) { c.injectThermal(ev.Node) })
		case KindPowerStep:
			_, err = c.cfg.Engine.ScheduleAt(at, "fault.budget",
				func(*sim.Engine) { c.powerStep(ev.BudgetW) })
		case KindNetStart:
			_, err = c.cfg.Engine.ScheduleAt(at, "fault.net",
				func(*sim.Engine) { c.netStart(ev) })
		case KindNetEnd:
			_, err = c.cfg.Engine.ScheduleAt(at, "fault.net",
				func(*sim.Engine) { c.netEnd() })
		}
		if err != nil {
			return fmt.Errorf("fault: arm: %w", err)
		}
	}
	return nil
}

// Slowdown is the scheduler's runtime scaler: jobs touching a straggler
// node run at its factor, and multi-node jobs starting inside a degraded-
// network window at least at the window's stretch. Factors do not stack
// (the max applies) — a job on a slow node inside a slow window is bound
// by whichever bottleneck is worse.
func (c *Controller) Slowdown(job *sched.Job, hosts []string) float64 {
	s := 1.0
	for _, h := range hosts {
		if f := c.stragglers[h]; f > s {
			s = f
		}
	}
	if len(hosts) > 1 && c.netSlow > s {
		s = c.netSlow
	}
	return s
}

// Stats snapshots the accounting at the given engine instant (open
// outages are charged up to it; their eventual repair is not counted as a
// completed repair).
func (c *Controller) Stats(now float64) Stats {
	st := Stats{
		Crashes:        c.crashes,
		ThermalInjects: c.injects,
		Trips:          c.trips,
		PowerSteps:     c.powerSteps,
		NetWindows:     c.netWindows,
		StragglerNodes: len(c.stragglers),
		Repairs:        c.repairs,
		DownNodeS:      c.downDoneS,
	}
	for _, since := range c.downSince {
		if now > since {
			st.DownNodeS += now - since
		}
	}
	if c.repairs > 0 {
		st.MTTRS = c.repairSumS / float64(c.repairs)
	}
	return st
}

func (c *Controller) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Controller) rel(now float64) float64 { return now - c.cfg.StartT }

// crash powers a node off mid-flight and starts its reboot clock. A node
// that is already down (off, halted, or mid-outage) absorbs the crash.
func (c *Controller) crash(n int) {
	nd := c.cfg.Cluster.Node(n)
	host := nd.Hostname()
	if _, down := c.downSince[host]; down {
		return
	}
	if st := nd.State(); st != node.StateRunning && st != node.StateBooting {
		return
	}
	now := c.cfg.Engine.Now()
	reboot := c.cfg.Spec.Crash.rebootS()
	c.crashes++
	c.downSince[host] = now
	c.logf("t=%10.1f fault  crash  %-14s reboot=%.0fs", c.rel(now), host, reboot)
	nd.PowerOff()
	if err := c.cfg.Sched.NodeDown(host); err != nil {
		panic(fmt.Sprintf("fault: node down %s: %v", host, err))
	}
	_, err := c.cfg.Engine.ScheduleAfterPrepared(reboot, "fault.reboot", []int{n}, func(e *sim.Engine) {
		if nd.State() == node.StateOff {
			if perr := nd.PowerOn(e.Now()); perr != nil {
				panic(fmt.Sprintf("fault: reboot %s: %v", host, perr))
			}
		}
	})
	if err != nil {
		panic(fmt.Sprintf("fault: schedule reboot %s: %v", host, err))
	}
}

// injectThermal installs the airflow fault; the trip (if the node's load
// pushes it supercritical) arrives through the genuine physics path and
// is handled by nodeHalted.
func (c *Controller) injectThermal(n int) {
	nd := c.cfg.Cluster.Node(n)
	host := nd.Hostname()
	th := c.cfg.Spec.Thermal
	now := c.cfg.Engine.Now()
	c.injects++
	c.thermFaulted[host] = true
	c.logf("t=%10.1f fault  airflow %-13s rth+=%.1fK/W air+=%.1fC", c.rel(now), host, th.extraRthKW(), th.extraAirC())
	nd.InjectThermalFault(th.extraRthKW(), th.extraAirC())
}

// nodeHalted runs on every cluster halt; halts of hosts we faulted are
// ours to repair (fan fix + power cycle after RepairS). Natural runaways
// on healthy hosts stay down, exactly as without the fault subsystem.
func (c *Controller) nodeHalted(host string) {
	if !c.thermFaulted[host] {
		return
	}
	if _, down := c.downSince[host]; down {
		return
	}
	now := c.cfg.Engine.Now()
	repair := c.cfg.Spec.Thermal.repairS()
	c.trips++
	c.downSince[host] = now
	c.logf("t=%10.1f fault  trip   %-14s repair=%.0fs", c.rel(now), host, repair)
	nd, err := c.cfg.Cluster.NodeByHostname(host)
	if err != nil {
		panic(fmt.Sprintf("fault: halt of unknown host %s", host))
	}
	keys := c.cfg.Cluster.NodeKeys([]string{host})
	_, err = c.cfg.Engine.ScheduleAfterPrepared(repair, "fault.repair", keys, func(e *sim.Engine) {
		if nd.State() != node.StateHalted {
			return
		}
		c.thermFaulted[host] = false
		nd.ClearThermalFault()
		nd.PowerOff()
		if perr := nd.PowerOn(e.Now()); perr != nil {
			panic(fmt.Sprintf("fault: repair %s: %v", host, perr))
		}
		c.logf("t=%10.1f fault  repair %-14s power-cycled", c.rel(e.Now()), host)
	})
	if err != nil {
		panic(fmt.Sprintf("fault: schedule repair %s: %v", host, err))
	}
}

// nodeBooted closes the outage when a repaired/rebooted host finishes
// booting and returns it to the scheduler.
func (c *Controller) nodeBooted(host string) {
	since, ok := c.downSince[host]
	if !ok {
		return
	}
	delete(c.downSince, host)
	now := c.cfg.Engine.Now()
	d := now - since
	c.repairs++
	c.downDoneS += d
	c.repairSumS += d
	if err := c.cfg.Sched.NodeUp(host); err != nil {
		panic(fmt.Sprintf("fault: node up %s: %v", host, err))
	}
	c.logf("t=%10.1f fault  up     %-14s down=%.1fs", c.rel(now), host, d)
}

// powerStep rewrites the facility budget (brownout or recovery). The
// plane's next control tick redistributes caps; a budget increase also
// reaches the scheduler through the plane's headroom notification.
func (c *Controller) powerStep(budgetW float64) {
	now := c.cfg.Engine.Now()
	c.powerSteps++
	c.logf("t=%10.1f fault  budget %.0fW", c.rel(now), budgetW)
	if err := c.cfg.Plane.SetBudgetW(budgetW); err != nil {
		panic(fmt.Sprintf("fault: power step: %v", err))
	}
}

// netStart / netEnd bracket a degradation window on the live fabric.
func (c *Controller) netStart(ev Event) {
	now := c.cfg.Engine.Now()
	c.netWindows++
	c.netSlow = ev.Slowdown
	c.logf("t=%10.1f fault  net    degraded lat=x%.1f bw=x%.2f", c.rel(now), ev.LatencyMult, ev.BandwidthMult)
	if err := c.cfg.Cluster.Fabric().SetDegradation(ev.LatencyMult, ev.BandwidthMult); err != nil {
		panic(fmt.Sprintf("fault: net degrade: %v", err))
	}
}

func (c *Controller) netEnd() {
	now := c.cfg.Engine.Now()
	c.netSlow = 1
	c.logf("t=%10.1f fault  net    restored", c.rel(now))
	if err := c.cfg.Cluster.Fabric().SetDegradation(1, 1); err != nil {
		panic(fmt.Sprintf("fault: net restore: %v", err))
	}
}
