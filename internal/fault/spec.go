// Package fault is the declarative fault-injection subsystem for chaos
// campaigns: a campaign spec's "faults" block compiles into a
// deterministic, seeded event timeline — node crash/reboot cycles,
// airflow faults that drive the paper's genuine 107 degC thermal-runaway
// trip, power-budget steps (brownouts through the power plane), MPI
// network degradation windows and per-node stragglers — and a controller
// schedules that timeline through the discrete-event engine and owns the
// recovery half (repairs, reboots, scheduler NodeUp) plus the
// availability/MTTR accounting the campaign report renders.
//
// Determinism rules. Every random draw happens at Compile time from named
// sim.RNG streams (one per fault class), never while the engine runs, so
// the same spec + seed expands into the same timeline at any shard count.
// Injected events are scheduled as prepared barriers (single-node faults
// keyed by their node index, cluster-wide faults unkeyed): their callbacks
// touch scheduler and power-plane state and re-plan node watchdogs —
// cross-shard edges that must close the lookahead window behind them, per
// the engine's affine contract. Recovery delays are validated to at least
// one second, far above the cluster's 0.1 s integration-step lookahead, so
// events scheduled from inside a window always land beyond it.
package fault

import (
	"fmt"
	"sort"
)

// Defaults applied by the accessor methods when a spec leaves a knob zero.
const (
	// DefaultRebootS is the crash repair delay before power-on.
	DefaultRebootS = 120.0
	// DefaultRepairS is the delay between a fault-induced thermal halt and
	// the fan fix + power cycle.
	DefaultRepairS = 300.0
	// DefaultExtraRthKW and DefaultExtraAirC reproduce (on a mitigated
	// slot) roughly the node 7 lid-on environment: supercritical under
	// HPL-class load, so a loaded node walks the genuine runaway path.
	DefaultExtraRthKW = 4.5
	DefaultExtraAirC  = 17.0
	// DefaultMaxRequeues bounds NODE_FAIL requeues per job.
	DefaultMaxRequeues = 3
)

// minRecoveryS is the validation floor for recovery delays: one second
// keeps every dynamically scheduled repair far beyond the engine's
// lookahead window (the cluster declares a 0.1 s integration step).
const minRecoveryS = 1.0

// Crash describes random whole-node crash/reboot cycles: each node fails
// independently with exponential interarrivals at the given MTBF, powers
// off instantly (the job there ends in NODE_FAIL) and reboots after
// RebootS.
type Crash struct {
	// MTBFHours is the per-node mean time between crashes.
	MTBFHours float64 `json:"mtbf_hours"`
	// RebootS is the repair delay before the power button is pressed
	// again (default DefaultRebootS); the OS boot adds its usual
	// R1+R2 seconds on top.
	RebootS float64 `json:"reboot_s,omitempty"`
}

func (c *Crash) rebootS() float64 {
	if c.RebootS == 0 {
		return DefaultRebootS
	}
	return c.RebootS
}

// Thermal describes airflow-fault injections: a drawn node gains extra
// junction-to-air resistance and inlet-air rise (a failed fan), which
// leaves it with no equilibrium below the 107 degC trip under load — the
// node 7 failure mode on demand. After the trip the fan is fixed and the
// node power-cycled RepairS seconds later.
type Thermal struct {
	// Injections is how many airflow faults to draw over the horizon
	// (injection instants land in the first half so the repair fits).
	Injections int `json:"injections"`
	// ExtraRthKW / ExtraAirC size the defect (defaults DefaultExtraRthKW /
	// DefaultExtraAirC, supercritical under HPL-class load).
	ExtraRthKW float64 `json:"extra_rth_kw,omitempty"`
	ExtraAirC  float64 `json:"extra_air_c,omitempty"`
	// RepairS is the halt-to-power-cycle delay (default DefaultRepairS).
	RepairS float64 `json:"repair_s,omitempty"`
}

func (t *Thermal) extraRthKW() float64 {
	if t.ExtraRthKW == 0 {
		return DefaultExtraRthKW
	}
	return t.ExtraRthKW
}

func (t *Thermal) extraAirC() float64 {
	if t.ExtraAirC == 0 {
		return DefaultExtraAirC
	}
	return t.ExtraAirC
}

func (t *Thermal) repairS() float64 {
	if t.RepairS == 0 {
		return DefaultRepairS
	}
	return t.RepairS
}

// PowerStep is one facility-side budget change (a brownout, or its
// recovery): at AtS the power plane's budget becomes BudgetW.
type PowerStep struct {
	AtS     float64 `json:"at_s"`
	BudgetW float64 `json:"budget_w"`
}

// NetWindow is one network-degradation window: between StartS and
// StartS+DurationS the fabric's inter-node latency is multiplied by
// LatencyMult and its bandwidth by BandwidthMult. Multi-node jobs that
// START inside the window additionally run Slowdown times longer (their
// MPI phases are communication-bound; the coarse per-job stretch models
// it without re-simulating every exchange).
type NetWindow struct {
	StartS    float64 `json:"start_s"`
	DurationS float64 `json:"duration_s"`
	// LatencyMult >= 1 (default 1); BandwidthMult in (0,1] (default 1).
	LatencyMult   float64 `json:"latency_mult,omitempty"`
	BandwidthMult float64 `json:"bandwidth_mult,omitempty"`
	// Slowdown is the runtime stretch for multi-node jobs starting inside
	// the window (default 1/BandwidthMult).
	Slowdown float64 `json:"slowdown,omitempty"`
}

func (w *NetWindow) latencyMult() float64 {
	if w.LatencyMult == 0 {
		return 1
	}
	return w.LatencyMult
}

func (w *NetWindow) bandwidthMult() float64 {
	if w.BandwidthMult == 0 {
		return 1
	}
	return w.BandwidthMult
}

func (w *NetWindow) slowdown() float64 {
	if w.Slowdown == 0 {
		return 1 / w.bandwidthMult()
	}
	return w.Slowdown
}

// Stragglers draws Count distinct nodes that run every job landing on
// them Slowdown times slower (a degraded DIMM, a failing fan curve —
// the node works, just badly).
type Stragglers struct {
	Count    int     `json:"count"`
	Slowdown float64 `json:"slowdown"`
}

// Spec is the declarative "faults" block of a campaign spec. All classes
// are optional; an empty spec injects nothing but still enables the
// recovery machinery (requeue, checkpoint, availability accounting).
type Spec struct {
	Crash      *Crash      `json:"crash,omitempty"`
	Thermal    *Thermal    `json:"thermal,omitempty"`
	PowerSteps []PowerStep `json:"power_steps,omitempty"`
	Network    []NetWindow `json:"network,omitempty"`
	Stragglers *Stragglers `json:"stragglers,omitempty"`

	// MaxRequeues bounds how often a NODE_FAIL job re-enters the queue
	// (default DefaultMaxRequeues; negative disables requeueing).
	MaxRequeues int `json:"max_requeues,omitempty"`
	// Checkpoint enables the phase-boundary checkpoint/restart model:
	// requeued jobs resume from their last completed phase boundary
	// (workload.RestartPoint) instead of t=0. CheckpointS is the periodic
	// interval for single-phase models (0 = they restart from scratch).
	Checkpoint  bool    `json:"checkpoint,omitempty"`
	CheckpointS float64 `json:"checkpoint_interval_s,omitempty"`
}

func (s *Spec) maxRequeues() int {
	if s.MaxRequeues == 0 {
		return DefaultMaxRequeues
	}
	if s.MaxRequeues < 0 {
		return -1
	}
	return s.MaxRequeues
}

// Requeue reports whether NODE_FAIL jobs requeue, and the per-job bound.
func (s *Spec) Requeue() (enabled bool, maxRequeues int) {
	m := s.maxRequeues()
	return m >= 0, m
}

// Validate checks the fault block against the campaign's machine: nodes is
// the partition size, horizonS the campaign horizon, hasPlane whether the
// power plane is enabled (power steps are meaningless without it).
func (s *Spec) Validate(nodes int, horizonS float64, hasPlane bool) error {
	if c := s.Crash; c != nil {
		if c.MTBFHours <= 0 {
			return fmt.Errorf("fault: crash mtbf_hours must be positive, got %v", c.MTBFHours)
		}
		if c.RebootS != 0 && c.RebootS < minRecoveryS {
			return fmt.Errorf("fault: crash reboot_s must be >= %v s, got %v", minRecoveryS, c.RebootS)
		}
	}
	if t := s.Thermal; t != nil {
		if t.Injections <= 0 {
			return fmt.Errorf("fault: thermal injections must be positive, got %d", t.Injections)
		}
		if t.ExtraRthKW < 0 || t.ExtraAirC < 0 {
			return fmt.Errorf("fault: thermal extra_rth_kw/extra_air_c must be non-negative")
		}
		if t.RepairS != 0 && t.RepairS < minRecoveryS {
			return fmt.Errorf("fault: thermal repair_s must be >= %v s, got %v", minRecoveryS, t.RepairS)
		}
	}
	for i, p := range s.PowerSteps {
		if !hasPlane {
			return fmt.Errorf("fault: power_steps[%d]: campaign has no power plane (set power_budget_w)", i)
		}
		if p.AtS < 0 || p.AtS > horizonS {
			return fmt.Errorf("fault: power_steps[%d]: at_s %v outside [0,%v]", i, p.AtS, horizonS)
		}
		if p.BudgetW <= 0 {
			return fmt.Errorf("fault: power_steps[%d]: budget_w must be positive, got %v", i, p.BudgetW)
		}
	}
	windows := append([]NetWindow(nil), s.Network...)
	sort.SliceStable(windows, func(i, j int) bool { return windows[i].StartS < windows[j].StartS })
	prevEnd := 0.0
	for i, w := range windows {
		if w.StartS < 0 || w.DurationS <= 0 {
			return fmt.Errorf("fault: network[%d]: needs start_s >= 0 and duration_s > 0", i)
		}
		if w.StartS < prevEnd {
			return fmt.Errorf("fault: network windows overlap at t=%v", w.StartS)
		}
		prevEnd = w.StartS + w.DurationS
		if w.LatencyMult != 0 && w.LatencyMult < 1 {
			return fmt.Errorf("fault: network[%d]: latency_mult must be >= 1, got %v", i, w.LatencyMult)
		}
		if w.BandwidthMult != 0 && (w.BandwidthMult <= 0 || w.BandwidthMult > 1) {
			return fmt.Errorf("fault: network[%d]: bandwidth_mult must be in (0,1], got %v", i, w.BandwidthMult)
		}
		if w.Slowdown != 0 && w.Slowdown < 1 {
			return fmt.Errorf("fault: network[%d]: slowdown must be >= 1, got %v", i, w.Slowdown)
		}
	}
	if st := s.Stragglers; st != nil {
		if st.Count <= 0 || st.Count > nodes {
			return fmt.Errorf("fault: stragglers count %d outside [1,%d]", st.Count, nodes)
		}
		if st.Slowdown <= 1 {
			return fmt.Errorf("fault: stragglers slowdown must be > 1, got %v", st.Slowdown)
		}
	}
	if s.CheckpointS < 0 {
		return fmt.Errorf("fault: checkpoint_interval_s must be non-negative, got %v", s.CheckpointS)
	}
	return nil
}
