package fault

import (
	"reflect"
	"sort"
	"testing"

	"montecimone/internal/sim"
)

func chaosSpec() *Spec {
	return &Spec{
		Crash:      &Crash{MTBFHours: 2},
		Thermal:    &Thermal{Injections: 3},
		PowerSteps: []PowerStep{{AtS: 100, BudgetW: 24}, {AtS: 500, BudgetW: 40}},
		Network:    []NetWindow{{StartS: 200, DurationS: 100, LatencyMult: 4, BandwidthMult: 0.5}},
		Stragglers: &Stragglers{Count: 2, Slowdown: 1.4},
	}
}

func TestCompileDeterministic(t *testing.T) {
	a := Compile(chaosSpec(), sim.NewRNG(7), 8, 3600)
	b := Compile(chaosSpec(), sim.NewRNG(7), 8, 3600)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec and seed compiled to different plans")
	}
	c := Compile(chaosSpec(), sim.NewRNG(8), 8, 3600)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds compiled to identical event timelines")
	}
}

// TestCompileStreamIsolation pins the named-stream contract: draws taken
// from other streams of the same factory (the campaign generator's, for
// instance) must not perturb the fault timeline.
func TestCompileStreamIsolation(t *testing.T) {
	clean := Compile(chaosSpec(), sim.NewRNG(7), 8, 3600)
	dirty := sim.NewRNG(7)
	for i := 0; i < 100; i++ {
		dirty.Stream("campaign.arrival").Float64()
		dirty.Stream("campaign.jitter").NormFloat64()
	}
	if !reflect.DeepEqual(clean, Compile(chaosSpec(), dirty, 8, 3600)) {
		t.Fatal("foreign stream draws perturbed the compiled fault plan")
	}
}

func TestCompilePlanShape(t *testing.T) {
	p := Compile(chaosSpec(), sim.NewRNG(7), 8, 3600)
	if !sort.SliceIsSorted(p.Events, func(i, j int) bool { return p.Events[i].AtS < p.Events[j].AtS }) {
		t.Error("timeline not sorted by time")
	}
	counts := map[Kind]int{}
	for _, ev := range p.Events {
		counts[ev.Kind]++
		if ev.AtS < 0 {
			t.Errorf("event before campaign start: %+v", ev)
		}
		switch ev.Kind {
		case KindCrash, KindThermalInject:
			if ev.Node < 0 || ev.Node >= 8 {
				t.Errorf("node index out of range: %+v", ev)
			}
			if ev.AtS >= 3600 {
				t.Errorf("stochastic event beyond horizon: %+v", ev)
			}
		}
	}
	if counts[KindCrash] == 0 {
		t.Error("MTBF 2 h x 8 nodes x 1 h drew no crashes")
	}
	if counts[KindThermalInject] != 3 {
		t.Errorf("thermal injections = %d, want 3", counts[KindThermalInject])
	}
	if counts[KindPowerStep] != 2 || counts[KindNetStart] != 1 || counts[KindNetEnd] != 1 {
		t.Errorf("explicit event counts wrong: %v", counts)
	}
	if len(p.Stragglers) != 2 {
		t.Errorf("stragglers = %d nodes, want 2", len(p.Stragglers))
	}
	for n, slow := range p.Stragglers {
		if n < 0 || n >= 8 || slow != 1.4 {
			t.Errorf("bad straggler assignment %d -> %v", n, slow)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []struct {
		name string
		spec Spec
	}{
		{"zero mtbf", Spec{Crash: &Crash{}}},
		{"sub-second reboot", Spec{Crash: &Crash{MTBFHours: 1, RebootS: 0.5}}},
		{"zero injections", Spec{Thermal: &Thermal{}}},
		{"sub-second repair", Spec{Thermal: &Thermal{Injections: 1, RepairS: 0.5}}},
		{"power step without plane", Spec{PowerSteps: []PowerStep{{AtS: 1, BudgetW: 30}}}},
		{"zero-duration window", Spec{Network: []NetWindow{{StartS: 10}}}},
		{"overlapping windows", Spec{Network: []NetWindow{{StartS: 0, DurationS: 100}, {StartS: 50, DurationS: 100}}}},
		{"latency under 1", Spec{Network: []NetWindow{{StartS: 0, DurationS: 10, LatencyMult: 0.5}}}},
		{"bandwidth over 1", Spec{Network: []NetWindow{{StartS: 0, DurationS: 10, BandwidthMult: 1.5}}}},
		{"too many stragglers", Spec{Stragglers: &Stragglers{Count: 9, Slowdown: 2}}},
		{"straggler not slower", Spec{Stragglers: &Stragglers{Count: 1, Slowdown: 1}}},
		{"negative checkpoint interval", Spec{CheckpointS: -1}},
	}
	for _, c := range bad {
		hasPlane := c.name != "power step without plane"
		if err := c.spec.Validate(8, 3600, hasPlane); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	good := chaosSpec()
	if err := good.Validate(8, 3600, true); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestRequeueDefaults(t *testing.T) {
	s := &Spec{}
	if on, max := s.Requeue(); !on || max != DefaultMaxRequeues {
		t.Errorf("zero spec requeue = (%v, %d), want (true, %d)", on, max, DefaultMaxRequeues)
	}
	s.MaxRequeues = -1
	if on, _ := s.Requeue(); on {
		t.Error("negative max_requeues did not disable requeueing")
	}
	s.MaxRequeues = 5
	if on, max := s.Requeue(); !on || max != 5 {
		t.Errorf("explicit max_requeues = (%v, %d), want (true, 5)", on, max)
	}
}
