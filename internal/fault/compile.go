package fault

import (
	"sort"

	"montecimone/internal/sim"
)

// Named RNG streams, one per stochastic fault class. Power steps and
// network windows are fully explicit in the spec and draw nothing.
const (
	streamCrash     = "fault.crash"
	streamThermal   = "fault.thermal"
	streamStraggler = "fault.straggler"
)

// Kind discriminates compiled fault events.
type Kind int

const (
	// KindCrash powers a node off (NODE_FAIL for its job) and starts its
	// reboot clock.
	KindCrash Kind = iota
	// KindThermalInject installs an airflow fault on a node; the trip and
	// repair follow from the physics, not from further compiled events.
	KindThermalInject
	// KindPowerStep rewrites the power plane's budget.
	KindPowerStep
	// KindNetStart / KindNetEnd bracket a network-degradation window.
	KindNetStart
	KindNetEnd
)

// Event is one compiled fault occurrence, campaign-relative.
type Event struct {
	AtS  float64
	Kind Kind
	// Node is the 0-based partition index for single-node kinds.
	Node int
	// BudgetW is set for KindPowerStep.
	BudgetW float64
	// LatencyMult/BandwidthMult/Slowdown are set for KindNetStart.
	LatencyMult   float64
	BandwidthMult float64
	Slowdown      float64
}

// Plan is a spec expanded against a concrete machine and seed: the sorted
// event timeline plus the static straggler assignment. Expansion happens
// once, before the engine runs, so the plan — and hence the simulation —
// is identical at any shard count.
type Plan struct {
	Events []Event
	// Stragglers maps 0-based node index to runtime slowdown factor.
	Stragglers map[int]float64
}

// Compile expands the spec into its deterministic plan. rng must be the
// campaign's stream factory (draws come from this package's dedicated
// streams, so compilation never perturbs the campaign's own draws).
func Compile(s *Spec, rng *sim.RNG, nodes int, horizonS float64) *Plan {
	p := &Plan{Stragglers: map[int]float64{}}
	if c := s.Crash; c != nil {
		// Exponential interarrivals per node, node by node in partition
		// order: the draw sequence depends only on the spec and seed.
		ratePerSec := 1 / (c.MTBFHours * 3600)
		for n := 0; n < nodes; n++ {
			t := 0.0
			for {
				t += rng.Stream(streamCrash).ExpFloat64() / ratePerSec
				if t >= horizonS {
					break
				}
				p.Events = append(p.Events, Event{AtS: t, Kind: KindCrash, Node: n})
			}
		}
	}
	if th := s.Thermal; th != nil {
		// Injection instants land in the first half of the horizon so the
		// trip + repair cycle fits before the campaign ends.
		for i := 0; i < th.Injections; i++ {
			at := rng.Stream(streamThermal).Float64() * horizonS / 2
			n := rng.Stream(streamThermal).Intn(nodes)
			p.Events = append(p.Events, Event{AtS: at, Kind: KindThermalInject, Node: n})
		}
	}
	for _, ps := range s.PowerSteps {
		p.Events = append(p.Events, Event{AtS: ps.AtS, Kind: KindPowerStep, BudgetW: ps.BudgetW})
	}
	for _, w := range s.Network {
		p.Events = append(p.Events, Event{
			AtS: w.StartS, Kind: KindNetStart,
			LatencyMult: w.latencyMult(), BandwidthMult: w.bandwidthMult(), Slowdown: w.slowdown(),
		})
		p.Events = append(p.Events, Event{AtS: w.StartS + w.DurationS, Kind: KindNetEnd})
	}
	if st := s.Stragglers; st != nil {
		// Rejection-sample distinct nodes; Count <= nodes is validated, so
		// this terminates, and the draw sequence stays seed-determined.
		for len(p.Stragglers) < st.Count {
			n := rng.Stream(streamStraggler).Intn(nodes)
			if _, dup := p.Stragglers[n]; !dup {
				p.Stragglers[n] = st.Slowdown
			}
		}
	}
	// Stable sort: same-instant events keep the class order above (crashes,
	// thermal, power, network), which is part of the determinism contract.
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].AtS < p.Events[j].AtS })
	return p
}
