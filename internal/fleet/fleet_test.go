package fleet

import (
	"bytes"
	"sync"
	"testing"

	"montecimone/internal/examon"
)

// render runs the smoke fleet at the given pool width and returns the
// report and event-log bytes.
func render(t *testing.T, workers int) (report, events []byte) {
	t.Helper()
	res, err := Run(loadSmoke(t), workers)
	if err != nil {
		t.Fatalf("run (workers=%d): %v", workers, err)
	}
	var rep, ev bytes.Buffer
	if err := res.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteEventLogs(&ev); err != nil {
		t.Fatal(err)
	}
	return rep.Bytes(), ev.Bytes()
}

// The fleet determinism contract: the report and every cluster's event
// log are byte-identical at any worker-pool width.
func TestFleetDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet run")
	}
	baseRep, baseEv := render(t, 1)
	if len(baseEv) == 0 {
		t.Fatal("empty event log")
	}
	for _, workers := range []int{2, 4, 0} {
		rep, ev := render(t, workers)
		if !bytes.Equal(rep, baseRep) {
			t.Errorf("report differs at workers=%d", workers)
		}
		if !bytes.Equal(ev, baseEv) {
			t.Errorf("event logs differ at workers=%d", workers)
		}
	}
}

func TestFleetWorkerStats(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet run")
	}
	res, err := Run(loadSmoke(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Workers != 3 || st.Clusters != 3 {
		t.Errorf("stats = %+v, want 3 workers over 3 clusters", st)
	}
	if st.CampaignsRun != len(res.Assignments) {
		t.Errorf("campaigns run = %d, want %d", st.CampaignsRun, len(res.Assignments))
	}
	if st.MaxActive < 1 || st.MaxActive > st.Workers {
		t.Errorf("max active = %d, want within [1,%d]", st.MaxActive, st.Workers)
	}
	// A width-1 pool can never overlap clusters.
	res1, err := Run(loadSmoke(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.MaxActive != 1 {
		t.Errorf("workers=1 max active = %d, want 1", res1.Stats.MaxActive)
	}
	// The pool clamps to the cluster count.
	res8, err := Run(loadSmoke(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res8.Stats.Workers != 3 {
		t.Errorf("workers=8 resolved to %d, want clamp to 3 clusters", res8.Stats.Workers)
	}
}

// Every campaign result must land in the federation, attributed to its
// cluster, and be selectable through the Org/Cluster filter dimensions.
func TestFederationAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet run")
	}
	res, err := Run(loadSmoke(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	fed := res.Federation
	perCluster := make(map[string]int)
	for _, a := range res.Assignments {
		perCluster[a.ClusterID]++
	}
	for id, n := range perCluster {
		series := fed.Query(examon.Filter{Org: "fleet", Cluster: id, Metric: MetricJobs})
		if len(series) != 1 {
			t.Fatalf("cluster %s: %d job series, want 1", id, len(series))
		}
		if got := len(series[0].Points); got != n {
			t.Errorf("cluster %s: %d points, want %d (one per routed campaign)", id, got, n)
		}
		if series[0].Tags.Cluster != id || series[0].Tags.Plugin != FederationPlugin {
			t.Errorf("cluster %s: stored tags %+v", id, series[0].Tags)
		}
	}
	// An unknown cluster selects nothing.
	if got := fed.Query(examon.Filter{Org: "fleet", Cluster: "nowhere"}); len(got) != 0 {
		t.Errorf("unknown cluster matched %d series", len(got))
	}
	// Totals agree with the per-campaign results.
	var wantCompleted int
	for _, cres := range res.Campaigns {
		wantCompleted += cres.Completed
	}
	var gotCompleted float64
	for _, c := range res.Spec.Clusters {
		gotCompleted += fed.ClusterTotal(c.ID, MetricCompleted)
	}
	if int(gotCompleted) != wantCompleted {
		t.Errorf("federated completed total = %.0f, want %d", gotCompleted, wantCompleted)
	}
}

// Federated queries by org/cluster tag must be safe while fleet workers
// ingest — run under -race this exercises the sharded store's
// concurrent-read path against live ingest from N workers.
func TestFederatedQueryDuringIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet run")
	}
	f, err := New(loadSmoke(t))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, cl := range f.spec.Clusters {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, m := range federatedMetrics() {
					f.Federation().Query(examon.Filter{Org: "fleet", Cluster: id, Metric: m})
				}
				f.Federation().SeriesCount()
			}
		}(cl.ID)
	}
	res, err := f.Run(3)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CampaignsRun != len(res.Assignments) {
		t.Errorf("campaigns run = %d, want %d", res.Stats.CampaignsRun, len(res.Assignments))
	}
}
