package fleet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func loadSmoke(t *testing.T) Spec {
	t.Helper()
	s, err := Load(filepath.Join("testdata", "smoke.json"))
	if err != nil {
		t.Fatalf("load smoke spec: %v", err)
	}
	return s
}

func TestLoadSmokeSpec(t *testing.T) {
	s := loadSmoke(t)
	if len(s.Clusters) != 3 {
		t.Fatalf("clusters = %d, want 3", len(s.Clusters))
	}
	if len(s.Tenants) != 2 {
		t.Fatalf("tenants = %d, want 2", len(s.Tenants))
	}
	if s.Tenants[1].Stream == nil || s.Tenants[1].Stream.Count != 3 {
		t.Fatalf("ml tenant stream not parsed: %+v", s.Tenants[1].Stream)
	}
}

func TestParseRejectsUnknownField(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","seed":1,"clusterz":[]}`))
	if err == nil || !strings.Contains(err.Error(), "clusterz") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() Spec {
		s := loadSmoke(t)
		return s
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no clusters", func(s *Spec) { s.Clusters = nil }, "at least one cluster"},
		{"duplicate cluster", func(s *Spec) { s.Clusters[1].ID = s.Clusters[0].ID }, "duplicate cluster"},
		{"zero nodes", func(s *Spec) { s.Clusters[0].Nodes = 0 }, "nodes must be positive"},
		{"ambient at trip", func(s *Spec) { s.Clusters[0].AmbientC = 107 }, "ambient"},
		{"bad policy", func(s *Spec) { s.Clusters[0].Policy = "nope" }, "nope"},
		{"no tenants", func(s *Spec) { s.Tenants = nil }, "at least one tenant"},
		{"duplicate tenant", func(s *Spec) { s.Tenants[1].Name = s.Tenants[0].Name }, "duplicate tenant"},
		{"empty tenant", func(s *Spec) { s.Tenants[0].Campaigns = nil; s.Tenants[0].Stream = nil }, "campaigns or a stream"},
		{"negative arrive", func(s *Spec) { s.Tenants[0].Campaigns[0].ArriveS = -1 }, "negative arrive_s"},
		{"negative workers", func(s *Spec) { s.Workers = -1 }, "workers"},
		{"bad stream rate", func(s *Spec) { s.Tenants[1].Stream.RatePerHour = 0 }, "rate_per_hour"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mut(&s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// A campaign whose widest job exceeds every cluster must be rejected at
// spec validation, before any routing runs.
func TestValidateInfeasibleWidth(t *testing.T) {
	s := loadSmoke(t)
	s.Tenants[0].Campaigns[1].Jobs[1].Nodes = 64
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "largest cluster") {
		t.Fatalf("err = %v, want infeasible-width rejection", err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); !os.IsNotExist(errUnwrapAll(err)) {
		t.Fatalf("err = %v, want not-exist", err)
	}
}

func errUnwrapAll(err error) error {
	type unwrapper interface{ Unwrap() error }
	for {
		u, ok := err.(unwrapper)
		if !ok {
			return err
		}
		err = u.Unwrap()
	}
}
