package fleet

import (
	"montecimone/internal/campaign"
	"montecimone/internal/examon"
)

// FederationPlugin is the Plugin tag on every federated sample.
const FederationPlugin = "fleet"

// Federated metric names: one series per (cluster, metric), one point per
// campaign routed to that cluster, stamped at the campaign's fleet-level
// arrival time.
const (
	MetricJobs       = "campaign_jobs"
	MetricCompleted  = "campaign_completed"
	MetricFailed     = "campaign_failed"
	MetricMakespanS  = "campaign_makespan_s"
	MetricUtilPct    = "campaign_util_pct"
	MetricPeakQueue  = "campaign_peak_queue"
	MetricNodeSecond = "campaign_node_seconds"
)

// federatedMetrics lists every metric Ingest publishes, in series-key
// order, so consumers can size queries and tests can enumerate coverage.
func federatedMetrics() []string {
	return []string{MetricCompleted, MetricFailed, MetricJobs,
		MetricMakespanS, MetricNodeSecond, MetricPeakQueue, MetricUtilPct}
}

// Federation is the fleet-level telemetry store: per-campaign summary
// samples from every cluster land in one shared ExaMon storage engine,
// tagged with the fleet org and the source cluster so federated queries
// can select one cluster's series (the new Filter.Org/Cluster
// dimensions). The backing engine is the "sharded" store — the only one
// built for concurrent ingest — because N fleet workers ingest their
// clusters' results in wall-clock parallel.
//
// Series identity in ExaMon is (Node, Plugin, Core, Metric) with
// Org/Cluster as scoping tags, so federated series use the cluster ID as
// the Node tag too: distinct clusters get distinct series even where the
// identity dimensions would otherwise collide.
type Federation struct {
	org   string
	store examon.Storage
}

// NewFederation builds an empty federation scoped to the org.
func NewFederation(org string) (*Federation, error) {
	if org == "" {
		org = DefaultOrg
	}
	store, err := examon.NewStorage("sharded")
	if err != nil {
		return nil, err
	}
	return &Federation{org: org, store: store}, nil
}

// Ingest publishes one routed campaign's summary samples. Safe for
// concurrent use — each fleet worker ingests as its campaigns finish.
// The sample timestamp is the campaign's fleet-level arrival instant,
// fixed at routing time, so the stored points are independent of which
// worker ingested first.
func (fd *Federation) Ingest(a Assignment, res *campaign.Result) {
	tag := func(metric string) examon.Tags {
		return examon.Tags{
			Org:     fd.org,
			Cluster: a.ClusterID,
			Node:    a.ClusterID,
			Plugin:  FederationPlugin,
			Core:    -1,
			Metric:  metric,
		}
	}
	var nodeSeconds float64
	for _, j := range res.Jobs {
		if j.StartS >= 0 && j.EndS > j.StartS {
			nodeSeconds += float64(j.Nodes) * (j.EndS - j.StartS)
		}
	}
	fd.store.InsertBatch([]examon.Sample{
		{Tags: tag(MetricJobs), T: a.ArriveS, V: float64(len(res.Jobs))},
		{Tags: tag(MetricCompleted), T: a.ArriveS, V: float64(res.Completed)},
		{Tags: tag(MetricFailed), T: a.ArriveS, V: float64(res.Failed)},
		{Tags: tag(MetricMakespanS), T: a.ArriveS, V: res.MakespanS},
		{Tags: tag(MetricUtilPct), T: a.ArriveS, V: res.UtilizationPct},
		{Tags: tag(MetricPeakQueue), T: a.ArriveS, V: float64(res.PeakQueueDepth)},
		{Tags: tag(MetricNodeSecond), T: a.ArriveS, V: nodeSeconds},
	})
}

// Query runs a federated query. Ingest order across clusters depends on
// worker scheduling, so callers rendering reports must aggregate or sort
// the result — never print it in storage order.
func (fd *Federation) Query(f examon.Filter) []examon.Series {
	return fd.store.Query(f)
}

// SeriesCount reports the stored federated series.
func (fd *Federation) SeriesCount() int { return fd.store.SeriesCount() }

// ClusterTotal sums one metric's points for one cluster — the
// order-independent aggregate the fleet report renders.
func (fd *Federation) ClusterTotal(clusterID, metric string) float64 {
	var total float64
	for _, s := range fd.store.Query(examon.Filter{Org: fd.org, Cluster: clusterID, Metric: metric}) {
		for _, p := range s.Points {
			total += p.V
		}
	}
	return total
}
