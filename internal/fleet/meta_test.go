package fleet

import (
	"reflect"
	"testing"

	"montecimone/internal/campaign"
	"montecimone/internal/sim"
)

func TestThermalFit(t *testing.T) {
	cases := []struct {
		ambient float64
		want    float64 // approximate
	}{
		{25, 1.0},   // the paper's reference room
		{18, 1.0},   // colder rooms clamp at full fit
		{66, 0.5},   // halfway to the trip
		{106, 0.01}, // just under the trip
	}
	for _, tc := range cases {
		cs := newClusterState(ClusterSpec{ID: "x", Nodes: 8, AmbientC: tc.ambient})
		got := cs.thermalFit()
		if diff := got - tc.want; diff > 0.02 || diff < -0.02 {
			t.Errorf("thermalFit(%v °C) = %v, want ~%v", tc.ambient, got, tc.want)
		}
	}
}

func TestPowerFit(t *testing.T) {
	uncapped := newClusterState(ClusterSpec{ID: "u", Nodes: 8})
	if got := uncapped.powerFit(100); got != 1 {
		t.Errorf("uncapped powerFit = %v, want 1", got)
	}
	capped := newClusterState(ClusterSpec{ID: "c", Nodes: 8, PowerBudgetW: 50})
	if capped.usableW <= 0 {
		t.Fatalf("usableW = %v, want positive (budget 50 W over the 8-node idle floor)", capped.usableW)
	}
	full := capped.powerFit(0)
	half := capped.powerFit(capped.usableW / 2)
	over := capped.powerFit(2 * capped.usableW)
	if full != 1 || half <= over || over != 0 {
		t.Errorf("powerFit monotonicity broken: full=%v half=%v over=%v", full, half, over)
	}
	// Resident campaigns consume fit exactly like the candidate's own draw.
	capped.resident = append(capped.resident, residency{endS: 100, drawW: capped.usableW / 2})
	if got := capped.powerFit(0); got != half {
		t.Errorf("committed draw fit = %v, want %v", got, half)
	}
}

func TestScoreQueuePenalty(t *testing.T) {
	cs := newClusterState(ClusterSpec{ID: "q", Nodes: 8})
	empty := cs.score(0)
	cs.resident = append(cs.resident, residency{endS: 100, drawW: 0})
	if got := cs.score(0); got != empty-queuePenaltyScore {
		t.Errorf("one resident campaign: score %v, want %v", got, empty-queuePenaltyScore)
	}
	cs.expire(200)
	if got := cs.score(0); got != empty {
		t.Errorf("after expiry: score %v, want %v", got, empty)
	}
}

func TestBusyEstimate(t *testing.T) {
	d := campaign.Demand{NodeSeconds: 800, LongestS: 50}
	if got := busyEstimate(d, 8, 0); got != 100 {
		t.Errorf("spread-bound busy = %v, want 100", got)
	}
	if got := busyEstimate(d, 100, 0); got != 50 {
		t.Errorf("longest-bound busy = %v, want 50", got)
	}
	if got := busyEstimate(d, 8, 60); got != 60 {
		t.Errorf("horizon-capped busy = %v, want 60", got)
	}
}

// Routing must be a pure function of (spec, seed): draws on foreign
// streams of the same RNG factory must not perturb any decision, seed or
// arrival — the fleet-level mirror of TestCompileStreamIsolation.
func TestRoutingStreamIsolation(t *testing.T) {
	s := loadSmoke(t)
	clean, err := route(s, sim.NewRNG(s.Seed))
	if err != nil {
		t.Fatal(err)
	}
	dirty := sim.NewRNG(s.Seed)
	for i := 0; i < 100; i++ {
		dirty.Stream("campaign.arrival").Float64()
		dirty.Stream("fleet.unrelated").NormFloat64()
	}
	got, err := route(s, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, got) {
		t.Fatal("foreign stream draws perturbed the routing")
	}
}

// Per-cluster seed streams are namespaced by cluster ID: campaigns
// routed to cluster X draw the same seeds whether or not an unrelated
// cluster exists elsewhere in the fleet. An added cluster that wins no
// campaigns (here: strictly smaller, hotter, and listed last so every
// score it could tie is broken against it) must leave every other
// cluster's seed sequence untouched.
func TestClusterSeedStreamIsolation(t *testing.T) {
	s := loadSmoke(t)
	base, err := route(s, sim.NewRNG(s.Seed))
	if err != nil {
		t.Fatal(err)
	}
	grown := loadSmoke(t)
	grown.Clusters = append(grown.Clusters, ClusterSpec{ID: "attic", Nodes: 1, AmbientC: 80})
	routed, err := route(grown, sim.NewRNG(grown.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if len(routed) != len(base) {
		t.Fatalf("assignment count changed: %d vs %d", len(routed), len(base))
	}
	for i := range base {
		if routed[i].ClusterID == "attic" {
			t.Fatalf("assignment %d routed to the strictly-worse cluster", i)
		}
		if routed[i].ClusterID != base[i].ClusterID {
			t.Errorf("assignment %d moved: %s vs %s", i, routed[i].ClusterID, base[i].ClusterID)
		}
		if routed[i].Campaign.Seed != base[i].Campaign.Seed {
			t.Errorf("assignment %d seed perturbed: %d vs %d", i, routed[i].Campaign.Seed, base[i].Campaign.Seed)
		}
	}
}

// The feasibility filter: a campaign with an 8-node job can only land on
// an 8-node cluster, never the 4-node one.
func TestRoutingFeasibility(t *testing.T) {
	s := loadSmoke(t)
	assignments, err := route(s, sim.NewRNG(s.Seed))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range assignments {
		if a.Campaign.Name == "cfd/wide" {
			found = true
			if a.ClusterID == "cimone" {
				t.Errorf("8-node-wide campaign routed to the 4-node cluster")
			}
			if a.Demand.MaxWidth != 8 {
				t.Errorf("demand MaxWidth = %d, want 8", a.Demand.MaxWidth)
			}
		}
		if a.Campaign.Nodes != s.Clusters[a.ClusterIx].Nodes {
			t.Errorf("campaign %s: nodes %d, cluster has %d", a.Campaign.Name, a.Campaign.Nodes, s.Clusters[a.ClusterIx].Nodes)
		}
		if a.Campaign.ClusterTag != a.ClusterID {
			t.Errorf("campaign %s: cluster tag %q, want %q", a.Campaign.Name, a.Campaign.ClusterTag, a.ClusterID)
		}
		if a.Campaign.Org != "fleet" {
			t.Errorf("campaign %s: org %q, want fleet", a.Campaign.Name, a.Campaign.Org)
		}
		if a.Campaign.Seed == 0 {
			t.Errorf("campaign %s: no seed assigned", a.Campaign.Name)
		}
	}
	if !found {
		t.Fatal("cfd/wide not routed")
	}
}

// The queue penalty spreads simultaneous load: two identical arrivals on
// a fleet of two identical clusters must land on different clusters (the
// second arrival sees the first one resident and pays 25 points).
func TestRoutingQueuePenaltySpreadsLoad(t *testing.T) {
	sub := func(at float64, name string) Submission {
		return Submission{ArriveS: at, Spec: campaign.Spec{
			Name: name, HorizonS: 600,
			Jobs: []campaign.JobEntry{{Name: "j", Workload: "qe", Nodes: 2, SubmitS: 0, DurationS: 100}},
		}}
	}
	s := Spec{
		Name: "spread", Seed: 3,
		Clusters: []ClusterSpec{{ID: "a", Nodes: 8}, {ID: "b", Nodes: 8}},
		Tenants:  []TenantSpec{{Name: "t", Campaigns: []Submission{sub(0, "one"), sub(1, "two")}}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	assignments, err := route(s, sim.NewRNG(s.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if assignments[0].ClusterID != "a" {
		t.Errorf("first arrival: cluster %s, want a (tie to lowest index)", assignments[0].ClusterID)
	}
	if assignments[1].ClusterID != "b" {
		t.Errorf("second arrival: cluster %s, want b (queue penalty on a)", assignments[1].ClusterID)
	}
}

// Tenant arrival streams are namespaced by tenant name: reordering the
// tenant list never changes any tenant's arrival instants.
func TestTenantStreamIsolation(t *testing.T) {
	s := loadSmoke(t)
	arrivals := func(spec Spec) map[string]float64 {
		out := make(map[string]float64)
		for _, sub := range expand(spec, sim.NewRNG(spec.Seed)) {
			out[sub.spec.Name] = sub.arriveS
		}
		return out
	}
	base := arrivals(s)
	flipped := loadSmoke(t)
	flipped.Tenants[0], flipped.Tenants[1] = flipped.Tenants[1], flipped.Tenants[0]
	if !reflect.DeepEqual(base, arrivals(flipped)) {
		t.Fatal("tenant order perturbed arrival streams")
	}
}
