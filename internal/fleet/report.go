package fleet

import (
	"fmt"
	"io"

	"montecimone/internal/campaign"
	"montecimone/internal/report"
)

// Result is a fleet run's outcome: the routing decisions, every
// campaign's result (indexed like Assignments) and the federated
// telemetry. Everything WriteReport and WriteEventLogs render is a pure
// function of (spec, seed) — the worker pool width changes wall-clock
// only, so the fleet determinism suite compares output byte for byte
// across worker counts. Worker-shape numbers live in Stats, which the
// CLI prints to stderr for exactly that reason.
type Result struct {
	Spec        Spec
	Assignments []Assignment
	Campaigns   []*campaign.Result
	Federation  *Federation
	Stats       WorkerStats
}

// WriteReport renders the fleet report: the routing table, the
// per-cluster and per-tenant breakdowns, and the federated totals. Every
// block iterates in spec or routed order and aggregates federated
// queries — never prints storage-order query output — so the rendering
// is byte-identical at any worker count.
func (r *Result) WriteReport(w io.Writer) error {
	s := r.Spec
	org := s.Org
	if org == "" {
		org = DefaultOrg
	}
	fmt.Fprintf(w, "fleet %q: org %s, seed %d, %d clusters, %d tenants, %d campaigns routed\n",
		s.Name, org, s.Seed, len(s.Clusters), len(s.Tenants), len(r.Assignments))

	fmt.Fprintln(w, "routing:")
	rt := &report.Table{Headers: []string{"Seq", "Campaign", "Arrive", "Cluster", "Score", "Jobs", "PredW"}}
	for _, a := range r.Assignments {
		rt.AddRow(fmt.Sprintf("%d", a.Seq), a.Campaign.Name,
			fmt.Sprintf("%.1f", a.ArriveS), a.ClusterID,
			fmt.Sprintf("%.1f", a.Score), fmt.Sprintf("%d", a.Demand.Jobs),
			fmt.Sprintf("%.1f", a.DrawW))
	}
	if err := rt.Write(w); err != nil {
		return err
	}

	fmt.Fprintln(w, "clusters:")
	ct := &report.Table{Headers: []string{"Cluster", "Nodes", "BudgetW", "Ambient", "Campaigns", "Jobs", "Completed", "Failed", "MeanUtil%", "PeakQ"}}
	for ci, c := range s.Clusters {
		var campaigns, jobs, completed, failed, peakQ int
		var utilSum float64
		for i, a := range r.Assignments {
			if a.ClusterIx != ci || r.Campaigns[i] == nil {
				continue
			}
			res := r.Campaigns[i]
			campaigns++
			jobs += len(res.Jobs)
			completed += res.Completed
			failed += res.Failed
			utilSum += res.UtilizationPct
			if res.PeakQueueDepth > peakQ {
				peakQ = res.PeakQueueDepth
			}
		}
		meanUtil := 0.0
		if campaigns > 0 {
			meanUtil = utilSum / float64(campaigns)
		}
		ambient := c.AmbientC
		if ambient == 0 {
			ambient = referenceAmbientC
		}
		ct.AddRow(c.ID, fmt.Sprintf("%d", c.Nodes), fmt.Sprintf("%.0f", c.PowerBudgetW),
			fmt.Sprintf("%.0f", ambient), fmt.Sprintf("%d", campaigns),
			fmt.Sprintf("%d", jobs), fmt.Sprintf("%d", completed),
			fmt.Sprintf("%d", failed), fmt.Sprintf("%.1f", meanUtil),
			fmt.Sprintf("%d", peakQ))
	}
	if err := ct.Write(w); err != nil {
		return err
	}

	fmt.Fprintln(w, "tenants:")
	tt := &report.Table{Headers: []string{"Tenant", "Campaigns", "Jobs", "Completed", "MeanWait"}}
	for _, t := range s.Tenants {
		var campaigns, jobs, completed int
		var waitSum float64
		for i, a := range r.Assignments {
			if a.Tenant != t.Name || r.Campaigns[i] == nil {
				continue
			}
			res := r.Campaigns[i]
			campaigns++
			jobs += len(res.Jobs)
			completed += res.Completed
			waitSum += res.MeanWaitS
		}
		meanWait := 0.0
		if campaigns > 0 {
			meanWait = waitSum / float64(campaigns)
		}
		tt.AddRow(t.Name, fmt.Sprintf("%d", campaigns), fmt.Sprintf("%d", jobs),
			fmt.Sprintf("%d", completed), fmt.Sprintf("%.1f", meanWait))
	}
	if err := tt.Write(w); err != nil {
		return err
	}

	if r.Federation != nil {
		// The federated cross-check: totals re-read through the shared
		// store's Org/Cluster-filtered query path, aggregated per cluster
		// in spec order (point sums are order-independent, so concurrent
		// ingest cannot perturb them).
		fmt.Fprintf(w, "federation: %d series", r.Federation.SeriesCount())
		for _, c := range s.Clusters {
			fmt.Fprintf(w, ", %s completed=%.0f", c.ID, r.Federation.ClusterTotal(c.ID, MetricCompleted))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteEventLogs renders every cluster's event log: clusters in spec
// order, each cluster's campaigns in routed order, each campaign's
// events verbatim under a header. Byte-identical at any worker count.
func (r *Result) WriteEventLogs(w io.Writer) error {
	for ci, c := range r.Spec.Clusters {
		fmt.Fprintf(w, "=== cluster %s ===\n", c.ID)
		for i, a := range r.Assignments {
			if a.ClusterIx != ci || r.Campaigns[i] == nil {
				continue
			}
			fmt.Fprintf(w, "--- campaign %s (seq %d, arrive %.1f) ---\n", a.Campaign.Name, a.Seq, a.ArriveS)
			if err := r.Campaigns[i].WriteEventLog(w); err != nil {
				return err
			}
		}
	}
	return nil
}
