// Package fleet is the federated multi-cluster runner: a fleet spec
// declares N heterogeneous Monte Cimone-style clusters (node count, power
// budget, ambient temperature, shard count) and a stream of tenant
// campaigns, and a two-level scheduler routes each arriving campaign to
// the cluster with the best predicted power/thermal headroom and the
// shallowest queue — mirroring the wao-scheduler minimizepower scoring at
// the cluster-selection level, with the bestfit policy's bin-packing
// grounding (Erzin et al., arXiv:2106.09919) extended from nodes to
// clusters.
//
// Clusters share nothing but the meta-scheduler's routing decisions:
// every routing decision is taken deterministically at the campaign's
// arrival virtual timestamp from the meta-scheduler's predictive
// bookkeeping (demand estimates, not live probes), and each cluster then
// runs its own sim.Engine + sched + powerplane + examon stack on a worker
// goroutine. A fixed seed therefore renders a byte-identical fleet report
// and per-cluster event logs at any worker count — fleet throughput
// scales with workers because clusters are embarrassingly parallel, the
// scale-out axis the intra-cluster sharded engine cannot reach past its
// serial-commit protocol.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"montecimone/internal/campaign"
	"montecimone/internal/sched"
	"montecimone/internal/thermal"
)

// ClusterSpec declares one cluster of the fleet.
type ClusterSpec struct {
	// ID names the cluster; it becomes the Cluster tag on every federated
	// telemetry sample and the namespace of the cluster's RNG streams.
	ID string `json:"id"`
	// Nodes is the cluster's partition size.
	Nodes int `json:"nodes"`
	// PowerBudgetW enables the cluster's power plane at this budget; the
	// meta-scheduler also scores the cluster's power headroom against it.
	PowerBudgetW float64 `json:"power_budget_w,omitempty"`
	// AmbientC is the site's machine-room inlet temperature (0 keeps the
	// paper's 25 °C). Hotter sites boot closer to the 107 °C trip and
	// score lower thermal headroom.
	AmbientC float64 `json:"ambient_c,omitempty"`
	// Shards is the cluster engine's parallel-preparation width.
	Shards int `json:"shards,omitempty"`
	// Policy is the cluster scheduler's policy (default easy).
	Policy string `json:"policy,omitempty"`
	// Mitigated applies the airflow mitigation before campaigns run.
	Mitigated bool `json:"mitigated,omitempty"`
	// Backend selects the cluster's ExaMon storage engine.
	Backend string `json:"backend,omitempty"`
}

// Submission is one tenant campaign arriving at the fleet front door: a
// campaign spec (the fleet schema embeds the campaign schema — any
// campaign spec body is a valid submission body) plus its fleet-level
// arrival time. The router fills the machine half of the embedded spec
// (nodes, policy, budget, shards, ambient, telemetry tags) from the
// cluster it selects.
type Submission struct {
	// ArriveS is the fleet-level arrival instant in virtual seconds.
	ArriveS float64 `json:"arrive_s"`
	campaign.Spec
}

// Stream generates a tenant's submissions instead of listing them: Count
// arrivals of the Template campaign, with exponential interarrivals at
// RatePerHour drawn from the tenant's own named RNG stream
// ("fleet.tenant.<name>.arrival" — adding a tenant never perturbs another
// tenant's arrivals).
type Stream struct {
	RatePerHour float64       `json:"rate_per_hour"`
	Count       int           `json:"count"`
	Template    campaign.Spec `json:"template"`
}

// TenantSpec is one tenant's campaign stream.
type TenantSpec struct {
	// Name identifies the tenant in reports and RNG stream names.
	Name string `json:"name"`
	// Campaigns lists explicit submissions.
	Campaigns []Submission `json:"campaigns,omitempty"`
	// Stream generates submissions from a template.
	Stream *Stream `json:"stream,omitempty"`
}

// Spec is a declarative fleet: the clusters, the tenants and the seed.
type Spec struct {
	// Name labels the fleet in reports.
	Name string `json:"name"`
	// Seed drives every random draw in the fleet — tenant arrival
	// streams, per-cluster campaign seeds — through named sim.RNG streams.
	Seed int64 `json:"seed"`
	// Org scopes all federated telemetry (default "fleet").
	Org string `json:"org,omitempty"`
	// Workers is the default worker-pool width (0 = one per CPU); the
	// -fleet-workers flag overrides it. Any width renders byte-identical
	// output.
	Workers int `json:"workers,omitempty"`
	// Clusters declares the fleet's machines.
	Clusters []ClusterSpec `json:"clusters"`
	// Tenants declares the campaign streams.
	Tenants []TenantSpec `json:"tenants"`
}

// DefaultOrg tags federated samples when the spec leaves Org empty.
const DefaultOrg = "fleet"

// Parse decodes a JSON fleet spec, rejecting unknown fields, and
// validates it.
func Parse(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("fleet: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Load reads and parses a fleet spec file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("fleet: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return Spec{}, fmt.Errorf("fleet: spec %s: %w", path, err)
	}
	return s, nil
}

// Validate checks the fleet shape: unique cluster IDs, known policies,
// and every submission feasible on at least one cluster.
func (s *Spec) Validate() error {
	if len(s.Clusters) == 0 {
		return fmt.Errorf("fleet: spec %q: needs at least one cluster", s.Name)
	}
	if s.Workers < 0 {
		return fmt.Errorf("fleet: spec %q: workers must be >= 0, got %d", s.Name, s.Workers)
	}
	maxNodes := 0
	seen := make(map[string]bool, len(s.Clusters))
	for i, c := range s.Clusters {
		if c.ID == "" {
			return fmt.Errorf("fleet: spec %q: clusters[%d] needs an id", s.Name, i)
		}
		if seen[c.ID] {
			return fmt.Errorf("fleet: spec %q: duplicate cluster id %q", s.Name, c.ID)
		}
		seen[c.ID] = true
		if c.Nodes < 1 {
			return fmt.Errorf("fleet: spec %q: cluster %s: nodes must be positive, got %d", s.Name, c.ID, c.Nodes)
		}
		if c.AmbientC < 0 || c.AmbientC >= thermal.TripTempC {
			return fmt.Errorf("fleet: spec %q: cluster %s: ambient %v °C outside [0,%v)", s.Name, c.ID, c.AmbientC, thermal.TripTempC)
		}
		if c.PowerBudgetW < 0 {
			return fmt.Errorf("fleet: spec %q: cluster %s: negative power budget", s.Name, c.ID)
		}
		if c.Shards < 0 {
			return fmt.Errorf("fleet: spec %q: cluster %s: shards must be >= 0", s.Name, c.ID)
		}
		if c.Policy != "" {
			if _, err := sched.PolicyByName(c.Policy); err != nil {
				return fmt.Errorf("fleet: spec %q: cluster %s: %w", s.Name, c.ID, err)
			}
		}
		if c.Nodes > maxNodes {
			maxNodes = c.Nodes
		}
	}
	if len(s.Tenants) == 0 {
		return fmt.Errorf("fleet: spec %q: needs at least one tenant", s.Name)
	}
	seenTenant := make(map[string]bool, len(s.Tenants))
	for i, t := range s.Tenants {
		if t.Name == "" {
			return fmt.Errorf("fleet: spec %q: tenants[%d] needs a name", s.Name, i)
		}
		if seenTenant[t.Name] {
			return fmt.Errorf("fleet: spec %q: duplicate tenant %q", s.Name, t.Name)
		}
		seenTenant[t.Name] = true
		if len(t.Campaigns) == 0 && t.Stream == nil {
			return fmt.Errorf("fleet: spec %q: tenant %s: needs campaigns or a stream", s.Name, t.Name)
		}
		for j, sub := range t.Campaigns {
			if sub.ArriveS < 0 {
				return fmt.Errorf("fleet: spec %q: tenant %s campaigns[%d]: negative arrive_s", s.Name, t.Name, j)
			}
			if err := validateSubmission(sub.Spec, maxNodes); err != nil {
				return fmt.Errorf("fleet: spec %q: tenant %s campaigns[%d]: %w", s.Name, t.Name, j, err)
			}
		}
		if st := t.Stream; st != nil {
			if st.RatePerHour <= 0 || st.Count <= 0 {
				return fmt.Errorf("fleet: spec %q: tenant %s: stream needs positive rate_per_hour and count", s.Name, t.Name)
			}
			if err := validateSubmission(st.Template, maxNodes); err != nil {
				return fmt.Errorf("fleet: spec %q: tenant %s stream template: %w", s.Name, t.Name, err)
			}
		}
	}
	return nil
}

// validateSubmission checks a submission's campaign body against the
// largest cluster: the router will fill Nodes from the cluster it picks,
// so validation stands in the widest machine the fleet owns. A campaign
// whose widest job exceeds every cluster can never be routed.
func validateSubmission(sub campaign.Spec, maxNodes int) error {
	d, err := sub.Demand()
	if err != nil {
		return err
	}
	if d.MaxWidth > maxNodes {
		return fmt.Errorf("campaign %q needs %d-node jobs but the largest cluster has %d nodes",
			sub.Name, d.MaxWidth, maxNodes)
	}
	trial := sub
	if trial.Nodes == 0 {
		trial.Nodes = maxNodes
	}
	return trial.Validate()
}
