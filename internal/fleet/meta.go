package fleet

import (
	"fmt"
	"sort"

	"montecimone/internal/campaign"
	"montecimone/internal/powerplane"
	"montecimone/internal/sim"
	"montecimone/internal/thermal"
	"montecimone/internal/workload"
)

// referenceAmbientC is the paper's 25 °C machine room — the ambient at
// which a cluster scores full thermal fit.
const referenceAmbientC = 25.0

// Scoring weights, mirroring the wao-scheduler minimizepower shape: a
// 0–100 headroom score minus a flat penalty per queued campaign.
const (
	scoreScale        = 100.0
	queuePenaltyScore = 25.0
)

// Assignment is one routing decision: which cluster a tenant campaign
// landed on, the score that won, and the predictive bookkeeping behind
// it. The embedded Campaign spec is runner-ready — the meta-scheduler has
// filled its machine half (nodes, policy, budget, shards, ambient,
// backend, telemetry tags, seed) from the chosen cluster.
type Assignment struct {
	// Seq is the global arrival sequence number (routing order).
	Seq int
	// Tenant names the submitting tenant.
	Tenant string
	// ArriveS is the fleet-level arrival instant.
	ArriveS float64
	// ClusterID and ClusterIx locate the chosen cluster in the fleet spec.
	ClusterID string
	ClusterIx int
	// Score is the winning cluster's routing score at the arrival instant.
	Score float64
	// Campaign is the routed, runner-ready campaign spec.
	Campaign campaign.Spec
	// Demand is the campaign's demand estimate the score was priced from.
	Demand campaign.Demand
	// StartS/EndS bracket the campaign's predicted occupancy on the
	// cluster's fleet-level timeline; DrawW is its predicted steady draw
	// above the idle floor while resident.
	StartS, EndS float64
	DrawW        float64
}

// submission is one expanded arrival awaiting routing.
type submission struct {
	tenant   string
	tenantIx int
	seq      int // order within the tenant's expanded stream
	arriveS  float64
	spec     campaign.Spec
}

// clusterState is the meta-scheduler's predictive bookkeeping for one
// cluster. It never consults the live cluster: routing runs as a serial
// pre-pass over the arrival stream before any cluster executes, so
// decisions depend only on (spec, seed) and stay byte-identical at any
// worker count.
type clusterState struct {
	spec     ClusterSpec
	usableW  float64 // power budget above the idle floor; 0 = uncapped
	ambientC float64
	// nextFreeS is when the cluster's sequential campaign queue drains
	// under the predictions so far; resident holds the campaigns predicted
	// still busy (their predicted end and steady draw).
	nextFreeS float64
	resident  []residency
}

type residency struct {
	endS  float64
	drawW float64
}

// expire drops residencies whose predicted end has passed.
func (cs *clusterState) expire(now float64) {
	kept := cs.resident[:0]
	for _, r := range cs.resident {
		if r.endS > now {
			kept = append(kept, r)
		}
	}
	cs.resident = kept
}

// committedW sums the predicted draw of every resident campaign.
func (cs *clusterState) committedW() float64 {
	var w float64
	for _, r := range cs.resident {
		w += r.drawW
	}
	return w
}

// newClusterState prices the cluster's static headroom inputs.
func newClusterState(c ClusterSpec) *clusterState {
	cs := &clusterState{spec: c, ambientC: c.AmbientC}
	if cs.ambientC == 0 {
		cs.ambientC = referenceAmbientC
	}
	if c.PowerBudgetW > 0 {
		cs.usableW = c.PowerBudgetW - powerplane.IdleFloorWatts(c.Nodes)
		if cs.usableW < 0 {
			cs.usableW = 0
		}
	}
	return cs
}

// thermalFit scores the cluster's distance from the 107 °C trip relative
// to the paper's 25 °C reference room: 1.0 at or below 25 °C, falling
// linearly to 0 as the ambient approaches the trip point.
func (cs *clusterState) thermalFit() float64 {
	fit := (thermal.TripTempC - cs.ambientC) / (thermal.TripTempC - referenceAmbientC)
	if fit > 1 {
		return 1
	}
	if fit < 0 {
		return 0
	}
	return fit
}

// powerFit scores the budget headroom left after the resident campaigns'
// predicted draw and the candidate's own: 1.0 on an uncapped cluster,
// otherwise remaining usable budget over total usable budget, floored at
// 0 when the prediction oversubscribes the budget.
func (cs *clusterState) powerFit(candidateW float64) float64 {
	if cs.spec.PowerBudgetW <= 0 {
		return 1
	}
	if cs.usableW <= 0 {
		return 0
	}
	fit := (cs.usableW - cs.committedW() - candidateW) / cs.usableW
	if fit < 0 {
		return 0
	}
	if fit > 1 {
		fit = 1
	}
	return fit
}

// score is the minimizepower-shaped routing score at the arrival
// instant: predicted power fit × thermal fit scaled to 0–100, minus a
// flat penalty per campaign still resident (the queue-depth term). Higher
// is better.
func (cs *clusterState) score(candidateW float64) float64 {
	depth := float64(len(cs.resident))
	return scoreScale*cs.powerFit(candidateW)*cs.thermalFit() - queuePenaltyScore*depth
}

// busyEstimate is the campaign's predicted occupancy on a cluster of the
// given width: the work-conserving lower bound (node-seconds spread over
// the whole partition) floored by the longest single job, capped at the
// campaign horizon past which the runner stops regardless.
func busyEstimate(d campaign.Demand, nodes int, horizonS float64) float64 {
	busy := d.LongestS
	if nodes > 0 {
		if spread := d.NodeSeconds / float64(nodes); spread > busy {
			busy = spread
		}
	}
	if horizonS > 0 && busy > horizonS {
		busy = horizonS
	}
	return busy
}

// predictedDrawW prices the campaign's steady draw above idle: each
// workload's calibrated mean-phase activity through the rail model,
// weighted by its share of the demand spread over the busy estimate.
// Workloads iterate in sorted name order so the float sum — and therefore
// every score built on it — is identical on every run.
func predictedDrawW(d campaign.Demand, busyS float64) float64 {
	if busyS <= 0 {
		return 0
	}
	names := make([]string, 0, len(d.ByWorkload))
	for name := range d.ByWorkload {
		names = append(names, name)
	}
	sort.Strings(names)
	var w float64
	for _, name := range names {
		model, err := workload.Lookup(name)
		if err != nil {
			continue // spec validation already rejected unknown workloads
		}
		perNodeW := powerplane.PredictedWatts(model.MeanPhaseActivity(), 1)
		w += perNodeW * (d.ByWorkload[name] / busyS)
	}
	return w
}

// expand turns the tenant declarations into the global arrival stream,
// sorted by (arrival, tenant order, submission order). Stream arrivals
// draw exponential interarrivals from the tenant's own named stream of
// the fleet RNG ("fleet.tenant.<name>.arrival"), so adding or reordering
// one tenant never perturbs another tenant's timeline.
func expand(s Spec, rng *sim.RNG) []submission {
	var subs []submission
	for ti, t := range s.Tenants {
		seq := 0
		for _, c := range t.Campaigns {
			spec := c.Spec
			spec.Name = t.Name + "/" + spec.Name
			subs = append(subs, submission{
				tenant: t.Name, tenantIx: ti, seq: seq, arriveS: c.ArriveS, spec: spec,
			})
			seq++
		}
		if st := t.Stream; st != nil {
			stream := rng.Stream("fleet.tenant." + t.Name + ".arrival")
			meanGapS := 3600 / st.RatePerHour
			at := 0.0
			for i := 0; i < st.Count; i++ {
				at += stream.ExpFloat64() * meanGapS
				spec := st.Template
				spec.Name = fmt.Sprintf("%s/%s#%d", t.Name, spec.Name, i+1)
				subs = append(subs, submission{
					tenant: t.Name, tenantIx: ti, seq: seq, arriveS: at, spec: spec,
				})
				seq++
			}
		}
	}
	sort.SliceStable(subs, func(i, j int) bool {
		if subs[i].arriveS != subs[j].arriveS {
			return subs[i].arriveS < subs[j].arriveS
		}
		if subs[i].tenantIx != subs[j].tenantIx {
			return subs[i].tenantIx < subs[j].tenantIx
		}
		return subs[i].seq < subs[j].seq
	})
	return subs
}

// route runs the serial routing pre-pass: every submission, in arrival
// order, is scored against every feasible cluster using the predictive
// bookkeeping, and the winner (highest score, ties to the lowest cluster
// index) receives it. Per-campaign seeds come from the chosen cluster's
// derived RNG factory ("fleet.cluster.<id>") in routed order, so a
// cluster's seed sequence is a pure function of (fleet seed, cluster id,
// campaigns routed to it) — adding a cluster that wins no campaigns
// changes nothing for the others.
func route(s Spec, rng *sim.RNG) ([]Assignment, error) {
	states := make([]*clusterState, len(s.Clusters))
	clusterRNGs := make([]*sim.RNG, len(s.Clusters))
	for i, c := range s.Clusters {
		states[i] = newClusterState(c)
		clusterRNGs[i] = rng.Derive("fleet.cluster." + c.ID)
	}
	org := s.Org
	if org == "" {
		org = DefaultOrg
	}
	subs := expand(s, rng)
	out := make([]Assignment, 0, len(subs))
	for seq, sub := range subs {
		d, err := sub.spec.Demand()
		if err != nil {
			return nil, fmt.Errorf("fleet: tenant %s campaign %s: %w", sub.tenant, sub.spec.Name, err)
		}
		best, bestScore := -1, 0.0
		var bestBusy, bestDraw float64
		for i, cs := range states {
			if cs.spec.Nodes < d.MaxWidth {
				continue // infeasible: the widest job cannot fit
			}
			cs.expire(sub.arriveS)
			busy := busyEstimate(d, cs.spec.Nodes, sub.spec.HorizonS)
			draw := predictedDrawW(d, busy)
			score := cs.score(draw)
			if best < 0 || score > bestScore {
				best, bestScore, bestBusy, bestDraw = i, score, busy, draw
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("fleet: tenant %s campaign %s: no cluster fits its %d-node jobs",
				sub.tenant, sub.spec.Name, d.MaxWidth)
		}
		cs := states[best]
		startS := sub.arriveS
		if cs.nextFreeS > startS {
			startS = cs.nextFreeS
		}
		endS := startS + bestBusy
		cs.resident = append(cs.resident, residency{endS: endS, drawW: bestDraw})
		cs.nextFreeS = endS

		routed := sub.spec
		c := cs.spec
		routed.Nodes = c.Nodes
		if c.Policy != "" {
			routed.Policy = c.Policy
		}
		if c.Backend != "" {
			routed.Backend = c.Backend
		}
		routed.PowerBudgetW = c.PowerBudgetW
		routed.Shards = c.Shards
		routed.Mitigated = routed.Mitigated || c.Mitigated
		routed.AmbientC = c.AmbientC
		routed.Org = org
		routed.ClusterTag = c.ID
		if routed.Seed == 0 {
			routed.Seed = clusterRNGs[best].Stream("fleet.campaign.seed").Int63()
		}
		if err := routed.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: tenant %s campaign %s on cluster %s: %w",
				sub.tenant, sub.spec.Name, c.ID, err)
		}
		out = append(out, Assignment{
			Seq: seq, Tenant: sub.tenant, ArriveS: sub.arriveS,
			ClusterID: c.ID, ClusterIx: best, Score: bestScore,
			Campaign: routed, Demand: d,
			StartS: startS, EndS: endS, DrawW: bestDraw,
		})
	}
	return out, nil
}
