package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"montecimone/internal/campaign"
	"montecimone/internal/sim"
)

// WorkerStats reports the parallel shape of a fleet run: the pool width
// actually used, the high-water mark of clusters executing concurrently,
// and the campaign count. On a single-core host MaxActive still reaches
// the pool width (goroutines interleave), so benchmarks report the
// available parallel width even where wall-clock cannot show it.
type WorkerStats struct {
	// Workers is the resolved pool width (after the 0 = GOMAXPROCS
	// default and the clamp to the cluster count).
	Workers int
	// Clusters is the fleet's cluster count.
	Clusters int
	// CampaignsRun counts the campaigns executed.
	CampaignsRun int
	// MaxActive is the high-water mark of concurrently executing
	// clusters — the realized parallel width.
	MaxActive int
}

// Fleet is a routed federation ready to run: the meta-scheduler's
// assignments, the per-cluster campaign queues and the shared telemetry
// federation. Build with New, execute with Run.
type Fleet struct {
	spec        Spec
	assignments []Assignment
	byCluster   [][]int // assignment indices per cluster, in routed order
	fed         *Federation
}

// New validates the spec and runs the routing pre-pass. All routing is
// complete when New returns: Run only executes the decided queues.
func New(spec Spec) (*Fleet, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(spec.Seed)
	assignments, err := route(spec, rng)
	if err != nil {
		return nil, err
	}
	org := spec.Org
	if org == "" {
		org = DefaultOrg
	}
	fed, err := NewFederation(org)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	f := &Fleet{
		spec:        spec,
		assignments: assignments,
		byCluster:   make([][]int, len(spec.Clusters)),
		fed:         fed,
	}
	for i, a := range assignments {
		f.byCluster[a.ClusterIx] = append(f.byCluster[a.ClusterIx], i)
	}
	return f, nil
}

// Assignments returns the routing decisions in arrival order.
func (f *Fleet) Assignments() []Assignment {
	return append([]Assignment(nil), f.assignments...)
}

// Federation exposes the shared telemetry store for federated queries.
func (f *Fleet) Federation() *Federation { return f.fed }

// Run executes every cluster's routed campaign queue on a pool of
// workers (workers <= 0 takes one per CPU; the pool never exceeds the
// cluster count). Each cluster runs its campaigns sequentially on
// whichever worker claims it — clusters share nothing but the already-
// decided routing and the concurrent-safe federation store, so the
// result is byte-identical at any pool width.
func (f *Fleet) Run(workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(f.spec.Clusters) {
		workers = len(f.spec.Clusters)
	}
	results := make([]*campaign.Result, len(f.assignments))
	errs := make([]error, len(f.spec.Clusters))
	work := make(chan int, len(f.spec.Clusters))
	for ci := range f.spec.Clusters {
		work <- ci
	}
	close(work)

	var active, maxActive, campaignsRun atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range work {
				cur := active.Add(1)
				for prev := maxActive.Load(); cur > prev; prev = maxActive.Load() {
					if maxActive.CompareAndSwap(prev, cur) {
						break
					}
				}
				for _, ix := range f.byCluster[ci] {
					a := f.assignments[ix]
					res, err := campaign.Run(a.Campaign)
					if err != nil {
						errs[ci] = fmt.Errorf("fleet: cluster %s campaign %s: %w",
							a.ClusterID, a.Campaign.Name, err)
						break
					}
					results[ix] = res
					f.fed.Ingest(a, res)
					campaignsRun.Add(1)
				}
				active.Add(-1)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Result{
		Spec:        f.spec,
		Assignments: f.Assignments(),
		Campaigns:   results,
		Federation:  f.fed,
		Stats: WorkerStats{
			Workers:      workers,
			Clusters:     len(f.spec.Clusters),
			CampaignsRun: int(campaignsRun.Load()),
			MaxActive:    int(maxActive.Load()),
		},
	}, nil
}

// Run routes and executes a fleet spec start to finish.
func Run(spec Spec, workers int) (*Result, error) {
	f, err := New(spec)
	if err != nil {
		return nil, err
	}
	return f.Run(workers)
}
