// Package benchparse parses `go test -bench` output and computes
// benchstat-style old-vs-new comparisons. It exists because the CI bench
// gate needs a benchmark differ without pulling x/perf into the module:
// the container builds are offline, so the comparison logic lives in-repo
// (cmd/benchdiff is the front end).
package benchparse

import (
	"bufio"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Run is one benchmark result line: the benchmark's name (with any
// GOMAXPROCS -N suffix stripped, so runs from differently sized hosts
// compare) and its metric values keyed by unit ("ns/op", "B/op",
// "allocs/op", plus any b.ReportMetric units).
type Run struct {
	Name    string
	Metrics map[string]float64
}

// benchLine matches a result line: name, iteration count, then
// value-unit pairs. Go prints names with an optional -GOMAXPROCS suffix.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

var metricPair = regexp.MustCompile(`([-+0-9.eE]+)\s+([^\s]+)`)

// Parse reads benchmark result lines from text, ignoring everything else
// (goos/pkg headers, PASS trailers).
func Parse(text string) []Run {
	var runs []Run
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		run := Run{Name: m[1], Metrics: map[string]float64{}}
		for _, pair := range metricPair.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			run.Metrics[pair[2]] = v
		}
		if len(run.Metrics) > 0 {
			runs = append(runs, run)
		}
	}
	return runs
}

// ParseFile is Parse over a file's contents.
func ParseFile(path string) ([]Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	runs := Parse(string(data))
	if len(runs) == 0 {
		return nil, fmt.Errorf("benchparse: no benchmark lines in %s", path)
	}
	return runs, nil
}

// mean averages repeated -count runs of the same benchmark per unit.
func mean(runs []Run) map[string]map[string]float64 {
	sums := map[string]map[string]float64{}
	counts := map[string]map[string]int{}
	for _, r := range runs {
		if sums[r.Name] == nil {
			sums[r.Name] = map[string]float64{}
			counts[r.Name] = map[string]int{}
		}
		for unit, v := range r.Metrics {
			sums[r.Name][unit] += v
			counts[r.Name][unit]++
		}
	}
	for name, units := range sums {
		for unit := range units {
			units[unit] /= float64(counts[name][unit])
		}
	}
	return sums
}

// Row is one metric's comparison inside a benchmark's diff table.
type Row struct {
	Unit     string
	Old, New float64
	Delta    string // rendered percentage, or "~" for a tiny change
}

// unitRank orders a diff table the way benchstat does: time first, then
// the allocator columns, then custom metrics alphabetically.
func unitRank(unit string) int {
	switch unit {
	case "ns/op":
		return 0
	case "B/op":
		return 1
	case "allocs/op":
		return 2
	}
	return 3
}

// biggerIsWorse reports whether a regression in this unit means the value
// went UP (time and allocator columns). Custom throughput metrics
// (jobs/s, samples/s) are bigger-is-better: for them a regression is a
// DROP, and they only gate when named explicitly in gateUnits.
func biggerIsWorse(unit string) bool {
	switch unit {
	case "ns/op", "B/op", "allocs/op":
		return true
	}
	return false
}

// parseGates expands gate entries of the form "unit" or "unit:percent"
// into a unit -> threshold map. A bare unit uses failOver; a ":percent"
// suffix overrides it per unit, so CI can hold throughput to a tighter
// bound than wall time (e.g. "allocs/op,jobs/s:10").
func parseGates(gateUnits []string, failOver float64) map[string]float64 {
	if len(gateUnits) == 0 {
		return nil
	}
	gates := map[string]float64{}
	for _, g := range gateUnits {
		unit, thresh := g, failOver
		if i := strings.IndexByte(g, ':'); i >= 0 {
			unit = g[:i]
			if v, err := strconv.ParseFloat(g[i+1:], 64); err == nil && v > 0 {
				thresh = v
			}
		}
		gates[unit] = thresh
	}
	return gates
}

// Diff compares averaged old and new runs. It returns one ordered row set
// per benchmark present in BOTH inputs and, if failOver > 0, the list of
// "name unit: +P%" strings for metrics that regressed beyond their
// threshold. Each gateUnits entry is "unit" or "unit:percent" (per-unit
// threshold overriding failOver); nil gates every bigger-is-worse unit at
// failOver. Direction follows the unit: time/alloc units regress upward,
// throughput units (jobs/s) regress when they drop. CI gates allocs/op
// (deterministic) and jobs/s at a tight bound, not 1x wall times, which
// are noisy on shared runners.
func Diff(oldRuns, newRuns []Run, failOver float64, gateUnits ...string) (map[string][]Row, []string) {
	oldAvg, newAvg := mean(oldRuns), mean(newRuns)
	gates := parseGates(gateUnits, failOver)
	threshold := func(unit string) (float64, bool) {
		if gates == nil {
			if !biggerIsWorse(unit) {
				return 0, false
			}
			return failOver, true
		}
		t, ok := gates[unit]
		return t, ok
	}
	table := map[string][]Row{}
	var regressed []string
	for name, newUnits := range newAvg {
		oldUnits, ok := oldAvg[name]
		if !ok {
			continue
		}
		var rows []Row
		for unit, nv := range newUnits {
			ov, ok := oldUnits[unit]
			if !ok {
				continue
			}
			delta := "~"
			var pct float64
			if ov != 0 {
				pct = (nv - ov) / ov * 100
				if pct >= 0.05 || pct <= -0.05 {
					delta = fmt.Sprintf("%+.1f%%", pct)
				}
			} else if nv != 0 {
				delta = "new"
			}
			rows = append(rows, Row{Unit: unit, Old: ov, New: nv, Delta: delta})
			if thresh, ok := threshold(unit); ok && failOver > 0 {
				worse := pct > thresh
				if !biggerIsWorse(unit) {
					worse = pct < -thresh
				}
				if worse {
					regressed = append(regressed, fmt.Sprintf("%s %s: %+.1f%%", name, unit, pct))
				}
			}
		}
		sort.Slice(rows, func(i, j int) bool {
			ri, rj := unitRank(rows[i].Unit), unitRank(rows[j].Unit)
			if ri != rj {
				return ri < rj
			}
			return rows[i].Unit < rows[j].Unit
		})
		table[name] = rows
	}
	sort.Strings(regressed)
	return table, regressed
}

// FormatValue renders a metric value compactly (benchstat prints scaled
// values; plain fixed precision is enough for a smoke diff).
func FormatValue(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15:
		return strconv.FormatInt(int64(v), 10)
	case v >= 100:
		return strconv.FormatFloat(v, 'f', 1, 64)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}
