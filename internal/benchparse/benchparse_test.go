package benchparse

import (
	"strings"
	"testing"
)

const oldText = `goos: linux
goarch: amd64
pkg: montecimone
BenchmarkCampaignThroughput/phased/shards1/512nodes-16         	       1	27529000000 ns/op	        36.7 jobs/s	31866000 B/op	  182000 allocs/op
BenchmarkCampaignThroughput/phased/shards1/512nodes-16         	       1	27900000000 ns/op	        35.9 jobs/s	31866000 B/op	  182000 allocs/op
BenchmarkTelemetryIngest/typed/mem/64nodes-16                  	     100	   1200000 ns/op	    500000 samples/s
PASS
ok  	montecimone	60.0s
`

const newText = `BenchmarkCampaignThroughput/phased/shards1/512nodes 	       1	3530000000 ns/op	       290.0 jobs/s	 5423000 B/op	   80286 allocs/op
BenchmarkTelemetryIngest/typed/mem/64nodes          	     100	   1212000 ns/op	    495000 samples/s
BenchmarkOnlyInNew                                  	      10	       100 ns/op
`

func TestParseStripsSuffixAndAverages(t *testing.T) {
	runs := Parse(oldText)
	if len(runs) != 3 {
		t.Fatalf("parsed %d runs, want 3", len(runs))
	}
	if runs[0].Name != "BenchmarkCampaignThroughput/phased/shards1/512nodes" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", runs[0].Name)
	}
	if got := runs[0].Metrics["allocs/op"]; got != 182000 {
		t.Fatalf("allocs/op = %v, want 182000", got)
	}
	if got := runs[2].Metrics["samples/s"]; got != 500000 {
		t.Fatalf("custom metric lost: samples/s = %v", got)
	}
}

func TestDiffAveragesAndOrdersRows(t *testing.T) {
	table, regressed := Diff(Parse(oldText), Parse(newText), 0)
	if len(regressed) != 0 {
		t.Fatalf("unexpected regressions with gating off: %v", regressed)
	}
	if _, ok := table["BenchmarkOnlyInNew"]; ok {
		t.Fatal("benchmark missing from old side should not be diffed")
	}
	rows := table["BenchmarkCampaignThroughput/phased/shards1/512nodes"]
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4: %+v", len(rows), rows)
	}
	// benchstat order: ns/op, B/op, allocs/op, then custom units.
	for i, unit := range []string{"ns/op", "B/op", "allocs/op", "jobs/s"} {
		if rows[i].Unit != unit {
			t.Fatalf("row %d unit %q, want %q", i, rows[i].Unit, unit)
		}
	}
	// ns/op old side is the mean of the two -count runs.
	if want := (27529000000.0 + 27900000000.0) / 2; rows[0].Old != want {
		t.Fatalf("old ns/op = %v, want averaged %v", rows[0].Old, want)
	}
	if !strings.HasPrefix(rows[2].Delta, "-") {
		t.Fatalf("allocs/op delta should be negative, got %q", rows[2].Delta)
	}
}

func TestDiffGatesOnTimeAndAllocRegressions(t *testing.T) {
	older := `BenchmarkX 	 10	1000 ns/op	 100 B/op	 10 allocs/op	 50.0 jobs/s`
	newer := `BenchmarkX 	 10	1500 ns/op	 101 B/op	 10 allocs/op	 10.0 jobs/s`
	_, regressed := Diff(Parse(older), Parse(newer), 10)
	// ns/op +50% gates; B/op +1% is under the bar; jobs/s collapsing does
	// not gate by default (bigger-is-better units gate only when named).
	if len(regressed) != 1 || !strings.Contains(regressed[0], "ns/op") {
		t.Fatalf("regressed = %v, want exactly the ns/op entry", regressed)
	}
	_, none := Diff(Parse(older), Parse(newer), 60)
	if len(none) != 0 {
		t.Fatalf("threshold above the regression still gated: %v", none)
	}
	// Narrowed gating: allocs/op only, so the ns/op regression passes and
	// the jobs/s drop stays informational.
	_, narrowed := Diff(Parse(older), Parse(newer), 10, "allocs/op")
	if len(narrowed) != 0 {
		t.Fatalf("-gate allocs/op still flagged: %v", narrowed)
	}
	// Naming a bigger-is-better unit gates its DROP: jobs/s fell 80%.
	_, jobsGate := Diff(Parse(older), Parse(newer), 10, "jobs/s")
	if len(jobsGate) != 1 || !strings.Contains(jobsGate[0], "jobs/s") {
		t.Fatalf("-gate jobs/s = %v, want exactly the jobs/s drop", jobsGate)
	}
}

func TestDiffGatesThroughputWithPerUnitThreshold(t *testing.T) {
	older := `BenchmarkX 	 10	1000 ns/op	 10 allocs/op	 100.0 jobs/s`
	dip := `BenchmarkX 	 10	1000 ns/op	 10 allocs/op	 95.0 jobs/s`
	drop := `BenchmarkX 	 10	1000 ns/op	 10 allocs/op	 80.0 jobs/s`
	gain := `BenchmarkX 	 10	1500 ns/op	 10 allocs/op	 150.0 jobs/s`
	// The CI configuration: allocs/op at -fail-over, jobs/s at a per-unit
	// 10% bound. A 5% dip passes, a 20% drop fails.
	_, ok := Diff(Parse(older), Parse(dip), 25, "allocs/op", "jobs/s:10")
	if len(ok) != 0 {
		t.Fatalf("5%% throughput dip gated at jobs/s:10: %v", ok)
	}
	_, bad := Diff(Parse(older), Parse(drop), 25, "allocs/op", "jobs/s:10")
	if len(bad) != 1 || !strings.Contains(bad[0], "jobs/s") {
		t.Fatalf("20%% throughput drop = %v, want exactly the jobs/s entry", bad)
	}
	// Throughput going UP never gates, and ns/op is outside the gate list.
	_, up := Diff(Parse(older), Parse(gain), 25, "allocs/op", "jobs/s:10")
	if len(up) != 0 {
		t.Fatalf("throughput improvement gated: %v", up)
	}
	// A per-unit threshold also tightens bigger-is-worse units.
	_, tight := Diff(Parse(older), Parse(gain), 75, "ns/op:10")
	if len(tight) != 1 || !strings.Contains(tight[0], "ns/op") {
		t.Fatalf("ns/op:10 = %v, want exactly the ns/op entry", tight)
	}
}
