// Package spack reimplements the slice of the Spack package manager
// (Gamblin et al.) that the paper uses to deploy the Monte Cimone software
// stack: a package repository with dependency metadata, a concretiser that
// resolves an abstract spec into a concrete dependency DAG for a target
// microarchitecture, an installer that builds the DAG in topological order,
// and environment modules exposing the installed stack to users.
//
// The built-in repository carries the user-facing packages of Table I
// (gcc 10.3.0, openmpi 4.1.1, openblas 0.3.18, fftw 3.3.10, netlib-lapack
// 3.9.1, netlib-scalapack 2.1.0, hpl 2.3, stream 5.10, quantum-espresso
// 6.8) plus their transitive dependencies.
package spack

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"montecimone/internal/archspec"
)

// Package is a repository entry.
type Package struct {
	// Name is the Spack package name.
	Name string
	// Versions lists known versions, preferred (newest) first.
	Versions []string
	// Deps lists dependency package names.
	Deps []string
	// BuildSeconds is the simulated build time on the reference machine.
	BuildSeconds float64
}

// Repo is a package repository.
type Repo struct {
	pkgs map[string]*Package
}

// NewRepo returns an empty repository.
func NewRepo() *Repo {
	return &Repo{pkgs: make(map[string]*Package)}
}

// Add registers a package.
func (r *Repo) Add(p *Package) error {
	if p == nil || p.Name == "" {
		return fmt.Errorf("spack: package missing name")
	}
	if len(p.Versions) == 0 {
		return fmt.Errorf("spack: package %s has no versions", p.Name)
	}
	if _, dup := r.pkgs[p.Name]; dup {
		return fmt.Errorf("spack: duplicate package %s", p.Name)
	}
	r.pkgs[p.Name] = p
	return nil
}

// Get looks up a package by name.
func (r *Repo) Get(name string) (*Package, error) {
	p, ok := r.pkgs[name]
	if !ok {
		return nil, fmt.Errorf("spack: unknown package %q", name)
	}
	return p, nil
}

// Names lists all package names, sorted.
func (r *Repo) Names() []string {
	out := make([]string, 0, len(r.pkgs))
	for n := range r.pkgs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// BuiltinRepo returns the repository holding the Table I stack and its
// transitive dependencies.
func BuiltinRepo() *Repo {
	r := NewRepo()
	packages := []*Package{
		{Name: "gcc", Versions: []string{"10.3.0"}, Deps: []string{"gmp", "mpfr", "mpc", "zlib"}, BuildSeconds: 14400},
		{Name: "gmp", Versions: []string{"6.2.1"}, BuildSeconds: 300},
		{Name: "mpfr", Versions: []string{"4.1.0"}, Deps: []string{"gmp"}, BuildSeconds: 240},
		{Name: "mpc", Versions: []string{"1.2.1"}, Deps: []string{"gmp", "mpfr"}, BuildSeconds: 120},
		{Name: "zlib", Versions: []string{"1.2.11"}, BuildSeconds: 30},
		{Name: "openmpi", Versions: []string{"4.1.1"}, Deps: []string{"hwloc", "libevent", "pmix", "zlib"}, BuildSeconds: 2400},
		{Name: "hwloc", Versions: []string{"2.6.0"}, BuildSeconds: 300},
		{Name: "libevent", Versions: []string{"2.1.12"}, BuildSeconds: 180},
		{Name: "pmix", Versions: []string{"3.2.1"}, Deps: []string{"libevent", "hwloc"}, BuildSeconds: 360},
		{Name: "openblas", Versions: []string{"0.3.18"}, BuildSeconds: 1800},
		{Name: "fftw", Versions: []string{"3.3.10"}, BuildSeconds: 1200},
		{Name: "cmake", Versions: []string{"3.21.4"}, Deps: []string{"openssl", "ncurses"}, BuildSeconds: 2400},
		{Name: "openssl", Versions: []string{"1.1.1l"}, Deps: []string{"zlib"}, BuildSeconds: 900},
		{Name: "ncurses", Versions: []string{"6.2"}, BuildSeconds: 300},
		{Name: "netlib-lapack", Versions: []string{"3.9.1"}, Deps: []string{"cmake"}, BuildSeconds: 1500},
		{Name: "netlib-scalapack", Versions: []string{"2.1.0"}, Deps: []string{"netlib-lapack", "openmpi", "cmake"}, BuildSeconds: 1800},
		{Name: "hpl", Versions: []string{"2.3"}, Deps: []string{"openblas", "openmpi"}, BuildSeconds: 240},
		{Name: "stream", Versions: []string{"5.10"}, BuildSeconds: 20},
		{Name: "quantum-espresso", Versions: []string{"6.8"}, Deps: []string{"openblas", "fftw", "netlib-scalapack", "openmpi"}, BuildSeconds: 5400},
	}
	for _, p := range packages {
		if err := r.Add(p); err != nil {
			panic(fmt.Sprintf("spack: builtin repo: %v", err)) // unreachable: static list
		}
	}
	return r
}

// UserStack lists the user-facing packages of Table I in table order.
var UserStack = []string{
	"gcc", "openmpi", "openblas", "fftw", "netlib-lapack",
	"netlib-scalapack", "hpl", "stream", "quantum-espresso",
}

// Spec is an abstract request: a package name with an optional version.
type Spec struct {
	// Name is the package name.
	Name string
	// Version pins a version; empty picks the preferred one.
	Version string
}

// ParseSpec parses "name" or "name@version".
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, fmt.Errorf("spack: empty spec")
	}
	name, version, hasAt := strings.Cut(s, "@")
	if name == "" {
		return Spec{}, fmt.Errorf("spack: spec %q missing package name", s)
	}
	if hasAt && version == "" {
		return Spec{}, fmt.Errorf("spack: spec %q has empty version", s)
	}
	return Spec{Name: name, Version: version}, nil
}

// String renders the spec.
func (s Spec) String() string {
	if s.Version == "" {
		return s.Name
	}
	return s.Name + "@" + s.Version
}

// Compiler identifies the toolchain a DAG is built with.
type Compiler struct {
	// Name and Version, e.g. "gcc" "10.3.0".
	Name    string
	Version string
}

// String renders the compiler like Spack ("gcc@10.3.0").
func (c Compiler) String() string { return c.Name + "@" + c.Version }

// ConcreteSpec is a fully resolved node of an install DAG.
type ConcreteSpec struct {
	// Name and Version of the resolved package.
	Name    string
	Version string
	// Target is the archspec microarchitecture label.
	Target string
	// Compiler is the building toolchain.
	Compiler Compiler
	// Hash is the deterministic 7-character DAG hash.
	Hash string
	// Deps are the resolved dependencies (sorted by name).
	Deps []*ConcreteSpec
}

// String renders "name@version%gcc@10.3.0 arch=linux-…" Spack style.
func (c *ConcreteSpec) String() string {
	return fmt.Sprintf("%s@%s%%%s target=%s /%s", c.Name, c.Version, c.Compiler, c.Target, c.Hash)
}

// Concretize resolves a spec against the repository for a target
// microarchitecture, producing a deduplicated dependency DAG (one version
// of each package per DAG, like Spack's unified concretisation).
func Concretize(repo *Repo, spec Spec, target *archspec.Microarch, compiler Compiler) (*ConcreteSpec, error) {
	if repo == nil || target == nil {
		return nil, fmt.Errorf("spack: concretize needs a repo and target")
	}
	// Validate the compiler can target the microarchitecture at all.
	if _, err := target.OptimizationFlags(compiler.Name, compiler.Version); err != nil {
		return nil, fmt.Errorf("spack: %w", err)
	}
	resolved := make(map[string]*ConcreteSpec)
	visiting := make(map[string]bool)
	root, err := concretizeNode(repo, spec, target, compiler, resolved, visiting)
	if err != nil {
		return nil, err
	}
	return root, nil
}

func concretizeNode(repo *Repo, spec Spec, target *archspec.Microarch, compiler Compiler,
	resolved map[string]*ConcreteSpec, visiting map[string]bool) (*ConcreteSpec, error) {
	if c, ok := resolved[spec.Name]; ok {
		if spec.Version != "" && spec.Version != c.Version {
			return nil, fmt.Errorf("spack: conflicting versions for %s: %s vs %s", spec.Name, spec.Version, c.Version)
		}
		return c, nil
	}
	if visiting[spec.Name] {
		return nil, fmt.Errorf("spack: dependency cycle through %s", spec.Name)
	}
	visiting[spec.Name] = true
	defer delete(visiting, spec.Name)

	pkg, err := repo.Get(spec.Name)
	if err != nil {
		return nil, err
	}
	version := spec.Version
	if version == "" {
		version = pkg.Versions[0]
	} else if !contains(pkg.Versions, version) {
		return nil, fmt.Errorf("spack: %s has no version %s (known: %s)", spec.Name, version, strings.Join(pkg.Versions, ", "))
	}
	node := &ConcreteSpec{Name: spec.Name, Version: version, Target: target.Name, Compiler: compiler}
	depNames := append([]string(nil), pkg.Deps...)
	sort.Strings(depNames)
	for _, dep := range depNames {
		child, err := concretizeNode(repo, Spec{Name: dep}, target, compiler, resolved, visiting)
		if err != nil {
			return nil, fmt.Errorf("spack: %s: %w", spec.Name, err)
		}
		node.Deps = append(node.Deps, child)
	}
	node.Hash = dagHash(node)
	resolved[spec.Name] = node
	return node, nil
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// dagHash derives the 7-character base-32 hash from the node's identity
// and its dependencies' hashes.
func dagHash(c *ConcreteSpec) string {
	h := fnv.New64a()
	_, _ = fmt.Fprintf(h, "%s@%s%%%s target=%s", c.Name, c.Version, c.Compiler, c.Target)
	for _, d := range c.Deps {
		_, _ = h.Write([]byte(d.Hash))
	}
	const alphabet = "abcdefghijklmnopqrstuvwxyz234567"
	v := h.Sum64()
	out := make([]byte, 7)
	for i := range out {
		out[i] = alphabet[v&31]
		v >>= 5
	}
	return string(out)
}

// Flatten returns the DAG's nodes in dependency-first topological order.
func (c *ConcreteSpec) Flatten() []*ConcreteSpec {
	var order []*ConcreteSpec
	seen := make(map[string]bool)
	var walk func(n *ConcreteSpec)
	walk = func(n *ConcreteSpec) {
		if seen[n.Hash] {
			return
		}
		seen[n.Hash] = true
		for _, d := range n.Deps {
			walk(d)
		}
		order = append(order, n)
	}
	walk(c)
	return order
}
