package spack

import (
	"fmt"
	"sort"
	"strings"

	"montecimone/internal/archspec"
)

// Installed records one built package instance.
type Installed struct {
	// Spec is the concrete spec that was built.
	Spec *ConcreteSpec
	// Prefix is the install prefix under the Spack root.
	Prefix string
	// BuildSeconds is the simulated build duration of this node alone.
	BuildSeconds float64
}

// Installer builds concrete DAGs and maintains the installed database and
// environment modules, like `spack install` plus the module generator.
type Installer struct {
	repo     *Repo
	target   *archspec.Microarch
	compiler Compiler
	platform string

	// buildSlowdown scales package build times relative to the reference
	// x86 build machine (building natively on the U740 is slow; the paper
	// notes gcc itself takes many hours).
	buildSlowdown float64

	installed map[string]*Installed // by hash
	order     []string              // install order (hashes)
	modules   *Modules
}

// NewInstaller creates an installer for a target microarchitecture label.
func NewInstaller(repo *Repo, targetName string, compiler Compiler) (*Installer, error) {
	if repo == nil {
		return nil, fmt.Errorf("spack: nil repo")
	}
	target, err := archspec.Lookup(targetName)
	if err != nil {
		return nil, fmt.Errorf("spack: %w", err)
	}
	slowdown := 1.0
	if target.Family == "riscv64" {
		slowdown = 6.0 // native builds on the 4-core 1.2 GHz U740
	}
	return &Installer{
		repo:          repo,
		target:        target,
		compiler:      compiler,
		platform:      "linux",
		buildSlowdown: slowdown,
		installed:     make(map[string]*Installed),
		modules:       NewModules(),
	}, nil
}

// Target returns the archspec target.
func (in *Installer) Target() *archspec.Microarch { return in.target }

// Triple returns the Spack target triple (e.g. "linux-sifive-u74mc").
func (in *Installer) Triple() string { return in.target.Triple(in.platform) }

// CompilerFlags returns the archspec optimisation flags the builds use.
func (in *Installer) CompilerFlags() (string, error) {
	return in.target.OptimizationFlags(in.compiler.Name, in.compiler.Version)
}

// Install concretises and builds a spec string ("hpl@2.3"), returning the
// root installation. Already-installed nodes are reused.
func (in *Installer) Install(specStr string) (*Installed, error) {
	spec, err := ParseSpec(specStr)
	if err != nil {
		return nil, err
	}
	root, err := Concretize(in.repo, spec, in.target, in.compiler)
	if err != nil {
		return nil, err
	}
	var rootInst *Installed
	for _, node := range root.Flatten() {
		inst, err := in.build(node)
		if err != nil {
			return nil, err
		}
		if node.Hash == root.Hash {
			rootInst = inst
		}
	}
	return rootInst, nil
}

func (in *Installer) build(node *ConcreteSpec) (*Installed, error) {
	if inst, ok := in.installed[node.Hash]; ok {
		return inst, nil
	}
	pkg, err := in.repo.Get(node.Name)
	if err != nil {
		return nil, err
	}
	inst := &Installed{
		Spec: node,
		Prefix: fmt.Sprintf("/opt/spack/%s/%s-%s/%s-%s-%s",
			in.Triple(), in.compiler.Name, in.compiler.Version, node.Name, node.Version, node.Hash),
		BuildSeconds: pkg.BuildSeconds * in.buildSlowdown,
	}
	in.installed[node.Hash] = inst
	in.order = append(in.order, node.Hash)
	in.modules.add(inst)
	return inst, nil
}

// Find returns installed packages in install order, like `spack find`.
func (in *Installer) Find() []*Installed {
	out := make([]*Installed, 0, len(in.order))
	for _, h := range in.order {
		out = append(out, in.installed[h])
	}
	return out
}

// FindByName returns the installed instance of a package, if any.
func (in *Installer) FindByName(name string) (*Installed, bool) {
	for _, h := range in.order {
		if in.installed[h].Spec.Name == name {
			return in.installed[h], true
		}
	}
	return nil, false
}

// TotalBuildSeconds sums the simulated build time of everything installed.
func (in *Installer) TotalBuildSeconds() float64 {
	total := 0.0
	for _, inst := range in.installed {
		total += inst.BuildSeconds
	}
	return total
}

// Modules returns the environment-modules view of the installed stack.
func (in *Installer) Modules() *Modules { return in.modules }

// StackRow is one line of the Table I report.
type StackRow struct {
	// Package and Version as listed in Table I.
	Package string
	Version string
}

// InstallUserStack installs the full Table I user-facing stack and returns
// the table rows in paper order.
func (in *Installer) InstallUserStack() ([]StackRow, error) {
	rows := make([]StackRow, 0, len(UserStack))
	for _, name := range UserStack {
		inst, err := in.Install(name)
		if err != nil {
			return nil, fmt.Errorf("spack: user stack: %w", err)
		}
		rows = append(rows, StackRow{Package: inst.Spec.Name, Version: inst.Spec.Version})
	}
	return rows, nil
}

// Modules models the environment-modules layer (Furlani) that exposes the
// Spack stack to users.
type Modules struct {
	byName map[string]*Installed
}

// NewModules returns an empty module tree.
func NewModules() *Modules {
	return &Modules{byName: make(map[string]*Installed)}
}

func (m *Modules) add(inst *Installed) {
	m.byName[fmt.Sprintf("%s/%s-%s", inst.Spec.Name, inst.Spec.Version, inst.Spec.Hash)] = inst
}

// Avail lists available module names, sorted (like `module avail`).
func (m *Modules) Avail() []string {
	out := make([]string, 0, len(m.byName))
	for name := range m.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Load returns the environment changes of `module load name`. The name may
// be the full "pkg/version-hash" form or just the package name when
// unambiguous.
func (m *Modules) Load(name string) (map[string]string, error) {
	inst, ok := m.byName[name]
	if !ok {
		var matches []*Installed
		for full, i := range m.byName {
			if strings.HasPrefix(full, name+"/") {
				matches = append(matches, i)
			}
		}
		switch len(matches) {
		case 0:
			return nil, fmt.Errorf("spack: no module %q", name)
		case 1:
			inst = matches[0]
		default:
			return nil, fmt.Errorf("spack: module %q is ambiguous (%d matches)", name, len(matches))
		}
	}
	return map[string]string{
		"PATH":              inst.Prefix + "/bin",
		"LD_LIBRARY_PATH":   inst.Prefix + "/lib",
		"MANPATH":           inst.Prefix + "/share/man",
		"CMAKE_PREFIX_PATH": inst.Prefix,
	}, nil
}
