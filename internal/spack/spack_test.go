package spack

import (
	"strings"
	"testing"
	"testing/quick"

	"montecimone/internal/archspec"
)

var gcc103 = Compiler{Name: "gcc", Version: "10.3.0"}

func newInstaller(t *testing.T) *Installer {
	t.Helper()
	in, err := NewInstaller(BuiltinRepo(), "u74mc", gcc103)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestParseSpec(t *testing.T) {
	tests := []struct {
		give    string
		want    Spec
		wantErr bool
	}{
		{give: "hpl", want: Spec{Name: "hpl"}},
		{give: "hpl@2.3", want: Spec{Name: "hpl", Version: "2.3"}},
		{give: " openblas@0.3.18 ", want: Spec{Name: "openblas", Version: "0.3.18"}},
		{give: "", wantErr: true},
		{give: "@2.3", wantErr: true},
		{give: "hpl@", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseSpec(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q) accepted", tt.give)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tt.give, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tt.give, got, tt.want)
		}
	}
}

func TestRepoValidation(t *testing.T) {
	r := NewRepo()
	if err := r.Add(nil); err == nil {
		t.Error("nil package accepted")
	}
	if err := r.Add(&Package{Name: "x"}); err == nil {
		t.Error("versionless package accepted")
	}
	if err := r.Add(&Package{Name: "x", Versions: []string{"1"}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(&Package{Name: "x", Versions: []string{"2"}}); err == nil {
		t.Error("duplicate package accepted")
	}
	if _, err := r.Get("nope"); err == nil {
		t.Error("unknown package accepted")
	}
}

func TestConcretizeHPL(t *testing.T) {
	target, err := archspec.Lookup("u74mc")
	if err != nil {
		t.Fatal(err)
	}
	root, err := Concretize(BuiltinRepo(), Spec{Name: "hpl"}, target, gcc103)
	if err != nil {
		t.Fatal(err)
	}
	if root.Version != "2.3" {
		t.Errorf("hpl version = %s, want 2.3", root.Version)
	}
	if root.Target != "u74mc" {
		t.Errorf("target = %s", root.Target)
	}
	flat := root.Flatten()
	names := make(map[string]bool, len(flat))
	for _, n := range flat {
		names[n.Name] = true
	}
	for _, dep := range []string{"openblas", "openmpi", "hwloc", "libevent", "pmix", "zlib"} {
		if !names[dep] {
			t.Errorf("transitive dependency %s missing from DAG", dep)
		}
	}
	// Root must come last in topological order.
	if flat[len(flat)-1].Name != "hpl" {
		t.Errorf("topological order ends with %s", flat[len(flat)-1].Name)
	}
	// Dependencies precede dependents.
	pos := make(map[string]int, len(flat))
	for i, n := range flat {
		pos[n.Name] = i
	}
	var check func(n *ConcreteSpec)
	check = func(n *ConcreteSpec) {
		for _, d := range n.Deps {
			if pos[d.Name] > pos[n.Name] {
				t.Errorf("dependency %s ordered after %s", d.Name, n.Name)
			}
			check(d)
		}
	}
	check(root)
}

func TestConcretizeUnknownVersion(t *testing.T) {
	target, _ := archspec.Lookup("u74mc")
	if _, err := Concretize(BuiltinRepo(), Spec{Name: "hpl", Version: "9.9"}, target, gcc103); err == nil {
		t.Error("unknown version accepted")
	}
}

func TestConcretizeCycleDetected(t *testing.T) {
	r := NewRepo()
	_ = r.Add(&Package{Name: "a", Versions: []string{"1"}, Deps: []string{"b"}})
	_ = r.Add(&Package{Name: "b", Versions: []string{"1"}, Deps: []string{"a"}})
	target, _ := archspec.Lookup("u74mc")
	if _, err := Concretize(r, Spec{Name: "a"}, target, gcc103); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestConcretizeTooOldCompiler(t *testing.T) {
	target, _ := archspec.Lookup("u74mc")
	if _, err := Concretize(BuiltinRepo(), Spec{Name: "hpl"}, target, Compiler{Name: "gcc", Version: "4.8"}); err == nil {
		t.Error("too-old compiler accepted for riscv target")
	}
}

func TestHashDeterministicAndDepSensitive(t *testing.T) {
	target, _ := archspec.Lookup("u74mc")
	a, err := Concretize(BuiltinRepo(), Spec{Name: "hpl"}, target, gcc103)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Concretize(BuiltinRepo(), Spec{Name: "hpl"}, target, gcc103)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Error("hash not deterministic")
	}
	if len(a.Hash) != 7 {
		t.Errorf("hash %q length != 7", a.Hash)
	}
	// Different target changes the hash.
	p9, _ := archspec.Lookup("power9le")
	c, err := Concretize(BuiltinRepo(), Spec{Name: "hpl"}, p9, gcc103)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash == a.Hash {
		t.Error("hash ignores target")
	}
}

func TestInstallUserStackTableI(t *testing.T) {
	// Table I: the user-facing stack with exact versions.
	in := newInstaller(t)
	rows, err := in.InstallUserStack()
	if err != nil {
		t.Fatal(err)
	}
	want := []StackRow{
		{Package: "gcc", Version: "10.3.0"},
		{Package: "openmpi", Version: "4.1.1"},
		{Package: "openblas", Version: "0.3.18"},
		{Package: "fftw", Version: "3.3.10"},
		{Package: "netlib-lapack", Version: "3.9.1"},
		{Package: "netlib-scalapack", Version: "2.1.0"},
		{Package: "hpl", Version: "2.3"},
		{Package: "stream", Version: "5.10"},
		{Package: "quantum-espresso", Version: "6.8"},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], want[i])
		}
	}
	if in.Triple() != "linux-sifive-u74mc" {
		t.Errorf("triple = %q", in.Triple())
	}
}

func TestInstallIsIdempotent(t *testing.T) {
	in := newInstaller(t)
	first, err := in.Install("hpl")
	if err != nil {
		t.Fatal(err)
	}
	count := len(in.Find())
	second, err := in.Install("hpl")
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("reinstall created a new instance")
	}
	if len(in.Find()) != count {
		t.Error("reinstall grew the database")
	}
}

func TestInstallSharesDependencies(t *testing.T) {
	in := newInstaller(t)
	if _, err := in.Install("hpl"); err != nil {
		t.Fatal(err)
	}
	before := len(in.Find())
	if _, err := in.Install("netlib-scalapack"); err != nil {
		t.Fatal(err)
	}
	// scalapack shares openmpi/zlib/...; only new nodes are added.
	added := len(in.Find()) - before
	if added >= 6 {
		t.Errorf("scalapack added %d nodes; dependency sharing broken", added)
	}
	inst, ok := in.FindByName("openmpi")
	if !ok {
		t.Fatal("openmpi not installed")
	}
	if !strings.Contains(inst.Prefix, "linux-sifive-u74mc") {
		t.Errorf("prefix = %q", inst.Prefix)
	}
}

func TestBuildSlowdownOnRiscV(t *testing.T) {
	riscv := newInstaller(t)
	x86, err := NewInstaller(BuiltinRepo(), "skylake", gcc103)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := riscv.Install("openblas"); err != nil {
		t.Fatal(err)
	}
	if _, err := x86.Install("openblas"); err != nil {
		t.Fatal(err)
	}
	if riscv.TotalBuildSeconds() <= x86.TotalBuildSeconds() {
		t.Error("native riscv build should be slower than x86 reference")
	}
}

func TestModules(t *testing.T) {
	in := newInstaller(t)
	if _, err := in.Install("hpl"); err != nil {
		t.Fatal(err)
	}
	avail := in.Modules().Avail()
	if len(avail) == 0 {
		t.Fatal("no modules after install")
	}
	env, err := in.Modules().Load("hpl")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(env["PATH"], "/hpl-2.3-") {
		t.Errorf("PATH = %q", env["PATH"])
	}
	if _, err := in.Modules().Load("nonexistent"); err == nil {
		t.Error("unknown module accepted")
	}
	// Full name load.
	if _, err := in.Modules().Load(avail[0]); err != nil {
		t.Errorf("full-name load: %v", err)
	}
}

func TestCompilerFlagsExposed(t *testing.T) {
	in := newInstaller(t)
	flags, err := in.CompilerFlags()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(flags, "rv64gc") {
		t.Errorf("flags = %q", flags)
	}
}

func TestInstallUnknownPackage(t *testing.T) {
	in := newInstaller(t)
	if _, err := in.Install("not-a-package"); err == nil {
		t.Error("unknown package accepted")
	}
	if _, err := in.Install(""); err == nil {
		t.Error("empty spec accepted")
	}
}

// Property: every concretised DAG has unique hashes per node name and the
// root hash depends deterministically only on the spec.
func TestConcretizeDeterminismProperty(t *testing.T) {
	target, _ := archspec.Lookup("u74mc")
	repo := BuiltinRepo()
	names := repo.Names()
	prop := func(idx uint8) bool {
		name := names[int(idx)%len(names)]
		a, errA := Concretize(repo, Spec{Name: name}, target, gcc103)
		b, errB := Concretize(repo, Spec{Name: name}, target, gcc103)
		if errA != nil || errB != nil {
			return false
		}
		if a.Hash != b.Hash {
			return false
		}
		seen := make(map[string]string)
		for _, n := range a.Flatten() {
			if prev, ok := seen[n.Hash]; ok && prev != n.Name {
				return false
			}
			seen[n.Hash] = n.Name
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
