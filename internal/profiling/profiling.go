// Package profiling wires the standard Go pprof collectors into the
// command-line front ends. The perf work on the event engine is driven
// from measured profiles, so every command that runs a simulation can
// capture them: mcsched and mcrun take -cpuprofile/-memprofile flags
// (this package), and mcmon exposes the live net/http/pprof endpoints on
// its REST listener.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges a heap profile at
// memPath; either path may be empty to skip that profile. The returned
// stop function flushes and closes both — call it exactly once, after the
// profiled work (defer is fine for commands that exit right after).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			// Settle the heap first so the profile reports live objects,
			// not whatever the last GC cycle happened to leave behind.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("profiling: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
