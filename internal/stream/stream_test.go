package stream

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"montecimone/internal/sim"
	"montecimone/internal/soc"
)

func TestVerifyRealKernels(t *testing.T) {
	// STREAM's own validation over the actual arithmetic.
	if err := Verify(10000, 10); err != nil {
		t.Fatal(err)
	}
	if err := Verify(0, 10); err == nil {
		t.Error("n=0 accepted")
	}
	if err := Verify(10, 0); err == nil {
		t.Error("iterations=0 accepted")
	}
}

func TestKernelSemantics(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	c := []float64{0, 0, 0}
	Copy(c, a)
	if c[1] != 2 {
		t.Errorf("copy: %v", c)
	}
	Scale(b, c)
	if b[2] != 9 { // 3 * c[2]=3
		t.Errorf("scale: %v", b)
	}
	Add(c, a, b)
	if c[0] != 1+3 {
		t.Errorf("add: %v", c)
	}
	Triad(a, b, c)
	if a[0] != 3+3*4 {
		t.Errorf("triad: %v", a)
	}
}

func TestBytesPerElement(t *testing.T) {
	want := map[soc.StreamKernel]int{
		soc.StreamCopy: 16, soc.StreamScale: 16,
		soc.StreamAdd: 24, soc.StreamTriad: 24,
	}
	for k, w := range want {
		if got := BytesPerElement(k); got != w {
			t.Errorf("%s = %d, want %d", k, got, w)
		}
	}
	if BytesPerElement(soc.StreamKernel(0)) != 0 {
		t.Error("unknown kernel bytes")
	}
}

func TestTableVRegeneration(t *testing.T) {
	// Table V, both dataset columns, mean values in MB/s.
	wantDDR := map[soc.StreamKernel]float64{
		soc.StreamCopy: 1206, soc.StreamScale: 1025,
		soc.StreamAdd: 1124, soc.StreamTriad: 1122,
	}
	wantL2 := map[soc.StreamKernel]float64{
		soc.StreamCopy: 7079, soc.StreamScale: 3558,
		soc.StreamAdd: 4380, soc.StreamTriad: 4365,
	}
	for _, tc := range []struct {
		name string
		set  int64
		want map[soc.StreamKernel]float64
	}{
		{"DDR", DDRWorkingSetBytes, wantDDR},
		{"L2", L2WorkingSetBytes, wantL2},
	} {
		results, err := Run(Config{WorkingSetBytes: tc.set, RNG: sim.NewRNG(1)})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(results) != 4 {
			t.Fatalf("%s: %d results", tc.name, len(results))
		}
		for _, r := range results {
			want := tc.want[r.Kernel]
			if math.Abs(r.MeanMBps-want)/want > 0.025 {
				t.Errorf("%s %s = %.0f MB/s, want %.0f +-2.5%%", tc.name, r.Kernel, r.MeanMBps, want)
			}
			if r.StdMBps <= 0 || r.StdMBps > 0.02*r.MeanMBps {
				t.Errorf("%s %s std = %v implausible", tc.name, r.Kernel, r.StdMBps)
			}
		}
	}
}

func TestPaperEfficiencyNumbers(t *testing.T) {
	// Section V-A: Monte Cimone attains no more than 15.5 % of peak DDR
	// bandwidth; Marconi100 48.2 % and Armida 63.21 %.
	run := func(m *soc.Machine) float64 {
		// A set comfortably beyond any cache.
		results, err := Run(Config{Machine: m, WorkingSetBytes: m.L2Bytes * 128})
		if err != nil {
			t.Fatal(err)
		}
		best := 0.0
		for _, r := range results {
			if r.EfficiencyOfPeak > best {
				best = r.EfficiencyOfPeak
			}
		}
		return best
	}
	if got := run(soc.FU740()); math.Abs(got-0.155) > 0.005 {
		t.Errorf("Monte Cimone best efficiency = %.4f, want ~0.155", got)
	}
	if got := run(soc.Marconi100()); math.Abs(got-0.482) > 0.01 {
		t.Errorf("Marconi100 best efficiency = %.4f, want ~0.482", got)
	}
	if got := run(soc.Armida()); math.Abs(got-0.6321) > 0.01 {
		t.Errorf("Armida best efficiency = %.4f, want ~0.6321", got)
	}
}

func TestCodeModelCapEnforced(t *testing.T) {
	// A working set beyond 3 x (2 GiB / 3) cannot link with medany.
	_, err := Run(Config{WorkingSetBytes: 3 * soc.GiB})
	var cmErr *ErrCodeModel
	if !errors.As(err, &cmErr) {
		t.Fatalf("err = %v, want ErrCodeModel", err)
	}
	// The paper's 1945.5 MiB set fits.
	if _, err := Run(Config{WorkingSetBytes: DDRWorkingSetBytes}); err != nil {
		t.Errorf("paper set rejected: %v", err)
	}
	// The large-code-model workaround lifts the cap.
	if _, err := Run(Config{WorkingSetBytes: 3 * soc.GiB, Opts: soc.StreamOptions{LargeCodeModel: true}}); err != nil {
		t.Errorf("large code model still capped: %v", err)
	}
}

func TestPrefetcherAblationClosesGap(t *testing.T) {
	// Section V-A hypothesis (i): a properly exploited prefetcher should
	// reduce the gap between the DDR and L2 runs.
	base, err := Run(Config{WorkingSetBytes: DDRWorkingSetBytes})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := Run(Config{
		WorkingSetBytes: DDRWorkingSetBytes,
		Opts:            soc.StreamOptions{PrefetchUtilisation: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if tuned[i].MeanMBps < base[i].MeanMBps*2 {
			t.Errorf("%s: prefetcher gain %.2fx, want > 2x headroom",
				base[i].Kernel, tuned[i].MeanMBps/base[i].MeanMBps)
		}
	}
	// Fully tuned, Monte Cimone's efficiency rises above the paper's
	// "lower quartile" towards the comparison machines' range.
	if eff := tuned[0].EfficiencyOfPeak; eff < 0.45 {
		t.Errorf("tuned copy efficiency = %.3f, want > 0.45", eff)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{WorkingSetBytes: 0}); err == nil {
		t.Error("zero working set accepted")
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	a, err := Run(Config{WorkingSetBytes: DDRWorkingSetBytes, RNG: sim.NewRNG(9)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{WorkingSetBytes: DDRWorkingSetBytes, RNG: sim.NewRNG(9)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].MeanMBps != b[i].MeanMBps || a[i].StdMBps != b[i].StdMBps {
			t.Fatal("results not deterministic")
		}
	}
}

// Property: modelled bandwidth never exceeds the machine's peak and L2 sets
// are at least as fast as DDR sets for the copy kernel.
func TestModelBoundsProperty(t *testing.T) {
	m := soc.FU740()
	prop := func(setMiB uint16, threads uint8) bool {
		set := int64(setMiB%2000+1) * 1024 * 1024 / 3 * 3
		opts := soc.StreamOptions{Threads: int(threads)%4 + 1}
		results, err := Run(Config{Machine: m, WorkingSetBytes: set, Opts: opts})
		if err != nil {
			return false
		}
		for _, r := range results {
			if r.MeanMBps*1e6 > m.PeakDDRBandwidth*1.001 && set > m.L2Bytes {
				return false
			}
			if r.MeanMBps <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
