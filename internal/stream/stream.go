// Package stream reimplements the STREAM memory-bandwidth benchmark
// (McCalpin, v5.10) used in Section V-A: the four kernels (copy, scale,
// add, triad) with STREAM's own validation, plus a calibrated bandwidth
// model that regenerates Table V — the DDR-resident and L2-resident runs
// on the Monte Cimone node — and the cross-machine efficiency comparison.
//
// The upstream benchmark's working set is capped by the RV64 medany code
// model: the three statically allocated arrays must stay within +-2 GiB of
// pc, which is exactly why the paper's large run uses a 1945.5 MiB set.
package stream

import (
	"fmt"
	"math"

	"montecimone/internal/sim"
	"montecimone/internal/soc"
)

// scalar is STREAM's scale factor.
const scalar = 3.0

// Copy performs c[i] = a[i].
func Copy(c, a []float64) {
	copy(c, a)
}

// Scale performs b[i] = scalar * c[i].
func Scale(b, c []float64) {
	for i := range b {
		b[i] = scalar * c[i]
	}
}

// Add performs c[i] = a[i] + b[i].
func Add(c, a, b []float64) {
	for i := range c {
		c[i] = a[i] + b[i]
	}
}

// Triad performs a[i] = b[i] + scalar * c[i].
func Triad(a, b, c []float64) {
	for i := range a {
		a[i] = b[i] + scalar*c[i]
	}
}

// Verify runs the full STREAM iteration sequence on arrays of n elements
// for the given iteration count and checks the closed-form expected values,
// exactly like the benchmark's own validation step.
func Verify(n, iterations int) error {
	if n <= 0 || iterations <= 0 {
		return fmt.Errorf("stream: n and iterations must be positive, got %d, %d", n, iterations)
	}
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i], b[i], c[i] = 1.0, 2.0, 0.0
	}
	// STREAM scales a by 2 before the timed loops.
	for i := range a {
		a[i] *= 2.0
	}
	for it := 0; it < iterations; it++ {
		Copy(c, a)
		Scale(b, c)
		Add(c, a, b)
		Triad(a, b, c)
	}
	// Replay the recurrence on scalars.
	aj, bj, cj := 2.0, 2.0, 0.0
	for it := 0; it < iterations; it++ {
		cj = aj
		bj = scalar * cj
		cj = aj + bj
		aj = bj + scalar*cj
	}
	const tol = 1e-13
	for i := range a {
		if math.Abs(a[i]-aj) > tol*math.Abs(aj) ||
			math.Abs(b[i]-bj) > tol*math.Abs(bj) ||
			math.Abs(c[i]-cj) > tol*math.Abs(cj) {
			return fmt.Errorf("stream: validation failed at %d: got (%v,%v,%v), want (%v,%v,%v)",
				i, a[i], b[i], c[i], aj, bj, cj)
		}
	}
	return nil
}

// BytesPerElement gives each kernel's memory traffic per index (loads plus
// stores of 8-byte doubles), as STREAM accounts bandwidth.
func BytesPerElement(k soc.StreamKernel) int {
	switch k {
	case soc.StreamCopy, soc.StreamScale:
		return 16
	case soc.StreamAdd, soc.StreamTriad:
		return 24
	default:
		return 0
	}
}

// Config describes a modelled STREAM run.
type Config struct {
	// Machine is the node model (default soc.FU740()).
	Machine *soc.Machine
	// WorkingSetBytes is the total footprint of the three arrays (the
	// dataset size labels of Table V: 1945.5 MiB and 1.1 MiB).
	WorkingSetBytes int64
	// Opts carries thread count and toolchain knobs.
	Opts soc.StreamOptions
	// Reps is the repetition count for mean +- std (default 10).
	Reps int
	// RNG drives the run-to-run jitter; nil disables noise.
	RNG *sim.RNG
}

// Result is one kernel's modelled outcome.
type Result struct {
	// Kernel identifies the row.
	Kernel soc.StreamKernel
	// MeanMBps and StdMBps are the reported bandwidth statistics in
	// STREAM's MB/s (1e6 bytes per second).
	MeanMBps, StdMBps float64
	// EfficiencyOfPeak is MeanMBps relative to the machine's peak DDR
	// bandwidth.
	EfficiencyOfPeak float64
}

// measurementJitter is the relative sample noise of Table V (the reported
// standard deviations are a few tenths of a percent).
const measurementJitter = 0.003

// ErrCodeModel reports a working set rejected by the medany code model.
type ErrCodeModel struct {
	// Requested and Limit are per-array byte sizes.
	Requested, Limit int64
}

// Error describes the linker failure the oversized static arrays provoke.
func (e *ErrCodeModel) Error() string {
	return fmt.Sprintf("stream: static array of %d bytes exceeds the medany code model limit of %d bytes per array (relocation truncated: symbol out of +-2 GiB range)",
		e.Requested, e.Limit)
}

// Run models a STREAM execution, returning one result per kernel in
// Table V order.
func Run(cfg Config) ([]Result, error) {
	machine := cfg.Machine
	if machine == nil {
		machine = soc.FU740()
	}
	if cfg.WorkingSetBytes <= 0 {
		return nil, fmt.Errorf("stream: working set must be positive, got %d", cfg.WorkingSetBytes)
	}
	perArray := cfg.WorkingSetBytes / 3
	if limit := machine.MaxStreamArrayBytes(cfg.Opts); perArray > limit {
		return nil, &ErrCodeModel{Requested: perArray, Limit: limit}
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 10
	}
	results := make([]Result, 0, len(soc.StreamKernels))
	for _, k := range soc.StreamKernels {
		bw, err := machine.StreamBandwidth(k, cfg.WorkingSetBytes, cfg.Opts)
		if err != nil {
			return nil, err
		}
		base := bw / 1e6
		var sum, sum2 float64
		for i := 0; i < reps; i++ {
			sample := base
			if cfg.RNG != nil {
				sample = base * (1 + cfg.RNG.Normal("stream."+k.String(), 0, measurementJitter))
			}
			sum += sample
			sum2 += sample * sample
		}
		mean := sum / float64(reps)
		std := math.Sqrt(math.Max(0, sum2/float64(reps)-mean*mean))
		results = append(results, Result{
			Kernel:           k,
			MeanMBps:         mean,
			StdMBps:          std,
			EfficiencyOfPeak: mean * 1e6 / machine.PeakDDRBandwidth,
		})
	}
	return results, nil
}

// Table V dataset sizes.
const (
	// DDRWorkingSetBytes is the paper's large set: 1945.5 MiB exactly —
	// the biggest footprint that still links under the 2 GiB medany cap.
	DDRWorkingSetBytes = int64(2_040_004_608)
	// L2WorkingSetBytes is the paper's cache-resident set: 1.1 MiB
	// (rounded to whole doubles).
	L2WorkingSetBytes = int64(1_153_432)
)
