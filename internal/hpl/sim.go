package hpl

import (
	"fmt"
	"math"

	"montecimone/internal/netsim"
	"montecimone/internal/sim"
	"montecimone/internal/soc"
)

// Config describes one modelled HPL run, mirroring the knobs of HPL.dat
// plus the machine placement. The paper's configuration is N=40704,
// NB=192, one MPI task per physical core (4 per node) over the 1 GbE
// fabric, with the process grid chosen near-square (column-major rank
// order, so process columns stay inside a node at 4 rows).
type Config struct {
	// N is the problem order; NB the panel width.
	N, NB int
	// Nodes is the node count; RanksPerNode the MPI tasks per node
	// (default 4, one per U74 core).
	Nodes        int
	RanksPerNode int
	// Machine is the node model (default soc.FU740()).
	Machine *soc.Machine
	// Link is the interconnect (default netsim.GigabitEthernet()).
	Link *netsim.Link
	// P and Q override the process grid; zero selects the near-square
	// default with P <= Q.
	P, Q int
	// Lookahead enables depth-1 panel lookahead (the upstream untuned
	// configuration runs without it; the ablation flips it on).
	Lookahead bool
}

// Result is the outcome of one modelled run.
type Result struct {
	// Echoed configuration.
	N, NB, Nodes, P, Q int
	// Seconds is the modelled wall time; GFlops the HPL rating.
	Seconds float64
	GFlops  float64
	// Efficiency is the fraction of the allocated nodes' FPU peak.
	Efficiency float64
	// ComputeSeconds and CommSeconds split the critical path.
	ComputeSeconds float64
	CommSeconds    float64
}

// DefaultGrid returns the near-square process grid with P <= Q used when
// the configuration does not pin one.
func DefaultGrid(ranks int) (p, q int) {
	p = 1
	for d := 1; d*d <= ranks; d++ {
		if ranks%d == 0 {
			p = d
		}
	}
	return p, ranks / p
}

// normalise applies defaults and validates.
func (c Config) normalise() (Config, error) {
	if c.N <= 0 || c.NB <= 0 {
		return c, fmt.Errorf("hpl: N and NB must be positive, got %d, %d", c.N, c.NB)
	}
	if c.NB > c.N {
		return c, fmt.Errorf("hpl: NB %d exceeds N %d", c.NB, c.N)
	}
	if c.Nodes <= 0 {
		return c, fmt.Errorf("hpl: node count must be positive, got %d", c.Nodes)
	}
	if c.RanksPerNode == 0 {
		c.RanksPerNode = 4
	}
	if c.RanksPerNode < 0 {
		return c, fmt.Errorf("hpl: ranks per node must be positive, got %d", c.RanksPerNode)
	}
	if c.Machine == nil {
		c.Machine = soc.FU740()
	}
	if c.Link == nil {
		link := netsim.GigabitEthernet()
		c.Link = &link
	}
	ranks := c.Nodes * c.RanksPerNode
	if c.P == 0 && c.Q == 0 {
		c.P, c.Q = DefaultGrid(ranks)
	}
	if c.P <= 0 || c.Q <= 0 || c.P*c.Q != ranks {
		return c, fmt.Errorf("hpl: grid %dx%d does not match %d ranks", c.P, c.Q, ranks)
	}
	return c, nil
}

// Simulate walks the blocked LU iteration structure, charging compute time
// from the calibrated machine model and communication time from the fabric
// model along the critical path, and returns the modelled run.
func Simulate(cfg Config) (Result, error) {
	cfg, err := cfg.normalise()
	if err != nil {
		return Result{}, err
	}
	fabric, err := netsim.NewFabric(cfg.Nodes, *cfg.Link)
	if err != nil {
		return Result{}, err
	}
	m := cfg.Machine
	ranksPerNode := cfg.RanksPerNode
	nodeOf := func(rank int) int { return rank / ranksPerNode }

	// transfer returns the inter-rank transfer time for one hop.
	transfer := func(src, dst int, bytes float64, sharing int) float64 {
		t, terr := fabric.TransferTime(nodeOf(src), nodeOf(dst), bytes, sharing)
		if terr != nil {
			// Unreachable: ranks map inside the fabric by construction.
			panic(fmt.Sprintf("hpl: transfer: %v", terr))
		}
		return t
	}
	// bcast models a binomial-tree broadcast critical path over a rank
	// group (group[0] is the root).
	bcast := func(group []int, bytes float64, sharing int) float64 {
		if len(group) <= 1 || bytes <= 0 {
			return 0
		}
		total := 0.0
		for hop := 1; hop < len(group); hop <<= 1 {
			dst := hop
			if dst >= len(group) {
				dst = len(group) - 1
			}
			total += transfer(group[0], group[dst], bytes, sharing)
		}
		return total
	}
	// allreduceSmall models the per-column pivot max-loc reduction over a
	// process column: a reduce plus a broadcast of a 16-byte pair.
	allreduceSmall := func(group []int) float64 {
		return 2 * bcast(group, 16, 1)
	}

	numPanels := (cfg.N + cfg.NB - 1) / cfg.NB
	ceilDiv := func(a, b int) int { return (a + b - 1) / b }

	var total, compute, comm float64
	for k := 0; k < numPanels; k++ {
		gk := k * cfg.NB
		nk := cfg.N - gk
		jb := minInt(cfg.NB, nk)
		nrem := nk - jb // trailing matrix order after this panel

		blocks := ceilDiv(nk, cfg.NB)
		// Local panel rows on the owning process column (per rank).
		mloc := minInt(nk, ceilDiv(blocks, cfg.P)*cfg.NB)
		// Local trailing shape per rank.
		mlocU := 0
		nlocU := 0
		if nrem > 0 {
			mlocU = minInt(nrem, ceilDiv(blocks-1, cfg.P)*cfg.NB)
			nlocU = minInt(nrem, ceilDiv(blocks-1, cfg.Q)*cfg.NB)
		}

		ownerRow := k % cfg.P
		ownerCol := k % cfg.Q
		// Column-major rank order: rank = row + col*P.
		colGroup := make([]int, cfg.P)
		for r := 0; r < cfg.P; r++ {
			colGroup[r] = (ownerRow+r)%cfg.P + ownerCol*cfg.P
		}
		rowGroup := make([]int, cfg.Q)
		for c := 0; c < cfg.Q; c++ {
			rowGroup[c] = ownerRow + ((ownerCol+c)%cfg.Q)*cfg.P
		}

		// Panel factorisation: local DGETF2 work plus one pivot
		// reduction per panel column.
		panelCompute := m.PanelFactorTimeOn(1, mloc, jb)
		pivotComm := float64(jb) * allreduceSmall(colGroup)
		// Panel broadcast along the process row.
		panelBytes := float64(mloc) * float64(jb) * 8
		panelBcast := bcast(rowGroup, panelBytes, ranksPerNode)

		var swapComm, uBcast, trsm, update float64
		if nrem > 0 {
			// Pivot-row exchange along the process column (pairwise) and
			// the U-block broadcast down the column.
			swapBytes := float64(jb) * float64(nlocU) * 8
			swapComm = 2 * transfer(colGroup[0], colGroup[len(colGroup)/2], swapBytes, ranksPerNode)
			uBcast = bcast(colGroup, swapBytes, ranksPerNode)
			trsm = m.TRSMTimeOn(1, jb, nlocU)
			update = m.DGEMMTimeOn(1, mlocU, nlocU, jb)
		}

		iterCompute := panelCompute + trsm + update
		iterComm := pivotComm + panelBcast + swapComm + uBcast
		var iter float64
		if cfg.Lookahead && k > 0 {
			// Depth-1 lookahead: the panel chain of this iteration was
			// overlapped with the previous update; the exposed time is
			// whichever is longer, plus the unhidden swap/U phase.
			hidden := panelCompute + pivotComm + panelBcast
			exposed := trsm + update
			iter = math.Max(hidden, exposed) + swapComm + uBcast
		} else {
			iter = iterCompute + iterComm
		}
		total += iter
		compute += iterCompute
		comm += iterComm
	}

	flops := FactorFlops(cfg.N)
	peak := float64(cfg.Nodes) * m.PeakNodeFlops()
	return Result{
		N: cfg.N, NB: cfg.NB, Nodes: cfg.Nodes, P: cfg.P, Q: cfg.Q,
		Seconds:        total,
		GFlops:         flops / total / 1e9,
		Efficiency:     flops / total / peak,
		ComputeSeconds: compute,
		CommSeconds:    comm,
	}, nil
}

// RunStats aggregates repeated modelled runs with the measured run-to-run
// variability (the paper reports means +- standard deviations over 10
// repetitions).
type RunStats struct {
	// Base is the noise-free modelled run.
	Base Result
	// MeanSeconds/StdSeconds and MeanGFlops/StdGFlops summarise the
	// jittered repetitions.
	MeanSeconds, StdSeconds float64
	MeanGFlops, StdGFlops   float64
	// Samples are the per-repetition wall times.
	Samples []float64
}

// runJitterStd is the relative run-to-run variability of wall time
// (the paper's 10-run standard deviations sit at 2-4 % of the mean).
const runJitterStd = 0.028

// Repeat models reps repetitions of a run with deterministic pseudo-random
// jitter drawn from the named RNG stream.
func Repeat(cfg Config, reps int, rng *sim.RNG, stream string) (RunStats, error) {
	if reps <= 0 {
		return RunStats{}, fmt.Errorf("hpl: repetitions must be positive, got %d", reps)
	}
	if rng == nil {
		return RunStats{}, fmt.Errorf("hpl: nil rng")
	}
	base, err := Simulate(cfg)
	if err != nil {
		return RunStats{}, err
	}
	stats := RunStats{Base: base, Samples: make([]float64, 0, reps)}
	var sumT, sumT2, sumG, sumG2 float64
	for i := 0; i < reps; i++ {
		jitter := 1 + rng.Normal(stream, 0, runJitterStd)
		if jitter < 0.5 {
			jitter = 0.5
		}
		t := base.Seconds * jitter
		g := FactorFlops(cfg.N) / t / 1e9
		stats.Samples = append(stats.Samples, t)
		sumT += t
		sumT2 += t * t
		sumG += g
		sumG2 += g * g
	}
	n := float64(reps)
	stats.MeanSeconds = sumT / n
	stats.MeanGFlops = sumG / n
	stats.StdSeconds = math.Sqrt(math.Max(0, sumT2/n-stats.MeanSeconds*stats.MeanSeconds))
	stats.StdGFlops = math.Sqrt(math.Max(0, sumG2/n-stats.MeanGFlops*stats.MeanGFlops))
	return stats, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
