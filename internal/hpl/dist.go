package hpl

import (
	"fmt"

	"montecimone/internal/mpi"
)

// This file implements a distributed-memory LU factorisation with real
// payloads over the mpi layer, in HPL's style: column-block-cyclic data
// distribution, panel factorisation on the owning rank, panel + pivot
// broadcast, and local trailing updates everywhere. It is used to verify
// numerically — at test-scale problem sizes — that the communication
// structure the performance model charges for actually computes the right
// answer on the simulated cluster.

// DistFactor runs the distributed factorisation from within a World.Run
// rank function. Every rank deterministically generates the same matrix
// from the seed and maintains its owned column blocks; the returned matrix
// on rank 0 is the gathered LU factor with its pivot vector. Other ranks
// return (nil, nil, nil).
func DistFactor(p *mpi.Proc, n, nb int, seed int64) (*Matrix, []int, error) {
	if n <= 0 || nb <= 0 {
		return nil, nil, fmt.Errorf("hpl: dist factor needs positive n and nb, got %d, %d", n, nb)
	}
	a, _, err := RandomSystem(n, seed)
	if err != nil {
		return nil, nil, err
	}
	size := p.Size()
	me := p.Rank()
	pivots := make([]int, n)

	ownerOf := func(panel int) int { return panel % size }
	numPanels := (n + nb - 1) / nb

	for k := 0; k < numPanels; k++ {
		gk := k * nb
		jb := min(nb, n-gk)
		owner := ownerOf(k)

		var payload []float64
		if me == owner {
			panel := a.Sub(gk, gk, n-gk, jb)
			panelPiv, err := Dgetf2(panel)
			if err != nil {
				return nil, nil, fmt.Errorf("hpl: rank %d panel %d: %w", me, k, err)
			}
			payload = encodePanel(panelPiv, panel)
		}
		payload, err := p.Bcast(owner, payload, -1)
		if err != nil {
			return nil, nil, err
		}
		panelPiv, panelData, err := decodePanel(payload, n-gk, jb)
		if err != nil {
			return nil, nil, fmt.Errorf("hpl: rank %d panel %d: %w", me, k, err)
		}
		for j, piv := range panelPiv {
			pivots[gk+j] = gk + piv
		}
		if me != owner {
			// Install the factored panel (needed for trsm/gemm below).
			writePanel(a, gk, jb, panelData)
		}
		// Apply the pivot swaps to every owned column block except the
		// panel itself (already pivoted by the factorisation).
		for blk := 0; blk < numPanels; blk++ {
			if blk == k || ownerOf(blk) != me {
				continue
			}
			bc := blk * nb
			bw := min(nb, n-bc)
			region := a.Sub(0, bc, n, bw)
			Dlaswp(region, gk, panelPiv)
		}
		// Trailing updates on owned blocks to the right of the panel.
		l11 := a.Sub(gk, gk, jb, jb)
		for blk := k + 1; blk < numPanels; blk++ {
			if ownerOf(blk) != me {
				continue
			}
			bc := blk * nb
			bw := min(nb, n-bc)
			u12 := a.Sub(gk, bc, jb, bw)
			if err := DtrsmLowerUnit(l11, u12); err != nil {
				return nil, nil, fmt.Errorf("hpl: rank %d trsm %d: %w", me, blk, err)
			}
			if gk+jb < n {
				l21 := a.Sub(gk+jb, gk, n-gk-jb, jb)
				a22 := a.Sub(gk+jb, bc, n-gk-jb, bw)
				if err := Dgemm(a22, l21, u12); err != nil {
					return nil, nil, fmt.Errorf("hpl: rank %d gemm %d: %w", me, blk, err)
				}
			}
		}
	}

	// Gather owned blocks onto rank 0.
	return gatherLU(p, a, n, nb, pivots)
}

// encodePanel packs pivots and the panel contents into one payload.
func encodePanel(pivots []int, panel *Matrix) []float64 {
	out := make([]float64, 0, len(pivots)+panel.Rows*panel.Cols)
	for _, p := range pivots {
		out = append(out, float64(p))
	}
	for i := 0; i < panel.Rows; i++ {
		out = append(out, panel.Data[i*panel.Stride:i*panel.Stride+panel.Cols]...)
	}
	return out
}

func decodePanel(payload []float64, rows, jb int) ([]int, []float64, error) {
	want := jb + rows*jb
	if len(payload) != want {
		return nil, nil, fmt.Errorf("hpl: panel payload %d, want %d", len(payload), want)
	}
	pivots := make([]int, jb)
	for j := 0; j < jb; j++ {
		pivots[j] = int(payload[j])
	}
	return pivots, payload[jb:], nil
}

func writePanel(a *Matrix, gk, jb int, data []float64) {
	rows := a.Rows - gk
	for i := 0; i < rows; i++ {
		copy(a.Data[(gk+i)*a.Stride+gk:(gk+i)*a.Stride+gk+jb], data[i*jb:(i+1)*jb])
	}
}

// gatherLU collects each rank's owned column blocks on rank 0.
func gatherLU(p *mpi.Proc, a *Matrix, n, nb int, pivots []int) (*Matrix, []int, error) {
	size := p.Size()
	me := p.Rank()
	numPanels := (n + nb - 1) / nb
	const gatherTagBase = 1 << 18

	if me != 0 {
		for blk := 0; blk < numPanels; blk++ {
			if blk%size != me {
				continue
			}
			bc := blk * nb
			bw := min(nb, n-bc)
			buf := make([]float64, 0, n*bw)
			for i := 0; i < n; i++ {
				buf = append(buf, a.Data[i*a.Stride+bc:i*a.Stride+bc+bw]...)
			}
			if err := p.Send(0, gatherTagBase+blk, buf, -1); err != nil {
				return nil, nil, err
			}
		}
		return nil, nil, nil
	}

	out := a.Clone() // rank 0's own blocks are already in place
	for blk := 0; blk < numPanels; blk++ {
		src := blk % size
		if src == 0 {
			continue
		}
		bc := blk * nb
		bw := min(nb, n-bc)
		msg, err := p.Recv(src, gatherTagBase+blk)
		if err != nil {
			return nil, nil, err
		}
		if len(msg.Data) != n*bw {
			return nil, nil, fmt.Errorf("hpl: gather block %d: %d values, want %d", blk, len(msg.Data), n*bw)
		}
		for i := 0; i < n; i++ {
			copy(out.Data[i*out.Stride+bc:i*out.Stride+bc+bw], msg.Data[i*bw:(i+1)*bw])
		}
	}
	return out, pivots, nil
}
