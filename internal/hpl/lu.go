package hpl

import (
	"fmt"
	"math"
	"math/rand"
)

// Factor performs the blocked, right-looking LU factorisation with partial
// pivoting that HPL implements: A = P * L * U in place, with block size nb.
// It returns the global pivot vector (pivots[k] is the row swapped into
// row k at elimination step k).
func Factor(a *Matrix, nb int) ([]int, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("hpl: factor needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if nb <= 0 {
		return nil, fmt.Errorf("hpl: block size must be positive, got %d", nb)
	}
	n := a.Rows
	pivots := make([]int, n)
	for k := 0; k < n; k += nb {
		jb := min(nb, n-k)
		// Factor the current panel A[k:n, k:k+jb].
		panel := a.Sub(k, k, n-k, jb)
		panelPiv, err := Dgetf2(panel)
		if err != nil {
			return nil, fmt.Errorf("hpl: panel at %d: %w", k, err)
		}
		for j, p := range panelPiv {
			pivots[k+j] = k + p
		}
		// Apply the panel's pivots to the columns left and right of it.
		if k > 0 {
			left := a.Sub(0, 0, n, k)
			Dlaswp(left, k, panelPiv)
		}
		if k+jb < n {
			right := a.Sub(0, k+jb, n, n-k-jb)
			Dlaswp(right, k, panelPiv)

			// U block: solve L11 * U12 = A12.
			l11 := a.Sub(k, k, jb, jb)
			u12 := a.Sub(k, k+jb, jb, n-k-jb)
			if err := DtrsmLowerUnit(l11, u12); err != nil {
				return nil, fmt.Errorf("hpl: trsm at %d: %w", k, err)
			}
			// Trailing update: A22 -= L21 * U12.
			if k+jb < n {
				l21 := a.Sub(k+jb, k, n-k-jb, jb)
				a22 := a.Sub(k+jb, k+jb, n-k-jb, n-k-jb)
				if err := Dgemm(a22, l21, u12); err != nil {
					return nil, fmt.Errorf("hpl: update at %d: %w", k, err)
				}
			}
		}
	}
	return pivots, nil
}

// Solve uses a factored matrix (output of Factor) and its pivots to solve
// A x = b; b is overwritten with the permuted right-hand side internally
// and the solution is returned.
func Solve(lu *Matrix, pivots []int, b []float64) ([]float64, error) {
	n := lu.Rows
	if lu.Cols != n {
		return nil, fmt.Errorf("hpl: solve needs a square factor")
	}
	if len(b) != n || len(pivots) != n {
		return nil, fmt.Errorf("hpl: solve size mismatch: n=%d, b=%d, pivots=%d", n, len(b), len(pivots))
	}
	x := append([]float64(nil), b...)
	// Apply row exchanges.
	for k := 0; k < n; k++ {
		if p := pivots[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit lower triangular L.
	for i := 1; i < n; i++ {
		row := lu.Data[i*lu.Stride:]
		sum := x[i]
		for j := 0; j < i; j++ {
			sum -= row[j] * x[j]
		}
		x[i] = sum
	}
	// Back substitution with upper triangular U.
	for i := n - 1; i >= 0; i-- {
		row := lu.Data[i*lu.Stride:]
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= row[j] * x[j]
		}
		if row[i] == 0 {
			return nil, fmt.Errorf("hpl: zero diagonal at %d", i)
		}
		x[i] = sum / row[i]
	}
	return x, nil
}

// RandomSystem builds the HPL test problem: a uniformly random matrix in
// [-0.5, 0.5) and a right-hand side, deterministically from a seed.
func RandomSystem(n int, seed int64) (*Matrix, []float64, error) {
	a, err := NewMatrix(n, n)
	if err != nil {
		return nil, nil, err
	}
	r := rand.New(rand.NewSource(seed))
	for i := range a.Data {
		a.Data[i] = r.Float64() - 0.5
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	return a, b, nil
}

// Residual computes the scaled HPL residual
// ||Ax-b||_inf / (eps * (||A||_inf * ||x||_inf + ||b||_inf) * n),
// which HPL requires to be O(1) for a run to validate.
func Residual(a *Matrix, x, b []float64) (float64, error) {
	n := a.Rows
	if a.Cols != n || len(x) != n || len(b) != n {
		return 0, fmt.Errorf("hpl: residual size mismatch")
	}
	var resInf, aInf, xInf, bInf float64
	for i := 0; i < n; i++ {
		row := a.Data[i*a.Stride : i*a.Stride+n]
		sum := -b[i]
		rowSum := 0.0
		for j, v := range row {
			sum += v * x[j]
			rowSum += math.Abs(v)
		}
		resInf = math.Max(resInf, math.Abs(sum))
		aInf = math.Max(aInf, rowSum)
		bInf = math.Max(bInf, math.Abs(b[i]))
	}
	for _, v := range x {
		xInf = math.Max(xInf, math.Abs(v))
	}
	denom := 2.220446049250313e-16 * (aInf*xInf + bInf) * float64(n)
	if denom == 0 {
		return 0, fmt.Errorf("hpl: degenerate residual denominator")
	}
	return resInf / denom, nil
}

// FactorFlops returns the floating-point operations HPL credits a run
// with: 2/3 n^3 + 2 n^2.
func FactorFlops(n int) float64 {
	fn := float64(n)
	return 2.0/3.0*fn*fn*fn + 2*fn*fn
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
