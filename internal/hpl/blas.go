// Package hpl reimplements the High-Performance Linpack benchmark (Petitet
// et al., HPL 2.3) that the paper uses as its headline workload: a blocked,
// partially pivoted LU factorisation with the kernels it needs (dgemm,
// dtrsm, dgetf2, dlaswp), a 2-D block-cyclic distributed driver running on
// the mpi layer with real payloads (numerically verified at small sizes),
// and a calibrated performance model that regenerates the paper's single
// node 1.86 GFLOP/s / 46.5 % result and the Fig. 2 strong-scaling series at
// N=40704, NB=192.
package hpl

import "fmt"

// Matrix is a dense row-major matrix view.
type Matrix struct {
	// Rows and Cols give the logical dimensions; Stride the row stride of
	// the backing slice.
	Rows, Cols, Stride int
	// Data is the backing storage, len >= (Rows-1)*Stride + Cols.
	Data []float64
}

// NewMatrix allocates a Rows x Cols matrix.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("hpl: invalid matrix shape %dx%d", rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: make([]float64, rows*cols)}, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set writes element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Sub returns a view of the block starting at (i, j) with the given shape;
// the view shares storage with m.
func (m *Matrix) Sub(i, j, rows, cols int) *Matrix {
	return &Matrix{
		Rows: rows, Cols: cols, Stride: m.Stride,
		Data: m.Data[i*m.Stride+j:],
	}
}

// Clone deep-copies the matrix into tightly packed storage.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{Rows: m.Rows, Cols: m.Cols, Stride: m.Cols, Data: make([]float64, m.Rows*m.Cols)}
	for i := 0; i < m.Rows; i++ {
		copy(out.Data[i*out.Stride:i*out.Stride+m.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
	}
	return out
}

// Dgemm computes C -= A * B for C (m x n), A (m x k), B (k x n) — the
// trailing-submatrix update kernel of the LU factorisation. It uses
// register blocking over j with a cache-friendly i-k-j loop order.
func Dgemm(c, a, b *Matrix) error {
	if a.Rows != c.Rows || b.Cols != c.Cols || a.Cols != b.Rows {
		return fmt.Errorf("hpl: dgemm shape mismatch: C %dx%d, A %dx%d, B %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	m, n, k := c.Rows, c.Cols, a.Cols
	for i := 0; i < m; i++ {
		ci := c.Data[i*c.Stride : i*c.Stride+n]
		for p := 0; p < k; p++ {
			aip := a.Data[i*a.Stride+p]
			if aip == 0 {
				continue
			}
			bp := b.Data[p*b.Stride : p*b.Stride+n]
			for j := range bp {
				ci[j] -= aip * bp[j]
			}
		}
	}
	return nil
}

// DtrsmLowerUnit solves L * X = B in place for X, where L is n x n unit
// lower triangular (the factored panel's top block) and B is n x m. This
// is the U-block solve of each LU iteration.
func DtrsmLowerUnit(l, b *Matrix) error {
	if l.Rows != l.Cols {
		return fmt.Errorf("hpl: dtrsm L must be square, got %dx%d", l.Rows, l.Cols)
	}
	if b.Rows != l.Rows {
		return fmt.Errorf("hpl: dtrsm B rows %d != L order %d", b.Rows, l.Rows)
	}
	n, m := l.Rows, b.Cols
	for i := 1; i < n; i++ {
		bi := b.Data[i*b.Stride : i*b.Stride+m]
		for p := 0; p < i; p++ {
			lip := l.Data[i*l.Stride+p]
			if lip == 0 {
				continue
			}
			bp := b.Data[p*b.Stride : p*b.Stride+m]
			for j := range bi {
				bi[j] -= lip * bp[j]
			}
		}
	}
	return nil
}

// Dgetf2 factors the panel a (rows x nb, rows >= nb) in place with partial
// pivoting: A = P * L * U with L unit lower trapezoidal and U upper
// triangular in the top block. It returns the pivot row chosen at each
// column (absolute row indexes within the panel).
func Dgetf2(a *Matrix) ([]int, error) {
	rows, nb := a.Rows, a.Cols
	if rows < nb {
		return nil, fmt.Errorf("hpl: dgetf2 panel %dx%d is wider than tall", rows, nb)
	}
	pivots := make([]int, nb)
	for j := 0; j < nb; j++ {
		// Pivot search: largest magnitude in column j at/below diagonal.
		piv, maxAbs := j, abs(a.At(j, j))
		for i := j + 1; i < rows; i++ {
			if v := abs(a.At(i, j)); v > maxAbs {
				piv, maxAbs = i, v
			}
		}
		if maxAbs == 0 {
			return nil, fmt.Errorf("hpl: dgetf2 singular at column %d", j)
		}
		pivots[j] = piv
		if piv != j {
			swapRows(a, j, piv)
		}
		// Scale multipliers and rank-1 update of the trailing panel.
		diag := a.At(j, j)
		for i := j + 1; i < rows; i++ {
			lij := a.At(i, j) / diag
			a.Set(i, j, lij)
			ai := a.Data[i*a.Stride : i*a.Stride+nb]
			aj := a.Data[j*a.Stride : j*a.Stride+nb]
			for p := j + 1; p < nb; p++ {
				ai[p] -= lij * aj[p]
			}
		}
	}
	return pivots, nil
}

// Dlaswp applies panel pivots (as returned by Dgetf2, offset by the panel's
// first row) to the columns of a full-width matrix region.
func Dlaswp(a *Matrix, firstRow int, pivots []int) {
	for j, piv := range pivots {
		r1 := firstRow + j
		r2 := firstRow + piv
		if r1 != r2 {
			swapRows(a, r1, r2)
		}
	}
}

func swapRows(a *Matrix, i, j int) {
	ri := a.Data[i*a.Stride : i*a.Stride+a.Cols]
	rj := a.Data[j*a.Stride : j*a.Stride+a.Cols]
	for p := range ri {
		ri[p], rj[p] = rj[p], ri[p]
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
