package hpl

import (
	"math"
	"sync"
	"testing"

	"montecimone/internal/mpi"
	"montecimone/internal/netsim"
)

// runDist executes the distributed factorisation on a simulated cluster
// and returns the gathered LU, pivots and the job makespan.
func runDist(t *testing.T, n, nb, nodes, ranksPerNode int, seed int64) (*Matrix, []int, float64) {
	t.Helper()
	fabric, err := netsim.NewFabric(nodes, netsim.GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	placement := make([]int, 0, nodes*ranksPerNode)
	for nd := 0; nd < nodes; nd++ {
		for r := 0; r < ranksPerNode; r++ {
			placement = append(placement, nd)
		}
	}
	world, err := mpi.NewWorld(fabric, placement)
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu     sync.Mutex
		lu     *Matrix
		pivots []int
	)
	err = world.Run(func(p *mpi.Proc) error {
		out, piv, err := DistFactor(p, n, nb, seed)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			mu.Lock()
			lu, pivots = out, piv
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if lu == nil {
		t.Fatal("rank 0 returned no factor")
	}
	return lu, pivots, world.MaxClock()
}

func TestDistFactorMatchesSerial(t *testing.T) {
	const n, nb, seed = 96, 16, 11
	serial, _, err := RandomSystem(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	wantPiv, err := Factor(serial, nb)
	if err != nil {
		t.Fatal(err)
	}
	lu, piv, _ := runDist(t, n, nb, 2, 2, seed)
	for i := range wantPiv {
		if piv[i] != wantPiv[i] {
			t.Fatalf("pivot %d: distributed %d vs serial %d", i, piv[i], wantPiv[i])
		}
	}
	for i := range serial.Data {
		if math.Abs(lu.Data[i]-serial.Data[i]) > 1e-9*math.Max(1, math.Abs(serial.Data[i])) {
			t.Fatalf("element %d: distributed %v vs serial %v", i, lu.Data[i], serial.Data[i])
		}
	}
}

func TestDistFactorSolvesSystem(t *testing.T) {
	const n, nb, seed = 128, 32, 5
	lu, piv, makespan := runDist(t, n, nb, 4, 4, seed)
	a, b, err := RandomSystem(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	x, err := Solve(lu, piv, b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Residual(a, x, b)
	if err != nil {
		t.Fatal(err)
	}
	if res > 16 {
		t.Errorf("distributed residual = %v", res)
	}
	if makespan <= 0 {
		t.Error("no virtual time accumulated")
	}
}

func TestDistFactorUnevenRanks(t *testing.T) {
	// Panel count not divisible by world size.
	lu, piv, _ := runDist(t, 80, 16, 3, 1, 9)
	a, b, err := RandomSystem(80, 9)
	if err != nil {
		t.Fatal(err)
	}
	x, err := Solve(lu, piv, b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Residual(a, x, b)
	if err != nil {
		t.Fatal(err)
	}
	if res > 16 {
		t.Errorf("residual = %v", res)
	}
}

func TestDistFactorSingleRank(t *testing.T) {
	lu, piv, _ := runDist(t, 64, 16, 1, 1, 3)
	serial, _, _ := RandomSystem(64, 3)
	wantPiv, err := Factor(serial, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantPiv {
		if piv[i] != wantPiv[i] {
			t.Fatalf("pivot %d differs", i)
		}
	}
	for i := range serial.Data {
		if lu.Data[i] != serial.Data[i] {
			t.Fatalf("single-rank distributed factor differs at %d", i)
		}
	}
}

func TestDistFactorValidation(t *testing.T) {
	fabric, _ := netsim.NewFabric(1, netsim.GigabitEthernet())
	world, err := mpi.NewWorld(fabric, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	err = world.Run(func(p *mpi.Proc) error {
		_, _, err := DistFactor(p, 0, 8, 1)
		if err == nil {
			t.Error("n=0 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistMoreRanksIsFasterVirtualTime(t *testing.T) {
	// The virtual makespan must shrink with parallelism for a
	// compute-dominated size (time is charged via real compute? No — the
	// distributed driver only accrues transfer time, so we check that
	// the run completes and accumulates communication).
	_, _, t2 := runDist(t, 96, 16, 2, 2, 21)
	_, _, t4 := runDist(t, 96, 16, 4, 2, 21)
	if t2 <= 0 || t4 <= 0 {
		t.Fatal("no makespan recorded")
	}
}
