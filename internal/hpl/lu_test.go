package hpl

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDgemm(t *testing.T) {
	// C (2x2) -= A (2x3) * B (3x2).
	a, _ := NewMatrix(2, 3)
	b, _ := NewMatrix(3, 2)
	c, _ := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	copy(c.Data, []float64{100, 100, 100, 100})
	if err := Dgemm(c, a, b); err != nil {
		t.Fatal(err)
	}
	want := []float64{100 - 58, 100 - 64, 100 - 139, 100 - 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("c[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestDgemmShapeMismatch(t *testing.T) {
	a, _ := NewMatrix(2, 3)
	b, _ := NewMatrix(2, 2) // wrong inner dimension
	c, _ := NewMatrix(2, 2)
	if err := Dgemm(c, a, b); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestDtrsmLowerUnit(t *testing.T) {
	// L = [[1,0],[2,1]], B = [[1,2],[3,4]]; X solves L X = B.
	l, _ := NewMatrix(2, 2)
	copy(l.Data, []float64{1, 0, 2, 1})
	b, _ := NewMatrix(2, 2)
	copy(b.Data, []float64{1, 2, 3, 4})
	if err := DtrsmLowerUnit(l, b); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 1, 0} // row2: [3,4] - 2*[1,2] = [1,0]
	for i, w := range want {
		if b.Data[i] != w {
			t.Errorf("x[%d] = %v, want %v", i, b.Data[i], w)
		}
	}
	notSquare, _ := NewMatrix(2, 3)
	if err := DtrsmLowerUnit(notSquare, b); err == nil {
		t.Error("non-square L accepted")
	}
}

func TestDgetf2KnownPivot(t *testing.T) {
	// Column [1; 4; 2]: pivot row must be 1 (value 4).
	a, _ := NewMatrix(3, 1)
	copy(a.Data, []float64{1, 4, 2})
	piv, err := Dgetf2(a)
	if err != nil {
		t.Fatal(err)
	}
	if piv[0] != 1 {
		t.Errorf("pivot = %d, want 1", piv[0])
	}
	// Multipliers below the pivot: 1/4 and 2/4.
	if a.Data[0] != 4 || a.Data[1] != 0.25 || a.Data[2] != 0.5 {
		t.Errorf("panel = %v", a.Data)
	}
}

func TestDgetf2Singular(t *testing.T) {
	a, _ := NewMatrix(2, 2)
	copy(a.Data, []float64{0, 1, 0, 2}) // zero first column
	if _, err := Dgetf2(a); err == nil {
		t.Error("singular panel accepted")
	}
	wide, _ := NewMatrix(1, 2)
	if _, err := Dgetf2(wide); err == nil {
		t.Error("wide panel accepted")
	}
}

func TestFactorSolveResidual(t *testing.T) {
	// The HPL validation criterion: scaled residual O(1).
	for _, tc := range []struct{ n, nb int }{
		{16, 4}, {64, 8}, {128, 32}, {200, 48}, {256, 192},
	} {
		a, b, err := RandomSystem(tc.n, 42)
		if err != nil {
			t.Fatal(err)
		}
		lu := a.Clone()
		piv, err := Factor(lu, tc.nb)
		if err != nil {
			t.Fatalf("n=%d nb=%d: %v", tc.n, tc.nb, err)
		}
		x, err := Solve(lu, piv, b)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Residual(a, x, b)
		if err != nil {
			t.Fatal(err)
		}
		if res > 16 {
			t.Errorf("n=%d nb=%d: scaled residual %v too large", tc.n, tc.nb, res)
		}
	}
}

func TestFactorMatchesUnblocked(t *testing.T) {
	// Blocked factorisation must agree with nb=n (single panel) up to
	// rounding.
	n := 96
	a1, _, err := RandomSystem(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	a2 := a1.Clone()
	piv1, err := Factor(a1, 16)
	if err != nil {
		t.Fatal(err)
	}
	piv2, err := Factor(a2, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range piv1 {
		if piv1[i] != piv2[i] {
			t.Fatalf("pivot %d differs: %d vs %d", i, piv1[i], piv2[i])
		}
	}
	for i := range a1.Data {
		if math.Abs(a1.Data[i]-a2.Data[i]) > 1e-9*math.Max(1, math.Abs(a2.Data[i])) {
			t.Fatalf("factor element %d differs: %v vs %v", i, a1.Data[i], a2.Data[i])
		}
	}
}

func TestFactorValidation(t *testing.T) {
	a, _ := NewMatrix(4, 5)
	if _, err := Factor(a, 2); err == nil {
		t.Error("non-square matrix accepted")
	}
	sq, _ := NewMatrix(4, 4)
	if _, err := Factor(sq, 0); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestSolveValidation(t *testing.T) {
	a, b, _ := RandomSystem(8, 1)
	lu := a.Clone()
	piv, err := Factor(lu, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(lu, piv, b[:4]); err == nil {
		t.Error("short rhs accepted")
	}
	if _, err := Solve(lu, piv[:4], b); err == nil {
		t.Error("short pivots accepted")
	}
}

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(-1, 2); err == nil {
		t.Error("negative rows accepted")
	}
}

func TestFactorFlops(t *testing.T) {
	// N=40704: 2/3 N^3 + 2 N^2 = 4.496e13.
	got := FactorFlops(40704)
	want := 2.0/3.0*math.Pow(40704, 3) + 2*math.Pow(40704, 2)
	if got != want {
		t.Errorf("flops = %v, want %v", got, want)
	}
}

// Property: for random well-conditioned systems of any small size and any
// block size, the factorisation validates by the HPL residual criterion.
func TestFactorResidualProperty(t *testing.T) {
	prop := func(seed int64, nRaw, nbRaw uint8) bool {
		n := 8 + int(nRaw)%120
		nb := 1 + int(nbRaw)%(n)
		a, b, err := RandomSystem(n, seed)
		if err != nil {
			return false
		}
		lu := a.Clone()
		piv, err := Factor(lu, nb)
		if err != nil {
			return false
		}
		x, err := Solve(lu, piv, b)
		if err != nil {
			return false
		}
		res, err := Residual(a, x, b)
		if err != nil {
			return false
		}
		return res < 16
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
