package hpl

import (
	"math"
	"testing"

	"montecimone/internal/netsim"
	"montecimone/internal/sim"
	"montecimone/internal/soc"
)

// paperConfig is the HPL configuration of Section V-A.
func paperConfig(nodes int) Config {
	return Config{N: 40704, NB: 192, Nodes: nodes}
}

// fig2GFlops holds the average attained throughput labels of Fig. 2.
var fig2GFlops = []float64{1.86, 3.50, 5.13, 6.63, 7.86, 9.54, 10.81, 12.65}

func TestDefaultGrid(t *testing.T) {
	tests := []struct{ ranks, p, q int }{
		{4, 2, 2}, {8, 2, 4}, {12, 3, 4}, {16, 4, 4},
		{20, 4, 5}, {24, 4, 6}, {28, 4, 7}, {32, 4, 8}, {1, 1, 1}, {7, 1, 7},
	}
	for _, tt := range tests {
		p, q := DefaultGrid(tt.ranks)
		if p != tt.p || q != tt.q {
			t.Errorf("DefaultGrid(%d) = %dx%d, want %dx%d", tt.ranks, p, q, tt.p, tt.q)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 0, NB: 192, Nodes: 1},
		{N: 40704, NB: 0, Nodes: 1},
		{N: 100, NB: 192, Nodes: 1},
		{N: 40704, NB: 192, Nodes: 0},
		{N: 40704, NB: 192, Nodes: 1, RanksPerNode: -1},
		{N: 40704, NB: 192, Nodes: 1, P: 3, Q: 3}, // 9 != 4 ranks
	}
	for i, cfg := range bad {
		if _, err := Simulate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSingleNodePaperPoint(t *testing.T) {
	// Section V-A: 1.86 +- 0.04 GFLOP/s, 46.5 % of the 4 GFLOP/s peak,
	// total runtime 24105 +- 587 s.
	r, err := Simulate(paperConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.GFlops-1.86)/1.86 > 0.03 {
		t.Errorf("single-node GFlops = %.3f, want 1.86 +-3%%", r.GFlops)
	}
	if math.Abs(r.Efficiency-0.465) > 0.015 {
		t.Errorf("efficiency = %.3f, want ~0.465", r.Efficiency)
	}
	if math.Abs(r.Seconds-24105)/24105 > 0.035 {
		t.Errorf("runtime = %.0f s, want ~24105", r.Seconds)
	}
}

func TestFullMachinePaperPoint(t *testing.T) {
	// Section V-A: 12.65 +- 0.52 GFLOP/s on 8 nodes (runtime 3548 +- 136 s),
	// 39.5 % of machine peak, 85 % of linear scaling.
	r, err := Simulate(paperConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.GFlops-12.65)/12.65 > 0.05 {
		t.Errorf("8-node GFlops = %.3f, want 12.65 +-5%%", r.GFlops)
	}
	if math.Abs(r.Efficiency-0.395) > 0.02 {
		t.Errorf("8-node efficiency = %.3f, want ~0.395", r.Efficiency)
	}
	single, err := Simulate(paperConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	linearFraction := r.GFlops / (8 * single.GFlops)
	if math.Abs(linearFraction-0.85) > 0.05 {
		t.Errorf("fraction of linear scaling = %.3f, want ~0.85", linearFraction)
	}
}

func TestFig2ScalingShape(t *testing.T) {
	// Every Fig. 2 point within 8 %, monotone increasing throughput,
	// decreasing efficiency beyond one node.
	prevG := 0.0
	for nodes := 1; nodes <= 8; nodes++ {
		r, err := Simulate(paperConfig(nodes))
		if err != nil {
			t.Fatal(err)
		}
		want := fig2GFlops[nodes-1]
		if math.Abs(r.GFlops-want)/want > 0.08 {
			t.Errorf("nodes=%d GFlops = %.3f, want %.2f +-8%%", nodes, r.GFlops, want)
		}
		if r.GFlops <= prevG {
			t.Errorf("throughput not increasing at %d nodes", nodes)
		}
		prevG = r.GFlops
	}
}

func TestComparisonMachinesEfficiency(t *testing.T) {
	// Section V-A: Marconi100 59.7 %, Armida 65.79 % of single-node
	// CPU-only peak with the same vanilla stack.
	tests := []struct {
		machine *soc.Machine
		want    float64
	}{
		{soc.Marconi100(), 0.597},
		{soc.Armida(), 0.6579},
	}
	for _, tt := range tests {
		r, err := Simulate(Config{
			N: 40704, NB: 192, Nodes: 1,
			RanksPerNode: tt.machine.Cores, Machine: tt.machine,
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Efficiency-tt.want)/tt.want > 0.02 {
			t.Errorf("%s efficiency = %.4f, want %.4f +-2%%", tt.machine.Name, r.Efficiency, tt.want)
		}
	}
	// Ordering: Armida > Marconi100 > Monte Cimone, as in the paper.
	mc, _ := Simulate(paperConfig(1))
	m100, _ := Simulate(Config{N: 40704, NB: 192, Nodes: 1, RanksPerNode: 32, Machine: soc.Marconi100()})
	arm, _ := Simulate(Config{N: 40704, NB: 192, Nodes: 1, RanksPerNode: 64, Machine: soc.Armida()})
	if !(arm.Efficiency > m100.Efficiency && m100.Efficiency > mc.Efficiency) {
		t.Errorf("efficiency ordering broken: %v %v %v", mc.Efficiency, m100.Efficiency, arm.Efficiency)
	}
}

func TestLookaheadHelps(t *testing.T) {
	cfg := paperConfig(8)
	base, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Lookahead = true
	la, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if la.Seconds >= base.Seconds {
		t.Errorf("lookahead did not reduce runtime: %v >= %v", la.Seconds, base.Seconds)
	}
}

func TestWorkingInfinibandHelps(t *testing.T) {
	// Interconnect ablation: with functional FDR RDMA the 8-node run
	// approaches linear scaling.
	gbe, err := Simulate(paperConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	ib := netsim.InfinibandFDRWorking()
	fast, err := Simulate(Config{N: 40704, NB: 192, Nodes: 8, Link: &ib})
	if err != nil {
		t.Fatal(err)
	}
	if fast.GFlops < gbe.GFlops*1.03 {
		t.Errorf("IB speedup over GbE = %.3f, want > 1.03", fast.GFlops/gbe.GFlops)
	}
	// With RDMA the communication share of the critical path collapses;
	// the residual scaling loss is panel work and block-cyclic imbalance.
	if fast.CommSeconds > gbe.CommSeconds*0.1 {
		t.Errorf("IB comm time %v not well below GbE %v", fast.CommSeconds, gbe.CommSeconds)
	}
}

func TestBlockSizeSweepHasInteriorOptimum(t *testing.T) {
	// NB ablation: tiny blocks pay panel/latency costs, huge blocks lose
	// blocking efficiency; NB=192 should beat both extremes.
	small, err := Simulate(Config{N: 8192, NB: 8, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := Simulate(Config{N: 8192, NB: 192, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	huge, err := Simulate(Config{N: 8192, NB: 4096, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !(mid.GFlops > small.GFlops) {
		t.Errorf("NB=192 (%.2f) not better than NB=8 (%.2f)", mid.GFlops, small.GFlops)
	}
	if !(mid.GFlops > huge.GFlops) {
		t.Errorf("NB=192 (%.2f) not better than NB=4096 (%.2f)", mid.GFlops, huge.GFlops)
	}
}

func TestComputeCommSplit(t *testing.T) {
	r, err := Simulate(paperConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if r.CommSeconds <= 0 {
		t.Error("no communication time on 8 nodes")
	}
	if r.ComputeSeconds <= 0 || r.ComputeSeconds+r.CommSeconds < r.Seconds*0.99 {
		t.Errorf("split inconsistent: compute %v + comm %v vs total %v", r.ComputeSeconds, r.CommSeconds, r.Seconds)
	}
	one, err := Simulate(paperConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if one.CommSeconds > one.Seconds*0.01 {
		t.Errorf("single node comm share too high: %v of %v", one.CommSeconds, one.Seconds)
	}
}

func TestRepeatStats(t *testing.T) {
	// The paper reports 24105 +- 587 s single node and 3548 +- 136 s on
	// eight nodes over 10 repetitions (2-4 % relative spread).
	rng := sim.NewRNG(1)
	stats, err := Repeat(paperConfig(1), 10, rng, "hpl.reps")
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Samples) != 10 {
		t.Fatalf("samples = %d", len(stats.Samples))
	}
	rel := stats.StdSeconds / stats.MeanSeconds
	if rel < 0.005 || rel > 0.06 {
		t.Errorf("relative spread = %.4f, want 2-4%% regime", rel)
	}
	if math.Abs(stats.MeanSeconds-stats.Base.Seconds)/stats.Base.Seconds > 0.05 {
		t.Errorf("mean %v far from base %v", stats.MeanSeconds, stats.Base.Seconds)
	}
	// Determinism.
	again, err := Repeat(paperConfig(1), 10, sim.NewRNG(1), "hpl.reps")
	if err != nil {
		t.Fatal(err)
	}
	for i := range stats.Samples {
		if stats.Samples[i] != again.Samples[i] {
			t.Fatal("repeat not deterministic")
		}
	}
}

func TestRepeatValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := Repeat(paperConfig(1), 0, rng, "s"); err == nil {
		t.Error("zero reps accepted")
	}
	if _, err := Repeat(paperConfig(1), 5, nil, "s"); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := Repeat(Config{}, 5, rng, "s"); err == nil {
		t.Error("invalid config accepted")
	}
}
