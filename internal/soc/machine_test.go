package soc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogueValid(t *testing.T) {
	for _, m := range []*Machine{FU740(), Marconi100(), Armida()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestFU740Peaks(t *testing.T) {
	m := FU740()
	if got := m.PeakNodeFlops(); got != 4.0e9 {
		t.Errorf("node peak = %v, want 4 GFLOP/s", got)
	}
	if m.PeakDDRBandwidth != 7760e6 {
		t.Errorf("peak DDR = %v, want 7760 MB/s", m.PeakDDRBandwidth)
	}
	if m.PrefetchStreams != 8 {
		t.Errorf("prefetch streams = %d, want 8", m.PrefetchStreams)
	}
	if m.BitmanipSupported && m.BitmanipEmitted {
		t.Error("GCC 10.3 must not emit bitmanip on the FU740 model")
	}
}

func TestValidateRejectsBrokenMachines(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Machine)
	}{
		{"no name", func(m *Machine) { m.Name = "" }},
		{"zero cores", func(m *Machine) { m.Cores = 0 }},
		{"zero clock", func(m *Machine) { m.ClockHz = 0 }},
		{"zero peak", func(m *Machine) { m.PeakFlopsPerCore = 0 }},
		{"zero ddr", func(m *Machine) { m.PeakDDRBandwidth = 0 }},
		{"bad dgemm eff", func(m *Machine) { m.DGEMMEfficiency = 1.5 }},
		{"bad stream base", func(m *Machine) { m.StreamDDRBase = 0 }},
		{"missing shape", func(m *Machine) { delete(m.StreamKernelShape, StreamTriad) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := FU740()
			tt.mutate(m)
			if err := m.Validate(); err == nil {
				t.Error("Validate accepted a broken machine")
			}
		})
	}
}

func TestStreamKernelString(t *testing.T) {
	want := map[StreamKernel]string{
		StreamCopy:  "copy",
		StreamScale: "scale",
		StreamAdd:   "add",
		StreamTriad: "triad",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if got := StreamKernel(99).String(); got != "StreamKernel(99)" {
		t.Errorf("unknown kernel String = %q", got)
	}
}

func TestStreamTableVDDR(t *testing.T) {
	// Table V, DDR-resident column (1945.5 MiB working set), MB/s.
	m := FU740()
	want := map[StreamKernel]float64{
		StreamCopy:  1206,
		StreamScale: 1025,
		StreamAdd:   1124,
		StreamTriad: 1122,
	}
	set := int64(1945.5 * 1024 * 1024)
	for k, mbps := range want {
		bw, err := m.StreamBandwidth(k, set, StreamOptions{Threads: 4})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		got := bw / 1e6
		if math.Abs(got-mbps)/mbps > 0.02 {
			t.Errorf("%s DDR bandwidth = %.0f MB/s, want %.0f (+-2%%)", k, got, mbps)
		}
	}
}

func TestStreamTableVL2(t *testing.T) {
	// Table V, L2-resident column (1.1 MiB working set), MB/s.
	m := FU740()
	want := map[StreamKernel]float64{
		StreamCopy:  7079,
		StreamScale: 3558,
		StreamAdd:   4380,
		StreamTriad: 4365,
	}
	setMiB := 1.1
	set := int64(setMiB * float64(1024*1024))
	for k, mbps := range want {
		bw, err := m.StreamBandwidth(k, set, StreamOptions{Threads: 4})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		got := bw / 1e6
		if math.Abs(got-mbps)/mbps > 0.001 {
			t.Errorf("%s L2 bandwidth = %.0f MB/s, want %.0f", k, got, mbps)
		}
	}
}

func TestStreamEfficiencyComparison(t *testing.T) {
	// Section V-A: copy-kernel DDR efficiency 15.5 % (MC), 48.2 % (M100),
	// 63.21 % (Armida).
	tests := []struct {
		machine *Machine
		want    float64
	}{
		{FU740(), 0.155},
		{Marconi100(), 0.482},
		{Armida(), 0.6321},
	}
	for _, tt := range tests {
		set := tt.machine.L2Bytes * 64 // comfortably DDR-resident
		bw, err := tt.machine.StreamBandwidth(StreamCopy, set, StreamOptions{})
		if err != nil {
			t.Fatalf("%s: %v", tt.machine.Name, err)
		}
		got := tt.machine.EfficiencyOfPeakDDR(bw)
		if math.Abs(got-tt.want)/tt.want > 0.02 {
			t.Errorf("%s copy efficiency = %.3f, want %.3f", tt.machine.Name, got, tt.want)
		}
	}
}

func TestStreamPrefetchKnob(t *testing.T) {
	m := FU740()
	set := int64(512 * MiB)
	base, err := m.StreamBandwidth(StreamTriad, set, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := m.StreamBandwidth(StreamTriad, set, StreamOptions{PrefetchUtilisation: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tuned <= base {
		t.Errorf("prefetcher utilisation did not raise bandwidth: %v <= %v", tuned, base)
	}
	if tuned > m.PeakDDRBandwidth {
		t.Errorf("modelled bandwidth %v exceeds peak %v", tuned, m.PeakDDRBandwidth)
	}
}

func TestStreamBitmanipKnob(t *testing.T) {
	m := FU740()
	set := int64(512 * MiB)
	base, _ := m.StreamBandwidth(StreamCopy, set, StreamOptions{})
	bm, _ := m.StreamBandwidth(StreamCopy, set, StreamOptions{Bitmanip: true})
	if bm <= base {
		t.Error("bitmanip emission should improve DDR-bound STREAM on the FU740")
	}
	// Machines whose toolchain already emits bitmanip see no extra gain.
	a := Armida()
	ab, _ := a.StreamBandwidth(StreamCopy, set, StreamOptions{})
	ab2, _ := a.StreamBandwidth(StreamCopy, set, StreamOptions{Bitmanip: true})
	if ab != ab2 {
		t.Error("bitmanip knob must be a no-op where the toolchain already emits it")
	}
}

func TestStreamThreadScaling(t *testing.T) {
	m := FU740()
	set := int64(512 * MiB)
	prev := 0.0
	for threads := 1; threads <= 4; threads++ {
		bw, err := m.StreamBandwidth(StreamCopy, set, StreamOptions{Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		if bw <= prev {
			t.Errorf("bandwidth not increasing with threads: %d -> %v", threads, bw)
		}
		prev = bw
	}
}

func TestStreamCodeModelCap(t *testing.T) {
	m := FU740()
	capBytes := m.MaxStreamArrayBytes(StreamOptions{})
	if capBytes != 2*GiB/3 {
		t.Errorf("medany per-array cap = %d, want %d", capBytes, 2*GiB/3)
	}
	uncapped := m.MaxStreamArrayBytes(StreamOptions{LargeCodeModel: true})
	if uncapped <= capBytes {
		t.Error("large code model should lift the cap")
	}
	a := Armida()
	if a.MaxStreamArrayBytes(StreamOptions{}) == capBytes {
		t.Error("aarch64 machine must not inherit the medany cap")
	}
}

func TestStreamBandwidthErrors(t *testing.T) {
	m := FU740()
	if _, err := m.StreamBandwidth(StreamKernel(0), 1024, StreamOptions{}); err == nil {
		t.Error("invalid kernel accepted")
	}
	if _, err := m.StreamBandwidth(StreamCopy, 0, StreamOptions{}); err == nil {
		t.Error("zero working set accepted")
	}
}

func TestDGEMMTimeLargeBlockEfficiency(t *testing.T) {
	m := FU740()
	n := 2048
	tm := m.DGEMMTime(n, n, n)
	eff := DGEMMFlops(n, n, n) / tm / m.PeakNodeFlops()
	if math.Abs(eff-m.DGEMMEfficiency) > 1e-9 {
		t.Errorf("large dgemm efficiency = %v, want %v", eff, m.DGEMMEfficiency)
	}
}

func TestDGEMMTimeSkinnyPenalty(t *testing.T) {
	m := FU740()
	big := m.DGEMMTime(2048, 2048, 2048)
	effBig := DGEMMFlops(2048, 2048, 2048) / big / m.PeakNodeFlops()
	skinny := m.DGEMMTime(2048, 8, 2048)
	effSkinny := DGEMMFlops(2048, 8, 2048) / skinny / m.PeakNodeFlops()
	if effSkinny >= effBig {
		t.Errorf("skinny dgemm efficiency %v not below blocked %v", effSkinny, effBig)
	}
	if effSkinny < m.PanelEfficiency {
		t.Errorf("skinny dgemm efficiency %v below panel floor %v", effSkinny, m.PanelEfficiency)
	}
}

func TestKernelTimesNonNegativeProperty(t *testing.T) {
	m := FU740()
	prop := func(a, b, c uint16) bool {
		rows, cols, inner := int(a)%4096, int(b)%4096, int(c)%4096
		times := []float64{
			m.DGEMMTime(rows, cols, inner),
			m.PanelFactorTime(rows, cols%512),
			m.TRSMTime(cols%512, rows),
			m.RowSwapTime(cols%512, rows),
		}
		for _, tm := range times {
			if tm < 0 || math.IsNaN(tm) || math.IsInf(tm, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDGEMMTimeMonotoneInSizeProperty(t *testing.T) {
	m := FU740()
	prop := func(a uint8) bool {
		n := 64 + int(a)
		return m.DGEMMTime(n+1, n+1, n+1) > m.DGEMMTime(n, n, n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroDimensionsZeroTime(t *testing.T) {
	m := FU740()
	if m.DGEMMTime(0, 10, 10) != 0 || m.PanelFactorTime(0, 4) != 0 ||
		m.TRSMTime(0, 4) != 0 || m.RowSwapTime(0, 4) != 0 || m.MemTime(0) != 0 {
		t.Error("zero-size kernels must take zero time")
	}
}
