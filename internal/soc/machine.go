// Package soc models the compute SoCs characterised in the Monte Cimone
// paper: the SiFive Freedom U740 (the cluster's node processor) plus the two
// comparison machines, an IBM Power9 node (Marconi100 at CINECA) and a
// Marvell ThunderX2 node (Armida at E4).
//
// The models are analytical: a machine is described by its architectural
// peaks (FPU throughput, DRAM bandwidth, cache geometry — all taken from the
// figures the paper itself cites from the U74-MC core complex manual) plus a
// small set of calibrated sustained-efficiency parameters representing what
// the paper's *vanilla, unoptimised* Spack-deployed software stack attains
// on each microarchitecture. The calibration constants are documented next
// to each machine constructor and recorded in EXPERIMENTS.md; the model
// structure (roofline-style compute/memory laws, prefetcher and code-model
// knobs) is what the ablation benchmarks exercise.
package soc

import "fmt"

// ISA identifies the instruction-set architecture of a machine.
type ISA string

// Instruction-set architectures appearing in the paper's comparison.
const (
	ISARiscV64 ISA = "rv64gcb" // RV64GCB application cores (U74)
	ISAPower   ISA = "ppc64le" // IBM Power9 (Marconi100)
	ISAArm64   ISA = "aarch64" // Marvell ThunderX2 (Armida)
)

// StreamKernel enumerates the four STREAM benchmark kernels.
type StreamKernel int

// The STREAM kernels in Table V order.
const (
	StreamCopy StreamKernel = iota + 1
	StreamScale
	StreamAdd
	StreamTriad
)

// String returns the lower-case STREAM kernel name.
func (k StreamKernel) String() string {
	switch k {
	case StreamCopy:
		return "copy"
	case StreamScale:
		return "scale"
	case StreamAdd:
		return "add"
	case StreamTriad:
		return "triad"
	default:
		return fmt.Sprintf("StreamKernel(%d)", int(k))
	}
}

// StreamKernels lists all four kernels in Table V order.
var StreamKernels = []StreamKernel{StreamCopy, StreamScale, StreamAdd, StreamTriad}

// Machine describes one node's processor complex: architectural peaks plus
// calibrated sustained efficiencies of the unoptimised software stack.
type Machine struct {
	// Name is the human-readable machine name ("Monte Cimone", ...).
	Name string
	// Node hostname prefix used by cluster assembly ("mc", "m100", "armida").
	HostPrefix string
	// ISA of the application cores.
	ISA ISA
	// Microarch is the archspec-style microarchitecture label.
	Microarch string

	// Cores is the number of application cores per node.
	Cores int
	// ClockHz is the nominal core clock.
	ClockHz float64
	// PeakFlopsPerCore is the double-precision peak per core in FLOP/s.
	// For the FU740 the paper infers 1.0 GFLOP/s/core from the
	// micro-architecture specification.
	PeakFlopsPerCore float64

	// L1DBytes and L2Bytes give per-core L1D and shared L2 capacities.
	L1DBytes int64
	L2Bytes  int64
	// CacheLineBytes is the cache line size.
	CacheLineBytes int
	// PrefetchStreams is the number of hardware prefetch streams per core
	// (the U74 L2 prefetcher tracks up to eight).
	PrefetchStreams int

	// PeakDDRBandwidth is the peak main-memory bandwidth in bytes/s
	// (7760 MB/s for the FU740 per its manual).
	PeakDDRBandwidth float64
	// DDRBytes is the installed main memory per node.
	DDRBytes int64

	// DGEMMEfficiency is the calibrated fraction of FPU peak that the
	// unoptimised BLAS dgemm attains for large blocked matrix multiply.
	// HPL's overall efficiency emerges from this plus the time spent in
	// panel factorisation, swaps and communication.
	DGEMMEfficiency float64
	// PanelEfficiency is the fraction of FPU peak attained in the mostly
	// memory-bound, short-vector panel factorisation (DGETF2/DTRSM region).
	PanelEfficiency float64

	// StreamDDRBase is the calibrated fraction of peak DDR bandwidth the
	// copy kernel sustains with the prefetcher in its measured (untuned)
	// state; the per-kernel shape factors below modulate it.
	StreamDDRBase float64
	// StreamKernelShape scales StreamDDRBase per kernel (copy is 1.0).
	StreamKernelShape map[StreamKernel]float64
	// StreamL2Bandwidth is the sustained bandwidth (bytes/s) per kernel for
	// an L2-resident working set (Table V right column for the FU740).
	StreamL2Bandwidth map[StreamKernel]float64
	// PrefetchHeadroom is the additional fraction of peak DDR bandwidth a
	// fully effective prefetcher would add on top of StreamDDRBase; the
	// prefetcher ablation sweeps utilisation from the measured baseline
	// towards this bound.
	PrefetchHeadroom float64

	// MaxStaticDataBytes caps statically allocated benchmark data; the
	// RV64 medany code model requires linked symbols within +-2 GiB of pc,
	// which limits the upstream STREAM working set. Zero means no limit.
	MaxStaticDataBytes int64

	// BitmanipSupported reports whether the Zba/Zbb extensions exist in
	// hardware; BitmanipEmitted whether the deployed toolchain can emit
	// them (GCC 10.3 cannot; GCC 12 adds minimal support).
	BitmanipSupported bool
	BitmanipEmitted   bool
}

// PeakNodeFlops returns the node's double-precision peak in FLOP/s.
func (m *Machine) PeakNodeFlops() float64 {
	return float64(m.Cores) * m.PeakFlopsPerCore
}

// Validate checks internal consistency of the machine description.
func (m *Machine) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("soc: machine missing name")
	case m.Cores <= 0:
		return fmt.Errorf("soc: machine %s: cores must be positive", m.Name)
	case m.ClockHz <= 0:
		return fmt.Errorf("soc: machine %s: clock must be positive", m.Name)
	case m.PeakFlopsPerCore <= 0:
		return fmt.Errorf("soc: machine %s: peak flops must be positive", m.Name)
	case m.PeakDDRBandwidth <= 0:
		return fmt.Errorf("soc: machine %s: peak DDR bandwidth must be positive", m.Name)
	case m.DGEMMEfficiency <= 0 || m.DGEMMEfficiency > 1:
		return fmt.Errorf("soc: machine %s: dgemm efficiency %v out of (0,1]", m.Name, m.DGEMMEfficiency)
	case m.StreamDDRBase <= 0 || m.StreamDDRBase > 1:
		return fmt.Errorf("soc: machine %s: stream base efficiency %v out of (0,1]", m.Name, m.StreamDDRBase)
	}
	for _, k := range StreamKernels {
		if m.StreamKernelShape[k] <= 0 {
			return fmt.Errorf("soc: machine %s: missing stream shape for %s", m.Name, k)
		}
	}
	return nil
}

const (
	// GiB and MiB are byte-size helpers.
	GiB = int64(1) << 30
	MiB = int64(1) << 20
)

// FU740 returns the SiFive Freedom U740 model: four U74 RV64GCB application
// cores at 1.2 GHz, 2 MiB shared L2, one DDR4-1866 channel (7760 MB/s peak),
// 16 GiB per node. Calibration: HPL sustains 1.86 GFLOP/s (46.5 % of the
// 4 GFLOP/s node peak) and the upstream STREAM copy kernel 1206 MB/s
// (15.5 % of peak DDR bandwidth); see EXPERIMENTS.md.
func FU740() *Machine {
	return &Machine{
		Name:             "Monte Cimone",
		HostPrefix:       "mc",
		ISA:              ISARiscV64,
		Microarch:        "u74mc",
		Cores:            4,
		ClockHz:          1.2e9,
		PeakFlopsPerCore: 1.0e9,
		L1DBytes:         32 * 1024,
		L2Bytes:          2 * MiB,
		CacheLineBytes:   64,
		PrefetchStreams:  8,
		PeakDDRBandwidth: 7760e6,
		DDRBytes:         16 * GiB,

		// Calibrated so the blocked-LU model lands on the measured
		// 1.86 GFLOP/s single-node HPL (N=40704, NB=192).
		DGEMMEfficiency: 0.502,
		PanelEfficiency: 0.068,

		// Table V DDR rows: copy 1206, scale 1025, add 1124, triad 1122
		// MB/s out of 7760 MB/s peak.
		StreamDDRBase: 0.1554, // copy: 1206/7760
		StreamKernelShape: map[StreamKernel]float64{
			StreamCopy:  1.0,
			StreamScale: 0.850, // 1025/1206
			StreamAdd:   0.932, // 1124/1206
			StreamTriad: 0.930, // 1122/1206
		},
		// Table V L2 rows (1.1 MiB working set), bytes/s.
		StreamL2Bandwidth: map[StreamKernel]float64{
			StreamCopy:  7079e6,
			StreamScale: 3558e6,
			StreamAdd:   4380e6,
			StreamTriad: 4365e6,
		},
		// With eight tracked streams per core the prefetcher should cover
		// most of the DDR latency; the paper attributes the 15.5 % result
		// to the prefetcher not being exploited. Headroom calibrated so a
		// fully-tuned stack reaches the comparison machines' range.
		PrefetchHeadroom: 0.45,

		MaxStaticDataBytes: 2 * GiB, // medany code model limit
		BitmanipSupported:  true,
		BitmanipEmitted:    false, // GCC 10.3.0 + binutils 2.36.1
	}
}

// Marconi100 returns the IBM Power9 comparison node (CPU portion only, as in
// the paper's CPU-only peak baseline): 2 sockets x 16 cores at 2.6 GHz with
// 2 x 8-wide DP FMA pipes per core. Calibrated to the paper's 59.7 % HPL and
// 48.2 % STREAM efficiencies for the same vanilla Spack stack.
func Marconi100() *Machine {
	return &Machine{
		Name:             "Marconi100",
		HostPrefix:       "m100",
		ISA:              ISAPower,
		Microarch:        "power9le",
		Cores:            32,
		ClockHz:          2.6e9,
		PeakFlopsPerCore: 20.8e9, // 8 DP flops/cycle at 2.6 GHz
		L1DBytes:         32 * 1024,
		L2Bytes:          8 * MiB,
		CacheLineBytes:   128,
		PrefetchStreams:  16,
		PeakDDRBandwidth: 340e9, // 8 channels DDR4-2666, two sockets
		DDRBytes:         256 * GiB,

		DGEMMEfficiency: 0.685,
		PanelEfficiency: 0.30,

		StreamDDRBase: 0.482,
		StreamKernelShape: map[StreamKernel]float64{
			StreamCopy:  1.0,
			StreamScale: 0.97,
			StreamAdd:   0.99,
			StreamTriad: 1.0,
		},
		StreamL2Bandwidth: map[StreamKernel]float64{
			StreamCopy:  480e9,
			StreamScale: 430e9,
			StreamAdd:   450e9,
			StreamTriad: 455e9,
		},
		PrefetchHeadroom: 0.25,

		BitmanipSupported: true,
		BitmanipEmitted:   true,
	}
}

// Armida returns the Marvell ThunderX2 comparison node: 2 sockets x 32
// cores at 2.2 GHz, NEON 128-bit FMA (4 DP flops/cycle). Calibrated to the
// paper's 65.79 % HPL and 63.21 % STREAM efficiencies.
func Armida() *Machine {
	return &Machine{
		Name:             "Armida",
		HostPrefix:       "armida",
		ISA:              ISAArm64,
		Microarch:        "thunderx2",
		Cores:            64,
		ClockHz:          2.2e9,
		PeakFlopsPerCore: 8.8e9, // 4 DP flops/cycle at 2.2 GHz
		L1DBytes:         32 * 1024,
		L2Bytes:          256 * 1024,
		CacheLineBytes:   64,
		PrefetchStreams:  8,
		PeakDDRBandwidth: 317e9, // 2 x 8 channels DDR4-2666
		DDRBytes:         256 * GiB,

		DGEMMEfficiency: 0.767,
		PanelEfficiency: 0.35,

		StreamDDRBase: 0.6321,
		StreamKernelShape: map[StreamKernel]float64{
			StreamCopy:  1.0,
			StreamScale: 0.98,
			StreamAdd:   0.99,
			StreamTriad: 1.0,
		},
		StreamL2Bandwidth: map[StreamKernel]float64{
			StreamCopy:  700e9,
			StreamScale: 620e9,
			StreamAdd:   650e9,
			StreamTriad: 655e9,
		},
		PrefetchHeadroom: 0.15,

		BitmanipSupported: true,
		BitmanipEmitted:   true,
	}
}
