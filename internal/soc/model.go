package soc

import (
	"fmt"
	"math"
)

// This file contains the analytical kernel-time laws used by the benchmark
// drivers. Times are in seconds of virtual machine time.

// DGEMMFlops returns the floating-point operation count of an m x n x k
// general matrix multiply-accumulate (C += A*B).
func DGEMMFlops(m, n, k int) float64 {
	return 2 * float64(m) * float64(n) * float64(k)
}

// DGEMMTime models the execution time of an m x n x k dgemm spread over all
// cores of the node. Large blocked multiplies run at DGEMMEfficiency of the
// node's FPU peak; small or skinny shapes degrade towards PanelEfficiency
// because blocking cannot amortise memory traffic.
func (m *Machine) DGEMMTime(rows, cols, inner int) float64 {
	return m.DGEMMTimeOn(m.Cores, rows, cols, inner)
}

// DGEMMTimeOn is DGEMMTime restricted to a subset of cores (an MPI rank
// owning a single core uses cores = 1).
func (m *Machine) DGEMMTimeOn(cores, rows, cols, inner int) float64 {
	if rows <= 0 || cols <= 0 || inner <= 0 || cores <= 0 {
		return 0
	}
	flops := DGEMMFlops(rows, cols, inner)
	eff := m.DGEMMEfficiency * m.shapeFactor(rows, cols, inner)
	return flops / (float64(cores) * m.PeakFlopsPerCore * eff)
}

// shapeFactor penalises skinny multiplies: the efficiency of a blocked
// dgemm falls when the smallest dimension drops below the blocking size the
// unoptimised BLAS uses (~64 on the in-order U74).
func (m *Machine) shapeFactor(rows, cols, inner int) float64 {
	minDim := float64(rows)
	if float64(cols) < minDim {
		minDim = float64(cols)
	}
	if float64(inner) < minDim {
		minDim = float64(inner)
	}
	const kneeDim = 64.0
	if minDim >= kneeDim {
		return 1.0
	}
	// Linear ramp from the memory-bound panel regime up to full blocking.
	low := m.PanelEfficiency / m.DGEMMEfficiency
	return low + (1.0-low)*(minDim/kneeDim)
}

// PanelFactorTime models the time of an unblocked partially-pivoted panel
// factorisation (DGETF2) of a tall rows x nb panel. The kernel is
// memory-latency bound on the in-order cores, captured by PanelEfficiency.
func (m *Machine) PanelFactorTime(rows, nb int) float64 {
	return m.PanelFactorTimeOn(m.Cores, rows, nb)
}

// PanelFactorTimeOn is PanelFactorTime restricted to a subset of cores.
func (m *Machine) PanelFactorTimeOn(cores, rows, nb int) float64 {
	if rows <= 0 || nb <= 0 || cores <= 0 {
		return 0
	}
	// DGETF2 flop count for an r x nb panel: sum over columns of the
	// rank-1 updates, ~ r*nb^2 - nb^3/3.
	r, b := float64(rows), float64(nb)
	flops := r*b*b - b*b*b/3
	if flops <= 0 {
		flops = r * b
	}
	return flops / (float64(cores) * m.PeakFlopsPerCore * m.PanelEfficiency)
}

// TRSMTime models a triangular solve with nb right-hand sides against an
// nb x nb unit-lower-triangular block, applied to an nb x cols slab.
func (m *Machine) TRSMTime(nb, cols int) float64 {
	return m.TRSMTimeOn(m.Cores, nb, cols)
}

// TRSMTimeOn is TRSMTime restricted to a subset of cores.
func (m *Machine) TRSMTimeOn(cores, nb, cols int) float64 {
	if nb <= 0 || cols <= 0 || cores <= 0 {
		return 0
	}
	flops := float64(nb) * float64(nb) * float64(cols)
	eff := m.DGEMMEfficiency * m.shapeFactor(nb, cols, nb)
	return flops / (float64(cores) * m.PeakFlopsPerCore * eff)
}

// RowSwapTime models the cost of exchanging nb pivot rows of the given
// width (elements) through main memory (2 reads + 2 writes per element).
func (m *Machine) RowSwapTime(nb, width int) float64 {
	if nb <= 0 || width <= 0 {
		return 0
	}
	bytes := 4 * 8 * float64(nb) * float64(width)
	return bytes / m.sustainedDDRBandwidth(StreamCopy, StreamOptions{Threads: m.Cores})
}

// MemTime models a bulk main-memory transfer of the given bytes at the
// sustained copy bandwidth.
func (m *Machine) MemTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes / m.sustainedDDRBandwidth(StreamCopy, StreamOptions{Threads: m.Cores})
}

// StreamOptions captures the tuning state of a STREAM run; the defaults
// reproduce the paper's upstream, unmodified benchmark.
type StreamOptions struct {
	// Threads is the number of OpenMP threads (paper: one per core).
	Threads int
	// PrefetchUtilisation in [0,1] scales the prefetcher's contribution on
	// top of the measured baseline towards PrefetchHeadroom. The measured
	// upstream state corresponds to 0.
	PrefetchUtilisation float64
	// Bitmanip reports whether the toolchain emits Zba/Zbb addressing
	// sequences (GCC 12 + binutils 2.37); it trims index-arithmetic
	// overhead on the in-order cores.
	Bitmanip bool
	// LargeCodeModel lifts the medany +-2 GiB static-data cap via the
	// vendor's large-code-model workaround.
	LargeCodeModel bool
}

// normalise applies defaults.
func (o StreamOptions) normalise(m *Machine) StreamOptions {
	if o.Threads <= 0 {
		o.Threads = m.Cores
	}
	if o.PrefetchUtilisation < 0 {
		o.PrefetchUtilisation = 0
	}
	if o.PrefetchUtilisation > 1 {
		o.PrefetchUtilisation = 1
	}
	return o
}

// MaxStreamArrayBytes returns the largest per-array STREAM allocation the
// toolchain permits: upstream STREAM uses three statically sized arrays in
// one translation unit, so the medany code model caps their *sum* at 2 GiB
// unless the large-code-model workaround is applied.
func (m *Machine) MaxStreamArrayBytes(opts StreamOptions) int64 {
	if m.MaxStaticDataBytes == 0 || opts.LargeCodeModel {
		return math.MaxInt64
	}
	return m.MaxStaticDataBytes / 3
}

// sustainedDDRBandwidth returns the modelled DDR-resident bandwidth for a
// kernel in bytes/s.
func (m *Machine) sustainedDDRBandwidth(k StreamKernel, opts StreamOptions) float64 {
	opts = opts.normalise(m)
	base := m.StreamDDRBase * m.StreamKernelShape[k]
	// Prefetcher contribution: latent headroom scaled by utilisation.
	eff := base + m.PrefetchHeadroom*opts.PrefetchUtilisation*m.StreamKernelShape[k]
	if opts.Bitmanip && !m.BitmanipEmitted {
		// Zba sh*add addressing removes a dependent ALU op per element on
		// the dual-issue in-order pipe; small but measurable gain.
		eff *= 1.06
	}
	// Thread scaling: a single in-order core cannot cover DRAM latency by
	// itself; concurrency saturates by ~4 threads.
	frac := float64(opts.Threads) / float64(m.Cores)
	if frac > 1 {
		frac = 1
	}
	scale := frac * (2 - frac) // concave ramp, 1.0 at full threads
	bw := m.PeakDDRBandwidth * eff * scale
	if bw > m.PeakDDRBandwidth {
		bw = m.PeakDDRBandwidth
	}
	return bw
}

// StreamBandwidth returns the modelled sustained bandwidth (bytes/s) for a
// kernel over a working set of the given total bytes. Sets that fit in L2
// run at the measured L2 bandwidths; DDR-resident sets at the DDR law.
func (m *Machine) StreamBandwidth(k StreamKernel, workingSetBytes int64, opts StreamOptions) (float64, error) {
	if k < StreamCopy || k > StreamTriad {
		return 0, fmt.Errorf("soc: unknown stream kernel %d", int(k))
	}
	if workingSetBytes <= 0 {
		return 0, fmt.Errorf("soc: working set must be positive, got %d", workingSetBytes)
	}
	opts = opts.normalise(m)
	if workingSetBytes <= m.L2Bytes {
		bw := m.StreamL2Bandwidth[k]
		// L2-resident runs are compute-limited, not concurrency-limited;
		// scale roughly linearly with threads.
		return bw * float64(opts.Threads) / float64(m.Cores), nil
	}
	return m.sustainedDDRBandwidth(k, opts), nil
}

// EfficiencyOfPeakDDR converts a bandwidth in bytes/s into a fraction of
// the machine's peak DDR bandwidth.
func (m *Machine) EfficiencyOfPeakDDR(bw float64) float64 {
	return bw / m.PeakDDRBandwidth
}
