package accel

import (
	"math"
	"testing"

	"montecimone/internal/soc"
)

func TestCardValidation(t *testing.T) {
	if err := (*Card)(nil).Validate(); err == nil {
		t.Error("nil card accepted")
	}
	good := VectorCard()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []func(*Card){
		func(c *Card) { c.Name = "" },
		func(c *Card) { c.PeakFlops = 0 },
		func(c *Card) { c.DGEMMEfficiency = 2 },
		func(c *Card) { c.MemBandwidthBps = 0 },
		func(c *Card) { c.PCIeBps = -1 },
		func(c *Card) { c.ActiveWatts = c.IdleWatts - 1 },
	}
	for i, mutate := range tests {
		c := VectorCard()
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDGEMMTimeRegimes(t *testing.T) {
	c := VectorCard()
	// Small multiply: PCIe transfer dominates.
	smallFlops := soc.DGEMMFlops(256, 256, 64)
	small := c.DGEMMTime(256, 256, 64)
	if small <= smallFlops/(c.PeakFlops*c.DGEMMEfficiency) {
		t.Error("small offload not transfer-bound")
	}
	// Large square multiply: compute dominates.
	big := c.DGEMMTime(8192, 8192, 8192)
	bigFlops := soc.DGEMMFlops(8192, 8192, 8192)
	want := bigFlops / (c.PeakFlops * c.DGEMMEfficiency)
	if math.Abs(big-want)/want > 1e-9 {
		t.Errorf("large offload = %v, want compute-bound %v", big, want)
	}
	if c.DGEMMTime(0, 1, 1) != 0 {
		t.Error("zero shape nonzero time")
	}
}

func TestProjectHPLSpeedsUpLargeProblems(t *testing.T) {
	machine := soc.FU740()
	card := VectorCard()
	proj, err := ProjectHPL(machine, card, 40704, 192)
	if err != nil {
		t.Fatal(err)
	}
	// The host single node runs ~1.9 GFLOP/s; the card should lift the
	// node by an order of magnitude at the paper's problem size.
	if proj.Speedup < 5 {
		t.Errorf("speedup = %.2f, want substantial offload gain", proj.Speedup)
	}
	if proj.AccelGFlops <= proj.HostGFlops {
		t.Error("no acceleration")
	}
	// At the paper's problem size the square updates amortise the C-tile
	// round trips: the card's FPU is the limit.
	if proj.Bound != "compute" {
		t.Errorf("bound = %s, want compute at N=40704", proj.Bound)
	}
}

func TestProjectHPLSmallProblemGainsLess(t *testing.T) {
	machine := soc.FU740()
	card := VectorCard()
	small, err := ProjectHPL(machine, card, 2048, 128)
	if err != nil {
		t.Fatal(err)
	}
	large, err := ProjectHPL(machine, card, 16384, 192)
	if err != nil {
		t.Fatal(err)
	}
	if small.Speedup >= large.Speedup {
		t.Errorf("small-problem speedup %.2f not below large %.2f", small.Speedup, large.Speedup)
	}
	// Small problems pay the x8 link: the offload crossover.
	if small.Bound != "pcie" {
		t.Errorf("small-problem bound = %s, want pcie", small.Bound)
	}
}

func TestProjectHPLValidation(t *testing.T) {
	if _, err := ProjectHPL(nil, VectorCard(), 1024, 64); err == nil {
		t.Error("nil machine accepted")
	}
	if _, err := ProjectHPL(soc.FU740(), nil, 1024, 64); err == nil {
		t.Error("nil card accepted")
	}
	if _, err := ProjectHPL(soc.FU740(), VectorCard(), 0, 64); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ProjectHPL(soc.FU740(), VectorCard(), 64, 128); err == nil {
		t.Error("nb>n accepted")
	}
}

func TestNodeWatts(t *testing.T) {
	c := VectorCard()
	if c.NodeWatts(0) != c.IdleWatts {
		t.Error("idle watts")
	}
	if c.NodeWatts(1) != c.ActiveWatts {
		t.Error("active watts")
	}
	if c.NodeWatts(-1) != c.IdleWatts || c.NodeWatts(2) != c.ActiveWatts {
		t.Error("clamping")
	}
	mid := c.NodeWatts(0.5)
	if mid <= c.IdleWatts || mid >= c.ActiveWatts {
		t.Error("interpolation")
	}
}
