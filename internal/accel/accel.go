// Package accel models the PCIe RISC-V accelerator expansion the paper
// lists as future work (Section VI item v): the RV007 blade was built
// "with abundant power headroom for future expansions with hardware
// accelerators and PCIe network card connector", and the FU740 exposes a
// PCIe Gen 3 root complex limited to x8 lanes.
//
// The model projects what a vector accelerator card (in the spirit of the
// EPI/Manticore-class RISC-V designs the paper cites) does to the node's
// HPL throughput: the trailing-matrix DGEMM updates move to the card, the
// panel factorisation stays on the host, and the PCIe link carries the
// panel and update tiles. The projection exposes the classic offload
// crossover: small problems drown in transfer latency, large problems ride
// the card's FPU.
package accel

import (
	"fmt"

	"montecimone/internal/soc"
)

// PCIe Gen 3 x8 effective payload bandwidth (the Unmatched slot is
// physically x16 but wired x8).
const PCIeGen3x8Bps = 7.88e9

// Card describes a PCIe accelerator.
type Card struct {
	// Name labels the card.
	Name string
	// PeakFlops is the card's double-precision peak.
	PeakFlops float64
	// DGEMMEfficiency is the sustained fraction of peak on blocked
	// multiplies.
	DGEMMEfficiency float64
	// MemBandwidthBps is the on-card memory bandwidth.
	MemBandwidthBps float64
	// PCIeBps is the host link payload bandwidth.
	PCIeBps float64
	// IdleWatts and ActiveWatts bound the card's power draw.
	IdleWatts, ActiveWatts float64
}

// Validate checks the card description.
func (c *Card) Validate() error {
	switch {
	case c == nil:
		return fmt.Errorf("accel: nil card")
	case c.Name == "":
		return fmt.Errorf("accel: card missing name")
	case c.PeakFlops <= 0:
		return fmt.Errorf("accel: card %s: peak must be positive", c.Name)
	case c.DGEMMEfficiency <= 0 || c.DGEMMEfficiency > 1:
		return fmt.Errorf("accel: card %s: dgemm efficiency %v out of (0,1]", c.Name, c.DGEMMEfficiency)
	case c.MemBandwidthBps <= 0 || c.PCIeBps <= 0:
		return fmt.Errorf("accel: card %s: bandwidths must be positive", c.Name)
	case c.ActiveWatts < c.IdleWatts || c.IdleWatts < 0:
		return fmt.Errorf("accel: card %s: implausible power bounds", c.Name)
	}
	return nil
}

// VectorCard returns a plausible first-generation RISC-V vector
// accelerator: 256 GFLOP/s DP peak (a Manticore-class chiplet design),
// 64 GB/s HBM-lite memory, 25 W active.
func VectorCard() *Card {
	return &Card{
		Name:            "rvv-accel",
		PeakFlops:       256e9,
		DGEMMEfficiency: 0.70,
		MemBandwidthBps: 64e9,
		PCIeBps:         PCIeGen3x8Bps,
		IdleWatts:       8,
		ActiveWatts:     25,
	}
}

// DGEMMTime models an offloaded m x n x k multiply: tiles of A, B stream
// over PCIe, compute runs at the card's sustained rate, and the slower of
// transfer and compute bounds the kernel (double-buffered overlap).
func (c *Card) DGEMMTime(m, n, k int) float64 {
	if m <= 0 || n <= 0 || k <= 0 {
		return 0
	}
	flops := soc.DGEMMFlops(m, n, k)
	compute := flops / (c.PeakFlops * c.DGEMMEfficiency)
	// Transfers: A (m x k), B (k x n) in; C (m x n) out and back in for
	// the accumulate.
	bytes := 8 * (float64(m)*float64(k) + float64(k)*float64(n) + 2*float64(m)*float64(n))
	transfer := bytes / c.PCIeBps
	if transfer > compute {
		return transfer
	}
	return compute
}

// HPLProjection is the outcome of projecting HPL onto host + card.
type HPLProjection struct {
	// HostGFlops is the unaccelerated result; AccelGFlops with the card.
	HostGFlops  float64
	AccelGFlops float64
	// Speedup is the ratio; Bound names the limiting resource of the
	// offloaded updates ("pcie" or "compute").
	Speedup float64
	Bound   string
}

// ProjectHPL projects a single-node HPL run (order n, block nb) with the
// trailing updates offloaded to the card. The panel factorisation and row
// swaps stay on the host cores.
func ProjectHPL(machine *soc.Machine, card *Card, n, nb int) (*HPLProjection, error) {
	if machine == nil {
		return nil, fmt.Errorf("accel: nil machine")
	}
	if err := card.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 || nb <= 0 || nb > n {
		return nil, fmt.Errorf("accel: invalid problem %d/%d", n, nb)
	}
	var hostTotal, accelTotal float64
	var pcieBound, computeBound int
	numPanels := (n + nb - 1) / nb
	for k := 0; k < numPanels; k++ {
		gk := k * nb
		nk := n - gk
		jb := nb
		if nk < jb {
			jb = nk
		}
		rem := nk - jb
		panel := machine.PanelFactorTime(nk, jb)
		hostUpdate := machine.DGEMMTime(rem, rem, jb) + machine.TRSMTime(jb, rem)
		hostTotal += panel + hostUpdate
		if rem > 0 {
			accelUpdate := card.DGEMMTime(rem, rem, jb)
			flops := soc.DGEMMFlops(rem, rem, jb)
			if accelUpdate > flops/(card.PeakFlops*card.DGEMMEfficiency)+1e-15 {
				pcieBound++
			} else {
				computeBound++
			}
			accelTotal += panel + accelUpdate + machine.TRSMTime(jb, rem)
		} else {
			accelTotal += panel
		}
	}
	flops := 2.0/3.0*float64(n)*float64(n)*float64(n) + 2*float64(n)*float64(n)
	proj := &HPLProjection{
		HostGFlops:  flops / hostTotal / 1e9,
		AccelGFlops: flops / accelTotal / 1e9,
	}
	proj.Speedup = proj.AccelGFlops / proj.HostGFlops
	proj.Bound = "compute"
	if pcieBound > computeBound {
		proj.Bound = "pcie"
	}
	return proj, nil
}

// NodeWatts returns the card's contribution to node power at the given
// utilisation in [0,1].
func (c *Card) NodeWatts(utilisation float64) float64 {
	if utilisation < 0 {
		utilisation = 0
	}
	if utilisation > 1 {
		utilisation = 1
	}
	return c.IdleWatts + (c.ActiveWatts-c.IdleWatts)*utilisation
}
