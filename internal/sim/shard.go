package sim

import "sync"

// Sharded execution: conservative lookahead windows with a parallel
// prepare / serial commit protocol.
//
// The engine never runs two event callbacks concurrently — callbacks
// execute strictly in (time, sequence) order exactly as the serial loop
// does, which is what makes a fixed seed produce byte-identical reports
// and event logs at any shard count. What runs in parallel is the
// expensive part the callbacks would otherwise do first thing serially:
// integrating per-node model state (Euler thermal steps, counter
// advances) up to the event instant. The loop:
//
//  1. collects a window: events popped in order up to the minimum declared
//     lookahead span, stopping at (and including) the first barrier — any
//     event not declared shard-affine — or the first event with a key too
//     close to a state transition to prepare off-loop;
//  2. builds a prepare plan: for every shard key touched by the window,
//     the instant of its FIRST touching event (later touches are synced
//     serially by the callbacks themselves, exactly as in a serial run);
//  3. fans the plan out over shard workers (key mod shard count) which
//     prefetch each key's state to exactly its first-touch instant;
//  4. commits the window serially: buffered events interleaved with any
//     events scheduled meanwhile, in (time, sequence) order.
//
// Determinism argument. A prepared key is integrated to exactly the
// instant its first touching event would have integrated it to (the
// callback's own lazy sync then degenerates to a no-op), so the set of
// integration instants per node — which the Euler grid, the quiescent
// relaxation and the EWMA updates are all sensitive to — is identical to
// the serial schedule. Three rules close the remaining holes:
//
//   - barriers terminate windows, so an event that may cancel other
//     events, redistribute power caps or start jobs can never invalidate
//     a later event of its own window (there is none);
//   - keys failing the preparer's safety check (a boot completion or
//     thermal-trip deadline within one base step of the event) also
//     terminate the window and are integrated serially, so state
//     transitions only ever fire during the window's last event or on the
//     serial loop between windows;
//   - the window span is capped at the minimum declared lookahead, and
//     every subsystem's self-rescheduling latency (watchdog replans at >=
//     one integration step, workload phases and telemetry periods far
//     above it) is at least that bound — so events scheduled during a
//     window land beyond it, and a committed window executes exactly the
//     event set it prepared.
//
// Affine contract (ScheduleAtAffine/ScheduleAfterAffine): the callback's
// keys must cover every shard key whose model state it integrates or
// mutates, it must not cancel events other than ones it scheduled itself,
// and any events it schedules must not precede the current instant.
// Cross-shard interactions — scheduler decisions, MPI collectives
// resolving at phase boundaries, power-plane cap redistribution, campaign
// arrivals — stay plain (barrier) events, optionally with prepare keys
// (ScheduleAtPrepared) when their touched set is known at scheduling time.

// maxWindowEvents bounds the window buffer (memory guard; windows this
// large only occur in telemetry-dense monitored runs).
const maxWindowEvents = 4096

// prep is one prepare-plan entry: integrate key's state to virtual time at.
type prep struct {
	key int
	at  float64
}

// prepPool is a set of persistent shard workers for one run. Workers live
// for the duration of a Run/RunUntil call (runSharded closes them on the
// way out), so per-window fan-out costs one channel send per shard.
type prepPool struct {
	prepare func(key int, at float64)
	work    chan []prep
	wg      sync.WaitGroup
}

func newPrepPool(workers int, prepare func(key int, at float64)) *prepPool {
	p := &prepPool{prepare: prepare, work: make(chan []prep, workers)}
	for i := 0; i < workers; i++ {
		go func() {
			for batch := range p.work {
				for _, w := range batch {
					p.prepare(w.key, w.at)
				}
				p.wg.Done()
			}
		}()
	}
	return p
}

// run dispatches the non-empty batches and waits for all of them.
func (p *prepPool) run(batches [][]prep) {
	n := 0
	for _, b := range batches {
		if len(b) > 0 {
			n++
		}
	}
	if n == 0 {
		return
	}
	p.wg.Add(n)
	for _, b := range batches {
		if len(b) > 0 {
			p.work <- b
		}
	}
	p.wg.Wait()
}

func (p *prepPool) close() { close(p.work) }

// runSharded is the windowed run loop (both Run and RunUntil dispatch here
// when sharding is active). bounded selects RunUntil semantics: stop
// before events beyond horizon and leave the clock there.
func (e *Engine) runSharded(horizon float64, bounded bool) error {
	e.stopped = false
	pool := newPrepPool(e.shards, e.prepare)
	defer pool.close()
	for {
		e.sweepTombstones()
		if e.queue.Len() == 0 {
			break
		}
		if bounded && e.queue.Peek().at > horizon {
			break
		}
		e.collectWindow(horizon, bounded)
		e.prepareWindow(pool)
		if err := e.drainWindow(); err != nil {
			e.sweepTombstones()
			return err
		}
	}
	if bounded && horizon > e.now {
		e.now = horizon
	}
	return nil
}

// collectWindow pops the next lookahead window into the buffer: events in
// (time, sequence) order within the span bound, up to and including the
// first barrier or the first event with an unpreparable key.
func (e *Engine) collectWindow(horizon float64, bounded bool) {
	e.win = e.win[:0]
	e.winPos = 0
	end := e.queue.Peek().at + e.span
	if bounded && horizon < end {
		end = horizon
	}
	for e.queue.Len() > 0 && len(e.win) < maxWindowEvents {
		ev := e.queue.Peek()
		if ev.cancelled {
			e.release(e.queue.Pop())
			continue
		}
		if ev.at > end {
			break
		}
		e.queue.Pop()
		e.win = append(e.win, ev)
		if !ev.affine || !e.keysSafe(ev) {
			break
		}
	}
}

// keysSafe reports whether every key of ev can be prepared off-loop at its
// instant (no state transition within reach). An unsafe key makes the
// event window-terminal; the preparer itself re-checks and skips such keys,
// leaving their integration to the serial commit.
func (e *Engine) keysSafe(ev *Event) bool {
	for _, k := range ev.keys {
		if !e.prepSafe(k, ev.at) {
			return false
		}
	}
	return true
}

// prepareWindow builds the first-touch plan over the buffered events and
// fans it out across the shard workers. Plans with a single key skip the
// pool. Distinct keys own distinct state, so cross-worker completion order
// is irrelevant; within a worker, keys prepare in plan (time) order.
func (e *Engine) prepareWindow(pool *prepPool) {
	if e.seen == nil {
		e.seen = make(map[int]bool)
	}
	plan := e.plan[:0]
	for _, ev := range e.win {
		for _, k := range ev.keys {
			if !e.seen[k] {
				e.seen[k] = true
				plan = append(plan, prep{key: k, at: ev.at})
			}
		}
	}
	e.plan = plan
	for _, p := range plan {
		delete(e.seen, p.key)
	}
	e.windows++
	e.windowed += uint64(len(e.win))
	e.prepared += uint64(len(plan))
	switch len(plan) {
	case 0:
		return
	case 1:
		e.prepare(plan[0].key, plan[0].at)
		return
	}
	if len(e.shard) < e.shards {
		e.shard = make([][]prep, e.shards)
	}
	batches := e.shard[:e.shards]
	for i := range batches {
		batches[i] = batches[i][:0]
	}
	for _, p := range plan {
		s := p.key % e.shards
		if s < 0 {
			s += e.shards
		}
		batches[s] = append(batches[s], p)
	}
	for i := range batches {
		e.shard[i] = batches[i]
	}
	pool.run(batches)
}

// drainWindow commits the window serially: buffered events interleaved by
// (time, sequence) with anything scheduled meanwhile, skipping events
// cancelled since collection.
func (e *Engine) drainWindow() error {
	for e.winPos < len(e.win) {
		ev := e.win[e.winPos]
		if ev.cancelled {
			e.winPos++
			e.release(ev)
			continue
		}
		if e.queue.Len() > 0 {
			h := e.queue.Peek()
			if h.cancelled {
				e.release(e.queue.Pop())
				continue
			}
			if h.at < ev.at || (h.at == ev.at && h.seq < ev.seq) {
				e.queue.Pop()
				e.fire(h)
				if e.stopped {
					return e.stopMidWindow()
				}
				continue // re-check ev: the callback may have cancelled it
			}
		}
		e.winPos++
		e.fire(ev)
		if e.stopped {
			return e.stopMidWindow()
		}
	}
	e.win = e.win[:0]
	e.winPos = 0
	return nil
}

// stopMidWindow re-queues the live remainder of the window buffer and
// drops its tombstones (the terminal cancelled-event drain: a stopped run
// must leave Pending counting live events only), then reports the stop.
func (e *Engine) stopMidWindow() error {
	for _, ev := range e.win[e.winPos:] {
		if ev.cancelled {
			e.release(ev)
			continue
		}
		ev.queue = &e.queue
		e.queue.Push(ev)
	}
	e.win = e.win[:0]
	e.winPos = 0
	return ErrStopped
}
