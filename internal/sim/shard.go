package sim

import (
	"math"
	"sync"
)

// Sharded execution: conservative lookahead windows with per-shard
// COMMITTED execution — parallel prepare AND parallel local callbacks,
// merged into a serial commit.
//
// The observable behaviour never changes: for a fixed seed the engine
// produces byte-identical reports and event logs at any shard count,
// because every side effect is applied on the serial loop in strict
// (time, sequence) order. What runs in parallel per window:
//
//   - state PREPARE, as since the first sharded engine: per-key model
//     state (Euler thermal steps, counter advances) integrated to each
//     key's first-touch instant on shard workers;
//   - LOCAL event callbacks (Schedule*Local): events whose keys map to a
//     single shard and whose effects stay within it execute entirely on
//     that shard's worker, writing side effects (schedules, cancels,
//     deferred publishes) into the shard's effect buffer. The commit then
//     walks the window in (time, sequence) order and REPLAYS each
//     worker-executed event's buffered ops at its exact serial position.
//
// The loop per window:
//
//  1. collect: pop events in order up to the minimum declared lookahead
//     span, stopping at (and including) the first barrier — any event not
//     declared shard-affine — or the first event with a key too close to
//     a state transition to integrate off-loop;
//  2. partition: walk the window in order and mark each LOCAL event for
//     worker execution unless a demotion rule applies (below); every
//     serially-executing event POISONS its keys, demoting later locals
//     that share them;
//  3. build the first-touch prepare plan (unchanged);
//  4. parallel phase: each shard worker runs its prepare batch, then its
//     local events in window order, buffering effects;
//  5. commit: walk the window interleaved with the queue in (time,
//     sequence) order; worker-executed events replay their effect buffers,
//     everything else fires on the loop exactly as before.
//
// Demotion rules (any one forces serial execution and poisons the keys):
//
//   - not a local event (plain barriers, affine prepare-only events);
//   - keys span more than one shard (the event's state crosses workers;
//     SetKeySpan's block mapping keeps contiguous allocations on one);
//   - a key was poisoned by an earlier serial event of the same window
//     (the local would observe state that serial event has not yet
//     mutated — or mutate state it has not yet read);
//   - the event sits exactly at the window end (ev.at == end): the
//     one-base-step transition margin below needs strict inequality;
//   - a recurring local whose period is below the window span (its next
//     occurrence could land inside this very window);
//   - the window has no finite span (no declared lookahead), or the event
//     is the unsafe-keyed terminal.
//
// Transition safety for worker-side execution. A local callback may
// lazily sync its node across the window (mutators observe the clock via
// Engine.KeyNow). No state transition can fire on a worker because:
// pre-window state passed the preparer's safety probe (next deadline
// strictly beyond the event instant plus one base step), and any
// mid-window mutation by an EARLIER same-shard local at t' re-arms the
// deadline to >= t' + base >= window start + base >= window end > ev.at
// (window span <= base because the cluster declares its integration step
// as a lookahead bound, and ev.at < end by the boundary demotion rule).
// Transitions therefore only ever fire during the window's serial tail or
// between windows — exactly as in the prepare-only engine.
//
// Ordering safety for buffered effects. Events scheduled by a local
// callback land at or beyond the window end (each subsystem's
// self-rescheduling latency is at least its declared lookahead), so no
// buffered schedule can precede an event that already executed on a
// worker; the commit enforces this with the winParMax panic guard
// (local.go). Buffered cancels only target the callback's own events
// (affine contract), which are either in its own buffer or beyond the
// window. Defer effects touch serial-domain state only (telemetry,
// logs) and replay at the event's commit position, preserving broker
// and storage ingest order exactly.
//
// Affine contract (ScheduleAtAffine/ScheduleAfterAffine): the callback's
// keys must cover every shard key whose model state it integrates or
// mutates, it must not cancel events other than ones it scheduled itself,
// and any events it schedules must not precede the current instant.
// Local events (Schedule*Local) add the effect-routing contract in
// local.go. Cross-shard interactions — scheduler decisions, MPI
// collectives resolving at phase boundaries, power-plane cap
// redistribution, campaign arrivals, fault injections — stay plain
// (barrier) events, optionally with prepare keys (ScheduleAtPrepared)
// when their touched set is known at scheduling time.

// maxWindowEvents bounds the window buffer (memory guard; windows this
// large only occur in telemetry-dense monitored runs).
const maxWindowEvents = 4096

// prep is one prepare-plan entry: integrate key's state to virtual time at.
type prep struct {
	key int
	at  float64
}

// winMeta is one window event's execution record: whether it ran on a
// shard worker, which shard, and the half-open op range it wrote into
// that shard's effect buffer. Workers write the op range of their own
// events only (distinct slice elements), the loop reads after the join.
type winMeta struct {
	par        bool
	shard      int32
	opLo, opHi int32
}

// shardPool is the set of persistent shard workers for one run. Workers
// live for the duration of a Run/RunUntil call (runSharded closes them on
// the way out), so per-window fan-out costs one channel send per active
// shard. Each worker message is a shard index; the worker runs that
// shard's prepare batch and local event queue (Engine.runShardWork).
type shardPool struct {
	eng  *Engine
	work chan int
	wg   sync.WaitGroup
}

func newShardPool(e *Engine) *shardPool {
	p := &shardPool{eng: e, work: make(chan int, e.shards)}
	for i := 0; i < e.shards; i++ {
		go func() {
			for s := range p.work {
				p.eng.runShardWork(s)
				p.wg.Done()
			}
		}()
	}
	return p
}

// run dispatches the active shards and waits for all of them.
func (p *shardPool) run(active []int) {
	p.wg.Add(len(active))
	for _, s := range active {
		p.work <- s
	}
	p.wg.Wait()
}

func (p *shardPool) close() { close(p.work) }

// runShardWork executes one shard's window work on a worker goroutine:
// first the prepare batch (each key integrated to its first-touch
// instant), then the shard's local events in window order, recording each
// event's effect-buffer range. Everything it touches is either owned by
// this shard's keys or written into per-shard structures the loop reads
// only after the join.
func (e *Engine) runShardWork(s int) {
	for _, w := range e.shard[s] {
		e.prepare(w.key, w.at)
	}
	p := e.procs[s]
	for _, wi := range e.lq[s] {
		ev := e.win[wi]
		p.now = ev.at
		lo := int32(len(p.ops))
		ev.lfn(p)
		e.winMeta[wi].opLo, e.winMeta[wi].opHi = lo, int32(len(p.ops))
	}
}

// runSharded is the windowed run loop (both Run and RunUntil dispatch here
// when sharding is active). bounded selects RunUntil semantics: stop
// before events beyond horizon and leave the clock there.
func (e *Engine) runSharded(horizon float64, bounded bool) error {
	e.stopped = false
	if len(e.procs) < e.shards {
		e.procs = make([]*Proc, e.shards)
		for i := range e.procs {
			e.procs[i] = &Proc{eng: e, shard: i}
		}
	}
	pool := newShardPool(e)
	defer pool.close()
	for {
		e.sweepTombstones()
		if e.queue.Len() == 0 {
			break
		}
		if bounded && e.queue.Peek().at > horizon {
			break
		}
		e.collectWindow(horizon, bounded)
		par := e.partitionWindow()
		e.planWindow()
		e.dispatchWindow(pool, par)
		err := e.drainWindow()
		for _, p := range e.procs {
			p.ops = p.ops[:0]
			// Re-stock the shard's event stash from the serial free list,
			// one recycled Event per stash miss: the stash converges on the
			// shard's per-window schedule volume and worker-side scheduling
			// stops allocating.
			for p.misses > 0 && len(e.freeList) > 0 {
				n := len(e.freeList) - 1
				p.stash = append(p.stash, e.freeList[n])
				e.freeList[n] = nil
				e.freeList = e.freeList[:n]
				p.misses--
			}
			p.misses = 0
		}
		if err != nil {
			e.sweepTombstones()
			return err
		}
	}
	if bounded && horizon > e.now {
		e.now = horizon
	}
	return nil
}

// collectWindow pops the next lookahead window into the buffer: events in
// (time, sequence) order within the span bound, up to and including the
// first barrier or the first event with an unpreparable key.
func (e *Engine) collectWindow(horizon float64, bounded bool) {
	e.win = e.win[:0]
	e.winPos = 0
	e.winTailUnsafe = false
	end := e.queue.Peek().at + e.span
	if bounded && horizon < end {
		end = horizon
	}
	e.winEnd = end
	for e.queue.Len() > 0 && len(e.win) < maxWindowEvents {
		ev := e.queue.Peek()
		if ev.cancelled {
			e.release(e.queue.Pop())
			continue
		}
		if ev.at > end {
			break
		}
		e.queue.Pop()
		e.win = append(e.win, ev)
		if !ev.affine {
			break
		}
		if !e.keysSafe(ev) {
			e.winTailUnsafe = true
			break
		}
	}
}

// keysSafe reports whether every key of ev can be prepared off-loop at its
// instant (no state transition within reach). An unsafe key makes the
// event window-terminal; the preparer itself re-checks and skips such keys,
// leaving their integration to the serial commit.
func (e *Engine) keysSafe(ev *Event) bool {
	for _, k := range ev.keys {
		if !e.prepSafe(k, ev.at) {
			return false
		}
	}
	return true
}

// partitionWindow assigns each window event an execution mode (see the
// demotion rules in the package comment), building the per-shard local
// run queues. Returns the number of worker-executable events.
func (e *Engine) partitionWindow() int {
	if cap(e.winMeta) < len(e.win) {
		e.winMeta = make([]winMeta, len(e.win))
	}
	e.winMeta = e.winMeta[:len(e.win)]
	for i := range e.winMeta {
		e.winMeta[i] = winMeta{}
	}
	if len(e.lq) < e.shards {
		e.lq = make([][]int, e.shards)
	}
	for i := range e.lq {
		e.lq[i] = e.lq[i][:0]
	}
	if e.poison == nil {
		e.poison = make(map[int]bool)
	}
	e.winParMax = math.Inf(-1)
	finiteSpan := !math.IsInf(e.span, 1)
	par := 0
	for wi, ev := range e.win {
		ok := finiteSpan && ev.lfn != nil && len(ev.keys) > 0 &&
			ev.at < e.winEnd &&
			!(ev.period > 0 && ev.period < e.span) &&
			!(e.winTailUnsafe && wi == len(e.win)-1)
		s := 0
		if ok {
			s = e.shardOf(ev.keys[0])
			for _, k := range ev.keys {
				if e.shardOf(k) != s || e.poison[k] {
					ok = false
					break
				}
			}
		}
		if !ok {
			for _, k := range ev.keys {
				if !e.poison[k] {
					e.poison[k] = true
					e.poisoned = append(e.poisoned, k)
				}
			}
			continue
		}
		e.winMeta[wi] = winMeta{par: true, shard: int32(s)}
		e.lq[s] = append(e.lq[s], wi)
		par++
		if ev.at > e.winParMax {
			e.winParMax = ev.at
		}
	}
	for _, k := range e.poisoned {
		delete(e.poison, k)
	}
	e.poisoned = e.poisoned[:0]
	e.committed += uint64(par)
	return par
}

// planWindow builds the first-touch prepare plan over the buffered events
// and batches it by shard. Distinct keys own distinct state, so
// cross-worker completion order is irrelevant; within a worker, keys
// prepare in plan (time) order, before the shard's local events run.
func (e *Engine) planWindow() {
	if e.seen == nil {
		e.seen = make(map[int]bool)
	}
	plan := e.plan[:0]
	for _, ev := range e.win {
		for _, k := range ev.keys {
			if !e.seen[k] {
				e.seen[k] = true
				plan = append(plan, prep{key: k, at: ev.at})
			}
		}
	}
	e.plan = plan
	for _, p := range plan {
		delete(e.seen, p.key)
	}
	e.windows++
	e.windowed += uint64(len(e.win))
	e.prepared += uint64(len(plan))
	if len(e.shard) < e.shards {
		e.shard = make([][]prep, e.shards)
	}
	batches := e.shard[:e.shards]
	for i := range batches {
		batches[i] = batches[i][:0]
	}
	for _, p := range plan {
		s := e.shardOf(p.key)
		batches[s] = append(batches[s], p)
	}
	for i := range batches {
		e.shard[i] = batches[i]
	}
}

// dispatchWindow runs the parallel phase: every shard with a prepare
// batch or a local run queue executes on a worker (a single active shard
// runs inline on the loop — same code path, no channel hop). Windows with
// no local events and at most one prepare entry keep the historical
// short-circuit.
func (e *Engine) dispatchWindow(pool *shardPool, par int) {
	if par == 0 {
		switch len(e.plan) {
		case 0:
			return
		case 1:
			e.prepare(e.plan[0].key, e.plan[0].at)
			return
		}
	}
	active := e.active[:0]
	for s := 0; s < e.shards; s++ {
		if len(e.shard[s]) > 0 || len(e.lq[s]) > 0 {
			active = append(active, s)
		}
	}
	e.active = active
	if len(active) == 0 {
		return
	}
	// inPar flips the engine's key-routed clock and scheduling ports
	// (KeyNow, KeyPort) onto the per-shard Procs. It is written only here,
	// while every worker is idle; the pool's channel send/WaitGroup join
	// order the accesses.
	e.inPar = true
	if len(active) == 1 {
		e.runShardWork(active[0])
	} else {
		pool.run(active)
	}
	e.inPar = false
}

// drainWindow commits the window serially: buffered events interleaved by
// (time, sequence) with anything scheduled meanwhile. Worker-executed
// events replay their effect buffers at their exact serial position;
// everything else fires on the loop. Events cancelled since collection
// are skipped (a worker-executed event found cancelled is a contract
// violation — its callback already ran).
func (e *Engine) drainWindow() error {
	for e.winPos < len(e.win) {
		ev := e.win[e.winPos]
		m := &e.winMeta[e.winPos]
		if ev.cancelled {
			if m.par {
				panic("sim: committed local event " + ev.name + " cancelled mid-window (affine contract violation)")
			}
			e.winPos++
			e.release(ev)
			continue
		}
		if e.queue.Len() > 0 {
			h := e.queue.Peek()
			if h.cancelled {
				e.release(e.queue.Pop())
				continue
			}
			if h.at < ev.at || (h.at == ev.at && h.seq < ev.seq) {
				e.queue.Pop()
				e.fire(h)
				if e.stopped {
					return e.stopMidWindow()
				}
				continue // re-check ev: the callback may have cancelled it
			}
		}
		e.winPos++
		if m.par {
			e.commitLocal(ev, m)
		} else {
			e.fire(ev)
		}
		if e.stopped {
			return e.stopMidWindow()
		}
	}
	e.win = e.win[:0]
	e.winPos = 0
	return nil
}

// commitLocal applies one worker-executed event at its serial position:
// advance the clock, replay its buffered effects (which assigns sequence
// numbers exactly as the serial callback would have), then reschedule a
// live recurring event in place — the next occurrence taking its number
// AFTER the callback's own scheduling activity, exactly like fire.
func (e *Engine) commitLocal(ev *Event, m *winMeta) {
	e.now = ev.at
	e.executed++
	e.applyOps(e.procs[m.shard], m.opLo, m.opHi)
	if ev.period > 0 && !ev.cancelled {
		ev.at += ev.period
		ev.seq = e.seq
		e.seq++
		ev.queue = &e.queue
		e.queue.Push(ev)
		return
	}
	e.release(ev)
}

// stopMidWindow handles Engine.Stop during a window commit. Events whose
// callbacks already ran on workers have logically happened — their
// effects are applied (in window order) so no callback is ever executed
// twice or lost; events that have not fired are re-queued live, and
// tombstones are dropped (the terminal cancelled-event drain: a stopped
// run must leave Pending counting live events only).
func (e *Engine) stopMidWindow() error {
	for i, ev := range e.win[e.winPos:] {
		if ev.cancelled {
			e.release(ev)
			continue
		}
		if m := &e.winMeta[e.winPos+i]; m.par {
			e.commitLocal(ev, m)
			continue
		}
		ev.queue = &e.queue
		e.queue.Push(ev)
	}
	e.win = e.win[:0]
	e.winPos = 0
	return ErrStopped
}
