package sim

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// It is the building block for telemetry samplers (shunt monitors at 1 kHz,
// pmu_pub at 2 Hz, stats_pub at 0.2 Hz).
//
// A Ticker is a thin adapter over the engine's recurring-timer API
// (ScheduleEvery): one Event is scheduled at construction and rescheduled
// in place after every tick, so steady-state ticking allocates nothing.
// Tick times accumulate as at += period from the start instant — the same
// arithmetic the historical self-rescheduling implementation performed —
// so traces are byte-identical to it and drift-free.
type Ticker struct {
	h Handle
}

// NewTicker schedules fn every period seconds starting at start (absolute
// virtual time). The callback receives the tick's virtual time.
func NewTicker(engine *Engine, start, period float64, name string, fn func(now float64)) (*Ticker, error) {
	return newTicker(engine, start, period, name, nil, fn)
}

// NewAffineTicker is NewTicker for a callback that integrates only the
// model state owned by the given shard keys (a per-node telemetry sampler,
// keyed by its node). Affine ticks do not terminate lookahead windows and
// their keyed state is prepared concurrently; the publish side of the
// callback still runs serially like every callback. The engine keeps the
// keys slice; callers must not mutate it.
func NewAffineTicker(engine *Engine, start, period float64, name string, keys []int, fn func(now float64)) (*Ticker, error) {
	return newTicker(engine, start, period, name, keys, fn)
}

// NewLocalTicker is NewAffineTicker for a callback whose entire effect —
// state integration AND publishing — stays within the shard owning the
// given keys (per-node examon samplers, dtm governor steps). Local ticks
// execute fully on shard workers during a window's parallel phase; the
// callback receives the executing Proc so it can buffer serial-domain
// effects (broker publishes, log lines) with Proc.Defer, which replay at
// the tick's exact serial position. Under a serial engine (shards<=1) the
// Proc is the engine's direct context and behaviour is identical to
// NewAffineTicker.
func NewLocalTicker(engine *Engine, start, period float64, name string, keys []int, fn func(p *Proc, now float64)) (*Ticker, error) {
	h, err := engine.ScheduleEveryLocal(start, period, name, keys, func(p *Proc) { fn(p, p.Now()) })
	if err != nil {
		return nil, err
	}
	return &Ticker{h: h}, nil
}

func newTicker(engine *Engine, start, period float64, name string, keys []int, fn func(now float64)) (*Ticker, error) {
	tick := func(e *Engine) { fn(e.Now()) }
	var h Handle
	var err error
	if keys != nil {
		h, err = engine.ScheduleEveryAffine(start, period, name, keys, tick)
	} else {
		h, err = engine.ScheduleEvery(start, period, name, tick)
	}
	if err != nil {
		return nil, err
	}
	return &Ticker{h: h}, nil
}

// Stop cancels future ticks. Safe to call multiple times and from within
// the tick callback itself.
func (t *Ticker) Stop() { t.h.Cancel() }
