package sim

import "fmt"

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// It is the building block for telemetry samplers (shunt monitors at 1 kHz,
// pmu_pub at 2 Hz, stats_pub at 0.2 Hz).
type Ticker struct {
	engine *Engine
	period float64
	name   string
	fn     func(now float64)

	next    *Event
	stopped bool
}

// NewTicker schedules fn every period seconds starting at start (absolute
// virtual time). The callback receives the tick's virtual time.
func NewTicker(engine *Engine, start, period float64, name string, fn func(now float64)) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: ticker %q: period must be positive, got %v", name, period)
	}
	t := &Ticker{engine: engine, period: period, name: name, fn: fn}
	ev, err := engine.ScheduleAt(start, name, t.tick)
	if err != nil {
		return nil, err
	}
	t.next = ev
	return t, nil
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.next != nil {
		t.next.Cancel()
		t.next = nil
	}
}

func (t *Ticker) tick(e *Engine) {
	if t.stopped {
		return
	}
	t.fn(e.Now())
	if t.stopped { // fn may have called Stop
		return
	}
	ev, err := e.ScheduleAfter(t.period, t.name, t.tick)
	if err != nil {
		// Unreachable: period is validated positive and now only advances.
		panic(fmt.Sprintf("sim: ticker %q reschedule: %v", t.name, err))
	}
	t.next = ev
}
