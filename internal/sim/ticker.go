package sim

import "fmt"

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// It is the building block for telemetry samplers (shunt monitors at 1 kHz,
// pmu_pub at 2 Hz, stats_pub at 0.2 Hz).
type Ticker struct {
	engine *Engine
	period float64
	name   string
	fn     func(now float64)
	keys   []int // nil for barrier ticks; shard keys for affine ticks

	next    *Event
	stopped bool
}

// NewTicker schedules fn every period seconds starting at start (absolute
// virtual time). The callback receives the tick's virtual time.
func NewTicker(engine *Engine, start, period float64, name string, fn func(now float64)) (*Ticker, error) {
	return newTicker(engine, start, period, name, nil, fn)
}

// NewAffineTicker is NewTicker for a callback that integrates only the
// model state owned by the given shard keys (a per-node telemetry sampler,
// keyed by its node). Affine ticks do not terminate lookahead windows and
// their keyed state is prepared concurrently; the publish side of the
// callback still runs serially like every callback. The ticker keeps the
// keys slice; callers must not mutate it.
func NewAffineTicker(engine *Engine, start, period float64, name string, keys []int, fn func(now float64)) (*Ticker, error) {
	return newTicker(engine, start, period, name, keys, fn)
}

func newTicker(engine *Engine, start, period float64, name string, keys []int, fn func(now float64)) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: ticker %q: period must be positive, got %v", name, period)
	}
	t := &Ticker{engine: engine, period: period, name: name, keys: keys, fn: fn}
	ev, err := t.schedule(start)
	if err != nil {
		return nil, err
	}
	t.next = ev
	return t, nil
}

// schedule registers the next tick at absolute time at, keyed when affine.
func (t *Ticker) schedule(at float64) (*Event, error) {
	if t.keys != nil {
		return t.engine.ScheduleAtAffine(at, t.name, t.keys, t.tick)
	}
	return t.engine.ScheduleAt(at, t.name, t.tick)
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.next != nil {
		t.next.Cancel()
		t.next = nil
	}
}

func (t *Ticker) tick(e *Engine) {
	if t.stopped {
		return
	}
	t.fn(e.Now())
	if t.stopped { // fn may have called Stop
		return
	}
	ev, err := t.schedule(e.Now() + t.period)
	if err != nil {
		// Unreachable: period is validated positive and now only advances.
		panic(fmt.Sprintf("sim: ticker %q reschedule: %v", t.name, err))
	}
	t.next = ev
}
