package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []float64
	times := []float64{3, 1, 2, 1, 0, 5, 4}
	for _, at := range times {
		at := at
		if _, err := e.ScheduleAt(at, "ev", func(e *Engine) {
			got = append(got, at)
			if e.Now() != at {
				t.Errorf("clock %v at event scheduled for %v", e.Now(), at)
			}
		}); err != nil {
			t.Fatalf("ScheduleAt(%v): %v", at, err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Fatalf("executed %d events, want %d", len(got), len(times))
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := e.ScheduleAt(1.0, "same", func(*Engine) { got = append(got, i) }); err != nil {
			t.Fatalf("ScheduleAt: %v", err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := NewEngine()
	if _, err := e.ScheduleAt(5, "x", func(*Engine) {}); err != nil {
		t.Fatalf("ScheduleAt: %v", err)
	}
	if err := e.RunUntil(10); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if _, err := e.ScheduleAt(5, "past", func(*Engine) {}); err == nil {
		t.Fatal("scheduling in the past should fail")
	}
	if _, err := e.ScheduleAfter(-1, "neg", func(*Engine) {}); err == nil {
		t.Fatal("negative delay should fail")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	fired := false
	if _, err := e.ScheduleAt(2, "in", func(*Engine) { fired = true }); err != nil {
		t.Fatal(err)
	}
	late, err := e.ScheduleAt(20, "out", func(*Engine) { t.Error("event beyond horizon fired") })
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(10); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if !fired {
		t.Error("event within horizon did not fire")
	}
	if e.Now() != 10 {
		t.Errorf("clock = %v, want 10", e.Now())
	}
	late.Cancel()
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ev, err := e.ScheduleAt(1, "cancelled", func(*Engine) { t.Error("cancelled event fired") })
	if err != nil {
		t.Fatal(err)
	}
	ev.Cancel()
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Executed() != 0 {
		t.Errorf("executed %d events, want 0", e.Executed())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		at := float64(i)
		if _, err := e.ScheduleAt(at, "n", func(e *Engine) {
			count++
			if count == 3 {
				e.Stop()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestEventScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var order []string
	if _, err := e.ScheduleAt(1, "first", func(e *Engine) {
		order = append(order, "first")
		if _, err := e.ScheduleAfter(1, "child", func(*Engine) { order = append(order, "child") }); err != nil {
			t.Errorf("child schedule: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "child" {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 2 {
		t.Fatalf("clock = %v, want 2", e.Now())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []float64
	tk, err := NewTicker(e, 0.5, 0.25, "tick", func(now float64) { ticks = append(ticks, now) })
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(1.5); err != nil {
		t.Fatal(err)
	}
	tk.Stop()
	if err := e.RunUntil(3.0); err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.75, 1.0, 1.25, 1.5}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks[%d] = %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestTickerInvalidPeriod(t *testing.T) {
	e := NewEngine()
	if _, err := NewTicker(e, 0, 0, "bad", func(float64) {}); err == nil {
		t.Fatal("zero period should fail")
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk, err := NewTicker(e, 0, 1, "self-stop", func(float64) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

// Property: for any set of schedule times, execution order is a sorted
// permutation of the input.
func TestQueueOrderingProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		e := NewEngine()
		times := make([]float64, len(raw))
		for i, v := range raw {
			times[i] = float64(v) / 16.0
		}
		var got []float64
		for _, at := range times {
			at := at
			if _, err := e.ScheduleAt(at, "p", func(*Engine) { got = append(got, at) }); err != nil {
				return false
			}
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(got) != len(times) {
			return false
		}
		sorted := append([]float64(nil), times...)
		sort.Float64s(sorted)
		for i := range sorted {
			if got[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: heap pop sequence equals sorted insert sequence even with
// interleaved pushes and pops.
func TestHeapInterleavedProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var q eventQueue
		var inFlight []float64
		var popped []float64
		seq := uint64(0)
		steps := int(n) + 10
		for i := 0; i < steps; i++ {
			if q.Len() == 0 || r.Intn(3) > 0 {
				at := float64(r.Intn(1000))
				q.Push(&Event{at: at, seq: seq})
				seq++
				inFlight = append(inFlight, at)
			} else {
				popped = append(popped, q.Pop().at)
			}
		}
		for q.Len() > 0 {
			popped = append(popped, q.Pop().at)
		}
		sort.Float64s(inFlight)
		// Popped sequence must be a permutation of pushed values; each pop
		// must return a value <= any value popped later among those present.
		if len(popped) != len(inFlight) {
			return false
		}
		cp := append([]float64(nil), popped...)
		sort.Float64s(cp)
		for i := range cp {
			if cp[i] != inFlight[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Stream("x").Float64() != b.Stream("x").Float64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	// Different names must give different draws (overwhelmingly likely).
	c := NewRNG(42)
	if c.Stream("x").Float64() == c.Stream("y").Float64() {
		t.Fatal("independent streams returned identical first draw")
	}
}

func TestRNGStreamIsolation(t *testing.T) {
	// Draws on stream "a" must not perturb stream "b".
	r1 := NewRNG(7)
	_ = r1.Stream("a").Float64()
	v1 := r1.Stream("b").Float64()

	r2 := NewRNG(7)
	for i := 0; i < 1000; i++ {
		_ = r2.Stream("a").Float64()
	}
	v2 := r2.Stream("b").Float64()
	if v1 != v2 {
		t.Fatal("stream b perturbed by draws on stream a")
	}
}

func TestCancelledEventsCompactEagerly(t *testing.T) {
	// Regression: Cancel used to leave dead entries in the heap until
	// their timestamp aged to the front, so long runs with many
	// Ticker.Stop / Event.Cancel calls grew the queue without bound and
	// Pending() over-reported.
	e := NewEngine()
	var events []Handle
	for i := 0; i < 1000; i++ {
		ev, err := e.ScheduleAt(float64(i+1), "ev", func(*Engine) {})
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if e.Pending() != 1000 {
		t.Fatalf("Pending = %d, want 1000", e.Pending())
	}
	for i, ev := range events {
		if i%2 == 0 {
			ev.Cancel()
		}
	}
	if e.Pending() != 500 {
		t.Fatalf("Pending after cancelling half = %d, want 500 (live events only)", e.Pending())
	}
	for _, ev := range events {
		ev.Cancel()
		ev.Cancel() // idempotent
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after cancelling all = %d, want 0", e.Pending())
	}
	// Cancelled events never fire and the clock still reaches the horizon.
	if err := e.RunUntil(2000); err != nil {
		t.Fatal(err)
	}
	if e.Executed() != 0 {
		t.Fatalf("cancelled events executed: %d", e.Executed())
	}

	// The reschedule-heavy pattern (cancel + schedule in a loop, as the
	// cluster watchdogs and ticker stops do) must keep the queue flat.
	var watch Handle
	for i := 0; i < 10000; i++ {
		watch.Cancel()
		ev, err := e.ScheduleAfter(float64(i%7+1), "watch", func(*Engine) {})
		if err != nil {
			t.Fatal(err)
		}
		watch = ev
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending after reschedule loop = %d, want 1", e.Pending())
	}
}

func TestCancelHeapOrderPreserved(t *testing.T) {
	// Removing from the middle of the heap must keep execution ordered.
	e := NewEngine()
	var got []float64
	times := []float64{9, 3, 7, 1, 8, 2, 6, 4, 5, 10}
	events := make(map[float64]Handle)
	for _, at := range times {
		at := at
		ev, err := e.ScheduleAt(at, "ev", func(*Engine) { got = append(got, at) })
		if err != nil {
			t.Fatal(err)
		}
		events[at] = ev
	}
	events[1].Cancel()
	events[7].Cancel()
	events[10].Cancel()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("executed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("executed %v, want %v", got, want)
		}
	}
}
