package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is the reference model for eventQueue: the standard library's
// container/heap over the same (time, sequence) order. The hand-rolled heap
// must be observationally equivalent to it under any interleaving of
// pushes, pops and removals — that equivalence is what the property test
// below checks.
type refItem struct {
	at  float64
	seq uint64
	id  int
}

type refHeap []*refItem

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refItem)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// checkHeapInvariants verifies the structural contract Remove and the
// sharded run loop rely on: every queued event's index field names its slot,
// and every parent orders at-or-before its children.
func checkHeapInvariants(t *testing.T, q *eventQueue) {
	t.Helper()
	for i, ev := range q.items {
		if ev.index != i {
			t.Fatalf("event %d has index %d", i, ev.index)
		}
		if ev.queue != q {
			t.Fatalf("event %d does not point at its owning queue", i)
		}
		if i > 0 && q.less(i, (i-1)/2) {
			t.Fatalf("heap order violated at %d: (%v,%d) above (%v,%d)",
				i, q.items[(i-1)/2].at, q.items[(i-1)/2].seq, ev.at, ev.seq)
		}
	}
}

// TestQueueMatchesContainerHeap drives the hand-rolled heap and the
// container/heap reference model through the same long randomized sequence
// of pushes, pops and cancels (Remove at an arbitrary heap position), with
// popped and removed Event structs recycled through a free list exactly as
// the engine recycles them. Time collisions are forced (few distinct
// timestamps, many events) so the (time, seq) tiebreak is exercised, and
// both heaps must agree on every pop.
func TestQueueMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	q := &eventQueue{}
	ref := &refHeap{}
	live := map[int]*Event{} // id -> queued event, for targeted removal
	var free []*Event        // recycled structs, reused like the engine pool
	var seq uint64
	nextID := 0

	push := func() {
		// A handful of distinct timestamps guarantees heavy ties.
		at := float64(rng.Intn(16))
		var ev *Event
		if n := len(free); n > 0 && rng.Intn(2) == 0 {
			ev, free = free[n-1], free[:n-1]
		} else {
			ev = &Event{}
		}
		ev.at, ev.seq = at, seq
		ev.queue = q
		q.Push(ev)
		live[nextID] = ev
		heap.Push(ref, &refItem{at: at, seq: seq, id: nextID})
		seq++
		nextID++
	}

	pop := func() {
		got := q.Pop()
		want := heap.Pop(ref).(*refItem)
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("pop mismatch: got (%v, seq %d), reference (%v, seq %d)",
				got.at, got.seq, want.at, want.seq)
		}
		if got != live[want.id] {
			t.Fatalf("pop returned a different struct than was pushed for id %d", want.id)
		}
		if got.index != -1 || got.queue != nil {
			t.Fatalf("popped event still claims queue membership (index %d)", got.index)
		}
		delete(live, want.id)
		free = append(free, got)
	}

	remove := func() {
		// Cancel a uniformly random live event, the way Event.cancel removes
		// tombstones eagerly from an arbitrary heap position.
		ids := make([]int, 0, len(live))
		for id := range live {
			ids = append(ids, id)
		}
		id := ids[rng.Intn(len(ids))]
		ev := live[id]
		q.Remove(ev.index)
		if ev.index != -1 || ev.queue != nil {
			t.Fatalf("removed event still claims queue membership (index %d)", ev.index)
		}
		for i, it := range *ref {
			if it.id == id {
				heap.Remove(ref, i)
				break
			}
		}
		delete(live, id)
		free = append(free, ev)
	}

	for op := 0; op < 20000; op++ {
		switch r := rng.Intn(10); {
		case r < 5 || q.Len() == 0:
			push()
		case r < 8:
			pop()
		default:
			remove()
		}
		if q.Len() != ref.Len() {
			t.Fatalf("length diverged after op %d: queue %d, reference %d", op, q.Len(), ref.Len())
		}
		checkHeapInvariants(t, q)
	}
	// Drain: the full remaining pop order must match.
	for q.Len() > 0 {
		pop()
	}
}

// TestQueueShrinksAfterBurst checks the backing-array release: after a
// submission-wave-sized burst drains, the heap must not pin its peak
// capacity for the rest of the run, and the shrink must preserve pop order.
func TestQueueShrinksAfterBurst(t *testing.T) {
	q := &eventQueue{}
	const burst = 4096
	for i := 0; i < burst; i++ {
		q.Push(&Event{at: float64(i % 97), seq: uint64(i), queue: q})
	}
	peak := cap(q.items)
	if peak < burst {
		t.Fatalf("cap %d below burst size %d", peak, burst)
	}
	prevAt, prevSeq := -1.0, uint64(0)
	for i := 0; i < burst-8; i++ {
		ev := q.Pop()
		if ev.at < prevAt || (ev.at == prevAt && ev.seq < prevSeq) {
			t.Fatalf("pop order broken at %d: (%v, seq %d) after (%v, seq %d)",
				i, ev.at, ev.seq, prevAt, prevSeq)
		}
		prevAt, prevSeq = ev.at, ev.seq
		checkHeapInvariants(t, q)
	}
	if got := cap(q.items); got >= peak/4 {
		t.Fatalf("backing array never shrank: cap %d after draining to %d items (peak %d)",
			got, q.Len(), peak)
	}
	// Small queues must NOT shrink below the floor — no allocator thrash.
	small := &eventQueue{}
	for i := 0; i < 32; i++ {
		small.Push(&Event{at: float64(i), seq: uint64(i)})
	}
	c := cap(small.items)
	for small.Len() > 1 {
		small.Pop()
	}
	if cap(small.items) != c && cap(small.items) > minShrinkCap {
		t.Fatalf("small queue reallocated above the shrink floor: cap %d", cap(small.items))
	}
}
