package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// cells is a synthetic stand-in for the cluster's per-node physics: an
// array of independently integrable states that record every integration
// instant. The recorded instant sequences are the determinism oracle —
// the sharded engine must produce exactly the serial sequences, because
// the real thermal models (Euler grids, quiescent relaxation, EWMA
// filters) are sensitive to where integration is split.
type cells struct {
	t        []float64   // last-integrated instant per cell
	hist     [][]float64 // integration instants per cell
	deadline []float64   // "state transition" instant; prepare unsafe near it
	base     float64     // safety margin, mirroring the node integration step
}

func newCells(n int, base float64) *cells {
	c := &cells{
		t:        make([]float64, n),
		hist:     make([][]float64, n),
		deadline: make([]float64, n),
		base:     base,
	}
	for i := range c.deadline {
		c.deadline[i] = 1e18 // no transition in reach
	}
	return c
}

func (c *cells) sync(k int, at float64) {
	if at <= c.t[k] {
		return
	}
	c.t[k] = at
	c.hist[k] = append(c.hist[k], at)
}

func (c *cells) safe(k int, at float64) bool { return c.deadline[k] > at+c.base }

func (c *cells) prepare(k int, at float64) {
	if c.safe(k, at) { // preparer re-checks, like cluster.PrepareNode
		c.sync(k, at)
	}
}

// buildProgram schedules a randomized but seed-deterministic event program
// on the engine: affine events over random key sets, prepared barriers,
// plain barriers that touch many cells, affine tickers, and follow-up
// events scheduled from callbacks. Callbacks append to trace serially and
// integrate their cells exactly as real model events do. Affine follow-ups
// honour the declared lookahead (delays >= span), matching the contract
// every production subsystem satisfies.
func buildProgram(t *testing.T, e *Engine, c *cells, trace *[]string, seed int64) {
	t.Helper()
	const span = 0.1
	if err := e.DeclareLookahead("test.span", span); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(c.t)
	record := func(name string) {
		*trace = append(*trace, fmt.Sprintf("%s@%.6f", name, e.Now()))
	}
	keysOf := func() []int {
		keys := make([]int, 0, 3)
		for len(keys) < 1+rng.Intn(3) {
			keys = append(keys, rng.Intn(n))
		}
		return keys
	}
	for i := 0; i < 40; i++ {
		at := rng.Float64() * 20
		keys := keysOf()
		name := fmt.Sprintf("aff%d", i)
		withChild := i%4 == 0
		fn := func(en *Engine) {
			record(name)
			for _, k := range keys {
				c.sync(k, en.Now())
			}
			if withChild {
				// Follow-up delays honour the declared lookahead, as every
				// production subsystem's self-rescheduling latency does.
				// Callbacks run serially in identical order at every shard
				// count, so these runtime rng draws stay deterministic.
				child := name + ".child"
				childKeys := keysOf()
				if _, err := en.ScheduleAfterAffine(span+rng.Float64(), child, childKeys, func(en2 *Engine) {
					record(child)
					for _, k := range childKeys {
						c.sync(k, en2.Now())
					}
				}); err != nil {
					t.Errorf("schedule %s: %v", child, err)
				}
			}
		}
		if _, err := e.ScheduleAtAffine(at, name, keys, fn); err != nil {
			t.Fatal(err)
		}
	}
	// Prepared barriers: touched set known in advance (like job ends).
	for i := 0; i < 8; i++ {
		at := rng.Float64() * 20
		keys := keysOf()
		name := fmt.Sprintf("prep%d", i)
		if _, err := e.ScheduleAtPrepared(at, name, keys, func(en *Engine) {
			record(name)
			for _, k := range keys {
				c.sync(k, en.Now())
			}
			// Barriers may do cross-shard work: touch an unrelated cell.
			c.sync((keys[0]+1)%n, en.Now())
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Plain barriers: sweep several cells, schedule immediate follow-ups
	// (barriers terminate windows, so delay-0 scheduling is allowed).
	for i := 0; i < 6; i++ {
		at := rng.Float64() * 20
		name := fmt.Sprintf("bar%d", i)
		if _, err := e.ScheduleAt(at, name, func(en *Engine) {
			record(name)
			for k := 0; k < n; k += 2 {
				c.sync(k, en.Now())
			}
			kick := name + ".kick"
			kk := rng.Intn(n)
			if _, err := en.ScheduleAfter(0, kick, func(en2 *Engine) {
				record(kick)
				c.sync(kk, en2.Now())
			}); err != nil {
				t.Errorf("schedule %s: %v", kick, err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	// A cell whose "transition" sits mid-run: events touching it near the
	// deadline fail the safety probe and run window-terminal.
	c.deadline[0] = 10
	// Affine tickers, like the telemetry samplers.
	for i := 0; i < 3; i++ {
		k := rng.Intn(n)
		name := fmt.Sprintf("tick%d", i)
		if _, err := NewAffineTicker(e, 0.25+float64(i)*0.2, 0.5, name, []int{k}, func(now float64) {
			record(name)
			c.sync(k, now)
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// runProgram executes the synthetic program to the horizon and returns
// the serial trace and per-cell integration histories.
func runProgram(t *testing.T, shards int, seed int64) ([]string, [][]float64) {
	t.Helper()
	e := NewEngine()
	c := newCells(16, 0.1)
	if shards > 1 {
		e.SetShards(shards)
		e.SetPreparer(c.prepare, c.safe)
	}
	var trace []string
	buildProgram(t, e, c, &trace, seed)
	if err := e.RunUntil(21); err != nil {
		t.Fatal(err)
	}
	return trace, c.hist
}

// TestShardedEngineMatchesSerial is the engine-level determinism gate:
// randomized programs must produce byte-identical callback traces and
// integration histories at every shard count.
func TestShardedEngineMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		trace0, hist0 := runProgram(t, 1, seed)
		for _, shards := range []int{2, 4, 8} {
			trace, hist := runProgram(t, shards, seed)
			if fmt.Sprint(trace) != fmt.Sprint(trace0) {
				t.Fatalf("seed %d shards %d: trace diverged\nserial:  %v\nsharded: %v",
					seed, shards, trace0, trace)
			}
			if fmt.Sprint(hist) != fmt.Sprint(hist0) {
				t.Fatalf("seed %d shards %d: integration instants diverged\nserial:  %v\nsharded: %v",
					seed, shards, hist0, hist)
			}
		}
	}
}

// TestShardedStopResume stops a sharded run mid-window, checks Pending
// reports live events only, resumes, and requires the final trace to
// match an uninterrupted serial run.
func TestShardedStopResume(t *testing.T) {
	build := func(e *Engine, c *cells, trace *[]string, stopAt string) {
		for i := 0; i < 6; i++ {
			at := float64(i) * 0.01
			name := fmt.Sprintf("aff%d", i)
			k := i % len(c.t)
			fn := func(en *Engine) {
				*trace = append(*trace, fmt.Sprintf("%s@%.3f", name, en.Now()))
				c.sync(k, en.Now())
				if name == stopAt {
					en.Stop()
				}
			}
			if _, err := e.ScheduleAtAffine(at, name, []int{k}, fn); err != nil {
				t.Fatal(err)
			}
		}
	}
	serial := func() []string {
		e := NewEngine()
		c := newCells(4, 0.1)
		var trace []string
		build(e, c, &trace, "")
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}()
	e := NewEngine()
	e.SetShards(4)
	c := newCells(4, 0.1)
	e.SetPreparer(c.prepare, c.safe)
	var trace []string
	build(e, c, &trace, "aff2")
	if err := e.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if got := e.Pending(); got != 3 {
		t.Errorf("Pending after stop = %d, want 3 (aff3..aff5 live)", got)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(trace) != fmt.Sprint(serial) {
		t.Errorf("stop/resume trace diverged\nserial: %v\ngot:    %v", serial, trace)
	}
}

// TestStoppedRunDrainsTombstones: a callback cancels later events and
// stops the engine; Pending must then count live events only — on the
// serial loop and on the sharded loop (where the cancelled event may sit
// in the window buffer).
func TestStoppedRunDrainsTombstones(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			e := NewEngine()
			c := newCells(4, 0.1)
			if shards > 1 {
				e.SetShards(shards)
				e.SetPreparer(c.prepare, c.safe)
			}
			var doomed []Handle
			for i := 0; i < 4; i++ {
				at := 1 + float64(i)*0.01
				k := i % len(c.t)
				ev, err := e.ScheduleAtAffine(at, fmt.Sprintf("doomed%d", i), []int{k}, func(en *Engine) {
					c.sync(k, en.Now())
				})
				if err != nil {
					t.Fatal(err)
				}
				doomed = append(doomed, ev)
			}
			survivor, err := e.ScheduleAt(5, "survivor", func(*Engine) {})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.ScheduleAt(1, "killer", func(en *Engine) {
				for _, ev := range doomed {
					ev.Cancel()
				}
				en.Stop()
			}); err != nil {
				t.Fatal(err)
			}
			if err := e.Run(); err != ErrStopped {
				t.Fatalf("Run = %v, want ErrStopped", err)
			}
			if got := e.Pending(); got != 1 {
				t.Errorf("Pending after stop = %d, want 1 (only %q)", got, survivor.Name())
			}
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if got := e.Pending(); got != 0 {
				t.Errorf("Pending after drain = %d, want 0", got)
			}
		})
	}
}

// TestRunUntilDrainsTombstonesAtHorizon: cancelling an event beyond the
// horizon from inside a run leaves no tombstone behind after exit.
func TestRunUntilDrainsTombstonesAtHorizon(t *testing.T) {
	e := NewEngine()
	late, err := e.ScheduleAt(10, "late", func(*Engine) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ScheduleAt(1, "canceller", func(*Engine) { late.Cancel() }); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if got := e.Pending(); got != 0 {
		t.Errorf("Pending = %d, want 0", got)
	}
}

// TestRNGForShardIndependence is the RNG-stream audit regression: a
// shard's streams are fully determined by (master seed, shard index) —
// independent of the total shard count, of the order factories are
// derived, and of draws taken elsewhere.
func TestRNGForShardIndependence(t *testing.T) {
	draw := func(r *RNG) float64 { return r.Stream("noise").Float64() }

	a := NewRNG(99)
	want := draw(a.ForShard(3))

	// Different derivation order, extra shards, interleaved parent draws.
	b := NewRNG(99)
	_ = draw(b.ForShard(7))
	_ = b.Stream("other").Float64()
	_ = draw(b.ForShard(0))
	if got := draw(b.ForShard(3)); got != want {
		t.Errorf("shard 3 stream = %v, want %v (must not depend on other shards or draws)", got, want)
	}

	// Distinct shards see distinct streams.
	if draw(NewRNG(99).ForShard(4)) == want {
		t.Error("shards 3 and 4 drew identical values; streams must differ")
	}

	// Parent streams are unperturbed by shard derivation.
	p1 := NewRNG(42)
	v1 := p1.Stream("jitter").Float64()
	p2 := NewRNG(42)
	_ = p2.ForShard(1)
	_ = p2.ForShard(2)
	v2 := p2.Stream("jitter").Float64()
	if v1 != v2 {
		t.Errorf("parent stream perturbed by ForShard: %v vs %v", v1, v2)
	}
}

// TestDeclareLookahead checks span bookkeeping and validation.
func TestDeclareLookahead(t *testing.T) {
	e := NewEngine()
	if !math.IsInf(e.Lookahead(), 1) {
		t.Errorf("undeclared lookahead = %v, want +Inf", e.Lookahead())
	}
	if err := e.DeclareLookahead("a", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := e.DeclareLookahead("b", 0.2); err != nil {
		t.Fatal(err)
	}
	if got := e.Lookahead(); got != 0.2 {
		t.Errorf("Lookahead = %v, want 0.2", got)
	}
	if err := e.DeclareLookahead("b", 0.8); err != nil { // re-declare loosens b
		t.Fatal(err)
	}
	if got := e.Lookahead(); got != 0.5 {
		t.Errorf("Lookahead after re-declare = %v, want 0.5", got)
	}
	if err := e.DeclareLookahead("bad", 0); err == nil {
		t.Error("DeclareLookahead(0) accepted, want error")
	}
}
