package sim

import (
	"fmt"
	"math"
)

// Per-shard committed execution: local events and their effect buffers.
//
// A LOCAL event (ScheduleAtLocal / ScheduleAfterLocal / ScheduleEveryLocal)
// is the strongest affinity class: its callback touches ONLY the model
// state owned by its shard keys, and every side effect it emits — new
// events, cancellations of its own events, deferred serial work such as a
// telemetry publish — goes through the Proc it receives. That contract is
// what lets the sharded run loop execute the callback ENTIRELY on a shard
// worker goroutine, not just prefetch its state: the effects are buffered
// per shard and replayed on the serial loop in strict (time, sequence)
// order at window commit, so a parallel run is indistinguishable from the
// serial one (see shard.go for the full protocol and safety argument).
//
// Local contract, on top of the affine contract (shard.go):
//
//   - the callback reads and writes nothing outside (a) state owned by its
//     keys, (b) its own closure state that no other shard's events touch,
//     and (c) the Proc;
//   - clocks and scheduling reached indirectly (a node observing
//     Engine-installed wall time, a watchdog replan fired from an input-
//     change notification) must be routed through Engine.KeyNow /
//     Engine.KeyPort so they resolve to the executing Proc during parallel
//     phases;
//   - events it schedules land at or beyond the enclosing window's end
//     (every subsystem's self-rescheduling latency is at least one declared
//     lookahead bound, so this follows from declaring honestly); recurring
//     locals with a period below the window span are demoted to serial
//     execution automatically;
//   - Defer effects touch only serial-domain state (broker publishes, log
//     appends) — never keyed model state another shard could read.
//
// The engine enforces what it can cheaply check: buffered schedules that
// would land before an already-executed window event panic at commit, and
// a committed local event found cancelled mid-window panics too — both are
// contract violations that would otherwise silently diverge from the
// serial trace.

// Proc is the execution context handed to a local event's callback. On the
// serial engine (and for demoted locals on the sharded one) it applies
// every operation immediately, byte-for-byte like the plain Engine API; on
// a shard worker it buffers them for the merge-ordered commit. A Proc is
// only valid for the duration of the callback invocation it was passed to.
type Proc struct {
	eng    *Engine
	shard  int
	direct bool    // serial context: apply operations immediately
	now    float64 // executing event's instant (workers; direct uses eng.now)
	ops    []localOp

	// stash holds recycled Events reserved for this shard's worker-side
	// schedules (the engine free list is serial-loop-only). The run loop
	// refills it between windows, one event per stash miss, so steady-state
	// parallel scheduling allocates nothing once the stash has warmed to
	// the per-window schedule volume.
	stash  []*Event
	misses int
}

// Op kinds of the per-shard effect buffer.
const (
	opSchedule = iota + 1
	opCancel
	opDefer
)

// localOp is one buffered side effect. Schedule ops carry a fully built
// Event whose sequence number is assigned only at commit, reproducing the
// exact serial numbering (including events scheduled and then cancelled
// within the same window, which consume a sequence number either way).
type localOp struct {
	kind int
	ev   *Event       // schedule target / cancel target
	gen  uint64       // cancel: generation guard captured at buffer time
	fn   func(*Engine) // defer
}

// Now returns the executing event's virtual time.
func (p *Proc) Now() float64 {
	if p.direct {
		return p.eng.now
	}
	return p.now
}

// Shard returns the executing shard index (0 on the serial loop).
func (p *Proc) Shard() int { return p.shard }

// Engine returns the owning engine. Worker-side callbacks must treat it as
// read-only configuration (Shards, Lookahead); all scheduling goes through
// the Proc.
func (p *Proc) Engine() *Engine { return p.eng }

// ScheduleAt registers a plain (barrier) event at absolute time at; the
// engine's ScheduleAt, buffered when executing on a shard worker.
func (p *Proc) ScheduleAt(at float64, name string, fn func(*Engine)) (Handle, error) {
	if p.direct {
		return p.eng.ScheduleAt(at, name, fn)
	}
	return p.buffer(at, 0, name, nil, false, fn, nil)
}

// ScheduleAfter registers a plain (barrier) event delay seconds after the
// executing event's instant.
func (p *Proc) ScheduleAfter(delay float64, name string, fn func(*Engine)) (Handle, error) {
	if delay < 0 {
		return Handle{}, fmt.Errorf("sim: schedule %q: negative delay %v", name, delay)
	}
	if p.direct {
		return p.eng.schedule(p.eng.now+delay, 0, name, nil, false, fn, nil)
	}
	return p.buffer(p.now+delay, 0, name, nil, false, fn, nil)
}

// ScheduleAtLocal registers a local follow-up event (same contract as
// Engine.ScheduleAtLocal) from within a local callback.
func (p *Proc) ScheduleAtLocal(at float64, name string, keys []int, fn func(*Proc)) (Handle, error) {
	if err := checkLocalKeys(name, keys); err != nil {
		return Handle{}, err
	}
	if p.direct {
		return p.eng.schedule(at, 0, name, keys, true, nil, fn)
	}
	return p.buffer(at, 0, name, keys, true, nil, fn)
}

// ScheduleAfterLocal is ScheduleAtLocal relative to the executing event's
// instant.
func (p *Proc) ScheduleAfterLocal(delay float64, name string, keys []int, fn func(*Proc)) (Handle, error) {
	if delay < 0 {
		return Handle{}, fmt.Errorf("sim: schedule %q: negative delay %v", name, delay)
	}
	if err := checkLocalKeys(name, keys); err != nil {
		return Handle{}, err
	}
	if p.direct {
		return p.eng.schedule(p.eng.now+delay, 0, name, keys, true, nil, fn)
	}
	return p.buffer(p.now+delay, 0, name, keys, true, nil, fn)
}

// Cancel cancels an event through the Proc. Within a local callback this
// is the ONLY valid way to cancel an event that may still sit in the
// engine's shared queue (Handle.Cancel would mutate the heap off the
// serial loop); cancelling the callback's own recurring event via
// Ticker.Stop/Handle.Cancel stays safe because an executing event is
// detached from the queue and only flagged.
func (p *Proc) Cancel(h Handle) {
	if p.direct {
		h.Cancel()
		return
	}
	if h.ev == nil {
		return
	}
	p.ops = append(p.ops, localOp{kind: opCancel, ev: h.ev, gen: h.gen})
}

// Defer queues fn to run on the serial loop at this event's commit
// position — after every earlier event's effects, before every later
// one's. It is the bridge for the serial half of a local callback: a
// telemetry batch built on the worker is published through Defer, so
// broker dispatch and storage ingest keep their exact serial order. On the
// serial engine Defer runs fn immediately.
func (p *Proc) Defer(fn func(*Engine)) {
	if p.direct {
		fn(p.eng)
		return
	}
	p.ops = append(p.ops, localOp{kind: opDefer, fn: fn})
}

// buffer validates and records one scheduled event without touching the
// engine queue. The Event struct is heap-allocated here (the engine free
// list is serial-loop-only); it joins the pool on its eventual release.
// The sequence number is assigned at commit — see Engine.applyOps.
func (p *Proc) buffer(at, period float64, name string, keys []int, affine bool, fn func(*Engine), lfn func(*Proc)) (Handle, error) {
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return Handle{}, fmt.Errorf("sim: schedule %q: invalid time %v", name, at)
	}
	if at < p.now {
		return Handle{}, fmt.Errorf("sim: schedule %q: time %.9f is before now %.9f", name, at, p.now)
	}
	var ev *Event
	if n := len(p.stash); n > 0 {
		ev = p.stash[n-1]
		p.stash[n-1] = nil
		p.stash = p.stash[:n-1]
		ev.free = false
	} else {
		ev = &Event{eng: p.eng, index: -1}
		p.misses++
	}
	ev.at, ev.fn, ev.lfn, ev.name = at, fn, lfn, name
	ev.keys, ev.affine, ev.period = keys, affine, period
	p.ops = append(p.ops, localOp{kind: opSchedule, ev: ev})
	return Handle{ev: ev, gen: ev.gen}, nil
}

func checkLocalKeys(name string, keys []int) error {
	if len(keys) == 0 {
		return fmt.Errorf("sim: schedule %q: local events need at least one shard key", name)
	}
	return nil
}

// ScheduleAtLocal registers a LOCAL event: a shard-affine callback whose
// side effects also stay within its keys' shard, received through a Proc.
// On the serial engine (or when the window partitioner demotes it) the
// callback runs on the loop with a direct Proc — identical semantics, no
// buffering; on the sharded engine it may execute entirely on a shard
// worker. The engine keeps the keys slice; callers must not mutate it.
// See the Proc contract above.
func (e *Engine) ScheduleAtLocal(at float64, name string, keys []int, fn func(*Proc)) (Handle, error) {
	if err := checkLocalKeys(name, keys); err != nil {
		return Handle{}, err
	}
	return e.schedule(at, 0, name, keys, true, nil, fn)
}

// ScheduleAfterLocal is ScheduleAtLocal relative to the current time.
func (e *Engine) ScheduleAfterLocal(delay float64, name string, keys []int, fn func(*Proc)) (Handle, error) {
	if delay < 0 {
		return Handle{}, fmt.Errorf("sim: schedule %q: negative delay %v", name, delay)
	}
	if err := checkLocalKeys(name, keys); err != nil {
		return Handle{}, err
	}
	return e.schedule(e.now+delay, 0, name, keys, true, nil, fn)
}

// ScheduleEveryLocal is ScheduleEvery for a local callback. A recurring
// local whose period is below the engine's window span executes serially
// (the next occurrence could land inside the window that ran it).
func (e *Engine) ScheduleEveryLocal(start, period float64, name string, keys []int, fn func(*Proc)) (Handle, error) {
	if err := checkPeriod(name, period); err != nil {
		return Handle{}, err
	}
	if err := checkLocalKeys(name, keys); err != nil {
		return Handle{}, err
	}
	return e.schedule(start, period, name, keys, true, nil, fn)
}

// Port is the scheduling surface a keyed subsystem reaches the engine
// through when its code can run on either the serial loop or a shard
// worker (the cluster's per-node watchdog replanner is the canonical
// user). Engine.KeyPort resolves it: the Engine itself on the serial
// loop, the executing shard's Proc during a parallel phase.
type Port interface {
	// Now returns the effective current virtual time.
	Now() float64
	// ScheduleAt registers a plain (barrier) event.
	ScheduleAt(at float64, name string, fn func(*Engine)) (Handle, error)
	// Cancel cancels an event (buffered on workers; see Proc.Cancel).
	Cancel(h Handle)
}

// Cancel makes Engine satisfy Port: plain immediate cancellation.
func (e *Engine) Cancel(h Handle) { h.Cancel() }

// KeyNow returns the virtual time the given shard key's state should
// observe: the executing shard's event instant during a parallel phase,
// the engine clock otherwise. Per-node clocks installed into model state
// route through this so demand-driven syncs triggered on a worker see the
// worker's instant, not the stale serial clock.
func (e *Engine) KeyNow(key int) float64 {
	if e.inPar {
		return e.procs[e.shardOf(key)].now
	}
	return e.now
}

// KeyPort returns the scheduling port for the given shard key: the
// executing shard's Proc during a parallel phase (operations buffer for
// the merge-ordered commit), the engine itself otherwise. Only code
// reachable from a local callback of the SAME key may use the returned
// port — that is what makes the unsynchronized Proc access safe.
func (e *Engine) KeyPort(key int) Port {
	if e.inPar {
		return e.procs[e.shardOf(key)]
	}
	return e
}

// SetKeySpan declares the shard-key domain [0, n): keys then map to
// shards in contiguous blocks instead of round-robin modulo, so an
// allocation of neighbouring nodes (the common scheduler placement) lands
// on ONE shard and its events stay worker-executable instead of being
// demoted as cross-shard. Keys outside the span fall back to modulo.
// The mapping is wall-clock tuning only: results are byte-identical under
// any key-to-shard function.
func (e *Engine) SetKeySpan(n int) {
	if n < 0 {
		n = 0
	}
	e.keySpan = n
}

// shardOf maps a shard key to its worker index.
func (e *Engine) shardOf(key int) int {
	if key >= 0 && key < e.keySpan {
		s := key * e.shards / e.keySpan
		if s >= e.shards {
			s = e.shards - 1
		}
		return s
	}
	s := key % e.shards
	if s < 0 {
		s += e.shards
	}
	return s
}

// applyOps replays one committed event's buffered effects on the serial
// loop, in recording order. Schedule ops take their sequence numbers HERE,
// so the numbering (and therefore every later tie-break) is exactly what
// the serial loop would have produced; a schedule followed by a cancel of
// the same event still consumes its number, again matching serial
// semantics. The winParMax guard catches local callbacks scheduling into
// their own window — an ordering the parallel phase already foreclosed.
func (e *Engine) applyOps(p *Proc, lo, hi int32) {
	ops := p.ops[lo:hi]
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case opSchedule:
			ev := op.ev
			if ev.at < e.winParMax {
				panic(fmt.Sprintf("sim: local event scheduled %q at %.9f inside its own window (parallel frontier %.9f); schedule beyond the declared lookahead", ev.name, ev.at, e.winParMax))
			}
			ev.seq = e.seq
			e.seq++
			if ev.cancelled {
				// Buffer-time bookkeeping cannot cancel (cancel is an op);
				// defensive: a cancelled-before-queue event just consumed
				// its sequence number, like the serial path.
				e.release(ev)
				break
			}
			ev.queue = &e.queue
			e.queue.Push(ev)
		case opCancel:
			if op.ev != nil && op.gen == op.ev.gen {
				op.ev.cancel()
			}
		case opDefer:
			op.fn(e)
		}
		*op = localOp{} // drop closure/event references promptly
	}
}
