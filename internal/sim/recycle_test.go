package sim

import (
	"math/rand"
	"testing"
)

// TestRecycledEventNeverFiresOldCallback is the safety contract of the
// event pool: once an Event struct is recycled into a new schedule, nothing
// from its previous life — neither the old callback nor a stale Handle —
// can reach it. The test forces reuse (single free-list slot) and checks
// both directions: the old callback never fires again, and a stale Cancel
// does not kill the new tenant.
func TestRecycledEventNeverFiresOldCallback(t *testing.T) {
	e := NewEngine()
	firstFired := 0
	h1, err := e.ScheduleAt(1, "first", func(*Engine) { firstFired++ })
	if err != nil {
		t.Fatal(err)
	}
	ev1 := h1.ev
	if err := e.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	if firstFired != 1 {
		t.Fatalf("first callback fired %d times, want 1", firstFired)
	}
	if h1.Scheduled() {
		t.Fatal("handle still reports the fired event as scheduled")
	}

	// The fired struct is on the free list; the next schedule reuses it.
	secondFired := 0
	h2, err := e.ScheduleAt(3, "second", func(*Engine) { secondFired++ })
	if err != nil {
		t.Fatal(err)
	}
	if h2.ev != ev1 {
		t.Fatalf("second schedule did not recycle the fired struct (pool broken?)")
	}
	// A stale handle to the first life must not touch the second tenant.
	h1.Cancel()
	if !h2.Scheduled() {
		t.Fatal("stale Cancel from a previous generation killed the new event")
	}
	if err := e.RunUntil(4); err != nil {
		t.Fatal(err)
	}
	if secondFired != 1 {
		t.Fatalf("second callback fired %d times, want 1", secondFired)
	}
	if firstFired != 1 {
		t.Fatalf("first callback fired again through the recycled struct (%d times)", firstFired)
	}
	// Same guarantee for the cancel-then-recycle path.
	h3, err := e.ScheduleAt(5, "third", func(*Engine) { t.Error("cancelled event fired") })
	if err != nil {
		t.Fatal(err)
	}
	h3.Cancel()
	fourthFired := 0
	h4, err := e.ScheduleAt(5, "fourth", func(*Engine) { fourthFired++ })
	if err != nil {
		t.Fatal(err)
	}
	if h4.ev != h3.ev {
		t.Fatal("cancelled struct was not recycled")
	}
	h3.Cancel() // stale: its generation is gone
	if !h4.Scheduled() {
		t.Fatal("repeated stale Cancel killed the recycled event")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fourthFired != 1 {
		t.Fatalf("fourth callback fired %d times, want 1", fourthFired)
	}
}

// TestRecyclingStress randomizes schedule/cancel/run interleavings over a
// heavily recycled pool and asserts the exactly-once discipline: every
// callback that was not cancelled fires exactly once, every cancelled one
// fires zero times, and stale handles (kept across recycles and cancelled
// at random) never suppress or duplicate anybody else's callback.
func TestRecyclingStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewEngine()
	fired := map[int]int{}
	cancelled := map[int]bool{}
	type tracked struct {
		h  Handle
		id int
	}
	var livehs []tracked  // handles to still-pending events
	var stalehs []tracked // handles kept past their event's lifetime
	nextID := 0
	total := 0

	for round := 0; round < 200; round++ {
		// Schedule a burst.
		for i := 0; i < rng.Intn(20)+1; i++ {
			id := nextID
			nextID++
			h, err := e.ScheduleAfter(rng.Float64()*5, "stress", func(*Engine) { fired[id]++ })
			if err != nil {
				t.Fatal(err)
			}
			livehs = append(livehs, tracked{h, id})
			total++
		}
		// Cancel some pending events for real.
		for i := 0; i < len(livehs)/4; i++ {
			j := rng.Intn(len(livehs))
			if !cancelled[livehs[j].id] && livehs[j].h.Scheduled() {
				livehs[j].h.Cancel()
				cancelled[livehs[j].id] = true
			}
		}
		// Fire stale cancels from old generations — must all be no-ops.
		for i := 0; i < len(stalehs) && i < 8; i++ {
			stalehs[rng.Intn(len(stalehs))].h.Cancel()
		}
		// Run part of the timeline, retiring handles that completed.
		if err := e.RunUntil(e.Now() + rng.Float64()*4); err != nil {
			t.Fatal(err)
		}
		keep := livehs[:0]
		for _, tr := range livehs {
			if tr.h.Scheduled() {
				keep = append(keep, tr)
			} else {
				stalehs = append(stalehs, tr)
			}
		}
		livehs = keep
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < nextID; id++ {
		want := 1
		if cancelled[id] {
			want = 0
		}
		if fired[id] != want {
			t.Fatalf("callback %d fired %d times, want %d (cancelled=%v)",
				id, fired[id], want, cancelled[id])
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending after drain", e.Pending())
	}
	if total != nextID {
		t.Fatalf("bookkeeping error: %d scheduled, %d ids", total, nextID)
	}
}

// TestReleaseTwicePanics pins the pool's double-free guard: releasing the
// same Event twice is a bug in the engine, and it must fail loudly rather
// than corrupt the free list.
func TestReleaseTwicePanics(t *testing.T) {
	e := NewEngine()
	ev := e.alloc()
	ev.name = "dup"
	e.release(ev)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	e.release(ev)
}
