package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// buildLocalProgram schedules a randomized but seed-deterministic program
// built around LOCAL events — the per-shard committed execution path:
// one-shot locals over random key sets (cross-shard sets exercise the
// demotion path), worker-buffered follow-up schedules and cancels, local
// tickers above and below the window span, plus plain barriers mixed in.
// Every trace entry is recorded through Proc.Defer, so the recorded order
// IS the commit order the serial loop would have produced — the oracle the
// sharded runs are held to. All randomness is drawn at build time: local
// callbacks execute on shard workers in nondeterministic relative order,
// so they must not share an RNG.
func buildLocalProgram(t *testing.T, e *Engine, c *cells, trace *[]string, seed int64) {
	t.Helper()
	const span = 0.1
	if err := e.DeclareLookahead("test.span", span); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(c.t)
	record := func(p *Proc, name string, at float64) {
		p.Defer(func(*Engine) {
			*trace = append(*trace, fmt.Sprintf("%s@%.6f", name, at))
		})
	}
	keysOf := func() []int {
		keys := make([]int, 0, 2)
		for len(keys) < 1+rng.Intn(2) {
			keys = append(keys, rng.Intn(n))
		}
		return keys
	}
	// One-shot locals; every fourth schedules a local follow-up from its
	// callback with build-time-drawn parameters (delay >= span, honouring
	// the declared lookahead like every production subsystem).
	for i := 0; i < 40; i++ {
		at := rng.Float64() * 20
		keys := keysOf()
		name := fmt.Sprintf("loc%d", i)
		withChild := i%4 == 0
		childDelay := span + rng.Float64()
		childKeys := keysOf()
		fn := func(p *Proc) {
			now := p.Now()
			for _, k := range keys {
				c.sync(k, now)
			}
			record(p, name, now)
			if withChild {
				child := name + ".child"
				if _, err := p.ScheduleAfterLocal(childDelay, child, childKeys, func(p2 *Proc) {
					now2 := p2.Now()
					for _, k := range childKeys {
						c.sync(k, now2)
					}
					record(p2, child, now2)
				}); err != nil {
					t.Errorf("schedule %s: %v", child, err)
				}
			}
		}
		if _, err := e.ScheduleAtLocal(at, name, keys, fn); err != nil {
			t.Fatal(err)
		}
	}
	// Buffered cancels: a local killer cancels a local event at least one
	// lookahead span later (so the target is never in the killer's own
	// window — the local contract). Half the killers leave their target
	// alive, pinning the gen-guard path both ways.
	for i := 0; i < 6; i++ {
		at := rng.Float64() * 15
		k := rng.Intn(n)
		doomedAt := at + span + 0.01 + rng.Float64()*2
		dk := rng.Intn(n)
		dname := fmt.Sprintf("doomed%d", i)
		h, err := e.ScheduleAtLocal(doomedAt, dname, []int{dk}, func(p *Proc) {
			c.sync(dk, p.Now())
			record(p, dname, p.Now())
		})
		if err != nil {
			t.Fatal(err)
		}
		cancel := i%2 == 0
		cname := fmt.Sprintf("killer%d", i)
		if _, err := e.ScheduleAtLocal(at, cname, []int{k}, func(p *Proc) {
			c.sync(k, p.Now())
			record(p, cname, p.Now())
			if cancel {
				p.Cancel(h)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Local tickers: period >= span runs on workers; the fast one below the
	// span is demoted to serial every window — identical semantics.
	for i := 0; i < 3; i++ {
		k := rng.Intn(n)
		name := fmt.Sprintf("ltick%d", i)
		if _, err := NewLocalTicker(e, 0.25+float64(i)*0.2, 0.5, name, []int{k}, func(p *Proc, now float64) {
			c.sync(k, now)
			record(p, name, now)
		}); err != nil {
			t.Fatal(err)
		}
	}
	fk := rng.Intn(n)
	if _, err := NewLocalTicker(e, 0.1, 0.05, "fast", []int{fk}, func(p *Proc, now float64) {
		c.sync(fk, now)
		record(p, "fast", now)
	}); err != nil {
		t.Fatal(err)
	}
	// Plain barriers sweep cells serially; they terminate windows, so the
	// direct trace append cannot race the workers.
	for i := 0; i < 5; i++ {
		at := rng.Float64() * 20
		name := fmt.Sprintf("bar%d", i)
		if _, err := e.ScheduleAt(at, name, func(en *Engine) {
			for k := 0; k < n; k += 3 {
				c.sync(k, en.Now())
			}
			*trace = append(*trace, fmt.Sprintf("%s@%.6f", name, en.Now()))
		}); err != nil {
			t.Fatal(err)
		}
	}
	// A mid-run transition deadline: events touching cell 0 near it fail
	// the safety probe and run window-terminal.
	c.deadline[0] = 10
}

// runLocalProgram executes the local program to the horizon and returns
// the commit-ordered trace, the per-cell integration histories and the
// engine's committed-parallel event count.
func runLocalProgram(t *testing.T, shards int, seed int64, keySpan int) ([]string, [][]float64, uint64) {
	t.Helper()
	e := NewEngine()
	c := newCells(16, 0.1)
	if shards > 1 {
		e.SetShards(shards)
		e.SetPreparer(c.prepare, c.safe)
		if keySpan > 0 {
			e.SetKeySpan(keySpan)
		}
	}
	var trace []string
	buildLocalProgram(t, e, c, &trace, seed)
	if err := e.RunUntil(21); err != nil {
		t.Fatal(err)
	}
	_, _, _, committed := e.WindowStats()
	return trace, c.hist, committed
}

// TestLocalEngineMatchesSerial is the shard-purity property test for
// per-shard committed execution: randomized local-event programs must
// produce byte-identical commit traces and integration histories at every
// shard count and under both key-to-shard mappings (modulo and block), and
// the sharded runs must actually commit events in parallel — demoting
// everything to serial would pass the identity check while proving
// nothing.
func TestLocalEngineMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		trace0, hist0, _ := runLocalProgram(t, 1, seed, 0)
		for _, shards := range []int{2, 4, 8} {
			for _, keySpan := range []int{0, 16} {
				trace, hist, committed := runLocalProgram(t, shards, seed, keySpan)
				if committed == 0 {
					t.Errorf("seed %d shards %d keySpan %d: no events committed in parallel", seed, shards, keySpan)
				}
				if fmt.Sprint(trace) != fmt.Sprint(trace0) {
					t.Fatalf("seed %d shards %d keySpan %d: commit trace diverged\nserial:  %v\nsharded: %v",
						seed, shards, keySpan, trace0, trace)
				}
				if fmt.Sprint(hist) != fmt.Sprint(hist0) {
					t.Fatalf("seed %d shards %d keySpan %d: integration instants diverged\nserial:  %v\nsharded: %v",
						seed, shards, keySpan, hist0, hist)
				}
			}
		}
	}
}

// localHarness builds a 2-shard engine with a no-op preparer, a declared
// 0.1 s lookahead and a far trailing barrier (so the events under test are
// never the demoted window tail).
func localHarness(t *testing.T, shards int) *Engine {
	t.Helper()
	e := NewEngine()
	e.SetShards(shards)
	e.SetPreparer(func(int, float64) {}, func(int, float64) bool { return true })
	if err := e.DeclareLookahead("test.span", 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ScheduleAt(50, "tail", func(*Engine) {}); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestLocalDeferCommitOrder: Defer effects from locals executing on
// DIFFERENT shard workers within one window replay in strict (time, seq)
// order at commit, regardless of which worker finishes first.
func TestLocalDeferCommitOrder(t *testing.T) {
	e := localHarness(t, 2)
	var got []string
	// Keys 0 and 1 map to shards 0 and 1; interleave their event times.
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("ev%d", i)
		k := i % 2
		if _, err := e.ScheduleAtLocal(0.01+float64(i)*0.001, name, []int{k}, func(p *Proc) {
			n := name
			p.Defer(func(*Engine) { got = append(got, n) })
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "ev0 ev1 ev2 ev3 ev4 ev5"
	if s := strings.Join(got, " "); s != want {
		t.Errorf("commit order = %q, want %q", s, want)
	}
	if _, _, _, committed := e.WindowStats(); committed < 6 {
		t.Errorf("committed-parallel = %d, want >= 6 (events demoted?)", committed)
	}
}

// TestLocalBufferedCancel: a worker-buffered Proc.Cancel applied at commit
// kills an event in a later window; a stale handle (generation mismatch)
// is a no-op.
func TestLocalBufferedCancel(t *testing.T) {
	e := localHarness(t, 2)
	fired := map[string]bool{}
	sched := func(at float64, name string, k int) Handle {
		h, err := e.ScheduleAtLocal(at, name, []int{k}, func(p *Proc) {
			n := name
			p.Defer(func(*Engine) { fired[n] = true })
		})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	doomed := sched(5, "doomed", 1)
	stale := Handle{ev: doomed.ev, gen: doomed.gen - 1}
	survivor := sched(5.01, "survivor", 0)
	_ = survivor
	if _, err := e.ScheduleAtLocal(1, "killer", []int{0}, func(p *Proc) {
		p.Cancel(doomed)
		p.Cancel(stale) // stale generation: must not cancel anything
		p.Defer(func(*Engine) { fired["killer"] = true })
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired["doomed"] {
		t.Error("cancelled event fired")
	}
	if !fired["killer"] || !fired["survivor"] {
		t.Errorf("fired = %v, want killer and survivor", fired)
	}
}

// TestRecurringLocalCommit: a recurring local with period >= span executes
// on workers and reschedules at commit with serial-identical instants; one
// below the span is demoted every window but fires identically.
func TestRecurringLocalCommit(t *testing.T) {
	run := func(shards int) []string {
		e := NewEngine()
		if shards > 1 {
			e.SetShards(shards)
			e.SetPreparer(func(int, float64) {}, func(int, float64) bool { return true })
		}
		if err := e.DeclareLookahead("test.span", 0.1); err != nil {
			t.Fatal(err)
		}
		var got []string
		tick := func(name string, k int, start, period float64) {
			if _, err := NewLocalTicker(e, start, period, name, []int{k}, func(p *Proc, now float64) {
				n := fmt.Sprintf("%s@%.3f", name, now)
				p.Defer(func(*Engine) { got = append(got, n) })
			}); err != nil {
				t.Fatal(err)
			}
		}
		tick("slow", 0, 0.1, 0.5)  // >= span: worker-executed
		tick("fast", 1, 0.1, 0.04) // < span: demoted to serial
		if err := e.RunUntil(2); err != nil {
			t.Fatal(err)
		}
		return got
	}
	serial := run(1)
	if len(serial) == 0 {
		t.Fatal("no ticks recorded")
	}
	for _, shards := range []int{2, 4} {
		if got := run(shards); fmt.Sprint(got) != fmt.Sprint(serial) {
			t.Errorf("shards=%d ticks diverged\nserial: %v\ngot:    %v", shards, serial, got)
		}
	}
}

// TestKeyNowKeyPortRouting: during a parallel phase KeyNow/KeyPort resolve
// to the executing shard's Proc (the worker's event instant, buffered
// scheduling); outside one they resolve to the engine itself.
func TestKeyNowKeyPortRouting(t *testing.T) {
	e := localHarness(t, 2)
	var barrierAt float64
	var portNow, keyNow, procNow float64
	if _, err := e.ScheduleAtLocal(1, "probe", []int{1}, func(p *Proc) {
		procNow = p.Now()
		keyNow = e.KeyNow(1)
		port := e.KeyPort(1)
		portNow = port.Now()
		if _, err := port.ScheduleAt(5, "probe.barrier", func(en *Engine) {
			barrierAt = en.Now()
		}); err != nil {
			t.Errorf("port.ScheduleAt: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if now := e.KeyNow(1); now != 0 {
		t.Errorf("KeyNow outside run = %v, want 0", now)
	}
	if port := e.KeyPort(1); port != Port(e) {
		t.Errorf("KeyPort outside a parallel phase = %T, want the engine", port)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if procNow != 1 || keyNow != 1 || portNow != 1 {
		t.Errorf("proc/key/port now = %v/%v/%v, want 1/1/1", procNow, keyNow, portNow)
	}
	if barrierAt != 5 {
		t.Errorf("port-scheduled barrier fired at %v, want 5", barrierAt)
	}
}

// TestSetKeySpanBlockMapping: with a declared key span, keys map to shards
// in contiguous blocks; outside the span (and without one) mapping falls
// back to modulo with negative keys wrapped.
func TestSetKeySpanBlockMapping(t *testing.T) {
	e := NewEngine()
	e.SetShards(4)
	e.SetKeySpan(16)
	for _, tc := range []struct{ key, shard int }{
		{0, 0}, {3, 0}, {4, 1}, {7, 1}, {8, 2}, {15, 3}, // block map
		{16, 0}, {21, 1}, // outside the span: modulo
		{-1, 3}, // negative: wrapped modulo
	} {
		if got := e.shardOf(tc.key); got != tc.shard {
			t.Errorf("shardOf(%d) = %d, want %d", tc.key, got, tc.shard)
		}
	}
	e.SetKeySpan(0) // back to pure modulo
	if got := e.shardOf(5); got != 1 {
		t.Errorf("shardOf(5) without span = %d, want 1", got)
	}
}

// TestLocalScheduleInsideOwnWindowPanics: a worker-buffered schedule that
// lands before an already-committed parallel event is a contract violation
// the commit path must catch, not silently reorder.
func TestLocalScheduleInsideOwnWindowPanics(t *testing.T) {
	e := localHarness(t, 2)
	if _, err := e.ScheduleAtLocal(0.01, "offender", []int{0}, func(p *Proc) {
		// Lands at 0.0101 — before the 0.05 parallel event below.
		if _, err := p.ScheduleAfterLocal(0.0001, "toosoon", []int{0}, func(*Proc) {}); err != nil {
			t.Errorf("buffer: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ScheduleAtLocal(0.05, "later", []int{1}, func(*Proc) {}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("commit accepted a schedule inside its own window")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "inside its own window") {
			t.Fatalf("panic = %q, want the own-window diagnostic", msg)
		}
	}()
	_ = e.Run()
}
