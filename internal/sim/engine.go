// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock measured in seconds since simulation
// start. Events are callbacks scheduled at absolute or relative virtual
// times and are executed in non-decreasing time order; events scheduled for
// the same instant run in scheduling order, which makes simulations fully
// deterministic and therefore reproducible in tests and benchmarks.
//
// All Monte Cimone subsystem models (power rails, thermal network, telemetry
// samplers, scheduler, boot sequencing) are driven by a single Engine so
// that their interleaving is well defined.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Engine.Stop before reaching the requested horizon.
var ErrStopped = errors.New("sim: engine stopped")

// Event is a scheduled callback. The callback receives the engine so it can
// schedule follow-up events; it runs at exactly its scheduled virtual time.
//
// Events are pooled: once an event has fired (or been cancelled) the engine
// recycles its Event struct for a future schedule call, so the steady-state
// event churn of a long campaign allocates nothing. Callers therefore never
// hold *Event — every Schedule variant returns a generation-stamped Handle
// that turns into a no-op the moment its event completes and is recycled.
type Event struct {
	at     float64
	seq    uint64
	fn     func(*Engine)
	lfn    func(*Proc) // local callback (Schedule*Local); nil for plain/affine
	name   string
	period float64 // > 0 for recurring events (ScheduleEvery)

	// keys lists the shard keys (node indexes) whose model state the
	// callback integrates, and affine marks the event as touching ONLY that
	// keyed state. The sharded run loop prefetches keyed state in parallel
	// ahead of the serial commit; see shard.go for the contract.
	keys   []int
	affine bool

	cancelled bool
	eng       *Engine
	queue     *eventQueue // owning queue while pending, nil once popped
	index     int         // heap index, -1 once popped or cancelled
	gen       uint64      // bumped on recycle; handles bind to one generation
	free      bool        // sitting on the engine free list (reuse guard)
}

// At returns the virtual time (seconds) the event is scheduled for.
func (e *Event) At() float64 { return e.at }

// Name returns the diagnostic label given at scheduling time.
func (e *Event) Name() string { return e.name }

// cancel prevents a pending event from firing and removes it from the
// engine's queue immediately, so long runs that cancel many events (ticker
// stops, rescheduled watchdogs) do not accumulate dead heap entries. An
// event removed from the queue is recycled on the spot; an event that is
// currently executing or buffered in a lookahead window is only marked —
// the run loop recycles it when it reaches it.
func (e *Event) cancel() {
	if e.cancelled {
		return
	}
	e.cancelled = true
	if e.queue != nil && e.index >= 0 {
		e.queue.Remove(e.index)
		e.eng.release(e)
	}
}

// Handle is a cancellation token for one scheduled event (or, for
// ScheduleEvery, the whole recurring series). It is a value type binding
// the event pointer to the generation it was issued for: once the event
// fires or is cancelled the engine recycles the struct and bumps its
// generation, so a stale handle's Cancel is a guaranteed no-op — a reused
// Event can never be cancelled (or otherwise reached) through a handle to
// its previous life. The zero Handle is valid and refers to nothing.
type Handle struct {
	ev  *Event
	gen uint64
}

// Cancel prevents the handle's event from firing (for recurring events:
// ever again). Cancelling an event that already fired, was already
// cancelled, or a zero Handle is a no-op; Cancel is safe to call from
// within the event's own callback.
func (h Handle) Cancel() {
	if h.ev == nil || h.gen != h.ev.gen {
		return
	}
	h.ev.cancel()
}

// Scheduled reports whether the handle still refers to a live (pending or
// currently executing, not cancelled) event.
func (h Handle) Scheduled() bool {
	return h.ev != nil && h.gen == h.ev.gen && !h.ev.cancelled
}

// At returns the handle's event's scheduled virtual time (for recurring
// events: of the next occurrence), or 0 for a dead or zero handle.
func (h Handle) At() float64 {
	if !h.Scheduled() {
		return 0
	}
	return h.ev.at
}

// Name returns the handle's event's diagnostic label, or "" for a dead or
// zero handle.
func (h Handle) Name() string {
	if !h.Scheduled() {
		return ""
	}
	return h.ev.name
}

// Engine is a discrete-event simulator with a virtual clock.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     float64
	queue   eventQueue
	seq     uint64
	stopped bool

	executed uint64

	// Sharded-execution configuration (see shard.go). The engine runs the
	// classic serial loop unless shards > 1 AND a preparer pair is set.
	shards    int
	prepare   func(key int, at float64)
	prepSafe  func(key int, at float64) bool
	lookahead map[string]float64
	span      float64 // min declared lookahead; +Inf with no declarations

	// Window state, live only inside a sharded run (and, after a Stop
	// mid-window, drained back into the queue before returning).
	win    []*Event
	winPos int
	plan   []prep
	seen   map[int]bool
	shard  [][]prep

	// Per-shard committed execution state (see shard.go and local.go).
	keySpan       int       // SetKeySpan: block key->shard mapping domain
	procs         []*Proc   // one effect buffer per shard, live during runs
	direct        *Proc     // serial-context Proc for local callbacks
	inPar         bool      // a parallel phase is executing (workers live)
	winMeta       []winMeta // aligned with win: execution mode + op ranges
	lq            [][]int   // per-shard local run queues (indexes into win)
	active        []int     // shards with work this window (scratch)
	poison        map[int]bool
	poisoned      []int
	winEnd        float64 // current window's end instant
	winTailUnsafe bool    // window terminated by an unsafe-keyed affine event
	winParMax     float64 // max instant executed on a worker this window

	// Sharded-run statistics (see WindowStats).
	windows   uint64
	windowed  uint64
	prepared  uint64
	committed uint64

	// freeList recycles fired and cancelled Events (see Event). Bounded by
	// the peak number of simultaneously live events, not by event churn.
	freeList []*Event
}

// alloc takes an Event off the free list, or heap-allocates the first time.
func (e *Engine) alloc() *Event {
	if n := len(e.freeList); n > 0 {
		ev := e.freeList[n-1]
		e.freeList[n-1] = nil
		e.freeList = e.freeList[:n-1]
		ev.free = false
		return ev
	}
	return &Event{eng: e}
}

// release recycles a completed (fired or cancelled-and-dequeued) Event:
// bumps its generation so outstanding Handles go stale, clears the fields
// that pin caller memory (callback closure, key slice) and parks it on the
// free list. Exactly one release per event lifetime; the free flag guards
// the invariant.
func (e *Engine) release(ev *Event) {
	if ev.free {
		panic(fmt.Sprintf("sim: event %q released twice", ev.name))
	}
	ev.free = true
	ev.gen++
	ev.fn = nil
	ev.lfn = nil
	ev.name = ""
	ev.keys = nil
	ev.period = 0
	ev.cancelled = false
	ev.queue = nil
	ev.index = -1
	e.freeList = append(e.freeList, ev)
}

// NewEngine returns an engine with the clock at t=0 and an empty queue.
func NewEngine() *Engine {
	e := &Engine{span: math.Inf(1)}
	e.direct = &Proc{eng: e, direct: true}
	return e
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Executed returns the number of events executed so far, a useful progress
// and determinism check.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of live (non-cancelled) events currently
// queued. Cancelled events are removed from the queue eagerly, and a
// stopped sharded run drains its window buffer back into the queue minus
// any tombstones, so the count never includes dead events.
func (e *Engine) Pending() int {
	n := e.queue.Len()
	for _, ev := range e.win[e.winPos:] {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// ScheduleAt registers fn to run at absolute virtual time at (seconds).
// Scheduling in the past is an error; scheduling at the current instant is
// allowed and runs after already-queued events for that instant.
func (e *Engine) ScheduleAt(at float64, name string, fn func(*Engine)) (Handle, error) {
	return e.schedule(at, 0, name, nil, false, fn, nil)
}

// ScheduleAfter registers fn to run delay seconds after the current time.
func (e *Engine) ScheduleAfter(delay float64, name string, fn func(*Engine)) (Handle, error) {
	if delay < 0 {
		return Handle{}, fmt.Errorf("sim: schedule %q: negative delay %v", name, delay)
	}
	return e.schedule(e.now+delay, 0, name, nil, false, fn, nil)
}

// ScheduleAtAffine registers a shard-affine event: the callback touches
// only the model state owned by the given shard keys (it may still read
// the engine and schedule or publish — that part always runs serially).
// Affine events do not terminate a lookahead window; their keyed state may
// be prepared concurrently. The engine keeps the keys slice; callers must
// not mutate it afterwards. See shard.go for the full contract.
func (e *Engine) ScheduleAtAffine(at float64, name string, keys []int, fn func(*Engine)) (Handle, error) {
	return e.schedule(at, 0, name, keys, true, fn, nil)
}

// ScheduleAfterAffine is ScheduleAtAffine relative to the current time.
func (e *Engine) ScheduleAfterAffine(delay float64, name string, keys []int, fn func(*Engine)) (Handle, error) {
	if delay < 0 {
		return Handle{}, fmt.Errorf("sim: schedule %q: negative delay %v", name, delay)
	}
	return e.schedule(e.now+delay, 0, name, keys, true, fn, nil)
}

// ScheduleAtPrepared registers a prepared barrier: a cross-shard event
// (it may touch anything and therefore terminates the lookahead window)
// whose keyed model state is nevertheless known in advance and safe to
// prepare concurrently — e.g. a job-end event whose allocation was fixed
// at start time. The engine keeps the keys slice; callers must not mutate
// it afterwards.
func (e *Engine) ScheduleAtPrepared(at float64, name string, keys []int, fn func(*Engine)) (Handle, error) {
	return e.schedule(at, 0, name, keys, false, fn, nil)
}

// ScheduleAfterPrepared is ScheduleAtPrepared relative to the current time.
func (e *Engine) ScheduleAfterPrepared(delay float64, name string, keys []int, fn func(*Engine)) (Handle, error) {
	if delay < 0 {
		return Handle{}, fmt.Errorf("sim: schedule %q: negative delay %v", name, delay)
	}
	return e.schedule(e.now+delay, 0, name, keys, false, fn, nil)
}

// ScheduleEvery registers fn to run at absolute virtual time start and then
// every period seconds until the returned handle is cancelled. The series
// reuses ONE Event, rescheduled in place after each occurrence, so a
// steady-state ticker allocates nothing per tick. Each occurrence takes a
// fresh sequence number AFTER the callback returns — exactly the order a
// callback that reschedules itself by hand would produce, so porting a
// self-rescheduling closure onto ScheduleEvery is trace-invariant.
func (e *Engine) ScheduleEvery(start, period float64, name string, fn func(*Engine)) (Handle, error) {
	if err := checkPeriod(name, period); err != nil {
		return Handle{}, err
	}
	return e.schedule(start, period, name, nil, false, fn, nil)
}

// ScheduleEveryAffine is ScheduleEvery for a shard-affine callback (see
// ScheduleAtAffine for the affinity contract).
func (e *Engine) ScheduleEveryAffine(start, period float64, name string, keys []int, fn func(*Engine)) (Handle, error) {
	if err := checkPeriod(name, period); err != nil {
		return Handle{}, err
	}
	return e.schedule(start, period, name, keys, true, fn, nil)
}

func checkPeriod(name string, period float64) error {
	if math.IsNaN(period) || math.IsInf(period, 0) || period <= 0 {
		return fmt.Errorf("sim: schedule %q: period must be positive, got %v", name, period)
	}
	return nil
}

func (e *Engine) schedule(at, period float64, name string, keys []int, affine bool, fn func(*Engine), lfn func(*Proc)) (Handle, error) {
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return Handle{}, fmt.Errorf("sim: schedule %q: invalid time %v", name, at)
	}
	if at < e.now {
		return Handle{}, fmt.Errorf("sim: schedule %q: time %.9f is before now %.9f", name, at, e.now)
	}
	ev := e.alloc()
	ev.at, ev.seq, ev.fn, ev.name = at, e.seq, fn, name
	ev.lfn = lfn
	ev.keys, ev.affine, ev.period = keys, affine, period
	ev.queue = &e.queue
	e.seq++
	e.queue.Push(ev)
	return Handle{ev: ev, gen: ev.gen}, nil
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// SetShards sets the worker count of the sharded run loop. Values below 2
// keep the serial loop (shard 1 is the single-shard ablation and is the
// serial engine by construction). Parallel execution also requires a
// preparer (SetPreparer).
func (e *Engine) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	e.shards = n
}

// Shards returns the configured shard count (minimum 1).
func (e *Engine) Shards() int {
	if e.shards < 1 {
		return 1
	}
	return e.shards
}

// SetPreparer installs the shard-state prefetcher pair. prepare(key, at)
// integrates the keyed model state exactly to virtual time at; it is called
// from shard worker goroutines and must touch only key-owned state. safe
// reports whether preparing the key to that time cannot fire a state
// transition (a key near a transition makes its event window-terminal and
// is integrated serially instead). Both must be non-nil for the sharded
// loop to activate.
func (e *Engine) SetPreparer(prepare func(key int, at float64), safe func(key int, at float64) bool) {
	e.prepare = prepare
	e.prepSafe = safe
}

// DeclareLookahead records a conservative lookahead lower bound: the
// subsystem named name guarantees that no state revision it owns can
// require attention sooner than dt seconds after any instant. The sharded
// loop caps each window's time span at the minimum declared bound, which
// guarantees that events scheduled DURING a window (watchdog replans,
// phase transitions, ticker reschedules) always land beyond it — windows
// therefore execute exactly the event set they prepared. Declaring a bound
// can only shrink windows; correctness never depends on which bounds are
// declared, only throughput does.
func (e *Engine) DeclareLookahead(name string, dt float64) error {
	if math.IsNaN(dt) || dt <= 0 {
		return fmt.Errorf("sim: lookahead %q: bound must be positive, got %v", name, dt)
	}
	if e.lookahead == nil {
		e.lookahead = make(map[string]float64)
	}
	e.lookahead[name] = dt
	e.span = math.Inf(1)
	for _, d := range e.lookahead {
		if d < e.span {
			e.span = d
		}
	}
	return nil
}

// Lookahead returns the effective window span bound (+Inf when nothing is
// declared; windows then end only at barriers).
func (e *Engine) Lookahead() float64 { return e.span }

// WindowStats reports the sharded loop's cumulative window count, events
// committed through windows, shard-prepared keys, and events whose
// callbacks executed entirely on shard workers. prepared/windows is the
// mean per-window parallel width — the work available to shard workers
// regardless of how many CPUs the host actually has — and
// committed/events is the committed-parallel fraction: the share of the
// event stream that left the serial loop altogether.
func (e *Engine) WindowStats() (windows, events, prepared, committed uint64) {
	return e.windows, e.windowed, e.prepared, e.committed
}

// parallel reports whether runs use the sharded windowed loop.
func (e *Engine) parallel() bool {
	return e.shards > 1 && e.prepare != nil && e.prepSafe != nil
}

// sweepTombstones pops cancelled events off the queue head so Pending
// reports live events only after a run exits (cancellation inside the
// window buffer marks events without removing them; this is the terminal
// drain mirroring the eager in-queue removal).
func (e *Engine) sweepTombstones() {
	for e.queue.Len() > 0 && e.queue.Peek().cancelled {
		e.release(e.queue.Pop())
	}
}

// fire executes one popped event at its instant, then either recycles it
// or — for a live recurring event — reschedules it in place: advance at by
// the period, stamp the NEXT free sequence number (the callback's own
// scheduling activity comes first, preserving the exact order a
// self-rescheduling closure produced) and push the same struct back.
func (e *Engine) fire(ev *Event) {
	e.now = ev.at
	e.executed++
	if ev.lfn != nil {
		// Local event on the serial loop (serial engine, or a demoted local
		// on the sharded one): the direct Proc applies effects immediately,
		// making the local API byte-identical to the plain one here.
		ev.lfn(e.direct)
	} else {
		ev.fn(e)
	}
	if ev.period > 0 && !ev.cancelled {
		ev.at += ev.period
		ev.seq = e.seq
		e.seq++
		ev.queue = &e.queue
		e.queue.Push(ev)
		return
	}
	e.release(ev)
}

// Step executes the single next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := e.queue.Pop()
		if ev.cancelled {
			e.release(ev) // cancelled mid-pop by a concurrent callback; skip
			continue
		}
		e.fire(ev)
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is exhausted or the next
// event lies strictly beyond horizon; the clock is then advanced to horizon.
// It returns ErrStopped if Stop was called during execution.
func (e *Engine) RunUntil(horizon float64) error {
	if horizon < e.now {
		return fmt.Errorf("sim: horizon %.9f is before now %.9f", horizon, e.now)
	}
	if e.parallel() {
		return e.runSharded(horizon, true)
	}
	e.stopped = false
	for e.queue.Len() > 0 {
		next := e.queue.Peek()
		if next.cancelled {
			e.release(e.queue.Pop())
			continue
		}
		if next.at > horizon {
			break
		}
		e.Step()
		if e.stopped {
			e.sweepTombstones()
			return ErrStopped
		}
	}
	e.sweepTombstones()
	e.now = horizon
	return nil
}

// Run executes all pending events (including ones scheduled while running)
// until the queue drains. It returns ErrStopped if Stop was called.
func (e *Engine) Run() error {
	if e.parallel() {
		return e.runSharded(math.Inf(1), false)
	}
	e.stopped = false
	for e.Step() {
		if e.stopped {
			e.sweepTombstones()
			return ErrStopped
		}
	}
	return nil
}
