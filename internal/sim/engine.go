// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock measured in seconds since simulation
// start. Events are callbacks scheduled at absolute or relative virtual
// times and are executed in non-decreasing time order; events scheduled for
// the same instant run in scheduling order, which makes simulations fully
// deterministic and therefore reproducible in tests and benchmarks.
//
// All Monte Cimone subsystem models (power rails, thermal network, telemetry
// samplers, scheduler, boot sequencing) are driven by a single Engine so
// that their interleaving is well defined.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Engine.Stop before reaching the requested horizon.
var ErrStopped = errors.New("sim: engine stopped")

// Event is a scheduled callback. The callback receives the engine so it can
// schedule follow-up events; it runs at exactly its scheduled virtual time.
type Event struct {
	at   float64
	seq  uint64
	fn   func(*Engine)
	name string

	cancelled bool
	queue     *eventQueue // owning queue while pending, nil once popped
	index     int         // heap index, -1 once popped or cancelled
}

// At returns the virtual time (seconds) the event is scheduled for.
func (e *Event) At() float64 { return e.at }

// Name returns the diagnostic label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Cancel prevents a pending event from firing and removes it from the
// engine's queue immediately, so long runs that cancel many events (ticker
// stops, rescheduled watchdogs) do not accumulate dead heap entries.
// Cancelling an event that has already fired (or was already cancelled) is
// a no-op.
func (e *Event) Cancel() {
	e.cancelled = true
	if e.queue != nil && e.index >= 0 {
		e.queue.Remove(e.index)
	}
}

// Engine is a discrete-event simulator with a virtual clock.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     float64
	queue   eventQueue
	seq     uint64
	stopped bool

	executed uint64
}

// NewEngine returns an engine with the clock at t=0 and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Executed returns the number of events executed so far, a useful progress
// and determinism check.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of live (non-cancelled) events currently
// queued. Cancelled events are removed from the queue eagerly, so the count
// never includes them.
func (e *Engine) Pending() int { return e.queue.Len() }

// ScheduleAt registers fn to run at absolute virtual time at (seconds).
// Scheduling in the past is an error; scheduling at the current instant is
// allowed and runs after already-queued events for that instant.
func (e *Engine) ScheduleAt(at float64, name string, fn func(*Engine)) (*Event, error) {
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return nil, fmt.Errorf("sim: schedule %q: invalid time %v", name, at)
	}
	if at < e.now {
		return nil, fmt.Errorf("sim: schedule %q: time %.9f is before now %.9f", name, at, e.now)
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, name: name, queue: &e.queue}
	e.seq++
	e.queue.Push(ev)
	return ev, nil
}

// ScheduleAfter registers fn to run delay seconds after the current time.
func (e *Engine) ScheduleAfter(delay float64, name string, fn func(*Engine)) (*Event, error) {
	if delay < 0 {
		return nil, fmt.Errorf("sim: schedule %q: negative delay %v", name, delay)
	}
	return e.ScheduleAt(e.now+delay, name, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := e.queue.Pop()
		if ev.cancelled {
			continue // cancelled mid-pop by a concurrent callback; skip
		}
		e.now = ev.at
		e.executed++
		ev.fn(e)
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is exhausted or the next
// event lies strictly beyond horizon; the clock is then advanced to horizon.
// It returns ErrStopped if Stop was called during execution.
func (e *Engine) RunUntil(horizon float64) error {
	if horizon < e.now {
		return fmt.Errorf("sim: horizon %.9f is before now %.9f", horizon, e.now)
	}
	e.stopped = false
	for e.queue.Len() > 0 {
		next := e.queue.Peek()
		if next.cancelled {
			e.queue.Pop()
			continue
		}
		if next.at > horizon {
			break
		}
		e.Step()
		if e.stopped {
			return ErrStopped
		}
	}
	e.now = horizon
	return nil
}

// Run executes all pending events (including ones scheduled while running)
// until the queue drains. It returns ErrStopped if Stop was called.
func (e *Engine) Run() error {
	e.stopped = false
	for e.Step() {
		if e.stopped {
			return ErrStopped
		}
	}
	return nil
}
