// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock measured in seconds since simulation
// start. Events are callbacks scheduled at absolute or relative virtual
// times and are executed in non-decreasing time order; events scheduled for
// the same instant run in scheduling order, which makes simulations fully
// deterministic and therefore reproducible in tests and benchmarks.
//
// All Monte Cimone subsystem models (power rails, thermal network, telemetry
// samplers, scheduler, boot sequencing) are driven by a single Engine so
// that their interleaving is well defined.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Engine.Stop before reaching the requested horizon.
var ErrStopped = errors.New("sim: engine stopped")

// Event is a scheduled callback. The callback receives the engine so it can
// schedule follow-up events; it runs at exactly its scheduled virtual time.
type Event struct {
	at   float64
	seq  uint64
	fn   func(*Engine)
	name string

	// keys lists the shard keys (node indexes) whose model state the
	// callback integrates, and affine marks the event as touching ONLY that
	// keyed state. The sharded run loop prefetches keyed state in parallel
	// ahead of the serial commit; see shard.go for the contract.
	keys   []int
	affine bool

	cancelled bool
	queue     *eventQueue // owning queue while pending, nil once popped
	index     int         // heap index, -1 once popped or cancelled
}

// At returns the virtual time (seconds) the event is scheduled for.
func (e *Event) At() float64 { return e.at }

// Name returns the diagnostic label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Cancel prevents a pending event from firing and removes it from the
// engine's queue immediately, so long runs that cancel many events (ticker
// stops, rescheduled watchdogs) do not accumulate dead heap entries.
// Cancelling an event that has already fired (or was already cancelled) is
// a no-op.
func (e *Event) Cancel() {
	e.cancelled = true
	if e.queue != nil && e.index >= 0 {
		e.queue.Remove(e.index)
	}
}

// Engine is a discrete-event simulator with a virtual clock.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     float64
	queue   eventQueue
	seq     uint64
	stopped bool

	executed uint64

	// Sharded-execution configuration (see shard.go). The engine runs the
	// classic serial loop unless shards > 1 AND a preparer pair is set.
	shards    int
	prepare   func(key int, at float64)
	prepSafe  func(key int, at float64) bool
	lookahead map[string]float64
	span      float64 // min declared lookahead; +Inf with no declarations

	// Window state, live only inside a sharded run (and, after a Stop
	// mid-window, drained back into the queue before returning).
	win    []*Event
	winPos int
	plan   []prep
	seen   map[int]bool
	shard  [][]prep

	// Sharded-run statistics (see WindowStats).
	windows  uint64
	windowed uint64
	prepared uint64
}

// NewEngine returns an engine with the clock at t=0 and an empty queue.
func NewEngine() *Engine {
	return &Engine{span: math.Inf(1)}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Executed returns the number of events executed so far, a useful progress
// and determinism check.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of live (non-cancelled) events currently
// queued. Cancelled events are removed from the queue eagerly, and a
// stopped sharded run drains its window buffer back into the queue minus
// any tombstones, so the count never includes dead events.
func (e *Engine) Pending() int {
	n := e.queue.Len()
	for _, ev := range e.win[e.winPos:] {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// ScheduleAt registers fn to run at absolute virtual time at (seconds).
// Scheduling in the past is an error; scheduling at the current instant is
// allowed and runs after already-queued events for that instant.
func (e *Engine) ScheduleAt(at float64, name string, fn func(*Engine)) (*Event, error) {
	return e.schedule(at, name, nil, false, fn)
}

// ScheduleAfter registers fn to run delay seconds after the current time.
func (e *Engine) ScheduleAfter(delay float64, name string, fn func(*Engine)) (*Event, error) {
	if delay < 0 {
		return nil, fmt.Errorf("sim: schedule %q: negative delay %v", name, delay)
	}
	return e.schedule(e.now+delay, name, nil, false, fn)
}

// ScheduleAtAffine registers a shard-affine event: the callback touches
// only the model state owned by the given shard keys (it may still read
// the engine and schedule or publish — that part always runs serially).
// Affine events do not terminate a lookahead window; their keyed state may
// be prepared concurrently. The engine keeps the keys slice; callers must
// not mutate it afterwards. See shard.go for the full contract.
func (e *Engine) ScheduleAtAffine(at float64, name string, keys []int, fn func(*Engine)) (*Event, error) {
	return e.schedule(at, name, keys, true, fn)
}

// ScheduleAfterAffine is ScheduleAtAffine relative to the current time.
func (e *Engine) ScheduleAfterAffine(delay float64, name string, keys []int, fn func(*Engine)) (*Event, error) {
	if delay < 0 {
		return nil, fmt.Errorf("sim: schedule %q: negative delay %v", name, delay)
	}
	return e.schedule(e.now+delay, name, keys, true, fn)
}

// ScheduleAtPrepared registers a prepared barrier: a cross-shard event
// (it may touch anything and therefore terminates the lookahead window)
// whose keyed model state is nevertheless known in advance and safe to
// prepare concurrently — e.g. a job-end event whose allocation was fixed
// at start time. The engine keeps the keys slice; callers must not mutate
// it afterwards.
func (e *Engine) ScheduleAtPrepared(at float64, name string, keys []int, fn func(*Engine)) (*Event, error) {
	return e.schedule(at, name, keys, false, fn)
}

// ScheduleAfterPrepared is ScheduleAtPrepared relative to the current time.
func (e *Engine) ScheduleAfterPrepared(delay float64, name string, keys []int, fn func(*Engine)) (*Event, error) {
	if delay < 0 {
		return nil, fmt.Errorf("sim: schedule %q: negative delay %v", name, delay)
	}
	return e.schedule(e.now+delay, name, keys, false, fn)
}

func (e *Engine) schedule(at float64, name string, keys []int, affine bool, fn func(*Engine)) (*Event, error) {
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return nil, fmt.Errorf("sim: schedule %q: invalid time %v", name, at)
	}
	if at < e.now {
		return nil, fmt.Errorf("sim: schedule %q: time %.9f is before now %.9f", name, at, e.now)
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, name: name, keys: keys, affine: affine, queue: &e.queue}
	e.seq++
	e.queue.Push(ev)
	return ev, nil
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// SetShards sets the worker count of the sharded run loop. Values below 2
// keep the serial loop (shard 1 is the single-shard ablation and is the
// serial engine by construction). Parallel execution also requires a
// preparer (SetPreparer).
func (e *Engine) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	e.shards = n
}

// Shards returns the configured shard count (minimum 1).
func (e *Engine) Shards() int {
	if e.shards < 1 {
		return 1
	}
	return e.shards
}

// SetPreparer installs the shard-state prefetcher pair. prepare(key, at)
// integrates the keyed model state exactly to virtual time at; it is called
// from shard worker goroutines and must touch only key-owned state. safe
// reports whether preparing the key to that time cannot fire a state
// transition (a key near a transition makes its event window-terminal and
// is integrated serially instead). Both must be non-nil for the sharded
// loop to activate.
func (e *Engine) SetPreparer(prepare func(key int, at float64), safe func(key int, at float64) bool) {
	e.prepare = prepare
	e.prepSafe = safe
}

// DeclareLookahead records a conservative lookahead lower bound: the
// subsystem named name guarantees that no state revision it owns can
// require attention sooner than dt seconds after any instant. The sharded
// loop caps each window's time span at the minimum declared bound, which
// guarantees that events scheduled DURING a window (watchdog replans,
// phase transitions, ticker reschedules) always land beyond it — windows
// therefore execute exactly the event set they prepared. Declaring a bound
// can only shrink windows; correctness never depends on which bounds are
// declared, only throughput does.
func (e *Engine) DeclareLookahead(name string, dt float64) error {
	if math.IsNaN(dt) || dt <= 0 {
		return fmt.Errorf("sim: lookahead %q: bound must be positive, got %v", name, dt)
	}
	if e.lookahead == nil {
		e.lookahead = make(map[string]float64)
	}
	e.lookahead[name] = dt
	e.span = math.Inf(1)
	for _, d := range e.lookahead {
		if d < e.span {
			e.span = d
		}
	}
	return nil
}

// Lookahead returns the effective window span bound (+Inf when nothing is
// declared; windows then end only at barriers).
func (e *Engine) Lookahead() float64 { return e.span }

// WindowStats reports the sharded loop's cumulative window count, events
// committed through windows, and shard-prepared keys. prepared/windows is
// the mean per-window parallel width — the work available to shard
// workers regardless of how many CPUs the host actually has.
func (e *Engine) WindowStats() (windows, events, prepared uint64) {
	return e.windows, e.windowed, e.prepared
}

// parallel reports whether runs use the sharded windowed loop.
func (e *Engine) parallel() bool {
	return e.shards > 1 && e.prepare != nil && e.prepSafe != nil
}

// sweepTombstones pops cancelled events off the queue head so Pending
// reports live events only after a run exits (cancellation inside the
// window buffer marks events without removing them; this is the terminal
// drain mirroring the eager in-queue removal).
func (e *Engine) sweepTombstones() {
	for e.queue.Len() > 0 && e.queue.Peek().cancelled {
		e.queue.Pop()
	}
}

// Step executes the single next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := e.queue.Pop()
		if ev.cancelled {
			continue // cancelled mid-pop by a concurrent callback; skip
		}
		e.now = ev.at
		e.executed++
		ev.fn(e)
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is exhausted or the next
// event lies strictly beyond horizon; the clock is then advanced to horizon.
// It returns ErrStopped if Stop was called during execution.
func (e *Engine) RunUntil(horizon float64) error {
	if horizon < e.now {
		return fmt.Errorf("sim: horizon %.9f is before now %.9f", horizon, e.now)
	}
	if e.parallel() {
		return e.runSharded(horizon, true)
	}
	e.stopped = false
	for e.queue.Len() > 0 {
		next := e.queue.Peek()
		if next.cancelled {
			e.queue.Pop()
			continue
		}
		if next.at > horizon {
			break
		}
		e.Step()
		if e.stopped {
			e.sweepTombstones()
			return ErrStopped
		}
	}
	e.sweepTombstones()
	e.now = horizon
	return nil
}

// Run executes all pending events (including ones scheduled while running)
// until the queue drains. It returns ErrStopped if Stop was called.
func (e *Engine) Run() error {
	if e.parallel() {
		return e.runSharded(math.Inf(1), false)
	}
	e.stopped = false
	for e.Step() {
		if e.stopped {
			e.sweepTombstones()
			return ErrStopped
		}
	}
	return nil
}
