package sim

// eventQueue is a binary min-heap of events ordered by (time, sequence).
// It is hand-rolled rather than using container/heap to avoid interface
// boxing on the hot path; the engine executes millions of telemetry events
// per simulated experiment.
type eventQueue struct {
	items []*Event
}

// Len returns the number of queued events.
func (q *eventQueue) Len() int { return len(q.items) }

// Peek returns the earliest event without removing it. It panics on an
// empty queue; callers check Len first.
func (q *eventQueue) Peek() *Event { return q.items[0] }

// Push inserts an event into the heap.
func (q *eventQueue) Push(ev *Event) {
	q.items = append(q.items, ev)
	ev.index = len(q.items) - 1
	q.up(ev.index)
}

// Pop removes and returns the earliest event.
func (q *eventQueue) Pop() *Event {
	n := len(q.items)
	top := q.items[0]
	q.items[0] = q.items[n-1]
	q.items[0].index = 0
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	if len(q.items) > 0 {
		q.down(0)
	}
	top.index = -1
	top.queue = nil
	q.shrink()
	return top
}

// Remove deletes the event at heap index i (used by Event.cancel to drop
// cancelled events eagerly instead of letting them age to the front).
func (q *eventQueue) Remove(i int) {
	n := len(q.items)
	if i < 0 || i >= n {
		return
	}
	ev := q.items[i]
	last := n - 1
	if i != last {
		q.swap(i, last)
	}
	q.items[last] = nil
	q.items = q.items[:last]
	if i != last {
		// The swapped-in element may need to move either way.
		q.down(i)
		q.up(i)
	}
	ev.index = -1
	ev.queue = nil
	q.shrink()
}

// minShrinkCap is the backing-array capacity below which the heap never
// shrinks, so small queues don't thrash the allocator.
const minShrinkCap = 64

// shrink releases backing capacity once occupancy drops below a quarter:
// a burst (campaign submission wave, fault storm) would otherwise pin its
// peak heap array for the rest of the run. The copy preserves slot order,
// so heap indices stay valid; the new capacity keeps 2x headroom to avoid
// realloc ping-pong around the threshold.
func (q *eventQueue) shrink() {
	n := len(q.items)
	if cap(q.items) <= minShrinkCap || n >= cap(q.items)/4 {
		return
	}
	c := 2 * n
	if c < minShrinkCap {
		c = minShrinkCap
	}
	items := make([]*Event, n, c)
	copy(items, q.items)
	q.items = items
}

func (q *eventQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}

func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *eventQueue) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
