package sim

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// TestScheduleEveryDriftFree checks the recurring timer's tick arithmetic:
// occurrences accumulate as at += period from the start instant, so over a
// long horizon tick k stays within float-accumulation distance of
// start + k*period — no systematic drift from rescheduling relative to
// "now", no quantization to the engine's event grid. The period is chosen
// binary-inexact (0.1 s, the power_pub class of rates) to make any
// re-derivation of tick times from the current clock visible.
func TestScheduleEveryDriftFree(t *testing.T) {
	e := NewEngine()
	const (
		start  = 0.05
		period = 0.1
		ticks  = 10000
	)
	var got []float64
	h, err := e.ScheduleEvery(start, period, "drift", func(e *Engine) {
		got = append(got, e.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(start + period*ticks); err != nil {
		t.Fatal(err)
	}
	if len(got) < ticks {
		t.Fatalf("got %d ticks, want at least %d", len(got), ticks)
	}
	// Exact contract: the k-th tick is bit-identical to k accumulated adds.
	acc := start
	for k, at := range got {
		if at != acc {
			t.Fatalf("tick %d at %v, want accumulated %v", k, at, acc)
		}
		// No drift: accumulation error over 10k ticks of 0.1 s is ~1e-12;
		// anything above a microsecond means the timer re-derived its grid.
		if math.Abs(at-(start+float64(k)*period)) > 1e-6 {
			t.Fatalf("tick %d drifted to %v (ideal %v)", k, at, start+float64(k)*period)
		}
		acc += period
	}
	h.Cancel()
	if e.Pending() != 0 {
		t.Fatalf("%d events pending after cancelling the series", e.Pending())
	}
}

// TestScheduleEveryCancelMidPeriod cancels a recurring series between two
// occurrences and from within its own callback, checking that no further
// tick fires in either case and the handle goes dead immediately.
func TestScheduleEveryCancelMidPeriod(t *testing.T) {
	e := NewEngine()
	ticksA := 0
	hA, err := e.ScheduleEvery(1, 1, "a", func(*Engine) { ticksA++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(3.5); err != nil { // ticks at 1, 2, 3; next due at 4
		t.Fatal(err)
	}
	if ticksA != 3 {
		t.Fatalf("ticked %d times before cancel, want 3", ticksA)
	}
	hA.Cancel() // mid-period: clock at 3.5, next occurrence at 4
	if hA.Scheduled() {
		t.Fatal("cancelled series still reports scheduled")
	}
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if ticksA != 3 {
		t.Fatalf("series ticked after mid-period cancel: %d", ticksA)
	}
	hA.Cancel() // idempotent

	// Cancel from within the callback: the engine must not reschedule the
	// occurrence that cancelled itself.
	ticksB := 0
	var hB Handle
	hB, err = e.ScheduleEvery(e.Now()+1, 1, "b", func(*Engine) {
		ticksB++
		if ticksB == 2 {
			hB.Cancel()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(e.Now() + 10); err != nil {
		t.Fatal(err)
	}
	if ticksB != 2 {
		t.Fatalf("self-cancel ticked %d times, want 2", ticksB)
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events pending after self-cancel", e.Pending())
	}
}

// TestScheduleEveryTraceMatchesSelfRescheduling replays the historical
// ticker pattern — a closure that runs the callback and then reschedules
// itself with ScheduleAt — against ScheduleEvery on a second engine, and
// requires byte-identical traces. The workload is adversarial for ordering:
// two periods that collide on a common grid (so same-instant sequence
// numbers decide), and a callback that schedules one-shot follow-up events
// (so the relative seq of "work scheduled by the tick" versus "the next
// tick" matters). This is the invariant that made porting every sampler
// onto the recurring-timer API a pure perf change.
func TestScheduleEveryTraceMatchesSelfRescheduling(t *testing.T) {
	run := func(recurring bool) []string {
		e := NewEngine()
		var trace []string
		note := func(tag string) func(*Engine) {
			return func(e *Engine) {
				trace = append(trace, fmt.Sprintf("%.9f %s", e.Now(), tag))
			}
		}
		// Each fast tick also schedules a follow-up half a period out.
		tickFast := func(e *Engine) {
			note("fast")(e)
			if _, err := e.ScheduleAfter(0.25, "follow", note("follow")); err != nil {
				t.Fatal(err)
			}
		}
		tickSlow := note("slow")
		if recurring {
			if _, err := e.ScheduleEvery(0.5, 0.5, "fast", tickFast); err != nil {
				t.Fatal(err)
			}
			if _, err := e.ScheduleEvery(1, 1, "slow", tickSlow); err != nil {
				t.Fatal(err)
			}
		} else {
			// The historical shape: run the callback, then reschedule.
			var selfFast, selfSlow func(*Engine)
			nextFast, nextSlow := 0.5, 1.0
			selfFast = func(e *Engine) {
				tickFast(e)
				nextFast += 0.5
				if _, err := e.ScheduleAt(nextFast, "fast", selfFast); err != nil {
					t.Fatal(err)
				}
			}
			selfSlow = func(e *Engine) {
				tickSlow(e)
				nextSlow += 1
				if _, err := e.ScheduleAt(nextSlow, "slow", selfSlow); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := e.ScheduleAt(nextFast, "fast", selfFast); err != nil {
				t.Fatal(err)
			}
			if _, err := e.ScheduleAt(nextSlow, "slow", selfSlow); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.RunUntil(20); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	old := run(false)
	porting := run(true)
	if len(old) == 0 {
		t.Fatal("empty trace")
	}
	if !reflect.DeepEqual(old, porting) {
		for i := range old {
			if i >= len(porting) {
				t.Fatalf("ScheduleEvery trace truncated at %d (self-rescheduling has %q)", i, old[i])
			}
			if old[i] != porting[i] {
				t.Fatalf("traces diverge at %d: self-rescheduling %q, ScheduleEvery %q",
					i, old[i], porting[i])
			}
		}
		t.Fatalf("trace lengths differ: %d vs %d", len(old), len(porting))
	}
}

// TestScheduleEveryRejectsBadPeriods covers the argument contract.
func TestScheduleEveryRejectsBadPeriods(t *testing.T) {
	e := NewEngine()
	for _, period := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := e.ScheduleEvery(1, period, "bad", func(*Engine) {}); err == nil {
			t.Errorf("period %v accepted", period)
		}
	}
}
