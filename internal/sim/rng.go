package sim

import (
	"hash/fnv"
	"math/rand"
)

// RNG is a named collection of deterministic random streams. Each subsystem
// asks for a stream by name; the stream's seed is derived from the master
// seed and the name, so adding a new consumer never perturbs the draws seen
// by existing consumers. This keeps measured "noise" (sensor jitter, run-to-
// run standard deviations) reproducible across runs and across refactors.
type RNG struct {
	master  int64
	streams map[string]*rand.Rand
}

// NewRNG returns a stream factory rooted at the given master seed.
func NewRNG(master int64) *RNG {
	return &RNG{master: master, streams: make(map[string]*rand.Rand)}
}

// Stream returns the deterministic stream for name, creating it on first use.
func (r *RNG) Stream(name string) *rand.Rand {
	if s, ok := r.streams[name]; ok {
		return s
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	seed := r.master ^ int64(h.Sum64())
	s := rand.New(rand.NewSource(seed))
	r.streams[name] = s
	return s
}

// Normal draws from a normal distribution with the given mean and standard
// deviation using the named stream.
func (r *RNG) Normal(stream string, mean, stddev float64) float64 {
	return mean + stddev*r.Stream(stream).NormFloat64()
}
