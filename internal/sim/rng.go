package sim

import (
	"hash/fnv"
	"math/rand"
	"strconv"
)

// RNG is a named collection of deterministic random streams. Each subsystem
// asks for a stream by name; the stream's seed is derived from the master
// seed and the name, so adding a new consumer never perturbs the draws seen
// by existing consumers. This keeps measured "noise" (sensor jitter, run-to-
// run standard deviations) reproducible across runs and across refactors.
type RNG struct {
	master  int64
	streams map[string]*rand.Rand
}

// NewRNG returns a stream factory rooted at the given master seed.
func NewRNG(master int64) *RNG {
	return &RNG{master: master, streams: make(map[string]*rand.Rand)}
}

// Stream returns the deterministic stream for name, creating it on first use.
func (r *RNG) Stream(name string) *rand.Rand {
	if s, ok := r.streams[name]; ok {
		return s
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	seed := r.master ^ int64(h.Sum64())
	s := rand.New(rand.NewSource(seed))
	r.streams[name] = s
	return s
}

// Normal draws from a normal distribution with the given mean and standard
// deviation using the named stream.
func (r *RNG) Normal(stream string, mean, stddev float64) float64 {
	return mean + stddev*r.Stream(stream).NormFloat64()
}

// Derive returns a child stream factory whose master seed mixes the given
// name into this factory's master seed. A derived factory's streams are
// fully determined by (parent seed, name): independent of how many other
// factories are derived, of the order they are derived in, and of any
// draws taken from the parent or from sibling factories. This is the
// namespacing primitive behind shard workers (ForShard) and the fleet
// runner's per-cluster factories ("fleet.cluster.<id>") — adding or
// removing one consumer never perturbs another consumer's timeline.
func (r *RNG) Derive(name string) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return NewRNG(r.master ^ int64(h.Sum64()))
}

// ForShard derives the stream factory for one shard of a sharded run. The
// child's master seed mixes the shard index into this factory's master
// seed by name ("sim.shard.<i>"), so shard streams are fully determined by
// the campaign seed and the shard index alone: independent of the total
// shard count, of the order shards ask for their factories, and of any
// draws taken from other shards or from the parent. Consumers that draw
// noise on shard workers must draw from their shard's factory; serial
// consumers keep drawing from the parent and see identical values at any
// shard count.
func (r *RNG) ForShard(shard int) *RNG {
	return r.Derive("sim.shard." + strconv.Itoa(shard))
}
