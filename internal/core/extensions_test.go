package core

import (
	"math"
	"testing"

	"montecimone/internal/node"
)

func TestThermalAnomalyScanWarnsBeforeTrip(t *testing.T) {
	rep, err := ThermalAnomalyScan(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetectedAt < 0 {
		t.Fatal("runaway on mc07 not detected")
	}
	if rep.LeadSeconds <= 10 {
		t.Errorf("lead time = %.0f s, want a useful warning margin", rep.LeadSeconds)
	}
	if rep.DetectedAt >= rep.TripAt {
		t.Errorf("detected at %.0f after trip at %.0f", rep.DetectedAt, rep.TripAt)
	}
	// No runaway findings on well-behaved nodes.
	for _, a := range rep.Findings {
		if a.Tags.Node != "mc07" {
			t.Errorf("false positive on %s: %+v", a.Tags.Node, a)
		}
	}
}

func TestDTMStudyKeepsNode7Alive(t *testing.T) {
	rep, err := DTMStudy(0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Survived {
		t.Fatal("node 7 tripped despite the governor")
	}
	if rep.SteadyTempC > 96.5 {
		t.Errorf("steady temp %.1f above the default 95 degC cap", rep.SteadyTempC)
	}
	if rep.MeanScale >= 1 || rep.MeanScale < node.MinFreqScale {
		t.Errorf("mean scale = %.3f, want throttled within limits", rep.MeanScale)
	}
	if rep.ThrottledSeconds <= 0 {
		t.Error("no throttling recorded")
	}
}

func TestEnergyToSolution(t *testing.T) {
	rep, err := EnergyToSolution()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.NodeIdleWatts-4.810) > 0.001 || math.Abs(rep.NodeHPLWatts-5.939) > 0.02 {
		t.Errorf("node watts = %.3f / %.3f", rep.NodeIdleWatts, rep.NodeHPLWatts)
	}
	// Single node: ~5.94 W x ~23.7 ks ~ 141 kJ; ~0.32 GFLOPS/W.
	if rep.SingleNodeKJ < 130 || rep.SingleNodeKJ > 150 {
		t.Errorf("single-node energy = %.1f kJ", rep.SingleNodeKJ)
	}
	if rep.SingleNodeGFlopsPerWatt < 0.30 || rep.SingleNodeGFlopsPerWatt > 0.34 {
		t.Errorf("single-node efficiency = %.3f GFLOPS/W", rep.SingleNodeGFlopsPerWatt)
	}
	// The full machine is less energy efficient (communication idles the
	// FPUs at full board power).
	if rep.FullMachineGFlopsPerWatt >= rep.SingleNodeGFlopsPerWatt {
		t.Errorf("full machine %.3f GFLOPS/W not below single node %.3f",
			rep.FullMachineGFlopsPerWatt, rep.SingleNodeGFlopsPerWatt)
	}
}

func TestAcceleratorStudy(t *testing.T) {
	rep, err := AcceleratorStudy()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speedup < 5 {
		t.Errorf("speedup = %.2f", rep.Speedup)
	}
	if rep.AccelGFlopsPerWatt <= rep.HostGFlopsPerWatt {
		t.Errorf("card did not improve GFLOPS/W: %.3f vs %.3f",
			rep.AccelGFlopsPerWatt, rep.HostGFlopsPerWatt)
	}
	if rep.NodeWattsWithCard <= rep.HostGFlops/rep.HostGFlopsPerWatt {
		t.Error("card power unaccounted")
	}
}

func TestDTMStudyLowerCapThrottlesHarder(t *testing.T) {
	warm, err := DTMStudy(95)
	if err != nil {
		t.Fatal(err)
	}
	cool, err := DTMStudy(80)
	if err != nil {
		t.Fatal(err)
	}
	if !cool.Survived {
		t.Fatal("80 degC cap run tripped")
	}
	if cool.MeanScale >= warm.MeanScale {
		t.Errorf("lower cap should throttle harder: %.3f vs %.3f", cool.MeanScale, warm.MeanScale)
	}
	if cool.SteadyTempC >= warm.SteadyTempC {
		t.Errorf("lower cap should run cooler: %.1f vs %.1f", cool.SteadyTempC, warm.SteadyTempC)
	}
}
