package core

import (
	"math"
	"strings"
	"testing"

	"montecimone/internal/power"
	"montecimone/internal/sched"
)

func TestSystemBootAndClose(t *testing.T) {
	s, err := NewSystem(Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(20); err != nil {
		t.Fatal(err)
	}
	if s.DB.SeriesCount() == 0 {
		t.Error("monitoring produced no series after boot")
	}
	rows := s.Scheduler.Sinfo()
	if len(rows) != 2 {
		t.Errorf("sinfo rows = %d", len(rows))
	}
}

func TestSystemNoMonitor(t *testing.T) {
	s, err := NewSystem(Options{Nodes: 1, NoMonitor: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(20); err != nil {
		t.Fatal(err)
	}
	if s.DB.SeriesCount() != 0 {
		t.Error("monitoring ran despite NoMonitor")
	}
}

func TestLoginFlow(t *testing.T) {
	s, err := NewSystem(Options{Nodes: 1, NoMonitor: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess, err := s.Login("bench", "hpl-2.3-runs")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Host != "mclogin" || sess.User.Home != "/home/bench" {
		t.Errorf("session = %+v", sess)
	}
	if _, err := s.Login("bench", "wrong-password"); err == nil {
		t.Error("bad credentials accepted")
	}
}

func TestTableI(t *testing.T) {
	rows, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	if rows[0].Package != "gcc" || rows[0].Version != "10.3.0" {
		t.Errorf("first row = %+v", rows[0])
	}
	if rows[8].Package != "quantum-espresso" || rows[8].Version != "6.8" {
		t.Errorf("last row = %+v", rows[8])
	}
}

func TestTableII(t *testing.T) {
	rows := TableII()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(rows[0].Topic, "pmu_pub/chnl/data/core/") {
		t.Errorf("pmu topic format = %q", rows[0].Topic)
	}
	if !strings.Contains(rows[1].Topic, "dstat_pub/chnl/data/") {
		t.Errorf("stats topic format = %q", rows[1].Topic)
	}
	for _, r := range rows {
		if r.Payload != "<value>;<timestamp>" {
			t.Errorf("payload format = %q", r.Payload)
		}
	}
}

func TestTableIII(t *testing.T) {
	rows, err := TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 28 {
		t.Fatalf("metrics = %d, want 28 (Table III)", len(rows))
	}
	byName := make(map[string]float64, len(rows))
	for _, r := range rows {
		byName[r.Metric] = r.Value
	}
	if v := byName["temperature.cpu_temp"]; v < 25 || v > 110 {
		t.Errorf("cpu temp = %v", v)
	}
	if v := byName["total_cpu_usage.idl"]; v < 50 {
		t.Errorf("idle cpu = %v on an idle node", v)
	}
	if v := byName["memory_usage.free"]; v <= 0 {
		t.Errorf("free memory = %v", v)
	}
}

func TestTableIV(t *testing.T) {
	rows, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"nvme_temp": "/sys/class/hwmon/hwmon0/temp1_input",
		"mb_temp":   "/sys/class/hwmon/hwmon1/temp1_input",
		"cpu_temp":  "/sys/class/hwmon/hwmon1/temp2_input",
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if want[r.Sensor] != r.SysfsFile {
			t.Errorf("%s -> %s, want %s", r.Sensor, r.SysfsFile, want[r.Sensor])
		}
		if r.MilliC < 20000 || r.MilliC > 110000 {
			t.Errorf("%s reading = %d millidegC", r.Sensor, r.MilliC)
		}
	}
}

func TestTableV(t *testing.T) {
	tbl, err := TableV(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.DDR) != 4 || len(tbl.L2) != 4 {
		t.Fatalf("rows = %d/%d", len(tbl.DDR), len(tbl.L2))
	}
	// Spot-check against Table V.
	if math.Abs(tbl.DDR[0].MeanMBps-1206)/1206 > 0.03 {
		t.Errorf("DDR copy = %.0f, want ~1206", tbl.DDR[0].MeanMBps)
	}
	if math.Abs(tbl.L2[1].MeanMBps-3558)/3558 > 0.03 {
		t.Errorf("L2 scale = %.0f, want ~3558", tbl.L2[1].MeanMBps)
	}
}

func TestTableVI(t *testing.T) {
	cols := TableVI()
	if len(cols) != 7 {
		t.Fatalf("columns = %d, want 7", len(cols))
	}
	byName := make(map[string]PowerColumn, len(cols))
	for _, c := range cols {
		byName[c.Workload] = c
	}
	wantTotals := map[string]float64{
		"Idle": 4810, "HPL": 5935, "STREAM.L2": 5486,
		"STREAM.DDR": 5336, "QE": 5670, "Boot R1": 1385, "Boot R2": 4024,
	}
	for name, want := range wantTotals {
		col, ok := byName[name]
		if !ok {
			t.Errorf("missing column %s", name)
			continue
		}
		if math.Abs(col.TotalMilliwatts-want)/want > 0.005 {
			t.Errorf("%s total = %.0f, want %.0f", name, col.TotalMilliwatts, want)
		}
		sum := 0.0
		for _, pct := range col.Percent {
			sum += pct
		}
		if math.Abs(sum-100) > 0.01 {
			t.Errorf("%s percentages sum to %v", name, sum)
		}
	}
	// Core share of idle = 64 % (abstract).
	idle := byName["Idle"]
	if math.Abs(idle.Percent[power.RailCore]-64) > 1 {
		t.Errorf("idle core share = %.1f%%, want ~64%%", idle.Percent[power.RailCore])
	}
}

func TestDecomposition(t *testing.T) {
	d := Decomposition()
	if d.CoreLeakage != 984 || d.CoreClockTree != 1577 || d.CoreOS != 514 {
		t.Errorf("core decomposition = %v/%v/%v", d.CoreLeakage, d.CoreClockTree, d.CoreOS)
	}
	if math.Abs(d.CoreLeakageFrac-0.32) > 0.01 || math.Abs(d.CoreClockTreeFrac-0.51) > 0.01 ||
		math.Abs(d.CoreOSFrac-0.17) > 0.01 {
		t.Errorf("fractions = %v/%v/%v, want 0.32/0.51/0.17",
			d.CoreLeakageFrac, d.CoreClockTreeFrac, d.CoreOSFrac)
	}
	if math.Abs(d.DDRLeakageFrac-0.68) > 0.01 {
		t.Errorf("DDR leakage fraction = %v, want 0.68", d.DDRLeakageFrac)
	}
	if d.IdleTotalMilliwatts != 4810 {
		t.Errorf("idle total = %v", d.IdleTotalMilliwatts)
	}
}

func TestFig2(t *testing.T) {
	points, err := Fig2(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("points = %d", len(points))
	}
	// Paper labels: 1.86 ... 12.65 GFLOP/s.
	want := []float64{1.86, 3.50, 5.13, 6.63, 7.86, 9.54, 10.81, 12.65}
	for i, pt := range points {
		if pt.Nodes != i+1 {
			t.Errorf("point %d nodes = %d", i, pt.Nodes)
		}
		if math.Abs(pt.MeanGFlops-want[i])/want[i] > 0.09 {
			t.Errorf("nodes=%d mean = %.2f, want %.2f +-9%%", pt.Nodes, pt.MeanGFlops, want[i])
		}
		if pt.StdGFlops <= 0 {
			t.Errorf("nodes=%d zero std", pt.Nodes)
		}
	}
	if points[0].Speedup != 1.0 {
		t.Errorf("single-node speedup = %v", points[0].Speedup)
	}
	// 8-node: ~85 % of linear scaling.
	if math.Abs(points[7].LinearFraction-0.85) > 0.05 {
		t.Errorf("8-node linear fraction = %.3f, want ~0.85", points[7].LinearFraction)
	}
}

func TestFig3PowerTraces(t *testing.T) {
	traces, err := Fig3("hpl", 1)
	if err != nil {
		t.Fatal(err)
	}
	core := traces.Traces.Lookup("core")
	if core == nil {
		t.Fatal("missing core trace")
	}
	// 8 s at 1 ms windows.
	if core.Len() < 7800 || core.Len() > 8200 {
		t.Errorf("trace windows = %d, want ~8000", core.Len())
	}
	// Mean near the Table VI HPL core power with noise.
	if math.Abs(core.Mean()-4097) > 50 {
		t.Errorf("core mean = %.0f, want ~4097", core.Mean())
	}
	if core.Std() == 0 {
		t.Error("trace has no measurement noise")
	}
	// Unknown workload rejected.
	if _, err := Fig3("doom", 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFig4BootTrace(t *testing.T) {
	bt, err := Fig4(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bt.R1Mean-984) > 25 {
		t.Errorf("R1 core mean = %.0f, want ~984", bt.R1Mean)
	}
	if math.Abs(bt.R2Mean-2561) > 40 {
		t.Errorf("R2 core mean = %.0f, want ~2561", bt.R2Mean)
	}
	if math.Abs(bt.R3Mean-3075) > 40 {
		t.Errorf("R3 core mean = %.0f, want ~3075 (idle)", bt.R3Mean)
	}
	if bt.PLLActivationAt <= bt.PowerOnAt {
		t.Error("PLL activation before power-on")
	}
	// The PLL rail steps from 0 to 2 mW at activation.
	pll := bt.Traces.Lookup("pll")
	pre, ok1 := pll.MeanBetween(bt.PowerOnAt+0.5, bt.PLLActivationAt-0.5)
	post, ok2 := pll.MeanBetween(bt.PLLActivationAt+0.5, bt.PLLActivationAt+5)
	if !ok1 || !ok2 {
		t.Fatal("pll trace windows empty")
	}
	if post <= pre {
		t.Errorf("pll did not step up at activation: %v -> %v", pre, post)
	}
}

func TestFig5Heatmaps(t *testing.T) {
	hm, err := Fig5(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hm.InstructionsPerSec.Nodes) != 8 {
		t.Fatalf("heatmap rows = %d", len(hm.InstructionsPerSec.Nodes))
	}
	// Instruction rate must alternate: max well above row mean (compute
	// bands vs communication bands).
	maxV := hm.InstructionsPerSec.MaxValue()
	if maxV < 4e9*0.465*2*0.9 { // ~4 cores x 2 slots x 1.2 GHz x 0.465, rough floor
		t.Errorf("peak instruction rate = %v too low", maxV)
	}
	mean := hm.InstructionsPerSec.RowMean(0)
	if !(mean < maxV*0.95) {
		t.Errorf("no communication dips visible: mean %v vs max %v", mean, maxV)
	}
	if hm.NetworkBytesPerSec.MaxValue() <= 0 {
		t.Error("no network traffic in heatmap")
	}
	if hm.MemoryUsedBytes.MaxValue() < hplMemBytes {
		t.Errorf("memory heatmap max = %v below HPL set", hm.MemoryUsedBytes.MaxValue())
	}
}

func TestFig6ThermalRunaway(t *testing.T) {
	rep, err := Fig6(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrippedNode != "mc07" {
		t.Errorf("tripped node = %s, want mc07", rep.TrippedNode)
	}
	if rep.TripAt <= 0 {
		t.Errorf("trip at %v", rep.TripAt)
	}
	if math.Abs(rep.PeakBeforeMitigation-71) > 3 {
		t.Errorf("pre-mitigation hottest = %.1f, want ~71", rep.PeakBeforeMitigation)
	}
	if math.Abs(rep.PeakAfterMitigation-39) > 2.5 {
		t.Errorf("post-mitigation hottest = %.1f, want ~39", rep.PeakAfterMitigation)
	}
	trace := rep.Temps.Lookup("mc07")
	if trace == nil || trace.Max() < 100 {
		t.Error("node 7 trace missing its excursion")
	}
}

func TestHPLEfficiencyComparison(t *testing.T) {
	rows, err := HPLEfficiencyComparison()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"Monte Cimone": 0.465, "Marconi100": 0.597, "Armida": 0.6579}
	for _, r := range rows {
		w := want[r.Machine]
		if math.Abs(r.Efficiency-w)/w > 0.03 {
			t.Errorf("%s = %.4f, want %.4f", r.Machine, r.Efficiency, w)
		}
	}
}

func TestStreamEfficiencyComparison(t *testing.T) {
	rows, err := StreamEfficiencyComparison()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"Monte Cimone": 0.155, "Marconi100": 0.482, "Armida": 0.6321}
	for _, r := range rows {
		w := want[r.Machine]
		if math.Abs(r.Efficiency-w)/w > 0.03 {
			t.Errorf("%s = %.4f, want %.4f", r.Machine, r.Efficiency, w)
		}
	}
}

func TestQELax(t *testing.T) {
	rep, err := QELax(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MeanGFlops-1.44) > 0.08 {
		t.Errorf("mean = %.3f GFLOP/s, want ~1.44", rep.MeanGFlops)
	}
	if math.Abs(rep.Efficiency-0.36) > 0.005 {
		t.Errorf("efficiency = %.3f, want 0.36", rep.Efficiency)
	}
	if math.Abs(rep.MeanSeconds-37.4) > 1.2 {
		t.Errorf("duration = %.2f, want ~37.4", rep.MeanSeconds)
	}
}

func TestInfinibandStatus(t *testing.T) {
	rep, err := InfinibandStatus()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recognised || !rep.ModuleLoaded {
		t.Error("HCA not recognised/loaded")
	}
	if rep.PingRTTSeconds <= 0 {
		t.Error("no ping RTT")
	}
	if rep.RDMAWorking {
		t.Error("RDMA unexpectedly working on the paper's stack")
	}
	if !strings.Contains(rep.RDMAError, "incompatibility") {
		t.Errorf("RDMA error = %q", rep.RDMAError)
	}
}

func TestSchedulerIntegrationThermalFailure(t *testing.T) {
	// An 8-node HPL job through the scheduler dies with NODE_FAIL when
	// node 7 trips — the operators' Fig. 6 experience end to end.
	s, err := NewSystem(Options{Nodes: 8, NoMonitor: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	job, err := s.Scheduler.Submit(sched.JobSpec{
		Name: "hpl-full", User: "ops", Nodes: 8,
		TimeLimit: 7200, Duration: 4000,
		OnStart: func(_ *sched.Job, hosts []string) {
			if err := s.Cluster.RunWorkloadOn(hosts, "hpl", power.ActivityHPL, hplMemBytes); err != nil {
				t.Errorf("workload start: %v", err)
			}
		},
		OnEnd: func(j *sched.Job, _ sched.JobState) {
			s.Cluster.ClearWorkloadOn(j.Hosts())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7200; i++ {
		if err := s.Advance(1); err != nil {
			t.Fatal(err)
		}
		if st := job.State(); st != sched.StateRunning && st != sched.StatePending {
			break
		}
	}
	if job.State() != sched.StateNodeFail {
		t.Errorf("job state = %s, want NODE_FAIL", job.State())
	}
	// sinfo shows mc07 down.
	for _, row := range s.Scheduler.Sinfo() {
		if row.Host == "mc07" && row.State != sched.NodeDown {
			t.Errorf("mc07 state = %s, want down", row.State)
		}
	}
}
