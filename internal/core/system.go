// Package core assembles the full Monte Cimone testbed — the paper's
// primary contribution — and exposes one runner per table and figure of
// the evaluation section (the experiment index lives in DESIGN.md).
//
// A System wires the discrete-event engine, the eight-node cluster, the
// SLURM-like scheduler, the ExaMon monitoring stack (broker, pmu_pub and
// stats_pub plugins, TSDB) and the Spack software stack together, with the
// thermal-halt path connected to the scheduler's node-failure handling
// exactly as the operators experienced it in Fig. 6.
package core

import (
	"fmt"

	"montecimone/internal/cluster"
	"montecimone/internal/directory"
	"montecimone/internal/examon"
	"montecimone/internal/powerplane"
	"montecimone/internal/sched"
	"montecimone/internal/sim"
	"montecimone/internal/spack"
)

// Options configures a System build.
type Options struct {
	// Nodes is the compute-node count (default 8).
	Nodes int
	// HPMPatch applies the U-Boot performance-counter patch.
	HPMPatch bool
	// Monitor starts the ExaMon plugins on boot (default true via
	// NewSystem; set NoMonitor to disable).
	NoMonitor bool
	// Seed drives all deterministic noise (default 1).
	Seed int64
	// StepPeriod overrides the node integration period.
	StepPeriod float64
	// Policy selects the scheduler policy by name (sched.PolicyNames;
	// default "easy", the production configuration).
	Policy string
	// Backend selects the ExaMon storage engine by name
	// (examon.StorageBackends: "mem", "ring", "sharded"; default "mem").
	Backend string
	// LinearScan reinstates the storage engine's full linear series walk
	// for every read — no inverted-index candidate selection, no snapshot
	// fan-out, no rollup serving (the read-path benchmark ablation; see
	// examon.WithLinearScan).
	LinearScan bool
	// RollupStepS overrides the engine's ingest-time rollup bucket width
	// in seconds: 0 keeps examon.DefaultRollupStep, a negative value
	// disables the rollup tiers (examon.WithRollup).
	RollupStepS float64
	// SyntheticSlots permits Nodes beyond the physical eight-slot
	// enclosure; extra nodes reuse slot thermal environments cyclically.
	SyntheticSlots bool
	// LockStep reinstates the fixed-period global physics ticker instead
	// of the default demand-driven co-simulation (the benchmark ablation;
	// see cluster.Config.LockStep).
	LockStep bool
	// PowerBudgetW, when positive, enables the cluster power plane: one
	// power_pub plugin and one dtm governor per node, the budget governor
	// distributing per-node caps, and — when Policy is "powercap" — the
	// power-aware scheduling loop consulting it before placements.
	PowerBudgetW float64
	// Shards sets the engine's shard count for parallel event preparation
	// (conservative-lookahead windows with per-node physics prefetched on
	// shard workers). 1 or 0 keeps the serial engine; results are
	// byte-identical at every shard count — sharding changes wall-clock
	// only, never virtual-time behaviour.
	Shards int
	// Org and Cluster scope every telemetry sample the system publishes
	// (plugins and the power plane). Empty keeps the ExaMon defaults —
	// byte-identical to the pre-fleet stack. Fleet workers set Cluster to
	// the cluster ID so federated samples stay attributable.
	Org, ClusterTag string
	// AmbientC overrides the machine-room inlet temperature (0 keeps the
	// paper's 25 °C). Fleet clusters model heterogeneous sites with it.
	AmbientC float64
}

// System is the assembled testbed.
type System struct {
	// Engine drives all virtual time.
	Engine *sim.Engine
	// Cluster is the hardware assembly.
	Cluster *cluster.Cluster
	// Scheduler is the SLURM-like batch system on the master node.
	Scheduler *sched.Scheduler
	// Broker, DB and the per-node plugins form the ExaMon stack.
	Broker *examon.Broker
	DB     *examon.TSDB
	// Directory is the LDAP user directory served from the master node.
	Directory *directory.Server
	// RNG provides named deterministic noise streams.
	RNG *sim.RNG
	// Plane is the cluster power-budget governor (nil unless
	// Options.PowerBudgetW was set).
	Plane *powerplane.Governor

	pmuPubs   []*examon.PMUPub
	statsPubs []*examon.StatsPub
	powerPubs []*examon.PowerPub
	monitor   bool
}

// NewSystem builds an unbooted system.
func NewSystem(opts Options) (*System, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	engine := sim.NewEngine()
	cl, err := cluster.New(engine, cluster.Config{
		Nodes:          opts.Nodes,
		HPMPatch:       opts.HPMPatch,
		StepPeriod:     opts.StepPeriod,
		SyntheticSlots: opts.SyntheticSlots,
		LockStep:       opts.LockStep,
		AmbientC:       opts.AmbientC,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	policy := sched.EASY()
	if opts.Policy != "" {
		if policy, err = sched.PolicyByName(opts.Policy); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	broker := examon.NewBroker()
	var storeOpts []examon.StoreOption
	if opts.LinearScan {
		storeOpts = append(storeOpts, examon.WithLinearScan(true))
	}
	if opts.RollupStepS != 0 {
		storeOpts = append(storeOpts, examon.WithRollup(opts.RollupStepS))
	}
	store, err := examon.NewStorage(opts.Backend, storeOpts...)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	db, err := examon.NewTSDBOn(store)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if _, err := db.Attach(broker); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var plane *powerplane.Governor
	schedOpts := []sched.Option{sched.WithPolicy(policy)}
	if opts.PowerBudgetW > 0 {
		plane, err = powerplane.New(engine, cl, db, broker, powerplane.Config{
			BudgetW: opts.PowerBudgetW,
			Org:     opts.Org,
			Cluster: opts.ClusterTag,
		})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		schedOpts = append(schedOpts, sched.WithPowerAdvisor(plane))
	}
	sc, err := sched.New(engine, "cimone", cl.Hostnames(), schedOpts...)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if plane != nil {
		plane.OnHeadroomIncrease(sc.Reschedule)
	}
	dir, err := directory.DefaultDirectory()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s := &System{
		Engine:    engine,
		Cluster:   cl,
		Scheduler: sc,
		Broker:    broker,
		DB:        db,
		Directory: dir,
		RNG:       sim.NewRNG(opts.Seed),
		Plane:     plane,
		monitor:   !opts.NoMonitor,
	}
	if opts.Shards > 1 {
		// The cluster owns all per-node physics, so it supplies both halves
		// of the engine's shard protocol: the prefetch (PrepareNode syncs a
		// node to an instant) and the safety probe (NodePrepareSafe rejects
		// instants that could cross a state transition).
		engine.SetShards(opts.Shards)
		engine.SetPreparer(cl.PrepareNode, cl.NodePrepareSafe)
		// Node keys are 0..Size()-1; declaring the domain switches the
		// key->shard map to contiguous blocks, so a job allocated on
		// neighbouring nodes (the scheduler's first-fit placement) keys all
		// its phase transitions to ONE shard and they execute on that
		// shard's worker instead of demoting as cross-shard. Pure wall-clock
		// tuning: results are byte-identical under any mapping.
		engine.SetKeySpan(cl.Size())
	}
	// Thermal halts surface as SLURM node failures.
	cl.OnNodeHalt(func(host string) {
		// NodeDown only fails on unknown hosts; cluster hostnames are the
		// partition, so this cannot error.
		if err := sc.NodeDown(host); err != nil {
			panic(fmt.Sprintf("core: node down: %v", err))
		}
	})
	for i := 0; i < cl.Size(); i++ {
		nd := cl.Node(i)
		pmu, err := examon.NewPMUPub(broker, nd, opts.Org, opts.ClusterTag)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		stats, err := examon.NewStatsPub(broker, nd, opts.Org, opts.ClusterTag)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		s.pmuPubs = append(s.pmuPubs, pmu)
		s.statsPubs = append(s.statsPubs, stats)
		if plane != nil {
			pp, err := examon.NewPowerPub(broker, nd, opts.Org, opts.ClusterTag)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			s.powerPubs = append(s.powerPubs, pp)
		}
	}
	return s, nil
}

// Boot powers the cluster, waits for all nodes to reach the OS and starts
// the monitoring plugins.
func (s *System) Boot() error {
	if err := s.Cluster.BootAndSettle(2); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if s.monitor {
		for i := range s.pmuPubs {
			if err := s.pmuPubs[i].Start(s.Engine); err != nil {
				return fmt.Errorf("core: %w", err)
			}
			if err := s.statsPubs[i].Start(s.Engine); err != nil {
				return fmt.Errorf("core: %w", err)
			}
		}
	}
	// The power plane runs even without the OS-level monitoring plugins:
	// power_pub samples out of band, and the budget loop needs it.
	for i := range s.powerPubs {
		if err := s.powerPubs[i].Start(s.Engine); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if s.Plane != nil {
		if err := s.Plane.Start(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// Close stops all periodic activity (plugins, power plane and cluster
// stepping).
func (s *System) Close() {
	for i := range s.pmuPubs {
		s.pmuPubs[i].Stop()
		s.statsPubs[i].Stop()
	}
	for i := range s.powerPubs {
		s.powerPubs[i].Stop()
	}
	if s.Plane != nil {
		s.Plane.Stop()
	}
	s.Cluster.Stop()
}

// Advance runs the engine for dt more virtual seconds.
func (s *System) Advance(dt float64) error {
	return s.Engine.RunUntil(s.Engine.Now() + dt)
}

// Login authenticates a user against the LDAP directory and opens a
// session on the login node — the path every cluster user takes before
// submitting jobs.
func (s *System) Login(username, password string) (*directory.Session, error) {
	return directory.Login(s.Directory, cluster.LoginHostname, username, password)
}

// NewInstaller returns the Spack installer targeting the cluster's
// microarchitecture with the deployed GCC 10.3.0 toolchain.
func (s *System) NewInstaller() (*spack.Installer, error) {
	return spack.NewInstaller(spack.BuiltinRepo(), s.Cluster.Machine().Microarch,
		spack.Compiler{Name: "gcc", Version: "10.3.0"})
}
