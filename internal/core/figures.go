package core

import (
	"fmt"

	"montecimone/internal/examon"
	"montecimone/internal/hpl"
	"montecimone/internal/node"
	"montecimone/internal/power"
	"montecimone/internal/sim"
	"montecimone/internal/telemetry"
	"montecimone/internal/thermal"
)

// PaperN and PaperNB are the HPL configuration of Section V-A.
const (
	PaperN  = 40704
	PaperNB = 192
)

// ScalingPoint is one Fig. 2 data point.
type ScalingPoint struct {
	// Nodes is the allocation size; Grid the process grid.
	Nodes int
	P, Q  int
	// MeanGFlops/StdGFlops over the repetitions, the runtime statistics,
	// and the relative speedup over the single-node mean.
	MeanGFlops, StdGFlops   float64
	MeanSeconds, StdSeconds float64
	Speedup                 float64
	// LinearFraction is MeanGFlops / (Nodes x single-node mean).
	LinearFraction float64
}

// Fig2 regenerates the HPL strong-scaling study: N=40704, NB=192, 1..8
// nodes, 10 repetitions each.
func Fig2(seed int64) ([]ScalingPoint, error) {
	rng := sim.NewRNG(seed)
	points := make([]ScalingPoint, 0, 8)
	var singleMean float64
	for nodes := 1; nodes <= 8; nodes++ {
		stats, err := hpl.Repeat(hpl.Config{N: PaperN, NB: PaperNB, Nodes: nodes},
			10, rng, fmt.Sprintf("fig2.n%d", nodes))
		if err != nil {
			return nil, err
		}
		if nodes == 1 {
			singleMean = stats.MeanGFlops
		}
		points = append(points, ScalingPoint{
			Nodes: nodes, P: stats.Base.P, Q: stats.Base.Q,
			MeanGFlops: stats.MeanGFlops, StdGFlops: stats.StdGFlops,
			MeanSeconds: stats.MeanSeconds, StdSeconds: stats.StdSeconds,
			Speedup:        stats.MeanGFlops / singleMean,
			LinearFraction: stats.MeanGFlops / (float64(nodes) * singleMean),
		})
	}
	return points, nil
}

// PowerTraces is the Fig. 3 output: per-rail 1 ms-window traces for one
// benchmark snapshot.
type PowerTraces struct {
	// Workload names the benchmark; Traces holds one series per rail
	// (names are the rail names, unit mW).
	Workload string
	Traces   *telemetry.Set
}

// traceSampleHz is the raw shunt sampling rate the traces are averaged
// from; Fig. 3 uses 1 ms averaging windows.
const (
	traceSampleHz   = 5000.0
	traceWindowSec  = 1e-3
	fig3DurationSec = 8.0
)

// Fig3 regenerates the 8-second power-trace snapshots for the given
// workload ("hpl", "stream.l2", "stream.ddr", "qe", "idle").
func Fig3(workload string, seed int64) (*PowerTraces, error) {
	act, mem, err := workloadActivity(workload)
	if err != nil {
		return nil, err
	}
	s, err := NewSystem(Options{Nodes: 1, NoMonitor: true, Seed: seed})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.Boot(); err != nil {
		return nil, err
	}
	nd := s.Cluster.Node(0)
	if workload != "idle" {
		if err := nd.SetWorkload(workload, act, mem); err != nil {
			return nil, err
		}
	}
	// Let the workload settle, then record 8 s of raw samples.
	if err := s.Advance(5); err != nil {
		return nil, err
	}
	raw := telemetry.NewSet()
	start := s.Engine.Now()
	ticker, err := sim.NewTicker(s.Engine, start, 1/traceSampleHz, "fig3.sample", func(now float64) {
		for _, rail := range power.Rails {
			clean := nd.RailMilliwatts(rail)
			noisy := clean + s.RNG.Normal("fig3."+string(rail), 0, shuntNoiseMilliwatts(clean))
			// Times are monotone by construction of the ticker.
			if err := raw.Get(string(rail), "mW").Add(now-start, noisy); err != nil {
				panic(fmt.Sprintf("core: fig3 trace: %v", err))
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if err := s.Advance(fig3DurationSec); err != nil {
		return nil, err
	}
	ticker.Stop()

	out := &PowerTraces{Workload: workload, Traces: telemetry.NewSet()}
	for _, rail := range power.Rails {
		ds, err := raw.Get(string(rail), "mW").Downsample(traceWindowSec)
		if err != nil {
			return nil, err
		}
		*out.Traces.Get(string(rail), "mW") = *ds
	}
	return out, nil
}

// shuntNoiseMilliwatts models the shunt ADC noise floor: 0.5 % of reading
// plus a 2 mW floor.
func shuntNoiseMilliwatts(reading float64) float64 {
	return 0.005*reading + 2
}

// BootTrace is the Fig. 4 output.
type BootTrace struct {
	// Traces holds one series per rail over the 80 s window (unit mW).
	Traces *telemetry.Set
	// PowerOnAt is when the power button was pressed within the trace.
	PowerOnAt float64
	// R1Mean, R2Mean and R3Mean are the measured core-rail means of the
	// three boot regions; PLLActivationAt is the R1->R2 edge.
	R1Mean, R2Mean, R3Mean float64
	PLLActivationAt        float64
}

// Fig4 regenerates the 80-second boot power trace with its region
// decomposition.
func Fig4(seed int64) (*BootTrace, error) {
	engine := sim.NewEngine()
	rng := sim.NewRNG(seed)
	nd, err := node.New(node.Config{ID: 1, Enclosure: thermal.DefaultEnclosure()})
	if err != nil {
		return nil, err
	}
	const powerOnAt = 4.0
	raw := telemetry.NewSet()
	if _, err := sim.NewTicker(engine, 0, 1/traceSampleHz, "fig4.sample", func(now float64) {
		nd.Step(now)
		for _, rail := range power.Rails {
			clean := nd.RailMilliwatts(rail)
			noisy := clean + rng.Normal("fig4."+string(rail), 0, shuntNoiseMilliwatts(clean))
			if clean == 0 {
				noisy = 0 // no shunt current while off
			}
			if err := raw.Get(string(rail), "mW").Add(now, noisy); err != nil {
				panic(fmt.Sprintf("core: fig4 trace: %v", err))
			}
		}
	}); err != nil {
		return nil, err
	}
	if _, err := engine.ScheduleAt(powerOnAt, "fig4.poweron", func(e *sim.Engine) {
		// Power-on cannot fail on a fresh node.
		if err := nd.PowerOn(e.Now()); err != nil {
			panic(fmt.Sprintf("core: fig4 power on: %v", err))
		}
	}); err != nil {
		return nil, err
	}
	if err := engine.RunUntil(80); err != nil {
		return nil, err
	}

	out := &BootTrace{Traces: telemetry.NewSet(), PowerOnAt: powerOnAt}
	for _, rail := range power.Rails {
		ds, err := raw.Get(string(rail), "mW").Downsample(traceWindowSec)
		if err != nil {
			return nil, err
		}
		*out.Traces.Get(string(rail), "mW") = *ds
	}
	core := out.Traces.Lookup(string(power.RailCore))
	r1End := powerOnAt + node.R1Duration
	rampStart := powerOnAt + node.R1Duration + node.R2Duration - node.RampDuration
	bootEnd := powerOnAt + node.R1Duration + node.R2Duration
	if mean, ok := core.MeanBetween(powerOnAt+0.5, r1End-0.5); ok {
		out.R1Mean = mean
	}
	if mean, ok := core.MeanBetween(r1End+0.5, rampStart-0.5); ok {
		out.R2Mean = mean
	}
	if mean, ok := core.MeanBetween(bootEnd+5, 80); ok {
		out.R3Mean = mean
	}
	out.PLLActivationAt = r1End
	return out, nil
}

// HeatmapSet is the Fig. 5 output: the three ExaMon dashboard heatmaps for
// the full-machine HPL run.
type HeatmapSet struct {
	// InstructionsPerSec, NetworkBytesPerSec and MemoryUsedBytes are
	// nodes x time matrices.
	InstructionsPerSec *examon.Heatmap
	NetworkBytesPerSec *examon.Heatmap
	MemoryUsedBytes    *examon.Heatmap
	// RunSeconds is the monitored window length.
	RunSeconds float64
}

// Fig5 runs a monitored multi-node HPL execution and builds the ExaMon
// heatmaps. iterations bounds the playback length (the full 212-panel run
// is long; 40 iterations show several compute/communication bands).
func Fig5(iterations int, seed int64) (*HeatmapSet, error) {
	if iterations <= 0 {
		iterations = 40
	}
	s, err := NewSystem(Options{Nodes: 8, Seed: seed})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.Boot(); err != nil {
		return nil, err
	}
	// The full-machine HPL run of Fig. 5 post-dates the thermal fix of
	// Fig. 6; without it node 7 trips partway through the run.
	if err := s.Cluster.ApplyAirflowMitigation(); err != nil {
		return nil, err
	}
	hosts := s.Cluster.Hostnames()
	start := s.Engine.Now()

	// Playback: walk the HPL iteration structure and alternate each
	// node's activity between the compute profile and a communication
	// profile (low issue rate, NIC busy), with durations from the
	// performance model.
	res, err := hpl.Simulate(hpl.Config{N: PaperN, NB: PaperNB, Nodes: 8})
	if err != nil {
		return nil, err
	}
	totalIters := (PaperN + PaperNB - 1) / PaperNB
	computePerIter := res.ComputeSeconds / float64(totalIters)
	commPerIter := res.CommSeconds / float64(totalIters)
	if commPerIter < 2.0 {
		commPerIter = 2.0 // keep the band visible at the 2 Hz sampling
	}
	commAct := power.Activity{CoreActivity: 0.05, DDRReadGBs: 0.12, DDRWriteGBs: 0.12, PCIeActivity: 0.05}

	for it := 0; it < iterations; it++ {
		if err := s.Cluster.RunWorkloadOn(hosts, "hpl", power.ActivityHPL, hplMemBytes); err != nil {
			return nil, err
		}
		for _, h := range hosts {
			nd, _ := s.Cluster.NodeByHostname(h)
			nd.SetNetRates(0, 0)
		}
		if err := s.Advance(computePerIter); err != nil {
			return nil, err
		}
		if err := s.Cluster.RunWorkloadOn(hosts, "hpl", commAct, hplMemBytes); err != nil {
			return nil, err
		}
		perNodeBps := 117.5e6 * 0.8
		for _, h := range hosts {
			nd, _ := s.Cluster.NodeByHostname(h)
			nd.SetNetRates(perNodeBps, perNodeBps)
		}
		if err := s.Advance(commPerIter); err != nil {
			return nil, err
		}
	}
	end := s.Engine.Now()
	s.Cluster.ClearWorkloadOn(hosts)

	bin := (end - start) / 64
	instr, err := examon.BuildHeatmap(s.DB, hosts, examon.HeatmapOptions{
		Plugin: "pmu_pub", Metric: "instret", Rate: true, SumCores: true,
		From: start, To: end, BinWidth: bin,
	})
	if err != nil {
		return nil, err
	}
	net, err := examon.BuildHeatmap(s.DB, hosts, examon.HeatmapOptions{
		Plugin: "dstat_pub", Metric: "net_total.recv", Rate: true,
		From: start, To: end, BinWidth: bin,
	})
	if err != nil {
		return nil, err
	}
	mem, err := examon.BuildHeatmap(s.DB, hosts, examon.HeatmapOptions{
		Plugin: "dstat_pub", Metric: "memory_usage.used",
		From: start, To: end, BinWidth: bin,
	})
	if err != nil {
		return nil, err
	}
	return &HeatmapSet{
		InstructionsPerSec: instr,
		NetworkBytesPerSec: net,
		MemoryUsedBytes:    mem,
		RunSeconds:         end - start,
	}, nil
}

// ThermalReport is the Fig. 6 output.
type ThermalReport struct {
	// TrippedNode is the hostname that hit the 107 degC hazard; TripAt
	// the virtual time of the halt (relative to HPL start).
	TrippedNode string
	TripAt      float64
	// PeakBeforeMitigation is the hottest surviving node's steady
	// temperature with the lid on (~71 degC); PeakAfterMitigation the
	// same after the fix (~39 degC).
	PeakBeforeMitigation float64
	PeakAfterMitigation  float64
	// Temps holds per-node cpu_temp traces across the whole experiment.
	Temps *telemetry.Set
}

// Fig6 reproduces the thermal-runaway incident: full-machine HPL with the
// original enclosure until node 7 trips, then the airflow mitigation and a
// re-run.
func Fig6(seed int64) (*ThermalReport, error) {
	return fig6(Options{Nodes: 8, Seed: seed})
}

// fig6 is Fig6 on explicit options (for the physics-mode equivalence
// test, which regenerates it under lock-step and demand-driven
// integration).
func fig6(opts Options) (*ThermalReport, error) {
	s, err := NewSystem(opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.Boot(); err != nil {
		return nil, err
	}
	hosts := s.Cluster.Hostnames()
	report := &ThermalReport{Temps: telemetry.NewSet()}

	var tripped string
	tripAt := -1.0
	s.Cluster.OnNodeHalt(func(h string) {
		if tripped == "" {
			tripped = h
		}
	})

	// Record cpu_temp per node at 1 Hz.
	recorder, err := sim.NewTicker(s.Engine, s.Engine.Now(), 1.0, "fig6.temps", func(now float64) {
		for i := 0; i < s.Cluster.Size(); i++ {
			nd := s.Cluster.Node(i)
			// Monotone times by ticker construction.
			if err := report.Temps.Get(nd.Hostname(), "degC").Add(now, nd.Temperature(thermal.SensorCPU)); err != nil {
				panic(fmt.Sprintf("core: fig6 trace: %v", err))
			}
		}
	})
	if err != nil {
		return nil, err
	}
	defer recorder.Stop()

	// First HPL runs with the lid on.
	hplStart := s.Engine.Now()
	if err := s.Cluster.RunWorkloadOn(hosts, "hpl", power.ActivityHPL, hplMemBytes); err != nil {
		return nil, err
	}
	for i := 0; i < 7200 && tripped == ""; i++ {
		if err := s.Advance(1); err != nil {
			return nil, err
		}
	}
	if tripped == "" {
		return nil, fmt.Errorf("core: fig6: no thermal trip within two hours")
	}
	tripAt = s.Engine.Now() - hplStart
	// Let the survivors reach their lid-on steady state.
	if err := s.Advance(900); err != nil {
		return nil, err
	}
	before := 0.0
	for i := 0; i < s.Cluster.Size(); i++ {
		nd := s.Cluster.Node(i)
		if nd.Hostname() == tripped {
			continue
		}
		if temp := nd.Temperature(thermal.SensorCPU); temp > before {
			before = temp
		}
	}
	s.Cluster.ClearWorkloadOn(hosts)

	// Mitigation: remove the lids, increase spacing, power-cycle node 7.
	if err := s.Cluster.ApplyAirflowMitigation(); err != nil {
		return nil, err
	}
	if err := s.Advance(node.R1Duration + node.R2Duration + 300); err != nil {
		return nil, err
	}
	if err := s.Cluster.RunWorkloadOn(hosts, "hpl", power.ActivityHPL, hplMemBytes); err != nil {
		return nil, err
	}
	if err := s.Advance(1800); err != nil {
		return nil, err
	}
	after := 0.0
	for i := 0; i < s.Cluster.Size(); i++ {
		if temp := s.Cluster.Node(i).Temperature(thermal.SensorCPU); temp > after {
			after = temp
		}
	}
	s.Cluster.ClearWorkloadOn(hosts)

	report.TrippedNode = tripped
	report.TripAt = tripAt
	report.PeakBeforeMitigation = before
	report.PeakAfterMitigation = after
	return report, nil
}
