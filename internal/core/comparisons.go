package core

import (
	"errors"

	"montecimone/internal/hpl"
	"montecimone/internal/netsim"
	"montecimone/internal/qe"
	"montecimone/internal/sim"
	"montecimone/internal/soc"
	"montecimone/internal/stream"
)

// EfficiencyRow is one machine's entry in the Section V-A cross-ISA
// comparison.
type EfficiencyRow struct {
	// Machine is the system name; ISA its instruction set.
	Machine string
	ISA     soc.ISA
	// Efficiency is the attained fraction of the relevant peak (FPU for
	// HPL, DDR bandwidth for STREAM); Attained the absolute value
	// (GFLOP/s or MB/s).
	Efficiency float64
	Attained   float64
}

// HPLEfficiencyComparison regenerates the single-node FPU-utilisation
// comparison: Monte Cimone 46.5 %, Marconi100 59.7 %, Armida 65.79 %.
func HPLEfficiencyComparison() ([]EfficiencyRow, error) {
	machines := []*soc.Machine{soc.FU740(), soc.Marconi100(), soc.Armida()}
	rows := make([]EfficiencyRow, 0, len(machines))
	for _, m := range machines {
		res, err := hpl.Simulate(hpl.Config{
			N: PaperN, NB: PaperNB, Nodes: 1,
			RanksPerNode: m.Cores, Machine: m,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, EfficiencyRow{
			Machine: m.Name, ISA: m.ISA,
			Efficiency: res.Efficiency, Attained: res.GFlops,
		})
	}
	return rows, nil
}

// StreamEfficiencyComparison regenerates the peak-bandwidth comparison:
// Monte Cimone 15.5 %, Marconi100 48.2 %, Armida 63.21 % (best kernel,
// DDR-resident set, one thread per physical core).
func StreamEfficiencyComparison() ([]EfficiencyRow, error) {
	machines := []*soc.Machine{soc.FU740(), soc.Marconi100(), soc.Armida()}
	rows := make([]EfficiencyRow, 0, len(machines))
	for _, m := range machines {
		results, err := stream.Run(stream.Config{
			Machine:         m,
			WorkingSetBytes: m.L2Bytes * 128,
		})
		if err != nil {
			return nil, err
		}
		best := stream.Result{}
		for _, r := range results {
			if r.EfficiencyOfPeak > best.EfficiencyOfPeak {
				best = r
			}
		}
		rows = append(rows, EfficiencyRow{
			Machine: m.Name, ISA: m.ISA,
			Efficiency: best.EfficiencyOfPeak, Attained: best.MeanMBps,
		})
	}
	return rows, nil
}

// QELaxReport is the Section V-A quantumESPRESSO result.
type QELaxReport struct {
	// Statistics over 10 repetitions of the 512^2 LAX test.
	MeanGFlops, StdGFlops   float64
	MeanSeconds, StdSeconds float64
	Efficiency              float64
}

// QELax regenerates the LAX benchmark result: 1.44 +- 0.05 GFLOP/s (36 %
// FPU efficiency) over 37.40 +- 0.14 s.
func QELax(seed int64) (*QELaxReport, error) {
	stats, err := qe.Repeat(qe.Config{N: 512}, 10, sim.NewRNG(seed), "qelax")
	if err != nil {
		return nil, err
	}
	return &QELaxReport{
		MeanGFlops: stats.MeanGFlops, StdGFlops: stats.StdGFlops,
		MeanSeconds: stats.MeanSeconds, StdSeconds: stats.StdSeconds,
		Efficiency: stats.Base.Efficiency,
	}, nil
}

// InfinibandReport is the Section III HCA bring-up status.
type InfinibandReport struct {
	// Recognised and ModuleLoaded reflect the kernel's view of the
	// ConnectX-4 HCA; PingRTTSeconds is the board-to-board ib-ping.
	Recognised     bool
	ModuleLoaded   bool
	PingRTTSeconds float64
	// RDMAWorking is false on the paper's stack; RDMAError carries the
	// failure.
	RDMAWorking bool
	RDMAError   string
}

// InfinibandStatus reproduces the paper's InfiniBand bring-up: the HCA
// enumerates, the OFED module loads and ib-ping succeeds between two
// boards, but RDMA verbs fail.
func InfinibandStatus() (*InfinibandReport, error) {
	link := netsim.InfinibandFDR()
	a, err := netsim.NewHCA(0, link)
	if err != nil {
		return nil, err
	}
	b, err := netsim.NewHCA(1, link)
	if err != nil {
		return nil, err
	}
	report := &InfinibandReport{Recognised: a.Recognised()}
	if err := a.LoadModule(); err != nil {
		return nil, err
	}
	if err := b.LoadModule(); err != nil {
		return nil, err
	}
	report.ModuleLoaded = true
	rtt, err := a.Ping(b)
	if err != nil {
		return nil, err
	}
	report.PingRTTSeconds = rtt
	if _, err := a.RDMAWrite(b, 1<<20); err != nil {
		if !errors.Is(err, netsim.ErrRDMAUnsupported) {
			return nil, err
		}
		report.RDMAError = err.Error()
	} else {
		report.RDMAWorking = true
	}
	return report, nil
}
