package core

import (
	"math"
	"testing"

	"montecimone/internal/examon"
	"montecimone/internal/hpl"
	"montecimone/internal/mpi"
	"montecimone/internal/power"
	"montecimone/internal/sched"
	"montecimone/internal/stream"
	"montecimone/internal/thermal"
)

// TestPaperStoryEndToEnd replays the paper's narrative on one system:
// bring-up, software-stack deployment, benchmarks, the thermal incident,
// the mitigation, and the full-machine HPL result — all against the same
// virtual cluster, with the monitoring stack watching throughout.
func TestPaperStoryEndToEnd(t *testing.T) {
	// --- Section III/IV: assemble and boot the machine with monitoring.
	s, err := NewSystem(Options{Nodes: 8, HPMPatch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}

	// A user logs in through LDAP before doing anything.
	if _, err := s.Login("bench", "hpl-2.3-runs"); err != nil {
		t.Fatalf("login: %v", err)
	}

	// --- Section IV: deploy the software stack with Spack.
	installer, err := s.NewInstaller()
	if err != nil {
		t.Fatal(err)
	}
	if installer.Triple() != "linux-sifive-u74mc" {
		t.Fatalf("triple = %s", installer.Triple())
	}
	stack, err := installer.InstallUserStack()
	if err != nil {
		t.Fatal(err)
	}
	if len(stack) != 9 {
		t.Fatalf("stack = %d packages", len(stack))
	}

	// --- Section V-A: validate the distributed solver numerics on the
	// simulated fabric, then model the benchmarks.
	world, err := mpi.NewWorld(s.Cluster.Fabric(), mustPlacement(t, s, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	var lu *hpl.Matrix
	var piv []int
	err = world.Run(func(p *mpi.Proc) error {
		out, pv, err := hpl.DistFactor(p, 96, 16, 5)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			lu, piv = out, pv
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := hpl.RandomSystem(96, 5)
	if err != nil {
		t.Fatal(err)
	}
	x, err := hpl.Solve(lu, piv, b)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := hpl.Residual(a, x, b); err != nil || res > 16 {
		t.Fatalf("distributed residual = %v (%v)", res, err)
	}

	single, err := hpl.Simulate(hpl.Config{N: PaperN, NB: PaperNB, Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single.GFlops-1.86)/1.86 > 0.03 {
		t.Fatalf("single-node HPL = %.3f", single.GFlops)
	}
	streamRows, err := stream.Run(stream.Config{WorkingSetBytes: stream.DDRWorkingSetBytes})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(streamRows[0].MeanMBps-1206)/1206 > 0.03 {
		t.Fatalf("stream copy = %.0f", streamRows[0].MeanMBps)
	}

	// --- Section V-C / Fig. 6: the first full-machine HPL run with the
	// original enclosure, through the scheduler.
	job, err := s.Scheduler.Submit(sched.JobSpec{
		Name: "hpl-first", User: "bench", Nodes: 8, TimeLimit: 7200, Duration: 3700,
		OnStart: func(_ *sched.Job, hosts []string) {
			if err := s.Cluster.RunWorkloadOn(hosts, "hpl", power.ActivityHPL, hplMemBytes); err != nil {
				t.Errorf("workload: %v", err)
			}
		},
		OnEnd: func(j *sched.Job, _ sched.JobState) { s.Cluster.ClearWorkloadOn(j.Hosts()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7200; i++ {
		if err := s.Advance(1); err != nil {
			t.Fatal(err)
		}
		if st := job.State(); st != sched.StateRunning && st != sched.StatePending {
			break
		}
	}
	if job.State() != sched.StateNodeFail {
		t.Fatalf("first run state = %s, want NODE_FAIL (node 7 trips)", job.State())
	}

	// The ODA pipeline saw it coming: the runaway detector flags mc07.
	detector := examon.Detector{Limit: thermal.TripTempC, Window: 12, RunawayHorizon: 240}
	findings, err := detector.ScanAll(s.DB, examon.Filter{Plugin: "dstat_pub", Metric: "temperature.cpu_temp"})
	if err != nil {
		t.Fatal(err)
	}
	sawRunaway := false
	for _, f := range findings {
		if f.Tags.Node == "mc07" && f.Kind == examon.AnomalyRunaway {
			sawRunaway = true
		}
	}
	if !sawRunaway {
		t.Error("anomaly detector missed the mc07 runaway")
	}

	// --- The fix: lids off, spacing increased, node returned to service.
	if err := s.Cluster.ApplyAirflowMitigation(); err != nil {
		t.Fatal(err)
	}
	if err := s.Scheduler.NodeUp("mc07"); err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(120); err != nil {
		t.Fatal(err)
	}

	// --- The re-run completes, and the modelled full-machine result
	// matches the paper's 12.65 GFLOP/s within tolerance.
	rerun, err := s.Scheduler.Submit(sched.JobSpec{
		Name: "hpl-fixed", User: "bench", Nodes: 8, TimeLimit: 7200, Duration: 3700,
		OnStart: func(_ *sched.Job, hosts []string) {
			if err := s.Cluster.RunWorkloadOn(hosts, "hpl", power.ActivityHPL, hplMemBytes); err != nil {
				t.Errorf("workload: %v", err)
			}
		},
		OnEnd: func(j *sched.Job, _ sched.JobState) { s.Cluster.ClearWorkloadOn(j.Hosts()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := s.Advance(1); err != nil {
			t.Fatal(err)
		}
		if st := rerun.State(); st != sched.StateRunning && st != sched.StatePending {
			break
		}
	}
	if rerun.State() != sched.StateCompleted {
		t.Fatalf("re-run state = %s", rerun.State())
	}
	full, err := hpl.Simulate(hpl.Config{N: PaperN, NB: PaperNB, Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.GFlops-12.65)/12.65 > 0.05 {
		t.Fatalf("full-machine HPL = %.3f", full.GFlops)
	}

	// The monitoring database holds the whole story.
	if s.DB.SeriesCount() < 8*28 {
		t.Errorf("TSDB series = %d", s.DB.SeriesCount())
	}
	// And the IB cards are still waiting for their driver fix.
	ib, err := InfinibandStatus()
	if err != nil {
		t.Fatal(err)
	}
	if ib.RDMAWorking {
		t.Error("RDMA should not work on the paper's stack")
	}
}

// mustPlacement builds a rank placement over the system's fabric.
func mustPlacement(t *testing.T, s *System, ranks, perNode int) []int {
	t.Helper()
	placement, err := s.Cluster.Placement(ranks/perNode, perNode)
	if err != nil {
		t.Fatal(err)
	}
	return placement
}
