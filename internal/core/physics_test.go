package core

import (
	"fmt"
	"math"
	"testing"

	"montecimone/internal/examon"
	"montecimone/internal/power"
	"montecimone/internal/sched"
	"montecimone/internal/workload"
)

// TestPaperArtifactsIdenticalAcrossPhysicsModes proves the demand-driven
// refactor changes nothing the paper reports: Table III, Table IV and the
// Fig. 6 thermal story regenerate identically (at reporting precision)
// under lock-step and demand-driven integration. While thermally active
// both modes walk the same Euler grid, so values agree to floating-point
// dust; quiescent stretches relax in closed form within the 1e-3 degC
// quiescence tolerance, far below any reported digit.
func TestPaperArtifactsIdenticalAcrossPhysicsModes(t *testing.T) {
	t.Run("tableIII", func(t *testing.T) {
		lock, err := tableIII(Options{Nodes: 1, LockStep: true})
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := tableIII(Options{Nodes: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(lock) != len(lazy) {
			t.Fatalf("row counts differ: %d vs %d", len(lock), len(lazy))
		}
		for i := range lock {
			a := fmt.Sprintf("%s=%.6g", lock[i].Metric, lock[i].Value)
			b := fmt.Sprintf("%s=%.6g", lazy[i].Metric, lazy[i].Value)
			if a != b {
				t.Errorf("row %d differs: lock-step %s, demand-driven %s", i, a, b)
			}
		}
	})
	t.Run("tableIV", func(t *testing.T) {
		lock, err := tableIV(Options{Nodes: 1, NoMonitor: true, LockStep: true})
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := tableIV(Options{Nodes: 1, NoMonitor: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := range lock {
			if lock[i].Sensor != lazy[i].Sensor {
				t.Fatalf("sensor order differs at %d", i)
			}
			// Readings are integer millidegrees; allow the last count for
			// rounding of sub-microkelvin float dust.
			if d := lock[i].MilliC - lazy[i].MilliC; d > 1 || d < -1 {
				t.Errorf("%s differs: %d vs %d millidegC", lock[i].Sensor, lock[i].MilliC, lazy[i].MilliC)
			}
		}
	})
	t.Run("fig6", func(t *testing.T) {
		lock, err := fig6(Options{Nodes: 8, Seed: 1, LockStep: true})
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := fig6(Options{Nodes: 8, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if lock.TrippedNode != lazy.TrippedNode {
			t.Errorf("tripped node differs: %s vs %s", lock.TrippedNode, lazy.TrippedNode)
		}
		if lock.TripAt != lazy.TripAt {
			t.Errorf("trip time differs: %v vs %v", lock.TripAt, lazy.TripAt)
		}
		for name, a := range map[string][2]float64{
			"peak before mitigation": {lock.PeakBeforeMitigation, lazy.PeakBeforeMitigation},
			"peak after mitigation":  {lock.PeakAfterMitigation, lazy.PeakAfterMitigation},
		} {
			if fmt.Sprintf("%.1f", a[0]) != fmt.Sprintf("%.1f", a[1]) {
				t.Errorf("%s differs at reporting precision: %.4f vs %.4f", name, a[0], a[1])
			}
		}
	})
}

// TestDemandDrivenMonitoredStepReduction is the acceptance ratio on the
// full system (monitoring plugins as the 2 Hz observers): a settled idle
// partition integrates at least 5x fewer model steps demand-driven than
// lock-step.
func TestDemandDrivenMonitoredStepReduction(t *testing.T) {
	window := func(lockStep bool) uint64 {
		s, err := NewSystem(Options{Nodes: 16, SyntheticSlots: true, LockStep: lockStep, Backend: "ring"})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.Boot(); err != nil {
			t.Fatal(err)
		}
		if err := s.Advance(1600); err != nil {
			t.Fatal(err)
		}
		before := s.Cluster.ModelSteps()
		if err := s.Advance(300); err != nil {
			t.Fatal(err)
		}
		return s.Cluster.ModelSteps() - before
	}
	lock := window(true)
	lazy := window(false)
	if lazy == 0 {
		lazy = 1
	}
	ratio := float64(lock) / float64(lazy)
	t.Logf("monitored window steps: lock-step %d, demand-driven %d (%.0fx)", lock, lazy, ratio)
	if ratio < 5 {
		t.Errorf("demand-driven executed only %.1fx fewer steps, want >= 5x", ratio)
	}
}

// TestPowerPlaneBudgetEnforcement exercises the whole power loop through
// the system facade: powercap admission keeps the measured draw at or
// below the budget, delays the second HPL wave instead of co-scheduling
// it, and still completes every job.
func TestPowerPlaneBudgetEnforcement(t *testing.T) {
	const budget = 43.0
	s, err := NewSystem(Options{Nodes: 8, NoMonitor: true, Policy: "powercap", PowerBudgetW: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Cluster.ApplyAirflowMitigation(); err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(60); err != nil {
		t.Fatal(err)
	}
	start := s.Engine.Now()
	var jobs []*sched.Job
	for i := 0; i < 2; i++ {
		spec := sched.JobSpec{
			Name: fmt.Sprintf("hpl-%d", i), User: "ops", Nodes: 4,
			TimeLimit: 900, Duration: 600, Workload: workload.MustLookup("hpl"),
			OnStart: func(_ *sched.Job, hosts []string) {
				if err := s.Cluster.RunWorkloadOn(hosts, "hpl", power.ActivityHPL, 13e9); err != nil {
					t.Errorf("workload: %v", err)
				}
			},
			OnEnd: func(j *sched.Job, _ sched.JobState) { s.Cluster.ClearWorkloadOn(j.Hosts()) },
		}
		j, err := s.Scheduler.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := s.Engine.RunUntil(start + 2400); err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if j.State() != sched.StateCompleted {
			t.Errorf("job %d state = %s, want COMPLETED (no starvation)", i, j.State())
		}
	}
	// Both 4-node HPL waves together would draw ~43 W of incremental +
	// idle = above budget; powercap must have serialised them.
	if !(jobs[1].StartTime() >= jobs[0].EndTime()-1) {
		t.Errorf("second wave started at %v while first ran until %v — admission did not delay it",
			jobs[1].StartTime(), jobs[0].EndTime())
	}
	// Every plane draw sample stays at or below the budget (small slack
	// for the 1 s control lag on workload clear).
	series := s.DB.Query(examon.Filter{Plugin: "powerplane", Metric: "draw_w", From: start})
	if len(series) != 1 || len(series[0].Points) == 0 {
		t.Fatalf("no powerplane draw telemetry: %v", series)
	}
	maxDraw := 0.0
	for _, p := range series[0].Points {
		if p.V > maxDraw {
			maxDraw = p.V
		}
	}
	if maxDraw > budget {
		t.Errorf("measured draw peaked at %.2f W above the %v W budget", maxDraw, budget)
	}
	// Budget/headroom telemetry is self-consistent.
	bseries := s.DB.Query(examon.Filter{Plugin: "powerplane", Metric: "budget_w", From: start})
	if len(bseries) != 1 || bseries[0].Points[0].V != budget {
		t.Errorf("budget telemetry = %v", bseries)
	}
}

// TestPowerCapPrefersCoolerNodes: with one node pre-heated, a power-aware
// placement lands elsewhere.
func TestPowerCapPrefersCoolerNodes(t *testing.T) {
	s, err := NewSystem(Options{Nodes: 8, NoMonitor: true, Policy: "powercap", PowerBudgetW: 60})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	// Heat mc03 (a hot centre slot) under direct HPL for a while.
	if err := s.Cluster.RunWorkloadOn([]string{"mc03"}, "hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(600); err != nil {
		t.Fatal(err)
	}
	s.Cluster.ClearWorkloadOn([]string{"mc03"})
	job, err := s.Scheduler.Submit(sched.JobSpec{
		Name: "probe", User: "ops", Nodes: 1, TimeLimit: 60, Duration: 30, Workload: workload.MustLookup("qe"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(5); err != nil {
		t.Fatal(err)
	}
	hosts := job.Hosts()
	if len(hosts) != 1 {
		t.Fatalf("probe not placed: %v (state %s)", hosts, job.State())
	}
	if hosts[0] == "mc03" {
		t.Errorf("probe landed on the pre-heated node %v", hosts)
	}
	if math.IsInf(s.Plane.NodeTempC(hosts[0]), 1) {
		t.Errorf("advisor has no temperature for %s", hosts[0])
	}
}
