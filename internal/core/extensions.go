package core

import (
	"fmt"

	"montecimone/internal/accel"
	"montecimone/internal/dtm"
	"montecimone/internal/examon"
	"montecimone/internal/hpl"
	"montecimone/internal/node"
	"montecimone/internal/power"
	"montecimone/internal/soc"
	"montecimone/internal/thermal"
)

// This file hosts the paper's future-work items implemented as extensions:
// dynamic power and thermal management (Section VI item ii) and the ODA
// anomaly-detection analytics (Section II) applied to the node-7 hazard.

// AnomalyScanReport is the outcome of replaying the thermal incident with
// the ExaMon anomaly detector watching the temperature series.
type AnomalyScanReport struct {
	// TripAt is when mc07 actually halted (seconds after HPL start);
	// DetectedAt when the runaway detector first flagged it; LeadSeconds
	// the warning margin.
	TripAt      float64
	DetectedAt  float64
	LeadSeconds float64
	// Findings are all detector hits across the cluster.
	Findings []examon.Anomaly
}

// ThermalAnomalyScan replays the Fig. 6 incident with monitoring enabled
// and runs the runaway detector over the collected cpu_temp series: the
// detector must flag node 7 before the hardware trip — the alerting the
// ODA stack would have provided the operators.
func ThermalAnomalyScan(seed int64) (*AnomalyScanReport, error) {
	s, err := NewSystem(Options{Nodes: 8, Seed: seed})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.Boot(); err != nil {
		return nil, err
	}
	hosts := s.Cluster.Hostnames()
	tripAt := -1.0
	s.Cluster.OnNodeHalt(func(h string) {
		if tripAt < 0 {
			tripAt = s.Engine.Now()
		}
	})
	start := s.Engine.Now()
	if err := s.Cluster.RunWorkloadOn(hosts, "hpl", power.ActivityHPL, hplMemBytes); err != nil {
		return nil, err
	}
	for i := 0; i < 7200 && tripAt < 0; i++ {
		if err := s.Advance(1); err != nil {
			return nil, err
		}
	}
	if tripAt < 0 {
		return nil, fmt.Errorf("core: anomaly scan: no trip within two hours")
	}

	detector := examon.Detector{Limit: thermal.TripTempC, Window: 12, RunawayHorizon: 240}
	findings, err := detector.ScanAll(s.DB, examon.Filter{
		Plugin: "dstat_pub", Metric: "temperature.cpu_temp",
	})
	if err != nil {
		return nil, err
	}
	report := &AnomalyScanReport{TripAt: tripAt - start, Findings: findings, DetectedAt: -1}
	for _, a := range findings {
		if a.Tags.Node == "mc07" && a.Kind == examon.AnomalyRunaway {
			report.DetectedAt = a.Time - start
			break
		}
	}
	if report.DetectedAt >= 0 {
		report.LeadSeconds = report.TripAt - report.DetectedAt
	}
	return report, nil
}

// EnergyReport extends the paper's power characterisation to
// energy-to-solution for the HPL runs: with per-rail power and modelled
// runtimes in hand, the joules and GFLOPS/W of the RISC-V node follow.
type EnergyReport struct {
	// NodeIdleWatts and NodeHPLWatts are the per-node board powers.
	NodeIdleWatts, NodeHPLWatts float64
	// SingleNodeKJ and SingleNodeGFlopsPerWatt cover the N=40704
	// single-node run; the FullMachine fields the 8-node run.
	SingleNodeKJ, SingleNodeGFlopsPerWatt   float64
	FullMachineKJ, FullMachineGFlopsPerWatt float64
}

// EnergyToSolution derives HPL energy metrics from the power model and
// the calibrated run model.
func EnergyToSolution() (*EnergyReport, error) {
	pm := power.NewModel()
	idleW := pm.TotalMilliwatts(power.PhaseRun, power.ActivityIdle) / 1000
	hplW := pm.TotalMilliwatts(power.PhaseRun, power.ActivityHPL) / 1000

	single, err := hpl.Simulate(hpl.Config{N: PaperN, NB: PaperNB, Nodes: 1})
	if err != nil {
		return nil, err
	}
	full, err := hpl.Simulate(hpl.Config{N: PaperN, NB: PaperNB, Nodes: 8})
	if err != nil {
		return nil, err
	}
	return &EnergyReport{
		NodeIdleWatts: idleW,
		NodeHPLWatts:  hplW,

		SingleNodeKJ:             hplW * single.Seconds / 1000,
		SingleNodeGFlopsPerWatt:  single.GFlops / hplW,
		FullMachineKJ:            8 * hplW * full.Seconds / 1000,
		FullMachineGFlopsPerWatt: full.GFlops / (8 * hplW),
	}, nil
}

// AcceleratorReport projects the future-work PCIe accelerator onto the
// single-node HPL run.
type AcceleratorReport struct {
	// Card is the projected accelerator name.
	Card string
	// HostGFlops/AccelGFlops/Speedup follow accel.HPLProjection; Bound
	// names the limiting resource.
	HostGFlops, AccelGFlops, Speedup float64
	Bound                            string
	// NodeWattsWithCard is board power plus the busy card.
	NodeWattsWithCard float64
	// GFlopsPerWatt compares energy efficiency with and without the card.
	HostGFlopsPerWatt, AccelGFlopsPerWatt float64
}

// AcceleratorStudy projects the VectorCard onto a Monte Cimone node at
// the paper's HPL configuration.
func AcceleratorStudy() (*AcceleratorReport, error) {
	card := accel.VectorCard()
	machine := power.NewModel()
	proj, err := accel.ProjectHPL(soc.FU740(), card, PaperN, PaperNB)
	if err != nil {
		return nil, err
	}
	hostW := machine.TotalMilliwatts(power.PhaseRun, power.ActivityHPL) / 1000
	withCard := hostW + card.NodeWatts(1)
	return &AcceleratorReport{
		Card:               card.Name,
		HostGFlops:         proj.HostGFlops,
		AccelGFlops:        proj.AccelGFlops,
		Speedup:            proj.Speedup,
		Bound:              proj.Bound,
		NodeWattsWithCard:  withCard,
		HostGFlopsPerWatt:  proj.HostGFlops / hostW,
		AccelGFlopsPerWatt: proj.AccelGFlops / withCard,
	}, nil
}

// DTMReport is the outcome of running the hazard node under the thermal
// governor.
type DTMReport struct {
	// Survived reports whether node 7 stayed up for the whole window
	// (without the governor it trips).
	Survived bool
	// SteadyTempC is the capped junction temperature; MeanScale the
	// average DVFS operating point (the performance cost);
	// ThrottledSeconds the time spent below nominal.
	SteadyTempC      float64
	MeanScale        float64
	ThrottledSeconds float64
}

// DTMStudy runs node 7 (original enclosure) under sustained HPL for an
// hour with the thermal-capping governor: the future-work dynamic thermal
// management that would have kept the node in production.
func DTMStudy(capC float64) (*DTMReport, error) {
	s, err := NewSystem(Options{Nodes: 8, NoMonitor: true})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.Boot(); err != nil {
		return nil, err
	}
	nd, err := s.Cluster.NodeByHostname("mc07")
	if err != nil {
		return nil, err
	}
	cfg := dtm.Config{}
	if capC != 0 {
		cfg.CapC = capC
	}
	gov, err := dtm.New(nd, cfg)
	if err != nil {
		return nil, err
	}
	if err := gov.Start(s.Engine); err != nil {
		return nil, err
	}
	defer gov.Stop()
	if err := s.Cluster.RunWorkloadOn(s.Cluster.Hostnames(), "hpl", power.ActivityHPL, hplMemBytes); err != nil {
		return nil, err
	}
	if err := s.Advance(3600); err != nil {
		return nil, err
	}
	return &DTMReport{
		Survived:         nd.State() == node.StateRunning,
		SteadyTempC:      nd.Temperature(thermal.SensorCPU),
		MeanScale:        gov.MeanScale(),
		ThrottledSeconds: gov.ThrottledSeconds(),
	}, nil
}
