package core

import (
	"fmt"

	"montecimone/internal/examon"
	"montecimone/internal/node"
	"montecimone/internal/power"
	"montecimone/internal/sim"
	"montecimone/internal/spack"
	"montecimone/internal/stream"
	"montecimone/internal/thermal"
	"montecimone/internal/workload"
)

// TableI regenerates Table I: the user-facing software stack deployed via
// Spack for the linux-sifive-u74mc target.
func TableI() ([]spack.StackRow, error) {
	in, err := spack.NewInstaller(spack.BuiltinRepo(), "u74mc",
		spack.Compiler{Name: "gcc", Version: "10.3.0"})
	if err != nil {
		return nil, err
	}
	return in.InstallUserStack()
}

// TopicSpec is one row of Table II.
type TopicSpec struct {
	// Plugin is the publishing plugin; Topic the format with
	// placeholders; Payload the payload format.
	Plugin  string
	Topic   string
	Payload string
}

// TableII returns the ExaMon topic and payload formats of Table II.
func TableII() []TopicSpec {
	return []TopicSpec{
		{
			Plugin:  "pmu_pub",
			Topic:   "org/<org>/cluster/<cluster>/node/<hostname>/plugin/pmu_pub/chnl/data/core/<id>/<metric_name>",
			Payload: "<value>;<timestamp>",
		},
		{
			Plugin:  "stats_pub",
			Topic:   "org/<org>/cluster/<cluster>/node/<hostname>/plugin/dstat_pub/chnl/data/<metric_name>",
			Payload: "<value>;<timestamp>",
		},
	}
}

// MetricSample is one row of the Table III regeneration: a stats_pub
// metric with a live sampled value.
type MetricSample struct {
	// Metric is the Table III metric name; Value a sampled value.
	Metric string
	Value  float64
}

// TableIII boots a monitored system, lets stats_pub sample for a minute of
// virtual time and returns one live value per Table III metric.
func TableIII() ([]MetricSample, error) {
	return tableIII(Options{Nodes: 1})
}

// tableIII is TableIII on explicit options (the physics-mode equivalence
// test regenerates it under both integration modes).
func tableIII(opts Options) ([]MetricSample, error) {
	s, err := NewSystem(opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.Boot(); err != nil {
		return nil, err
	}
	if err := s.Advance(60); err != nil {
		return nil, err
	}
	out := make([]MetricSample, 0, len(examon.StatsMetrics))
	for _, metric := range examon.StatsMetrics {
		series := s.DB.Query(examon.Filter{Node: "mc01", Plugin: "dstat_pub", Metric: metric})
		if len(series) != 1 || len(series[0].Points) == 0 {
			return nil, fmt.Errorf("core: metric %s not collected", metric)
		}
		pts := series[0].Points
		out = append(out, MetricSample{Metric: metric, Value: pts[len(pts)-1].V})
	}
	return out, nil
}

// SensorRow is one row of Table IV: a temperature sensor with its sysfs
// file and a live reading.
type SensorRow struct {
	// Sensor is the paper's sensor name; SysfsFile the hwmon path;
	// MilliC the live reading in millidegrees.
	Sensor    string
	SysfsFile string
	MilliC    int64
}

// TableIV boots one node and reads the three hwmon sensors through their
// sysfs paths.
func TableIV() ([]SensorRow, error) {
	return tableIV(Options{Nodes: 1, NoMonitor: true})
}

// tableIV is TableIV on explicit options (for the physics-mode test).
func tableIV(opts Options) ([]SensorRow, error) {
	s, err := NewSystem(opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.Boot(); err != nil {
		return nil, err
	}
	if err := s.Advance(30); err != nil {
		return nil, err
	}
	nd := s.Cluster.Node(0)
	rows := []SensorRow{
		{Sensor: "nvme_temp", SysfsFile: node.HwmonNVMePath},
		{Sensor: "mb_temp", SysfsFile: node.HwmonMBPath},
		{Sensor: "cpu_temp", SysfsFile: node.HwmonCPUPath},
	}
	for i := range rows {
		v, err := nd.ReadHwmon(rows[i].SysfsFile)
		if err != nil {
			return nil, err
		}
		rows[i].MilliC = v
	}
	return rows, nil
}

// StreamTable is the Table V regeneration: per-kernel results for both
// dataset sizes.
type StreamTable struct {
	// DDR and L2 hold the 1945.5 MiB and 1.1 MiB rows.
	DDR []stream.Result
	L2  []stream.Result
}

// TableV regenerates Table V (STREAM, 4 threads, both working sets).
func TableV(seed int64) (*StreamTable, error) {
	rng := sim.NewRNG(seed)
	ddr, err := stream.Run(stream.Config{WorkingSetBytes: stream.DDRWorkingSetBytes, RNG: rng})
	if err != nil {
		return nil, err
	}
	l2, err := stream.Run(stream.Config{WorkingSetBytes: stream.L2WorkingSetBytes, RNG: rng})
	if err != nil {
		return nil, err
	}
	return &StreamTable{DDR: ddr, L2: l2}, nil
}

// PowerColumn is one workload column of Table VI.
type PowerColumn struct {
	// Workload names the column; Rails the per-rail milliwatts; Percent
	// the per-rail share of the column total; TotalMilliwatts the sum.
	Workload        string
	Rails           map[power.Rail]float64
	Percent         map[power.Rail]float64
	TotalMilliwatts float64
}

// TableVI regenerates the power-rail characterisation of Table VI,
// including the two boot columns.
func TableVI() []PowerColumn {
	pm := power.NewModel()
	type col struct {
		name  string
		phase power.Phase
		act   power.Activity
	}
	cols := []col{
		{"Idle", power.PhaseRun, power.ActivityIdle},
		{"HPL", power.PhaseRun, power.ActivityHPL},
		{"STREAM.L2", power.PhaseRun, power.ActivityStreamL2},
		{"STREAM.DDR", power.PhaseRun, power.ActivityStreamDDR},
		{"QE", power.PhaseRun, power.ActivityQE},
		{"Boot R1", power.PhaseR1, power.ActivityIdle},
		{"Boot R2", power.PhaseR2, power.ActivityIdle},
	}
	out := make([]PowerColumn, 0, len(cols))
	for _, c := range cols {
		rails := pm.Breakdown(c.phase, c.act)
		total := 0.0
		for _, v := range rails {
			total += v
		}
		percent := make(map[power.Rail]float64, len(rails))
		for r, v := range rails {
			if total > 0 {
				percent[r] = 100 * v / total
			}
		}
		out = append(out, PowerColumn{
			Workload: c.name, Rails: rails, Percent: percent, TotalMilliwatts: total,
		})
	}
	return out
}

// PowerDecomposition reports the Section V-B / Fig. 4 decomposition of the
// idle core and DDR power.
type PowerDecomposition struct {
	// Core components in milliwatts and as fractions of idle core power.
	CoreLeakage, CoreClockTree, CoreOS             float64
	CoreLeakageFrac, CoreClockTreeFrac, CoreOSFrac float64
	// DDR bank leakage and its fraction of the bank's idle power.
	DDRLeakage, DDRLeakageFrac float64
	// Idle and peak-workload system totals (abstract: 4.81 W and 5.935 W).
	IdleTotalMilliwatts, HPLTotalMilliwatts float64
}

// Decomposition computes the paper's power decomposition numbers.
func Decomposition() PowerDecomposition {
	pm := power.NewModel()
	leak, clk, osp := pm.CoreDecomposition()
	idleCore := pm.RailMilliwatts(power.RailCore, power.PhaseRun, power.ActivityIdle)
	ddrLeak, _ := pm.DDRMemDecomposition()
	idleDDR := pm.RailMilliwatts(power.RailDDRMem, power.PhaseRun, power.ActivityIdle)
	return PowerDecomposition{
		CoreLeakage: leak, CoreClockTree: clk, CoreOS: osp,
		CoreLeakageFrac:     leak / idleCore,
		CoreClockTreeFrac:   clk / idleCore,
		CoreOSFrac:          osp / idleCore,
		DDRLeakage:          ddrLeak,
		DDRLeakageFrac:      ddrLeak / idleDDR,
		IdleTotalMilliwatts: pm.TotalMilliwatts(power.PhaseRun, power.ActivityIdle),
		HPLTotalMilliwatts:  pm.TotalMilliwatts(power.PhaseRun, power.ActivityHPL),
	}
}

// Per-workload resident sets, resolved from the registry models so the
// figure/extension runners and campaign physics can never drift apart.
var (
	hplMemBytes    = workload.MustLookup("hpl").MemBytes
	streamMemBytes = workload.MustLookup("stream.ddr").MemBytes
	qeMemBytes     = workload.MustLookup("qe").MemBytes
)

// workloadActivity resolves a benchmark name through the workload
// registry — the single source of activity profiles and footprints; the
// per-experiment switch tables are gone.
func workloadActivity(name string) (power.Activity, float64, error) {
	m, err := workload.Lookup(name)
	if err != nil {
		return power.Activity{}, 0, fmt.Errorf("core: %w", err)
	}
	return m.Steady, m.MemBytes, nil
}

// ThermalEnvironments exposes the enclosure states used by the Fig. 6
// experiment.
var (
	// EnclosureOriginal is the lid-on build that trips node 7.
	EnclosureOriginal = thermal.DefaultEnclosure()
	// EnclosureMitigated is the lid-off, spaced configuration.
	EnclosureMitigated = thermal.Enclosure{AmbientC: 25, LidOn: false}
)
