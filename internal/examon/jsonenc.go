package examon

import (
	"encoding/json"
	"math"
	"strconv"
	"sync"
)

// A zero-allocation JSON append encoder for the REST hot path: responses
// are rendered straight from the storage engine's buffers into a pooled
// byte slice with strconv.Append*, replacing the intermediate response
// structs + encoding/json round trip. Output is byte-identical to
// encoding/json (same float formatting, same HTML-escaped strings), which
// the REST tests pin against json.Marshal.

// jsonBufPool recycles response buffers across requests.
var jsonBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// maxPooledBufBytes caps what a response buffer may retain when returned
// to the pool: one huge raw query must not pin megabytes behind a pool
// entry for the rest of its lifetime.
const maxPooledBufBytes = 1 << 20

// putJSONBuf returns a buffer to the pool unless it grew past the
// retention cap (oversized buffers are left to the GC).
func putJSONBuf(bp *[]byte, b []byte) {
	if cap(b) > maxPooledBufBytes {
		return
	}
	*bp = b[:0]
	jsonBufPool.Put(bp)
}

// appendJSONFloat appends f exactly as encoding/json renders a float64:
// shortest representation, 'f' form inside [1e-6, 1e21), 'e' form outside
// with the exponent's leading zero trimmed. ok is false for NaN/Inf,
// which JSON cannot represent.
func appendJSONFloat(b []byte, f float64) (out []byte, ok bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return b, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Trim "e-09" to "e-9", like encoding/json.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, true
}

// appendJSONString appends s as a JSON string with encoding/json's
// default escaping. Telemetry tags are plain ASCII, so the fast path
// copies verbatim; anything needing escapes (quotes, control characters,
// HTML-significant bytes, non-ASCII) takes the exact-by-construction
// json.Marshal fallback.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			enc, err := json.Marshal(s)
			if err != nil { // cannot happen for a string
				return append(append(b, '"'), '"')
			}
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}
