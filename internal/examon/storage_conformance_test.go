package examon

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// The shared conformance suite: every Storage engine (and the TSDB
// wrapper) must satisfy the same insert/query/scan contract. Engines with
// extra semantics (ring eviction, shard counts) get engine-specific tests
// below the suite.

// conformanceEngines returns fresh instances of every engine under a name.
// The ring store gets a capacity large enough that the shared suite never
// triggers eviction (eviction semantics are tested separately).
func conformanceEngines() map[string]func() Storage {
	return map[string]func() Storage{
		"mem":     func() Storage { return NewMemStore() },
		"ring":    func() Storage { return NewRingStore(1 << 16) },
		"sharded": func() Storage { return NewShardedStore(4) },
		"tsdb": func() Storage {
			db, err := NewTSDBOn(NewShardedStore(2))
			if err != nil {
				panic(err)
			}
			return db
		},
		// The read-path ablations must satisfy the same contract: the
		// linear variants take the seed's full-walk scan on every read,
		// the norollup variants keep the index but serve every
		// aggregation from raw points.
		"mem-linear":     func() Storage { return NewMemStore(WithLinearScan(true)) },
		"sharded-linear": func() Storage { return NewShardedStore(4, WithLinearScan(true)) },
		"mem-norollup":   func() Storage { return NewMemStore(WithRollup(-1)) },
	}
}

func confTags(nodeID, core int, metric string) Tags {
	plugin := "pmu_pub"
	if core < 0 {
		plugin = "dstat_pub"
	}
	return Tags{Org: "o", Cluster: "c", Node: fmt.Sprintf("mc%02d", nodeID),
		Plugin: plugin, Core: core, Metric: metric}
}

func TestStorageConformance(t *testing.T) {
	for name, mk := range conformanceEngines() {
		t.Run(name, func(t *testing.T) {
			t.Run("InsertAndFilter", func(t *testing.T) { testInsertAndFilter(t, mk()) })
			t.Run("TimeRange", func(t *testing.T) { testTimeRange(t, mk()) })
			t.Run("InsertionOrder", func(t *testing.T) { testInsertionOrder(t, mk()) })
			t.Run("BatchEquivalence", func(t *testing.T) { testBatchEquivalence(t, mk(), mk()) })
			t.Run("ScanMatchesQuery", func(t *testing.T) { testScanMatchesQuery(t, mk()) })
			t.Run("KeysAndCount", func(t *testing.T) { testKeysAndCount(t, mk()) })
			t.Run("OrgClusterNotIdentity", func(t *testing.T) { testOrgClusterNotIdentity(t, mk()) })
			t.Run("ConcurrentIngestQuery", func(t *testing.T) { testConcurrentIngestQuery(t, mk()) })
		})
	}
}

func testInsertAndFilter(t *testing.T, st Storage) {
	for n := 1; n <= 3; n++ {
		for core := 0; core < 2; core++ {
			st.Insert(confTags(n, core, "instret"), 1, float64(n*10+core))
		}
		st.Insert(confTags(n, -1, "temperature.cpu_temp"), 1, 40)
	}
	if got := len(st.Query(Filter{})); got != 9 {
		t.Fatalf("all series = %d, want 9", got)
	}
	if got := len(st.Query(Filter{Node: "mc02"})); got != 3 {
		t.Errorf("mc02 series = %d, want 3", got)
	}
	if got := len(st.Query(Filter{Plugin: "dstat_pub"})); got != 3 {
		t.Errorf("dstat series = %d, want 3", got)
	}
	if got := len(st.Query(Filter{Metric: "instret", Core: intPtr(1)})); got != 3 {
		t.Errorf("core-1 instret series = %d, want 3", got)
	}
	if got := len(st.Query(Filter{Node: "mc99"})); got != 0 {
		t.Errorf("unknown node matched %d series", got)
	}
	got := st.Query(Filter{Node: "mc03", Metric: "instret", Core: intPtr(0)})
	if len(got) != 1 || len(got[0].Points) != 1 || got[0].Points[0].V != 30 {
		t.Errorf("point query = %+v", got)
	}
}

func testTimeRange(t *testing.T, st Storage) {
	tags := confTags(1, -1, "m")
	for i := 0; i < 10; i++ {
		st.Insert(tags, float64(i), float64(i*10))
	}
	got := st.Query(Filter{From: 3, To: 7})
	if len(got) != 1 || len(got[0].Points) != 4 {
		t.Fatalf("range query = %+v, want 4 points (t=3..6)", got)
	}
	// To == 0 means unbounded (see the Filter docs: an exclusive bound of
	// exactly zero is inexpressible).
	if got := st.Query(Filter{From: 5}); len(got[0].Points) != 5 {
		t.Errorf("open-ended query = %d points, want 5", len(got[0].Points))
	}
	if got := st.Query(Filter{To: 0}); len(got[0].Points) != 10 {
		t.Errorf("To=0 query = %d points, want all 10 (unbounded)", len(got[0].Points))
	}
	// From is inclusive, To exclusive.
	if got := st.Query(Filter{From: 3, To: 4}); len(got[0].Points) != 1 {
		t.Errorf("single-sample window = %d points, want 1", len(got[0].Points))
	}
	// A series with no in-range points is still returned, empty.
	if got := st.Query(Filter{From: 100}); len(got) != 1 || len(got[0].Points) != 0 {
		t.Errorf("out-of-range query = %+v, want one empty series", got)
	}
}

func testInsertionOrder(t *testing.T, st Storage) {
	// First-insert order must be reproduced by Query and Scan regardless
	// of engine internals (the sharded store reconstructs it via a global
	// sequence counter).
	var want []Tags
	for i := 9; i >= 0; i-- {
		tags := confTags(i, -1, "m")
		st.Insert(tags, 0, 0)
		st.Insert(tags, 1, 1) // second insert must not affect order
		want = append(want, tags)
	}
	var got []Tags
	for _, s := range st.Query(Filter{}) {
		got = append(got, s.Tags)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("query order = %v, want %v", got, want)
	}
}

func testBatchEquivalence(t *testing.T, single, batched Storage) {
	var batch []Sample
	for n := 0; n < 4; n++ {
		for i := 0; i < 5; i++ {
			s := Sample{Tags: confTags(n, 0, "cycle"), T: float64(i), V: float64(n*100 + i)}
			single.Insert(s.Tags, s.T, s.V)
			batch = append(batch, s)
		}
	}
	batched.InsertBatch(batch)
	a, b := single.Query(Filter{}), batched.Query(Filter{})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("batch insert diverges from single inserts:\n%+v\nvs\n%+v", a, b)
	}
	if single.SeriesCount() != batched.SeriesCount() {
		t.Errorf("series counts differ: %d vs %d", single.SeriesCount(), batched.SeriesCount())
	}
}

func testScanMatchesQuery(t *testing.T, st Storage) {
	for n := 0; n < 3; n++ {
		for i := 0; i < 8; i++ {
			st.Insert(confTags(n, 0, "instret"), float64(i), float64(i))
		}
	}
	f := Filter{Metric: "instret", From: 2, To: 6}
	var scanned []Series
	st.Scan(f, func(tags Tags, pts PointsView) bool {
		s := Series{Tags: tags}
		cur := pts.Cursor(f.From, f.To)
		for p, ok := cur.Next(); ok; p, ok = cur.Next() {
			s.Points = append(s.Points, p)
		}
		scanned = append(scanned, s)
		return true
	})
	if !reflect.DeepEqual(scanned, st.Query(f)) {
		t.Errorf("scan+cursor diverges from query")
	}
	// Scan must pass the FULL view (no time filtering): rate-style
	// aggregation needs the out-of-range predecessor.
	st.Scan(Filter{Node: "mc00", From: 2, To: 6}, func(tags Tags, pts PointsView) bool {
		if pts.Len() != 8 {
			t.Errorf("scan view has %d points, want the full 8", pts.Len())
		}
		return false
	})
	// Returning false stops the scan.
	visits := 0
	st.Scan(Filter{}, func(Tags, PointsView) bool { visits++; return false })
	if visits != 1 {
		t.Errorf("scan visited %d series after stop, want 1", visits)
	}
}

func testKeysAndCount(t *testing.T, st Storage) {
	if st.SeriesCount() != 0 || len(st.Keys()) != 0 {
		t.Fatalf("fresh store not empty")
	}
	st.Insert(confTags(2, 1, "cycle"), 0, 0)
	st.Insert(confTags(1, -1, "load_avg.1m"), 0, 0)
	st.Insert(confTags(2, 1, "cycle"), 1, 1)
	if st.SeriesCount() != 2 {
		t.Errorf("series count = %d, want 2", st.SeriesCount())
	}
	keys := st.Keys()
	want := []string{"mc01/dstat_pub/load_avg.1m", "mc02/pmu_pub/core1/cycle"}
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("keys = %v, want %v (sorted)", keys, want)
	}
	if !sort.StringsAreSorted(keys) {
		t.Errorf("keys not sorted: %v", keys)
	}
}

// testOrgClusterNotIdentity pins the seed's series identity: org/cluster
// are scoping metadata, so samples differing only there extend one series
// (which keeps the first-seen tag set) — Keys() must never list the same
// rendered key twice.
func testOrgClusterNotIdentity(t *testing.T, st Storage) {
	a := Tags{Org: "orgA", Cluster: "cA", Node: "mc01", Plugin: "dstat_pub", Core: -1, Metric: "m"}
	b := Tags{Org: "orgB", Cluster: "cB", Node: "mc01", Plugin: "dstat_pub", Core: -1, Metric: "m"}
	st.Insert(a, 0, 1)
	st.Insert(b, 1, 2)
	if st.SeriesCount() != 1 {
		t.Fatalf("series count = %d, want 1 (org/cluster are not identity)", st.SeriesCount())
	}
	got := st.Query(Filter{Node: "mc01"})
	if len(got) != 1 || len(got[0].Points) != 2 {
		t.Fatalf("query = %+v, want one merged 2-point series", got)
	}
	if got[0].Tags != a {
		t.Errorf("merged series tags = %+v, want first-seen %+v", got[0].Tags, a)
	}
	if keys := st.Keys(); len(keys) != 1 {
		t.Errorf("keys = %v, want a single entry", keys)
	}
}

// testConcurrentIngestQuery hammers every engine with parallel per-node
// writers and concurrent readers; run under -race this is the regression
// net for the ingest/query locking (satellite: concurrent coverage for
// every storage engine).
func testConcurrentIngestQuery(t *testing.T, st Storage) {
	const (
		writers = 8
		ticks   = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]Sample, 0, 4)
			for i := 0; i < ticks; i++ {
				batch = batch[:0]
				for core := 0; core < 2; core++ {
					batch = append(batch, Sample{
						Tags: confTags(w, core, "instret"),
						T:    float64(i), V: float64(i),
					})
				}
				st.InsertBatch(batch)
				st.Insert(confTags(w, -1, "temperature.cpu_temp"), float64(i), 40)
			}
		}(w)
	}
	stop := make(chan struct{})
	var (
		readMu  sync.Mutex
		readErr error
	)
	fail := func(err error) {
		readMu.Lock()
		if readErr == nil {
			readErr = err
		}
		readMu.Unlock()
	}
	var rwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				node := fmt.Sprintf("mc%02d", r)
				for _, s := range st.Query(Filter{Node: node, Metric: "instret"}) {
					for i := 1; i < len(s.Points); i++ {
						if s.Points[i].T < s.Points[i-1].T {
							fail(fmt.Errorf("series %s went back in time", s.Key()))
							return
						}
					}
				}
				if _, err := QueryAgg(st, Filter{Node: node}, AggOptions{Op: AggMax, Step: 50}); err != nil {
					fail(err)
					return
				}
				st.SeriesCount()
				st.Keys()
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if got := st.SeriesCount(); got != writers*3 {
		t.Fatalf("series count = %d, want %d", got, writers*3)
	}
	for _, s := range st.Query(Filter{Metric: "instret"}) {
		if len(s.Points) != ticks {
			t.Fatalf("series %s has %d points, want %d", s.Key(), len(s.Points), ticks)
		}
	}
}

// --- engine-specific behavior -------------------------------------------

func TestRingStoreEviction(t *testing.T) {
	st := NewRingStore(4)
	tags := confTags(1, -1, "m")
	for i := 0; i < 10; i++ {
		st.Insert(tags, float64(i), float64(i))
	}
	got := st.Query(Filter{})
	if len(got) != 1 {
		t.Fatalf("series = %d", len(got))
	}
	want := []Point{{T: 6, V: 6}, {T: 7, V: 7}, {T: 8, V: 8}, {T: 9, V: 9}}
	if !reflect.DeepEqual(got[0].Points, want) {
		t.Errorf("retained points = %+v, want the 4 most recent %+v", got[0].Points, want)
	}
	// The wrapped ring must surface points in arrival order through the
	// two-segment view.
	st.Scan(Filter{}, func(_ Tags, pts PointsView) bool {
		if pts.Len() != 4 {
			t.Errorf("view len = %d", pts.Len())
		}
		for i := 0; i < pts.Len(); i++ {
			if pts.At(i) != want[i] {
				t.Errorf("view[%d] = %+v, want %+v", i, pts.At(i), want[i])
			}
		}
		return true
	})
	if st.Capacity() != 4 {
		t.Errorf("capacity = %d", st.Capacity())
	}
	// Aggregation over the ring sees only the retained window.
	agg, err := QueryAgg(st, Filter{}, AggOptions{Op: AggMin})
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != 1 || agg[0].Points[0].V != 6 || agg[0].Points[0].N != 4 {
		t.Errorf("agg over ring = %+v", agg)
	}
}

func TestRingStoreDefaultCapacity(t *testing.T) {
	if got := NewRingStore(0).Capacity(); got != DefaultRingCapacity {
		t.Errorf("default capacity = %d", got)
	}
}

func TestShardedStoreShards(t *testing.T) {
	if got := NewShardedStore(0).Shards(); got != DefaultShards {
		t.Errorf("default shards = %d", got)
	}
	// Mixed-node batches must land in the right shards.
	st := NewShardedStore(3)
	var batch []Sample
	for n := 0; n < 9; n++ {
		batch = append(batch, Sample{Tags: confTags(n, -1, "m"), T: 0, V: float64(n)})
	}
	st.InsertBatch(batch)
	if st.SeriesCount() != 9 {
		t.Errorf("series = %d", st.SeriesCount())
	}
	for n := 0; n < 9; n++ {
		got := st.Query(Filter{Node: fmt.Sprintf("mc%02d", n)})
		if len(got) != 1 || got[0].Points[0].V != float64(n) {
			t.Errorf("node %d query = %+v", n, got)
		}
	}
}

func TestNewStorageFactory(t *testing.T) {
	for _, backend := range StorageBackends() {
		st, err := NewStorage(backend)
		if err != nil || st == nil {
			t.Errorf("backend %q: %v", backend, err)
		}
	}
	if st, err := NewStorage(""); err != nil {
		t.Errorf("default backend: %v", err)
	} else if _, ok := st.(*MemStore); !ok {
		t.Errorf("default backend is %T, want *MemStore", st)
	}
	if _, err := NewStorage("postgres"); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestTSDBOnValidation(t *testing.T) {
	if _, err := NewTSDBOn(nil); err == nil {
		t.Error("nil engine accepted")
	}
	db, err := NewTSDBOn(NewRingStore(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Storage().(*RingStore); !ok {
		t.Errorf("storage = %T", db.Storage())
	}
}

func TestQueryAggBucketGuard(t *testing.T) {
	st := NewMemStore()
	st.Insert(confTags(1, -1, "m"), 0, 1)
	st.Insert(confTags(1, -1, "m"), 1e12, 2) // huge open-ended range
	if _, err := QueryAgg(st, Filter{}, AggOptions{Op: AggAvg, Step: 1e-3}); err == nil {
		t.Error("unbounded bucket explosion accepted")
	}
	// A quotient beyond int64 range must still error, not silently skip
	// the samples via an implementation-defined float-to-int conversion.
	if _, err := QueryAgg(st, Filter{}, AggOptions{Op: AggAvg, Step: 1e-30}); err == nil {
		t.Error("int-overflowing bucket index accepted")
	}
	if _, err := QueryAgg(st, Filter{From: 0, To: 1e12}, AggOptions{Op: AggAvg, Step: 1e-3}); err == nil {
		t.Error("bounded bucket explosion accepted")
	}
	if math.MaxInt32 < maxAggBuckets {
		t.Error("sanity: bucket cap out of range")
	}
}
