package examon

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// This file implements the analytics side of the ODA stack: the paper's
// ExaMon deployments target "visualisation and analytics for anomaly
// detection" (Section II), and on Monte Cimone the monitoring data is what
// let the operators pinpoint the node-7 thermal hazard. The detector finds
// absolute-limit violations, statistical outliers against a rolling
// baseline, and runaway trends that predict a limit crossing before it
// happens.

// AnomalyKind classifies a finding.
type AnomalyKind string

// Anomaly kinds.
const (
	// AnomalyLimit is an absolute threshold violation.
	AnomalyLimit AnomalyKind = "limit"
	// AnomalyOutlier is a z-score outlier against the rolling baseline.
	AnomalyOutlier AnomalyKind = "outlier"
	// AnomalyRunaway is a sustained trend predicted to cross the limit.
	AnomalyRunaway AnomalyKind = "runaway"
)

// Anomaly is one detector finding.
type Anomaly struct {
	// Tags identify the series; Kind the finding class.
	Tags Tags
	Kind AnomalyKind
	// Time and Value locate the triggering sample; Score is the z-score
	// (outliers), the predicted seconds to the limit (runaway), or the
	// excess over the limit (limit).
	Time, Value, Score float64
}

// Detector configures the scans.
type Detector struct {
	// Window is the rolling-baseline sample count (default 30).
	Window int
	// ZThreshold flags outliers beyond this many baseline standard
	// deviations (default 6).
	ZThreshold float64
	// Limit is the absolute ceiling (e.g. 107 for cpu_temp); zero
	// disables limit and runaway detection.
	Limit float64
	// RunawayHorizon flags trends predicted to cross Limit within this
	// many seconds (default 300).
	RunawayHorizon float64
	// RunawayFloor suppresses runaway predictions while the value is
	// still far from the limit (warm-up transients on healthy nodes have
	// steep slopes too); default Limit - 20.
	RunawayFloor float64
}

func (d Detector) withDefaults() Detector {
	if d.Window == 0 {
		d.Window = 30
	}
	if d.ZThreshold == 0 {
		d.ZThreshold = 6
	}
	if d.RunawayHorizon == 0 {
		d.RunawayHorizon = 300
	}
	if d.RunawayFloor == 0 && d.Limit > 0 {
		d.RunawayFloor = d.Limit - 20
	}
	return d
}

// Scan inspects one series and returns findings in time order. Each kind
// fires at most once per series (the first triggering sample), matching
// how an alerting pipeline would page.
func (d Detector) Scan(s Series) ([]Anomaly, error) {
	return d.scanView(s.Tags, ViewOf(s.Points))
}

// scanView is the detector core, running directly over a storage view so
// ScanAll never copies series out of the engine.
func (d Detector) scanView(tags Tags, pts PointsView) ([]Anomaly, error) {
	d = d.withDefaults()
	if d.Window < 4 {
		return nil, fmt.Errorf("examon: detector window %d too small", d.Window)
	}
	if d.ZThreshold <= 0 || d.RunawayHorizon <= 0 {
		return nil, fmt.Errorf("examon: thresholds must be positive")
	}
	var out []Anomaly
	fired := make(map[AnomalyKind]bool, 3)
	report := func(kind AnomalyKind, p Point, score float64) {
		if fired[kind] {
			return
		}
		fired[kind] = true
		out = append(out, Anomaly{Tags: tags, Kind: kind, Time: p.T, Value: p.V, Score: score})
	}

	n := pts.Len()
	for i := 0; i < n; i++ {
		p := pts.At(i)
		// Absolute limit.
		if d.Limit > 0 && p.V >= d.Limit {
			report(AnomalyLimit, p, p.V-d.Limit)
		}
		// Rolling-baseline outlier.
		if i >= d.Window {
			mean, std := baseline(pts, i-d.Window, i)
			if std > 0 {
				if z := math.Abs(p.V-mean) / std; z >= d.ZThreshold {
					report(AnomalyOutlier, p, z)
				}
			}
		}
		// Runaway trend: fit a slope over the window and extrapolate,
		// but only once the value is close enough to the limit that a
		// warm-up transient cannot explain it.
		if d.Limit > 0 && i >= d.Window && p.V >= d.RunawayFloor {
			slope := fitSlope(pts, i-d.Window, i+1)
			if slope > 0 {
				remaining := (d.Limit - p.V) / slope
				if remaining >= 0 && remaining <= d.RunawayHorizon && p.V < d.Limit {
					report(AnomalyRunaway, p, remaining)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

// ScanAll runs the detector over every series matching the filter, reading
// the points in place through the storage engine's scan layer. A time-
// bounded filter restricts which samples the detector sees (windows are
// computed within the selected range, as before). On engines with
// lock-free snapshots (mem, sharded) the per-series detector runs fan out
// across cores; per-series findings are merged back in scan order before
// the final time sort, so the output is identical to the sequential walk.
func (d Detector) ScanAll(st Storage, f Filter) ([]Anomaly, error) {
	if st == nil {
		return nil, fmt.Errorf("examon: nil storage")
	}
	if u, ok := st.(storageUnwrapper); ok {
		st = u.Storage()
	}
	if sn, ok := st.(snapshotter); ok {
		if snaps, ok := sn.snapshotSeries(f, false); ok {
			return d.scanSnapshots(snaps, f)
		}
	}
	var (
		out     []Anomaly
		scanErr error
		scratch []Point // reused when a time range forces a filtered copy
	)
	st.Scan(f, func(tags Tags, pts PointsView) bool {
		var err error
		out, scratch, err = d.scanFiltered(out, scratch, tags, pts, f)
		if err != nil {
			scanErr = err
			return false
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

// scanFiltered runs the detector over one series view, applying the
// filter's time range through a reused scratch copy when needed.
func (d Detector) scanFiltered(out []Anomaly, scratch []Point, tags Tags, pts PointsView, f Filter) ([]Anomaly, []Point, error) {
	view := pts
	if f.From != 0 || f.To != 0 {
		// Append-grown on purpose: the scratch is reused across series,
		// so growth amortizes to the largest in-range count — sizing it
		// from the full series length would pin full-history capacity for
		// narrow windows.
		scratch = scratch[:0]
		cur := pts.Cursor(f.From, f.To)
		for p, ok := cur.Next(); ok; p, ok = cur.Next() {
			scratch = append(scratch, p)
		}
		view = ViewOf(scratch)
	}
	found, err := d.scanView(tags, view)
	if err != nil {
		return out, scratch, err
	}
	return append(out, found...), scratch, nil
}

// scanSnapshots is the concurrent ScanAll: each chunk of the snapshot
// runs the detector with its own scratch buffer, results land in
// per-series slots, and the slots are concatenated in scan order — the
// same sequence the sequential walk feeds the final sort.
func (d Detector) scanSnapshots(snaps []seriesSnap, f Filter) ([]Anomaly, error) {
	res := make([][]Anomaly, len(snaps))
	var (
		errMu    sync.Mutex
		firstErr error
	)
	parallelFor(len(snaps), func(start, end int) {
		var scratch []Point
		for i := start; i < end; i++ {
			var err error
			res[i], scratch, err = d.scanFiltered(nil, scratch, snaps[i].tags, snaps[i].pts, f)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	var out []Anomaly
	for _, r := range res {
		out = append(out, r...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

// baseline computes mean and population stddev over view indices [lo, hi).
func baseline(pts PointsView, lo, hi int) (mean, std float64) {
	n := float64(hi - lo)
	for i := lo; i < hi; i++ {
		mean += pts.At(i).V
	}
	mean /= n
	for i := lo; i < hi; i++ {
		d := pts.At(i).V - mean
		std += d * d
	}
	return mean, math.Sqrt(std / n)
}

// fitSlope returns the least-squares slope of value over time for view
// indices [lo, hi).
func fitSlope(pts PointsView, lo, hi int) float64 {
	n := float64(hi - lo)
	var st, sv, stt, stv float64
	for i := lo; i < hi; i++ {
		p := pts.At(i)
		st += p.T
		sv += p.V
		stt += p.T * p.T
		stv += p.T * p.V
	}
	den := n*stt - st*st
	if den == 0 {
		return 0
	}
	return (n*stv - st*sv) / den
}
