package examon

import (
	"fmt"
	"strconv"
	"strings"
)

// Topic and payload formats follow Table II of the paper:
//
//	pmu_pub:   org/<org>/cluster/<cluster>/node/<hostname>/plugin/pmu_pub/
//	           chnl/data/core/<id>/<metric_name>
//	stats_pub: org/<org>/cluster/<cluster>/node/<hostname>/plugin/dstat_pub/
//	           chnl/data/<metric_name>
//
// with payloads of the form "<value>;<timestamp>".

// Default identifiers for the Monte Cimone deployment.
const (
	DefaultOrg     = "unibo"
	DefaultCluster = "montecimone"
)

// PMUTopic builds a pmu_pub data topic for one core's metric.
func PMUTopic(org, cluster, hostname string, core int, metric string) string {
	return fmt.Sprintf("org/%s/cluster/%s/node/%s/plugin/pmu_pub/chnl/data/core/%d/%s",
		org, cluster, hostname, core, metric)
}

// StatsTopic builds a stats_pub (dstat_pub plugin name, per Table II) data
// topic for one node metric.
func StatsTopic(org, cluster, hostname, metric string) string {
	return fmt.Sprintf("org/%s/cluster/%s/node/%s/plugin/dstat_pub/chnl/data/%s",
		org, cluster, hostname, metric)
}

// FormatPayload renders the ExaMon "<value>;<timestamp>" payload.
func FormatPayload(value, timestamp float64) string {
	return strconv.FormatFloat(value, 'g', -1, 64) + ";" + strconv.FormatFloat(timestamp, 'g', -1, 64)
}

// ParsePayload parses an ExaMon payload into value and timestamp.
func ParsePayload(payload string) (value, timestamp float64, err error) {
	v, ts, ok := strings.Cut(payload, ";")
	if !ok {
		return 0, 0, fmt.Errorf("examon: payload %q missing ';'", payload)
	}
	value, err = strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("examon: payload value %q: %w", v, err)
	}
	timestamp, err = strconv.ParseFloat(ts, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("examon: payload timestamp %q: %w", ts, err)
	}
	return value, timestamp, nil
}

// Tags are the identifying dimensions parsed from a data topic.
type Tags struct {
	// Org and Cluster scope the deployment.
	Org     string
	Cluster string
	// Node is the hostname.
	Node string
	// Plugin is "pmu_pub" or "dstat_pub".
	Plugin string
	// Core is the hart id for pmu_pub metrics, -1 for node-level metrics.
	Core int
	// Metric is the metric name (may contain '/' if nested).
	Metric string
}

// ParseTopic parses a Table II data topic into tags.
func ParseTopic(topic string) (Tags, error) {
	parts := strings.Split(topic, "/")
	// org/X/cluster/Y/node/Z/plugin/P/chnl/data/...
	if len(parts) < 11 || parts[0] != "org" || parts[2] != "cluster" ||
		parts[4] != "node" || parts[6] != "plugin" || parts[8] != "chnl" || parts[9] != "data" {
		return Tags{}, fmt.Errorf("examon: topic %q does not follow the ExaMon data schema", topic)
	}
	tags := Tags{
		Org:     parts[1],
		Cluster: parts[3],
		Node:    parts[5],
		Plugin:  parts[7],
		Core:    -1,
	}
	rest := parts[10:]
	if len(rest) >= 3 && rest[0] == "core" {
		core, err := strconv.Atoi(rest[1])
		if err != nil {
			return Tags{}, fmt.Errorf("examon: topic %q core id: %w", topic, err)
		}
		tags.Core = core
		rest = rest[2:]
	}
	tags.Metric = strings.Join(rest, "/")
	if tags.Metric == "" {
		return Tags{}, fmt.Errorf("examon: topic %q missing metric", topic)
	}
	return tags, nil
}
