package examon

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"montecimone/internal/node"
	"montecimone/internal/power"
	"montecimone/internal/sim"
	"montecimone/internal/thermal"
)

func newPowerRig(t *testing.T) (*sim.Engine, *node.Node, *TSDB) {
	t.Helper()
	e := sim.NewEngine()
	nd, err := node.New(node.Config{ID: 1, Enclosure: thermal.DefaultEnclosure()})
	if err != nil {
		t.Fatal(err)
	}
	broker := NewBroker()
	db := NewTSDB()
	if _, err := db.Attach(broker); err != nil {
		t.Fatal(err)
	}
	pp, err := NewPowerPub(broker, nd, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := pp.Start(e); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pp.Stop)
	return e, nd, db
}

func TestPowerPubValidation(t *testing.T) {
	if _, err := NewPowerPub(nil, nil, "", ""); err == nil {
		t.Error("nil broker/node accepted")
	}
}

func TestPowerPubPublishesRailsAndTotal(t *testing.T) {
	e, nd, db := newPowerRig(t)
	if err := nd.PowerOn(0); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(node.R1Duration + node.R2Duration + 10); err != nil {
		t.Fatal(err)
	}
	// One series per rail plus the total.
	for _, rail := range power.Rails {
		series := db.Query(Filter{Node: "mc01", Plugin: "power_pub", Metric: "power." + string(rail)})
		if len(series) != 1 || len(series[0].Points) == 0 {
			t.Errorf("rail %s not published", rail)
		}
	}
	series := db.Query(Filter{Node: "mc01", Plugin: "power_pub", Metric: PowerTotalMetric})
	if len(series) != 1 {
		t.Fatalf("total series = %v", series)
	}
	pts := series[0].Points
	if len(pts) == 0 {
		t.Fatal("no total samples")
	}
	// Early boot samples sit at the R1 floor (1385 mW), settled OS idle at
	// 4810 mW — power_pub samples in every powered state, unlike the
	// OS-hosted plugins.
	if pts[0].V != 1385 {
		t.Errorf("first sample (R1) = %v mW, want 1385", pts[0].V)
	}
	if last := pts[len(pts)-1].V; last != 4810 {
		t.Errorf("settled sample = %v mW, want 4810 (idle)", last)
	}
}

func TestRESTPowerPlaneEndpoint(t *testing.T) {
	db := NewTSDB()
	srv, err := NewRESTServer(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AttachPowerPlane(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	type state struct {
		BudgetW float64 `json:"budget_w"`
		DrawW   float64 `json:"draw_w"`
	}
	if err := srv.AttachPowerPlane(func() any { return state{BudgetW: 43, DrawW: 39.5} }); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/api/v2/powerplane", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var got state
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.BudgetW != 43 || got.DrawW != 39.5 {
		t.Errorf("body = %+v", got)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/api/v2/powerplane", nil))
	if rec.Code != 405 {
		t.Errorf("POST status %d, want 405", rec.Code)
	}
}
