package examon

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestTagsTopicRoundTrip(t *testing.T) {
	for _, tags := range []Tags{
		{Org: "unibo", Cluster: "montecimone", Node: "mc03", Plugin: "pmu_pub", Core: 2, Metric: "instret"},
		{Org: "unibo", Cluster: "montecimone", Node: "mc03", Plugin: "pmu_pub", Core: 12, Metric: "cycle"},
		{Org: "o", Cluster: "c", Node: "n", Plugin: "dstat_pub", Core: -1, Metric: "load_avg.1m"},
		{Org: "o", Cluster: "c", Node: "n", Plugin: "dstat_pub", Core: -1, Metric: "nested/metric/name"},
	} {
		got, err := ParseTopic(tags.Topic())
		if err != nil {
			t.Errorf("ParseTopic(%q): %v", tags.Topic(), err)
			continue
		}
		if got != tags {
			t.Errorf("round trip = %+v, want %+v", got, tags)
		}
	}
	// Topic must agree with the Table II builders.
	tags := Tags{Org: "unibo", Cluster: "montecimone", Node: "mc03", Plugin: "pmu_pub", Core: 2, Metric: "instret"}
	if tags.Topic() != PMUTopic("unibo", "montecimone", "mc03", 2, "instret") {
		t.Errorf("Topic() = %q diverges from PMUTopic", tags.Topic())
	}
	stats := Tags{Org: "unibo", Cluster: "montecimone", Node: "mc03", Plugin: "dstat_pub", Core: -1, Metric: "load_avg.1m"}
	if stats.Topic() != StatsTopic("unibo", "montecimone", "mc03", "load_avg.1m") {
		t.Errorf("Topic() = %q diverges from StatsTopic", stats.Topic())
	}
}

// TestMatchTagLevelsAgainstRendered checks the allocation-free tag matcher
// against the reference string matcher over a grid of patterns and tags.
func TestMatchTagLevelsAgainstRendered(t *testing.T) {
	tagSets := []Tags{
		{Org: "unibo", Cluster: "mc", Node: "mc01", Plugin: "pmu_pub", Core: 0, Metric: "instret"},
		{Org: "unibo", Cluster: "mc", Node: "mc01", Plugin: "pmu_pub", Core: 13, Metric: "cycle"},
		{Org: "unibo", Cluster: "mc", Node: "mc02", Plugin: "dstat_pub", Core: -1, Metric: "load_avg.1m"},
		{Org: "unibo", Cluster: "mc", Node: "mc02", Plugin: "dstat_pub", Core: -1, Metric: "a/b/c"},
	}
	patterns := []string{
		"#", "org/#", "org/unibo/#", "org/other/#",
		"org/+/cluster/+/node/+/plugin/pmu_pub/#",
		"org/+/cluster/+/node/mc01/plugin/+/chnl/data/core/0/instret",
		"org/+/cluster/+/node/mc01/plugin/+/chnl/data/core/+/instret",
		"org/+/cluster/+/node/mc01/plugin/+/chnl/data/core/13/cycle",
		"org/+/cluster/+/node/mc01/plugin/+/chnl/data/core/1/instret",
		"org/unibo/cluster/mc/node/mc02/plugin/dstat_pub/chnl/data/load_avg.1m",
		"org/unibo/cluster/mc/node/mc02/plugin/dstat_pub/chnl/data/a/b/c",
		"org/unibo/cluster/mc/node/mc02/plugin/dstat_pub/chnl/data/a/b",
		"org/unibo/cluster/mc/node/mc02/plugin/dstat_pub/chnl/data/a/+/c",
		"org/unibo/cluster/mc/node/mc02/plugin/dstat_pub/chnl/data",
		"org/unibo/cluster/mc/node/mc02/plugin/dstat_pub/chnl/data/#",
		"org/unibo/cluster/mc/node/mc01/plugin/pmu_pub/chnl/data/core/#",
		"org/unibo/cluster/mc/node/mc01/plugin/pmu_pub/chnl/data/core/0",
		"+/+/+/+/+/+/+/+/+/+/+/+/+",
	}
	for _, tags := range tagSets {
		topic := tags.Topic()
		for _, pattern := range patterns {
			want, err := MatchTopic(pattern, topic)
			if err != nil {
				t.Fatalf("MatchTopic(%q, %q): %v", pattern, topic, err)
			}
			levels, err := validatePattern(pattern)
			if err != nil {
				t.Fatal(err)
			}
			if got := matchTagLevels(levels, tags); got != want {
				t.Errorf("matchTagLevels(%q, %+v) = %v, reference says %v", pattern, tags, got, want)
			}
		}
	}
}

func TestEqInt(t *testing.T) {
	for v := 0; v < 200; v++ {
		if !eqInt(fmt.Sprintf("%d", v), v) {
			t.Errorf("eqInt(%d) = false", v)
		}
	}
	for _, tc := range []struct {
		s string
		v int
	}{{"", 0}, {"1", 0}, {"0", 1}, {"01", 1}, {"10", 1}, {"1", 10}, {"9", 19}, {"x", 0}} {
		if eqInt(tc.s, tc.v) {
			t.Errorf("eqInt(%q, %d) = true", tc.s, tc.v)
		}
	}
}

func TestPublishSampleTypedAndStringSubscribers(t *testing.T) {
	b := NewBroker()
	var typed []Sample
	var raw []string
	if _, err := b.SubscribeSamples("org/unibo/#", func(s Sample) { typed = append(typed, s) }); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("org/unibo/#", func(topic, payload string) {
		raw = append(raw, topic+"="+payload)
	}); err != nil {
		t.Fatal(err)
	}
	s := Sample{Tags: Tags{Org: "unibo", Cluster: "mc", Node: "mc01", Plugin: "pmu_pub", Core: 1, Metric: "instret"}, T: 2.5, V: 1000}
	if err := b.PublishSample(s); err != nil {
		t.Fatal(err)
	}
	if len(typed) != 1 || typed[0] != s {
		t.Errorf("typed delivery = %+v", typed)
	}
	wantTopic := "org/unibo/cluster/mc/node/mc01/plugin/pmu_pub/chnl/data/core/1/instret"
	if len(raw) != 1 || raw[0] != wantTopic+"=1000;2.5" {
		t.Errorf("string delivery = %v", raw)
	}
	if b.Published() != 1 {
		t.Errorf("published = %d", b.Published())
	}
	// Non-matching typed subscriber stays quiet.
	other := Sample{Tags: Tags{Org: "acme", Cluster: "c", Node: "n", Plugin: "p", Core: -1, Metric: "m"}}
	if err := b.PublishSample(other); err != nil {
		t.Fatal(err)
	}
	if len(typed) != 1 {
		t.Errorf("typed subscriber got non-matching sample")
	}
}

func TestPublishBatch(t *testing.T) {
	b := NewBroker()
	db := NewTSDB()
	if _, err := db.Attach(b); err != nil {
		t.Fatal(err)
	}
	batch := make([]Sample, 0, 8)
	for core := 0; core < 4; core++ {
		batch = append(batch, Sample{
			Tags: Tags{Node: "mc01", Plugin: "pmu_pub", Core: core, Metric: "instret"},
			T:    1, V: float64(core),
		})
	}
	if err := b.PublishBatch(batch); err != nil {
		t.Fatal(err)
	}
	if b.Published() != 4 {
		t.Errorf("published = %d, want 4", b.Published())
	}
	if db.SeriesCount() != 4 {
		t.Errorf("series = %d, want 4", db.SeriesCount())
	}
	// Org/Cluster defaulted during validation.
	got := db.Query(Filter{Core: intPtr(2)})
	if len(got) != 1 || got[0].Tags.Org != DefaultOrg || got[0].Tags.Cluster != DefaultCluster {
		t.Errorf("defaulted tags = %+v", got)
	}
	// Empty batch is a no-op.
	if err := b.PublishBatch(nil); err != nil {
		t.Fatal(err)
	}
	if b.Published() != 4 {
		t.Errorf("empty batch counted")
	}
}

func TestPublishSampleValidation(t *testing.T) {
	b := NewBroker()
	for _, s := range []Sample{
		{Tags: Tags{Plugin: "p", Metric: "m"}},                            // no node
		{Tags: Tags{Node: "n", Metric: "m"}},                              // no plugin
		{Tags: Tags{Node: "n", Plugin: "p"}},                              // no metric
		{Tags: Tags{Node: "n", Plugin: "p", Metric: "m+x"}},               // wildcard
		{Tags: Tags{Node: "n#", Plugin: "p", Metric: "m"}},                // wildcard
		{Tags: Tags{Org: "o+", Node: "n", Plugin: "p", Metric: "m"}},      // wildcard
		{Tags: Tags{Cluster: "c#c", Node: "n", Plugin: "p", Metric: "m"}}, // wildcard
		{Tags: Tags{Node: "n", Plugin: "pub/sub", Metric: "m"}},           // slash outside metric
	} {
		if err := b.PublishSample(s); err == nil {
			t.Errorf("sample %+v accepted", s)
		}
	}
	// Nested metrics keep their slashes.
	if err := b.PublishSample(Sample{Tags: Tags{Node: "n", Plugin: "p", Metric: "a/b"}}); err != nil {
		t.Errorf("nested metric rejected: %v", err)
	}
	// A bad sample anywhere in a batch rejects the batch before any
	// dispatch.
	db := NewTSDB()
	if _, err := db.Attach(b); err != nil {
		t.Fatal(err)
	}
	batch := []Sample{
		{Tags: Tags{Node: "n", Plugin: "p", Metric: "m"}, T: 1, V: 1},
		{Tags: Tags{Node: "n", Plugin: "p"}},
	}
	if err := b.PublishBatch(batch); err == nil {
		t.Error("bad batch accepted")
	}
	if db.SeriesCount() != 0 {
		t.Error("bad batch partially dispatched")
	}
}

// TestStringPublishShimFeedsTypedSubscribers pins the compat path: a
// legacy string publish of a data topic is lifted into a Sample for typed
// subscribers, and non-data topics stay invisible to them.
func TestStringPublishShimFeedsTypedSubscribers(t *testing.T) {
	b := NewBroker()
	var typed []Sample
	var raw int
	if _, err := b.SubscribeSamples("#", func(s Sample) { typed = append(typed, s) }); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("#", func(string, string) { raw++ }); err != nil {
		t.Fatal(err)
	}
	topic := PMUTopic("unibo", "mc", "mc01", 0, "cycle")
	if err := b.Publish(topic, FormatPayload(123, 4.5)); err != nil {
		t.Fatal(err)
	}
	want := Sample{Tags: Tags{Org: "unibo", Cluster: "mc", Node: "mc01", Plugin: "pmu_pub", Core: 0, Metric: "cycle"}, T: 4.5, V: 123}
	if len(typed) != 1 || typed[0] != want {
		t.Errorf("shimmed sample = %+v, want %+v", typed, want)
	}
	// Non-data topics and unparsable payloads reach only string subs.
	if err := b.Publish("control/reboot", "now"); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(topic, "not-a-payload"); err != nil {
		t.Fatal(err)
	}
	if len(typed) != 1 {
		t.Errorf("typed subscriber saw non-data traffic: %+v", typed)
	}
	if raw != 3 {
		t.Errorf("string subscriber saw %d messages, want 3", raw)
	}
}

// TestBrokerPublishUnsubscribeRace is the regression test for the
// sub.active data race: dispatch reads the flag lock-free while another
// goroutine unsubscribes. Run with -race.
func TestBrokerPublishUnsubscribeRace(t *testing.T) {
	b := NewBroker()
	var mu sync.Mutex
	seen := 0
	subs := make([]*Subscription, 64)
	for i := range subs {
		var err error
		subs[i], err = b.Subscribe("org/#", func(string, string) {
			mu.Lock()
			seen++
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			_ = b.Publish("org/unibo/x", "1;2")
			_ = b.PublishSample(Sample{Tags: Tags{Node: "n", Plugin: "p", Metric: "m"}, T: float64(i)})
		}
	}()
	go func() {
		defer wg.Done()
		for _, sub := range subs {
			b.Unsubscribe(sub)
		}
	}()
	wg.Wait()
	// After all unsubscribes nothing is delivered.
	mu.Lock()
	final := seen
	mu.Unlock()
	_ = b.Publish("org/unibo/x", "1;2")
	mu.Lock()
	defer mu.Unlock()
	if seen != final {
		t.Error("unsubscribed callback fired")
	}
}

func TestConcurrentSubscribePublish(t *testing.T) {
	b := NewBroker()
	db, err := NewTSDBOn(NewShardedStore(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Attach(b); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := fmt.Sprintf("mc%02d", w)
			for i := 0; i < 100; i++ {
				batch := []Sample{
					{Tags: Tags{Node: node, Plugin: "pmu_pub", Core: 0, Metric: "instret"}, T: float64(i), V: float64(i)},
					{Tags: Tags{Node: node, Plugin: "pmu_pub", Core: 1, Metric: "instret"}, T: float64(i), V: float64(i)},
				}
				if err := b.PublishBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Churning subscriptions while batches flow.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			sub, err := b.SubscribeSamples("org/#", func(Sample) {})
			if err != nil {
				t.Error(err)
				return
			}
			b.Unsubscribe(sub)
		}
	}()
	wg.Wait()
	if db.SeriesCount() != 8 {
		t.Errorf("series = %d, want 8", db.SeriesCount())
	}
	if got := b.Published(); got != 800 {
		t.Errorf("published = %d, want 800", got)
	}
}

func TestSubscribeSamplesValidation(t *testing.T) {
	b := NewBroker()
	if _, err := b.SubscribeSamples("", func(Sample) {}); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := b.SubscribeSamples("a/#/b", func(Sample) {}); err == nil {
		t.Error("non-final # accepted")
	}
	if _, err := b.SubscribeSamples("org/#", nil); err == nil {
		t.Error("nil callback accepted")
	}
}

// Property: matchTagLevels agrees with the string matcher for random
// metric shapes and cores.
func TestMatchTagLevelsQuickProperty(t *testing.T) {
	prop := func(core uint8, metricParts []uint8, hashAt uint8) bool {
		tags := Tags{Org: "o", Cluster: "c", Node: "n", Plugin: "p", Core: int(core%16) - 1, Metric: "m"}
		if len(metricParts) > 0 {
			parts := make([]string, 0, len(metricParts)%4+1)
			for i := 0; i < len(metricParts)%4+1 && i < len(metricParts); i++ {
				parts = append(parts, string(rune('a'+metricParts[i]%3)))
			}
			if len(parts) > 0 {
				tags.Metric = strings.Join(parts, "/")
			}
		}
		topic := tags.Topic()
		levels := strings.Split(topic, "/")
		// Build a pattern from the topic: replace some levels with '+',
		// optionally truncate with '#'.
		pat := make([]string, len(levels))
		copy(pat, levels)
		for i := range pat {
			if (int(hashAt)+i)%3 == 0 {
				pat[i] = "+"
			}
		}
		if n := int(hashAt) % (len(pat) + 1); n < len(pat) {
			pat = append(pat[:n:n], "#")
		}
		pattern := strings.Join(pat, "/")
		want, err := MatchTopic(pattern, topic)
		if err != nil {
			return false
		}
		pl, err := validatePattern(pattern)
		if err != nil {
			return false
		}
		return matchTagLevels(pl, tags) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
