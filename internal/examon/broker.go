// Package examon reimplements the ExaMon operational-data-analytics stack
// (Bartolini et al.) that the paper ports to Monte Cimone: an MQTT-style
// broker for the transport layer, the pmu_pub and stats_pub sampling
// plugins installed on the compute nodes, a time-series storage backend on
// the master node, a RESTful query API over HTTP, and the dashboard
// aggregations behind the paper's Fig. 5 heatmaps and Fig. 6 thermal view.
package examon

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Broker is an MQTT-flavoured topic-based publish/subscribe hub.
// Dispatch is synchronous and deterministic: Publish and PublishSample
// deliver in subscription order, while PublishBatch services typed
// (sample/batch) subscribers in subscription order first and then string
// subscribers in subscription order, so each sample's Table II string
// rendering happens once regardless of how many string subscribers are
// attached. Safe for concurrent use.
//
// The broker has two publication paths. The typed path — PublishSample and
// PublishBatch — carries Sample values end to end and is the fast path the
// sampling plugins use (one batch per node per tick). The string Publish is
// a thin compatibility shim: data-schema topics are lifted into a Sample so
// typed subscribers see them too, while string subscribers always receive
// the raw topic/payload pair.
type Broker struct {
	mu        sync.Mutex
	subs      []*Subscription // copy-on-write: never mutated in place
	published atomic.Uint64
}

// Subscription is a registered topic-pattern callback. Exactly one of the
// string, sample or batch callbacks is set, depending on which Subscribe
// variant created it.
type Subscription struct {
	pattern []string
	fn      func(topic, payload string)
	sfn     func(Sample)
	bfn     func([]Sample)
	// active is read during lock-free dispatch and written by
	// Unsubscribe, so it must be atomic (a plain bool here is a data
	// race between Publish and Unsubscribe).
	active atomic.Bool
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{}
}

// Subscribe registers a string callback for an MQTT-style pattern ('+'
// matches one level, '#' matches any suffix and must be last). String
// subscribers receive every published message, typed or not; samples
// published through the typed path are rendered to the Table II encoding
// on demand for them.
func (b *Broker) Subscribe(pattern string, fn func(topic, payload string)) (*Subscription, error) {
	if fn == nil {
		return nil, fmt.Errorf("examon: nil subscription callback")
	}
	return b.subscribe(pattern, fn, nil, nil)
}

// SubscribeSamples registers a typed callback. Typed subscribers receive
// every Sample published through PublishSample/PublishBatch plus any string
// publish whose topic parses as a Table II data topic; non-data string
// traffic is invisible to them.
func (b *Broker) SubscribeSamples(pattern string, fn func(Sample)) (*Subscription, error) {
	if fn == nil {
		return nil, fmt.Errorf("examon: nil subscription callback")
	}
	return b.subscribe(pattern, nil, fn, nil)
}

// SubscribeSampleBatches registers a typed batch callback: a PublishBatch
// whose samples all match the pattern is delivered as one slice (storage
// backends turn this into a single batched insert), a partially-matching
// batch is delivered as the filtered sub-batch, and single samples arrive
// as length-1 batches. The callback must not retain the slice.
func (b *Broker) SubscribeSampleBatches(pattern string, fn func([]Sample)) (*Subscription, error) {
	if fn == nil {
		return nil, fmt.Errorf("examon: nil subscription callback")
	}
	return b.subscribe(pattern, nil, nil, fn)
}

func (b *Broker) subscribe(pattern string, fn func(topic, payload string), sfn func(Sample), bfn func([]Sample)) (*Subscription, error) {
	levels, err := validatePattern(pattern)
	if err != nil {
		return nil, err
	}
	sub := &Subscription{pattern: levels, fn: fn, sfn: sfn, bfn: bfn}
	sub.active.Store(true)
	b.mu.Lock()
	// Full slice expression forces append to copy, so concurrent readers
	// of the old slice never observe the mutation.
	b.subs = append(b.subs[:len(b.subs):len(b.subs)], sub)
	b.mu.Unlock()
	return sub, nil
}

// Unsubscribe deactivates a subscription.
func (b *Broker) Unsubscribe(sub *Subscription) {
	if sub == nil {
		return
	}
	sub.active.Store(false)
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, s := range b.subs {
		if s == sub {
			next := make([]*Subscription, 0, len(b.subs)-1)
			next = append(next, b.subs[:i]...)
			b.subs = append(next, b.subs[i+1:]...)
			break
		}
	}
}

// snapshot returns the current subscription list; the slice is immutable.
func (b *Broker) snapshot() []*Subscription {
	b.mu.Lock()
	subs := b.subs
	b.mu.Unlock()
	return subs
}

// Publish delivers a payload to every matching subscription. It is the
// compatibility shim over the typed path: when topic/payload parse as a
// Table II data message the broker lifts them into a Sample for typed
// subscribers, so legacy publishers interoperate with the v2 stack.
func (b *Broker) Publish(topic, payload string) error {
	if err := validateTopic(topic); err != nil {
		return err
	}
	b.published.Add(1)
	levels := strings.Split(topic, "/")
	var (
		sample Sample
		parsed bool
		failed bool
	)
	for _, sub := range b.snapshot() {
		if !sub.active.Load() || !matchLevels(sub.pattern, levels) {
			continue
		}
		if sub.fn != nil {
			sub.fn(topic, payload)
			continue
		}
		if !parsed && !failed {
			tags, err := ParseTopic(topic)
			if err == nil {
				var v, ts float64
				if v, ts, err = ParsePayload(payload); err == nil {
					sample = Sample{Tags: tags, T: ts, V: v}
					parsed = true
				}
			}
			failed = err != nil
		}
		if !parsed {
			continue
		}
		if sub.sfn != nil {
			sub.sfn(sample)
		} else {
			one := [1]Sample{sample}
			sub.bfn(one[:])
		}
	}
	return nil
}

// PublishSample delivers one typed sample. Typed subscribers receive it
// without any string rendering; string subscribers get the Table II
// topic/payload encoding, rendered at most once.
func (b *Broker) PublishSample(s Sample) error {
	if err := validateSampleTags(&s.Tags); err != nil {
		return err
	}
	b.published.Add(1)
	b.dispatchSample(s, b.snapshot())
	return nil
}

// PublishBatch delivers a batch of typed samples with a single
// subscription snapshot — the per-tick fast path for the sampling plugins,
// which emit one batch per node instead of one string publish per counter
// per core. A batch subscriber matching the whole batch receives the slice
// itself (no copies, no per-sample locking downstream). Empty Org/Cluster
// tags are normalized to the deployment defaults in place; an invalid
// sample anywhere rejects the whole batch before any normalization or
// dispatch. The batch slice may be reused by the caller after return.
func (b *Broker) PublishBatch(batch []Sample) error {
	// Validate without mutating first, so a rejected batch hands the
	// caller's slice back untouched.
	for i := range batch {
		if err := checkSampleTags(&batch[i].Tags); err != nil {
			return err
		}
	}
	for i := range batch {
		defaultSampleTags(&batch[i].Tags)
	}
	if len(batch) == 0 {
		return nil
	}
	b.published.Add(uint64(len(batch)))
	subs := b.snapshot()
	haveString := false
	for _, sub := range subs {
		if !sub.active.Load() {
			continue
		}
		switch {
		case sub.fn != nil:
			haveString = true // handled below, once per sample
		case sub.bfn != nil:
			matches := 0
			for i := range batch {
				if matchTagLevels(sub.pattern, batch[i].Tags) {
					matches++
				}
			}
			switch {
			case matches == len(batch):
				sub.bfn(batch)
			case matches > 0:
				filtered := make([]Sample, 0, matches)
				for i := range batch {
					if matchTagLevels(sub.pattern, batch[i].Tags) {
						filtered = append(filtered, batch[i])
					}
				}
				sub.bfn(filtered)
			}
		default:
			for i := range batch {
				if matchTagLevels(sub.pattern, batch[i].Tags) {
					sub.sfn(batch[i])
				}
			}
		}
	}
	if haveString {
		// Legacy string subscribers: render each sample's Table II
		// encoding once and fan it out, so the per-sample rendering cost
		// does not grow with the subscriber count.
		for i := range batch {
			s := batch[i]
			topic := s.Tags.Topic()
			levels := strings.Split(topic, "/")
			payload := FormatPayload(s.V, s.T)
			for _, sub := range subs {
				if sub.fn != nil && sub.active.Load() && matchLevels(sub.pattern, levels) {
					sub.fn(topic, payload)
				}
			}
		}
	}
	return nil
}

func (b *Broker) dispatchSample(s Sample, subs []*Subscription) {
	var (
		topic   string
		levels  []string
		payload string
	)
	for _, sub := range subs {
		if !sub.active.Load() {
			continue
		}
		if sub.sfn != nil || sub.bfn != nil {
			if matchTagLevels(sub.pattern, s.Tags) {
				if sub.sfn != nil {
					sub.sfn(s)
				} else {
					one := [1]Sample{s}
					sub.bfn(one[:])
				}
			}
			continue
		}
		// Legacy string subscriber: render the Table II encoding once.
		if topic == "" {
			topic = s.Tags.Topic()
			levels = strings.Split(topic, "/")
			payload = FormatPayload(s.V, s.T)
		}
		if matchLevels(sub.pattern, levels) {
			sub.fn(topic, payload)
		}
	}
}

// Published returns the number of messages accepted so far (each sample of
// a batch counts as one message).
func (b *Broker) Published() uint64 {
	return b.published.Load()
}

func validateSampleTags(t *Tags) error {
	if err := checkSampleTags(t); err != nil {
		return err
	}
	defaultSampleTags(t)
	return nil
}

// defaultSampleTags fills empty Org/Cluster with the deployment defaults.
func defaultSampleTags(t *Tags) {
	if t.Org == "" {
		t.Org = DefaultOrg
	}
	if t.Cluster == "" {
		t.Cluster = DefaultCluster
	}
}

// checkSampleTags validates without mutating.
func checkSampleTags(t *Tags) error {
	if t.Node == "" || t.Plugin == "" || t.Metric == "" {
		return fmt.Errorf("examon: sample tags need node, plugin and metric, got %+v", *t)
	}
	// Each non-metric tag is exactly one topic level; the metric may span
	// several (nested names contain '/').
	if hasReserved(t.Org, true) || hasReserved(t.Cluster, true) ||
		hasReserved(t.Node, true) || hasReserved(t.Plugin, true) {
		return fmt.Errorf("examon: sample tags contain reserved characters: %+v", *t)
	}
	if hasReserved(t.Metric, false) {
		return fmt.Errorf("examon: sample metric %q contains wildcard characters", t.Metric)
	}
	return nil
}

// hasReserved reports whether s contains topic-reserved characters: the
// wildcards always, '/' only when noSlash is set. A manual byte scan — this
// runs per tag per published sample, where strings.ContainsAny is
// measurably slower.
func hasReserved(s string, noSlash bool) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '+', '#':
			return true
		case '/':
			if noSlash {
				return true
			}
		}
	}
	return false
}

func validateTopic(topic string) error {
	if topic == "" {
		return fmt.Errorf("examon: empty topic")
	}
	if strings.ContainsAny(topic, "+#") {
		return fmt.Errorf("examon: topic %q contains wildcard characters", topic)
	}
	return nil
}

func validatePattern(pattern string) ([]string, error) {
	if pattern == "" {
		return nil, fmt.Errorf("examon: empty pattern")
	}
	levels := strings.Split(pattern, "/")
	for i, l := range levels {
		switch l {
		case "#":
			if i != len(levels)-1 {
				return nil, fmt.Errorf("examon: pattern %q: '#' must be the final level", pattern)
			}
		case "+":
			// single-level wildcard: fine anywhere
		default:
			if strings.ContainsAny(l, "+#") {
				return nil, fmt.Errorf("examon: pattern %q: wildcard inside level %q", pattern, l)
			}
		}
	}
	return levels, nil
}

// MatchTopic reports whether an MQTT-style pattern matches a topic.
func MatchTopic(pattern, topic string) (bool, error) {
	levels, err := validatePattern(pattern)
	if err != nil {
		return false, err
	}
	if err := validateTopic(topic); err != nil {
		return false, err
	}
	return matchLevels(levels, strings.Split(topic, "/")), nil
}

func matchLevels(pattern, topic []string) bool {
	for i, p := range pattern {
		if p == "#" {
			return true
		}
		if i >= len(topic) {
			return false
		}
		if p != "+" && p != topic[i] {
			return false
		}
	}
	return len(pattern) == len(topic)
}

// matchTagLevels matches a pattern against the conceptual topic levels of a
// tag set without rendering the topic string — the broker's typed dispatch
// stays allocation-free this way. It is equivalent to
// matchLevels(pattern, strings.Split(tags.Topic(), "/")).
func matchTagLevels(pattern []string, t Tags) bool {
	pi := 0
	hash := false
	accept := func(level string) bool {
		if hash {
			return true
		}
		if pi >= len(pattern) {
			return false
		}
		p := pattern[pi]
		if p == "#" {
			hash = true
			return true
		}
		pi++
		return p == "+" || p == level
	}
	if !accept("org") || !accept(t.Org) || !accept("cluster") || !accept(t.Cluster) ||
		!accept("node") || !accept(t.Node) || !accept("plugin") || !accept(t.Plugin) ||
		!accept("chnl") || !accept("data") {
		return false
	}
	if t.Core >= 0 {
		if !accept("core") {
			return false
		}
		if !hash {
			if pi >= len(pattern) {
				return false
			}
			p := pattern[pi]
			if p == "#" {
				return true
			}
			pi++
			if p != "+" && !eqInt(p, t.Core) {
				return false
			}
		}
	}
	rest := t.Metric
	for rest != "" {
		level, tail, found := strings.Cut(rest, "/")
		if !accept(level) {
			return false
		}
		if !found {
			break
		}
		rest = tail
	}
	return hash || pi == len(pattern) ||
		(pi == len(pattern)-1 && pattern[pi] == "#")
}

// eqInt reports whether s is the decimal rendering of the non-negative v,
// without allocating.
func eqInt(s string, v int) bool {
	if s == "" {
		return false
	}
	for i := len(s) - 1; i >= 0; i-- {
		if byte('0'+v%10) != s[i] {
			return false
		}
		v /= 10
		if v == 0 {
			return i == 0 && (len(s) == 1 || s[0] != '0')
		}
	}
	return false
}
