// Package examon reimplements the ExaMon operational-data-analytics stack
// (Bartolini et al.) that the paper ports to Monte Cimone: an MQTT-style
// broker for the transport layer, the pmu_pub and stats_pub sampling
// plugins installed on the compute nodes, a time-series storage backend on
// the master node, a RESTful query API over HTTP, and the dashboard
// aggregations behind the paper's Fig. 5 heatmaps and Fig. 6 thermal view.
package examon

import (
	"fmt"
	"strings"
	"sync"
)

// Broker is an MQTT-flavoured topic-based publish/subscribe hub.
// Dispatch is synchronous and in subscription order, which keeps the
// simulation deterministic. Safe for concurrent use.
type Broker struct {
	mu        sync.Mutex
	subs      []*Subscription
	published uint64
}

// Subscription is a registered topic-pattern callback.
type Subscription struct {
	pattern []string
	fn      func(topic, payload string)
	active  bool
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{}
}

// Subscribe registers a callback for an MQTT-style pattern ('+' matches one
// level, '#' matches any suffix and must be last).
func (b *Broker) Subscribe(pattern string, fn func(topic, payload string)) (*Subscription, error) {
	levels, err := validatePattern(pattern)
	if err != nil {
		return nil, err
	}
	if fn == nil {
		return nil, fmt.Errorf("examon: nil subscription callback")
	}
	sub := &Subscription{pattern: levels, fn: fn, active: true}
	b.mu.Lock()
	b.subs = append(b.subs, sub)
	b.mu.Unlock()
	return sub, nil
}

// Unsubscribe deactivates a subscription.
func (b *Broker) Unsubscribe(sub *Subscription) {
	if sub == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	sub.active = false
	for i, s := range b.subs {
		if s == sub {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
}

// Publish delivers a payload to every matching subscription.
func (b *Broker) Publish(topic, payload string) error {
	if err := validateTopic(topic); err != nil {
		return err
	}
	levels := strings.Split(topic, "/")
	b.mu.Lock()
	b.published++
	subs := make([]*Subscription, len(b.subs))
	copy(subs, b.subs)
	b.mu.Unlock()
	for _, sub := range subs {
		if sub.active && matchLevels(sub.pattern, levels) {
			sub.fn(topic, payload)
		}
	}
	return nil
}

// Published returns the number of messages accepted so far.
func (b *Broker) Published() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published
}

func validateTopic(topic string) error {
	if topic == "" {
		return fmt.Errorf("examon: empty topic")
	}
	if strings.ContainsAny(topic, "+#") {
		return fmt.Errorf("examon: topic %q contains wildcard characters", topic)
	}
	return nil
}

func validatePattern(pattern string) ([]string, error) {
	if pattern == "" {
		return nil, fmt.Errorf("examon: empty pattern")
	}
	levels := strings.Split(pattern, "/")
	for i, l := range levels {
		switch l {
		case "#":
			if i != len(levels)-1 {
				return nil, fmt.Errorf("examon: pattern %q: '#' must be the final level", pattern)
			}
		case "+":
			// single-level wildcard: fine anywhere
		default:
			if strings.ContainsAny(l, "+#") {
				return nil, fmt.Errorf("examon: pattern %q: wildcard inside level %q", pattern, l)
			}
		}
	}
	return levels, nil
}

// MatchTopic reports whether an MQTT-style pattern matches a topic.
func MatchTopic(pattern, topic string) (bool, error) {
	levels, err := validatePattern(pattern)
	if err != nil {
		return false, err
	}
	if err := validateTopic(topic); err != nil {
		return false, err
	}
	return matchLevels(levels, strings.Split(topic, "/")), nil
}

func matchLevels(pattern, topic []string) bool {
	for i, p := range pattern {
		if p == "#" {
			return true
		}
		if i >= len(topic) {
			return false
		}
		if p != "+" && p != topic[i] {
			return false
		}
	}
	return len(pattern) == len(topic)
}
