package examon

import (
	"math"
	"reflect"
	"testing"
)

func aggStore(t *testing.T) Storage {
	t.Helper()
	st := NewMemStore()
	// A cumulative counter growing 10/s, sampled at 1 Hz for 10 s.
	counter := confTags(1, 0, "instret")
	for i := 0; i <= 10; i++ {
		st.Insert(counter, float64(i), float64(i*10))
	}
	// A gauge with a spike.
	gauge := confTags(1, -1, "temperature.cpu_temp")
	for i := 0; i <= 10; i++ {
		v := 40.0
		if i == 7 {
			v = 90
		}
		st.Insert(gauge, float64(i), v)
	}
	return st
}

func TestQueryAggOps(t *testing.T) {
	st := aggStore(t)
	gauge := Filter{Metric: "temperature.cpu_temp"}

	for _, tc := range []struct {
		op   AggOp
		want float64
		n    int
	}{
		{AggMin, 40, 11},
		{AggMax, 90, 11},
		{AggSum, 10*40 + 90, 11},
		{AggAvg, (10*40 + 90) / 11.0, 11},
	} {
		agg, err := QueryAgg(st, gauge, AggOptions{Op: tc.op})
		if err != nil {
			t.Fatalf("%s: %v", tc.op, err)
		}
		if len(agg) != 1 || len(agg[0].Points) != 1 {
			t.Fatalf("%s: agg = %+v", tc.op, agg)
		}
		p := agg[0].Points[0]
		if math.Abs(p.V-tc.want) > 1e-12 || p.N != tc.n || p.T != 0 {
			t.Errorf("%s = %+v, want V=%v N=%d", tc.op, p, tc.want, tc.n)
		}
	}
}

func TestQueryAggStepDownsampling(t *testing.T) {
	st := aggStore(t)
	agg, err := QueryAgg(st, Filter{Metric: "temperature.cpu_temp", From: 0, To: 10},
		AggOptions{Op: AggMax, Step: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	// Buckets [0,2.5) [2.5,5) [5,7.5) [7.5,10): the spike at t=7 lands in
	// the third bucket.
	want := []AggPoint{
		{T: 0, V: 40, N: 3}, {T: 2.5, V: 40, N: 2},
		{T: 5, V: 90, N: 3}, {T: 7.5, V: 40, N: 2},
	}
	if len(agg) != 1 || !reflect.DeepEqual(agg[0].Points, want) {
		t.Errorf("downsampled = %+v, want %+v", agg, want)
	}
}

func TestQueryAggRate(t *testing.T) {
	st := aggStore(t)
	agg, err := QueryAgg(st, Filter{Metric: "instret", From: 5, To: 10},
		AggOptions{Op: AggRate, Step: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	// The counter grows exactly 10/s; the rate point at t=5 needs the
	// out-of-range predecessor at t=4, which the scan layer must provide.
	want := []AggPoint{{T: 5, V: 10, N: 3}, {T: 7.5, V: 10, N: 2}}
	if len(agg) != 1 || !reflect.DeepEqual(agg[0].Points, want) {
		t.Errorf("rate agg = %+v, want %+v", agg, want)
	}
	// Whole-range rate.
	agg, err = QueryAgg(st, Filter{Metric: "instret"}, AggOptions{Op: AggRate})
	if err != nil {
		t.Fatal(err)
	}
	if p := agg[0].Points[0]; p.V != 10 || p.N != 10 {
		t.Errorf("whole-range rate = %+v", p)
	}
}

func TestQueryAggEmptyAndSilentSeries(t *testing.T) {
	st := aggStore(t)
	// No matching series: empty result, not nil semantics trouble.
	agg, err := QueryAgg(st, Filter{Node: "mc99"}, AggOptions{Op: AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	if agg == nil || len(agg) != 0 {
		t.Errorf("no-match agg = %#v, want empty non-nil", agg)
	}
	// Matching series with no in-range samples: returned with no points.
	agg, err = QueryAgg(st, Filter{Metric: "instret", From: 100}, AggOptions{Op: AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != 1 || len(agg[0].Points) != 0 {
		t.Errorf("silent series agg = %+v", agg)
	}
	// A single-point series has no rate (documented Rate boundary).
	single := NewMemStore()
	single.Insert(confTags(1, -1, "m"), 1, 100)
	agg, err = QueryAgg(single, Filter{}, AggOptions{Op: AggRate})
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != 1 || len(agg[0].Points) != 0 {
		t.Errorf("single-point rate agg = %+v, want one empty series", agg)
	}
}

func TestQueryAggValidation(t *testing.T) {
	st := NewMemStore()
	if _, err := QueryAgg(nil, Filter{}, AggOptions{Op: AggAvg}); err == nil {
		t.Error("nil storage accepted")
	}
	if _, err := QueryAgg(st, Filter{}, AggOptions{}); err == nil {
		t.Error("missing operator accepted")
	}
	if _, err := QueryAgg(st, Filter{}, AggOptions{Op: "median"}); err == nil {
		t.Error("unknown operator accepted")
	}
	if _, err := QueryAgg(st, Filter{}, AggOptions{Op: AggAvg, Step: -1}); err == nil {
		t.Error("negative step accepted")
	}
	if _, err := QueryAgg(st, Filter{}, AggOptions{Op: AggAvg, Step: math.NaN()}); err == nil {
		t.Error("NaN step accepted")
	}
}

// TestRateBoundaries pins the documented Rate edge cases: fewer than two
// points yield an empty series (no error), and zero-dt pairs are skipped.
func TestRateBoundaries(t *testing.T) {
	if got := Rate(Series{}); len(got.Points) != 0 {
		t.Errorf("empty series rate = %+v", got)
	}
	if got := Rate(Series{Points: []Point{{T: 5, V: 100}}}); len(got.Points) != 0 {
		t.Errorf("single-point rate = %+v, want empty (documented boundary)", got)
	}
	// Two points, zero dt: still empty.
	if got := Rate(Series{Points: []Point{{T: 5, V: 100}, {T: 5, V: 200}}}); len(got.Points) != 0 {
		t.Errorf("zero-dt rate = %+v", got)
	}
}

// TestFilterToZeroBoundary pins the documented Filter.To semantics: To == 0
// means unbounded, so "everything up to and including t=0" is inexpressible
// with To alone — the closest expressible query uses the smallest positive
// float as the exclusive bound.
func TestFilterToZeroBoundary(t *testing.T) {
	st := NewMemStore()
	tags := confTags(1, -1, "m")
	st.Insert(tags, 0, 1)
	st.Insert(tags, 1, 2)
	// To=0 returns everything, including t >= 1.
	if got := st.Query(Filter{To: 0}); len(got[0].Points) != 2 {
		t.Errorf("To=0 = %d points, want 2 (unbounded)", len(got[0].Points))
	}
	// The t=0 sample alone needs an explicit positive exclusive bound.
	got := st.Query(Filter{To: math.SmallestNonzeroFloat64})
	if len(got[0].Points) != 1 || got[0].Points[0].T != 0 {
		t.Errorf("tiny-To query = %+v, want just the t=0 sample", got[0].Points)
	}
}

func TestPointsViewAndCursor(t *testing.T) {
	pts := []Point{{T: 0, V: 0}, {T: 1, V: 10}, {T: 2, V: 20}, {T: 3, V: 30}}
	// A wrapped two-segment view behaves like the contiguous slice.
	views := map[string]PointsView{
		"contiguous": ViewOf(pts),
		"wrapped":    {a: pts[:2], b: pts[2:]},
	}
	for name, v := range views {
		if v.Len() != 4 {
			t.Errorf("%s: len = %d", name, v.Len())
		}
		for i := range pts {
			if v.At(i) != pts[i] {
				t.Errorf("%s: At(%d) = %+v", name, i, v.At(i))
			}
		}
		if got := v.Append(nil); !reflect.DeepEqual(got, pts) {
			t.Errorf("%s: append = %+v", name, got)
		}
		cur := v.Cursor(1, 3)
		var got []Point
		for p, ok := cur.Next(); ok; p, ok = cur.Next() {
			got = append(got, p)
		}
		if !reflect.DeepEqual(got, pts[1:3]) {
			t.Errorf("%s: cursor = %+v, want %+v", name, got, pts[1:3])
		}
	}
	// Exhausted cursor stays exhausted.
	cur := ViewOf(pts).Cursor(100, 0)
	if _, ok := cur.Next(); ok {
		t.Error("out-of-range cursor yielded a point")
	}
}
