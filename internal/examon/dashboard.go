package examon

import (
	"fmt"
	"math"
)

// Heatmap is a nodes x time-bins matrix of aggregated metric values, the
// structure behind the paper's Fig. 5 (instructions/s, network traffic and
// memory usage per node during the full-machine HPL run).
type Heatmap struct {
	// Nodes are the row labels in row order.
	Nodes []string
	// BinStart is the first bin's start time; BinWidth the bin size.
	BinStart, BinWidth float64
	// Values[r][c] is the mean value of row r in bin c; NaN marks bins
	// without samples.
	Values [][]float64
}

// Bins returns the number of time bins.
func (h *Heatmap) Bins() int {
	if len(h.Values) == 0 {
		return 0
	}
	return len(h.Values[0])
}

// heatmapPerNodeQueryMax is the requested-node count up to which
// BuildHeatmap issues one Node-filtered query per node; wider requests
// amortize a single multi-node query across all rows. The threshold
// trades per-query overhead (snapshot + validation per node) against the
// multi-node query aggregating — and discarding — unrequested nodes'
// series when the request is a proper subset of a bigger cluster; the
// Storage interface cannot reveal the cluster's node population, so a
// subset wider than this still pays the discard on a much larger store.
const heatmapPerNodeQueryMax = 32

// HeatmapOptions configure BuildHeatmap.
type HeatmapOptions struct {
	// Plugin and Metric select the series.
	Plugin string
	Metric string
	// Rate differences cumulative counters before binning (used for
	// INSTRET and the cumulative net byte counters).
	Rate bool
	// SumCores adds per-core series together per node (pmu_pub metrics).
	SumCores bool
	// From, To and BinWidth control the time axis.
	From, To, BinWidth float64
}

// BuildHeatmap aggregates stored data into a heatmap over the given nodes
// on the v2 aggregating query layer, with the bin width as the
// downsampling step so series select through the inverted index (and, for
// aligned bin widths, the rollup tiers) instead of the former
// one-full-scan-per-node loop. Requests up to heatmapPerNodeQueryMax
// unique nodes issue one Node-filtered query per node; wider requests
// collapse into ONE multi-node query whose result is grouped into rows.
// Per-row accumulation order matches the old per-node queries (storage
// order restricted to each node) in both strategies, so cell values are
// bit-identical.
func BuildHeatmap(st Storage, nodes []string, opts HeatmapOptions) (*Heatmap, error) {
	if st == nil {
		return nil, fmt.Errorf("examon: heatmap needs a storage engine")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("examon: heatmap needs nodes")
	}
	if opts.BinWidth <= 0 {
		return nil, fmt.Errorf("examon: bin width must be positive, got %v", opts.BinWidth)
	}
	if opts.To <= opts.From {
		return nil, fmt.Errorf("examon: empty time range [%v,%v)", opts.From, opts.To)
	}
	bins := int(math.Ceil((opts.To - opts.From) / opts.BinWidth))
	hm := &Heatmap{
		Nodes:    append([]string(nil), nodes...),
		BinStart: opts.From,
		BinWidth: opts.BinWidth,
		Values:   make([][]float64, len(nodes)),
	}
	op := AggSum
	if opts.Rate {
		op = AggRate
	}
	// Duplicate node names get duplicate (identical) rows, like the old
	// per-node loop produced.
	rows := make(map[string][]int, len(nodes))
	for r, nodeName := range nodes {
		rows[nodeName] = append(rows[nodeName], r)
	}
	sums := make([][]float64, len(nodes))
	counts := make([][]int, len(nodes))
	perRowSeries := make([]int, len(nodes))
	for r := range nodes {
		sums[r] = make([]float64, bins)
		counts[r] = make([]int, bins)
	}
	accumulate := func(f Filter) error {
		agg, err := QueryAgg(st, f, AggOptions{Op: op, Step: opts.BinWidth})
		if err != nil {
			return err
		}
		for _, s := range agg {
			targets, ok := rows[s.Tags.Node]
			if !ok {
				continue // matched a node outside the requested rows
			}
			for _, r := range targets {
				perRowSeries[r]++
				for _, p := range s.Points {
					bin := int(math.Round((p.T - opts.From) / opts.BinWidth))
					if bin < 0 || bin >= bins {
						continue
					}
					if opts.Rate {
						// AggRate buckets carry the mean rate; recover the
						// bucket sum so multi-core combining matches the
						// original sample-weighted math.
						sums[r][bin] += p.V * float64(p.N)
					} else {
						sums[r][bin] += p.V
					}
					counts[r][bin] += p.N
				}
			}
		}
		return nil
	}
	f := Filter{
		Plugin: opts.Plugin, Metric: opts.Metric,
		From: opts.From, To: opts.To,
	}
	if len(rows) <= heatmapPerNodeQueryMax {
		// Drill-downs over a few nodes: one Node-restricted indexed query
		// per unique node (each row's accumulation is independent, so the
		// cross-node query order does not matter), instead of aggregating
		// the whole cluster and discarding the unrequested rows.
		for node := range rows {
			f.Node = node
			if err := accumulate(f); err != nil {
				return nil, err
			}
		}
	} else if err := accumulate(f); err != nil {
		return nil, err
	}
	for r := range nodes {
		row := make([]float64, bins)
		perBinSeries := perRowSeries[r]
		if perBinSeries == 0 {
			perBinSeries = 1
		}
		for c := range row {
			switch {
			case counts[r][c] == 0:
				row[c] = math.NaN()
			case opts.SumCores:
				// Average over samples within the bin, summed across the
				// per-core series: mean per series times series count.
				row[c] = sums[r][c] / float64(counts[r][c]) * float64(perBinSeries)
			default:
				row[c] = sums[r][c] / float64(counts[r][c])
			}
		}
		hm.Values[r] = row
	}
	return hm, nil
}

// MaxValue returns the largest non-NaN cell (0 when all cells are empty).
func (h *Heatmap) MaxValue() float64 {
	maxV := 0.0
	for _, row := range h.Values {
		for _, v := range row {
			if !math.IsNaN(v) && v > maxV {
				maxV = v
			}
		}
	}
	return maxV
}

// RowMean returns the mean of a row's non-NaN cells.
func (h *Heatmap) RowMean(r int) float64 {
	sum, n := 0.0, 0
	for _, v := range h.Values[r] {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
