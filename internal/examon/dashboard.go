package examon

import (
	"fmt"
	"math"
)

// Heatmap is a nodes x time-bins matrix of aggregated metric values, the
// structure behind the paper's Fig. 5 (instructions/s, network traffic and
// memory usage per node during the full-machine HPL run).
type Heatmap struct {
	// Nodes are the row labels in row order.
	Nodes []string
	// BinStart is the first bin's start time; BinWidth the bin size.
	BinStart, BinWidth float64
	// Values[r][c] is the mean value of row r in bin c; NaN marks bins
	// without samples.
	Values [][]float64
}

// Bins returns the number of time bins.
func (h *Heatmap) Bins() int {
	if len(h.Values) == 0 {
		return 0
	}
	return len(h.Values[0])
}

// HeatmapOptions configure BuildHeatmap.
type HeatmapOptions struct {
	// Plugin and Metric select the series.
	Plugin string
	Metric string
	// Rate differences cumulative counters before binning (used for
	// INSTRET and the cumulative net byte counters).
	Rate bool
	// SumCores adds per-core series together per node (pmu_pub metrics).
	SumCores bool
	// From, To and BinWidth control the time axis.
	From, To, BinWidth float64
}

// BuildHeatmap aggregates stored data into a heatmap over the given nodes.
// It runs on the v2 aggregating query layer: one QueryAgg per node with the
// bin width as the downsampling step, so the binning happens inside the
// storage engine's scan instead of over copied-out series.
func BuildHeatmap(st Storage, nodes []string, opts HeatmapOptions) (*Heatmap, error) {
	if st == nil {
		return nil, fmt.Errorf("examon: heatmap needs a storage engine")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("examon: heatmap needs nodes")
	}
	if opts.BinWidth <= 0 {
		return nil, fmt.Errorf("examon: bin width must be positive, got %v", opts.BinWidth)
	}
	if opts.To <= opts.From {
		return nil, fmt.Errorf("examon: empty time range [%v,%v)", opts.From, opts.To)
	}
	bins := int(math.Ceil((opts.To - opts.From) / opts.BinWidth))
	hm := &Heatmap{
		Nodes:    append([]string(nil), nodes...),
		BinStart: opts.From,
		BinWidth: opts.BinWidth,
		Values:   make([][]float64, len(nodes)),
	}
	op := AggSum
	if opts.Rate {
		op = AggRate
	}
	for r, nodeName := range nodes {
		sums := make([]float64, bins)
		counts := make([]int, bins)
		agg, err := QueryAgg(st, Filter{
			Node: nodeName, Plugin: opts.Plugin, Metric: opts.Metric,
			From: opts.From, To: opts.To,
		}, AggOptions{Op: op, Step: opts.BinWidth})
		if err != nil {
			return nil, err
		}
		for _, s := range agg {
			for _, p := range s.Points {
				bin := int(math.Round((p.T - opts.From) / opts.BinWidth))
				if bin < 0 || bin >= bins {
					continue
				}
				if opts.Rate {
					// AggRate buckets carry the mean rate; recover the
					// bucket sum so multi-core combining matches the
					// original sample-weighted math.
					sums[bin] += p.V * float64(p.N)
				} else {
					sums[bin] += p.V
				}
				counts[bin] += p.N
			}
		}
		row := make([]float64, bins)
		perBinSeries := len(agg)
		if perBinSeries == 0 {
			perBinSeries = 1
		}
		for c := range row {
			switch {
			case counts[c] == 0:
				row[c] = math.NaN()
			case opts.SumCores:
				// Average over samples within the bin, summed across the
				// per-core series: mean per series times series count.
				row[c] = sums[c] / float64(counts[c]) * float64(perBinSeries)
			default:
				row[c] = sums[c] / float64(counts[c])
			}
		}
		hm.Values[r] = row
	}
	return hm, nil
}

// MaxValue returns the largest non-NaN cell (0 when all cells are empty).
func (h *Heatmap) MaxValue() float64 {
	maxV := 0.0
	for _, row := range h.Values {
		for _, v := range row {
			if !math.IsNaN(v) && v > maxV {
				maxV = v
			}
		}
	}
	return maxV
}

// RowMean returns the mean of a row's non-NaN cells.
func (h *Heatmap) RowMean(r int) float64 {
	sum, n := 0.0, 0
	for _, v := range h.Values[r] {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
