package examon

import "math"

// Ingest-time rollup tiers: the append-only engines (mem, sharded)
// maintain per-series pre-aggregated buckets — count/sum/min/max over a
// coarse step — incrementally on every insert, so a coarse-step QueryAgg
// (avg/min/max/sum) and BuildHeatmap answer from the rollup tier without
// touching raw points. Rate queries and steps that do not align with the
// rollup grid fall through to the raw path. The ring engine does not keep
// a tier: eviction would have to subtract points back out of the buckets,
// which min/max cannot support incrementally.
//
// Exactness contract: on an aligned query (From, To and Step all exact
// multiples of the rollup step) the tier yields the same bucket counts
// and, for min/max, bit-identical values; sums (and therefore averages)
// regroup the same additions, so they are bit-identical whenever the
// additions incur no floating-point rounding (counter/temperature-style
// telemetry) and equal up to reassociation otherwise. NaN samples are
// outside the contract entirely: IEEE comparisons make even the raw
// fold's min/max depend on insertion order, so no deterministic tier can
// reproduce it — the plugins never emit NaN. The conformance suite pins
// the bit-identical case.

// DefaultRollupStep is the default rollup bucket width in seconds: one
// minute spans 120 samples at pmu_pub's 2 Hz, a two-orders-of-magnitude
// reduction for dashboard-scale aggregation windows.
const DefaultRollupStep = 60.0

// maxRollupBuckets bounds one series' tier. A series whose samples span
// more buckets than this (sparse streams with huge time gaps) drops its
// tier and serves queries from raw points.
const maxRollupBuckets = 1 << 20

// maxRollupIdx bounds the absolute bucket indices the tier and its query
// path work with, comfortably inside int64 so index arithmetic
// (differences, divisions) can never overflow. Timestamps or query
// bounds beyond it drop the tier / fall through to the raw path, whose
// own guards handle pathological ranges.
const maxRollupIdx = 1 << 62

// rollupBucket aggregates the samples of one series whose timestamps fall
// in [idx*step, (idx+1)*step).
type rollupBucket struct {
	n             int
	sum, min, max float64
}

func (b *rollupBucket) add(v float64) {
	if b.n == 0 || v < b.min {
		b.min = v
	}
	if b.n == 0 || v > b.max {
		b.max = v
	}
	b.sum += v
	b.n++
}

// seriesRollup is one series' tier: a dense bucket slice anchored at the
// first bucket index seen. Guarded by the owning engine's lock.
type seriesRollup struct {
	step    float64
	first   int64 // absolute index of buckets[0]
	buckets []rollupBucket
	dropped bool
	// Fast path: the bucket the previous insert landed in, so in-order
	// streams update it with one range check and no division.
	lo, hi float64
	cur    *rollupBucket
}

func newSeriesRollup(step float64) *seriesRollup {
	return &seriesRollup{step: step, lo: math.Inf(1), hi: math.Inf(-1)}
}

// add folds one sample into the tier.
func (r *seriesRollup) add(t, v float64) {
	if r.dropped {
		return
	}
	if t >= r.lo && t < r.hi {
		r.cur.add(v)
		return
	}
	// Range-check in the float domain before converting: an int64
	// overflow here would wrap the growth arithmetic below.
	q := math.Floor(t / r.step)
	if math.IsNaN(q) || q >= maxRollupIdx || q <= -maxRollupIdx {
		r.drop()
		return
	}
	idx := int64(q)
	switch {
	case len(r.buckets) == 0:
		r.first = idx
		r.buckets = append(r.buckets, rollupBucket{})
	case idx < r.first:
		grow := r.first - idx
		if grow+int64(len(r.buckets)) > maxRollupBuckets {
			r.drop()
			return
		}
		nb := make([]rollupBucket, grow+int64(len(r.buckets)))
		copy(nb[grow:], r.buckets)
		r.buckets, r.first = nb, idx
	case idx >= r.first+int64(len(r.buckets)):
		n := idx - r.first + 1
		if n > maxRollupBuckets {
			r.drop()
			return
		}
		r.buckets = append(r.buckets, make([]rollupBucket, n-int64(len(r.buckets)))...)
	}
	b := &r.buckets[idx-r.first]
	b.add(v)
	r.lo = float64(idx) * r.step
	r.hi = float64(idx+1) * r.step
	r.cur = b
}

// drop abandons the tier (the series keeps answering from raw points).
func (r *seriesRollup) drop() {
	r.dropped = true
	r.buckets = nil
	r.cur = nil
	r.lo, r.hi = math.Inf(1), math.Inf(-1)
}

// rollupSnap is a consistent copy of the tier's buckets overlapping a
// query range, taken under the engine's lock so readers never see a
// bucket mid-update.
type rollupSnap struct {
	step    float64
	first   int64 // absolute index of buckets[0]
	buckets []rollupBucket
}

// snapshotRange copies the buckets overlapping [from, to) (to == 0 means
// unbounded). Returns nil when the tier was dropped.
func (r *seriesRollup) snapshotRange(from, to float64) *rollupSnap {
	if r == nil || r.dropped {
		return nil
	}
	// Clamp in the float domain so extreme bounds cannot overflow the
	// index conversions (rollupAligned already rejects such queries;
	// this keeps the method safe standalone).
	lo, hi := int64(0), int64(len(r.buckets))
	if fq := math.Floor(from / r.step); fq > float64(r.first) {
		if fq >= float64(r.first)+float64(hi) {
			lo = hi
		} else {
			lo = int64(fq) - r.first
		}
	}
	if to != 0 {
		if tq := math.Ceil(to / r.step); tq-float64(r.first) < float64(hi) {
			if tq <= float64(r.first)+float64(lo) {
				hi = lo
			} else {
				hi = int64(tq) - r.first
			}
		}
	}
	return &rollupSnap{
		step:    r.step,
		first:   r.first + lo,
		buckets: append([]rollupBucket(nil), r.buckets[lo:hi]...),
	}
}

// rollupAligned reports whether a QueryAgg can be answered from a rollup
// tier of the given step: a non-rate operator, and From, To and Step all
// sitting exactly on the rollup grid so every raw point is covered by
// whole in-range buckets.
func rollupAligned(f Filter, opts AggOptions, step float64) bool {
	if step <= 0 || opts.Step < step || opts.Op == AggRate {
		return false
	}
	if math.Mod(opts.Step, step) != 0 || math.Mod(f.From, step) != 0 {
		return false
	}
	if f.To != 0 && math.Mod(f.To, step) != 0 {
		return false
	}
	// Grids whose bucket indices would overflow int64 fall through to the
	// raw path, which guards this range class itself.
	if math.Abs(f.From/step) >= maxRollupIdx || opts.Step/step >= maxRollupIdx {
		return false
	}
	return f.To == 0 || math.Abs(f.To/step) < maxRollupIdx
}
