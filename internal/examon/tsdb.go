package examon

import (
	"fmt"
	"sort"
	"sync"
)

// Point is one stored sample.
type Point struct {
	// T is the sample's virtual timestamp (seconds); V the value.
	T, V float64
}

// Series is one stored metric stream with its identifying tags.
type Series struct {
	// Tags identify the stream.
	Tags Tags
	// Points are the samples in arrival order.
	Points []Point
}

// Key renders the canonical series key.
func (s *Series) Key() string { return seriesKey(s.Tags) }

func seriesKey(t Tags) string {
	if t.Core >= 0 {
		return fmt.Sprintf("%s/%s/core%d/%s", t.Node, t.Plugin, t.Core, t.Metric)
	}
	return fmt.Sprintf("%s/%s/%s", t.Node, t.Plugin, t.Metric)
}

// TSDB is the storage backend installed on the master node. It subscribes
// to the broker's data topics and answers range queries (the paper's stack
// exposes these through Grafana and a REST API). Safe for concurrent use.
type TSDB struct {
	mu     sync.RWMutex
	series map[string]*Series
	order  []string
}

// NewTSDB returns an empty store.
func NewTSDB() *TSDB {
	return &TSDB{series: make(map[string]*Series)}
}

// Attach subscribes the store to every ExaMon data topic on the broker.
func (db *TSDB) Attach(broker *Broker) (*Subscription, error) {
	if broker == nil {
		return nil, fmt.Errorf("examon: tsdb needs a broker")
	}
	return broker.Subscribe("org/#", func(topic, payload string) {
		tags, err := ParseTopic(topic)
		if err != nil {
			return // non-data topics are not stored
		}
		value, ts, err := ParsePayload(payload)
		if err != nil {
			return
		}
		db.Insert(tags, ts, value)
	})
}

// Insert stores one sample.
func (db *TSDB) Insert(tags Tags, t, v float64) {
	key := seriesKey(tags)
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.series[key]
	if !ok {
		s = &Series{Tags: tags}
		db.series[key] = s
		db.order = append(db.order, key)
	}
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Filter selects series for a query; zero fields match everything.
type Filter struct {
	// Node, Plugin and Metric match tag values exactly when non-empty.
	Node   string
	Plugin string
	Metric string
	// Core matches the hart id; nil matches any.
	Core *int
	// From and To bound timestamps (inclusive from, exclusive to); zero
	// To means unbounded.
	From, To float64
}

func (f Filter) matches(t Tags) bool {
	if f.Node != "" && f.Node != t.Node {
		return false
	}
	if f.Plugin != "" && f.Plugin != t.Plugin {
		return false
	}
	if f.Metric != "" && f.Metric != t.Metric {
		return false
	}
	if f.Core != nil && *f.Core != t.Core {
		return false
	}
	return true
}

// Query returns copies of the matching series, filtered to the time range,
// in insertion order.
func (db *TSDB) Query(f Filter) []Series {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Series
	for _, key := range db.order {
		s := db.series[key]
		if !f.matches(s.Tags) {
			continue
		}
		cp := Series{Tags: s.Tags}
		for _, p := range s.Points {
			if p.T < f.From {
				continue
			}
			if f.To != 0 && p.T >= f.To {
				continue
			}
			cp.Points = append(cp.Points, p)
		}
		out = append(out, cp)
	}
	return out
}

// SeriesCount returns the number of stored series.
func (db *TSDB) SeriesCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.series)
}

// Keys lists all series keys, sorted.
func (db *TSDB) Keys() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, len(db.order))
	copy(out, db.order)
	sort.Strings(out)
	return out
}

// Rate converts a cumulative-counter series into a rate series by
// differencing successive points (the Fig. 5 instruction/s heatmap is
// built from the cumulative INSTRET counter this way).
func Rate(s Series) Series {
	out := Series{Tags: s.Tags}
	for i := 1; i < len(s.Points); i++ {
		dt := s.Points[i].T - s.Points[i-1].T
		if dt <= 0 {
			continue
		}
		dv := s.Points[i].V - s.Points[i-1].V
		out.Points = append(out.Points, Point{T: s.Points[i].T, V: dv / dt})
	}
	return out
}
