package examon

import "fmt"

// Point is one stored sample.
type Point struct {
	// T is the sample's virtual timestamp (seconds); V the value.
	T, V float64
}

// Series is one stored metric stream with its identifying tags.
type Series struct {
	// Tags identify the stream.
	Tags Tags
	// Points are the samples in arrival order.
	Points []Point
}

// Key renders the canonical series key.
func (s *Series) Key() string { return seriesKey(s.Tags) }

func seriesKey(t Tags) string {
	if t.Core >= 0 {
		return fmt.Sprintf("%s/%s/core%d/%s", t.Node, t.Plugin, t.Core, t.Metric)
	}
	return fmt.Sprintf("%s/%s/%s", t.Node, t.Plugin, t.Metric)
}

// TSDB is the storage frontend installed on the master node. It subscribes
// to the broker's data topics and answers range queries (the paper's stack
// exposes these through Grafana and a REST API). The actual persistence is
// delegated to a pluggable Storage engine — NewTSDB uses the in-memory
// append engine, NewTSDBOn accepts any engine — and TSDB itself implements
// Storage, so the query layers (QueryAgg, BuildHeatmap, Detector.ScanAll,
// RESTServer) accept either a TSDB or a bare engine. The aggregating
// layers unwrap the TSDB through Storage(), so the engine's fast read
// paths (inverted index, snapshot fan-out, rollup tiers) work through the
// wrapper. Safe for concurrent use.
type TSDB struct {
	store Storage
}

// NewTSDB returns a store backed by the default in-memory append engine.
func NewTSDB() *TSDB {
	return &TSDB{store: NewMemStore()}
}

// NewTSDBOn returns a store backed by the given engine.
func NewTSDBOn(store Storage) (*TSDB, error) {
	if store == nil {
		return nil, fmt.Errorf("examon: tsdb needs a storage engine")
	}
	return &TSDB{store: store}, nil
}

// Storage returns the backing engine.
func (db *TSDB) Storage() Storage { return db.store }

// Attach subscribes the store to every ExaMon data topic on the broker
// through the typed sample path: batches published with PublishBatch land
// in storage without any string rendering or parsing, and legacy string
// publishes arrive through the broker's compatibility shim.
func (db *TSDB) Attach(broker *Broker) (*Subscription, error) {
	if broker == nil {
		return nil, fmt.Errorf("examon: tsdb needs a broker")
	}
	return broker.SubscribeSampleBatches("org/#", func(batch []Sample) {
		db.store.InsertBatch(batch)
	})
}

// Insert stores one sample.
func (db *TSDB) Insert(tags Tags, t, v float64) { db.store.Insert(tags, t, v) }

// InsertBatch stores a batch of samples.
func (db *TSDB) InsertBatch(batch []Sample) { db.store.InsertBatch(batch) }

// Filter selects series for a query; zero fields match everything.
type Filter struct {
	// Org and Cluster match the series' scoping tags exactly when
	// non-empty. Scoping tags are not part of series identity — a series
	// keeps its first-seen Org/Cluster — so these dimensions matter for
	// federated stores where samples from several clusters land in one
	// engine under distinct node names (the fleet runner's federation
	// tier): a Cluster filter then selects exactly one cluster's series.
	Org     string
	Cluster string
	// Node, Plugin and Metric match tag values exactly when non-empty.
	Node   string
	Plugin string
	Metric string
	// Core matches the hart id; nil matches any.
	Core *int
	// From and To bound timestamps (inclusive from, exclusive to). A zero
	// To means unbounded, which makes "everything up to and including
	// t=0" inexpressible as an exclusive bound: a query for exactly the
	// t=0 samples needs To set to the smallest time above zero the caller
	// cares about (e.g. math.SmallestNonzeroFloat64), since To=0 returns
	// the full series instead. Virtual time in this stack starts at 0 and
	// samples are published at t>0, so the ambiguity is harmless in
	// practice, but generic callers should be aware of it.
	From, To float64
}

func (f Filter) matches(t Tags) bool {
	if f.Org != "" && f.Org != t.Org {
		return false
	}
	if f.Cluster != "" && f.Cluster != t.Cluster {
		return false
	}
	if f.Node != "" && f.Node != t.Node {
		return false
	}
	if f.Plugin != "" && f.Plugin != t.Plugin {
		return false
	}
	if f.Metric != "" && f.Metric != t.Metric {
		return false
	}
	if f.Core != nil && *f.Core != t.Core {
		return false
	}
	return true
}

// Query returns copies of the matching series, filtered to the time range,
// ordered by first insertion.
func (db *TSDB) Query(f Filter) []Series { return db.store.Query(f) }

// Scan visits the matching series without copying; see Storage.Scan for
// the contract.
func (db *TSDB) Scan(f Filter, visit func(tags Tags, pts PointsView) bool) {
	db.store.Scan(f, visit)
}

// SeriesCount returns the number of stored series.
func (db *TSDB) SeriesCount() int { return db.store.SeriesCount() }

// Keys lists all series keys, sorted.
func (db *TSDB) Keys() []string { return db.store.Keys() }

// Rate converts a cumulative-counter series into a rate series by
// differencing successive points (the Fig. 5 instruction/s heatmap is
// built from the cumulative INSTRET counter this way). Pairs with
// non-positive time deltas are skipped, and a series with fewer than two
// points — where no difference exists — yields an empty rate series rather
// than an error, so callers must not assume len(out.Points) > 0.
func Rate(s Series) Series {
	out := Series{Tags: s.Tags}
	for i := 1; i < len(s.Points); i++ {
		dt := s.Points[i].T - s.Points[i-1].T
		if dt <= 0 {
			continue
		}
		dv := s.Points[i].V - s.Points[i-1].V
		out.Points = append(out.Points, Point{T: s.Points[i].T, V: dv / dt})
	}
	return out
}
