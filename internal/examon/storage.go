package examon

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Storage is the pluggable persistence engine behind TSDB. Three engines
// ship with the stack:
//
//   - MemStore ("mem"): the original unbounded append store — lowest
//     per-insert cost, memory grows with the run.
//   - RingStore ("ring"): bounded per-series ring buffers — constant
//     memory, retains the most recent points (count-based retention).
//   - ShardedStore ("sharded"): node-hashed shards over append storage —
//     concurrent ingest from many nodes without a global write lock.
//
// Every engine maintains an inverted tag index (index.go) so selective
// scans visit only candidate series, and the append-only engines (mem,
// sharded) additionally keep ingest-time rollup tiers (rollup.go) that
// answer aligned coarse-step aggregations without touching raw points.
// WithLinearScan reinstates the full linear walk as the benchmarked
// read-path ablation; WithRollup tunes or disables the tiers.
//
// Contract shared by all engines (exercised by the conformance suite in
// storage_conformance_test.go):
//
//   - Insert/InsertBatch append points in arrival order. Series identity
//     is (Node, Plugin, Core, Metric) — the dimensions seriesKey renders
//     and Filter selects on; samples differing only in Org/Cluster extend
//     the same series, which keeps its first-seen full tag set (seed
//     semantics).
//   - Query returns deep copies of the matching series, time-filtered per
//     Filter, ordered by each series' first insertion.
//   - Scan visits matching series in the same order, passing a PointsView
//     over the engine's backing buffer with NO time filtering (callers
//     apply Filter.From/To via PointsView.Cursor; aggregators like rate
//     need the out-of-range predecessor point). The view is valid only for
//     the duration of the visit, which may run under the engine's read
//     lock (mem, ring) or over a lock-free snapshot (sharded): the visit
//     callback must not call back into the store and must not retain the
//     view. Returning false stops the scan.
//   - SeriesCount and Keys report the stored series; Keys is sorted.
//
// All methods are safe for concurrent use.
type Storage interface {
	// Insert stores one sample.
	Insert(tags Tags, t, v float64)
	// InsertBatch stores a batch of samples.
	InsertBatch(batch []Sample)
	// Query returns copies of the matching series, filtered to the time
	// range, ordered by first insertion.
	Query(f Filter) []Series
	// Scan visits each matching series' full point view under the
	// engine's read lock; see the interface comment for the contract.
	Scan(f Filter, visit func(tags Tags, pts PointsView) bool)
	// SeriesCount returns the number of stored series.
	SeriesCount() int
	// Keys lists all series keys, sorted.
	Keys() []string
}

// seriesID is the identity a stream is stored under: the dimensions that
// seriesKey renders and Filter can select on. Org and Cluster are scoping
// metadata, not identity — samples differing only there extend the same
// series (which keeps the first-seen full tag set), exactly like the seed
// string-keyed store.
type seriesID struct {
	node   string
	plugin string
	core   int
	metric string
}

func idOf(t Tags) seriesID {
	return seriesID{node: t.Node, plugin: t.Plugin, core: t.Core, metric: t.Metric}
}

// StorageBackends lists the registered engine names accepted by NewStorage.
func StorageBackends() []string { return []string{"mem", "ring", "sharded"} }

// Default sizing for the named backends.
const (
	// DefaultRingCapacity is the per-series point capacity of the "ring"
	// backend: at pmu_pub's 2 Hz it retains a bit over an hour per series.
	DefaultRingCapacity = 8192
	// DefaultShards is the shard count of the "sharded" backend.
	DefaultShards = 16
)

// storeConfig carries the tunables shared by every engine.
type storeConfig struct {
	linear     bool
	rollupStep float64 // <= 0 disables the rollup tier
}

func defaultStoreConfig() storeConfig {
	return storeConfig{rollupStep: DefaultRollupStep}
}

func (c storeConfig) apply(opts []StoreOption) storeConfig {
	for _, o := range opts {
		o(&c)
	}
	return c
}

// StoreOption tunes a storage engine at construction.
type StoreOption func(*storeConfig)

// WithLinearScan reinstates the seed's full linear series walk for every
// read (no inverted-index candidate selection, no lock-free snapshot
// fan-out) — the benchmarked read-path ablation, mirroring
// sched.WithLinearScan.
func WithLinearScan(linear bool) StoreOption {
	return func(c *storeConfig) { c.linear = linear }
}

// WithRollup sets the ingest-time rollup tier's bucket width in seconds;
// step <= 0 disables the tiers. The default is DefaultRollupStep. The
// ring engine never keeps tiers (eviction cannot be folded back out of
// min/max buckets) and ignores this option.
func WithRollup(step float64) StoreOption {
	return func(c *storeConfig) { c.rollupStep = step }
}

// NewStorage builds a storage engine by backend name ("" selects "mem").
func NewStorage(backend string, opts ...StoreOption) (Storage, error) {
	switch backend {
	case "", "mem":
		return NewMemStore(opts...), nil
	case "ring":
		return NewRingStore(DefaultRingCapacity, opts...), nil
	case "sharded":
		return NewShardedStore(DefaultShards, opts...), nil
	}
	return nil, fmt.Errorf("examon: unknown storage backend %q (have %v)", backend, StorageBackends())
}

// queryStorage implements the copying Query in terms of Scan, shared by
// every engine. Copies are sized up front from PointsView.Len instead of
// being grown one append at a time; a series with no in-range points
// keeps nil Points (seed semantics).
func queryStorage(st Storage, f Filter) []Series {
	var out []Series
	st.Scan(f, func(tags Tags, pts PointsView) bool {
		cp := Series{Tags: tags}
		if n := pts.Len(); n > 0 {
			// Always filter through the cursor — even a zero From excludes
			// negative timestamps (seed semantics) — with the copy sized
			// up front from the view length. Time-windowed queries cap the
			// hint: a narrow window over a long series must not retain a
			// full-series-sized backing array for a handful of points.
			capHint := n
			if (f.From != 0 || f.To != 0) && capHint > 1024 {
				capHint = 1024
			}
			buf := make([]Point, 0, capHint)
			cur := pts.Cursor(f.From, f.To)
			for p, ok := cur.Next(); ok; p, ok = cur.Next() {
				buf = append(buf, p)
			}
			if len(buf) > 0 {
				cp.Points = buf
			}
		}
		out = append(out, cp)
		return true
	})
	return out
}

// lockedSeriesCount is the shared SeriesCount of the single-lock engines
// (the sharded store sums its shards with the same O(1) map length).
func lockedSeriesCount[T any](mu *sync.RWMutex, series map[seriesID]T) int {
	mu.RLock()
	defer mu.RUnlock()
	return len(series)
}

// keysOfStorage implements Keys in terms of Scan, shared by every engine.
func keysOfStorage(st Storage) []string {
	out := make([]string, 0, 16)
	st.Scan(Filter{}, func(tags Tags, _ PointsView) bool {
		out = append(out, seriesKey(tags))
		return true
	})
	sort.Strings(out)
	return out
}

// --- read fan-out --------------------------------------------------------

// seriesSnap is one matched series captured as a stable view that remains
// valid after the engine's lock is released: the append-only engines copy
// the slice header under the read lock (the prefix it describes is
// immutable), and the rollup tier — which mutates buckets in place — is
// copied for the query's range.
type seriesSnap struct {
	seq  uint64 // creation sequence, for the sharded cross-shard merge
	tags Tags
	pts  PointsView
	roll *rollupSnap // non-nil only when requested and maintained
}

// snapshotter is implemented by engines whose matched series can be
// captured as lock-free snapshots and visited concurrently (mem,
// sharded). The aggregating query layer fans the snapshot out across
// cores with an order-preserving merge. ok is false when the engine wants
// the plain sequential Scan instead (linear-scan ablation).
type snapshotter interface {
	snapshotSeries(f Filter, withRollups bool) (snaps []seriesSnap, ok bool)
	rollupStep() float64
}

// Read fan-out sizing: below minParallelSeries the goroutine handoff
// costs more than the aggregation; maxReadWorkers caps one query's share
// of the host.
const (
	minParallelSeries = 8
	maxReadWorkers    = 16
)

// parallelFor splits [0, n) into contiguous chunks across up to
// maxReadWorkers goroutines and runs body on each chunk; small inputs run
// inline. body must be safe for concurrent use.
func parallelFor(n int, body func(start, end int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > maxReadWorkers {
		workers = maxReadWorkers
	}
	if n < minParallelSeries || workers <= 1 {
		body(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			body(s, e)
		}(start, end)
	}
	wg.Wait()
}

// --- MemStore -----------------------------------------------------------

// memSeries is one append-only stream.
type memSeries struct {
	tags Tags
	pts  []Point
	roll *seriesRollup // nil when rollups are disabled
}

// MemStore is the unbounded in-memory append engine (the seed TSDB's
// storage, extracted behind the Storage interface).
type MemStore struct {
	cfg    storeConfig
	mu     sync.RWMutex
	series map[seriesID]*memSeries
	order  []*memSeries
	index  *tagIndex
}

// NewMemStore returns an empty append store.
func NewMemStore(opts ...StoreOption) *MemStore {
	return &MemStore{
		cfg:    defaultStoreConfig().apply(opts),
		series: make(map[seriesID]*memSeries),
		index:  newTagIndex(),
	}
}

// Insert stores one sample.
func (st *MemStore) Insert(tags Tags, t, v float64) {
	st.mu.Lock()
	st.insertLocked(tags, t, v)
	st.mu.Unlock()
}

// InsertBatch stores a batch under a single lock acquisition.
func (st *MemStore) InsertBatch(batch []Sample) {
	if len(batch) == 0 {
		return
	}
	st.mu.Lock()
	for _, s := range batch {
		st.insertLocked(s.Tags, s.T, s.V)
	}
	st.mu.Unlock()
}

func (st *MemStore) insertLocked(tags Tags, t, v float64) {
	id := idOf(tags)
	s, ok := st.series[id]
	if !ok {
		s = &memSeries{tags: tags}
		if st.cfg.rollupStep > 0 {
			s.roll = newSeriesRollup(st.cfg.rollupStep)
		}
		st.index.add(len(st.order), tags)
		st.series[id] = s
		st.order = append(st.order, s)
	}
	s.pts = append(s.pts, Point{T: t, V: v})
	if s.roll != nil {
		s.roll.add(t, v)
	}
}

// lookup consults the inverted index, unless the engine runs in the
// linear-scan ablation or the filter has no indexed dimension.
func (st *MemStore) lookup(f Filter) ([]int32, bool) {
	if st.cfg.linear {
		return nil, false
	}
	return st.index.candidates(f)
}

// Query returns copies of the matching series.
func (st *MemStore) Query(f Filter) []Series { return queryStorage(st, f) }

// Scan visits matching series under the read lock.
func (st *MemStore) Scan(f Filter, visit func(tags Tags, pts PointsView) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if cand, ok := st.lookup(f); ok {
		for _, pos := range cand {
			s := st.order[pos]
			if !f.matches(s.tags) {
				continue
			}
			if !visit(s.tags, PointsView{a: s.pts}) {
				return
			}
		}
		return
	}
	for _, s := range st.order {
		if !f.matches(s.tags) {
			continue
		}
		if !visit(s.tags, PointsView{a: s.pts}) {
			return
		}
	}
}

// snapshotSeries captures the matching series for the concurrent read
// fan-out. The store is append-only, so a slice header copied under the
// read lock describes an immutable prefix and stays valid after the lock
// is released.
func (st *MemStore) snapshotSeries(f Filter, withRollups bool) ([]seriesSnap, bool) {
	if st.cfg.linear {
		return nil, false
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	var snaps []seriesSnap
	add := func(s *memSeries) {
		if !f.matches(s.tags) {
			return
		}
		snap := seriesSnap{tags: s.tags, pts: PointsView{a: s.pts}}
		if withRollups {
			snap.roll = s.roll.snapshotRange(f.From, f.To)
		}
		snaps = append(snaps, snap)
	}
	if cand, ok := st.lookup(f); ok {
		for _, pos := range cand {
			add(st.order[pos])
		}
	} else {
		for _, s := range st.order {
			add(s)
		}
	}
	return snaps, true
}

func (st *MemStore) rollupStep() float64 { return st.cfg.rollupStep }

// SeriesCount returns the number of stored series.
func (st *MemStore) SeriesCount() int { return lockedSeriesCount(&st.mu, st.series) }

// Keys lists all series keys, sorted.
func (st *MemStore) Keys() []string { return keysOfStorage(st) }

// --- RingStore ----------------------------------------------------------

// ringSeries is one bounded stream: a circular buffer of the most recent
// capacity points.
type ringSeries struct {
	tags Tags
	buf  []Point
	next int  // overwrite position once full
	full bool // len(buf) reached capacity
}

func (s *ringSeries) view() PointsView {
	if !s.full {
		return PointsView{a: s.buf}
	}
	return PointsView{a: s.buf[s.next:], b: s.buf[:s.next]}
}

// RingStore is the bounded retention engine: each series keeps the most
// recent Capacity points in a ring buffer, so memory stays constant over
// arbitrarily long runs (count-based retention; at a fixed sampling rate
// that is equivalent to a time window). Eviction overwrites points in
// place, so the ring keeps no rollup tier and offers no lock-free
// snapshots — reads run under the read lock, candidate-selected through
// the inverted index.
type RingStore struct {
	cfg      storeConfig
	capacity int
	mu       sync.RWMutex
	series   map[seriesID]*ringSeries
	order    []*ringSeries
	index    *tagIndex
}

// NewRingStore returns an empty ring store holding up to capacity points
// per series (capacity <= 0 selects DefaultRingCapacity).
func NewRingStore(capacity int, opts ...StoreOption) *RingStore {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &RingStore{
		cfg:      defaultStoreConfig().apply(opts),
		capacity: capacity,
		series:   make(map[seriesID]*ringSeries),
		index:    newTagIndex(),
	}
}

// Capacity returns the per-series point bound.
func (st *RingStore) Capacity() int { return st.capacity }

// Insert stores one sample, evicting the series' oldest point when full.
func (st *RingStore) Insert(tags Tags, t, v float64) {
	st.mu.Lock()
	st.insertLocked(tags, t, v)
	st.mu.Unlock()
}

// InsertBatch stores a batch under a single lock acquisition.
func (st *RingStore) InsertBatch(batch []Sample) {
	if len(batch) == 0 {
		return
	}
	st.mu.Lock()
	for _, s := range batch {
		st.insertLocked(s.Tags, s.T, s.V)
	}
	st.mu.Unlock()
}

func (st *RingStore) insertLocked(tags Tags, t, v float64) {
	id := idOf(tags)
	s, ok := st.series[id]
	if !ok {
		s = &ringSeries{tags: tags}
		st.index.add(len(st.order), tags)
		st.series[id] = s
		st.order = append(st.order, s)
	}
	p := Point{T: t, V: v}
	if !s.full {
		s.buf = append(s.buf, p)
		if len(s.buf) == st.capacity {
			s.full = true
		}
		return
	}
	s.buf[s.next] = p
	s.next++
	if s.next == st.capacity {
		s.next = 0
	}
}

// Query returns copies of the matching series (retained window only).
func (st *RingStore) Query(f Filter) []Series { return queryStorage(st, f) }

// Scan visits matching series under the read lock.
func (st *RingStore) Scan(f Filter, visit func(tags Tags, pts PointsView) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if !st.cfg.linear {
		if cand, ok := st.index.candidates(f); ok {
			for _, pos := range cand {
				s := st.order[pos]
				if !f.matches(s.tags) {
					continue
				}
				if !visit(s.tags, s.view()) {
					return
				}
			}
			return
		}
	}
	for _, s := range st.order {
		if !f.matches(s.tags) {
			continue
		}
		if !visit(s.tags, s.view()) {
			return
		}
	}
}

// SeriesCount returns the number of stored series.
func (st *RingStore) SeriesCount() int { return lockedSeriesCount(&st.mu, st.series) }

// Keys lists all series keys, sorted.
func (st *RingStore) Keys() []string { return keysOfStorage(st) }

// --- ShardedStore -------------------------------------------------------

// shardSeries is one stream plus its global creation sequence number, used
// to reconstruct a deterministic cross-shard order.
type shardSeries struct {
	seq  uint64
	tags Tags
	pts  []Point
	roll *seriesRollup // nil when rollups are disabled
}

type storeShard struct {
	mu     sync.RWMutex
	series map[seriesID]*shardSeries
	order  []*shardSeries
	index  *tagIndex
}

// ShardedStore spreads series across shards keyed by the node tag, so
// per-node ingest streams (the deployment has one publisher per node)
// contend only within their shard instead of on a global mutex.
type ShardedStore struct {
	cfg    storeConfig
	seq    atomic.Uint64
	shards []*storeShard
}

// NewShardedStore returns an empty store with the given shard count
// (shards <= 0 selects DefaultShards).
func NewShardedStore(shards int, opts ...StoreOption) *ShardedStore {
	if shards <= 0 {
		shards = DefaultShards
	}
	st := &ShardedStore{cfg: defaultStoreConfig().apply(opts), shards: make([]*storeShard, shards)}
	for i := range st.shards {
		st.shards[i] = &storeShard{series: make(map[seriesID]*shardSeries), index: newTagIndex()}
	}
	return st
}

// Shards returns the shard count.
func (st *ShardedStore) Shards() int { return len(st.shards) }

// shardFor picks the node's shard with an inlined FNV-1a over the node
// string — hash/fnv would heap-allocate a hasher per insert on the ingest
// hot path.
func (st *ShardedStore) shardFor(node string) *storeShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(node); i++ {
		h ^= uint32(node[i])
		h *= prime32
	}
	return st.shards[h%uint32(len(st.shards))]
}

// Insert stores one sample in the node's shard.
func (st *ShardedStore) Insert(tags Tags, t, v float64) {
	sh := st.shardFor(tags.Node)
	sh.mu.Lock()
	st.insertLocked(sh, tags, t, v)
	sh.mu.Unlock()
}

// InsertBatch stores a batch. Batches from the plugins are single-node, so
// the common case takes one shard lock once; mixed-node batches fall back
// to per-sample locking.
func (st *ShardedStore) InsertBatch(batch []Sample) {
	if len(batch) == 0 {
		return
	}
	node := batch[0].Tags.Node
	for _, s := range batch[1:] {
		if s.Tags.Node != node {
			for _, s := range batch {
				st.Insert(s.Tags, s.T, s.V)
			}
			return
		}
	}
	sh := st.shardFor(node)
	sh.mu.Lock()
	for _, s := range batch {
		st.insertLocked(sh, s.Tags, s.T, s.V)
	}
	sh.mu.Unlock()
}

func (st *ShardedStore) insertLocked(sh *storeShard, tags Tags, t, v float64) {
	id := idOf(tags)
	s, ok := sh.series[id]
	if !ok {
		s = &shardSeries{seq: st.seq.Add(1), tags: tags}
		if st.cfg.rollupStep > 0 {
			s.roll = newSeriesRollup(st.cfg.rollupStep)
		}
		sh.index.add(len(sh.order), tags)
		sh.series[id] = s
		sh.order = append(sh.order, s)
	}
	s.pts = append(s.pts, Point{T: t, V: v})
	if s.roll != nil {
		s.roll.add(t, v)
	}
}

// Query returns copies of the matching series.
func (st *ShardedStore) Query(f Filter) []Series { return queryStorage(st, f) }

// snapshot collects the matching series across shards as stable lock-free
// views (shard storage is append-only, so a slice header copied under the
// read lock is a consistent immutable prefix), ordered by creation
// sequence so results are deterministic across shards. A node filter
// touches exactly one shard; otherwise the shards are snapshotted
// concurrently and merged. Each shard's read lock is held only long
// enough to copy slice headers (and, when requested, the in-range rollup
// buckets), never while a visit computes, so long aggregations do not
// stall ingest.
func (st *ShardedStore) snapshot(f Filter, withRollups bool) []seriesSnap {
	collect := func(sh *storeShard) []seriesSnap {
		var out []seriesSnap
		add := func(s *shardSeries) {
			if !f.matches(s.tags) {
				return
			}
			snap := seriesSnap{seq: s.seq, tags: s.tags, pts: PointsView{a: s.pts}}
			if withRollups {
				snap.roll = s.roll.snapshotRange(f.From, f.To)
			}
			out = append(out, snap)
		}
		sh.mu.RLock()
		if !st.cfg.linear {
			if cand, ok := sh.index.candidates(f); ok {
				for _, pos := range cand {
					add(sh.order[pos])
				}
				sh.mu.RUnlock()
				return out
			}
		}
		for _, s := range sh.order {
			add(s)
		}
		sh.mu.RUnlock()
		return out
	}
	if f.Node != "" {
		return collect(st.shardFor(f.Node))
	}
	parts := make([][]seriesSnap, len(st.shards))
	if !st.cfg.linear && runtime.GOMAXPROCS(0) > 1 {
		var wg sync.WaitGroup
		for i, sh := range st.shards {
			wg.Add(1)
			go func(i int, sh *storeShard) {
				defer wg.Done()
				parts[i] = collect(sh)
			}(i, sh)
		}
		wg.Wait()
	} else {
		for i, sh := range st.shards {
			parts[i] = collect(sh)
		}
	}
	var matched []seriesSnap
	for _, p := range parts {
		matched = append(matched, p...)
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].seq < matched[j].seq })
	return matched
}

// Scan visits matching series over a point-in-time snapshot; see snapshot
// for the locking and ordering guarantees.
func (st *ShardedStore) Scan(f Filter, visit func(tags Tags, pts PointsView) bool) {
	for _, s := range st.snapshot(f, false) {
		if !visit(s.tags, s.pts) {
			return
		}
	}
}

// snapshotSeries exposes the snapshot to the concurrent read fan-out.
func (st *ShardedStore) snapshotSeries(f Filter, withRollups bool) ([]seriesSnap, bool) {
	if st.cfg.linear {
		return nil, false
	}
	return st.snapshot(f, withRollups), true
}

func (st *ShardedStore) rollupStep() float64 { return st.cfg.rollupStep }

// SeriesCount returns the number of stored series.
func (st *ShardedStore) SeriesCount() int {
	n := 0
	for _, sh := range st.shards {
		n += lockedSeriesCount(&sh.mu, sh.series)
	}
	return n
}

// Keys lists all series keys, sorted. Unlike the single-lock engines it
// does not share keysOfStorage: routing through Scan would materialize a
// full cross-shard snapshot (and seq-sort it) just to list strings, so it
// walks the shard order slices directly — the final sort makes the
// cross-shard visit order irrelevant.
func (st *ShardedStore) Keys() []string {
	out := make([]string, 0, 16)
	for _, sh := range st.shards {
		sh.mu.RLock()
		for _, s := range sh.order {
			out = append(out, seriesKey(s.tags))
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}
