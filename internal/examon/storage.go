package examon

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Storage is the pluggable persistence engine behind TSDB. Three engines
// ship with the stack:
//
//   - MemStore ("mem"): the original unbounded append store — lowest
//     per-insert cost, memory grows with the run.
//   - RingStore ("ring"): bounded per-series ring buffers — constant
//     memory, retains the most recent points (count-based retention).
//   - ShardedStore ("sharded"): node-hashed shards over append storage —
//     concurrent ingest from many nodes without a global write lock.
//
// Contract shared by all engines (exercised by the conformance suite in
// storage_conformance_test.go):
//
//   - Insert/InsertBatch append points in arrival order. Series identity
//     is (Node, Plugin, Core, Metric) — the dimensions seriesKey renders
//     and Filter selects on; samples differing only in Org/Cluster extend
//     the same series, which keeps its first-seen full tag set (seed
//     semantics).
//   - Query returns deep copies of the matching series, time-filtered per
//     Filter, ordered by each series' first insertion.
//   - Scan visits matching series in the same order, passing a PointsView
//     over the engine's backing buffer with NO time filtering (callers
//     apply Filter.From/To via PointsView.Cursor; aggregators like rate
//     need the out-of-range predecessor point). The view is valid only for
//     the duration of the visit, which may run under the engine's read
//     lock (mem, ring) or over a lock-free snapshot (sharded): the visit
//     callback must not call back into the store and must not retain the
//     view. Returning false stops the scan.
//   - SeriesCount and Keys report the stored series; Keys is sorted.
//
// All methods are safe for concurrent use.
type Storage interface {
	// Insert stores one sample.
	Insert(tags Tags, t, v float64)
	// InsertBatch stores a batch of samples.
	InsertBatch(batch []Sample)
	// Query returns copies of the matching series, filtered to the time
	// range, ordered by first insertion.
	Query(f Filter) []Series
	// Scan visits each matching series' full point view under the
	// engine's read lock; see the interface comment for the contract.
	Scan(f Filter, visit func(tags Tags, pts PointsView) bool)
	// SeriesCount returns the number of stored series.
	SeriesCount() int
	// Keys lists all series keys, sorted.
	Keys() []string
}

// seriesID is the identity a stream is stored under: the dimensions that
// seriesKey renders and Filter can select on. Org and Cluster are scoping
// metadata, not identity — samples differing only there extend the same
// series (which keeps the first-seen full tag set), exactly like the seed
// string-keyed store.
type seriesID struct {
	node   string
	plugin string
	core   int
	metric string
}

func idOf(t Tags) seriesID {
	return seriesID{node: t.Node, plugin: t.Plugin, core: t.Core, metric: t.Metric}
}

// StorageBackends lists the registered engine names accepted by NewStorage.
func StorageBackends() []string { return []string{"mem", "ring", "sharded"} }

// Default sizing for the named backends.
const (
	// DefaultRingCapacity is the per-series point capacity of the "ring"
	// backend: at pmu_pub's 2 Hz it retains a bit over an hour per series.
	DefaultRingCapacity = 8192
	// DefaultShards is the shard count of the "sharded" backend.
	DefaultShards = 16
)

// NewStorage builds a storage engine by backend name ("" selects "mem").
func NewStorage(backend string) (Storage, error) {
	switch backend {
	case "", "mem":
		return NewMemStore(), nil
	case "ring":
		return NewRingStore(DefaultRingCapacity), nil
	case "sharded":
		return NewShardedStore(DefaultShards), nil
	}
	return nil, fmt.Errorf("examon: unknown storage backend %q (have %v)", backend, StorageBackends())
}

// queryStorage implements the copying Query in terms of Scan, shared by
// every engine.
func queryStorage(st Storage, f Filter) []Series {
	var out []Series
	st.Scan(f, func(tags Tags, pts PointsView) bool {
		cp := Series{Tags: tags}
		cur := pts.Cursor(f.From, f.To)
		for p, ok := cur.Next(); ok; p, ok = cur.Next() {
			cp.Points = append(cp.Points, p)
		}
		out = append(out, cp)
		return true
	})
	return out
}

// --- MemStore -----------------------------------------------------------

// memSeries is one append-only stream.
type memSeries struct {
	tags Tags
	pts  []Point
}

// MemStore is the unbounded in-memory append engine (the seed TSDB's
// storage, extracted behind the Storage interface).
type MemStore struct {
	mu     sync.RWMutex
	series map[seriesID]*memSeries
	order  []*memSeries
}

// NewMemStore returns an empty append store.
func NewMemStore() *MemStore {
	return &MemStore{series: make(map[seriesID]*memSeries)}
}

// Insert stores one sample.
func (st *MemStore) Insert(tags Tags, t, v float64) {
	st.mu.Lock()
	st.insertLocked(tags, t, v)
	st.mu.Unlock()
}

// InsertBatch stores a batch under a single lock acquisition.
func (st *MemStore) InsertBatch(batch []Sample) {
	if len(batch) == 0 {
		return
	}
	st.mu.Lock()
	for _, s := range batch {
		st.insertLocked(s.Tags, s.T, s.V)
	}
	st.mu.Unlock()
}

func (st *MemStore) insertLocked(tags Tags, t, v float64) {
	id := idOf(tags)
	s, ok := st.series[id]
	if !ok {
		s = &memSeries{tags: tags}
		st.series[id] = s
		st.order = append(st.order, s)
	}
	s.pts = append(s.pts, Point{T: t, V: v})
}

// Query returns copies of the matching series.
func (st *MemStore) Query(f Filter) []Series { return queryStorage(st, f) }

// Scan visits matching series under the read lock.
func (st *MemStore) Scan(f Filter, visit func(tags Tags, pts PointsView) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for _, s := range st.order {
		if !f.matches(s.tags) {
			continue
		}
		if !visit(s.tags, PointsView{a: s.pts}) {
			return
		}
	}
}

// SeriesCount returns the number of stored series.
func (st *MemStore) SeriesCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.series)
}

// Keys lists all series keys, sorted.
func (st *MemStore) Keys() []string {
	st.mu.RLock()
	out := make([]string, 0, len(st.order))
	for _, s := range st.order {
		out = append(out, seriesKey(s.tags))
	}
	st.mu.RUnlock()
	sort.Strings(out)
	return out
}

// --- RingStore ----------------------------------------------------------

// ringSeries is one bounded stream: a circular buffer of the most recent
// capacity points.
type ringSeries struct {
	tags Tags
	buf  []Point
	next int  // overwrite position once full
	full bool // len(buf) reached capacity
}

func (s *ringSeries) view() PointsView {
	if !s.full {
		return PointsView{a: s.buf}
	}
	return PointsView{a: s.buf[s.next:], b: s.buf[:s.next]}
}

// RingStore is the bounded retention engine: each series keeps the most
// recent Capacity points in a ring buffer, so memory stays constant over
// arbitrarily long runs (count-based retention; at a fixed sampling rate
// that is equivalent to a time window).
type RingStore struct {
	capacity int
	mu       sync.RWMutex
	series   map[seriesID]*ringSeries
	order    []*ringSeries
}

// NewRingStore returns an empty ring store holding up to capacity points
// per series (capacity <= 0 selects DefaultRingCapacity).
func NewRingStore(capacity int) *RingStore {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &RingStore{capacity: capacity, series: make(map[seriesID]*ringSeries)}
}

// Capacity returns the per-series point bound.
func (st *RingStore) Capacity() int { return st.capacity }

// Insert stores one sample, evicting the series' oldest point when full.
func (st *RingStore) Insert(tags Tags, t, v float64) {
	st.mu.Lock()
	st.insertLocked(tags, t, v)
	st.mu.Unlock()
}

// InsertBatch stores a batch under a single lock acquisition.
func (st *RingStore) InsertBatch(batch []Sample) {
	if len(batch) == 0 {
		return
	}
	st.mu.Lock()
	for _, s := range batch {
		st.insertLocked(s.Tags, s.T, s.V)
	}
	st.mu.Unlock()
}

func (st *RingStore) insertLocked(tags Tags, t, v float64) {
	id := idOf(tags)
	s, ok := st.series[id]
	if !ok {
		s = &ringSeries{tags: tags}
		st.series[id] = s
		st.order = append(st.order, s)
	}
	p := Point{T: t, V: v}
	if !s.full {
		s.buf = append(s.buf, p)
		if len(s.buf) == st.capacity {
			s.full = true
		}
		return
	}
	s.buf[s.next] = p
	s.next++
	if s.next == st.capacity {
		s.next = 0
	}
}

// Query returns copies of the matching series (retained window only).
func (st *RingStore) Query(f Filter) []Series { return queryStorage(st, f) }

// Scan visits matching series under the read lock.
func (st *RingStore) Scan(f Filter, visit func(tags Tags, pts PointsView) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for _, s := range st.order {
		if !f.matches(s.tags) {
			continue
		}
		if !visit(s.tags, s.view()) {
			return
		}
	}
}

// SeriesCount returns the number of stored series.
func (st *RingStore) SeriesCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.series)
}

// Keys lists all series keys, sorted.
func (st *RingStore) Keys() []string {
	st.mu.RLock()
	out := make([]string, 0, len(st.order))
	for _, s := range st.order {
		out = append(out, seriesKey(s.tags))
	}
	st.mu.RUnlock()
	sort.Strings(out)
	return out
}

// --- ShardedStore -------------------------------------------------------

// shardSeries is one stream plus its global creation sequence number, used
// to reconstruct a deterministic cross-shard order.
type shardSeries struct {
	seq  uint64
	tags Tags
	pts  []Point
}

type storeShard struct {
	mu     sync.RWMutex
	series map[seriesID]*shardSeries
	order  []*shardSeries
}

// ShardedStore spreads series across shards keyed by the node tag, so
// per-node ingest streams (the deployment has one publisher per node)
// contend only within their shard instead of on a global mutex.
type ShardedStore struct {
	seq    atomic.Uint64
	shards []*storeShard
}

// NewShardedStore returns an empty store with the given shard count
// (shards <= 0 selects DefaultShards).
func NewShardedStore(shards int) *ShardedStore {
	if shards <= 0 {
		shards = DefaultShards
	}
	st := &ShardedStore{shards: make([]*storeShard, shards)}
	for i := range st.shards {
		st.shards[i] = &storeShard{series: make(map[seriesID]*shardSeries)}
	}
	return st
}

// Shards returns the shard count.
func (st *ShardedStore) Shards() int { return len(st.shards) }

// shardFor picks the node's shard with an inlined FNV-1a over the node
// string — hash/fnv would heap-allocate a hasher per insert on the ingest
// hot path.
func (st *ShardedStore) shardFor(node string) *storeShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(node); i++ {
		h ^= uint32(node[i])
		h *= prime32
	}
	return st.shards[h%uint32(len(st.shards))]
}

// Insert stores one sample in the node's shard.
func (st *ShardedStore) Insert(tags Tags, t, v float64) {
	sh := st.shardFor(tags.Node)
	sh.mu.Lock()
	st.insertLocked(sh, tags, t, v)
	sh.mu.Unlock()
}

// InsertBatch stores a batch. Batches from the plugins are single-node, so
// the common case takes one shard lock once; mixed-node batches fall back
// to per-sample locking.
func (st *ShardedStore) InsertBatch(batch []Sample) {
	if len(batch) == 0 {
		return
	}
	node := batch[0].Tags.Node
	for _, s := range batch[1:] {
		if s.Tags.Node != node {
			for _, s := range batch {
				st.Insert(s.Tags, s.T, s.V)
			}
			return
		}
	}
	sh := st.shardFor(node)
	sh.mu.Lock()
	for _, s := range batch {
		st.insertLocked(sh, s.Tags, s.T, s.V)
	}
	sh.mu.Unlock()
}

func (st *ShardedStore) insertLocked(sh *storeShard, tags Tags, t, v float64) {
	id := idOf(tags)
	s, ok := sh.series[id]
	if !ok {
		s = &shardSeries{seq: st.seq.Add(1), tags: tags}
		sh.series[id] = s
		sh.order = append(sh.order, s)
	}
	s.pts = append(s.pts, Point{T: t, V: v})
}

// Query returns copies of the matching series.
func (st *ShardedStore) Query(f Filter) []Series { return queryStorage(st, f) }

// scanSnapshot is one matched series captured outside the shard locks.
// Shard storage is append-only, so a slice header copied under the read
// lock is a consistent immutable prefix of the series — the visit can then
// run without holding any lock, and ingest proceeds concurrently.
type scanSnapshot struct {
	seq  uint64
	tags Tags
	pts  []Point
}

// Scan visits matching series ordered by series creation sequence so
// results are deterministic across shards. Unlike the single-lock engines,
// the sharded store visits a point-in-time snapshot: each shard's read
// lock is held only long enough to copy the matching series' slice
// headers (a node filter touches exactly one shard), never while the
// visit callback computes, so long aggregations do not stall ingest.
func (st *ShardedStore) Scan(f Filter, visit func(tags Tags, pts PointsView) bool) {
	var matched []scanSnapshot
	snap := func(sh *storeShard) {
		sh.mu.RLock()
		for _, s := range sh.order {
			if f.matches(s.tags) {
				matched = append(matched, scanSnapshot{seq: s.seq, tags: s.tags, pts: s.pts})
			}
		}
		sh.mu.RUnlock()
	}
	if f.Node != "" {
		snap(st.shardFor(f.Node))
	} else {
		for _, sh := range st.shards {
			snap(sh)
		}
		sort.Slice(matched, func(i, j int) bool { return matched[i].seq < matched[j].seq })
	}
	for _, s := range matched {
		if !visit(s.tags, PointsView{a: s.pts}) {
			return
		}
	}
}

// SeriesCount returns the number of stored series.
func (st *ShardedStore) SeriesCount() int {
	n := 0
	for _, sh := range st.shards {
		sh.mu.RLock()
		n += len(sh.series)
		sh.mu.RUnlock()
	}
	return n
}

// Keys lists all series keys, sorted.
func (st *ShardedStore) Keys() []string {
	var out []string
	for _, sh := range st.shards {
		sh.mu.RLock()
		for _, s := range sh.order {
			out = append(out, seriesKey(s.tags))
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}
