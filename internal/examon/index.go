package examon

// The inverted tag index: every storage engine maintains posting lists
// per filterable tag dimension (Node, Plugin, Metric, Core), updated when
// a series is created, so a selective Scan intersects postings and visits
// only candidate series instead of walking every stored series. Postings
// hold positions into the engine's creation-order slice and are appended
// at series creation, so each list is already sorted in scan order — the
// index lookup picks the smallest applicable list and verifies the
// remaining dimensions with Filter.matches (cheap compared to walking the
// full series set). The linear walk is kept behind WithLinearScan as the
// benchmarked ablation, mirroring sched.WithLinearScan.

// tagIndex is the per-engine (per-shard for ShardedStore) inverted index.
// It is guarded by the owning engine's lock. The scoping dimensions (Org,
// Cluster) are indexed under a series' first-seen tags — the same tags
// Filter.matches verifies against — so federated stores holding several
// clusters' series answer per-cluster selections without a full walk.
type tagIndex struct {
	byOrg     map[string][]int32
	byCluster map[string][]int32
	byNode    map[string][]int32
	byPlugin  map[string][]int32
	byMetric  map[string][]int32
	byCore    map[int][]int32
}

func newTagIndex() *tagIndex {
	return &tagIndex{
		byOrg:     make(map[string][]int32),
		byCluster: make(map[string][]int32),
		byNode:    make(map[string][]int32),
		byPlugin:  make(map[string][]int32),
		byMetric:  make(map[string][]int32),
		byCore:    make(map[int][]int32),
	}
}

// add indexes a newly created series at the given creation-order position.
func (ix *tagIndex) add(pos int, t Tags) {
	p := int32(pos)
	ix.byOrg[t.Org] = append(ix.byOrg[t.Org], p)
	ix.byCluster[t.Cluster] = append(ix.byCluster[t.Cluster], p)
	ix.byNode[t.Node] = append(ix.byNode[t.Node], p)
	ix.byPlugin[t.Plugin] = append(ix.byPlugin[t.Plugin], p)
	ix.byMetric[t.Metric] = append(ix.byMetric[t.Metric], p)
	ix.byCore[t.Core] = append(ix.byCore[t.Core], p)
}

// candidates returns the smallest posting list among the filter's set
// dimensions, in creation order. ok is false when the filter selects no
// indexed dimension (match-everything scans walk the order slice
// directly). A set dimension with no postings returns an empty list with
// ok true: nothing can match.
func (ix *tagIndex) candidates(f Filter) (posting []int32, ok bool) {
	consider := func(list []int32) {
		if !ok || len(list) < len(posting) {
			posting, ok = list, true
		}
	}
	if f.Org != "" {
		consider(ix.byOrg[f.Org])
	}
	if f.Cluster != "" {
		consider(ix.byCluster[f.Cluster])
	}
	if f.Node != "" {
		consider(ix.byNode[f.Node])
	}
	if f.Plugin != "" {
		consider(ix.byPlugin[f.Plugin])
	}
	if f.Metric != "" {
		consider(ix.byMetric[f.Metric])
	}
	if f.Core != nil {
		consider(ix.byCore[*f.Core])
	}
	return posting, ok
}
