package examon

import (
	"fmt"

	"montecimone/internal/node"
	"montecimone/internal/perf"
	"montecimone/internal/power"
	"montecimone/internal/sim"
)

// Sampling rates from Section IV-B: pmu_pub samples the performance
// counters at 2 Hz; stats_pub samples the OS statistics at 0.2 Hz.
// power_pub publishes the shunt-derived rail powers at 1 Hz (the raw
// 1 kHz shunt stream is averaged on the node before publication).
const (
	PMUPubPeriod   = 0.5
	StatsPubPeriod = 5.0
	PowerPubPeriod = 1.0
)

// PMUPub is the per-node plugin publishing the hardware performance
// counters exposed by perf_events. In the deployed kernel only INSTRET and
// CYCLE are available; the programmable HPM counters appear once the
// authors' U-Boot patch is applied.
type PMUPub struct {
	broker  *Broker
	node    *node.Node
	org     string
	cluster string

	ticker  *sim.Ticker
	batch   []Sample     // per-tick scratch, reused across samples
	events  []perf.Event // counters this node exposes, fixed at Start
	publish func(*sim.Engine)
}

// NewPMUPub builds the plugin for one node.
func NewPMUPub(broker *Broker, nd *node.Node, org, cluster string) (*PMUPub, error) {
	if broker == nil || nd == nil {
		return nil, fmt.Errorf("examon: pmu_pub needs a broker and node")
	}
	if org == "" {
		org = DefaultOrg
	}
	if cluster == "" {
		cluster = DefaultCluster
	}
	return &PMUPub{broker: broker, node: nd, org: org, cluster: cluster}, nil
}

// Start begins sampling on the engine. Stop with Stop.
func (p *PMUPub) Start(engine *sim.Engine) error {
	if p.ticker != nil {
		return fmt.Errorf("examon: pmu_pub already started on %s", p.node.Hostname())
	}
	// The exposed counter set is a boot-time property (the U-Boot HPM
	// patch), so resolve it once here instead of rebuilding it every tick.
	p.events = append(p.events[:0], perf.FixedEvents...)
	if p.node.PMU().HPMEnabled() {
		p.events = append(p.events, perf.ProgrammableEvents...)
	}
	// Local tick: the sample integrates only this plugin's own node and
	// builds its batch in plugin-owned scratch, so a sharded engine runs
	// the whole callback on the node's shard worker; the broker publish is
	// deferred to the tick's commit position, keeping dispatch and storage
	// ingest in exact serial order. Node IDs are assigned 1..N in hostname
	// order, so ID-1 is the cluster's shard key for the node. The publish
	// closure is built once — a deferred tick allocates nothing.
	p.publish = func(*sim.Engine) { _ = p.broker.PublishBatch(p.batch) }
	tk, err := sim.NewLocalTicker(engine, engine.Now()+PMUPubPeriod, PMUPubPeriod,
		"examon.pmu_pub."+p.node.Hostname(), []int{p.node.ID() - 1}, p.sample)
	if err != nil {
		return fmt.Errorf("examon: %w", err)
	}
	p.ticker = tk
	return nil
}

// Stop halts sampling.
func (p *PMUPub) Stop() {
	if p.ticker != nil {
		p.ticker.Stop()
		p.ticker = nil
	}
}

func (p *PMUPub) sample(proc *sim.Proc, now float64) {
	// Bring the node model exactly to the sampling instant so counter
	// reads are independent of tick-interleaving with the cluster's
	// integration. Under lock-step this is a sub-period catch-up; under
	// demand-driven integration the sample IS the observation that
	// advances the node.
	p.node.SyncTo(now)
	if p.node.State() != node.StateRunning {
		return
	}
	pmu := p.node.PMU()
	// Typed fast path: one batch per node per tick instead of one string
	// publish per counter per core — nothing is rendered to the Table II
	// encoding unless a legacy string subscriber is attached.
	p.batch = p.batch[:0]
	hostname := p.node.Hostname()
	for core := 0; core < pmu.Harts(); core++ {
		for _, ev := range p.events {
			v, err := pmu.Read(core, ev)
			if err != nil {
				continue // disabled counters silently absent, as on the real node
			}
			p.batch = append(p.batch, Sample{
				Tags: Tags{Org: p.org, Cluster: p.cluster, Node: hostname,
					Plugin: "pmu_pub", Core: core, Metric: ev.String()},
				T: now, V: float64(v),
			})
		}
	}
	// Publish at the tick's commit position (immediately on the serial
	// loop). Errors cannot occur for well-formed tags; the plugin drops the
	// batch otherwise, like a QoS0 publisher. The scratch batch is safe to
	// hand over: ticks of one plugin are at least a period apart, so the
	// deferred publish always runs before the next tick rebuilds it.
	proc.Defer(p.publish)
}

// StatsPub is the per-node plugin collecting operating-system statistics
// from procfs/sysfs (Table III lists its metric groups).
type StatsPub struct {
	broker  *Broker
	node    *node.Node
	org     string
	cluster string

	ticker  *sim.Ticker
	batch   []Sample // per-tick scratch, reused across samples
	publish func(*sim.Engine)
}

// NewStatsPub builds the plugin for one node.
func NewStatsPub(broker *Broker, nd *node.Node, org, cluster string) (*StatsPub, error) {
	if broker == nil || nd == nil {
		return nil, fmt.Errorf("examon: stats_pub needs a broker and node")
	}
	if org == "" {
		org = DefaultOrg
	}
	if cluster == "" {
		cluster = DefaultCluster
	}
	return &StatsPub{broker: broker, node: nd, org: org, cluster: cluster}, nil
}

// Start begins sampling on the engine.
func (s *StatsPub) Start(engine *sim.Engine) error {
	if s.ticker != nil {
		return fmt.Errorf("examon: stats_pub already started on %s", s.node.Hostname())
	}
	// Local tick keyed by this node; see PMUPub.Start.
	s.publish = func(*sim.Engine) { _ = s.broker.PublishBatch(s.batch) }
	tk, err := sim.NewLocalTicker(engine, engine.Now()+StatsPubPeriod, StatsPubPeriod,
		"examon.stats_pub."+s.node.Hostname(), []int{s.node.ID() - 1}, s.sample)
	if err != nil {
		return fmt.Errorf("examon: %w", err)
	}
	s.ticker = tk
	return nil
}

// Stop halts sampling.
func (s *StatsPub) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
}

// StatsMetrics lists the Table III metric names in table order.
var StatsMetrics = []string{
	"load_avg.1m", "load_avg.5m", "load_avg.15m",
	"io_total.read", "io_total.writ",
	"procs.run", "procs.blk", "procs.new",
	"memory_usage.used", "memory_usage.free", "memory_usage.buff", "memory_usage.cach",
	"paging.in", "paging.out",
	"dsk_total.read", "dsk_total.writ",
	"system.int", "system.csw",
	"total_cpu_usage.usr", "total_cpu_usage.sys", "total_cpu_usage.idl",
	"total_cpu_usage.wai", "total_cpu_usage.stl",
	"net_total.recv", "net_total.send",
	"temperature.mb_temp", "temperature.cpu_temp", "temperature.nvme_temp",
}

func (s *StatsPub) sample(proc *sim.Proc, now float64) {
	s.node.SyncTo(now) // sync to the sampling instant (see PMUPub.sample)
	if s.node.State() != node.StateRunning {
		return
	}
	st := s.node.Stats()
	// values is aligned index-for-index with StatsMetrics (Table III
	// order); the array literal lives on the stack, so a tick builds the
	// batch without the string-keyed map the historical implementation
	// hashed 28 times per sample.
	values := [...]float64{
		st.Load1, st.Load5, st.Load15,
		st.IORead, st.IOWrite,
		st.ProcsRun, st.ProcsBlk, st.ProcsNew,
		st.MemUsed, st.MemFree, st.MemBuff, st.MemCach,
		st.PagingIn, st.PagingOut,
		st.DiskRead, st.DiskWrite,
		st.SystemInt, st.SystemCsw,
		st.CPUUsr, st.CPUSys, st.CPUIdl,
		st.CPUWai, st.CPUStl,
		st.NetRecv, st.NetSend,
		st.TempMB, st.TempCPU, st.TempNVMe,
	}
	// One typed batch per node per tick; see PMUPub.sample.
	s.batch = s.batch[:0]
	hostname := s.node.Hostname()
	for i, metric := range StatsMetrics {
		s.batch = append(s.batch, Sample{
			Tags: Tags{Org: s.org, Cluster: s.cluster, Node: hostname,
				Plugin: "dstat_pub", Core: -1, Metric: metric},
			T: now, V: values[i],
		})
	}
	proc.Defer(s.publish) // commit-ordered publish; see PMUPub.sample
}

// PowerPub is the per-node plugin publishing the nine shunt-monitored rail
// powers and their board total. Unlike pmu_pub and stats_pub it samples
// out of band (the shunt ADCs sit on the board, not behind the OS), so it
// publishes in every powered state — the cluster power plane needs boot
// and halt draw in its budget accounting, not just the OS-up draw.
type PowerPub struct {
	broker  *Broker
	node    *node.Node
	org     string
	cluster string

	ticker  *sim.Ticker
	batch   []Sample // per-tick scratch, reused across samples
	publish func(*sim.Engine)
}

// PowerTotalMetric is the power_pub metric carrying the nine-rail board
// total in milliwatts; the per-rail metrics are "power.<rail>".
const PowerTotalMetric = "power.total"

// powerRailMetrics precomputes the per-rail metric names in power.Rails
// order, so the 1 Hz per-node sampler doesn't concatenate nine strings
// per tick.
var powerRailMetrics = func() []string {
	names := make([]string, len(power.Rails))
	for i, rail := range power.Rails {
		names[i] = "power." + string(rail)
	}
	return names
}()

// NewPowerPub builds the plugin for one node.
func NewPowerPub(broker *Broker, nd *node.Node, org, cluster string) (*PowerPub, error) {
	if broker == nil || nd == nil {
		return nil, fmt.Errorf("examon: power_pub needs a broker and node")
	}
	if org == "" {
		org = DefaultOrg
	}
	if cluster == "" {
		cluster = DefaultCluster
	}
	return &PowerPub{broker: broker, node: nd, org: org, cluster: cluster}, nil
}

// Start begins sampling on the engine.
func (p *PowerPub) Start(engine *sim.Engine) error {
	if p.ticker != nil {
		return fmt.Errorf("examon: power_pub already started on %s", p.node.Hostname())
	}
	// Local tick keyed by this node; see PMUPub.Start.
	p.publish = func(*sim.Engine) { _ = p.broker.PublishBatch(p.batch) }
	tk, err := sim.NewLocalTicker(engine, engine.Now()+PowerPubPeriod, PowerPubPeriod,
		"examon.power_pub."+p.node.Hostname(), []int{p.node.ID() - 1}, p.sample)
	if err != nil {
		return fmt.Errorf("examon: %w", err)
	}
	p.ticker = tk
	return nil
}

// Stop halts sampling.
func (p *PowerPub) Stop() {
	if p.ticker != nil {
		p.ticker.Stop()
		p.ticker = nil
	}
}

func (p *PowerPub) sample(proc *sim.Proc, now float64) {
	p.node.SyncTo(now) // sync to the sampling instant (see PMUPub.sample)
	p.batch = p.batch[:0]
	hostname := p.node.Hostname()
	total := 0.0
	for i, rail := range power.Rails {
		mw := p.node.RailMilliwatts(rail)
		total += mw
		p.batch = append(p.batch, Sample{
			Tags: Tags{Org: p.org, Cluster: p.cluster, Node: hostname,
				Plugin: "power_pub", Core: -1, Metric: powerRailMetrics[i]},
			T: now, V: mw,
		})
	}
	p.batch = append(p.batch, Sample{
		Tags: Tags{Org: p.org, Cluster: p.cluster, Node: hostname,
			Plugin: "power_pub", Core: -1, Metric: PowerTotalMetric},
		T: now, V: total,
	})
	proc.Defer(p.publish) // commit-ordered publish; see PMUPub.sample
}
