package examon

import (
	"fmt"
	"math"
)

// The v2 query layer: server-side aggregation with step-based
// downsampling, computed directly over the storage engine's buffers via
// Scan/Cursor so a query never copies whole series. The dashboard heatmaps
// (BuildHeatmap) and the anomaly detector's ScanAll run on this layer, and
// the REST server exposes it as /api/v2/query.

// AggOp selects the per-bucket aggregation of QueryAgg.
type AggOp string

// Aggregation operators.
const (
	// AggAvg is the mean of the samples in each bucket.
	AggAvg AggOp = "avg"
	// AggMin and AggMax keep the bucket extremes.
	AggMin AggOp = "min"
	AggMax AggOp = "max"
	// AggSum is the sum of the samples in each bucket.
	AggSum AggOp = "sum"
	// AggRate first differences the cumulative series (Rate semantics:
	// pairs with non-positive dt are skipped, the rate point sits at the
	// right endpoint) and then averages the rates in each bucket. The
	// predecessor point just outside the time range still contributes,
	// exactly like the Fig. 5 pipeline's unbounded query + Rate + bin.
	AggRate AggOp = "rate"
)

// AggOptions configure QueryAgg.
type AggOptions struct {
	// Op is the per-bucket aggregation.
	Op AggOp
	// Step is the downsampling bucket width in seconds: bucket k covers
	// [From + k*Step, From + (k+1)*Step). Step <= 0 disables downsampling
	// and aggregates the whole time range into a single bucket at From.
	Step float64
}

// AggPoint is one downsampled bucket.
type AggPoint struct {
	// T is the bucket start time; V the aggregated value; N the number of
	// samples aggregated (rate samples for AggRate). Empty buckets are
	// not emitted, so N >= 1.
	T float64
	V float64
	N int
}

// AggSeries is one aggregated series. A matching series with no samples in
// range is still returned, with empty Points, so callers can distinguish
// "series exists but is silent here" from "no such series".
type AggSeries struct {
	Tags   Tags
	Points []AggPoint
}

// aggAccum is one bucket under construction.
type aggAccum struct {
	sum, min, max float64
	n             int
}

func (a *aggAccum) add(v float64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.sum += v
	a.n++
}

func (a *aggAccum) value(op AggOp) float64 {
	switch op {
	case AggMin:
		return a.min
	case AggMax:
		return a.max
	case AggSum:
		return a.sum
	default: // AggAvg, AggRate
		return a.sum / float64(a.n)
	}
}

// maxAggBuckets bounds a single QueryAgg's downsampling grid so a tiny
// step over a huge time range cannot exhaust memory.
const maxAggBuckets = 1 << 20

// QueryAgg runs an aggregating range query against a storage engine: the
// filter selects series and the time range, opts select the operator and
// the downsampling step. Matching series are returned in storage order.
func QueryAgg(st Storage, f Filter, opts AggOptions) ([]AggSeries, error) {
	if st == nil {
		return nil, fmt.Errorf("examon: nil storage")
	}
	switch opts.Op {
	case AggAvg, AggMin, AggMax, AggSum, AggRate:
	case "":
		return nil, fmt.Errorf("examon: aggregation operator required (have avg, min, max, sum, rate)")
	default:
		return nil, fmt.Errorf("examon: unknown aggregation operator %q", opts.Op)
	}
	if math.IsNaN(opts.Step) || math.IsInf(opts.Step, 0) || opts.Step < 0 {
		return nil, fmt.Errorf("examon: bad step %v", opts.Step)
	}
	if opts.Step > 0 && f.To != 0 && (f.To-f.From)/opts.Step > maxAggBuckets {
		return nil, fmt.Errorf("examon: step %v yields more than %d buckets over [%v,%v)",
			opts.Step, maxAggBuckets, f.From, f.To)
	}
	out := []AggSeries{}
	var aggErr error
	var buckets []aggAccum // reused across series
	st.Scan(f, func(tags Tags, pts PointsView) bool {
		for i := range buckets {
			buckets[i] = aggAccum{}
		}
		buckets, aggErr = aggregateView(buckets, pts, f, opts)
		if aggErr != nil {
			return false
		}
		agg := AggSeries{Tags: tags}
		for k := range buckets {
			if buckets[k].n == 0 {
				continue
			}
			t := f.From
			if opts.Step > 0 {
				t += float64(k) * opts.Step
			}
			agg.Points = append(agg.Points, AggPoint{T: t, V: buckets[k].value(opts.Op), N: buckets[k].n})
		}
		out = append(out, agg)
		return true
	})
	if aggErr != nil {
		return nil, aggErr
	}
	return out, nil
}

// aggregateView fills buckets from one series view, growing the bucket
// slice as needed, and returns it.
func aggregateView(buckets []aggAccum, pts PointsView, f Filter, opts AggOptions) ([]aggAccum, error) {
	var err error
	add := func(t, v float64) {
		k := 0
		if opts.Step > 0 {
			// Compare as float before converting: a quotient beyond the
			// int range would make the conversion implementation-defined
			// and could silently skip the bucket-cap error below.
			q := math.Floor((t - f.From) / opts.Step)
			if q < 0 {
				return
			}
			if q >= maxAggBuckets {
				err = fmt.Errorf("examon: step %v yields more than %d buckets (sample at t=%v)",
					opts.Step, maxAggBuckets, t)
				return
			}
			k = int(q)
		}
		for k >= len(buckets) {
			buckets = append(buckets, aggAccum{})
		}
		buckets[k].add(v)
	}
	if opts.Op == AggRate {
		// Difference the raw series first: the predecessor of the first
		// in-range point may itself be out of range, so iterate the full
		// view and range-filter the resulting rate points.
		n := pts.Len()
		for i := 1; i < n && err == nil; i++ {
			prev, p := pts.At(i-1), pts.At(i)
			dt := p.T - prev.T
			if dt <= 0 {
				continue
			}
			if p.T < f.From || (f.To != 0 && p.T >= f.To) {
				continue
			}
			add(p.T, (p.V-prev.V)/dt)
		}
		return buckets, err
	}
	cur := pts.Cursor(f.From, f.To)
	for p, ok := cur.Next(); ok && err == nil; p, ok = cur.Next() {
		add(p.T, p.V)
	}
	return buckets, err
}
