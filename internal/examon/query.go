package examon

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// The v2 query layer: server-side aggregation with step-based
// downsampling, computed directly over the storage engine's buffers via
// Scan/Cursor so a query never copies whole series. The dashboard heatmaps
// (BuildHeatmap) and the anomaly detector's ScanAll run on this layer, and
// the REST server exposes it as /api/v2/query.
//
// Three read-path fast layers sit under QueryAgg, each with a fallback:
// the inverted tag index narrows which series are visited (index.go), the
// snapshot fan-out aggregates many matched series concurrently with an
// order-preserving merge (storage.go), and aligned coarse-step queries
// are answered from the ingest-time rollup tiers without touching raw
// points (rollup.go). Engines built WithLinearScan bypass all three — the
// benchmarked ablation.

// AggOp selects the per-bucket aggregation of QueryAgg.
type AggOp string

// Aggregation operators.
const (
	// AggAvg is the mean of the samples in each bucket.
	AggAvg AggOp = "avg"
	// AggMin and AggMax keep the bucket extremes.
	AggMin AggOp = "min"
	AggMax AggOp = "max"
	// AggSum is the sum of the samples in each bucket.
	AggSum AggOp = "sum"
	// AggRate first differences the cumulative series (Rate semantics:
	// pairs with non-positive dt are skipped, the rate point sits at the
	// right endpoint) and then averages the rates in each bucket. The
	// predecessor point just outside the time range still contributes,
	// exactly like the Fig. 5 pipeline's unbounded query + Rate + bin.
	AggRate AggOp = "rate"
)

// AggOptions configure QueryAgg.
type AggOptions struct {
	// Op is the per-bucket aggregation.
	Op AggOp
	// Step is the downsampling bucket width in seconds: bucket k covers
	// [From + k*Step, From + (k+1)*Step). Step <= 0 disables downsampling
	// and aggregates the whole time range into a single bucket at From.
	Step float64
}

// AggPoint is one downsampled bucket.
type AggPoint struct {
	// T is the bucket start time; V the aggregated value; N the number of
	// samples aggregated (rate samples for AggRate). Empty buckets are
	// not emitted, so N >= 1.
	T float64
	V float64
	N int
}

// AggSeries is one aggregated series. A matching series with no samples in
// range is still returned, with empty Points, so callers can distinguish
// "series exists but is silent here" from "no such series".
type AggSeries struct {
	Tags   Tags
	Points []AggPoint
}

// aggAccum is one bucket under construction.
type aggAccum struct {
	sum, min, max float64
	n             int
}

func (a *aggAccum) add(v float64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.sum += v
	a.n++
}

func (a *aggAccum) value(op AggOp) float64 {
	switch op {
	case AggMin:
		return a.min
	case AggMax:
		return a.max
	case AggSum:
		return a.sum
	default: // AggAvg, AggRate
		return a.sum / float64(a.n)
	}
}

// maxAggBuckets bounds a single QueryAgg's downsampling grid so a tiny
// step over a huge time range cannot exhaust memory.
const maxAggBuckets = 1 << 20

// storageUnwrapper lets wrappers (TSDB) expose their backing engine, so
// the snapshot fan-out and rollup fast paths survive the indirection.
type storageUnwrapper interface{ Storage() Storage }

// rollupServed counts series answered from rollup tiers instead of raw
// points — observability for the read path, pinned by the tests.
var rollupServed atomic.Uint64

// QueryAgg runs an aggregating range query against a storage engine: the
// filter selects series and the time range, opts select the operator and
// the downsampling step. Matching series are returned in storage order.
func QueryAgg(st Storage, f Filter, opts AggOptions) ([]AggSeries, error) {
	return QueryAggInto(nil, st, f, opts)
}

// QueryAggInto is QueryAgg appending into dst, so periodic callers (the
// power plane's control loop, dashboard pollers) can reuse one result
// slice across queries instead of reallocating it every tick.
func QueryAggInto(dst []AggSeries, st Storage, f Filter, opts AggOptions) ([]AggSeries, error) {
	if st == nil {
		return nil, fmt.Errorf("examon: nil storage")
	}
	switch opts.Op {
	case AggAvg, AggMin, AggMax, AggSum, AggRate:
	case "":
		return nil, fmt.Errorf("examon: aggregation operator required (have avg, min, max, sum, rate)")
	default:
		return nil, fmt.Errorf("examon: unknown aggregation operator %q", opts.Op)
	}
	if math.IsNaN(opts.Step) || math.IsInf(opts.Step, 0) || opts.Step < 0 {
		return nil, fmt.Errorf("examon: bad step %v", opts.Step)
	}
	if opts.Step > 0 && f.To != 0 && (f.To-f.From)/opts.Step > maxAggBuckets {
		return nil, fmt.Errorf("examon: step %v yields more than %d buckets over [%v,%v)",
			opts.Step, maxAggBuckets, f.From, f.To)
	}
	if u, ok := st.(storageUnwrapper); ok {
		st = u.Storage()
	}
	if sn, ok := st.(snapshotter); ok {
		withRollups := rollupAligned(f, opts, sn.rollupStep())
		if snaps, ok := sn.snapshotSeries(f, withRollups); ok {
			return aggSnapshots(dst, snaps, f, opts)
		}
	}
	// Sequential fallback: aggregate under the engine's Scan (linear-scan
	// ablation, or an engine without lock-free snapshots).
	out := dst
	var aggErr error
	var buckets []aggAccum // reused across series
	st.Scan(f, func(tags Tags, pts PointsView) bool {
		for i := range buckets {
			buckets[i] = aggAccum{}
		}
		buckets, aggErr = aggregateView(buckets, pts, f, opts)
		if aggErr != nil {
			return false
		}
		out = append(out, AggSeries{Tags: tags, Points: bucketPoints(buckets, f, opts)})
		return true
	})
	if aggErr != nil {
		return nil, aggErr
	}
	if out == nil {
		out = []AggSeries{}
	}
	return out, nil
}

// aggSnapshots aggregates a matched-series snapshot, fanning the series
// out across cores (parallelFor chunks) with the results merged back in
// scan order. Each series is aggregated wholly within one goroutine, so
// per-series results are identical to the sequential path; the snapshot's
// order is preserved by indexed assignment.
func aggSnapshots(dst []AggSeries, snaps []seriesSnap, f Filter, opts AggOptions) ([]AggSeries, error) {
	res := make([]AggSeries, len(snaps))
	var (
		errMu    sync.Mutex
		firstErr error
	)
	parallelFor(len(snaps), func(start, end int) {
		var buckets []aggAccum // reused across this chunk's series
		for i := start; i < end; i++ {
			s := snaps[i]
			for k := range buckets {
				buckets[k] = aggAccum{}
			}
			var err error
			if s.roll != nil {
				buckets, err = aggregateRollup(buckets, s.roll, f, opts)
				rollupServed.Add(1)
			} else {
				buckets, err = aggregateView(buckets, s.pts, f, opts)
			}
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			res[i] = AggSeries{Tags: s.tags, Points: bucketPoints(buckets, f, opts)}
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	out := append(dst, res...)
	if out == nil {
		out = []AggSeries{}
	}
	return out, nil
}

// bucketPoints renders populated buckets as AggPoints, sized exactly from
// the populated-bucket count. A series with no populated buckets keeps
// nil Points (matching the append-grown behavior).
func bucketPoints(buckets []aggAccum, f Filter, opts AggOptions) []AggPoint {
	populated := 0
	for k := range buckets {
		if buckets[k].n > 0 {
			populated++
		}
	}
	if populated == 0 {
		return nil
	}
	pts := make([]AggPoint, 0, populated)
	for k := range buckets {
		if buckets[k].n == 0 {
			continue
		}
		t := f.From
		if opts.Step > 0 {
			t += float64(k) * opts.Step
		}
		pts = append(pts, AggPoint{T: t, V: buckets[k].value(opts.Op), N: buckets[k].n})
	}
	return pts
}

// aggregateRollup fills buckets from one series' rollup tier instead of
// its raw points. rollupAligned guarantees every raw point in range is
// covered by whole in-range rollup buckets, so counts and min/max are
// identical to the raw computation and sums regroup the same additions.
func aggregateRollup(buckets []aggAccum, roll *rollupSnap, f Filter, opts AggOptions) ([]aggAccum, error) {
	m := int64(opts.Step / roll.step) // exact: rollupAligned checked divisibility
	q0 := int64(math.Floor(f.From / roll.step))
	qEnd := int64(math.MaxInt64)
	if f.To != 0 {
		qEnd = int64(math.Floor(f.To / roll.step))
	}
	for j := range roll.buckets {
		rb := &roll.buckets[j]
		if rb.n == 0 {
			continue
		}
		b := roll.first + int64(j)
		if b < q0 || b >= qEnd {
			continue
		}
		k64 := (b - q0) / m
		if k64 >= maxAggBuckets {
			return buckets, fmt.Errorf("examon: step %v yields more than %d buckets (rollup bucket at t=%v)",
				opts.Step, maxAggBuckets, float64(b)*roll.step)
		}
		k := int(k64)
		for k >= len(buckets) {
			buckets = append(buckets, aggAccum{})
		}
		a := &buckets[k]
		if a.n == 0 || rb.min < a.min {
			a.min = rb.min
		}
		if a.n == 0 || rb.max > a.max {
			a.max = rb.max
		}
		a.sum += rb.sum
		a.n += rb.n
	}
	return buckets, nil
}

// aggregateView fills buckets from one series view, growing the bucket
// slice as needed, and returns it.
func aggregateView(buckets []aggAccum, pts PointsView, f Filter, opts AggOptions) ([]aggAccum, error) {
	var err error
	add := func(t, v float64) {
		k := 0
		if opts.Step > 0 {
			// Compare as float before converting: a quotient beyond the
			// int range would make the conversion implementation-defined
			// and could silently skip the bucket-cap error below.
			q := math.Floor((t - f.From) / opts.Step)
			if q < 0 {
				return
			}
			if q >= maxAggBuckets {
				err = fmt.Errorf("examon: step %v yields more than %d buckets (sample at t=%v)",
					opts.Step, maxAggBuckets, t)
				return
			}
			k = int(q)
		}
		for k >= len(buckets) {
			buckets = append(buckets, aggAccum{})
		}
		buckets[k].add(v)
	}
	if opts.Op == AggRate {
		// Difference the raw series first: the predecessor of the first
		// in-range point may itself be out of range, so iterate the full
		// view and range-filter the resulting rate points.
		n := pts.Len()
		for i := 1; i < n && err == nil; i++ {
			prev, p := pts.At(i-1), pts.At(i)
			dt := p.T - prev.T
			if dt <= 0 {
				continue
			}
			if p.T < f.From || (f.To != 0 && p.T >= f.To) {
				continue
			}
			add(p.T, (p.V-prev.V)/dt)
		}
		return buckets, err
	}
	cur := pts.Cursor(f.From, f.To)
	for p, ok := cur.Next(); ok && err == nil; p, ok = cur.Next() {
		add(p.T, p.V)
	}
	return buckets, err
}
