package examon

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func restFixture(t *testing.T, st Storage) *httptest.Server {
	t.Helper()
	for n := 1; n <= 2; n++ {
		for core := 0; core < 2; core++ {
			tags := confTags(n, core, "instret")
			for i := 0; i <= 8; i++ {
				st.Insert(tags, float64(i), float64(i*n*10))
			}
		}
		tags := confTags(n, -1, "temperature.cpu_temp")
		for i := 0; i <= 8; i++ {
			st.Insert(tags, float64(i), 40+float64(n))
		}
	}
	srv, err := NewRESTServer(st)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	res, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, string(body)
}

// TestQueryV1EmptyResultIsArray is the regression test for the JSON null
// bug: a v1 query with no matching series must return "series": [].
func TestQueryV1EmptyResultIsArray(t *testing.T) {
	ts := restFixture(t, NewMemStore())
	for _, tc := range []struct {
		path       string
		wantSeries int
	}{
		{"/api/v1/query?node=mc99", 0},
		{"/api/v2/query?node=mc99", 0},
		{"/api/v2/query?node=mc99&agg=avg", 0},
		// A matching series with no samples in range must render
		// "points": [], not null — raw and aggregated, both versions.
		{"/api/v1/query?node=mc01&metric=temperature.cpu_temp&from=100&to=200", 1},
		{"/api/v2/query?node=mc01&metric=temperature.cpu_temp&from=100&to=200", 1},
		{"/api/v2/query?node=mc01&metric=temperature.cpu_temp&agg=avg&from=100&to=200", 1},
	} {
		code, body := get(t, ts, tc.path)
		if code != 200 {
			t.Fatalf("%s -> %d", tc.path, code)
		}
		if strings.Contains(body, "null") {
			t.Errorf("%s returned JSON null: %s", tc.path, body)
		}
		var resp struct {
			Series []json.RawMessage `json:"series"`
		}
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if resp.Series == nil || len(resp.Series) != tc.wantSeries {
			t.Errorf("%s series = %v, want %d entries", tc.path, resp.Series, tc.wantSeries)
		}
	}
}

// TestQueryV1V2Equivalence pins the compatibility contract: an
// unaggregated v2 query answers byte-for-byte like v1, on every storage
// engine.
func TestQueryV1V2Equivalence(t *testing.T) {
	for name, mk := range conformanceEngines() {
		t.Run(name, func(t *testing.T) {
			ts := restFixture(t, mk())
			for _, query := range []string{
				"?metric=instret",
				"?node=mc01&plugin=pmu_pub&metric=instret&core=1",
				"?metric=temperature.cpu_temp&from=2&to=6",
				"?node=mc02",
				"?node=mc99",
			} {
				code1, body1 := get(t, ts, "/api/v1/query"+query)
				code2, body2 := get(t, ts, "/api/v2/query"+query)
				if code1 != 200 || code2 != 200 {
					t.Fatalf("%s -> v1 %d, v2 %d", query, code1, code2)
				}
				if body1 != body2 {
					t.Errorf("%s: v1 and v2 diverge:\nv1: %s\nv2: %s", query, body1, body2)
				}
			}
		})
	}
}

func TestQueryV2Aggregation(t *testing.T) {
	ts := restFixture(t, NewMemStore())
	code, body := get(t, ts, "/api/v2/query?node=mc01&metric=temperature.cpu_temp&agg=avg&step=4&from=0&to=8")
	if code != 200 {
		t.Fatalf("agg query -> %d: %s", code, body)
	}
	var resp struct {
		Series []struct {
			Node   string       `json:"node"`
			Metric string       `json:"metric"`
			Points [][3]float64 `json:"points"`
		} `json:"series"`
		Agg  string  `json:"agg"`
		Step float64 `json:"step"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Agg != "avg" || resp.Step != 4 {
		t.Errorf("echo = %q/%v", resp.Agg, resp.Step)
	}
	if len(resp.Series) != 1 {
		t.Fatalf("series = %+v", resp.Series)
	}
	pts := resp.Series[0].Points
	// Two buckets of the constant 41-degree gauge: [0,4) holds 4 samples,
	// [4,8) holds 4.
	if len(pts) != 2 || pts[0] != [3]float64{0, 41, 4} || pts[1] != [3]float64{4, 41, 4} {
		t.Errorf("points = %v", pts)
	}

	// Rate aggregation over the cumulative counter.
	code, body = get(t, ts, "/api/v2/query?node=mc02&metric=instret&core=0&agg=rate&from=1&to=8")
	if code != 200 {
		t.Fatalf("rate query -> %d", code)
	}
	var rate struct {
		Series []struct {
			Points [][3]float64 `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &rate); err != nil {
		t.Fatal(err)
	}
	if len(rate.Series) != 1 || len(rate.Series[0].Points) != 1 {
		t.Fatalf("rate series = %+v", rate.Series)
	}
	if p := rate.Series[0].Points[0]; p[1] != 20 || p[2] != 7 {
		t.Errorf("mc02 rate bucket = %v, want rate 20 over 7 samples", p)
	}
}

func TestQueryV2BadParameters(t *testing.T) {
	ts := restFixture(t, NewMemStore())
	for _, path := range []string{
		"/api/v2/query?core=banana",
		"/api/v2/query?from=xyz",
		"/api/v2/query?agg=median",
		"/api/v2/query?agg=avg&step=-1",
		"/api/v2/query?agg=avg&step=x",
	} {
		code, _ := get(t, ts, path)
		if code != 400 {
			t.Errorf("%s -> %d, want 400", path, code)
		}
	}
	res, err := ts.Client().Post(ts.URL+"/api/v2/query", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 405 {
		t.Errorf("POST -> %d, want 405", res.StatusCode)
	}
}

// --- streaming encoder equivalence ---------------------------------------

// oldRawResponse replicates the pre-streaming handler: response structs
// filled from Query, rendered through encoding/json. The streaming
// encoder must reproduce it byte for byte.
func oldRawResponse(t *testing.T, st Storage, f Filter) string {
	t.Helper()
	type seriesResponse struct {
		Node   string       `json:"node"`
		Plugin string       `json:"plugin"`
		Core   int          `json:"core"`
		Metric string       `json:"metric"`
		Points [][2]float64 `json:"points"`
	}
	resp := []seriesResponse{}
	for _, series := range st.Query(f) {
		sr := seriesResponse{
			Node:   series.Tags.Node,
			Plugin: series.Tags.Plugin,
			Core:   series.Tags.Core,
			Metric: series.Tags.Metric,
			Points: [][2]float64{},
		}
		for _, p := range series.Points {
			sr.Points = append(sr.Points, [2]float64{p.T, p.V})
		}
		resp = append(resp, sr)
	}
	body, err := json.Marshal(map[string]any{"series": resp})
	if err != nil {
		t.Fatal(err)
	}
	return string(body) + "\n"
}

func oldAggResponse(t *testing.T, st Storage, f Filter, op string, step float64) string {
	t.Helper()
	type aggSeriesResponse struct {
		Node   string       `json:"node"`
		Plugin string       `json:"plugin"`
		Core   int          `json:"core"`
		Metric string       `json:"metric"`
		Points [][3]float64 `json:"points"`
	}
	agg, err := QueryAgg(st, f, AggOptions{Op: AggOp(op), Step: step})
	if err != nil {
		t.Fatal(err)
	}
	resp := []aggSeriesResponse{}
	for _, series := range agg {
		sr := aggSeriesResponse{
			Node:   series.Tags.Node,
			Plugin: series.Tags.Plugin,
			Core:   series.Tags.Core,
			Metric: series.Tags.Metric,
			Points: [][3]float64{},
		}
		for _, p := range series.Points {
			sr.Points = append(sr.Points, [3]float64{p.T, p.V, float64(p.N)})
		}
		resp = append(resp, sr)
	}
	body, err := json.Marshal(map[string]any{"series": resp, "agg": op, "step": step})
	if err != nil {
		t.Fatal(err)
	}
	return string(body) + "\n"
}

// TestStreamedJSONMatchesEncodingJSON pins the streaming encoder against
// the pre-refactor encoding/json output, including float edge cases the
// 'f'/'e' form switch must reproduce exactly.
func TestStreamedJSONMatchesEncodingJSON(t *testing.T) {
	st := NewMemStore()
	weird := confTags(9, -1, "weird/metric.name")
	for i, v := range []float64{
		0, 1, -1, 0.5, 2.5e-7, 1e-6, 9.999999e-7, 1e21, 1.25e21, -3.75e22,
		1e20, 123456789.123456789, -0.001, 42,
	} {
		st.Insert(weird, float64(i)+0.125, v)
	}
	ts := restFixture(t, st) // adds the standard fixture series on top
	for _, q := range []string{
		"?",
		"?node=mc09",
		"?metric=instret&from=2&to=6",
		"?node=mc99",
	} {
		want := oldRawResponse(t, st, mustFilter(t, q))
		for _, path := range []string{"/api/v1/query", "/api/v2/query"} {
			code, body := get(t, ts, path+q)
			if code != 200 {
				t.Fatalf("%s%s -> %d", path, q, code)
			}
			if body != want {
				t.Errorf("%s%s streamed body diverges from encoding/json:\ngot:  %s\nwant: %s", path, q, body, want)
			}
		}
	}
	for _, tc := range []struct {
		query string
		f     Filter
		op    string
		step  float64
	}{
		{"/api/v2/query?node=mc09&agg=avg&step=4", Filter{Node: "mc09"}, "avg", 4},
		{"/api/v2/query?agg=max", Filter{}, "max", 0},
		{"/api/v2/query?node=mc02&metric=instret&core=0&agg=rate&from=1&to=8",
			Filter{Node: "mc02", Metric: "instret", Core: intPtr(0), From: 1, To: 8}, "rate", 0},
	} {
		want := oldAggResponse(t, st, tc.f, tc.op, tc.step)
		code, body := get(t, ts, tc.query)
		if code != 200 {
			t.Fatalf("%s -> %d", tc.query, code)
		}
		if body != want {
			t.Errorf("%s streamed agg body diverges:\ngot:  %s\nwant: %s", tc.query, body, want)
		}
	}
	// /api/v1/series too.
	keys, err := json.Marshal(map[string]any{"series": st.Keys()})
	if err != nil {
		t.Fatal(err)
	}
	if code, body := get(t, ts, "/api/v1/series"); code != 200 || body != string(keys)+"\n" {
		t.Errorf("series body diverges:\ngot:  %s\nwant: %s", body, keys)
	}
}

// mustFilter parses a fixture query string through the production parser.
func mustFilter(t *testing.T, rawQuery string) Filter {
	t.Helper()
	req := httptest.NewRequest("GET", "/api/v1/query"+rawQuery, nil)
	f, err := parseFilter(req)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestQueryLimitGuard pins the optional raw-query limit: under the cap
// the response is identical to the unlimited one, over it the server
// refuses with 413 instead of serializing unboundedly — on the snapshot
// engines and on the bounded copy-out fallback (ring, linear-scan).
func TestQueryLimitGuard(t *testing.T) {
	for name, mk := range map[string]func() Storage{
		"mem":        func() Storage { return NewMemStore() },
		"ring":       func() Storage { return NewRingStore(1 << 12) },
		"mem-linear": func() Storage { return NewMemStore(WithLinearScan(true)) },
	} {
		t.Run(name, func(t *testing.T) {
			ts := restFixture(t, mk())
			_, unlimited := get(t, ts, "/api/v1/query?node=mc01")
			for _, path := range []string{"/api/v1/query", "/api/v2/query"} {
				if code, body := get(t, ts, path+"?node=mc01&limit=1000"); code != 200 || body != unlimited {
					t.Errorf("%s under-limit response diverges (code %d)", path, code)
				}
				if code, _ := get(t, ts, path+"?node=mc01&limit=5"); code != 413 {
					t.Errorf("%s over-limit -> %d, want 413", path, code)
				}
				for _, bad := range []string{"x", "-1", "1.5"} {
					if code, _ := get(t, ts, path+"?node=mc01&limit="+bad); code != 400 {
						t.Errorf("%s limit=%s -> %d, want 400", path, bad, code)
					}
				}
			}
		})
	}
}

// TestJSONFloatEncoding sweeps the append encoder against json.Marshal on
// generated floats, including the e-form exponent-trim path.
func TestJSONFloatEncoding(t *testing.T) {
	vals := []float64{
		0, 1, -1, 0.1, -0.25, 1e-6, 1e-7, 9.999999e-7, 1e21, 1e22, -1e21,
		5e-324, 1.7976931348623157e308, 123.456, 1e20, 3.14159265358979,
	}
	for i := 1; i < 40; i++ {
		vals = append(vals, 1.0/float64(i), float64(i)*1e19, float64(i)*1e-8)
	}
	for _, v := range vals {
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := appendJSONFloat(nil, v)
		if !ok || string(got) != string(want) {
			t.Errorf("appendJSONFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if _, ok := appendJSONFloat(nil, math.NaN()); ok {
		t.Error("NaN encoded")
	}
	if _, ok := appendJSONFloat(nil, math.Inf(1)); ok {
		t.Error("Inf encoded")
	}
}

// TestJSONStringEncoding pins the escape fallback against json.Marshal.
func TestJSONStringEncoding(t *testing.T) {
	for _, s := range []string{
		"", "mc01", "temperature.cpu_temp", "a/b", "with space",
		`quote"inside`, `back\slash`, "tab\there", "html<&>", "unicode-°C-日本",
		"ctrl\x01", " sep",
	} {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONString(nil, s); string(got) != string(want) {
			t.Errorf("appendJSONString(%q) = %s, want %s", s, got, want)
		}
	}
}
