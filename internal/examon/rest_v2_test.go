package examon

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func restFixture(t *testing.T, st Storage) *httptest.Server {
	t.Helper()
	for n := 1; n <= 2; n++ {
		for core := 0; core < 2; core++ {
			tags := confTags(n, core, "instret")
			for i := 0; i <= 8; i++ {
				st.Insert(tags, float64(i), float64(i*n*10))
			}
		}
		tags := confTags(n, -1, "temperature.cpu_temp")
		for i := 0; i <= 8; i++ {
			st.Insert(tags, float64(i), 40+float64(n))
		}
	}
	srv, err := NewRESTServer(st)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	res, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, string(body)
}

// TestQueryV1EmptyResultIsArray is the regression test for the JSON null
// bug: a v1 query with no matching series must return "series": [].
func TestQueryV1EmptyResultIsArray(t *testing.T) {
	ts := restFixture(t, NewMemStore())
	for _, tc := range []struct {
		path       string
		wantSeries int
	}{
		{"/api/v1/query?node=mc99", 0},
		{"/api/v2/query?node=mc99", 0},
		{"/api/v2/query?node=mc99&agg=avg", 0},
		// A matching series with no samples in range must render
		// "points": [], not null — raw and aggregated, both versions.
		{"/api/v1/query?node=mc01&metric=temperature.cpu_temp&from=100&to=200", 1},
		{"/api/v2/query?node=mc01&metric=temperature.cpu_temp&from=100&to=200", 1},
		{"/api/v2/query?node=mc01&metric=temperature.cpu_temp&agg=avg&from=100&to=200", 1},
	} {
		code, body := get(t, ts, tc.path)
		if code != 200 {
			t.Fatalf("%s -> %d", tc.path, code)
		}
		if strings.Contains(body, "null") {
			t.Errorf("%s returned JSON null: %s", tc.path, body)
		}
		var resp struct {
			Series []json.RawMessage `json:"series"`
		}
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if resp.Series == nil || len(resp.Series) != tc.wantSeries {
			t.Errorf("%s series = %v, want %d entries", tc.path, resp.Series, tc.wantSeries)
		}
	}
}

// TestQueryV1V2Equivalence pins the compatibility contract: an
// unaggregated v2 query answers byte-for-byte like v1, on every storage
// engine.
func TestQueryV1V2Equivalence(t *testing.T) {
	for name, mk := range conformanceEngines() {
		t.Run(name, func(t *testing.T) {
			ts := restFixture(t, mk())
			for _, query := range []string{
				"?metric=instret",
				"?node=mc01&plugin=pmu_pub&metric=instret&core=1",
				"?metric=temperature.cpu_temp&from=2&to=6",
				"?node=mc02",
				"?node=mc99",
			} {
				code1, body1 := get(t, ts, "/api/v1/query"+query)
				code2, body2 := get(t, ts, "/api/v2/query"+query)
				if code1 != 200 || code2 != 200 {
					t.Fatalf("%s -> v1 %d, v2 %d", query, code1, code2)
				}
				if body1 != body2 {
					t.Errorf("%s: v1 and v2 diverge:\nv1: %s\nv2: %s", query, body1, body2)
				}
			}
		})
	}
}

func TestQueryV2Aggregation(t *testing.T) {
	ts := restFixture(t, NewMemStore())
	code, body := get(t, ts, "/api/v2/query?node=mc01&metric=temperature.cpu_temp&agg=avg&step=4&from=0&to=8")
	if code != 200 {
		t.Fatalf("agg query -> %d: %s", code, body)
	}
	var resp struct {
		Series []struct {
			Node   string       `json:"node"`
			Metric string       `json:"metric"`
			Points [][3]float64 `json:"points"`
		} `json:"series"`
		Agg  string  `json:"agg"`
		Step float64 `json:"step"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Agg != "avg" || resp.Step != 4 {
		t.Errorf("echo = %q/%v", resp.Agg, resp.Step)
	}
	if len(resp.Series) != 1 {
		t.Fatalf("series = %+v", resp.Series)
	}
	pts := resp.Series[0].Points
	// Two buckets of the constant 41-degree gauge: [0,4) holds 4 samples,
	// [4,8) holds 4.
	if len(pts) != 2 || pts[0] != [3]float64{0, 41, 4} || pts[1] != [3]float64{4, 41, 4} {
		t.Errorf("points = %v", pts)
	}

	// Rate aggregation over the cumulative counter.
	code, body = get(t, ts, "/api/v2/query?node=mc02&metric=instret&core=0&agg=rate&from=1&to=8")
	if code != 200 {
		t.Fatalf("rate query -> %d", code)
	}
	var rate struct {
		Series []struct {
			Points [][3]float64 `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &rate); err != nil {
		t.Fatal(err)
	}
	if len(rate.Series) != 1 || len(rate.Series[0].Points) != 1 {
		t.Fatalf("rate series = %+v", rate.Series)
	}
	if p := rate.Series[0].Points[0]; p[1] != 20 || p[2] != 7 {
		t.Errorf("mc02 rate bucket = %v, want rate 20 over 7 samples", p)
	}
}

func TestQueryV2BadParameters(t *testing.T) {
	ts := restFixture(t, NewMemStore())
	for _, path := range []string{
		"/api/v2/query?core=banana",
		"/api/v2/query?from=xyz",
		"/api/v2/query?agg=median",
		"/api/v2/query?agg=avg&step=-1",
		"/api/v2/query?agg=avg&step=x",
	} {
		code, _ := get(t, ts, path)
		if code != 400 {
			t.Errorf("%s -> %d, want 400", path, code)
		}
	}
	res, err := ts.Client().Post(ts.URL+"/api/v2/query", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 405 {
		t.Errorf("POST -> %d, want 405", res.StatusCode)
	}
}
