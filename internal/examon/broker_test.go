package examon

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPublishSubscribe(t *testing.T) {
	b := NewBroker()
	var got []string
	sub, err := b.Subscribe("org/unibo/#", func(topic, payload string) {
		got = append(got, topic+"="+payload)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("org/unibo/cluster/montecimone/x", "1;2"); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("org/other/cluster/x/y", "3;4"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !strings.HasPrefix(got[0], "org/unibo/") {
		t.Errorf("got = %v", got)
	}
	b.Unsubscribe(sub)
	if err := b.Publish("org/unibo/z", "5;6"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Error("unsubscribed callback fired")
	}
	if b.Published() != 3 {
		t.Errorf("published = %d", b.Published())
	}
}

func TestSubscribeValidation(t *testing.T) {
	b := NewBroker()
	if _, err := b.Subscribe("", func(string, string) {}); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := b.Subscribe("a/#/b", func(string, string) {}); err == nil {
		t.Error("non-final # accepted")
	}
	if _, err := b.Subscribe("a/b+c", func(string, string) {}); err == nil {
		t.Error("embedded wildcard accepted")
	}
	if _, err := b.Subscribe("a/+", nil); err == nil {
		t.Error("nil callback accepted")
	}
}

func TestPublishValidation(t *testing.T) {
	b := NewBroker()
	if err := b.Publish("", "x"); err == nil {
		t.Error("empty topic accepted")
	}
	if err := b.Publish("a/+/b", "x"); err == nil {
		t.Error("wildcard topic accepted")
	}
}

func TestMatchTopic(t *testing.T) {
	tests := []struct {
		pattern, topic string
		want           bool
	}{
		{"a/b/c", "a/b/c", true},
		{"a/b/c", "a/b", false},
		{"a/b", "a/b/c", false},
		{"a/+/c", "a/b/c", true},
		{"a/+/c", "a/b/d", false},
		{"a/#", "a/b/c/d", true},
		{"a/#", "a", true}, // MQTT: '#' also matches the parent level itself
		{"+/+", "a/b", true},
		{"#", "anything/at/all", true},
		{"org/+/cluster/+/node/+/plugin/pmu_pub/#", "org/unibo/cluster/montecimone/node/mc01/plugin/pmu_pub/chnl/data/core/0/instret", true},
		{"org/+/cluster/+/node/+/plugin/pmu_pub/#", "org/unibo/cluster/montecimone/node/mc01/plugin/dstat_pub/chnl/data/load_avg.1m", false},
	}
	for _, tt := range tests {
		got, err := MatchTopic(tt.pattern, tt.topic)
		if err != nil {
			t.Errorf("MatchTopic(%q, %q): %v", tt.pattern, tt.topic, err)
			continue
		}
		if got != tt.want {
			t.Errorf("MatchTopic(%q, %q) = %v, want %v", tt.pattern, tt.topic, got, tt.want)
		}
	}
}

func TestMatchTopicExactProperty(t *testing.T) {
	// A topic always matches itself as a pattern (no wildcards).
	prop := func(parts []uint8) bool {
		if len(parts) == 0 {
			return true
		}
		levels := make([]string, 0, len(parts))
		for _, p := range parts {
			levels = append(levels, string(rune('a'+p%26)))
		}
		topic := strings.Join(levels, "/")
		ok, err := MatchTopic(topic, topic)
		return err == nil && ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableIITopicFormats(t *testing.T) {
	// Table II defines the exact topic shapes for both plugins.
	pmu := PMUTopic("unibo", "montecimone", "mc03", 2, "instret")
	want := "org/unibo/cluster/montecimone/node/mc03/plugin/pmu_pub/chnl/data/core/2/instret"
	if pmu != want {
		t.Errorf("pmu topic = %q, want %q", pmu, want)
	}
	stats := StatsTopic("unibo", "montecimone", "mc03", "load_avg.1m")
	want = "org/unibo/cluster/montecimone/node/mc03/plugin/dstat_pub/chnl/data/load_avg.1m"
	if stats != want {
		t.Errorf("stats topic = %q, want %q", stats, want)
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	p := FormatPayload(3075.5, 12.25)
	if p != "3075.5;12.25" {
		t.Errorf("payload = %q", p)
	}
	v, ts, err := ParsePayload(p)
	if err != nil || v != 3075.5 || ts != 12.25 {
		t.Errorf("parse = %v, %v, %v", v, ts, err)
	}
	for _, bad := range []string{"", "1", "x;2", "1;y"} {
		if _, _, err := ParsePayload(bad); err == nil {
			t.Errorf("payload %q accepted", bad)
		}
	}
}

func TestParseTopic(t *testing.T) {
	tags, err := ParseTopic("org/unibo/cluster/montecimone/node/mc05/plugin/pmu_pub/chnl/data/core/3/cycle")
	if err != nil {
		t.Fatal(err)
	}
	want := Tags{Org: "unibo", Cluster: "montecimone", Node: "mc05", Plugin: "pmu_pub", Core: 3, Metric: "cycle"}
	if tags != want {
		t.Errorf("tags = %+v, want %+v", tags, want)
	}
	tags, err = ParseTopic("org/unibo/cluster/montecimone/node/mc05/plugin/dstat_pub/chnl/data/temperature.cpu_temp")
	if err != nil {
		t.Fatal(err)
	}
	if tags.Core != -1 || tags.Metric != "temperature.cpu_temp" {
		t.Errorf("tags = %+v", tags)
	}
	for _, bad := range []string{
		"x/y",
		"org/u/cluster/c/node/n/plugin/p/chnl/data",
		"org/u/cluster/c/node/n/plugin/p/other/data/m",
		"org/u/cluster/c/node/n/plugin/p/chnl/data/core/notanint/m",
	} {
		if _, err := ParseTopic(bad); err == nil {
			t.Errorf("topic %q accepted", bad)
		}
	}
}

func TestPayloadQuickRoundTripProperty(t *testing.T) {
	prop := func(v float64, ts float64) bool {
		got, gotTS, err := ParsePayload(FormatPayload(v, ts))
		if err != nil {
			return false
		}
		return (got == v || (got != got && v != v)) && (gotTS == ts || (gotTS != gotTS && ts != ts))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
