package examon

import (
	"math"
	"testing"
)

func tempTags(nodeName string) Tags {
	return Tags{Org: "o", Cluster: "c", Node: nodeName, Plugin: "dstat_pub", Core: -1, Metric: "temperature.cpu_temp"}
}

func TestDetectorValidation(t *testing.T) {
	if _, err := (Detector{Window: 2}).Scan(Series{}); err == nil {
		t.Error("tiny window accepted")
	}
	if _, err := (Detector{ZThreshold: -1}).Scan(Series{}); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := (Detector{}).ScanAll(nil, Filter{}); err == nil {
		t.Error("nil db accepted")
	}
}

func TestNoAnomaliesOnSteadySeries(t *testing.T) {
	s := Series{Tags: tempTags("mc01")}
	for i := 0; i < 200; i++ {
		s.Points = append(s.Points, Point{T: float64(i), V: 50 + 0.1*math.Sin(float64(i))})
	}
	found, err := (Detector{Limit: 107}).Scan(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 0 {
		t.Errorf("false positives: %+v", found)
	}
}

func TestLimitAnomaly(t *testing.T) {
	s := Series{Tags: tempTags("mc07")}
	for i := 0; i < 50; i++ {
		v := 60.0
		if i >= 40 {
			v = 108.5
		}
		s.Points = append(s.Points, Point{T: float64(i), V: v})
	}
	found, err := (Detector{Limit: 107, Window: 10}).Scan(s)
	if err != nil {
		t.Fatal(err)
	}
	var limit *Anomaly
	for i := range found {
		if found[i].Kind == AnomalyLimit {
			limit = &found[i]
		}
	}
	if limit == nil {
		t.Fatal("limit violation not detected")
	}
	if limit.Time != 40 {
		t.Errorf("detected at t=%v, want first violation at 40", limit.Time)
	}
	if math.Abs(limit.Score-1.5) > 1e-9 {
		t.Errorf("excess = %v, want 1.5", limit.Score)
	}
}

func TestOutlierAnomaly(t *testing.T) {
	s := Series{Tags: tempTags("mc03")}
	for i := 0; i < 100; i++ {
		v := 50 + 0.2*math.Sin(float64(i)/3)
		if i == 80 {
			v = 90 // a sensor glitch
		}
		s.Points = append(s.Points, Point{T: float64(i), V: v})
	}
	found, err := (Detector{}).Scan(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0].Kind != AnomalyOutlier || found[0].Time != 80 {
		t.Fatalf("findings = %+v", found)
	}
	if found[0].Score < 6 {
		t.Errorf("z-score = %v", found[0].Score)
	}
}

func TestRunawayDetectedBeforeTrip(t *testing.T) {
	// A node-7-style excursion: stable, then a sustained ~0.15 K/s climb
	// towards 107. The detector must flag the runaway while the value is
	// still well below the trip.
	s := Series{Tags: tempTags("mc07")}
	for i := 0; i < 600; i++ {
		v := 70.0
		if i >= 200 {
			v = 70 + 0.15*float64(i-200)
		}
		if v > 107 {
			v = 107
		}
		s.Points = append(s.Points, Point{T: float64(i), V: v})
	}
	found, err := (Detector{Limit: 107}).Scan(s)
	if err != nil {
		t.Fatal(err)
	}
	var runaway *Anomaly
	for i := range found {
		if found[i].Kind == AnomalyRunaway {
			runaway = &found[i]
			break
		}
	}
	if runaway == nil {
		t.Fatal("runaway not detected")
	}
	if runaway.Value >= 107 {
		t.Errorf("runaway flagged only at the limit (%.1f degC)", runaway.Value)
	}
	// Lead time: predicted crossing within the horizon, flagged at least
	// a minute before the actual trip (which happens around t=447).
	if runaway.Time > 380 {
		t.Errorf("runaway flagged at t=%v, too late", runaway.Time)
	}
	if runaway.Score <= 0 || runaway.Score > 300 {
		t.Errorf("predicted seconds to limit = %v", runaway.Score)
	}
}

func TestEachKindFiresOnce(t *testing.T) {
	s := Series{Tags: tempTags("mc07")}
	for i := 0; i < 100; i++ {
		s.Points = append(s.Points, Point{T: float64(i), V: 110}) // always above
	}
	found, err := (Detector{Limit: 107}).Scan(s)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[AnomalyKind]int)
	for _, a := range found {
		counts[a.Kind]++
	}
	for kind, n := range counts {
		if n != 1 {
			t.Errorf("%s fired %d times", kind, n)
		}
	}
}

func TestScanAllAcrossNodes(t *testing.T) {
	db := NewTSDB()
	for _, nodeName := range []string{"mc01", "mc07"} {
		for i := 0; i < 120; i++ {
			v := 50.0
			if nodeName == "mc07" {
				v = 50 + float64(i) // climbing hard
			}
			db.Insert(tempTags(nodeName), float64(i), math.Min(v, 130))
		}
	}
	found, err := (Detector{Limit: 107}).ScanAll(db, Filter{Metric: "temperature.cpu_temp"})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) == 0 {
		t.Fatal("nothing detected")
	}
	for _, a := range found {
		if a.Tags.Node != "mc07" {
			t.Errorf("false positive on %s: %+v", a.Tags.Node, a)
		}
	}
}
