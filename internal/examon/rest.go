package examon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// RESTServer exposes the TSDB through the dedicated RESTful API over HTTP
// mentioned in Section IV-B (batch analysis scripts query the database
// through it).
type RESTServer struct {
	db  *TSDB
	mux *http.ServeMux
}

// NewRESTServer builds the HTTP handler over a store.
func NewRESTServer(db *TSDB) (*RESTServer, error) {
	if db == nil {
		return nil, fmt.Errorf("examon: rest server needs a tsdb")
	}
	s := &RESTServer{db: db, mux: http.NewServeMux()}
	s.mux.HandleFunc("/api/v1/series", s.handleSeries)
	s.mux.HandleFunc("/api/v1/query", s.handleQuery)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *RESTServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// seriesResponse is the JSON shape of a query result.
type seriesResponse struct {
	Node   string       `json:"node"`
	Plugin string       `json:"plugin"`
	Core   int          `json:"core"`
	Metric string       `json:"metric"`
	Points [][2]float64 `json:"points"`
}

func (s *RESTServer) handleSeries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, map[string]any{"series": s.db.Keys()})
}

func (s *RESTServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	f := Filter{
		Node:   q.Get("node"),
		Plugin: q.Get("plugin"),
		Metric: q.Get("metric"),
	}
	if coreStr := q.Get("core"); coreStr != "" {
		core, err := strconv.Atoi(coreStr)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad core %q", coreStr), http.StatusBadRequest)
			return
		}
		f.Core = &core
	}
	var err error
	if f.From, err = parseTimeParam(q.Get("from")); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if f.To, err = parseTimeParam(q.Get("to")); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var resp []seriesResponse
	for _, series := range s.db.Query(f) {
		sr := seriesResponse{
			Node:   series.Tags.Node,
			Plugin: series.Tags.Plugin,
			Core:   series.Tags.Core,
			Metric: series.Tags.Metric,
		}
		for _, p := range series.Points {
			sr.Points = append(sr.Points, [2]float64{p.T, p.V})
		}
		resp = append(resp, sr)
	}
	writeJSON(w, map[string]any{"series": resp})
}

func parseTimeParam(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad time parameter %q", s)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Connection-level failure; headers already sent.
		return
	}
}
