package examon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// RESTServer exposes the stored telemetry through the dedicated RESTful
// API over HTTP mentioned in Section IV-B (batch analysis scripts query
// the database through it). Two API versions are served:
//
//	GET /api/v1/series            — sorted series keys
//	GET /api/v1/query             — raw range query (copy semantics)
//	GET /api/v2/query             — raw range query, plus server-side
//	                                aggregation with agg= and step=
//
// v1's response format is frozen; v2 adds the aggregating layer
// (avg/min/max/sum/rate with step-based downsampling) so dashboards pull
// bucketed values instead of whole series. The one extension both raw
// endpoints accept is the opt-in limit= guard below — a v1 query without
// it answers exactly as it always has.
//
// Responses are rendered by the streaming append encoder (jsonenc.go):
// points flow from the storage engine's buffers straight into a pooled
// byte buffer, with no intermediate response structs and no per-request
// allocation beyond the (recycled) buffer itself. Output stays
// byte-identical to the former encoding/json path. Raw queries accept an
// optional limit=N guard: a result with more than N points answers 413
// instead of serializing unboundedly.
type RESTServer struct {
	st  Storage
	mux *http.ServeMux
}

// NewRESTServer builds the HTTP handler over a storage engine (a *TSDB
// works directly).
func NewRESTServer(st Storage) (*RESTServer, error) {
	if st == nil {
		return nil, fmt.Errorf("examon: rest server needs a storage engine")
	}
	s := &RESTServer{st: st, mux: http.NewServeMux()}
	s.mux.HandleFunc("/api/v1/series", s.handleSeries)
	s.mux.HandleFunc("/api/v1/query", s.handleQuery)
	s.mux.HandleFunc("/api/v2/query", s.handleQueryV2)
	return s, nil
}

// AttachPowerPlane registers the /api/v2/powerplane endpoint serving the
// cluster power governor's live state. snapshot is called per request and
// its result rendered as JSON (the powerplane.Governor's Snapshot method
// fits directly; the indirection keeps this package free of a dependency
// on the plane). Attaching twice panics, like duplicate mux patterns do.
func (s *RESTServer) AttachPowerPlane(snapshot func() any) error {
	if snapshot == nil {
		return fmt.Errorf("examon: nil power plane snapshot")
	}
	s.mux.HandleFunc("/api/v2/powerplane", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, snapshot())
	})
	return nil
}

// ServeHTTP implements http.Handler.
func (s *RESTServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *RESTServer) handleSeries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	bp := jsonBufPool.Get().(*[]byte)
	b := append((*bp)[:0], `{"series":[`...)
	for i, k := range s.st.Keys() {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, k)
	}
	b = append(b, ']', '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
	putJSONBuf(bp, b)
}

// parseFilter extracts the shared node/plugin/metric/core/from/to
// parameters of both query versions.
func parseFilter(r *http.Request) (Filter, error) {
	q := r.URL.Query()
	f := Filter{
		Node:   q.Get("node"),
		Plugin: q.Get("plugin"),
		Metric: q.Get("metric"),
	}
	if coreStr := q.Get("core"); coreStr != "" {
		core, err := strconv.Atoi(coreStr)
		if err != nil {
			return f, fmt.Errorf("bad core %q", coreStr)
		}
		f.Core = &core
	}
	var err error
	if f.From, err = parseTimeParam(q.Get("from")); err != nil {
		return f, err
	}
	if f.To, err = parseTimeParam(q.Get("to")); err != nil {
		return f, err
	}
	return f, nil
}

// parseLimit reads the optional raw-query limit= guard (0 = unlimited).
func parseLimit(r *http.Request) (int, error) {
	s := r.URL.Query().Get("limit")
	if s == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad limit %q", s)
	}
	return n, nil
}

// appendSeriesOpen renders a series' tag header up to the opening of its
// points array.
func appendSeriesOpen(b []byte, tags Tags) []byte {
	b = append(b, `{"node":`...)
	b = appendJSONString(b, tags.Node)
	b = append(b, `,"plugin":`...)
	b = appendJSONString(b, tags.Plugin)
	b = append(b, `,"core":`...)
	b = strconv.AppendInt(b, int64(tags.Core), 10)
	b = append(b, `,"metric":`...)
	b = appendJSONString(b, tags.Metric)
	return append(b, `,"points":[`...)
}

// writeRawQuery streams a raw range query: one indexed lookup, points
// rendered straight from the engine's buffers through the time cursor.
// Shared by /api/v1/query and unaggregated /api/v2/query (which answer
// byte-identically). The render happens outside any engine lock: the
// snapshot engines hand out stable lock-free views, everything else
// (ring, linear-scan ablation) falls back to copying the matched points
// out under its lock first — holding a read lock for the whole JSON
// render would stall ingest on the single-lock engines.
func (s *RESTServer) writeRawQuery(w http.ResponseWriter, f Filter, limit int) {
	st := s.st
	if u, ok := st.(storageUnwrapper); ok {
		st = u.Storage()
	}
	var snaps []seriesSnap
	haveSnaps := false
	if sn, ok := st.(snapshotter); ok {
		snaps, haveSnaps = sn.snapshotSeries(f, false)
	}
	if !haveSnaps {
		// Bounded copy-out under the engine's Scan: the filter is applied
		// while copying (so the cursor re-run below is a pass-through),
		// and the copy stops at limit+1 points — the guard must bound the
		// work on this path too, not just reject after a full copy.
		copied, exceeded := 0, false
		st.Scan(f, func(tags Tags, pts PointsView) bool {
			capHint := pts.Len()
			if limit > 0 && capHint > limit+1 {
				capHint = limit + 1
			}
			if (f.From != 0 || f.To != 0) && capHint > 1024 {
				capHint = 1024 // narrow windows must not pin full-series capacity
			}
			buf := make([]Point, 0, capHint)
			cur := pts.Cursor(f.From, f.To)
			for p, ok := cur.Next(); ok; p, ok = cur.Next() {
				copied++
				if limit > 0 && copied > limit {
					exceeded = true
					return false
				}
				buf = append(buf, p)
			}
			snaps = append(snaps, seriesSnap{tags: tags, pts: ViewOf(buf)})
			return true
		})
		if exceeded {
			http.Error(w, fmt.Sprintf("result exceeds limit=%d points", limit), http.StatusRequestEntityTooLarge)
			return
		}
	}
	bp := jsonBufPool.Get().(*[]byte)
	b := append((*bp)[:0], `{"series":[`...)
	release := func() { putJSONBuf(bp, b) }
	total := 0
	exceeded, encOK := false, true
	for i := range snaps {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendSeriesOpen(b, snaps[i].tags)
		pFirst := true
		cur := snaps[i].pts.Cursor(f.From, f.To)
		for p, ok := cur.Next(); ok && !exceeded && encOK; p, ok = cur.Next() {
			total++
			if limit > 0 && total > limit {
				exceeded = true
				break
			}
			if !pFirst {
				b = append(b, ',')
			}
			pFirst = false
			b = append(b, '[')
			b, encOK = appendJSONFloat(b, p.T)
			if !encOK {
				break
			}
			b = append(b, ',')
			b, encOK = appendJSONFloat(b, p.V)
			if !encOK {
				break
			}
			b = append(b, ']')
		}
		if exceeded || !encOK {
			break
		}
		b = append(b, ']', '}')
	}
	if exceeded {
		release()
		http.Error(w, fmt.Sprintf("result exceeds limit=%d points", limit), http.StatusRequestEntityTooLarge)
		return
	}
	if !encOK {
		release()
		http.Error(w, "non-finite value in result", http.StatusInternalServerError)
		return
	}
	b = append(b, ']', '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
	release()
}

func (s *RESTServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	f, err := parseFilter(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	limit, err := parseLimit(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.writeRawQuery(w, f, limit)
}

func (s *RESTServer) handleQueryV2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	f, err := parseFilter(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	op := q.Get("agg")
	if op == "" {
		// Unaggregated v2 queries answer exactly like v1.
		limit, err := parseLimit(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.writeRawQuery(w, f, limit)
		return
	}
	step := 0.0
	if stepStr := q.Get("step"); stepStr != "" {
		step, err = strconv.ParseFloat(stepStr, 64)
		if err != nil || step < 0 {
			http.Error(w, fmt.Sprintf("bad step %q", stepStr), http.StatusBadRequest)
			return
		}
	}
	agg, err := QueryAgg(s.st, f, AggOptions{Op: AggOp(op), Step: step})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	bp := jsonBufPool.Get().(*[]byte)
	b := append((*bp)[:0], `{"agg":`...)
	encOK := true
	appendF := func(v float64) {
		if !encOK {
			return
		}
		b, encOK = appendJSONFloat(b, v)
	}
	b = appendJSONString(b, op)
	b = append(b, `,"series":[`...)
	for i := range agg {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendSeriesOpen(b, agg[i].Tags)
		for j, p := range agg[i].Points {
			if j > 0 {
				b = append(b, ',')
			}
			b = append(b, '[')
			appendF(p.T)
			b = append(b, ',')
			appendF(p.V)
			b = append(b, ',')
			appendF(float64(p.N))
			b = append(b, ']')
		}
		b = append(b, ']', '}')
	}
	b = append(b, `],"step":`...)
	appendF(step)
	b = append(b, '}', '\n')
	release := func() { putJSONBuf(bp, b) }
	if !encOK {
		release()
		http.Error(w, "non-finite value in result", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
	release()
}

func parseTimeParam(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad time parameter %q", s)
	}
	return v, nil
}

// writeJSON renders v through encoding/json — kept for the low-rate
// endpoints serving arbitrary structures (the power plane snapshot).
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Connection-level failure; headers already sent.
		return
	}
}
