package examon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// RESTServer exposes the stored telemetry through the dedicated RESTful
// API over HTTP mentioned in Section IV-B (batch analysis scripts query
// the database through it). Two API versions are served:
//
//	GET /api/v1/series            — sorted series keys
//	GET /api/v1/query             — raw range query (copy semantics)
//	GET /api/v2/query             — raw range query, plus server-side
//	                                aggregation with agg= and step=
//
// v1 is frozen; v2 adds the aggregating layer (avg/min/max/sum/rate with
// step-based downsampling) so dashboards pull bucketed values instead of
// whole series.
type RESTServer struct {
	st  Storage
	mux *http.ServeMux
}

// NewRESTServer builds the HTTP handler over a storage engine (a *TSDB
// works directly).
func NewRESTServer(st Storage) (*RESTServer, error) {
	if st == nil {
		return nil, fmt.Errorf("examon: rest server needs a storage engine")
	}
	s := &RESTServer{st: st, mux: http.NewServeMux()}
	s.mux.HandleFunc("/api/v1/series", s.handleSeries)
	s.mux.HandleFunc("/api/v1/query", s.handleQuery)
	s.mux.HandleFunc("/api/v2/query", s.handleQueryV2)
	return s, nil
}

// AttachPowerPlane registers the /api/v2/powerplane endpoint serving the
// cluster power governor's live state. snapshot is called per request and
// its result rendered as JSON (the powerplane.Governor's Snapshot method
// fits directly; the indirection keeps this package free of a dependency
// on the plane). Attaching twice panics, like duplicate mux patterns do.
func (s *RESTServer) AttachPowerPlane(snapshot func() any) error {
	if snapshot == nil {
		return fmt.Errorf("examon: nil power plane snapshot")
	}
	s.mux.HandleFunc("/api/v2/powerplane", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, snapshot())
	})
	return nil
}

// ServeHTTP implements http.Handler.
func (s *RESTServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// seriesResponse is the JSON shape of a raw query result.
type seriesResponse struct {
	Node   string       `json:"node"`
	Plugin string       `json:"plugin"`
	Core   int          `json:"core"`
	Metric string       `json:"metric"`
	Points [][2]float64 `json:"points"`
}

// aggSeriesResponse is the JSON shape of an aggregated query result; each
// point is [bucket_start, value, sample_count].
type aggSeriesResponse struct {
	Node   string       `json:"node"`
	Plugin string       `json:"plugin"`
	Core   int          `json:"core"`
	Metric string       `json:"metric"`
	Points [][3]float64 `json:"points"`
}

func (s *RESTServer) handleSeries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, map[string]any{"series": s.st.Keys()})
}

// parseFilter extracts the shared node/plugin/metric/core/from/to
// parameters of both query versions.
func parseFilter(r *http.Request) (Filter, error) {
	q := r.URL.Query()
	f := Filter{
		Node:   q.Get("node"),
		Plugin: q.Get("plugin"),
		Metric: q.Get("metric"),
	}
	if coreStr := q.Get("core"); coreStr != "" {
		core, err := strconv.Atoi(coreStr)
		if err != nil {
			return f, fmt.Errorf("bad core %q", coreStr)
		}
		f.Core = &core
	}
	var err error
	if f.From, err = parseTimeParam(q.Get("from")); err != nil {
		return f, err
	}
	if f.To, err = parseTimeParam(q.Get("to")); err != nil {
		return f, err
	}
	return f, nil
}

func (s *RESTServer) rawSeries(f Filter) []seriesResponse {
	// Explicit empty slices keep the JSON "series" field — and each
	// series' "points" — an array ([]) rather than null when nothing
	// matches the filter or the time range.
	resp := []seriesResponse{}
	for _, series := range s.st.Query(f) {
		sr := seriesResponse{
			Node:   series.Tags.Node,
			Plugin: series.Tags.Plugin,
			Core:   series.Tags.Core,
			Metric: series.Tags.Metric,
			Points: [][2]float64{},
		}
		for _, p := range series.Points {
			sr.Points = append(sr.Points, [2]float64{p.T, p.V})
		}
		resp = append(resp, sr)
	}
	return resp
}

func (s *RESTServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	f, err := parseFilter(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]any{"series": s.rawSeries(f)})
}

func (s *RESTServer) handleQueryV2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	f, err := parseFilter(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	op := q.Get("agg")
	if op == "" {
		// Unaggregated v2 queries answer exactly like v1.
		writeJSON(w, map[string]any{"series": s.rawSeries(f)})
		return
	}
	step := 0.0
	if stepStr := q.Get("step"); stepStr != "" {
		step, err = strconv.ParseFloat(stepStr, 64)
		if err != nil || step < 0 {
			http.Error(w, fmt.Sprintf("bad step %q", stepStr), http.StatusBadRequest)
			return
		}
	}
	agg, err := QueryAgg(s.st, f, AggOptions{Op: AggOp(op), Step: step})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := []aggSeriesResponse{}
	for _, series := range agg {
		sr := aggSeriesResponse{
			Node:   series.Tags.Node,
			Plugin: series.Tags.Plugin,
			Core:   series.Tags.Core,
			Metric: series.Tags.Metric,
			// Non-nil so a series that is silent in the range renders as
			// "points": [], not null.
			Points: [][3]float64{},
		}
		for _, p := range series.Points {
			sr.Points = append(sr.Points, [3]float64{p.T, p.V, float64(p.N)})
		}
		resp = append(resp, sr)
	}
	writeJSON(w, map[string]any{"series": resp, "agg": op, "step": step})
}

func parseTimeParam(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad time parameter %q", s)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Connection-level failure; headers already sent.
		return
	}
}
