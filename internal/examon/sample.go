package examon

import "strings"

// Sample is one typed telemetry measurement: the identifying tag set plus
// the (timestamp, value) pair. It is the unit of the v2 telemetry API —
// plugins hand Samples to the broker, the broker hands them to typed
// subscribers, and storage engines persist them — so a measurement crosses
// the whole stack without ever being rendered to (and re-parsed from) the
// Table II string encoding. The string topic/payload form remains available
// through Tags.Topic and FormatPayload for interoperability.
type Sample struct {
	// Tags identify the stream the sample belongs to.
	Tags Tags
	// T is the virtual timestamp (seconds); V the value.
	T, V float64
}

// Topic renders the Table II data topic this tag set would publish under.
// It is the inverse of ParseTopic for well-formed tags.
func (t Tags) Topic() string {
	var sb strings.Builder
	sb.Grow(len("org//cluster//node//plugin//chnl/data/core/00/") +
		len(t.Org) + len(t.Cluster) + len(t.Node) + len(t.Plugin) + len(t.Metric))
	sb.WriteString("org/")
	sb.WriteString(t.Org)
	sb.WriteString("/cluster/")
	sb.WriteString(t.Cluster)
	sb.WriteString("/node/")
	sb.WriteString(t.Node)
	sb.WriteString("/plugin/")
	sb.WriteString(t.Plugin)
	sb.WriteString("/chnl/data")
	if t.Core >= 0 {
		sb.WriteString("/core/")
		writeInt(&sb, t.Core)
	}
	sb.WriteByte('/')
	sb.WriteString(t.Metric)
	return sb.String()
}

func writeInt(sb *strings.Builder, v int) {
	if v >= 10 {
		writeInt(sb, v/10)
	}
	sb.WriteByte(byte('0' + v%10))
}

// PointsView is a read-only window over a series' stored points. It exists
// so storage engines can expose their backing buffers without copying: the
// append-only stores surface one contiguous slice, the ring store surfaces
// the two wrapped segments. A view is only valid for the duration of the
// Storage.Scan visit that produced it (or indefinitely when built from an
// owned slice).
type PointsView struct {
	a, b []Point
}

// ViewOf wraps an owned slice as a view.
func ViewOf(pts []Point) PointsView { return PointsView{a: pts} }

// Len returns the number of points in the view.
func (v PointsView) Len() int { return len(v.a) + len(v.b) }

// At returns point i in storage (arrival) order.
func (v PointsView) At(i int) Point {
	if i < len(v.a) {
		return v.a[i]
	}
	return v.b[i-len(v.a)]
}

// Append copies the view's points onto dst in order.
func (v PointsView) Append(dst []Point) []Point {
	dst = append(dst, v.a...)
	return append(dst, v.b...)
}

// Cursor returns an allocation-free iterator over the view restricted to
// the [from, to) time range; to == 0 means unbounded, mirroring Filter.
func (v PointsView) Cursor(from, to float64) Cursor {
	return Cursor{view: v, from: from, to: to}
}

// Cursor iterates a PointsView with Filter time-range semantics, the
// alternative to the copy-everything Query path: callers stream points out
// of the store without any per-query allocation.
type Cursor struct {
	view     PointsView
	i        int
	from, to float64
}

// Next returns the next in-range point, or ok == false when exhausted.
func (c *Cursor) Next() (p Point, ok bool) {
	for c.i < c.view.Len() {
		p = c.view.At(c.i)
		c.i++
		if p.T < c.from {
			continue
		}
		if c.to != 0 && p.T >= c.to {
			continue
		}
		return p, true
	}
	return Point{}, false
}
