package examon

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// Read-path equivalence suite: the indexed/rollup/fan-out layers must be
// invisible in results. Every check compares a fast store (defaults:
// inverted index, rollup tiers, snapshot fan-out) against its ablation
// twin (WithLinearScan, no rollups) fed the identical sample stream.
//
// Values and timestamps are dyadic rationals (quarters and halves) so
// every bucket sum is exact regardless of association — that makes the
// rollup-vs-raw comparison bit-identical, per the tier's documented
// exactness contract.

// readPathEngines builds the fast/ablation store pairs.
func readPathEngines() map[string]func(opts ...StoreOption) Storage {
	return map[string]func(opts ...StoreOption) Storage{
		"mem":     func(opts ...StoreOption) Storage { return NewMemStore(opts...) },
		"ring":    func(opts ...StoreOption) Storage { return NewRingStore(1<<16, opts...) },
		"sharded": func(opts ...StoreOption) Storage { return NewShardedStore(4, opts...) },
	}
}

// fillRandom streams identical pseudo-random telemetry into both stores:
// dense 2 Hz series across nodes/plugins/cores/metrics, one out-of-order
// series, and one sparse series whose bucket span overflows the rollup
// tier (exercising the per-series raw fallback).
func fillRandom(rng *rand.Rand, stores ...Storage) {
	dyadic := func() float64 { return float64(rng.Intn(1<<20)) / 4 }
	var batch []Sample
	for n := 0; n < 5; n++ {
		for core := 0; core < 2; core++ {
			for _, metric := range []string{"instret", "cycle"} {
				tags := confTags(n, core, metric)
				for i := 0; i < 400; i++ {
					batch = append(batch, Sample{Tags: tags, T: float64(i) * 0.5, V: dyadic()})
				}
			}
		}
		tags := confTags(n, -1, "temperature.cpu_temp")
		for i := 0; i < 400; i++ {
			batch = append(batch, Sample{Tags: tags, T: float64(i) * 0.5, V: dyadic()})
		}
	}
	// Out-of-order arrivals: shuffled timestamps on one series.
	ooo := confTags(1, -1, "load_avg.1m")
	times := rng.Perm(300)
	for _, i := range times {
		batch = append(batch, Sample{Tags: ooo, T: float64(i) * 0.5, V: dyadic()})
	}
	// Sparse series spanning more buckets than maxRollupBuckets: the tier
	// drops itself and the series answers from raw points.
	sparse := confTags(2, -1, "uptime")
	batch = append(batch,
		Sample{Tags: sparse, T: 0, V: 1},
		Sample{Tags: sparse, T: float64(maxRollupBuckets+5) * DefaultRollupStep, V: 2},
		Sample{Tags: sparse, T: 120, V: 3}, // out-of-order after the drop
	)
	for _, st := range stores {
		for i := range batch {
			// Alternate single inserts and one-sample batches so both
			// ingest entry points maintain index and tiers.
			if i%2 == 0 {
				st.Insert(batch[i].Tags, batch[i].T, batch[i].V)
			} else {
				st.InsertBatch(batch[i : i+1])
			}
		}
	}
}

func equivalenceFilters() []Filter {
	core1 := 1
	return []Filter{
		{},
		{Node: "mc02"},
		{Node: "mc99"},
		{Plugin: "pmu_pub"},
		{Metric: "instret"},
		{Node: "mc01", Plugin: "pmu_pub", Metric: "cycle", Core: &core1},
		{Metric: "temperature.cpu_temp", From: 13, To: 107},
		{Node: "mc03", From: 60, To: 180},
	}
}

func TestReadPathEquivalence(t *testing.T) {
	for name, mk := range readPathEngines() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			fast := mk()
			slow := mk(WithLinearScan(true), WithRollup(-1))
			fillRandom(rng, fast, slow)

			if !reflect.DeepEqual(fast.Keys(), slow.Keys()) {
				t.Fatalf("keys diverge:\n%v\nvs\n%v", fast.Keys(), slow.Keys())
			}
			if fast.SeriesCount() != slow.SeriesCount() {
				t.Fatalf("series counts diverge: %d vs %d", fast.SeriesCount(), slow.SeriesCount())
			}
			for _, f := range equivalenceFilters() {
				if got, want := fast.Query(f), slow.Query(f); !reflect.DeepEqual(got, want) {
					t.Errorf("filter %+v: indexed Query diverges from linear scan", f)
				}
				var gotScan, wantScan []Tags
				fast.Scan(f, func(tags Tags, _ PointsView) bool { gotScan = append(gotScan, tags); return true })
				slow.Scan(f, func(tags Tags, _ PointsView) bool { wantScan = append(wantScan, tags); return true })
				if !reflect.DeepEqual(gotScan, wantScan) {
					t.Errorf("filter %+v: indexed Scan order diverges from linear scan", f)
				}
			}
		})
	}
}

// TestQueryAggEquivalence is the randomized rollup-vs-raw and
// parallel-vs-sequential check: every operator, aligned and unaligned
// steps, bounded and unbounded ranges, on every engine. Results must be
// deeply (bit-)identical.
func TestQueryAggEquivalence(t *testing.T) {
	steps := []float64{0, 7, 60, 120, 180}
	ranges := [][2]float64{{0, 0}, {60, 240}, {13, 307}, {60, 0}, {120, 120.5}}
	for name, mk := range readPathEngines() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			fast := mk()
			slow := mk(WithLinearScan(true), WithRollup(-1))
			fillRandom(rng, fast, slow)
			for _, f := range equivalenceFilters() {
				for _, op := range []AggOp{AggAvg, AggMin, AggMax, AggSum, AggRate} {
					for _, step := range steps {
						for _, tr := range ranges {
							q := f
							q.From, q.To = tr[0], tr[1]
							if f.From != 0 || f.To != 0 {
								q.From, q.To = f.From, f.To
							}
							got, gerr := QueryAgg(fast, q, AggOptions{Op: op, Step: step})
							want, werr := QueryAgg(slow, q, AggOptions{Op: op, Step: step})
							if (gerr == nil) != (werr == nil) {
								t.Fatalf("%+v %s step=%v: error divergence %v vs %v", q, op, step, gerr, werr)
							}
							if !reflect.DeepEqual(got, want) {
								t.Errorf("%+v %s step=%v: fast path diverges from linear raw", q, op, step)
							}
						}
					}
				}
			}
		})
	}
}

// TestRollupActuallyServes pins that aligned coarse-step aggregations on
// the append-only engines really are answered from the rollup tier, not
// silently from raw points.
func TestRollupActuallyServes(t *testing.T) {
	for _, name := range []string{"mem", "sharded"} {
		t.Run(name, func(t *testing.T) {
			st := readPathEngines()[name]()
			tags := confTags(1, 0, "instret")
			for i := 0; i < 1000; i++ {
				st.Insert(tags, float64(i)*0.5, float64(i))
			}
			before := rollupServed.Load()
			if _, err := QueryAgg(st, Filter{Metric: "instret", From: 0, To: 480},
				AggOptions{Op: AggAvg, Step: 60}); err != nil {
				t.Fatal(err)
			}
			if rollupServed.Load() == before {
				t.Error("aligned query did not touch the rollup tier")
			}
			// Unaligned step must fall back to raw.
			before = rollupServed.Load()
			if _, err := QueryAgg(st, Filter{Metric: "instret", From: 0, To: 480},
				AggOptions{Op: AggAvg, Step: 7}); err != nil {
				t.Fatal(err)
			}
			if rollupServed.Load() != before {
				t.Error("unaligned query was served from the rollup tier")
			}
		})
	}
}

func TestRollupAlignment(t *testing.T) {
	for _, tc := range []struct {
		f    Filter
		opts AggOptions
		want bool
	}{
		{Filter{From: 0, To: 480}, AggOptions{Op: AggAvg, Step: 60}, true},
		{Filter{From: 60, To: 0}, AggOptions{Op: AggSum, Step: 120}, true},
		{Filter{From: 0, To: 480}, AggOptions{Op: AggRate, Step: 60}, false},
		{Filter{From: 0, To: 480}, AggOptions{Op: AggAvg, Step: 90}, false},
		{Filter{From: 30, To: 480}, AggOptions{Op: AggAvg, Step: 60}, false},
		{Filter{From: 0, To: 490}, AggOptions{Op: AggAvg, Step: 60}, false},
		{Filter{From: 0, To: 480}, AggOptions{Op: AggAvg, Step: 0}, false},
		{Filter{From: 0, To: 480}, AggOptions{Op: AggAvg, Step: 30}, false},
	} {
		if got := rollupAligned(tc.f, tc.opts, DefaultRollupStep); got != tc.want {
			t.Errorf("rollupAligned(%+v, %+v) = %v, want %v", tc.f, tc.opts, got, tc.want)
		}
	}
	if rollupAligned(Filter{From: 0, To: 480}, AggOptions{Op: AggAvg, Step: 60}, 0) {
		t.Error("disabled tier reported aligned")
	}
}

// TestParallelQueryDuringIngest hammers the snapshot fan-out (and the
// rollup snapshot copies) while writers are appending: under -race this
// is the regression net for the lock-free read path. Results must stay
// ordered by series creation and aggregation must never error.
func TestParallelQueryDuringIngest(t *testing.T) {
	for _, name := range []string{"mem", "sharded"} {
		t.Run(name, func(t *testing.T) {
			st := readPathEngines()[name]()
			const writers = 8
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					batch := make([]Sample, 0, 8)
					for i := 0; i < 400; i++ {
						batch = batch[:0]
						for core := 0; core < 4; core++ {
							batch = append(batch, Sample{
								Tags: confTags(w, core, "instret"),
								T:    float64(i) * 0.5, V: float64(i),
							})
						}
						st.InsertBatch(batch)
					}
				}(w)
			}
			var rwg sync.WaitGroup
			var readErr error
			var readMu sync.Mutex
			for r := 0; r < 4; r++ {
				rwg.Add(1)
				go func() {
					defer rwg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						// Aligned (rollup-served) and unaligned (raw
						// fan-out) aggregations plus a wide raw scan.
						for _, opts := range []AggOptions{
							{Op: AggMax, Step: 60},
							{Op: AggAvg, Step: 7},
							{Op: AggRate, Step: 30},
						} {
							agg, err := QueryAgg(st, Filter{Metric: "instret"}, opts)
							if err != nil {
								readMu.Lock()
								if readErr == nil {
									readErr = err
								}
								readMu.Unlock()
								return
							}
							for i := 1; i < len(agg); i++ {
								if agg[i].Tags == agg[i-1].Tags {
									readMu.Lock()
									if readErr == nil {
										readErr = fmt.Errorf("duplicate series %v in fan-out merge", agg[i].Tags)
									}
									readMu.Unlock()
									return
								}
							}
						}
					}
				}()
			}
			wg.Wait()
			close(stop)
			rwg.Wait()
			if readErr != nil {
				t.Fatal(readErr)
			}
			// After ingest quiesces, fan-out and sequential answers agree.
			got, err := QueryAgg(st, Filter{Metric: "instret"}, AggOptions{Op: AggSum, Step: 60})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != writers*4 {
				t.Fatalf("aggregated %d series, want %d", len(got), writers*4)
			}
		})
	}
}

// TestRollupOutOfOrderAndDrop pins the tier's edge cases directly:
// front-growth on out-of-order inserts and the overflow drop.
func TestRollupOutOfOrderAndDrop(t *testing.T) {
	r := newSeriesRollup(60)
	r.add(150, 2) // bucket 2
	r.add(30, 1)  // front growth to bucket 0
	r.add(70, 4)  // bucket 1
	r.add(155, 6) // back to bucket 2
	if r.first != 0 || len(r.buckets) != 3 {
		t.Fatalf("tier shape: first=%d len=%d", r.first, len(r.buckets))
	}
	if b := r.buckets[2]; b.n != 2 || b.sum != 8 || b.min != 2 || b.max != 6 {
		t.Errorf("bucket 2 = %+v", b)
	}
	r.add(float64(maxRollupBuckets+1)*60, 9) // overflow: tier drops
	if !r.dropped || r.buckets != nil {
		t.Errorf("tier not dropped on overflow: %+v", r)
	}
	r.add(10, 1) // no-op after drop
	if !r.dropped {
		t.Error("drop did not stick")
	}
	if r.snapshotRange(0, 0) != nil {
		t.Error("dropped tier produced a snapshot")
	}
}

// TestRollupOverflowGuards pins the int64-range guards on the tier: a
// step-aligned query bound far beyond int64 falls through to the raw
// path (instead of wrapping the bucket index and panicking), and an
// extreme sample timestamp drops the tier (instead of wrapping the
// growth arithmetic into a negative make).
func TestRollupOverflowGuards(t *testing.T) {
	st := NewMemStore()
	tags := confTags(1, -1, "m")
	st.Insert(tags, 60, 1)
	st.Insert(tags, 120, 2)
	hugeFrom := 60 * math.Pow(2, 64) // exactly step-aligned, beyond int64
	agg, err := QueryAgg(st, Filter{From: hugeFrom}, AggOptions{Op: AggAvg, Step: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != 1 || len(agg[0].Points) != 0 {
		t.Errorf("huge-From aligned query = %+v, want one silent series", agg)
	}
	if rollupAligned(Filter{From: hugeFrom}, AggOptions{Op: AggAvg, Step: 60}, 60) {
		t.Error("int64-overflowing From reported rollup-aligned")
	}
	if rollupAligned(Filter{From: 0, To: hugeFrom}, AggOptions{Op: AggAvg, Step: 60}, 60) {
		t.Error("int64-overflowing To reported rollup-aligned")
	}

	// Extreme timestamps drop the tier; results still equal the raw twin.
	fast, slow := NewMemStore(), NewMemStore(WithLinearScan(true), WithRollup(-1))
	for _, s := range []Storage{fast, slow} {
		s.Insert(tags, 0, 1)
		s.Insert(tags, 1e300, 2)
		s.Insert(tags, -1e300, 3)
		s.Insert(tags, 60, 4)
	}
	got, err := QueryAgg(fast, Filter{From: 0, To: 120}, AggOptions{Op: AggSum, Step: 60})
	if err != nil {
		t.Fatal(err)
	}
	want, err := QueryAgg(slow, Filter{From: 0, To: 120}, AggOptions{Op: AggSum, Step: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-drop aggregation diverges: %+v vs %+v", got, want)
	}
}
