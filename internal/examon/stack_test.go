package examon

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"

	"montecimone/internal/node"
	"montecimone/internal/power"
	"montecimone/internal/sim"
	"montecimone/internal/thermal"
)

// testRig wires one monitored node to a broker and TSDB on an engine.
type testRig struct {
	engine *sim.Engine
	node   *node.Node
	broker *Broker
	db     *TSDB
	pmu    *PMUPub
	stats  *StatsPub
}

func newRig(t *testing.T, hpmPatch bool) *testRig {
	t.Helper()
	engine := sim.NewEngine()
	nd, err := node.New(node.Config{ID: 1, Enclosure: thermal.DefaultEnclosure(), HPMPatch: hpmPatch})
	if err != nil {
		t.Fatal(err)
	}
	broker := NewBroker()
	db := NewTSDB()
	if _, err := db.Attach(broker); err != nil {
		t.Fatal(err)
	}
	pmu, err := NewPMUPub(broker, nd, "", "")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := NewStatsPub(broker, nd, "", "")
	if err != nil {
		t.Fatal(err)
	}
	// Node stepping ticker.
	if _, err := sim.NewTicker(engine, 0.1, 0.1, "step", func(now float64) { nd.Step(now) }); err != nil {
		t.Fatal(err)
	}
	return &testRig{engine: engine, node: nd, broker: broker, db: db, pmu: pmu, stats: stats}
}

// boot powers the node and runs until it is up with plugins started.
func (r *testRig) boot(t *testing.T) {
	t.Helper()
	if err := r.node.PowerOn(0); err != nil {
		t.Fatal(err)
	}
	if err := r.pmu.Start(r.engine); err != nil {
		t.Fatal(err)
	}
	if err := r.stats.Start(r.engine); err != nil {
		t.Fatal(err)
	}
	if err := r.engine.RunUntil(node.R1Duration + node.R2Duration + 1); err != nil {
		t.Fatal(err)
	}
}

func TestPMUPubPublishesFixedCounters(t *testing.T) {
	rig := newRig(t, false)
	rig.boot(t)
	if err := rig.node.SetWorkload("hpl", power.ActivityHPL, 1e9); err != nil {
		t.Fatal(err)
	}
	if err := rig.engine.RunUntil(rig.engine.Now() + 10); err != nil {
		t.Fatal(err)
	}
	series := rig.db.Query(Filter{Plugin: "pmu_pub", Metric: "instret"})
	if len(series) != 4 {
		t.Fatalf("instret series = %d, want 4 (one per core)", len(series))
	}
	for _, s := range series {
		if len(s.Points) < 15 { // ~2 Hz over 10 s
			t.Errorf("core %d has %d points, want ~20", s.Tags.Core, len(s.Points))
		}
		// Counter must be cumulative (non-decreasing).
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].V < s.Points[i-1].V {
				t.Fatalf("core %d counter decreased", s.Tags.Core)
			}
		}
	}
	// Without the U-Boot patch no programmable counters appear.
	if got := rig.db.Query(Filter{Plugin: "pmu_pub", Metric: "l2_miss"}); len(got) != 0 {
		t.Errorf("l2_miss series on stock boot loader: %d", len(got))
	}
}

func TestPMUPubHPMCountersWithBootPatch(t *testing.T) {
	rig := newRig(t, true)
	rig.boot(t)
	if err := rig.node.SetWorkload("stream", power.ActivityStreamDDR, 2e9); err != nil {
		t.Fatal(err)
	}
	if err := rig.engine.RunUntil(rig.engine.Now() + 10); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"l2_miss", "ddr_read", "ddr_write", "branch_miss"} {
		if got := rig.db.Query(Filter{Plugin: "pmu_pub", Metric: metric}); len(got) != 4 {
			t.Errorf("%s series = %d, want 4", metric, len(got))
		}
	}
}

func TestInstructionRateTracksWorkload(t *testing.T) {
	rig := newRig(t, false)
	rig.boot(t)
	idleEnd := rig.engine.Now() + 20
	if err := rig.engine.RunUntil(idleEnd); err != nil {
		t.Fatal(err)
	}
	if err := rig.node.SetWorkload("hpl", power.ActivityHPL, 1e9); err != nil {
		t.Fatal(err)
	}
	loadEnd := idleEnd + 20
	if err := rig.engine.RunUntil(loadEnd); err != nil {
		t.Fatal(err)
	}
	series := rig.db.Query(Filter{Plugin: "pmu_pub", Metric: "instret", Core: intPtr(0)})
	if len(series) != 1 {
		t.Fatalf("series = %d", len(series))
	}
	rate := Rate(series[0])
	idleRate, loadRate := 0.0, 0.0
	var idleN, loadN int
	for _, p := range rate.Points {
		if p.T < idleEnd {
			idleRate += p.V
			idleN++
		} else {
			loadRate += p.V
			loadN++
		}
	}
	if idleN == 0 || loadN == 0 {
		t.Fatal("missing rate points")
	}
	idleRate /= float64(idleN)
	loadRate /= float64(loadN)
	// HPL keeps 46.5 % of the dual-issue slots busy: 1.116e9 instr/s/core.
	if loadRate < 1.0e9 || loadRate > 1.2e9 {
		t.Errorf("HPL instruction rate = %v, want ~1.116e9", loadRate)
	}
	if idleRate > loadRate/10 {
		t.Errorf("idle rate %v not well below load rate %v", idleRate, loadRate)
	}
}

func TestStatsPubPublishesTableIII(t *testing.T) {
	rig := newRig(t, false)
	rig.boot(t)
	if err := rig.engine.RunUntil(rig.engine.Now() + 30); err != nil {
		t.Fatal(err)
	}
	for _, metric := range StatsMetrics {
		series := rig.db.Query(Filter{Plugin: "dstat_pub", Metric: metric})
		if len(series) != 1 {
			t.Errorf("metric %s: %d series, want 1", metric, len(series))
			continue
		}
		if len(series[0].Points) < 4 { // 0.2 Hz over ~30 s
			t.Errorf("metric %s: %d points", metric, len(series[0].Points))
		}
	}
	// Temperatures must be plausible.
	temps := rig.db.Query(Filter{Metric: "temperature.cpu_temp"})
	last := temps[0].Points[len(temps[0].Points)-1]
	if last.V < 25 || last.V > 110 {
		t.Errorf("cpu temp = %v", last.V)
	}
}

func TestPluginsQuietWhileBooting(t *testing.T) {
	rig := newRig(t, false)
	if err := rig.node.PowerOn(0); err != nil {
		t.Fatal(err)
	}
	if err := rig.pmu.Start(rig.engine); err != nil {
		t.Fatal(err)
	}
	if err := rig.stats.Start(rig.engine); err != nil {
		t.Fatal(err)
	}
	if err := rig.engine.RunUntil(5); err != nil { // still in R1
		t.Fatal(err)
	}
	if rig.db.SeriesCount() != 0 {
		t.Errorf("plugins published during boot: %d series", rig.db.SeriesCount())
	}
}

func TestPluginStartStop(t *testing.T) {
	rig := newRig(t, false)
	rig.boot(t)
	if err := rig.pmu.Start(rig.engine); err == nil {
		t.Error("double start accepted")
	}
	rig.pmu.Stop()
	rig.stats.Stop()
	countAt := rig.broker.Published()
	if err := rig.engine.RunUntil(rig.engine.Now() + 10); err != nil {
		t.Fatal(err)
	}
	if rig.broker.Published() != countAt {
		t.Error("plugins still publishing after Stop")
	}
	// Restart works.
	if err := rig.pmu.Start(rig.engine); err != nil {
		t.Fatal(err)
	}
}

func TestTSDBQueryTimeRange(t *testing.T) {
	db := NewTSDB()
	tags := Tags{Org: "o", Cluster: "c", Node: "mc01", Plugin: "dstat_pub", Core: -1, Metric: "m"}
	for i := 0; i < 10; i++ {
		db.Insert(tags, float64(i), float64(i*10))
	}
	got := db.Query(Filter{Node: "mc01", From: 3, To: 7})
	if len(got) != 1 {
		t.Fatalf("series = %d", len(got))
	}
	if len(got[0].Points) != 4 {
		t.Errorf("points = %d, want 4 (t=3..6)", len(got[0].Points))
	}
	if got := db.Query(Filter{Node: "mc99"}); len(got) != 0 {
		t.Errorf("unknown node matched %d series", len(got))
	}
}

func TestRateHandlesResets(t *testing.T) {
	s := Series{Points: []Point{{T: 0, V: 100}, {T: 1, V: 300}, {T: 1, V: 300}, {T: 2, V: 500}}}
	r := Rate(s)
	if len(r.Points) != 2 {
		t.Fatalf("rate points = %d (zero-dt pairs must be skipped)", len(r.Points))
	}
	if r.Points[0].V != 200 || r.Points[1].V != 200 {
		t.Errorf("rates = %+v", r.Points)
	}
}

func TestRESTAPI(t *testing.T) {
	rig := newRig(t, false)
	rig.boot(t)
	if err := rig.engine.RunUntil(rig.engine.Now() + 15); err != nil {
		t.Fatal(err)
	}
	srv, err := NewRESTServer(rig.db)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Series listing.
	res, err := ts.Client().Get(ts.URL + "/api/v1/series")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var listing struct {
		Series []string `json:"series"`
	}
	if err := json.NewDecoder(res.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Series) == 0 {
		t.Fatal("no series listed")
	}

	// Range query for one core's cycle counter.
	res2, err := ts.Client().Get(ts.URL + "/api/v1/query?node=mc01&plugin=pmu_pub&metric=cycle&core=0")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	var q struct {
		Series []struct {
			Node   string       `json:"node"`
			Core   int          `json:"core"`
			Points [][2]float64 `json:"points"`
		} `json:"series"`
	}
	if err := json.NewDecoder(res2.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	if len(q.Series) != 1 || q.Series[0].Core != 0 || len(q.Series[0].Points) == 0 {
		t.Fatalf("query response = %+v", q)
	}

	// Bad parameters.
	res3, _ := ts.Client().Get(ts.URL + "/api/v1/query?core=banana")
	if res3.StatusCode != 400 {
		t.Errorf("bad core -> %d, want 400", res3.StatusCode)
	}
	res3.Body.Close()
	res4, _ := ts.Client().Get(ts.URL + "/api/v1/query?from=xyz")
	if res4.StatusCode != 400 {
		t.Errorf("bad from -> %d, want 400", res4.StatusCode)
	}
	res4.Body.Close()
}

func TestBuildHeatmap(t *testing.T) {
	db := NewTSDB()
	// Two nodes, cumulative counters growing at different rates.
	for _, nodeName := range []string{"mc01", "mc02"} {
		rate := 100.0
		if nodeName == "mc02" {
			rate = 200.0
		}
		for core := 0; core < 2; core++ {
			tags := Tags{Org: "o", Cluster: "c", Node: nodeName, Plugin: "pmu_pub", Core: core, Metric: "instret"}
			total := 0.0
			for i := 0; i <= 20; i++ {
				db.Insert(tags, float64(i)*0.5, total)
				total += rate * 0.5
			}
		}
	}
	hm, err := BuildHeatmap(db, []string{"mc01", "mc02"}, HeatmapOptions{
		Plugin: "pmu_pub", Metric: "instret", Rate: true, SumCores: true,
		From: 0, To: 10, BinWidth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hm.Bins() != 5 {
		t.Fatalf("bins = %d, want 5", hm.Bins())
	}
	// Node 1: 2 cores x 100/s = 200/s; node 2: 400/s.
	if math.Abs(hm.Values[0][2]-200) > 1e-9 {
		t.Errorf("mc01 rate = %v, want 200", hm.Values[0][2])
	}
	if math.Abs(hm.Values[1][2]-400) > 1e-9 {
		t.Errorf("mc02 rate = %v, want 400", hm.Values[1][2])
	}
	if hm.MaxValue() != 400 {
		t.Errorf("max = %v", hm.MaxValue())
	}
	if mean := hm.RowMean(1); math.Abs(mean-400) > 1e-9 {
		t.Errorf("row mean = %v", mean)
	}
}

func TestBuildHeatmapValidation(t *testing.T) {
	db := NewTSDB()
	if _, err := BuildHeatmap(nil, []string{"a"}, HeatmapOptions{From: 0, To: 1, BinWidth: 1}); err == nil {
		t.Error("nil db accepted")
	}
	if _, err := BuildHeatmap(db, nil, HeatmapOptions{From: 0, To: 1, BinWidth: 1}); err == nil {
		t.Error("no nodes accepted")
	}
	if _, err := BuildHeatmap(db, []string{"a"}, HeatmapOptions{From: 0, To: 1}); err == nil {
		t.Error("zero bin width accepted")
	}
	if _, err := BuildHeatmap(db, []string{"a"}, HeatmapOptions{From: 1, To: 1, BinWidth: 1}); err == nil {
		t.Error("empty range accepted")
	}
	// Empty data yields NaN cells, not an error.
	hm, err := BuildHeatmap(db, []string{"a"}, HeatmapOptions{From: 0, To: 2, BinWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(hm.Values[0][0]) {
		t.Error("empty bin not NaN")
	}
}

func intPtr(v int) *int { return &v }
