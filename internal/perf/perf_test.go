package perf

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func newTestPMU(t *testing.T, hpm bool) *PMU {
	t.Helper()
	p, err := NewPMU(4, 1.2e9, 2, 64, hpm)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPMUValidation(t *testing.T) {
	if _, err := NewPMU(0, 1e9, 2, 64, true); err == nil {
		t.Error("zero harts accepted")
	}
	if _, err := NewPMU(4, 0, 2, 64, true); err == nil {
		t.Error("zero clock accepted")
	}
	if _, err := NewPMU(4, 1e9, 0, 64, true); err == nil {
		t.Error("zero issue width accepted")
	}
	if _, err := NewPMU(4, 1e9, 2, 0, true); err == nil {
		t.Error("zero line size accepted")
	}
}

func TestFixedCountersAlwaysReadable(t *testing.T) {
	p := newTestPMU(t, false)
	p.Advance(1.0, Load{CoreActivity: 0.5})
	for hart := 0; hart < p.Harts(); hart++ {
		cycles, err := p.Read(hart, EventCycle)
		if err != nil {
			t.Fatalf("hart %d cycle: %v", hart, err)
		}
		if cycles != 1_200_000_000 {
			t.Errorf("hart %d cycles = %d, want 1.2e9", hart, cycles)
		}
		instr, err := p.Read(hart, EventInstret)
		if err != nil {
			t.Fatalf("hart %d instret: %v", hart, err)
		}
		// 2 IPC x 1.2 GHz x 0.5 activity = 1.2e9 instructions.
		if instr != 1_200_000_000 {
			t.Errorf("hart %d instret = %d, want 1.2e9", hart, instr)
		}
	}
}

func TestProgrammableCountersGatedByBootPatch(t *testing.T) {
	// The paper's kernel exposes only INSTRET and CYCLE; the programmable
	// HPM counters need the authors' U-Boot patch.
	stock := newTestPMU(t, false)
	stock.Advance(1, Load{CoreActivity: 1, DDRReadBytesPerSec: 1e9})
	if _, err := stock.Read(0, EventDDRRead); !errors.Is(err, ErrHPMDisabled) {
		t.Errorf("stock boot loader: err = %v, want ErrHPMDisabled", err)
	}

	patched := newTestPMU(t, true)
	patched.Advance(1, Load{CoreActivity: 1, DDRReadBytesPerSec: 1e9})
	got, err := patched.Read(0, EventDDRRead)
	if err != nil {
		t.Fatalf("patched boot loader: %v", err)
	}
	// 1e9 B/s over 64 B lines over 4 harts = 3_906_250 lines/hart.
	if got != 3_906_250 {
		t.Errorf("ddr reads = %d, want 3906250", got)
	}
}

func TestL2MissIsReadPlusWrite(t *testing.T) {
	p := newTestPMU(t, true)
	p.Advance(2, Load{DDRReadBytesPerSec: 64e6, DDRWriteBytesPerSec: 32e6})
	r, _ := p.Read(1, EventDDRRead)
	w, _ := p.Read(1, EventDDRWrite)
	l2, _ := p.Read(1, EventL2Miss)
	if l2 != r+w {
		t.Errorf("l2 misses %d != reads %d + writes %d", l2, r, w)
	}
}

func TestReadValidation(t *testing.T) {
	p := newTestPMU(t, true)
	if _, err := p.Read(-1, EventCycle); err == nil {
		t.Error("negative hart accepted")
	}
	if _, err := p.Read(4, EventCycle); err == nil {
		t.Error("out-of-range hart accepted")
	}
	if _, err := p.Read(0, Event(99)); err == nil {
		t.Error("unknown event accepted")
	}
}

func TestIPCTracksActivity(t *testing.T) {
	p := newTestPMU(t, false)
	p.Advance(10, Load{CoreActivity: 0.465}) // HPL-like FPU utilisation
	ipc, err := p.IPC(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ipc-0.93) > 1e-6 { // 2 issue slots x 0.465
		t.Errorf("IPC = %v, want 0.93", ipc)
	}
}

func TestIPCZeroCycles(t *testing.T) {
	p := newTestPMU(t, false)
	ipc, err := p.IPC(0)
	if err != nil || ipc != 0 {
		t.Errorf("IPC on fresh PMU = %v, %v; want 0, nil", ipc, err)
	}
}

func TestAdvanceClampsActivity(t *testing.T) {
	p := newTestPMU(t, false)
	p.Advance(1, Load{CoreActivity: 7})
	instr, _ := p.Read(0, EventInstret)
	if instr != 2_400_000_000 { // clamped to 1.0 activity
		t.Errorf("instret = %d, want 2.4e9 (clamped)", instr)
	}
	q := newTestPMU(t, false)
	q.Advance(1, Load{CoreActivity: -3})
	instr, _ = q.Read(0, EventInstret)
	if instr != 0 {
		t.Errorf("instret = %d, want 0 for negative activity", instr)
	}
}

func TestFractionalAccumulation(t *testing.T) {
	// Many tiny steps must accumulate the same counts as one large step.
	a := newTestPMU(t, true)
	b := newTestPMU(t, true)
	load := Load{CoreActivity: 0.3, DDRReadBytesPerSec: 333, DDRWriteBytesPerSec: 111}
	for i := 0; i < 1000; i++ {
		a.Advance(0.001, load)
	}
	b.Advance(1.0, load)
	for _, ev := range append(append([]Event{}, FixedEvents...), ProgrammableEvents...) {
		av, errA := a.Read(0, ev)
		bv, errB := b.Read(0, ev)
		if errA != nil || errB != nil {
			t.Fatalf("%v: %v %v", ev, errA, errB)
		}
		diff := int64(av) - int64(bv)
		if diff < -1 || diff > 1 {
			t.Errorf("%v: split advance %d vs bulk %d", ev, av, bv)
		}
	}
}

func TestCountersMonotoneProperty(t *testing.T) {
	p := newTestPMU(t, true)
	prev := make(map[Event]uint64)
	prop := func(dtRaw, actRaw uint8) bool {
		dt := float64(dtRaw) / 100
		act := float64(actRaw) / 255
		p.Advance(dt, Load{CoreActivity: act, DDRReadBytesPerSec: act * 1e9})
		for _, ev := range []Event{EventInstret, EventCycle, EventDDRRead} {
			v, err := p.Read(0, ev)
			if err != nil || v < prev[ev] {
				return false
			}
			prev[ev] = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEventString(t *testing.T) {
	names := map[Event]string{
		EventInstret: "instret", EventCycle: "cycle", EventL2Miss: "l2_miss",
		EventDDRRead: "ddr_read", EventDDRWrite: "ddr_write", EventBranchMiss: "branch_miss",
	}
	for ev, want := range names {
		if ev.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(ev), ev.String(), want)
		}
	}
	if Event(50).String() != "Event(50)" {
		t.Error("unknown event string")
	}
}
