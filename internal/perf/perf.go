// Package perf models the RISC-V hardware performance monitoring (HPM) unit
// of the SiFive Freedom U740 as exposed through the Linux perf_events
// interface.
//
// In the kernel version deployed on Monte Cimone the RISC-V architecture
// exposes only the fixed INSTRET and CYCLE counters through perf_events;
// the programmable HPM counters are disabled at boot time by default. The
// paper's authors developed a U-Boot patch that enables and programs all
// counters — modelled here by the HPMEnabled construction flag, which the
// node's boot loader sets when the patch is applied.
package perf

import "fmt"

// Event identifies a hardware counter event.
type Event int

// Counter events. Instret and Cycle are the fixed counters always exposed
// by the kernel; the remainder live on programmable HPM counters and
// require the U-Boot patch.
const (
	EventInstret Event = iota + 1
	EventCycle
	EventL2Miss
	EventDDRRead
	EventDDRWrite
	EventBranchMiss
)

// String returns the perf-style event name.
func (ev Event) String() string {
	switch ev {
	case EventInstret:
		return "instret"
	case EventCycle:
		return "cycle"
	case EventL2Miss:
		return "l2_miss"
	case EventDDRRead:
		return "ddr_read"
	case EventDDRWrite:
		return "ddr_write"
	case EventBranchMiss:
		return "branch_miss"
	default:
		return fmt.Sprintf("Event(%d)", int(ev))
	}
}

// FixedEvents are always available; ProgrammableEvents require the HPM
// boot-loader patch.
var (
	FixedEvents        = []Event{EventInstret, EventCycle}
	ProgrammableEvents = []Event{EventL2Miss, EventDDRRead, EventDDRWrite, EventBranchMiss}
)

// Fixed reports whether the event lives on a fixed counter.
func (ev Event) Fixed() bool { return ev == EventInstret || ev == EventCycle }

// Load describes the demand a workload places on the core complex, used to
// advance the counters.
type Load struct {
	// CoreActivity is the fraction of issue slots kept busy, in [0,1].
	CoreActivity float64
	// DDRReadBytesPerSec and DDRWriteBytesPerSec are main-memory traffic.
	DDRReadBytesPerSec  float64
	DDRWriteBytesPerSec float64
	// ClockScale is the DVFS frequency scale in (0,1]; zero means full
	// frequency.
	ClockScale float64
}

// ErrHPMDisabled is returned when reading a programmable counter on a PMU
// whose boot loader did not apply the counter-enable patch.
var ErrHPMDisabled = fmt.Errorf("perf: programmable HPM counters disabled at boot (U-Boot patch not applied)")

// PMU models the per-hart counter state of one SoC.
type PMU struct {
	clockHz    float64
	issueWidth float64
	lineBytes  float64
	hpmEnabled bool

	harts []hartCounters
}

// numEvents sizes the per-hart accumulator arrays: events are small
// consecutive constants (1..EventBranchMiss) indexed directly, which keeps
// Advance — the single hottest function in the whole simulator — free of
// map hashing.
const numEvents = int(EventBranchMiss) + 1

type hartCounters struct {
	counts [numEvents]uint64
	frac   [numEvents]float64 // fractional accumulation between ticks
}

// NewPMU builds a PMU for a core complex with the given hart count and
// clock. issueWidth is the peak instructions per cycle (2 for the
// dual-issue U74); hpmEnabled reflects the U-Boot patch.
func NewPMU(harts int, clockHz, issueWidth float64, lineBytes int, hpmEnabled bool) (*PMU, error) {
	if harts <= 0 {
		return nil, fmt.Errorf("perf: hart count must be positive, got %d", harts)
	}
	if clockHz <= 0 || issueWidth <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("perf: clock, issue width and line size must be positive")
	}
	return &PMU{
		clockHz:    clockHz,
		issueWidth: issueWidth,
		lineBytes:  float64(lineBytes),
		hpmEnabled: hpmEnabled,
		harts:      make([]hartCounters, harts),
	}, nil
}

// Harts returns the number of harts with counters.
func (p *PMU) Harts() int { return len(p.harts) }

// HPMEnabled reports whether programmable counters were enabled at boot.
func (p *PMU) HPMEnabled() bool { return p.hpmEnabled }

// Advance accrues dt seconds of execution under the given load across all
// harts. The cycle counter always runs; instret advances with the issue
// slots the load keeps busy; memory events divide traffic into cache lines
// spread evenly over harts.
func (p *PMU) Advance(dt float64, load Load) {
	if dt <= 0 {
		return
	}
	ca := load.CoreActivity
	if ca < 0 {
		ca = 0
	} else if ca > 1 {
		ca = 1
	}
	scale := load.ClockScale
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	n := float64(len(p.harts))
	var perHart [numEvents]float64
	perHart[EventCycle] = p.clockHz * scale * dt
	perHart[EventInstret] = p.issueWidth * p.clockHz * scale * dt * ca
	perHart[EventDDRRead] = load.DDRReadBytesPerSec * dt / p.lineBytes / n
	perHart[EventDDRWrite] = load.DDRWriteBytesPerSec * dt / p.lineBytes / n
	perHart[EventBranchMiss] = 0.005 * p.issueWidth * p.clockHz * scale * dt * ca
	perHart[EventL2Miss] = perHart[EventDDRRead] + perHart[EventDDRWrite]
	for i := range p.harts {
		h := &p.harts[i]
		for ev := int(EventInstret); ev < numEvents; ev++ {
			acc := h.frac[ev] + perHart[ev]
			whole := uint64(acc)
			h.counts[ev] += whole
			h.frac[ev] = acc - float64(whole)
		}
	}
}

// Read returns the current value of a counter on one hart. Programmable
// events return ErrHPMDisabled unless the boot patch enabled them.
func (p *PMU) Read(hart int, ev Event) (uint64, error) {
	if hart < 0 || hart >= len(p.harts) {
		return 0, fmt.Errorf("perf: hart %d out of range [0,%d)", hart, len(p.harts))
	}
	if !ev.Fixed() && !p.hpmEnabled {
		return 0, ErrHPMDisabled
	}
	if !ev.Fixed() && !knownEvent(ev) {
		return 0, fmt.Errorf("perf: unknown event %v", ev)
	}
	return p.harts[hart].counts[int(ev)], nil
}

func knownEvent(ev Event) bool {
	for _, e := range ProgrammableEvents {
		if e == ev {
			return true
		}
	}
	return ev.Fixed()
}

// IPC returns instructions per cycle on a hart since the PMU was created.
func (p *PMU) IPC(hart int) (float64, error) {
	instr, err := p.Read(hart, EventInstret)
	if err != nil {
		return 0, err
	}
	cycles, err := p.Read(hart, EventCycle)
	if err != nil {
		return 0, err
	}
	if cycles == 0 {
		return 0, nil
	}
	return float64(instr) / float64(cycles), nil
}
