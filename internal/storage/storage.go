// Package storage models the Monte Cimone storage hierarchy: the 1 TB NVMe
// 2280 module in each node's M.2 slot (hosting the operating system) and
// the cluster-wide NFS share exported by the master node that every compute
// node mounts.
package storage

import (
	"errors"
	"fmt"
)

// ErrNoSpace is returned when a write exceeds the device capacity.
var ErrNoSpace = errors.New("storage: no space left on device")

// NVMe models a node-local NVMe SSD.
type NVMe struct {
	capacityBytes int64
	readBps       float64
	writeBps      float64
	latencySec    float64

	usedBytes  int64
	readTotal  float64
	writeTotal float64
}

// NewNVMe returns the 1 TB module used in the RV007 nodes: ~2.0 GB/s reads,
// ~1.6 GB/s writes over the PCIe Gen3 link, 80 us access latency.
func NewNVMe() *NVMe {
	return &NVMe{
		capacityBytes: 1_000_000_000_000,
		readBps:       2.0e9,
		writeBps:      1.6e9,
		latencySec:    80e-6,
	}
}

// CapacityBytes returns the device capacity.
func (d *NVMe) CapacityBytes() int64 { return d.capacityBytes }

// UsedBytes returns the allocated bytes.
func (d *NVMe) UsedBytes() int64 { return d.usedBytes }

// Read models reading the given bytes, returning the transfer duration.
func (d *NVMe) Read(bytes int64) (float64, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("storage: negative read size %d", bytes)
	}
	d.readTotal += float64(bytes)
	return d.latencySec + float64(bytes)/d.readBps, nil
}

// Write models appending the given bytes, consuming capacity.
func (d *NVMe) Write(bytes int64) (float64, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("storage: negative write size %d", bytes)
	}
	if d.usedBytes+bytes > d.capacityBytes {
		return 0, fmt.Errorf("storage: write of %d bytes with %d free: %w",
			bytes, d.capacityBytes-d.usedBytes, ErrNoSpace)
	}
	d.usedBytes += bytes
	d.writeTotal += float64(bytes)
	return d.latencySec + float64(bytes)/d.writeBps, nil
}

// Free releases bytes (file deletion).
func (d *NVMe) Free(bytes int64) {
	d.usedBytes -= bytes
	if d.usedBytes < 0 {
		d.usedBytes = 0
	}
}

// Totals returns cumulative read and write bytes (for stats_pub).
func (d *NVMe) Totals() (readBytes, writeBytes float64) {
	return d.readTotal, d.writeTotal
}

// NFS models the master node's network file system export. Client
// throughput is bounded by the client's GbE link and by fair sharing of the
// server's link among concurrently mounted clients.
type NFS struct {
	serverBps  float64
	latencySec float64
	mounts     map[string]*Mount
}

// NewNFS returns an NFS server reachable over the 1 GbE fabric.
func NewNFS() *NFS {
	return &NFS{
		serverBps:  117.5e6, // server GbE payload bandwidth
		latencySec: 250e-6,  // RPC round trip incl. protocol overhead
		mounts:     make(map[string]*Mount),
	}
}

// Mount attaches a client host to the share. Mounting twice is an error.
func (s *NFS) Mount(host string) (*Mount, error) {
	if host == "" {
		return nil, fmt.Errorf("storage: empty host")
	}
	if _, ok := s.mounts[host]; ok {
		return nil, fmt.Errorf("storage: host %s already mounted", host)
	}
	m := &Mount{server: s, host: host}
	s.mounts[host] = m
	return m, nil
}

// Unmount detaches a client.
func (s *NFS) Unmount(host string) error {
	if _, ok := s.mounts[host]; !ok {
		return fmt.Errorf("storage: host %s not mounted", host)
	}
	delete(s.mounts, host)
	return nil
}

// Clients returns the number of mounted clients.
func (s *NFS) Clients() int { return len(s.mounts) }

// Mount is one client's attachment to the NFS share.
type Mount struct {
	server *NFS
	host   string

	readTotal  float64
	writeTotal float64
}

// effectiveBps fair-shares the server link among mounted clients.
func (m *Mount) effectiveBps() float64 {
	n := len(m.server.mounts)
	if n < 1 {
		n = 1
	}
	return m.server.serverBps / float64(n)
}

// Read models an NFS read, returning its duration.
func (m *Mount) Read(bytes int64) (float64, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("storage: negative read size %d", bytes)
	}
	m.readTotal += float64(bytes)
	return m.server.latencySec + float64(bytes)/m.effectiveBps(), nil
}

// Write models an NFS write, returning its duration.
func (m *Mount) Write(bytes int64) (float64, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("storage: negative write size %d", bytes)
	}
	m.writeTotal += float64(bytes)
	return m.server.latencySec + float64(bytes)/m.effectiveBps(), nil
}

// Totals returns the client's cumulative read/write bytes.
func (m *Mount) Totals() (readBytes, writeBytes float64) {
	return m.readTotal, m.writeTotal
}
