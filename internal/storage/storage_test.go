package storage

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNVMeReadWrite(t *testing.T) {
	d := NewNVMe()
	if d.CapacityBytes() != 1_000_000_000_000 {
		t.Errorf("capacity = %d, want 1 TB", d.CapacityBytes())
	}
	dur, err := d.Write(1.6e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dur-(1.0+80e-6)) > 1e-9 {
		t.Errorf("write duration = %v, want ~1 s", dur)
	}
	dur, err = d.Read(2.0e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dur-(1.0+80e-6)) > 1e-9 {
		t.Errorf("read duration = %v, want ~1 s", dur)
	}
	r, w := d.Totals()
	if r != 2.0e9 || w != 1.6e9 {
		t.Errorf("totals = %v, %v", r, w)
	}
}

func TestNVMeCapacity(t *testing.T) {
	d := NewNVMe()
	if _, err := d.Write(d.CapacityBytes()); err != nil {
		t.Fatalf("full write rejected: %v", err)
	}
	if _, err := d.Write(1); !errors.Is(err, ErrNoSpace) {
		t.Errorf("overflow err = %v, want ErrNoSpace", err)
	}
	d.Free(100)
	if _, err := d.Write(100); err != nil {
		t.Errorf("write after free: %v", err)
	}
	d.Free(1 << 62)
	if d.UsedBytes() != 0 {
		t.Errorf("over-free used = %d", d.UsedBytes())
	}
}

func TestNVMeValidation(t *testing.T) {
	d := NewNVMe()
	if _, err := d.Read(-1); err == nil {
		t.Error("negative read accepted")
	}
	if _, err := d.Write(-1); err == nil {
		t.Error("negative write accepted")
	}
}

func TestNFSMountLifecycle(t *testing.T) {
	s := NewNFS()
	m, err := s.Mount("mc01")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mount("mc01"); err == nil {
		t.Error("double mount accepted")
	}
	if _, err := s.Mount(""); err == nil {
		t.Error("empty host accepted")
	}
	if s.Clients() != 1 {
		t.Errorf("clients = %d", s.Clients())
	}
	if _, err := m.Read(1024); err != nil {
		t.Fatal(err)
	}
	if err := s.Unmount("mc01"); err != nil {
		t.Fatal(err)
	}
	if err := s.Unmount("mc01"); err == nil {
		t.Error("double unmount accepted")
	}
}

func TestNFSFairSharing(t *testing.T) {
	s := NewNFS()
	m1, _ := s.Mount("mc01")
	solo, _ := m1.Read(117.5e6)
	for i := 2; i <= 8; i++ {
		host := string(rune('a' + i))
		if _, err := s.Mount(host); err != nil {
			t.Fatal(err)
		}
	}
	shared, _ := m1.Read(117.5e6)
	// Eight clients share the server link.
	soloXfer := solo - 250e-6
	sharedXfer := shared - 250e-6
	if math.Abs(sharedXfer-8*soloXfer) > 1e-6 {
		t.Errorf("shared = %v, want 8x solo %v", sharedXfer, soloXfer)
	}
}

func TestNFSValidation(t *testing.T) {
	s := NewNFS()
	m, _ := s.Mount("mc01")
	if _, err := m.Read(-1); err == nil {
		t.Error("negative read accepted")
	}
	if _, err := m.Write(-1); err == nil {
		t.Error("negative write accepted")
	}
}

func TestNFSTotals(t *testing.T) {
	s := NewNFS()
	m, _ := s.Mount("mc01")
	_, _ = m.Read(100)
	_, _ = m.Write(50)
	r, w := m.Totals()
	if r != 100 || w != 50 {
		t.Errorf("totals = %v, %v", r, w)
	}
}

// Property: used bytes never exceed capacity and never go negative under
// arbitrary write/free sequences.
func TestNVMeInvariantProperty(t *testing.T) {
	prop := func(ops []int32) bool {
		d := NewNVMe()
		for _, op := range ops {
			if op >= 0 {
				_, _ = d.Write(int64(op) * 1e6)
			} else {
				d.Free(int64(-op) * 1e6)
			}
			if d.UsedBytes() < 0 || d.UsedBytes() > d.CapacityBytes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
