package power

import (
	"math"
	"testing"
	"testing/quick"
)

// tableVI holds the paper's Table VI in milliwatts, per rail per workload.
var tableVI = map[string]map[Rail]float64{
	"Idle": {
		RailCore: 3075, RailDDRSoC: 139, RailIO: 20, RailPLL: 1,
		RailPCIeVP: 521, RailPCIeVPH: 555, RailDDRMem: 404,
		RailDDRPLL: 28, RailDDRVpp: 67,
	},
	"HPL": {
		RailCore: 4097, RailDDRSoC: 177, RailIO: 20, RailPLL: 1,
		RailPCIeVP: 527, RailPCIeVPH: 554, RailDDRMem: 440,
		RailDDRPLL: 28, RailDDRVpp: 90,
	},
	"STREAM.L2": {
		RailCore: 3714, RailDDRSoC: 170, RailIO: 20, RailPLL: 1,
		RailPCIeVP: 524, RailPCIeVPH: 554, RailDDRMem: 401,
		RailDDRPLL: 28, RailDDRVpp: 73,
	},
	"STREAM.DDR": {
		RailCore: 3287, RailDDRSoC: 232, RailIO: 20, RailPLL: 1,
		RailPCIeVP: 522, RailPCIeVPH: 555, RailDDRMem: 592,
		RailDDRPLL: 28, RailDDRVpp: 98,
	},
	"QE": {
		RailCore: 3825, RailDDRSoC: 176, RailIO: 20, RailPLL: 1,
		RailPCIeVP: 530, RailPCIeVPH: 561, RailDDRMem: 434,
		RailDDRPLL: 28, RailDDRVpp: 95,
	},
}

// tableVITotals holds the paper's per-workload totals in milliwatts.
var tableVITotals = map[string]float64{
	"Idle": 4810, "HPL": 5935, "STREAM.L2": 5486, "STREAM.DDR": 5336, "QE": 5670,
}

var workloadActivity = map[string]Activity{
	"Idle": ActivityIdle, "HPL": ActivityHPL, "STREAM.L2": ActivityStreamL2,
	"STREAM.DDR": ActivityStreamDDR, "QE": ActivityQE,
}

func TestTableVIRails(t *testing.T) {
	m := NewModel()
	for workload, rails := range tableVI {
		act := workloadActivity[workload]
		for rail, want := range rails {
			got := m.RailMilliwatts(rail, PhaseRun, act)
			tol := math.Max(0.12*want, 16)
			if math.Abs(got-want) > tol {
				t.Errorf("%s/%s = %.1f mW, want %.0f (+-%.0f)", workload, rail, got, want, tol)
			}
		}
	}
}

func TestTableVITotals(t *testing.T) {
	m := NewModel()
	for workload, want := range tableVITotals {
		got := m.TotalMilliwatts(PhaseRun, workloadActivity[workload])
		if math.Abs(got-want)/want > 0.005 {
			t.Errorf("%s total = %.1f mW, want %.0f (+-0.5%%)", workload, got, want)
		}
	}
}

func TestIdleExactlyTableVI(t *testing.T) {
	// The idle column is the calibrated floor and must match exactly.
	m := NewModel()
	for rail, want := range tableVI["Idle"] {
		if got := m.RailMilliwatts(rail, PhaseRun, ActivityIdle); got != want {
			t.Errorf("idle %s = %v, want %v", rail, got, want)
		}
	}
	if got := m.TotalMilliwatts(PhaseRun, ActivityIdle); got != 4810 {
		t.Errorf("idle total = %v, want 4810", got)
	}
}

func TestBootColumns(t *testing.T) {
	// Table VI Boot R1/R2 columns are floors and must match exactly.
	m := NewModel()
	wantR1 := map[Rail]float64{
		RailCore: 984, RailDDRSoC: 59, RailIO: 5, RailPLL: 0,
		RailPCIeVP: 12, RailPCIeVPH: 1, RailDDRMem: 275,
		RailDDRPLL: 0, RailDDRVpp: 49,
	}
	wantR2 := map[Rail]float64{
		RailCore: 2561, RailDDRSoC: 197, RailIO: 20, RailPLL: 2,
		RailPCIeVP: 231, RailPCIeVPH: 395, RailDDRMem: 467,
		RailDDRPLL: 29, RailDDRVpp: 122,
	}
	for rail, want := range wantR1 {
		if got := m.RailMilliwatts(rail, PhaseR1, ActivityIdle); got != want {
			t.Errorf("R1 %s = %v, want %v", rail, got, want)
		}
	}
	for rail, want := range wantR2 {
		if got := m.RailMilliwatts(rail, PhaseR2, ActivityHPL); got != want {
			t.Errorf("R2 %s = %v, want %v (activity must not affect boot floors)", rail, got, want)
		}
	}
	if got := m.TotalMilliwatts(PhaseR1, ActivityIdle); got != 1385 {
		t.Errorf("R1 total = %v, want 1385", got)
	}
	if got := m.TotalMilliwatts(PhaseR2, ActivityIdle); got != 4024 {
		t.Errorf("R2 total = %v, want 4024", got)
	}
}

func TestPhaseOffIsZero(t *testing.T) {
	m := NewModel()
	if got := m.TotalMilliwatts(PhaseOff, ActivityHPL); got != 0 {
		t.Errorf("off total = %v, want 0", got)
	}
}

func TestCoreDecomposition(t *testing.T) {
	// Section V-B: leakage 0.984 W (32 % of idle core), dynamic + clock
	// tree 1.577 W (51 %), OS 0.514 W (17 %).
	m := NewModel()
	leak, clk, osp := m.CoreDecomposition()
	if leak != 984 {
		t.Errorf("leakage = %v mW, want 984", leak)
	}
	if clk != 1577 {
		t.Errorf("clock tree + dynamic = %v mW, want 1577", clk)
	}
	if osp != 514 {
		t.Errorf("OS power = %v mW, want 514", osp)
	}
	idleCore := m.RailMilliwatts(RailCore, PhaseRun, ActivityIdle)
	if frac := leak / idleCore; math.Abs(frac-0.32) > 0.01 {
		t.Errorf("leakage fraction = %.3f, want ~0.32", frac)
	}
	if frac := clk / idleCore; math.Abs(frac-0.51) > 0.01 {
		t.Errorf("clock-tree fraction = %.3f, want ~0.51", frac)
	}
	if frac := osp / idleCore; math.Abs(frac-0.17) > 0.01 {
		t.Errorf("OS fraction = %.3f, want ~0.17", frac)
	}
}

func TestDDRMemDecomposition(t *testing.T) {
	// Section V-B: DDR bank leakage 0.275 W is 68 % of its idle power.
	m := NewModel()
	leak, rest := m.DDRMemDecomposition()
	if leak != 275 {
		t.Errorf("DDR leakage = %v mW, want 275", leak)
	}
	idle := m.RailMilliwatts(RailDDRMem, PhaseRun, ActivityIdle)
	if frac := leak / idle; math.Abs(frac-0.68) > 0.01 {
		t.Errorf("DDR leakage fraction = %.3f, want ~0.68", frac)
	}
	if rest != idle-leak {
		t.Errorf("refresh+OS remainder = %v, want %v", rest, idle-leak)
	}
}

func TestIdleShares(t *testing.T) {
	// Abstract: idle is 4.81 W with 64 % core, 13 % DDR, 23 % PCI.
	m := NewModel()
	total := m.TotalMilliwatts(PhaseRun, ActivityIdle)
	core := m.RailMilliwatts(RailCore, PhaseRun, ActivityIdle) / total
	ddr := (m.RailMilliwatts(RailDDRSoC, PhaseRun, ActivityIdle) +
		m.RailMilliwatts(RailDDRMem, PhaseRun, ActivityIdle) +
		m.RailMilliwatts(RailDDRPLL, PhaseRun, ActivityIdle) +
		m.RailMilliwatts(RailDDRVpp, PhaseRun, ActivityIdle)) / total
	pci := (m.RailMilliwatts(RailPCIeVP, PhaseRun, ActivityIdle) +
		m.RailMilliwatts(RailPCIeVPH, PhaseRun, ActivityIdle)) / total
	if math.Abs(core-0.64) > 0.01 {
		t.Errorf("core share = %.3f, want ~0.64", core)
	}
	if math.Abs(ddr-0.13) > 0.015 {
		t.Errorf("DDR share = %.3f, want ~0.13", ddr)
	}
	if math.Abs(pci-0.23) > 0.015 {
		t.Errorf("PCI share = %.3f, want ~0.23", pci)
	}
}

func TestHPLShares(t *testing.T) {
	// Abstract: under HPL 5.935 W total with 69 % core, 14 % DDR, 18 % PCI.
	m := NewModel()
	total := m.TotalMilliwatts(PhaseRun, ActivityHPL)
	core := m.RailMilliwatts(RailCore, PhaseRun, ActivityHPL) / total
	if math.Abs(core-0.69) > 0.01 {
		t.Errorf("HPL core share = %.3f, want ~0.69", core)
	}
}

func TestActivityMonotonicityProperty(t *testing.T) {
	// More activity never reduces any rail's power.
	m := NewModel()
	prop := func(a, b, c, d, e uint8) bool {
		act := Activity{
			CoreActivity: float64(a) / 255,
			DDRReadGBs:   float64(b) / 64,
			DDRWriteGBs:  float64(c) / 64,
			L2GBs:        float64(d) / 16,
			PCIeActivity: float64(e) / 255,
		}
		bigger := act
		bigger.CoreActivity = math.Min(1, act.CoreActivity+0.1)
		bigger.DDRReadGBs += 0.5
		bigger.DDRWriteGBs += 0.5
		bigger.L2GBs += 1
		for _, r := range Rails {
			if m.RailMilliwatts(r, PhaseRun, bigger) < m.RailMilliwatts(r, PhaseRun, act) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeActivityClamped(t *testing.T) {
	m := NewModel()
	neg := Activity{CoreActivity: -1, DDRReadGBs: -5, DDRWriteGBs: -5, L2GBs: -5, PCIeActivity: -1}
	for _, r := range Rails {
		if got, idle := m.RailMilliwatts(r, PhaseRun, neg), m.RailMilliwatts(r, PhaseRun, ActivityIdle); got != idle {
			t.Errorf("%s with negative activity = %v, want idle %v", r, got, idle)
		}
	}
}

func TestOverdrivenCoreActivityClamped(t *testing.T) {
	m := NewModel()
	over := Activity{CoreActivity: 5}
	capped := Activity{CoreActivity: 1}
	if m.RailMilliwatts(RailCore, PhaseRun, over) != m.RailMilliwatts(RailCore, PhaseRun, capped) {
		t.Error("core activity above 1 must clamp")
	}
}

func TestRailMilliwattsScaled(t *testing.T) {
	m := NewModel()
	full := m.RailMilliwatts(RailCore, PhaseRun, ActivityHPL)
	if got := m.RailMilliwattsScaled(RailCore, PhaseRun, ActivityHPL, 1); got != full {
		t.Errorf("scale 1 = %v, want full %v", got, full)
	}
	// At scale 0 only the R1 leakage floor remains.
	if got := m.RailMilliwattsScaled(RailCore, PhaseRun, ActivityHPL, 0); got != 984 {
		t.Errorf("scale 0 = %v, want leakage 984", got)
	}
	half := m.RailMilliwattsScaled(RailCore, PhaseRun, ActivityHPL, 0.5)
	if want := 984 + (full-984)*0.5; math.Abs(half-want) > 1e-9 {
		t.Errorf("scale 0.5 = %v, want %v", half, want)
	}
	// Out-of-range scales clamp.
	if m.RailMilliwattsScaled(RailCore, PhaseRun, ActivityHPL, -3) != 984 {
		t.Error("negative scale not clamped")
	}
	if m.RailMilliwattsScaled(RailCore, PhaseRun, ActivityHPL, 9) != full {
		t.Error("overdriven scale not clamped")
	}
	// Boot phases ignore the scale.
	if got := m.RailMilliwattsScaled(RailCore, PhaseR1, ActivityIdle, 0.5); got != 984 {
		t.Errorf("R1 scaled = %v", got)
	}
	if got := m.RailMilliwattsScaled(RailCore, PhaseR2, ActivityIdle, 0.5); got != 2561 {
		t.Errorf("R2 scaled = %v", got)
	}
}

func TestScaledMonotoneInScaleProperty(t *testing.T) {
	m := NewModel()
	prop := func(sRaw uint8) bool {
		s := float64(sRaw) / 255
		for _, r := range Rails {
			lo := m.RailMilliwattsScaled(r, PhaseRun, ActivityHPL, s)
			hi := m.RailMilliwattsScaled(r, PhaseRun, ActivityHPL, math.Min(1, s+0.1))
			if hi < lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownMatchesTotal(t *testing.T) {
	m := NewModel()
	for workload, act := range workloadActivity {
		sum := 0.0
		for _, v := range m.Breakdown(PhaseRun, act) {
			sum += v
		}
		if total := m.TotalMilliwatts(PhaseRun, act); math.Abs(sum-total) > 1e-9 {
			t.Errorf("%s: breakdown sum %v != total %v", workload, sum, total)
		}
	}
}

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{PhaseOff: "off", PhaseR1: "R1", PhaseR2: "R2", PhaseRun: "R3"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
	if Phase(42).String() != "Phase(42)" {
		t.Error("unknown phase string")
	}
}
