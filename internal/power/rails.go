// Package power models the nine measured power rails of the HiFive
// Unmatched board hosting the SiFive Freedom U740 SoC. The board exposes a
// shunt resistor in series with each SoC power rail and with the on-board
// memory banks; the paper samples these shunts to produce Table VI, the
// workload traces of Fig. 3 and the boot trace of Fig. 4.
//
// The model is a per-rail linear law: a boot-phase-dependent floor (leakage
// only in R1, leakage + clock tree in R2, full idle once the OS runs) plus
// activity terms driven by a workload's issue-slot utilisation, DDR
// read/write traffic and PCIe activity. The coefficients are least-squares
// calibrated against the paper's Table VI and reproduce the measured totals
// within a few percent; per-rail deviations are recorded in EXPERIMENTS.md.
package power

import "fmt"

// Rail identifies one of the nine monitored power rails.
type Rail string

// The nine power rails of Table VI, in table order.
const (
	RailCore    Rail = "core"    // U74 core complex
	RailDDRSoC  Rail = "ddr_soc" // DDR controller (SoC side)
	RailIO      Rail = "io"      // IO pads
	RailPLL     Rail = "pll"     // core PLL
	RailPCIeVP  Rail = "pcievp"  // PCIe core rail
	RailPCIeVPH Rail = "pcievph" // PCIe PHY rail
	RailDDRMem  Rail = "ddr_mem" // on-board DDR4 memory banks
	RailDDRPLL  Rail = "ddr_pll" // DDR PLL
	RailDDRVpp  Rail = "ddr_vpp" // DDR Vpp (activation) supply
)

// Rails lists all monitored rails in Table VI order.
var Rails = []Rail{
	RailCore, RailDDRSoC, RailIO, RailPLL, RailPCIeVP,
	RailPCIeVPH, RailDDRMem, RailDDRPLL, RailDDRVpp,
}

// Phase is the node's power state, following the boot regions of Fig. 4.
type Phase int

// Boot phases: R1 is power-on with no clock (leakage only), R2 is the
// bootloader with the PLL active (leakage + clock tree), Run is the
// operating system executing (R3 of the paper and every later workload
// region).
const (
	PhaseOff Phase = iota + 1
	PhaseR1
	PhaseR2
	PhaseRun
)

// String names the phase as in the paper's Fig. 4 annotations.
func (p Phase) String() string {
	switch p {
	case PhaseOff:
		return "off"
	case PhaseR1:
		return "R1"
	case PhaseR2:
		return "R2"
	case PhaseRun:
		return "R3"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Activity characterises a running workload's demand on the SoC.
// The zero value is the idle OS (Table VI "Idle" column).
type Activity struct {
	// CoreActivity is the fraction of issue slots the workload keeps busy,
	// in [0,1]. For compute benchmarks it coincides with the attained
	// fraction of FPU peak (46.5 % for HPL on Monte Cimone).
	CoreActivity float64
	// DDRReadGBs and DDRWriteGBs are main-memory traffic in GB/s.
	DDRReadGBs  float64
	DDRWriteGBs float64
	// L2GBs is L2 cache traffic in GB/s (drives controller-side power).
	L2GBs float64
	// PCIeActivity is relative PCIe link utilisation in [0,1].
	PCIeActivity float64
}

// Preset activities for the paper's workload columns in Table VI. The core
// activities equal the measured FPU utilisations (HPL 46.5 %, QE 36 % with
// LAX overheads, STREAM values from the attained bandwidth fractions);
// traffic figures derive from the kernels' bytes/flop ratios.
var (
	// ActivityIdle is the idle operating system.
	ActivityIdle = Activity{}
	// ActivityHPL is the HPL benchmark at N=40704 on one node.
	ActivityHPL = Activity{CoreActivity: 0.465, DDRReadGBs: 0.80, DDRWriteGBs: 0.10, L2GBs: 8.0, PCIeActivity: 0.02}
	// ActivityStreamL2 is STREAM with a 1.1 MiB, L2-resident set.
	ActivityStreamL2 = Activity{CoreActivity: 0.291, DDRReadGBs: 0.05, DDRWriteGBs: 0.05, L2GBs: 14.2, PCIeActivity: 0.02}
	// ActivityStreamDDR is STREAM with a 1945.5 MiB, DDR-resident set.
	ActivityStreamDDR = Activity{CoreActivity: 0.096, DDRReadGBs: 1.50, DDRWriteGBs: 0.75, L2GBs: 2.3, PCIeActivity: 0.02}
	// ActivityQE is the quantumESPRESSO LAX driver on a 512^2 matrix.
	ActivityQE = Activity{CoreActivity: 0.341, DDRReadGBs: 0.75, DDRWriteGBs: 0.15, L2GBs: 8.5, PCIeActivity: 0.10}
)

// Workload-name resolution lives in the workload registry
// (internal/workload.Lookup), the single mapping from benchmark names to
// these calibrated profiles; this package only owns the physics.

// numRails sizes the per-rail coefficient arrays.
const numRails = 9

// railIndex maps a rail name to its Table VI position, or -1 for an
// unknown rail. Rail evaluation sits inside every node's power integration
// step; indexing arrays here instead of hashing string-keyed maps is what
// keeps it off the CPU profile.
func railIndex(r Rail) int {
	switch r {
	case RailCore:
		return 0
	case RailDDRSoC:
		return 1
	case RailIO:
		return 2
	case RailPLL:
		return 3
	case RailPCIeVP:
		return 4
	case RailPCIeVPH:
		return 5
	case RailDDRMem:
		return 6
	case RailDDRPLL:
		return 7
	case RailDDRVpp:
		return 8
	default:
		return -1
	}
}

// railTable holds one coefficient per rail, in Table VI order.
type railTable [numRails]float64

// Model evaluates per-rail power for a phase and activity. Construct with
// NewModel; the zero value has zero coefficients everywhere.
type Model struct {
	// Floors per phase, mW.
	r1Floor  railTable
	r2Floor  railTable
	runFloor railTable

	// Activity coefficients, mW per unit of the respective metric.
	coreActCoef railTable // x CoreActivity
	ddrReadCoef railTable // x DDRReadGBs
	ddrWritCoef railTable // x DDRWriteGBs
	l2Coef      railTable // x L2GBs
	pcieCoef    railTable // x PCIeActivity
}

// Coefficient order within each railTable literal below:
// core, ddr_soc, io, pll, pcievp, pcievph, ddr_mem, ddr_pll, ddr_vpp.

// NewModel returns the HiFive Unmatched calibration.
func NewModel() *Model {
	return &Model{
		// Fig. 4 region R1: supply on, no clock. Pure leakage.
		r1Floor: railTable{984, 59, 5, 0, 12, 1, 275, 0, 49},
		// Fig. 4 region R2: bootloader running, PLL active, DDR training.
		// core = leakage (984) + clock tree and boot dynamic (1577).
		r2Floor: railTable{2561, 197, 20, 2, 231, 395, 467, 29, 122},
		// Table VI "Idle" column: OS up, no workload.
		runFloor: railTable{3075, 139, 20, 1, 521, 555, 404, 28, 67},
		// Least-squares fit of the four workload columns of Table VI.
		coreActCoef: railTable{0: 2193, 4: 12, 5: 4, 8: 24},
		ddrReadCoef: railTable{0: 2.5, 1: 37, 6: 18, 8: 10},
		ddrWritCoef: railTable{0: 2.5, 1: 37, 6: 214, 8: 10},
		l2Coef:      railTable{1: 1.2},
		pcieCoef:    railTable{4: 20, 5: 25},
	}
}

// RailMilliwatts returns the modelled power of one rail in milliwatts.
// Unknown rails are zero in every phase, as with the historical map-based
// coefficient tables.
func (m *Model) RailMilliwatts(r Rail, phase Phase, act Activity) float64 {
	i := railIndex(r)
	if i < 0 {
		return 0
	}
	return m.railMilliwattsAt(i, phase, act)
}

func (m *Model) railMilliwattsAt(i int, phase Phase, act Activity) float64 {
	switch phase {
	case PhaseOff:
		return 0
	case PhaseR1:
		return m.r1Floor[i]
	case PhaseR2:
		return m.r2Floor[i]
	case PhaseRun:
		return m.runFloor[i] +
			m.coreActCoef[i]*clamp01(act.CoreActivity) +
			m.ddrReadCoef[i]*nonNeg(act.DDRReadGBs) +
			m.ddrWritCoef[i]*nonNeg(act.DDRWriteGBs) +
			m.l2Coef[i]*nonNeg(act.L2GBs) +
			m.pcieCoef[i]*clamp01(act.PCIeActivity)
	default:
		return 0
	}
}

// RailMilliwattsScaled returns the rail power with the dynamic (above
// leakage) share scaled by freqScale in [0,1] — the first-order effect of
// frequency scaling at constant voltage, used by the dynamic thermal
// management governor (the paper's future work item ii). Boot phases and
// the off state are unaffected.
func (m *Model) RailMilliwattsScaled(r Rail, phase Phase, act Activity, freqScale float64) float64 {
	i := railIndex(r)
	if i < 0 {
		return 0
	}
	full := m.railMilliwattsAt(i, phase, act)
	if phase != PhaseRun {
		return full
	}
	if freqScale < 0 {
		freqScale = 0
	}
	if freqScale > 1 {
		freqScale = 1
	}
	leak := m.r1Floor[i]
	if full < leak {
		leak = full
	}
	return leak + (full-leak)*freqScale
}

// Breakdown returns all rail powers in milliwatts.
func (m *Model) Breakdown(phase Phase, act Activity) map[Rail]float64 {
	out := make(map[Rail]float64, len(Rails))
	for _, r := range Rails {
		out[r] = m.RailMilliwatts(r, phase, act)
	}
	return out
}

// TotalMilliwatts returns the sum over all nine rails.
func (m *Model) TotalMilliwatts(phase Phase, act Activity) float64 {
	total := 0.0
	for _, r := range Rails {
		total += m.RailMilliwatts(r, phase, act)
	}
	return total
}

// CoreDecomposition reports the three components of the idle core power
// derived from the boot regions of Fig. 4: leakage (R1), dynamic + clock
// tree (R2 - R1) and operating-system power (idle - R2), in milliwatts.
func (m *Model) CoreDecomposition() (leakage, clockTreeDynamic, osPower float64) {
	core := railIndex(RailCore)
	leakage = m.r1Floor[core]
	clockTreeDynamic = m.r2Floor[core] - m.r1Floor[core]
	osPower = m.runFloor[core] - m.r2Floor[core]
	return leakage, clockTreeDynamic, osPower
}

// DDRMemDecomposition reports the DDR bank idle decomposition: leakage (R1)
// and the self-refresh + OS housekeeping remainder, in milliwatts.
func (m *Model) DDRMemDecomposition() (leakage, refreshAndOS float64) {
	mem := railIndex(RailDDRMem)
	leakage = m.r1Floor[mem]
	refreshAndOS = m.runFloor[mem] - leakage
	return leakage, refreshAndOS
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func nonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
