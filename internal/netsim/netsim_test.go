package netsim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewFabricValidation(t *testing.T) {
	if _, err := NewFabric(0, GigabitEthernet()); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewFabric(4, Link{}); err == nil {
		t.Error("zero-bandwidth link accepted")
	}
}

func TestTransferTimeInterNode(t *testing.T) {
	f, err := NewFabric(8, GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	// 117.5 MB at 117.5 MB/s = 1 s + 45 us latency.
	got, err := f.TransferTime(0, 1, 117.5e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + 45e-6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("transfer = %v, want %v", got, want)
	}
}

func TestTransferTimeSharing(t *testing.T) {
	f, _ := NewFabric(8, GigabitEthernet())
	solo, _ := f.TransferTime(0, 1, 1e6, 1)
	shared, _ := f.TransferTime(0, 1, 1e6, 4)
	// Four ranks per node contend for the single NIC.
	soloSer := solo - 45e-6
	sharedSer := shared - 45e-6
	if math.Abs(sharedSer-4*soloSer) > 1e-12 {
		t.Errorf("shared serialisation %v, want 4x solo %v", sharedSer, soloSer)
	}
	below, _ := f.TransferTime(0, 1, 1e6, 0)
	if below != solo {
		t.Error("sharing below 1 must clamp to 1")
	}
}

func TestTransferTimeIntraNode(t *testing.T) {
	f, _ := NewFabric(8, GigabitEthernet())
	local, err := f.TransferTime(3, 3, 2.4e9, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Local transfers ignore NIC sharing: ~1 s at 2.4 GB/s.
	if math.Abs(local-(1.0+0.8e-6)) > 1e-9 {
		t.Errorf("local transfer = %v", local)
	}
}

func TestTransferValidation(t *testing.T) {
	f, _ := NewFabric(4, GigabitEthernet())
	if _, err := f.TransferTime(-1, 0, 10, 1); err == nil {
		t.Error("negative src accepted")
	}
	if _, err := f.TransferTime(0, 4, 10, 1); err == nil {
		t.Error("out-of-range dst accepted")
	}
	if _, err := f.TransferTime(0, 1, -10, 1); err == nil {
		t.Error("negative size accepted")
	}
}

func TestIBFasterThanGbE(t *testing.T) {
	gbe, _ := NewFabric(2, GigabitEthernet())
	ib, _ := NewFabric(2, InfinibandFDRWorking())
	tg, _ := gbe.TransferTime(0, 1, 10e6, 1)
	ti, _ := ib.TransferTime(0, 1, 10e6, 1)
	if ti >= tg/20 {
		t.Errorf("IB %v not dramatically faster than GbE %v", ti, tg)
	}
}

func TestHCARecognisedAndPing(t *testing.T) {
	// Section III: the kernel recognises the HCA and mounts the Mellanox
	// OFED module; an IB ping between two boards succeeds.
	link := InfinibandFDR()
	a, err := NewHCA(0, link)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHCA(1, link)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Recognised() {
		t.Error("HCA not recognised")
	}
	if _, err := a.Ping(b); err == nil {
		t.Error("ping before module load accepted")
	}
	if err := a.LoadModule(); err != nil {
		t.Fatal(err)
	}
	if err := b.LoadModule(); err != nil {
		t.Fatal(err)
	}
	rtt, err := a.Ping(b)
	if err != nil {
		t.Fatalf("ib ping: %v", err)
	}
	if math.Abs(rtt-2*link.LatencySec) > 1e-12 {
		t.Errorf("rtt = %v, want %v", rtt, 2*link.LatencySec)
	}
}

func TestRDMAUnsupportedOnPaperStack(t *testing.T) {
	// Section III: RDMA capabilities unusable due to software-stack and
	// kernel-driver incompatibilities.
	a, _ := NewHCA(0, InfinibandFDR())
	b, _ := NewHCA(1, InfinibandFDR())
	_ = a.LoadModule()
	_ = b.LoadModule()
	if _, err := a.RDMAWrite(b, 1e6); !errors.Is(err, ErrRDMAUnsupported) {
		t.Errorf("RDMAWrite err = %v, want ErrRDMAUnsupported", err)
	}
	// The hypothetical fixed driver (ablation) works.
	c, _ := NewHCA(0, InfinibandFDRWorking())
	d, _ := NewHCA(1, InfinibandFDRWorking())
	_ = c.LoadModule()
	_ = d.LoadModule()
	dur, err := c.RDMAWrite(d, 6.0e9)
	if err != nil {
		t.Fatalf("working RDMA: %v", err)
	}
	if math.Abs(dur-(1.0+1.2e-6)) > 1e-9 {
		t.Errorf("RDMA duration = %v", dur)
	}
}

func TestHCARequiresIBLink(t *testing.T) {
	if _, err := NewHCA(0, GigabitEthernet()); err == nil {
		t.Error("HCA on Ethernet link accepted")
	}
}

func TestLinkKindString(t *testing.T) {
	if KindGigabitEthernet.String() != "1GbE" || KindInfinibandFDR.String() != "IB-FDR" {
		t.Error("link kind names")
	}
	if LinkKind(9).String() != "LinkKind(9)" {
		t.Error("unknown link kind name")
	}
}

// Property: transfer time is monotone in bytes and in sharing, and always
// at least the link latency.
func TestTransferMonotoneProperty(t *testing.T) {
	f, _ := NewFabric(8, GigabitEthernet())
	prop := func(bytesRaw uint32, sharingRaw uint8) bool {
		bytes := float64(bytesRaw)
		sharing := int(sharingRaw)%8 + 1
		t1, err1 := f.TransferTime(0, 1, bytes, sharing)
		t2, err2 := f.TransferTime(0, 1, bytes+1024, sharing)
		t3, err3 := f.TransferTime(0, 1, bytes, sharing+1)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return t2 > t1 && t3 >= t1 && t1 >= 45e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
