// Package netsim models the Monte Cimone interconnects: the 1 Gb/s Ethernet
// fabric (Microsemi VSC8541 PHY per board, used for all production MPI
// traffic in the paper) and the Mellanox ConnectX-4 FDR InfiniBand HCAs the
// authors installed on two nodes. The paper reports the IB devices are
// recognised by the kernel and pass an ib-ping test, but RDMA verbs fail
// due to yet-to-be-pinpointed software-stack/kernel-driver incompatibilities
// — modelled here as an explicit capability gate.
//
// Transfer times follow a deterministic alpha-beta law with NIC sharing:
// arrival = departure + latency + bytes / (bandwidth / sharing), where
// sharing is the number of co-located MPI ranks contending for the node's
// single NIC. Determinism matters: the MPI layer computes times from each
// sender's local clock only, so simulated results are bit-reproducible
// regardless of host goroutine scheduling.
package netsim

import (
	"errors"
	"fmt"
)

// LinkKind identifies an interconnect technology.
type LinkKind int

// Supported interconnects.
const (
	KindGigabitEthernet LinkKind = iota + 1
	KindInfinibandFDR
)

// String names the link kind.
func (k LinkKind) String() string {
	switch k {
	case KindGigabitEthernet:
		return "1GbE"
	case KindInfinibandFDR:
		return "IB-FDR"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// Link describes one interconnect's characteristics.
type Link struct {
	// Kind is the technology.
	Kind LinkKind
	// BandwidthBps is the effective payload bandwidth in bytes/s after
	// protocol overheads.
	BandwidthBps float64
	// LatencySec is the one-way small-message latency.
	LatencySec float64
	// RDMAWorking reports whether RDMA verbs complete; the paper's FDR
	// HCAs enumerate and ping but cannot run RDMA yet.
	RDMAWorking bool
}

// GigabitEthernet returns the production 1 Gb/s fabric: ~117.5 MB/s
// effective TCP payload bandwidth and ~45 us one-way latency through the
// top-of-rack switch.
func GigabitEthernet() Link {
	return Link{
		Kind:         KindGigabitEthernet,
		BandwidthBps: 117.5e6,
		LatencySec:   45e-6,
	}
}

// InfinibandFDR returns the Mellanox ConnectX-4 FDR link (56 Gbit/s):
// ~6.0 GB/s effective and 1.2 us latency — with RDMA disabled, matching
// the paper's driver status.
func InfinibandFDR() Link {
	return Link{
		Kind:         KindInfinibandFDR,
		BandwidthBps: 6.0e9,
		LatencySec:   1.2e-6,
		RDMAWorking:  false,
	}
}

// InfinibandFDRWorking returns the same FDR link with RDMA functional —
// the hypothetical future state used by the interconnect ablation.
func InfinibandFDRWorking() Link {
	l := InfinibandFDR()
	l.RDMAWorking = true
	return l
}

// Intra-node transfer characteristics (shared-memory MPI transport).
const (
	localBandwidthBps = 2.4e9
	localLatencySec   = 0.8e-6
)

// Fabric is a star topology of nodes around one switch.
type Fabric struct {
	nodes int
	link  Link

	// Degradation multipliers (chaos campaigns): latMult >= 1 stretches the
	// inter-node latency, bwMult in (0,1] shrinks the effective inter-node
	// bandwidth. Both default to 1 (healthy fabric); intra-node transfers
	// are unaffected (shared memory does not ride the switch).
	latMult float64
	bwMult  float64
}

// NewFabric builds a fabric of the given node count over one link type.
func NewFabric(nodes int, link Link) (*Fabric, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("netsim: node count must be positive, got %d", nodes)
	}
	if link.BandwidthBps <= 0 || link.LatencySec < 0 {
		return nil, fmt.Errorf("netsim: invalid link %+v", link)
	}
	return &Fabric{nodes: nodes, link: link, latMult: 1, bwMult: 1}, nil
}

// Nodes returns the node count.
func (f *Fabric) Nodes() int { return f.nodes }

// Link returns the inter-node link description.
func (f *Fabric) Link() Link { return f.link }

// SetDegradation installs fault-injection multipliers on the inter-node
// path: latencyMult >= 1 stretches the one-way latency, bandwidthMult in
// (0,1] shrinks the effective bandwidth. (1, 1) restores the healthy
// fabric.
func (f *Fabric) SetDegradation(latencyMult, bandwidthMult float64) error {
	if latencyMult < 1 {
		return fmt.Errorf("netsim: latency multiplier must be >= 1, got %v", latencyMult)
	}
	if bandwidthMult <= 0 || bandwidthMult > 1 {
		return fmt.Errorf("netsim: bandwidth multiplier must be in (0,1], got %v", bandwidthMult)
	}
	f.latMult, f.bwMult = latencyMult, bandwidthMult
	return nil
}

// Degradation returns the current (latencyMult, bandwidthMult) pair.
func (f *Fabric) Degradation() (latencyMult, bandwidthMult float64) {
	return f.latMult, f.bwMult
}

// LatencySec returns the effective inter-node one-way latency including any
// injected degradation; the MPI layer uses it instead of Link().LatencySec.
func (f *Fabric) LatencySec() float64 { return f.link.LatencySec * f.latMult }

// TransferTime returns the time for a payload of the given bytes between
// two nodes (or within one node when srcNode == dstNode). sharing is the
// number of ranks contending for the sender's NIC (>=1); it divides the
// effective bandwidth for inter-node transfers.
func (f *Fabric) TransferTime(srcNode, dstNode int, bytes float64, sharing int) (float64, error) {
	if err := f.checkNode(srcNode); err != nil {
		return 0, err
	}
	if err := f.checkNode(dstNode); err != nil {
		return 0, err
	}
	if bytes < 0 {
		return 0, fmt.Errorf("netsim: negative transfer size %v", bytes)
	}
	if sharing < 1 {
		sharing = 1
	}
	if srcNode == dstNode {
		return localLatencySec + bytes/localBandwidthBps, nil
	}
	bw := f.link.BandwidthBps * f.bwMult / float64(sharing)
	return f.link.LatencySec*f.latMult + bytes/bw, nil
}

func (f *Fabric) checkNode(n int) error {
	if n < 0 || n >= f.nodes {
		return fmt.Errorf("netsim: node %d out of range [0,%d)", n, f.nodes)
	}
	return nil
}

// ErrRDMAUnsupported is returned by RDMA operations on a link whose driver
// stack cannot run verbs (the paper's current FDR state).
var ErrRDMAUnsupported = errors.New(
	"netsim: RDMA verbs unavailable: software stack / kernel driver incompatibility (feature under development)")

// HCA models one Mellanox ConnectX-4 FDR host channel adapter plugged into
// a node's PCIe Gen3 x8 slot.
type HCA struct {
	node int
	link Link

	moduleLoaded bool
}

// NewHCA installs an HCA on a node over the given IB link.
func NewHCA(node int, link Link) (*HCA, error) {
	if link.Kind != KindInfinibandFDR {
		return nil, fmt.Errorf("netsim: HCA requires an InfiniBand link, got %v", link.Kind)
	}
	return &HCA{node: node, link: link}, nil
}

// Recognised reports whether the kernel enumerates the device; the paper's
// boards see the HCA on the PCIe bus (x8 Gen3 lanes, vendor supported).
func (h *HCA) Recognised() bool { return true }

// LoadModule loads the Mellanox OFED kernel module.
func (h *HCA) LoadModule() error {
	h.moduleLoaded = true
	return nil
}

// Ping runs an ib-ping against a peer HCA and returns the round-trip time.
// It works on Monte Cimone (board to board, and board to an HPC server).
func (h *HCA) Ping(peer *HCA) (float64, error) {
	if !h.moduleLoaded {
		return 0, fmt.Errorf("netsim: HCA module not loaded on node %d", h.node)
	}
	if peer == nil || !peer.moduleLoaded {
		return 0, fmt.Errorf("netsim: peer HCA not ready")
	}
	return 2 * h.link.LatencySec, nil
}

// RDMAWrite posts an RDMA write to a peer; on the paper's stack it fails
// with ErrRDMAUnsupported.
func (h *HCA) RDMAWrite(peer *HCA, bytes float64) (float64, error) {
	if !h.moduleLoaded {
		return 0, fmt.Errorf("netsim: HCA module not loaded on node %d", h.node)
	}
	if peer == nil || !peer.moduleLoaded {
		return 0, fmt.Errorf("netsim: peer HCA not ready")
	}
	if !h.link.RDMAWorking {
		return 0, ErrRDMAUnsupported
	}
	if bytes < 0 {
		return 0, fmt.Errorf("netsim: negative RDMA size %v", bytes)
	}
	return h.link.LatencySec + bytes/h.link.BandwidthBps, nil
}
