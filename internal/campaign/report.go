package campaign

import (
	"fmt"
	"io"
	"sort"

	"montecimone/internal/fault"
	"montecimone/internal/powerplane"
	"montecimone/internal/report"
	"montecimone/internal/sched"
)

// Result is a campaign's outcome: the per-job rows, the event log and the
// aggregates the report prints. Everything in it is deterministic in
// (spec, seed), so two runs of the same campaign render byte-identical
// reports.
type Result struct {
	Spec   Spec
	Jobs   []JobOutcome
	Events []string

	// Aggregates (filled by aggregate).
	Completed, Failed, TimedOut, Unfinished int
	MakespanS                               float64 // last job end, campaign-relative
	MeanWaitS                               float64 // over started jobs
	MeanRunS                                float64 // over finished jobs
	UtilizationPct                          float64 // node-seconds used / (nodes x horizon)
	PerWorkload                             map[string]int
	// EndStates is the per-job end-state breakdown (final attempt's state
	// per entry). Always computed; rendered only for fault campaigns.
	EndStates map[sched.JobState]int

	// Fault-campaign aggregates (meaningful when Fault != nil):
	// availability is up-node-time over the whole machine-horizon, goodput
	// the completed jobs' nominal node-seconds over every node-second any
	// attempt consumed, Requeues the NODE_FAIL requeues across all jobs.
	AvailabilityPct float64
	GoodputPct      float64
	Requeues        int

	// PeakQueueDepth is the deepest pending queue observed at any
	// submission instant — the backlog probe fleet reports roll up. Not
	// rendered in the campaign report (which predates it and must stay
	// byte-stable).
	PeakQueueDepth int

	// Telemetry and power plane, when the spec enabled them.
	BrokerMessages uint64
	StoredSeries   int
	Plane          *powerplane.Snapshot
	// Fault holds the fault controller's accounting for chaos campaigns.
	Fault *fault.Stats

	// Engine window statistics (sharded runs; all zero on the serial
	// engine). Not rendered in the report — commands print them to stderr
	// so stdout stays byte-diffable across shard counts.
	EngineWindows   uint64 // lookahead windows formed
	WindowedEvents  uint64 // events committed through windows
	PreparedKeys    uint64 // node states prefetched on shard workers
	CommittedEvents uint64 // event callbacks executed entirely on workers
}

// CommittedParallelFraction returns the share of windowed events whose
// callbacks executed entirely on shard workers — the engine's exposed
// parallelism, measurable even on a single-core host where wall-clock
// scaling is invisible.
func (r *Result) CommittedParallelFraction() float64 {
	if r.WindowedEvents == 0 {
		return 0
	}
	return float64(r.CommittedEvents) / float64(r.WindowedEvents)
}

// aggregate derives the summary numbers from the job rows.
func (r *Result) aggregate() {
	r.PerWorkload = make(map[string]int)
	r.EndStates = make(map[sched.JobState]int)
	var waitSum, runSum, nodeSeconds float64
	var usefulNodeS, usedNodeS float64
	started, ran := 0, 0
	for _, j := range r.Jobs {
		r.PerWorkload[j.Workload]++
		r.EndStates[j.State]++
		r.Requeues += j.Requeues
		usedNodeS += j.UsedNodeS
		if j.State == sched.StateCompleted {
			usefulNodeS += float64(j.Nodes) * j.DurationS
		}
		switch j.State {
		case sched.StateCompleted:
			r.Completed++
		case sched.StateNodeFail, sched.StateCancelled:
			r.Failed++
		case sched.StateTimeout:
			r.TimedOut++
		default:
			r.Unfinished++
		}
		if j.StartS >= 0 {
			started++
			waitSum += j.StartS - j.SubmitS
			end := j.EndS
			if end < 0 {
				end = r.Spec.HorizonS // still running at the horizon
			} else if end > r.MakespanS {
				r.MakespanS = end
			}
			if j.EndS >= 0 {
				ran++
				runSum += j.EndS - j.StartS
			}
			nodeSeconds += float64(j.Nodes) * (end - j.StartS)
		}
	}
	if started > 0 {
		r.MeanWaitS = waitSum / float64(started)
	}
	// Mean runtime averages only jobs that actually started and ended —
	// submit-rejected entries count as Failed but never ran.
	if ran > 0 {
		r.MeanRunS = runSum / float64(ran)
	}
	if r.Spec.Nodes > 0 && r.Spec.HorizonS > 0 {
		r.UtilizationPct = 100 * nodeSeconds / (float64(r.Spec.Nodes) * r.Spec.HorizonS)
	}
	if r.Fault != nil {
		machineNodeS := float64(r.Spec.Nodes) * r.Spec.HorizonS
		if machineNodeS > 0 {
			r.AvailabilityPct = 100 * (1 - r.Fault.DownNodeS/machineNodeS)
		}
		if usedNodeS > 0 {
			r.GoodputPct = 100 * usefulNodeS / usedNodeS
		}
	}
}

// WriteReport renders the per-campaign report: header, aggregate block,
// per-workload counts, the job table and (when enabled) the telemetry and
// power-plane lines. The rendering is deterministic — the campaign
// determinism suite compares it byte for byte across runs.
func (r *Result) WriteReport(w io.Writer) error {
	s := r.Spec
	policy := s.Policy
	if policy == "" {
		policy = "easy"
	}
	fmt.Fprintf(w, "campaign %q: %d nodes, policy %s, seed %d, horizon %.0f s\n",
		s.Name, s.Nodes, policy, s.Seed, s.HorizonS)
	if s.Arrival != nil {
		fmt.Fprintf(w, "arrivals: %s, %.1f jobs/h, %d generated\n",
			s.Arrival.Process, s.Arrival.RatePerHour, s.Arrival.Jobs)
	}
	mode := "phased activity"
	if s.FixedActivity {
		mode = "fixed activity (ablation)"
	}
	fmt.Fprintf(w, "workload execution: %s\n", mode)
	fmt.Fprintf(w, "jobs: %d total, %d completed, %d failed, %d timeout, %d unfinished at horizon\n",
		len(r.Jobs), r.Completed, r.Failed, r.TimedOut, r.Unfinished)
	if s.Faults != nil {
		// Per-job end-state breakdown in a fixed state order (states with
		// zero jobs are skipped so short campaigns stay readable).
		fmt.Fprint(w, "end states:")
		for _, st := range []sched.JobState{sched.StateCompleted, sched.StateNodeFail,
			sched.StateTimeout, sched.StateCancelled, sched.StateRunning, sched.StatePending} {
			if n := r.EndStates[st]; n > 0 {
				fmt.Fprintf(w, " %s=%d", st, n)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "makespan %.1f s, mean wait %.1f s, mean runtime %.1f s, utilization %.1f%%\n",
		r.MakespanS, r.MeanWaitS, r.MeanRunS, r.UtilizationPct)
	names := make([]string, 0, len(r.PerWorkload))
	for name := range r.PerWorkload {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprint(w, "mix:")
	for _, name := range names {
		fmt.Fprintf(w, " %s=%d", name, r.PerWorkload[name])
	}
	fmt.Fprintln(w)
	if s.Monitor {
		fmt.Fprintf(w, "telemetry: %d broker messages, %d stored series\n", r.BrokerMessages, r.StoredSeries)
	}
	if r.Plane != nil {
		fmt.Fprintf(w, "power plane: budget %.1f W, draw %.1f W, headroom %.1f W, %d node(s) throttled\n",
			r.Plane.BudgetW, r.Plane.DrawW, r.Plane.HeadroomW, r.Plane.ThrottledNodes)
	}
	if f := r.Fault; f != nil {
		fmt.Fprintf(w, "faults: crashes=%d thermal=%d/%d power_steps=%d net_windows=%d stragglers=%d\n",
			f.Crashes, f.Trips, f.ThermalInjects, f.PowerSteps, f.NetWindows, f.StragglerNodes)
		fmt.Fprintf(w, "availability %.2f%%, goodput %.1f%%, requeues %d, repairs %d, mttr %.1f s\n",
			r.AvailabilityPct, r.GoodputPct, r.Requeues, f.Repairs, f.MTTRS)
	}
	headers := []string{"Job", "Workload", "Nodes", "Submit", "Start", "End", "State"}
	if s.Faults != nil {
		headers = append(headers, "Retries")
	}
	tbl := &report.Table{Headers: headers}
	for _, j := range r.Jobs {
		row := []string{j.Name, j.Workload, fmt.Sprintf("%d", j.Nodes),
			fmt.Sprintf("%.1f", j.SubmitS), fmtRel(j.StartS), fmtRel(j.EndS), string(j.State)}
		if s.Faults != nil {
			row = append(row, fmt.Sprintf("%d", j.Requeues))
		}
		tbl.AddRow(row...)
	}
	return tbl.Write(w)
}

// WriteEventLog renders the submit/start/end event lines.
func (r *Result) WriteEventLog(w io.Writer) error {
	for _, line := range r.Events {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// fmtRel prints a campaign-relative instant, "-" for never.
func fmtRel(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}
