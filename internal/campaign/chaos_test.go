package campaign

import (
	"strings"
	"testing"

	"montecimone/internal/fault"
	"montecimone/internal/sched"
)

// tripChainSpec is engineered so the full failure chain must fire: one
// full-machine HPL job running when the airflow fault lands (injections
// draw in the first half of the horizon, inside the job's run), no power
// plane (whose caps can hold the faulted node just under the trip), and a
// checkpointing requeue with time to complete after the repair.
func tripChainSpec(seed int64) Spec {
	return Spec{
		Name: "trip-chain", Nodes: 8, Seed: seed, HorizonS: 5000,
		Policy: "fifo", Mitigated: true,
		Faults: &fault.Spec{
			Thermal:     &fault.Thermal{Injections: 1, ExtraRthKW: 7, ExtraAirC: 20, RepairS: 300},
			Checkpoint:  true,
			CheckpointS: 200,
		},
		Jobs: []JobEntry{
			{Name: "hpl-full", Workload: "hpl", Nodes: 8, SubmitS: 0, DurationS: 3000, TimeLimitS: 6000},
		},
	}
}

// TestChaosTripChain drives thermal runaway end to end at campaign scale:
// airflow fault -> 107 degC halt -> NodeDown -> NODE_FAIL -> requeue ->
// repair -> NodeUp -> checkpointed restart -> completion, for several
// seeds, each byte-identical at -shards 0/1/4.
func TestChaosTripChain(t *testing.T) {
	for _, seed := range []int64{11, 23} {
		spec := tripChainSpec(seed)
		rep0, log0 := renderAt(t, spec, 0)
		for _, shards := range []int{1, 4} {
			rep, log := renderAt(t, spec, shards)
			if rep != rep0 || log != log0 {
				t.Fatalf("seed %d: chaos campaign diverges at shards=%d", seed, shards)
			}
		}
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		job := res.Jobs[0]
		if job.State != sched.StateCompleted {
			t.Fatalf("seed %d: hpl-full ended %s, want COMPLETED after requeue\n%s",
				seed, job.State, strings.Join(res.Events, "\n"))
		}
		if job.Requeues < 1 {
			t.Errorf("seed %d: job completed without a requeue — no trip fired", seed)
		}
		if job.DoneS <= 0 {
			t.Errorf("seed %d: checkpoint restart carried no progress (done=%v)", seed, job.DoneS)
		}
		if res.Fault == nil || res.Fault.Trips < 1 || res.Fault.Repairs < 1 {
			t.Fatalf("seed %d: fault stats missing the trip/repair: %+v", seed, res.Fault)
		}
		if res.Fault.MTTRS <= 300 {
			t.Errorf("seed %d: MTTR %.1f s, want > repair delay (repair + boot)", seed, res.Fault.MTTRS)
		}
		if res.AvailabilityPct >= 100 || res.AvailabilityPct < 90 {
			t.Errorf("seed %d: availability %.2f%%, want one short outage in (90,100)", seed, res.AvailabilityPct)
		}
		if res.GoodputPct <= 0 || res.GoodputPct >= 100 {
			t.Errorf("seed %d: goodput %.1f%%, want partial (lost work before the checkpoint)", seed, res.GoodputPct)
		}
		// The chain's stages must appear in causal order in the event log.
		// The scheduler's NODE_FAIL and requeue lines precede the fault
		// controller's trip line: the cluster notifies its halt subscribers
		// in wiring order, and the core wires the scheduler first.
		stages := []string{"fault  airflow", "state=NODE_FAIL", "requeue hpl-full",
			"fault  trip", "fault  repair", "fault  up", "state=COMPLETED"}
		pos := -1
		for _, stage := range stages {
			found := -1
			for i := pos + 1; i < len(res.Events); i++ {
				if strings.Contains(res.Events[i], stage) {
					found = i
					break
				}
			}
			if found < 0 {
				t.Fatalf("seed %d: stage %q missing (or out of order) in event log:\n%s",
					seed, stage, strings.Join(res.Events, "\n"))
			}
			pos = found
		}
	}
}

// TestChaosSmokeSpecShardInvariant runs the CI chaos smoke spec (all five
// fault classes) and requires byte-identical reports and event logs at
// -shards 0/1/4 — the determinism gate the workflow re-checks with cmp.
func TestChaosSmokeSpecShardInvariant(t *testing.T) {
	spec, err := Load("testdata/chaos.json")
	if err != nil {
		t.Fatal(err)
	}
	rep0, log0 := renderAt(t, spec, 0)
	for _, s := range []string{"fault  crash", "fault  airflow", "fault  trip", "fault  budget",
		"fault  net", "fault  straggler", "requeue"} {
		if !strings.Contains(log0, s) {
			t.Errorf("chaos smoke log missing %q", s)
		}
	}
	for _, s := range []string{"end states:", "faults:", "availability", "Retries"} {
		if !strings.Contains(rep0, s) {
			t.Errorf("chaos smoke report missing %q", s)
		}
	}
	for _, shards := range []int{1, 4} {
		rep, log := renderAt(t, spec, shards)
		if rep != rep0 || log != log0 {
			t.Fatalf("chaos smoke diverges at shards=%d", shards)
		}
	}
}

// TestFaultsOffIsAblation pins the no-faults path: a spec without the
// fault block must render no fault artifacts at all — no end-state line,
// no availability block, no Retries column — so pre-chaos reports stay
// byte-stable (CI additionally byte-diffs the real pre-PR output).
func TestFaultsOffIsAblation(t *testing.T) {
	spec := mixedSpec("easy", 11)
	rep, log := renderAt(t, spec, 0)
	for _, s := range []string{"end states:", "faults:", "availability", "Retries", "fault  ", "requeue"} {
		if strings.Contains(rep, s) || strings.Contains(log, s) {
			t.Errorf("faults-off campaign rendered fault artifact %q", s)
		}
	}
}
