package campaign

import (
	"fmt"
	"math"
	"sort"

	"montecimone/internal/sim"
	"montecimone/internal/workload"
)

// Deterministic generator streams: every draw comes from a named
// sim.RNG stream rooted at the spec seed, so adding a new consumer never
// perturbs existing draws and the same spec + seed always expands into
// the same job stream.
const (
	streamArrival = "campaign.arrival"
	streamPick    = "campaign.pick"
	streamNodes   = "campaign.nodes"
	streamJitter  = "campaign.jitter"
)

// durationJitterStd is the relative run-to-run spread applied to model
// runtime estimates (matching the few-percent repetition noise the paper
// reports for its benchmark runs).
const durationJitterStd = 0.03

// diurnalAmplitude shapes the diurnal process: rate swings between
// (1-amp) and (1+amp) times the mean over one period.
const diurnalAmplitude = 0.8

// GenerateJobs expands the spec into its fully resolved job stream: the
// explicit trace entries plus the arrivals drawn from the mix, sorted by
// submission time (ties keep generation order). The expansion is
// deterministic in (spec, seed).
func (s *Spec) GenerateJobs() ([]JobEntry, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	jobs := make([]JobEntry, 0, len(s.Jobs))
	for _, j := range s.Jobs {
		if j.TimeLimitS == 0 {
			j.TimeLimitS = 1.5 * j.DurationS
		}
		jobs = append(jobs, j)
	}
	if s.Arrival != nil {
		rng := sim.NewRNG(s.Seed)
		times, err := s.arrivalTimes(rng)
		if err != nil {
			return nil, err
		}
		cum := make([]float64, len(s.Mix))
		total := 0.0
		for i, m := range s.Mix {
			total += m.Weight
			cum[i] = total
		}
		for i, at := range times {
			u := rng.Stream(streamPick).Float64() * total
			mi := sort.SearchFloat64s(cum, u)
			if mi == len(cum) { // u == total boundary
				mi = len(cum) - 1
			}
			entry, err := s.drawJob(rng, s.Mix[mi], i, at)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, entry)
		}
	}
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].SubmitS < jobs[j].SubmitS })
	return jobs, nil
}

// arrivalTimes draws the submission instants for the configured process.
func (s *Spec) arrivalTimes(rng *sim.RNG) ([]float64, error) {
	a := s.Arrival
	ratePerSec := a.RatePerHour / 3600
	out := make([]float64, 0, a.Jobs)
	switch a.Process {
	case ProcessPoisson:
		t := 0.0
		for len(out) < a.Jobs {
			t += rng.Stream(streamArrival).ExpFloat64() / ratePerSec
			out = append(out, t)
		}
	case ProcessBurst:
		size := a.BurstSize
		if size == 0 {
			size = 4
		}
		period := a.PeriodS
		if period == 0 {
			period = float64(size) / ratePerSec // mean rate matches RatePerHour
		}
		for i := 0; len(out) < a.Jobs; i++ {
			at := float64(i) * period
			for b := 0; b < size && len(out) < a.Jobs; b++ {
				out = append(out, at)
			}
		}
	case ProcessDiurnal:
		period := a.PeriodS
		if period == 0 {
			period = 86400
		}
		peak := ratePerSec * (1 + diurnalAmplitude)
		t := 0.0
		// Thinning: candidates at the peak rate, accepted against the
		// sinusoid (trough at t=0, crest at period/2 — campaigns start in
		// the quiet hours and ramp into the busy ones).
		for len(out) < a.Jobs {
			t += rng.Stream(streamArrival).ExpFloat64() / peak
			rate := ratePerSec * (1 + diurnalAmplitude*math.Sin(2*math.Pi*t/period-math.Pi/2))
			if rng.Stream(streamArrival).Float64()*peak <= rate {
				out = append(out, t)
			}
		}
	default:
		return nil, fmt.Errorf("campaign: unknown arrival process %q", a.Process)
	}
	return out, nil
}

// drawJob resolves one arrival against a mix entry: node count, duration
// (pinned or estimated from the model's simulator wiring, with
// deterministic jitter) and wall limit.
func (s *Spec) drawJob(rng *sim.RNG, m MixEntry, idx int, at float64) (JobEntry, error) {
	model := workload.MustLookup(m.Workload) // validated by Spec.Validate
	lo, hi := m.nodeBounds()
	nodes := lo
	if hi > lo {
		nodes = lo + rng.Stream(streamNodes).Intn(hi-lo+1)
	}
	dur := m.DurationS
	if dur == 0 {
		est, err := model.Runtime(nodes)
		if err != nil {
			return JobEntry{}, fmt.Errorf("campaign: runtime estimate for %s on %d nodes: %w", m.Workload, nodes, err)
		}
		dur = est
	}
	jitter := 1 + rng.Normal(streamJitter, 0, durationJitterStd)
	if jitter < 0.5 {
		jitter = 0.5
	}
	if jitter > 1.5 {
		jitter = 1.5
	}
	dur *= jitter
	factor := m.TimeLimitFactor
	if factor == 0 {
		factor = 1.5
	}
	if factor < 1 {
		factor = 1
	}
	return JobEntry{
		Name:       fmt.Sprintf("%s-%03d", m.Workload, idx),
		Workload:   m.Workload,
		Nodes:      nodes,
		SubmitS:    at,
		DurationS:  dur,
		TimeLimitS: dur * factor,
	}, nil
}
