package campaign

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"montecimone/internal/sched"
)

// mixedSpec is a small generated campaign used across the suite: three
// workload classes over a Poisson stream, pinned durations so the whole
// thing drains fast.
func mixedSpec(policy string, seed int64) Spec {
	return Spec{
		Name: "test-mixed", Nodes: 12, Seed: seed, HorizonS: 8000,
		Policy: policy, Mitigated: true,
		Arrival: &Arrival{Process: ProcessPoisson, RatePerHour: 360, Jobs: 12},
		Mix: []MixEntry{
			{Workload: "hpl", Weight: 2, NodesMin: 2, NodesMax: 6, DurationS: 300},
			{Workload: "stream.ddr", Weight: 2, NodesMin: 1, NodesMax: 2, DurationS: 120},
			{Workload: "qe", Weight: 1, DurationS: 40},
		},
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the expected error
	}{
		{"unknown field", `{"name":"x","nodes":4,"horizon_s":10,"jobs":[],"rate":3}`, "rate"},
		{"no jobs", `{"name":"x","nodes":4,"horizon_s":10}`, "needs explicit jobs"},
		{"unknown workload", `{"name":"x","nodes":4,"horizon_s":10,
			"arrival":{"process":"poisson","rate_per_hour":10,"jobs":2},
			"mix":[{"workload":"doom","weight":1}]}`, "unknown model"},
		{"unknown process", `{"name":"x","nodes":4,"horizon_s":10,
			"arrival":{"process":"fractal","rate_per_hour":10,"jobs":2},
			"mix":[{"workload":"qe","weight":1}]}`, "unknown arrival process"},
		{"unknown policy", `{"name":"x","nodes":4,"horizon_s":10,"policy":"lottery",
			"jobs":[{"name":"j","workload":"qe","nodes":1,"duration_s":5}]}`, "unknown policy"},
		{"wide job", `{"name":"x","nodes":4,"horizon_s":10,
			"jobs":[{"name":"j","workload":"qe","nodes":9,"duration_s":5}]}`, "outside [1,4]"},
		{"idle without duration", `{"name":"x","nodes":4,"horizon_s":10,
			"arrival":{"process":"poisson","rate_per_hour":10,"jobs":2},
			"mix":[{"workload":"idle","weight":1}]}`, "no runtime estimate"},
		{"trace job without timing", `{"name":"x","nodes":4,"horizon_s":10,
			"jobs":[{"name":"j","workload":"qe","nodes":1}]}`, "needs duration_s or time_limit_s"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatal("spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// The unknown-workload error must list the registry so a spec typo is
// self-explaining.
func TestUnknownWorkloadListsRegistry(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","nodes":4,"horizon_s":10,
		"jobs":[{"name":"j","workload":"doom","nodes":1,"duration_s":5}]}`))
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	for _, name := range []string{"hpl", "stream.ddr", "qe", "idle"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

// Same spec + seed ⇒ identical job stream; a different seed must move it.
func TestGenerateDeterminism(t *testing.T) {
	spec := mixedSpec("easy", 3)
	first, err := spec.GenerateJobs()
	if err != nil {
		t.Fatal(err)
	}
	second, err := spec.GenerateJobs()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Errorf("same seed generated different streams:\n%v\n%v", first, second)
	}
	other := mixedSpec("easy", 4)
	moved, err := other.GenerateJobs()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(first) == fmt.Sprint(moved) {
		t.Error("different seeds generated identical streams")
	}
}

// Each arrival process must produce sane, ordered submission instants.
func TestArrivalProcesses(t *testing.T) {
	base := mixedSpec("easy", 5)
	for _, process := range []string{ProcessPoisson, ProcessBurst, ProcessDiurnal} {
		t.Run(process, func(t *testing.T) {
			spec := base
			spec.Arrival = &Arrival{Process: process, RatePerHour: 120, Jobs: 16, BurstSize: 4}
			jobs, err := spec.GenerateJobs()
			if err != nil {
				t.Fatal(err)
			}
			if len(jobs) != 16 {
				t.Fatalf("generated %d jobs, want 16", len(jobs))
			}
			last := -1.0
			for _, j := range jobs {
				if j.SubmitS < last {
					t.Fatalf("submissions out of order: %v after %v", j.SubmitS, last)
				}
				last = j.SubmitS
				if j.DurationS <= 0 || j.TimeLimitS < j.DurationS {
					t.Errorf("job %s has duration %v limit %v", j.Name, j.DurationS, j.TimeLimitS)
				}
			}
			if process == ProcessBurst {
				// Groups of BurstSize share an instant.
				byTime := map[float64]int{}
				for _, j := range jobs {
					byTime[j.SubmitS]++
				}
				for at, n := range byTime {
					if n != 4 {
						t.Errorf("burst at t=%v has %d jobs, want 4", at, n)
					}
				}
			}
		})
	}
}

// Mix entries without a pinned duration draw it from the workload model's
// simulator-wired runtime estimate.
func TestGeneratedDurationFromModel(t *testing.T) {
	spec := Spec{
		Name: "est", Nodes: 2, Seed: 1, HorizonS: 100,
		Arrival: &Arrival{Process: ProcessPoisson, RatePerHour: 60, Jobs: 3},
		Mix:     []MixEntry{{Workload: "qe", Weight: 1}},
	}
	jobs, err := spec.GenerateJobs()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		// QE LAX on one node models ~37.4 s; jitter is a few percent.
		if j.DurationS < 30 || j.DurationS > 45 {
			t.Errorf("job %s duration %v, want ~37.4 s from the LAX model", j.Name, j.DurationS)
		}
	}
}

// Tentpole acceptance: same spec + seed ⇒ byte-identical report and event
// log across runs.
func TestCampaignDeterminism(t *testing.T) {
	render := func() (string, string) {
		res, err := Run(mixedSpec("easy", 11))
		if err != nil {
			t.Fatal(err)
		}
		var rep, log bytes.Buffer
		if err := res.WriteReport(&rep); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteEventLog(&log); err != nil {
			t.Fatal(err)
		}
		if res.Completed == 0 {
			t.Fatalf("campaign completed no jobs:\n%s", rep.String())
		}
		return rep.String(), log.String()
	}
	rep1, log1 := render()
	rep2, log2 := render()
	if rep1 != rep2 {
		t.Errorf("reports differ across runs:\n--- first\n%s\n--- second\n%s", rep1, rep2)
	}
	if log1 != log2 {
		t.Errorf("event logs differ across runs:\n--- first\n%s\n--- second\n%s", log1, log2)
	}
}

// Policy conformance over campaign-generated job streams: every
// registered policy must drain the same generated stream with no node
// double-allocated and no job left behind, deterministically.
func TestPolicyConformanceOnCampaignStreams(t *testing.T) {
	for _, policy := range sched.PolicyNames() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			run := func() *Result {
				res, err := Run(mixedSpec(policy, 23))
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			first := run()
			second := run()
			var b1, b2 bytes.Buffer
			if err := first.WriteReport(&b1); err != nil {
				t.Fatal(err)
			}
			if err := second.WriteReport(&b2); err != nil {
				t.Fatal(err)
			}
			if b1.String() != b2.String() {
				t.Errorf("policy %s: report not deterministic:\n%s\nvs\n%s", policy, b1.String(), b2.String())
			}
			checkInvariants(t, policy, first)
		})
	}
}

// checkInvariants asserts the shared scheduler invariants on a campaign
// outcome: every job reached a terminal state within the horizon and no
// host served two jobs at once.
func checkInvariants(t *testing.T, policy string, res *Result) {
	t.Helper()
	type interval struct {
		from, to float64
		name     string
	}
	perHost := map[string][]interval{}
	for _, j := range res.Jobs {
		switch j.State {
		case sched.StatePending, sched.StateRunning:
			t.Errorf("policy %s: job %s still %s at the horizon", policy, j.Name, j.State)
		}
		if j.StartS < 0 {
			continue
		}
		end := j.EndS
		if end < 0 {
			end = res.Spec.HorizonS
		}
		if len(j.Hosts) != j.Nodes {
			t.Errorf("policy %s: job %s ran on %d hosts, requested %d", policy, j.Name, len(j.Hosts), j.Nodes)
		}
		for _, h := range j.Hosts {
			perHost[h] = append(perHost[h], interval{j.StartS, end, j.Name})
		}
	}
	for host, ivs := range perHost {
		sort.Slice(ivs, func(i, k int) bool { return ivs[i].from < ivs[k].from })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].from < ivs[i-1].to {
				t.Errorf("policy %s: host %s double-allocated: %s [%.1f,%.1f) overlaps %s [%.1f,%.1f)",
					policy, host, ivs[i-1].name, ivs[i-1].from, ivs[i-1].to,
					ivs[i].name, ivs[i].from, ivs[i].to)
			}
		}
	}
}

// The checked-in smoke spec (CI runs it through mcsched -campaign) must
// load and complete work.
func TestSmokeSpecFile(t *testing.T) {
	spec, err := Load("testdata/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Error("smoke campaign completed no jobs")
	}
	var b bytes.Buffer
	if err := res.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"campaign \"smoke\"", "mix:", "State"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("report missing %q:\n%s", want, b.String())
		}
	}
}

// An explicit trace with the fixed-activity ablation must run the same
// stream with no phase transitions (the benchmark's baseline) and still
// be deterministic.
func TestFixedActivityAblation(t *testing.T) {
	spec := mixedSpec("easy", 31)
	spec.FixedActivity = true
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Error("ablation campaign completed no jobs")
	}
	var b bytes.Buffer
	if err := res.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "fixed activity (ablation)") {
		t.Errorf("report does not flag the ablation:\n%s", b.String())
	}
}
