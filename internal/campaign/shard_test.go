package campaign

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"montecimone/internal/examon"
)

// renderAt runs the spec with the given shard count and returns the
// rendered report and event log.
func renderAt(t *testing.T, spec Spec, shards int) (string, string) {
	t.Helper()
	spec.Shards = shards
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	var rep, log bytes.Buffer
	if err := res.WriteReport(&rep); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	if err := res.WriteEventLog(&log); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return rep.String(), log.String()
}

// assertShardInvariant runs the spec serially and at 1/2/4/8 shards and
// requires byte-identical reports and event logs throughout — the
// tentpole's determinism gate: sharding is a wall-clock knob only.
func assertShardInvariant(t *testing.T, spec Spec) {
	t.Helper()
	rep0, log0 := renderAt(t, spec, 0) // serial engine (the ablation)
	for _, shards := range []int{1, 2, 4, 8} {
		rep, log := renderAt(t, spec, shards)
		if rep != rep0 {
			t.Errorf("report diverges at shards=%d:\n--- serial\n%s\n--- shards=%d\n%s",
				shards, rep0, shards, rep)
		}
		if log != log0 {
			t.Errorf("event log diverges at shards=%d:\n--- serial\n%s\n--- shards=%d\n%s",
				shards, log0, shards, log)
		}
	}
}

// TestShardedCampaignByteIdentical covers the main campaign
// configurations: phased mix, fixed-activity ablation, monitor-on
// sampling, and the power plane with its cap-redistribution barriers.
func TestShardedCampaignByteIdentical(t *testing.T) {
	t.Run("phased", func(t *testing.T) {
		assertShardInvariant(t, mixedSpec("easy", 11))
	})
	t.Run("fixed-activity", func(t *testing.T) {
		spec := mixedSpec("fifo", 5)
		spec.FixedActivity = true
		assertShardInvariant(t, spec)
	})
	t.Run("monitor", func(t *testing.T) {
		spec := Spec{
			Name: "shard-mon", Nodes: 8, Seed: 3, HorizonS: 2500,
			Policy: "easy", Mitigated: true, Monitor: true,
			Arrival: &Arrival{Process: ProcessPoisson, RatePerHour: 120, Jobs: 5},
			Mix: []MixEntry{
				{Workload: "stream.ddr", Weight: 1, NodesMin: 1, NodesMax: 2, DurationS: 120},
				{Workload: "qe", Weight: 1, DurationS: 40},
			},
		}
		assertShardInvariant(t, spec)
	})
	t.Run("powerplane", func(t *testing.T) {
		spec := Spec{
			Name: "shard-power", Nodes: 8, Seed: 9, HorizonS: 2500,
			Policy: "easy", Mitigated: true, PowerBudgetW: 40,
			Arrival: &Arrival{Process: ProcessPoisson, RatePerHour: 120, Jobs: 5},
			Mix: []MixEntry{
				{Workload: "hpl", Weight: 1, NodesMin: 2, NodesMax: 4, DurationS: 200},
				{Workload: "qe", Weight: 1, DurationS: 40},
			},
		}
		assertShardInvariant(t, spec)
	})
}

// TestShardedCampaignRandomizedSpecs fuzzes the spec space with a fixed
// generator seed: random partition sizes, arrival rates, mixes and
// campaign seeds, each checked serial-vs-sharded at 1/2/4/8 shards.
func TestShardedCampaignRandomizedSpecs(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized shard sweep is slow")
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3; i++ {
		nodes := 8 + rng.Intn(3)*4 // 8, 12 or 16
		spec := Spec{
			Name:      fmt.Sprintf("shard-fuzz-%d", i),
			Nodes:     nodes,
			Seed:      rng.Int63n(1 << 30),
			HorizonS:  6000,
			Policy:    []string{"easy", "fifo", "sjf"}[rng.Intn(3)],
			Mitigated: true,
			Arrival: &Arrival{
				Process:     ProcessPoisson,
				RatePerHour: 120 + float64(rng.Intn(240)),
				Jobs:        6 + rng.Intn(5),
			},
			Mix: []MixEntry{
				{Workload: "hpl", Weight: float64(1 + rng.Intn(3)), NodesMin: 2, NodesMax: 2 + rng.Intn(nodes-2), DurationS: 200 + float64(rng.Intn(200))},
				{Workload: "stream.ddr", Weight: float64(1 + rng.Intn(2)), NodesMin: 1, NodesMax: 2, DurationS: 120},
				{Workload: "qe", Weight: 1, DurationS: 40},
			},
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("generated spec %d invalid: %v", i, err)
		}
		t.Run(spec.Name, func(t *testing.T) {
			assertShardInvariant(t, spec)
		})
	}
}

// TestScale10kShardInvariant is the 10k-node scale gate: the committed
// testdata/scale10k.json partition (10000 nodes, 4000 Poisson jobs) must
// run to completion and render byte-identical reports and event logs at
// shards=1 and shards=GOMAXPROCS. Skipped under -short — the two runs
// take tens of seconds each; CI's determinism job also diffs this spec
// across shard counts through the mcsched binary.
func TestScale10kShardInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node campaign is slow")
	}
	spec, err := Load("testdata/scale10k.json")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Nodes != 10000 {
		t.Fatalf("scale10k spec has %d nodes, want 10000", spec.Nodes)
	}
	rep1, log1 := renderAt(t, spec, 1)
	repN, logN := renderAt(t, spec, runtime.GOMAXPROCS(0))
	if repN != rep1 {
		t.Error("10k report diverges between shards=1 and shards=GOMAXPROCS")
	}
	if logN != log1 {
		t.Error("10k event log diverges between shards=1 and shards=GOMAXPROCS")
	}
}

// TestShardedEngineConcurrentIngestQuery drives a monitor-on sharded
// campaign while a reader goroutine hammers the TSDB — the race detector
// (CI runs the package under -race) checks the shard workers' node
// preparation against the storage engine's concurrent read paths.
func TestShardedEngineConcurrentIngestQuery(t *testing.T) {
	spec := Spec{
		Name: "shard-race", Nodes: 8, Seed: 17, HorizonS: 1500,
		Policy: "easy", Mitigated: true, Monitor: true, Shards: 4,
		Arrival: &Arrival{Process: ProcessPoisson, RatePerHour: 120, Jobs: 4},
		Mix: []MixEntry{
			{Workload: "stream.ddr", Weight: 1, NodesMin: 1, NodesMax: 2, DurationS: 120},
			{Workload: "qe", Weight: 1, DurationS: 40},
		},
	}
	r, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	db := r.System().DB
	done := make(chan struct{})
	queried := make(chan int, 1)
	go func() {
		defer close(done)
		n := 0
		for {
			select {
			case <-queried:
				return
			default:
			}
			for _, s := range db.Query(examon.Filter{Plugin: "pmu_pub", Metric: "INSTRET"}) {
				n += len(s.Points)
			}
			_ = db.SeriesCount()
		}
	}()
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	queried <- 0
	<-done
	res := r.Result()
	if res.Completed == 0 {
		t.Error("race campaign completed no jobs")
	}
}

// TestShardedWindowStats pins the parallel-width counters: a sharded
// campaign must actually exercise the windowed loop (windows formed,
// events committed through them, node keys prepared off-loop), while the
// serial ablation reports zeros — the counters are how a multi-core host
// verifies the engine exposes parallel work even though byte-identity
// hides it from the reports.
func TestShardedWindowStats(t *testing.T) {
	run := func(shards int) (windows, events, prepared, committed uint64) {
		spec := mixedSpec("easy", 7)
		spec.Shards = shards
		r, err := NewRunner(spec)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if err := r.Drain(); err != nil {
			t.Fatal(err)
		}
		return r.System().Engine.WindowStats()
	}
	if w, ev, pr, cm := run(0); w != 0 || ev != 0 || pr != 0 || cm != 0 {
		t.Errorf("serial engine reported window stats %d/%d/%d/%d, want 0/0/0/0", w, ev, pr, cm)
	}
	w, ev, pr, cm := run(4)
	if w == 0 || ev == 0 || pr == 0 {
		t.Fatalf("sharded engine reported window stats %d/%d/%d, want all > 0", w, ev, pr)
	}
	if ev < w {
		t.Errorf("windowed events %d < windows %d", ev, w)
	}
	if cm > ev {
		t.Errorf("committed-parallel events %d > windowed events %d", cm, ev)
	}
	t.Logf("windows=%d windowed-events=%d prepared-keys=%d committed-parallel=%d (%.2f events/window, %.1f%% committed-parallel)",
		w, ev, pr, cm, float64(ev)/float64(w), 100*float64(cm)/float64(ev))
}
