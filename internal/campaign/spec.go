// Package campaign is the trace-driven campaign engine: declarative
// campaign specifications (a workload mix, an arrival process, node
// counts and a seed) expand through a deterministic seeded generator into
// a job stream, and a runner drives that stream through the whole testbed
// — scheduler, cluster physics, power plane and the ExaMon telemetry
// stack — emitting a per-campaign report and event log. Same spec + same
// seed ⇒ byte-identical report and log, which is what makes campaign
// results comparable across scheduler policies and code changes (the
// paper's Section V evaluation is exactly such a catalogue of campaigns).
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"montecimone/internal/fault"
	"montecimone/internal/sched"
	"montecimone/internal/workload"
)

// Arrival describes how generated jobs enter the queue.
type Arrival struct {
	// Process selects the arrival process: "poisson" (memoryless
	// interarrivals at RatePerHour), "burst" (groups of BurstSize
	// back-to-back submissions every PeriodS — by default spaced so the
	// mean rate matches RatePerHour) or "diurnal" (a Poisson process
	// thinned against a day-shaped sinusoid of period PeriodS).
	Process string `json:"process"`
	// RatePerHour is the mean submission rate.
	RatePerHour float64 `json:"rate_per_hour"`
	// Jobs is how many arrivals to generate.
	Jobs int `json:"jobs"`
	// BurstSize is the burst group size (burst process only; default 4).
	BurstSize int `json:"burst_size,omitempty"`
	// PeriodS is the process period in virtual seconds: the sinusoid
	// period for diurnal (default 86400) and the inter-burst spacing for
	// burst (default BurstSize/rate, which keeps the mean rate at
	// RatePerHour; setting it explicitly overrides the rate).
	PeriodS float64 `json:"period_s,omitempty"`
}

// MixEntry is one workload class in the campaign mix.
type MixEntry struct {
	// Workload names a registry model (workload.Lookup).
	Workload string `json:"workload"`
	// Weight is the relative pick probability (> 0).
	Weight float64 `json:"weight"`
	// NodesMin and NodesMax bound the uniformly drawn node count
	// (defaults 1/1).
	NodesMin int `json:"nodes_min,omitempty"`
	NodesMax int `json:"nodes_max,omitempty"`
	// DurationS pins the job duration; 0 asks the workload model's
	// runtime estimate for the drawn node count.
	DurationS float64 `json:"duration_s,omitempty"`
	// TimeLimitFactor scales duration into the wall-time limit
	// (default 1.5).
	TimeLimitFactor float64 `json:"time_limit_factor,omitempty"`
}

// JobEntry is one fully resolved submission: what the generator emits and
// what explicit trace campaigns list directly.
type JobEntry struct {
	// Name labels the job in the queue and the report.
	Name string `json:"name"`
	// Workload names a registry model.
	Workload string `json:"workload"`
	// Nodes is the allocation width.
	Nodes int `json:"nodes"`
	// SubmitS is the submission time relative to campaign start.
	SubmitS float64 `json:"submit_s"`
	// DurationS is the modelled execution time; TimeLimitS the wall
	// limit (default 1.5 x duration).
	DurationS  float64 `json:"duration_s"`
	TimeLimitS float64 `json:"time_limit_s,omitempty"`
}

// Spec is a declarative campaign: the machine, the policy and the job
// stream (an explicit trace, a generated mix, or both).
type Spec struct {
	// Name labels the campaign in reports.
	Name string `json:"name"`
	// Nodes is the partition size (synthetic slots beyond the paper's 8).
	Nodes int `json:"nodes"`
	// Seed drives every random draw; same spec + seed reproduces the
	// campaign byte for byte.
	Seed int64 `json:"seed"`
	// HorizonS is the drain horizon in virtual seconds after campaign
	// start; jobs still queued or running then are reported as such.
	HorizonS float64 `json:"horizon_s"`
	// Policy is the scheduler policy (sched.PolicyNames; default easy).
	Policy string `json:"policy,omitempty"`
	// Backend selects the ExaMon storage engine (default mem).
	Backend string `json:"backend,omitempty"`
	// Monitor starts the pmu_pub/stats_pub sampling plugins.
	Monitor bool `json:"monitor,omitempty"`
	// Mitigated applies the paper's airflow fix before submitting (lid
	// off, wider spacing); without it long HPL runs trip node 7.
	Mitigated bool `json:"mitigated,omitempty"`
	// PowerBudgetW enables the cluster power plane at this budget.
	PowerBudgetW float64 `json:"power_budget_w,omitempty"`
	// FixedActivity disables phase interleaving (jobs hold their steady
	// Table VI profile) — the campaign benchmark's ablation.
	FixedActivity bool `json:"fixed_activity,omitempty"`
	// Shards sets the engine's parallel-preparation shard count. 0 and 1
	// run the serial engine; any count produces byte-identical reports and
	// event logs (sharding is a wall-clock knob, not a model knob).
	Shards int `json:"shards,omitempty"`
	// Org and ClusterTag scope the campaign's telemetry samples — the
	// fleet runner stamps each routed campaign with its cluster's
	// identity so federated queries can select one cluster's series.
	// Empty keeps the ExaMon defaults (byte-identical reports).
	Org        string `json:"org,omitempty"`
	ClusterTag string `json:"cluster,omitempty"`
	// AmbientC overrides the machine-room inlet temperature in °C
	// (0 keeps the paper's 25 °C room). Heterogeneous fleet sites set it
	// per cluster; hotter rooms boot closer to the 107 °C trip.
	AmbientC float64 `json:"ambient_c,omitempty"`
	// Faults enables the chaos machinery: the block compiles into a
	// deterministic fault timeline (crashes, thermal runaways, brownouts,
	// network degradation, stragglers) and switches on NODE_FAIL
	// requeueing, the checkpoint/restart model and the availability /
	// goodput / MTTR report columns. nil (faults off) leaves the campaign
	// byte-identical to a spec without the field — the built-in ablation.
	Faults *fault.Spec `json:"faults,omitempty"`
	// Arrival and Mix generate a job stream; Jobs lists an explicit
	// trace. At least one source must be present.
	Arrival *Arrival   `json:"arrival,omitempty"`
	Mix     []MixEntry `json:"mix,omitempty"`
	Jobs    []JobEntry `json:"jobs,omitempty"`
}

// Arrival process names.
const (
	ProcessPoisson = "poisson"
	ProcessBurst   = "burst"
	ProcessDiurnal = "diurnal"
)

// Parse decodes a JSON campaign spec, rejecting unknown fields (a typo in
// a spec should fail loudly, not silently drop a knob), and validates it.
func Parse(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Load reads and parses a campaign spec file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("campaign: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return Spec{}, fmt.Errorf("campaign: spec %s: %w", path, err)
	}
	return s, nil
}

// Validate checks the spec against the registry, the policy table and the
// arrival process catalogue.
func (s *Spec) Validate() error {
	if s.Nodes < 1 {
		return fmt.Errorf("campaign: spec %q: nodes must be positive, got %d", s.Name, s.Nodes)
	}
	if s.HorizonS <= 0 {
		return fmt.Errorf("campaign: spec %q: horizon_s must be positive, got %v", s.Name, s.HorizonS)
	}
	if s.Shards < 0 {
		return fmt.Errorf("campaign: spec %q: shards must be >= 0, got %d", s.Name, s.Shards)
	}
	if s.AmbientC < 0 {
		return fmt.Errorf("campaign: spec %q: ambient_c must be >= 0, got %v", s.Name, s.AmbientC)
	}
	if s.Policy != "" {
		if _, err := sched.PolicyByName(s.Policy); err != nil {
			return fmt.Errorf("campaign: spec %q: %w", s.Name, err)
		}
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(s.Nodes, s.HorizonS, s.PowerBudgetW > 0); err != nil {
			return fmt.Errorf("campaign: spec %q: %w", s.Name, err)
		}
	}
	if len(s.Jobs) == 0 && (s.Arrival == nil || len(s.Mix) == 0) {
		return fmt.Errorf("campaign: spec %q: needs explicit jobs or an arrival process with a mix", s.Name)
	}
	if s.Arrival != nil {
		a := s.Arrival
		switch a.Process {
		case ProcessPoisson, ProcessBurst, ProcessDiurnal:
		default:
			return fmt.Errorf("campaign: spec %q: unknown arrival process %q (have %s, %s, %s)",
				s.Name, a.Process, ProcessPoisson, ProcessBurst, ProcessDiurnal)
		}
		if a.RatePerHour <= 0 {
			return fmt.Errorf("campaign: spec %q: arrival rate_per_hour must be positive, got %v", s.Name, a.RatePerHour)
		}
		if a.Jobs <= 0 {
			return fmt.Errorf("campaign: spec %q: arrival jobs must be positive, got %d", s.Name, a.Jobs)
		}
		if a.BurstSize < 0 || a.PeriodS < 0 {
			return fmt.Errorf("campaign: spec %q: negative burst_size/period_s", s.Name)
		}
		if len(s.Mix) == 0 {
			return fmt.Errorf("campaign: spec %q: an arrival process needs a workload mix", s.Name)
		}
	}
	for i, m := range s.Mix {
		model, err := workload.Lookup(m.Workload)
		if err != nil {
			return fmt.Errorf("campaign: spec %q mix[%d]: %w", s.Name, i, err)
		}
		if m.Weight <= 0 {
			return fmt.Errorf("campaign: spec %q mix[%d] (%s): weight must be positive, got %v", s.Name, i, m.Workload, m.Weight)
		}
		lo, hi := m.nodeBounds()
		if lo < 1 || hi < lo || hi > s.Nodes {
			return fmt.Errorf("campaign: spec %q mix[%d] (%s): node bounds [%d,%d] outside [1,%d]",
				s.Name, i, m.Workload, lo, hi, s.Nodes)
		}
		if m.DurationS < 0 || m.TimeLimitFactor < 0 {
			return fmt.Errorf("campaign: spec %q mix[%d] (%s): negative duration/time-limit factor", s.Name, i, m.Workload)
		}
		if m.DurationS == 0 && model.Runtime == nil {
			return fmt.Errorf("campaign: spec %q mix[%d] (%s): model has no runtime estimate, set duration_s",
				s.Name, i, m.Workload)
		}
	}
	for i, j := range s.Jobs {
		if _, err := workload.Lookup(j.Workload); err != nil {
			return fmt.Errorf("campaign: spec %q jobs[%d]: %w", s.Name, i, err)
		}
		if j.Nodes < 1 || j.Nodes > s.Nodes {
			return fmt.Errorf("campaign: spec %q jobs[%d] (%s): %d nodes outside [1,%d]",
				s.Name, i, j.Name, j.Nodes, s.Nodes)
		}
		if j.SubmitS < 0 || j.DurationS < 0 || j.TimeLimitS < 0 {
			return fmt.Errorf("campaign: spec %q jobs[%d] (%s): negative timing", s.Name, i, j.Name)
		}
		if j.DurationS == 0 && j.TimeLimitS == 0 {
			// The scheduler rejects a zero wall limit at submission; catch
			// the mistake at spec load instead of failing the whole trace.
			return fmt.Errorf("campaign: spec %q jobs[%d] (%s): needs duration_s or time_limit_s", s.Name, i, j.Name)
		}
	}
	return nil
}

// Demand is a campaign's deterministic resource-demand estimate: what the
// fleet meta-scheduler prices a campaign at before routing it, without
// expanding the job stream (no RNG draws — adding a meta-level consumer
// must never perturb the campaign's own generator streams).
type Demand struct {
	// Jobs is the number of jobs the spec expands to.
	Jobs int
	// MaxWidth is the widest single job the spec can produce — the
	// feasibility floor for a hosting cluster's node count.
	MaxWidth int
	// NodeSeconds is the expected node-seconds of useful work.
	NodeSeconds float64
	// LongestS is the longest single-job duration estimate — a lower
	// bound on the campaign's busy time however many nodes are free.
	LongestS float64
	// ByWorkload splits NodeSeconds per workload name, so power-aware
	// scorers can weight each workload's calibrated activity profile.
	ByWorkload map[string]float64
}

// Demand computes the spec's demand estimate. Mix entries contribute
// expectation values (mean node width, pick probability); explicit jobs
// contribute exactly. Durations come from the pinned DurationS or the
// model's runtime estimate at the mean width — jitter is not applied, so
// the estimate is a pure function of the spec.
func (s *Spec) Demand() (Demand, error) {
	d := Demand{ByWorkload: make(map[string]float64)}
	add := func(workloadName string, nodes int, nodeSeconds, durS float64) {
		d.Jobs++
		if nodes > d.MaxWidth {
			d.MaxWidth = nodes
		}
		if durS > d.LongestS {
			d.LongestS = durS
		}
		d.NodeSeconds += nodeSeconds
		d.ByWorkload[workloadName] += nodeSeconds
	}
	for _, j := range s.Jobs {
		dur := j.DurationS
		if dur == 0 {
			dur = j.TimeLimitS
		}
		add(j.Workload, j.Nodes, float64(j.Nodes)*dur, dur)
	}
	if s.Arrival != nil {
		total := 0.0
		for _, m := range s.Mix {
			total += m.Weight
		}
		// Expected node-seconds of one arrival, split per entry by pick
		// probability; every arrival contributes the same expectation.
		type entryEst struct {
			name     string
			p        float64
			meanW    float64
			durS     float64
			maxNodes int
		}
		ests := make([]entryEst, 0, len(s.Mix))
		for _, m := range s.Mix {
			lo, hi := m.nodeBounds()
			mean := float64(lo+hi) / 2
			dur := m.DurationS
			if dur == 0 {
				model, err := workload.Lookup(m.Workload)
				if err != nil {
					return Demand{}, err
				}
				est, err := model.Runtime(int(mean + 0.5))
				if err != nil {
					return Demand{}, fmt.Errorf("campaign: demand estimate for %s: %w", m.Workload, err)
				}
				dur = est
			}
			ests = append(ests, entryEst{name: m.Workload, p: m.Weight / total, meanW: mean, durS: dur, maxNodes: hi})
		}
		d.Jobs += s.Arrival.Jobs
		for _, e := range ests {
			ns := float64(s.Arrival.Jobs) * e.p * e.meanW * e.durS
			d.NodeSeconds += ns
			d.ByWorkload[e.name] += ns
			if e.maxNodes > d.MaxWidth {
				d.MaxWidth = e.maxNodes
			}
			if e.durS > d.LongestS {
				d.LongestS = e.durS
			}
		}
	}
	return d, nil
}

// nodeBounds applies the 1/1 defaults.
func (m *MixEntry) nodeBounds() (lo, hi int) {
	lo, hi = m.NodesMin, m.NodesMax
	if lo == 0 {
		lo = 1
	}
	if hi == 0 {
		hi = lo
	}
	return lo, hi
}

// DefaultSpec is the mcsched demo campaign: the five-job mixed benchmark
// trace the command used to hard-code, expressed as a declarative spec
// (HPL across the machine, both STREAM sets, a LAX run and a half-machine
// HPL tail).
func DefaultSpec(nodes int, policy string, mitigated bool, budgetW float64) Spec {
	return Spec{
		Name: "mcsched-demo", Nodes: nodes, Seed: 1, HorizonS: 30000,
		Policy: policy, Mitigated: mitigated, PowerBudgetW: budgetW,
		Jobs: []JobEntry{
			{Name: "hpl-full", Workload: "hpl", Nodes: nodes, TimeLimitS: 5400, DurationS: 3700},
			{Name: "stream-ddr", Workload: "stream.ddr", Nodes: 1, TimeLimitS: 600, DurationS: 300},
			{Name: "stream-l2", Workload: "stream.l2", Nodes: 1, TimeLimitS: 600, DurationS: 300},
			{Name: "qe-lax", Workload: "qe", Nodes: 1, TimeLimitS: 300, DurationS: 38},
			{Name: "hpl-half", Workload: "hpl", Nodes: (nodes + 1) / 2, TimeLimitS: 3600, DurationS: 1900},
		},
	}
}

// ChaosSpec is the standard chaos campaign: a Poisson stream of mixed
// work (weighted toward multi-node HPL, the shape that contends for nodes)
// run under a fault storm with every class armed — node crash/reboot
// cycles, thermal runaway injections that drive the 107 degC trip, a
// mid-run network degradation window, one straggler node and, when a
// power budget enables the plane, two brownout budget steps. Requeueing
// and phase-boundary checkpointing are on. mcrun -experiment chaos, the
// chaosstudy example and the EXPERIMENTS.md availability table all run
// this spec, so policy comparisons share one fault timeline per seed.
func ChaosSpec(nodes int, policy string, budgetW float64) Spec {
	s := DefaultSpec(nodes, policy, true, budgetW)
	s.Name = "chaos-standard"
	s.Jobs = nil
	s.Arrival = &Arrival{Process: ProcessPoisson, RatePerHour: 18, Jobs: 60}
	s.Mix = []MixEntry{
		{Workload: "hpl", Weight: 3, NodesMin: 2, NodesMax: nodes, DurationS: 1200},
		{Workload: "stream.ddr", Weight: 2, NodesMin: 1, NodesMax: 2, DurationS: 300},
		{Workload: "stream.l2", Weight: 1, DurationS: 300},
		{Workload: "qe", Weight: 2, DurationS: 40},
	}
	s.Faults = &fault.Spec{
		Crash:      &fault.Crash{MTBFHours: 4, RebootS: 120},
		Thermal:    &fault.Thermal{Injections: 2, ExtraRthKW: 7, ExtraAirC: 20, RepairS: 300},
		Network:    []fault.NetWindow{{StartS: 1500, DurationS: 900, LatencyMult: 8, BandwidthMult: 0.25}},
		Stragglers: &fault.Stragglers{Count: 1, Slowdown: 1.3},
		Checkpoint: true, CheckpointS: 300,
	}
	if budgetW > 0 {
		s.Faults.PowerSteps = []fault.PowerStep{
			{AtS: 6000, BudgetW: budgetW * 0.6},
			{AtS: 9000, BudgetW: budgetW},
		}
	}
	return s
}
