package campaign

import (
	"fmt"

	"montecimone/internal/cluster"
	"montecimone/internal/core"
	"montecimone/internal/fault"
	"montecimone/internal/sched"
	"montecimone/internal/sim"
	"montecimone/internal/workload"
)

// JobOutcome is one job's life in the campaign, all times relative to
// campaign start (the instant after boot and mitigation, when the first
// submission clock starts).
type JobOutcome struct {
	Name     string
	Workload string
	Nodes    int
	SubmitS  float64
	StartS   float64 // -1 if the job never started (last attempt under faults)
	EndS     float64 // -1 if the job never ended
	State    sched.JobState
	Hosts    []string

	// DurationS is the entry's nominal modelled execution time (the useful
	// work the job represents when it completes).
	DurationS float64
	// Requeues counts NODE_FAIL requeues consumed; DoneS is the
	// checkpointed progress surviving the last failure; UsedNodeS
	// accumulates node-seconds across every attempt. All three stay zero
	// without a fault block.
	Requeues  int
	DoneS     float64
	UsedNodeS float64
}

// Runner drives one campaign through the full testbed. Build with
// NewRunner (which boots the system and schedules every submission),
// advance with Drain — or step the engine yourself through System() for
// mid-campaign inspection — then collect Result and Close.
type Runner struct {
	spec     Spec
	sys      *core.System
	jobs     []JobEntry
	startT   float64 // campaign t=0 on the engine clock
	outcomes []*JobOutcome
	events   []string
	execs    map[int]*workload.Execution // by scheduler job id
	ctrl     *fault.Controller           // nil without a fault block

	// peakQueue is the deepest pending queue seen at any submission
	// instant (sched.Scheduler.QueueDepth) — the per-cluster backlog
	// signal fleet reports aggregate.
	peakQueue int
}

// NewRunner validates and expands the spec, boots the system (applying
// the airflow mitigation when asked) and schedules all submissions.
func NewRunner(spec Spec) (*Runner, error) {
	jobs, err := spec.GenerateJobs()
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(core.Options{
		Nodes:          spec.Nodes,
		Seed:           spec.Seed,
		Policy:         spec.Policy,
		Backend:        spec.Backend,
		NoMonitor:      !spec.Monitor,
		SyntheticSlots: spec.Nodes > cluster.DefaultNodes,
		PowerBudgetW:   spec.PowerBudgetW,
		HPMPatch:       spec.Monitor,
		Shards:         spec.Shards,
		Org:            spec.Org,
		ClusterTag:     spec.ClusterTag,
		AmbientC:       spec.AmbientC,
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	r := &Runner{spec: spec, sys: sys, jobs: jobs, execs: make(map[int]*workload.Execution)}
	if err := sys.Boot(); err != nil {
		sys.Close()
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if spec.Mitigated {
		if err := sys.Cluster.ApplyAirflowMitigation(); err != nil {
			sys.Close()
			return nil, fmt.Errorf("campaign: %w", err)
		}
	}
	r.startT = sys.Engine.Now()
	if spec.Faults != nil {
		ctrl, err := fault.NewController(fault.Config{
			Engine: sys.Engine, Cluster: sys.Cluster, Sched: sys.Scheduler, Plane: sys.Plane,
			Spec: spec.Faults, RNG: sim.NewRNG(spec.Seed),
			StartT: r.startT, HorizonS: spec.HorizonS,
			Logf: r.logf,
		})
		if err != nil {
			sys.Close()
			return nil, fmt.Errorf("campaign: %w", err)
		}
		if err := ctrl.Arm(); err != nil {
			sys.Close()
			return nil, fmt.Errorf("campaign: %w", err)
		}
		sys.Scheduler.SetRuntimeScaler(ctrl.Slowdown)
		r.ctrl = ctrl
	}
	for i := range jobs {
		entry := jobs[i]
		out := &JobOutcome{
			Name: entry.Name, Workload: entry.Workload, Nodes: entry.Nodes,
			SubmitS: entry.SubmitS, StartS: -1, EndS: -1, State: sched.StatePending,
			DurationS: entry.DurationS,
		}
		r.outcomes = append(r.outcomes, out)
		if _, err := sys.Engine.ScheduleAt(r.startT+entry.SubmitS, "campaign.submit("+entry.Name+")",
			func(*sim.Engine) { r.submit(entry, out) }); err != nil {
			sys.Close()
			return nil, fmt.Errorf("campaign: schedule submission %s: %w", entry.Name, err)
		}
	}
	return r, nil
}

// submit hands one entry to the scheduler, wiring the phased workload
// execution and the event log into the job callbacks.
func (r *Runner) submit(entry JobEntry, out *JobOutcome) {
	model := workload.MustLookup(entry.Workload) // names validated with the spec
	spec := sched.JobSpec{
		Name: entry.Name, User: "campaign", Nodes: entry.Nodes,
		TimeLimit: entry.TimeLimitS, Duration: entry.DurationS,
		Workload: model,
		OnStart: func(j *sched.Job, hosts []string) {
			out.StartS = r.sys.Engine.Now() - r.startT
			out.Hosts = append([]string(nil), hosts...)
			r.logf("t=%10.1f start  %-18s job=%-4d nodes=%d hosts=%v", out.StartS, entry.Name, j.ID, entry.Nodes, hosts)
			ex, err := workload.Start(r.sys.Engine, r.sys.Cluster, model, hosts,
				workload.ExecOptions{FixedActivity: r.spec.FixedActivity, SlowFactor: j.RuntimeScale()})
			if err != nil {
				// A host halted between allocation and start; the node
				// failure path will surface it.
				r.logf("t=%10.1f stall  %-18s job=%-4d %v", out.StartS, entry.Name, j.ID, err)
				return
			}
			r.execs[j.ID] = ex
		},
		OnEnd: func(j *sched.Job, state sched.JobState) {
			out.EndS = r.sys.Engine.Now() - r.startT
			out.State = state
			if out.StartS >= 0 && out.EndS > out.StartS {
				out.UsedNodeS += float64(entry.Nodes) * (out.EndS - out.StartS)
			}
			if ex := r.execs[j.ID]; ex != nil {
				ex.Stop()
				delete(r.execs, j.ID)
			} else {
				// workload.Start failed mid-allocation (a host halted
				// between placement and start): clear whatever partial
				// installation it left on the surviving hosts.
				r.sys.Cluster.ClearWorkloadOn(j.Hosts())
			}
			r.logf("t=%10.1f end    %-18s job=%-4d state=%s", out.EndS, entry.Name, j.ID, state)
		},
	}
	if fs := r.spec.Faults; fs != nil {
		if enabled, max := fs.Requeue(); enabled {
			spec.Requeue = true
			spec.MaxRequeues = max
			spec.OnRequeue = func(failed *sched.Job, next *sched.JobSpec) {
				out.Requeues++
				if fs.Checkpoint {
					// Progress accrues at nominal speed: a stretched attempt
					// covers its wall time divided by the stretch. The next
					// attempt resumes from the last checkpoint at or before
					// the accumulated progress.
					scale := failed.RuntimeScale()
					if scale < 1 {
						scale = 1
					}
					elapsed := (failed.EndTime() - failed.StartTime()) / scale
					if done := workload.RestartPoint(model, out.DoneS+elapsed, fs.CheckpointS); done > out.DoneS {
						out.DoneS = done
					}
					next.Duration = entry.DurationS - out.DoneS
					if next.Duration < 0 {
						next.Duration = 0
					}
				}
				r.logf("t=%10.1f requeue %-17s job=%-4d attempt=%d done=%.1fs",
					r.sys.Engine.Now()-r.startT, entry.Name, failed.ID, failed.Attempt()+1, out.DoneS)
			}
		}
	}
	job, err := r.sys.Scheduler.Submit(spec)
	if err != nil {
		out.State = sched.StateCancelled
		r.logf("t=%10.1f reject %-18s %v", r.sys.Engine.Now()-r.startT, entry.Name, err)
		return
	}
	if pending, _ := r.sys.Scheduler.QueueDepth(); pending > r.peakQueue {
		r.peakQueue = pending
	}
	r.logf("t=%10.1f submit %-18s job=%-4d nodes=%d", r.sys.Engine.Now()-r.startT, entry.Name, job.ID, entry.Nodes)
}

func (r *Runner) logf(format string, args ...any) {
	r.events = append(r.events, fmt.Sprintf(format, args...))
}

// System exposes the assembled testbed for mid-campaign inspection
// (squeue snapshots, telemetry queries).
func (r *Runner) System() *core.System { return r.sys }

// StartTime returns the engine instant of campaign t=0.
func (r *Runner) StartTime() float64 { return r.startT }

// Spec returns the validated campaign spec.
func (r *Runner) Spec() Spec { return r.spec }

// Jobs returns the expanded job stream in submission order.
func (r *Runner) Jobs() []JobEntry { return append([]JobEntry(nil), r.jobs...) }

// Drain advances the engine to the campaign horizon.
func (r *Runner) Drain() error {
	if err := r.sys.Engine.RunUntil(r.startT + r.spec.HorizonS); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}

// Close stops all periodic activity.
func (r *Runner) Close() { r.sys.Close() }

// Result snapshots the campaign outcome: call it after Drain (calling it
// earlier reports the campaign as of the current virtual time).
func (r *Runner) Result() *Result {
	res := &Result{
		Spec:   r.spec,
		Jobs:   make([]JobOutcome, len(r.outcomes)),
		Events: append([]string(nil), r.events...),
	}
	for i, o := range r.outcomes {
		res.Jobs[i] = *o
	}
	res.BrokerMessages = r.sys.Broker.Published()
	res.StoredSeries = r.sys.DB.SeriesCount()
	res.PeakQueueDepth = r.peakQueue
	if r.sys.Plane != nil {
		snap := r.sys.Plane.Snapshot()
		res.Plane = &snap
	}
	if r.ctrl != nil {
		st := r.ctrl.Stats(r.sys.Engine.Now())
		res.Fault = &st
	}
	res.EngineWindows, res.WindowedEvents, res.PreparedKeys, res.CommittedEvents = r.sys.Engine.WindowStats()
	res.aggregate()
	return res
}

// Run executes a campaign start to finish and returns its result.
func Run(spec Spec) (*Result, error) {
	r, err := NewRunner(spec)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if err := r.Drain(); err != nil {
		return nil, err
	}
	return r.Result(), nil
}
