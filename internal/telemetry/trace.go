// Package telemetry provides time-series buffers and statistics for the
// sampled sensor data the Monte Cimone monitoring stack collects: shunt
// power rails (Fig. 3 and Fig. 4 traces are raw samples averaged over 1 ms
// windows), hwmon temperatures (Fig. 6) and performance counters.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Sample is one timestamped measurement.
type Sample struct {
	// Time is the virtual time of the measurement in seconds.
	Time float64
	// Value is the measurement in the series' unit.
	Value float64
}

// Trace is an append-only time series. The zero value is ready to use.
type Trace struct {
	// Name labels the series ("core", "cpu_temp", ...).
	Name string
	// Unit documents the measurement unit ("mW", "degC", ...).
	Unit string

	samples []Sample
}

// NewTrace returns an empty named trace.
func NewTrace(name, unit string) *Trace {
	return &Trace{Name: name, Unit: unit}
}

// Add appends a sample; times must be non-decreasing.
func (t *Trace) Add(at, value float64) error {
	if n := len(t.samples); n > 0 && at < t.samples[n-1].Time {
		return fmt.Errorf("telemetry: trace %q: sample at %v before last %v", t.Name, at, t.samples[n-1].Time)
	}
	t.samples = append(t.samples, Sample{Time: at, Value: value})
	return nil
}

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.samples) }

// Samples returns a copy of the sample slice.
func (t *Trace) Samples() []Sample {
	out := make([]Sample, len(t.samples))
	copy(out, t.samples)
	return out
}

// At returns the i-th sample.
func (t *Trace) At(i int) Sample { return t.samples[i] }

// Mean returns the arithmetic mean of all samples (0 for an empty trace).
func (t *Trace) Mean() float64 {
	if len(t.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range t.samples {
		sum += s.Value
	}
	return sum / float64(len(t.samples))
}

// Std returns the population standard deviation (0 for fewer than two
// samples).
func (t *Trace) Std() float64 {
	n := len(t.samples)
	if n < 2 {
		return 0
	}
	mean := t.Mean()
	acc := 0.0
	for _, s := range t.samples {
		d := s.Value - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// Min and Max return the sample extrema; both return 0 on an empty trace.
func (t *Trace) Min() float64 {
	if len(t.samples) == 0 {
		return 0
	}
	m := t.samples[0].Value
	for _, s := range t.samples[1:] {
		if s.Value < m {
			m = s.Value
		}
	}
	return m
}

// Max returns the largest sample value.
func (t *Trace) Max() float64 {
	if len(t.samples) == 0 {
		return 0
	}
	m := t.samples[0].Value
	for _, s := range t.samples[1:] {
		if s.Value > m {
			m = s.Value
		}
	}
	return m
}

// MeanBetween averages samples with from <= time < to; ok is false when
// the window holds no samples.
func (t *Trace) MeanBetween(from, to float64) (mean float64, ok bool) {
	sum, n := 0.0, 0
	i := sort.Search(len(t.samples), func(i int) bool { return t.samples[i].Time >= from })
	for ; i < len(t.samples) && t.samples[i].Time < to; i++ {
		sum += t.samples[i].Value
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Downsample averages raw samples into fixed windows of the given width in
// seconds (the paper's Fig. 3 uses 1 ms windows over raw shunt samples) and
// returns the resulting trace. Window timestamps are the window start.
func (t *Trace) Downsample(window float64) (*Trace, error) {
	if window <= 0 {
		return nil, fmt.Errorf("telemetry: trace %q: window must be positive, got %v", t.Name, window)
	}
	out := NewTrace(t.Name, t.Unit)
	if len(t.samples) == 0 {
		return out, nil
	}
	start := math.Floor(t.samples[0].Time/window) * window
	sum, n := 0.0, 0
	flush := func() {
		if n > 0 {
			// Append directly: window starts are monotone by construction.
			out.samples = append(out.samples, Sample{Time: start, Value: sum / float64(n)})
		}
	}
	for _, s := range t.samples {
		for s.Time >= start+window {
			flush()
			start += window
			sum, n = 0, 0
		}
		sum += s.Value
		n++
	}
	flush()
	return out, nil
}

// WriteCSV emits "time,value" rows with a header naming the series.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "time_s,%s_%s\n", t.Name, t.Unit); err != nil {
		return err
	}
	for _, s := range t.samples {
		row := strconv.FormatFloat(s.Time, 'g', -1, 64) + "," +
			strconv.FormatFloat(s.Value, 'g', -1, 64) + "\n"
		if _, err := io.WriteString(w, row); err != nil {
			return err
		}
	}
	return nil
}

// Set is a collection of traces keyed by name, preserving insertion order.
type Set struct {
	order  []string
	traces map[string]*Trace
}

// NewSet returns an empty trace set.
func NewSet() *Set {
	return &Set{traces: make(map[string]*Trace)}
}

// Get returns the named trace, creating it (with the unit) on first use.
func (s *Set) Get(name, unit string) *Trace {
	if tr, ok := s.traces[name]; ok {
		return tr
	}
	tr := NewTrace(name, unit)
	s.traces[name] = tr
	s.order = append(s.order, name)
	return tr
}

// Lookup returns the named trace or nil.
func (s *Set) Lookup(name string) *Trace { return s.traces[name] }

// Names returns trace names in insertion order.
func (s *Set) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}
