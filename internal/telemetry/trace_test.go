package telemetry

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndStats(t *testing.T) {
	tr := NewTrace("core", "mW")
	for i, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		if err := tr.Add(float64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 8 {
		t.Fatalf("len = %d", tr.Len())
	}
	if got := tr.Mean(); got != 5 {
		t.Errorf("mean = %v, want 5", got)
	}
	if got := tr.Std(); got != 2 {
		t.Errorf("std = %v, want 2", got)
	}
	if tr.Min() != 2 || tr.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", tr.Min(), tr.Max())
	}
}

func TestEmptyTraceStats(t *testing.T) {
	tr := NewTrace("x", "u")
	if tr.Mean() != 0 || tr.Std() != 0 || tr.Min() != 0 || tr.Max() != 0 {
		t.Error("empty trace stats must be zero")
	}
	if _, ok := tr.MeanBetween(0, 1); ok {
		t.Error("MeanBetween on empty trace reported ok")
	}
}

func TestAddRejectsTimeTravel(t *testing.T) {
	tr := NewTrace("x", "u")
	if err := tr.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(0.5, 0); err == nil {
		t.Error("decreasing time accepted")
	}
	if err := tr.Add(1, 0); err != nil {
		t.Errorf("equal time rejected: %v", err)
	}
}

func TestMeanBetween(t *testing.T) {
	tr := NewTrace("x", "u")
	for i := 0; i < 100; i++ {
		if err := tr.Add(float64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := tr.MeanBetween(10, 20) // samples 10..19
	if !ok || got != 14.5 {
		t.Errorf("MeanBetween = %v (%v), want 14.5", got, ok)
	}
	if _, ok := tr.MeanBetween(200, 300); ok {
		t.Error("window beyond data reported ok")
	}
}

func TestDownsample(t *testing.T) {
	tr := NewTrace("rail", "mW")
	// 10 kHz sampling for 10 ms: values ramp 0..99.
	for i := 0; i < 100; i++ {
		if err := tr.Add(float64(i)*1e-4, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := tr.Downsample(1e-3) // 1 ms windows of 10 samples each
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 10 {
		t.Fatalf("downsampled len = %d, want 10", ds.Len())
	}
	if got := ds.At(0).Value; got != 4.5 {
		t.Errorf("window 0 mean = %v, want 4.5", got)
	}
	if got := ds.At(9).Value; got != 94.5 {
		t.Errorf("window 9 mean = %v, want 94.5", got)
	}
}

func TestDownsampleSkipsEmptyWindows(t *testing.T) {
	tr := NewTrace("x", "u")
	_ = tr.Add(0.0005, 1)
	_ = tr.Add(0.0105, 3) // gap of 10 windows
	ds, err := tr.Downsample(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 {
		t.Fatalf("len = %d, want 2 (no empty windows emitted)", ds.Len())
	}
}

func TestDownsampleInvalidWindow(t *testing.T) {
	tr := NewTrace("x", "u")
	if _, err := tr.Downsample(0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := NewTrace("core", "mW")
	_ = tr.Add(0, 3075)
	_ = tr.Add(0.001, 3080)
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "time_s,core_mW\n0,3075\n0.001,3080\n"
	if got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	a := s.Get("core", "mW")
	b := s.Get("ddr_mem", "mW")
	if s.Get("core", "mW") != a {
		t.Error("Get must return the same trace")
	}
	if s.Lookup("ddr_mem") != b || s.Lookup("missing") != nil {
		t.Error("Lookup mismatch")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "core" || names[1] != "ddr_mem" {
		t.Errorf("names = %v", names)
	}
}

func TestSamplesIsACopy(t *testing.T) {
	tr := NewTrace("x", "u")
	_ = tr.Add(0, 1)
	cp := tr.Samples()
	cp[0].Value = 99
	if tr.At(0).Value != 1 {
		t.Error("Samples must return a copy")
	}
}

// Property: downsampling preserves the global mean when every window has
// an equal number of samples.
func TestDownsampleMeanProperty(t *testing.T) {
	prop := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		// Pad to a multiple of 4 samples per window.
		for len(vals)%4 != 0 {
			vals = append(vals, 0)
		}
		tr := NewTrace("p", "u")
		for i, v := range vals {
			if err := tr.Add(float64(i)*0.25, float64(v)); err != nil {
				return false
			}
		}
		ds, err := tr.Downsample(1.0)
		if err != nil {
			return false
		}
		return math.Abs(ds.Mean()-tr.Mean()) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Min <= Mean <= Max and Std >= 0 for any trace.
func TestStatsInvariantsProperty(t *testing.T) {
	prop := func(vals []int16) bool {
		tr := NewTrace("p", "u")
		times := make([]float64, len(vals))
		for i := range vals {
			times[i] = float64(i)
		}
		sort.Float64s(times)
		for i, v := range vals {
			if err := tr.Add(times[i], float64(v)); err != nil {
				return false
			}
		}
		if tr.Len() == 0 {
			return true
		}
		return tr.Min() <= tr.Mean() && tr.Mean() <= tr.Max() && tr.Std() >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
